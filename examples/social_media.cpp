// Social media analysis: over a synthetic tweet stream (calibrated to the
// paper's Twitter dataset profile), find near-duplicate tweet pairs with the
// three-stage set-similarity join (no index needed), and run fuzzy user
// lookups. Demonstrates the AQL+-generated three-stage plan at a few
// thousand records.
#include <cstdio>
#include <filesystem>

#include "core/query_processor.h"
#include "datagen/textgen.h"
#include "storage/file_util.h"

using simdb::Status;
using simdb::adm::Value;
using simdb::core::EngineOptions;
using simdb::core::QueryProcessor;
using simdb::core::QueryResult;

namespace {

Status RunDemo(QueryProcessor& engine) {
  SIMDB_RETURN_IF_ERROR(
      engine.Execute("create dataset Tweets primary key id;"));

  simdb::datagen::TextDatasetGenerator gen(simdb::datagen::TwitterProfile(),
                                           /*seed=*/2026);
  const int64_t kTweets = 2000;
  for (int64_t id = 0; id < kTweets; ++id) {
    SIMDB_RETURN_IF_ERROR(engine.Insert("Tweets", gen.NextRecord(id)));
  }
  std::printf("loaded %lld synthetic tweets\n",
              static_cast<long long>(kTweets));

  // Near-duplicate detection without any index: the optimizer generates the
  // three-stage set-similarity join through the AQL+ framework.
  QueryResult result;
  SIMDB_RETURN_IF_ERROR(engine.Execute(R"(
    count(
      for $a in dataset Tweets
      for $b in dataset Tweets
      where similarity-jaccard(word-tokens($a.text),
                               word-tokens($b.text)) >= 0.8
        and $a.id < $b.id
      return {'a': $a.id, 'b': $b.id})
  )", &result));
  std::printf("near-duplicate tweet pairs (Jaccard >= 0.8): %s\n",
              result.rows[0].ToJson().c_str());
  std::printf("compile: total %.1f ms, AQL+ template generation %.1f ms\n",
              result.compile.total_seconds * 1e3,
              result.compile.aqlplus_seconds * 1e3);
  bool three_stage = false;
  for (const std::string& r : result.fired_rules) {
    if (r == "three-stage-similarity-join") three_stage = true;
  }
  if (!three_stage) {
    return Status::Internal("expected the three-stage join rule to fire");
  }

  // A fuzzy account lookup on the same data (scan-based; no n-gram index).
  SIMDB_RETURN_IF_ERROR(engine.Execute(R"(
    set simfunction 'edit-distance';
    set simthreshold '1';
    count(for $t in dataset Tweets where $t.user_name ~= 'maria' return $t)
  )", &result));
  std::printf("tweets by users ~= 'maria' (ed <= 1): %s\n",
              result.rows[0].ToJson().c_str());
  return Status::OK();
}

}  // namespace

int main() {
  std::string dir = (std::filesystem::temp_directory_path() /
                     ("simdb_social_" + std::to_string(::getpid())))
                        .string();
  EngineOptions options;
  options.data_dir = dir;
  options.topology = {2, 2};
  QueryProcessor engine(options);
  Status status = RunDemo(engine);
  simdb::storage::RemoveAllBestEffort(dir);
  if (!status.ok()) {
    std::fprintf(stderr, "social_media failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  return 0;
}
