// AQL+ as a general rewrite framework (paper Section 5.2: "AQL+ is a general
// extension framework, not only for similarity queries"). This example
// builds a custom optimizer rule out of the same machinery the three-stage
// similarity join uses: an AQL+ template with ## meta-clauses and $$
// meta-variables, compiled at optimization time and spliced into the plan.
//
// The custom rule rewrites
//     SELECT top-group(field) over <subplan>
// (a made-up marker predicate) into a template that groups the subplan's
// rows by the field, keeps the most frequent value, and joins it back — a
// "mode filter" that AQL itself cannot express in one SELECT.
#include <cstdio>
#include <filesystem>

#include "algebricks/rules.h"
#include "aql/parser.h"
#include "aql/translator.h"
#include "core/query_processor.h"
#include "storage/file_util.h"

using namespace simdb;
using simdb::adm::Value;

namespace {

/// The custom rule: pattern-match, instantiate the AQL+ template, splice.
class ModeFilterRule : public algebricks::RewriteRule {
 public:
  std::string name() const override { return "mode-filter-via-aqlplus"; }

  Result<bool> Apply(algebricks::LOpPtr& op,
                     algebricks::OptContext&) override {
    using algebricks::LExpr;
    using algebricks::LOpKind;
    if (op->kind != LOpKind::kSelect) return false;
    const algebricks::LExprPtr& cond = op->expr;
    if (cond->kind != LExpr::Kind::kCall || cond->name != "top-group" ||
        cond->children.size() != 1) {
      return false;
    }
    const algebricks::LOpPtr& input = op->inputs[0];
    if (input->kind != LOpKind::kDataScan) return false;

    // The AQL+ template: rank field values by frequency over ##INPUT, keep
    // the top one, then join back to ##INPUT on $$FIELD.
    static constexpr const char* kTemplate = R"AQL(
      let $best := (
        for $r1 in ##INPUT1
        group by $g := $$FIELD1 with $r1
        order by count($r1) desc
        limit 1
        return $g
      )
      for $row in ##INPUT2
      for $top in $best
      where $$FIELD2 = $top
      return true
    )AQL";

    aql::MetaBindings bindings;
    bindings.clauses["INPUT1"] = {input, input->out_var};
    bindings.clauses["INPUT2"] = {input, input->out_var};
    algebricks::LExprPtr field = cond->children[0];
    bindings.vars["FIELD1"] = field;
    bindings.vars["FIELD2"] = field;

    SIMDB_ASSIGN_OR_RETURN(aql::AExprPtr ast,
                           aql::ParseExpression(kTemplate));
    aql::Translator translator(std::move(bindings));
    SIMDB_ASSIGN_OR_RETURN(aql::TranslationResult tr,
                           translator.TranslateQuery(ast));
    // Strip the template's `return true` projection to re-expose the
    // record variable, then restore the SELECT's output shape.
    algebricks::LOpPtr plan = tr.plan->inputs[0]->inputs[0];
    op = algebricks::MakeProject(plan, {input->out_var});
    return true;
  }
};

Status RunDemo(core::QueryProcessor& engine) {
  SIMDB_RETURN_IF_ERROR(engine.Execute(R"(
    create dataset Events primary key id;
    insert into Events [
      {'id': 1, 'kind': 'click'}, {'id': 2, 'kind': 'view'},
      {'id': 3, 'kind': 'click'}, {'id': 4, 'kind': 'click'},
      {'id': 5, 'kind': 'purchase'}, {'id': 6, 'kind': 'view'}
    ];
  )"));
  // Register the marker function so the query type-checks, then rewrite.
  hyracks::FunctionRegistry::Global().Register(
      {"top-group", 1, 1,
       [](const std::vector<Value>&) -> Result<Value> {
         return Status::Internal(
             "top-group is a rewrite marker and must be optimized away");
       }});

  // Run the custom rule manually on a translated query, then execute.
  aql::Translator translator;
  SIMDB_ASSIGN_OR_RETURN(aql::AExprPtr ast, aql::ParseExpression(R"(
    for $e in dataset Events
    where top-group($e.kind)
    return $e.id
  )"));
  SIMDB_ASSIGN_OR_RETURN(aql::TranslationResult tr,
                         translator.TranslateQuery(ast));
  algebricks::OptContext ctx;
  ctx.catalog = engine.catalog();
  algebricks::RuleSet set;
  set.name = "custom";
  set.rules = {std::make_shared<ModeFilterRule>(),
               algebricks::MakePushSelectIntoJoinRule(),
               algebricks::MakePushSelectBelowJoinRule()};
  SIMDB_RETURN_IF_ERROR(
      algebricks::ApplyRuleSet(tr.plan, set, ctx).status());
  SIMDB_RETURN_IF_ERROR(algebricks::ApplyCountListifyRewrite(tr.plan, ctx)
                            .status());
  std::printf("rewritten plan:\n%s\n", tr.plan->ToString().c_str());

  hyracks::Job job;
  algebricks::JobGenerator jobgen;
  SIMDB_RETURN_IF_ERROR(jobgen.Generate(tr.plan, &job));
  ThreadPool pool(2);
  hyracks::ExecContext exec;
  exec.pool = &pool;
  exec.catalog = engine.catalog();
  exec.topology = engine.options().topology;
  SIMDB_ASSIGN_OR_RETURN(hyracks::PartitionedRows rows,
                         hyracks::Executor::Run(job, exec));
  std::printf("events of the most frequent kind ('click'):\n");
  size_t count = 0;
  for (const hyracks::Rows& part : rows) {
    for (const hyracks::Tuple& t : part) {
      std::printf("  id=%s\n", t[0].ToJson().c_str());
      ++count;
    }
  }
  if (count != 3) return Status::Internal("expected the 3 click events");
  return Status::OK();
}

}  // namespace

int main() {
  std::string dir = (std::filesystem::temp_directory_path() /
                     ("simdb_aqlplus_" + std::to_string(::getpid())))
                        .string();
  core::EngineOptions options;
  options.data_dir = dir;
  options.topology = {2, 2};
  core::QueryProcessor engine(options);
  Status status = RunDemo(engine);
  storage::RemoveAllBestEffort(dir);
  if (!status.ok()) {
    std::fprintf(stderr, "aqlplus_custom_rewrite failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  return 0;
}
