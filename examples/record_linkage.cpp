// Record linkage: match customers across two independently maintained lists
// whose names contain typos and whose interest profiles overlap — the
// data-cleaning workload the paper's introduction motivates. Demonstrates a
// cross-dataset similarity join (edit distance on names) refined with a
// Jaccard condition on interests (a multi-similarity query).
#include <cstdio>
#include <filesystem>

#include "core/query_processor.h"
#include "storage/file_util.h"

using simdb::Status;
using simdb::adm::Value;
using simdb::core::EngineOptions;
using simdb::core::QueryProcessor;
using simdb::core::QueryResult;

namespace {

Value Customer(int64_t id, const char* name, const char* interests) {
  return Value::MakeObject({{"id", Value::Int64(id)},
                            {"name", Value::String(name)},
                            {"interests", Value::String(interests)}});
}

Status RunDemo(QueryProcessor& engine) {
  SIMDB_RETURN_IF_ERROR(engine.Execute(R"(
    create dataset CrmCustomers primary key id;
    create dataset BillingCustomers primary key id;
    create index crm_name_ix on CrmCustomers(name) type ngram(2);
  )"));

  // The CRM list (clean-ish).
  SIMDB_RETURN_IF_ERROR(engine.Insert(
      "CrmCustomers", Customer(1, "jonathan meyer", "cycling photography")));
  SIMDB_RETURN_IF_ERROR(engine.Insert(
      "CrmCustomers", Customer(2, "maria sanchez", "cooking travel books")));
  SIMDB_RETURN_IF_ERROR(engine.Insert(
      "CrmCustomers", Customer(3, "david oconnor", "chess climbing")));
  SIMDB_RETURN_IF_ERROR(engine.Insert(
      "CrmCustomers", Customer(4, "amy winter", "gardening painting")));

  // The billing list (typos, shuffled interests).
  SIMDB_RETURN_IF_ERROR(engine.Insert(
      "BillingCustomers", Customer(101, "jonathon meyer", "photography cycling")));
  SIMDB_RETURN_IF_ERROR(engine.Insert(
      "BillingCustomers", Customer(102, "maria sanches", "travel cooking books")));
  SIMDB_RETURN_IF_ERROR(engine.Insert(
      "BillingCustomers", Customer(103, "davd oconnor", "climbing chess hikes")));
  SIMDB_RETURN_IF_ERROR(engine.Insert(
      "BillingCustomers", Customer(104, "peter falk", "sailing")));

  // Link: names within edit distance 2 AND interest overlap >= 0.5. The
  // optimizer turns the edit-distance condition into an index-nested-loop
  // join on the CRM n-gram index (billing is the outer, broadcast side) and
  // verifies the Jaccard condition in a SELECT above it (paper Fig. 25(b)).
  QueryResult result;
  SIMDB_RETURN_IF_ERROR(engine.Execute(R"(
    for $b in dataset BillingCustomers
    for $c in dataset CrmCustomers
    where edit-distance($b.name, $c.name) <= 2
      and similarity-jaccard(word-tokens($b.interests),
                             word-tokens($c.interests)) >= 0.5
    return {'billing': $b.id, 'crm': $c.id,
            'billing_name': $b.name, 'crm_name': $c.name}
  )", &result));

  std::printf("linked customer records:\n");
  for (const Value& row : result.rows) {
    std::printf("  %s\n", row.ToJson().c_str());
  }
  std::printf("\nrules fired:");
  for (const std::string& r : result.fired_rules) std::printf(" %s", r.c_str());
  std::printf("\n");
  if (result.rows.size() != 3) {
    return Status::Internal("expected 3 linked pairs, got " +
                            std::to_string(result.rows.size()));
  }
  return Status::OK();
}

}  // namespace

int main() {
  std::string dir = (std::filesystem::temp_directory_path() /
                     ("simdb_linkage_" + std::to_string(::getpid())))
                        .string();
  EngineOptions options;
  options.data_dir = dir;
  options.topology = {2, 2};
  QueryProcessor engine(options);
  Status status = RunDemo(engine);
  simdb::storage::RemoveAllBestEffort(dir);
  if (!status.ok()) {
    std::fprintf(stderr, "record_linkage failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  return 0;
}
