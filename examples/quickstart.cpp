// Quickstart: create a dataset, build similarity indexes, and run fuzzy
// selections and a similarity join — the paper's running Amazon-review
// example, end to end.
#include <cstdio>
#include <filesystem>

#include "core/query_processor.h"
#include "storage/file_util.h"

using simdb::Status;
using simdb::adm::Value;
using simdb::core::EngineOptions;
using simdb::core::QueryProcessor;
using simdb::core::QueryResult;

namespace {

Status RunDemo(QueryProcessor& engine) {
  // 1. DDL: a dataset plus an n-gram index (edit distance on short strings)
  //    and a keyword index (Jaccard on tokenized text).
  SIMDB_RETURN_IF_ERROR(engine.Execute(R"(
    use dataverse TextStore;
    create dataset AmazonReview primary key id;
    create index nix on AmazonReview(reviewerName) type ngram(2);
    create index smix on AmazonReview(summary) type keyword;
  )"));

  // 2. Load a few reviews (programmatic insert; records are plain JSON-ish
  //    values with an int64 primary key).
  struct Row {
    int64_t id;
    const char* name;
    const char* summary;
  };
  const Row rows[] = {
      {1, "james", "this movie touched my heart"},
      {2, "mary", "great product fantastic gift"},
      {3, "mario", "different than my usual but good"},
      {4, "jamie", "better ever than i expected"},
      {5, "maria", "the best car charger i ever bought"},
      {6, "marla", "great product really fantastic gift"},
  };
  for (const Row& r : rows) {
    SIMDB_RETURN_IF_ERROR(engine.Insert(
        "AmazonReview",
        Value::MakeObject({{"id", Value::Int64(r.id)},
                           {"reviewerName", Value::String(r.name)},
                           {"summary", Value::String(r.summary)}})));
  }

  // 3. A fuzzy selection: find reviewers whose name is within edit distance
  //    1 of "marla" (uses the 2-gram index; see the plan below).
  QueryResult result;
  SIMDB_RETURN_IF_ERROR(engine.Execute(R"(
    for $t in dataset AmazonReview
    where edit-distance($t.reviewerName, 'marla') <= 1
    return {'id': $t.id, 'name': $t.reviewerName}
  )", &result));
  std::printf("reviewers similar to 'marla':\n");
  for (const Value& row : result.rows) {
    std::printf("  %s\n", row.ToJson().c_str());
  }
  std::printf("rules fired:");
  for (const std::string& r : result.fired_rules) std::printf(" %s", r.c_str());
  std::printf("\n\n");

  // 4. The `~=` sugar: session settings pick the similarity function.
  SIMDB_RETURN_IF_ERROR(engine.Execute(R"(
    set simfunction 'jaccard';
    set simthreshold '0.5';
    for $t in dataset AmazonReview
    where word-tokens($t.summary) ~= word-tokens('great product fantastic gift')
    return $t.summary
  )", &result));
  std::printf("summaries similar to 'great product fantastic gift':\n");
  for (const Value& row : result.rows) {
    std::printf("  %s\n", row.ToJson().c_str());
  }

  // 5. A self similarity join on summaries.
  SIMDB_RETURN_IF_ERROR(engine.Execute(R"(
    for $o in dataset AmazonReview
    for $i in dataset AmazonReview
    where similarity-jaccard(word-tokens($o.summary),
                             word-tokens($i.summary)) >= 0.5
      and $o.id < $i.id
    return {'left': $o.id, 'right': $i.id}
  )", &result));
  std::printf("\nsimilar summary pairs (Jaccard >= 0.5):\n");
  for (const Value& row : result.rows) {
    std::printf("  %s\n", row.ToJson().c_str());
  }

  // 6. Explain: show the optimized plan for the indexed selection.
  SIMDB_ASSIGN_OR_RETURN(std::string plan, engine.Explain(R"(
    for $t in dataset AmazonReview
    where edit-distance($t.reviewerName, 'marla') <= 1
    return $t
  )"));
  std::printf("\noptimized plan for the fuzzy selection:\n%s", plan.c_str());
  return Status::OK();
}

}  // namespace

int main() {
  std::string dir = (std::filesystem::temp_directory_path() /
                     ("simdb_quickstart_" + std::to_string(::getpid())))
                        .string();
  EngineOptions options;
  options.data_dir = dir;
  options.topology = {2, 2};  // a simulated 2-node cluster
  QueryProcessor engine(options);
  Status status = RunDemo(engine);
  simdb::storage::RemoveAllBestEffort(dir);
  if (!status.ok()) {
    std::fprintf(stderr, "quickstart failed: %s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}
