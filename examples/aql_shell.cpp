// An interactive AQL shell over a SimDB engine: type statements terminated
// by ';' (DDL, DML, set, queries, `explain <query>`), see results as JSON.
// Start it with a directory to persist data into, or no arguments for a
// temporary database:
//
//   ./aql_shell [data-dir]
//
//   simdb> create dataset Reviews primary key id;
//   simdb> insert into Reviews {'id': 1, 'name': 'maria'};
//   simdb> for $r in dataset Reviews where edit-distance($r.name, 'marla') <= 1 return $r;
//
// `\q` quits, `\rules` prints the rules the last query fired, `\time` toggles
// timing output.
#include <cstdio>
#include <filesystem>
#include <iostream>
#include <string>

#include "core/query_processor.h"
#include "storage/file_util.h"

using simdb::Status;
using simdb::adm::Value;
using simdb::core::EngineOptions;
using simdb::core::QueryProcessor;
using simdb::core::QueryResult;

namespace {

bool IsBlank(const std::string& s) {
  for (char c : s) {
    if (!std::isspace(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

int RunShell(QueryProcessor& engine) {
  std::printf("SimDB AQL shell — end statements with ';', \\q to quit\n");
  std::string buffer;
  QueryResult last;
  bool show_time = false;
  std::string line;
  while (true) {
    std::printf("%s", buffer.empty() ? "simdb> " : "   ... ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    if (buffer.empty() && !line.empty() && line[0] == '\\') {
      if (line == "\\q") break;
      if (line == "\\time") {
        show_time = !show_time;
        std::printf("timing %s\n", show_time ? "on" : "off");
      } else if (line == "\\rules") {
        for (const std::string& r : last.fired_rules) {
          std::printf("  %s\n", r.c_str());
        }
      } else {
        std::printf("commands: \\q quit, \\time toggle timing, \\rules show "
                    "fired rewrite rules\n");
      }
      continue;
    }
    buffer += line;
    buffer += '\n';
    // Execute once the statement is ';'-terminated.
    size_t last_char = buffer.find_last_not_of(" \t\n\r");
    if (last_char == std::string::npos || buffer[last_char] != ';') continue;
    if (IsBlank(buffer)) {
      buffer.clear();
      continue;
    }
    QueryResult result;
    Status status = engine.Execute(buffer, &result);
    buffer.clear();
    if (!status.ok()) {
      std::printf("error: %s\n", status.ToString().c_str());
      continue;
    }
    last = result;
    for (const Value& row : result.rows) {
      if (row.is_string() && row.AsString().find('\n') != std::string::npos) {
        std::printf("%s", row.AsString().c_str());  // explain output
      } else {
        std::printf("%s\n", row.ToJson().c_str());
      }
    }
    if (show_time) {
      std::printf("-- compile %.2f ms, execute %.2f ms, %zu row(s)\n",
                  result.compile.total_seconds * 1e3,
                  result.exec.wall_seconds * 1e3, result.rows.size());
    }
  }
  std::printf("\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool temporary = argc < 2;
  std::string dir =
      temporary ? (std::filesystem::temp_directory_path() /
                   ("simdb_shell_" + std::to_string(::getpid())))
                      .string()
                : argv[1];
  EngineOptions options;
  options.data_dir = dir;
  options.topology = {2, 2};
  int rc;
  {
    QueryProcessor engine(options);
    rc = RunShell(engine);
  }
  if (temporary) simdb::storage::RemoveAllBestEffort(dir);
  return rc;
}
