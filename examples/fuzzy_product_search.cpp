// Fuzzy product search: the paper's call-center scenario — locate a product
// even when the serial number the customer reads out contains typos.
// Demonstrates the `contains()` substring search (n-gram index), edit
// distance lookups, and a user-defined similarity function.
#include <cstdio>
#include <filesystem>

#include "core/query_processor.h"
#include "storage/file_util.h"

using simdb::Status;
using simdb::adm::Value;
using simdb::core::EngineOptions;
using simdb::core::QueryProcessor;
using simdb::core::QueryResult;

namespace {

Status RunDemo(QueryProcessor& engine) {
  SIMDB_RETURN_IF_ERROR(engine.Execute(R"(
    create dataset Products primary key id;
    create index serial_ix on Products(serial) type ngram(2);
  )"));

  const char* serials[] = {"KX750-A11", "KX750-B20", "KZ755-A11",
                           "QM300-C05", "QM310-C05", "TR110-XL9"};
  const char* names[] = {"toaster",    "toaster pro", "kettle",
                         "microwave",  "microwave+",  "vacuum"};
  for (int64_t i = 0; i < 6; ++i) {
    SIMDB_RETURN_IF_ERROR(engine.Insert(
        "Products",
        Value::MakeObject({{"id", Value::Int64(i + 1)},
                           {"serial", Value::String(serials[i])},
                           {"name", Value::String(names[i])}})));
  }

  // The customer misread one character: "KX750-A11" -> "KX75O-A11".
  QueryResult result;
  SIMDB_RETURN_IF_ERROR(engine.Execute(R"(
    for $p in dataset Products
    where edit-distance($p.serial, 'KX75O-A11') <= 1
    return {'serial': $p.serial, 'name': $p.name}
  )", &result));
  std::printf("products within edit distance 1 of 'KX75O-A11':\n");
  for (const Value& row : result.rows) {
    std::printf("  %s\n", row.ToJson().c_str());
  }
  if (result.rows.empty()) return Status::Internal("no fuzzy match found");

  // Substring search on a partial serial (contains() on the n-gram index).
  SIMDB_RETURN_IF_ERROR(engine.Execute(R"(
    for $p in dataset Products
    where contains($p.serial, '750-')
    return $p.serial
  )", &result));
  std::printf("\nserials containing '750-':\n");
  for (const Value& row : result.rows) {
    std::printf("  %s\n", row.ToJson().c_str());
  }

  // A custom similarity measure registered as a C++ UDF: prefix overlap
  // length. Usable through the `~=` operator via `set simfunction`.
  engine.RegisterSimilarityUdf(
      {.name = "similarity-prefix-overlap",
       .sense = simdb::similarity::ThresholdSense::kSimilarityAtLeast,
       .eval =
           [](const Value& a, const Value& b) -> simdb::Result<Value> {
             if (!a.is_string() || !b.is_string()) {
               return Status::TypeError("expected strings");
             }
             const std::string &sa = a.AsString(), &sb = b.AsString();
             size_t n = 0;
             while (n < sa.size() && n < sb.size() && sa[n] == sb[n]) ++n;
             return Value::Int64(static_cast<int64_t>(n));
           },
       .check = nullptr});
  SIMDB_RETURN_IF_ERROR(engine.Execute(R"(
    set simfunction 'similarity-prefix-overlap';
    set simthreshold '5';
    for $p in dataset Products
    where $p.serial ~= 'QM300-C99'
    return $p.serial
  )", &result));
  std::printf("\nserials sharing a 5+ character prefix with 'QM300-C99':\n");
  for (const Value& row : result.rows) {
    std::printf("  %s\n", row.ToJson().c_str());
  }
  return Status::OK();
}

}  // namespace

int main() {
  std::string dir = (std::filesystem::temp_directory_path() /
                     ("simdb_product_" + std::to_string(::getpid())))
                        .string();
  EngineOptions options;
  options.data_dir = dir;
  options.topology = {1, 2};
  QueryProcessor engine(options);
  Status status = RunDemo(engine);
  simdb::storage::RemoveAllBestEffort(dir);
  if (!status.ok()) {
    std::fprintf(stderr, "fuzzy_product_search failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  return 0;
}
