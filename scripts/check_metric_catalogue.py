#!/usr/bin/env python3
"""Two-way diff of emitted metric names against a metric catalogue.

Usage: check_metric_catalogue.py [--prefix P] <metrics.json> [catalogue.md]

<metrics.json> is bench_profile --json or bench_serving --json output (or
the corresponding section of BENCH_kernels.json). Emitted names are every
per-operator counter plus every global-registry counter/histogram name.
Documented names are the backticked dotted names in the catalogue tables
of the markdown file (default docs/OBSERVABILITY.md); `<CONNECTOR>` rows
expand against the four exchange connector names.

--prefix restricts both sides of the diff to names starting with P, so a
namespaced catalogue (e.g. the `serving.` table in docs/SERVING.md) can be
checked against a workload that also emits metrics documented elsewhere.

Fails (exit 1) on an emitted-but-undocumented name OR a
documented-but-never-emitted name, so the catalogue can neither lag the
code nor carry dead rows.
"""
import json
import re
import sys

CONNECTORS = ["HASH-EXCHANGE", "BROADCAST-EXCHANGE", "GATHER", "MERGE-GATHER"]
NAME_RE = re.compile(r"`([a-z]+\.[A-Za-z0-9_.<>-]+)`")


def emitted_names(profile):
    names = set()
    for query in profile.get("queries", []):
        for op in query["profile"]["operators"]:
            names.update(op["counters"].keys())
    metrics = profile.get("metrics", {})
    names.update(metrics.get("counters", {}).keys())
    names.update(metrics.get("histograms", {}).keys())
    return names


def documented_names(markdown):
    """Backticked dotted names from table rows, placeholders expanded."""
    names = set()
    for line in markdown.splitlines():
        if not line.lstrip().startswith("|"):
            continue
        for name in NAME_RE.findall(line):
            if "<CONNECTOR>" in name:
                names.update(name.replace("<CONNECTOR>", c)
                             for c in CONNECTORS)
            else:
                names.add(name)
    return names


def main():
    args = sys.argv[1:]
    prefix = ""
    if args and args[0] == "--prefix":
        if len(args) < 2:
            sys.exit(__doc__)
        prefix = args[1]
        args = args[2:]
    if len(args) not in (1, 2):
        sys.exit(__doc__)
    with open(args[0]) as f:
        profile = json.load(f)
    docs_path = args[1] if len(args) == 2 else "docs/OBSERVABILITY.md"
    with open(docs_path) as f:
        documented = documented_names(f.read())
    emitted = emitted_names(profile)
    if prefix:
        documented = {n for n in documented if n.startswith(prefix)}
        emitted = {n for n in emitted if n.startswith(prefix)}

    undocumented = sorted(emitted - documented)
    dead = sorted(documented - emitted)
    if undocumented:
        print(f"emitted but not documented in {docs_path}:")
        for name in undocumented:
            print(f"  {name}")
    if dead:
        print(f"documented in {docs_path} but never emitted by the workload:")
        for name in dead:
            print(f"  {name}")
    if undocumented or dead:
        sys.exit(1)
    print(f"ok: {len(emitted)} metric names match the catalogue")


if __name__ == "__main__":
    main()
