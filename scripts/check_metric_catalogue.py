#!/usr/bin/env python3
"""Two-way diff of emitted metric names against a metric catalogue.

Usage: check_metric_catalogue.py [--prefix P] [--expect-prefix P]...
                                 <metrics.json> [catalogue.md...]

<metrics.json> is bench_profile --json or bench_serving --json output (or
the corresponding section of BENCH_kernels.json). Emitted names are every
per-operator counter plus every global-registry counter/histogram name.
Documented names are the backticked dotted names in the catalogue tables
of the markdown files (default docs/OBSERVABILITY.md); `<CONNECTOR>` rows
expand against the four exchange connector names. Several catalogue files
may be given when the workload's counters are documented across documents.

--prefix restricts both sides of the diff to names starting with P, so a
namespaced catalogue (e.g. the `serving.` table in docs/SERVING.md) can be
checked against a workload that also emits metrics documented elsewhere.

--expect-prefix P (repeatable) asserts that the workload emitted at least
one name starting with P — a liveness check that a subsystem's counters
(e.g. `exec.batch.`) did not silently disappear from the profile.

Fails (exit 1) on an emitted-but-undocumented name OR a
documented-but-never-emitted name, so the catalogue can neither lag the
code nor carry dead rows.
"""
import json
import re
import sys

CONNECTORS = ["HASH-EXCHANGE", "BROADCAST-EXCHANGE", "GATHER", "MERGE-GATHER"]
NAME_RE = re.compile(r"`([a-z]+\.[A-Za-z0-9_.<>-]+)`")


def emitted_names(profile):
    names = set()
    for query in profile.get("queries", []):
        for op in query["profile"]["operators"]:
            names.update(op["counters"].keys())
    metrics = profile.get("metrics", {})
    names.update(metrics.get("counters", {}).keys())
    names.update(metrics.get("histograms", {}).keys())
    return names


def documented_names(markdown):
    """Backticked dotted names from table rows, placeholders expanded."""
    names = set()
    for line in markdown.splitlines():
        if not line.lstrip().startswith("|"):
            continue
        for name in NAME_RE.findall(line):
            if "<CONNECTOR>" in name:
                names.update(name.replace("<CONNECTOR>", c)
                             for c in CONNECTORS)
            else:
                names.add(name)
    return names


def main():
    args = sys.argv[1:]
    prefix = ""
    expect_prefixes = []
    positional = []
    i = 0
    while i < len(args):
        if args[i] == "--prefix":
            if i + 1 >= len(args):
                sys.exit(__doc__)
            prefix = args[i + 1]
            i += 2
        elif args[i] == "--expect-prefix":
            if i + 1 >= len(args):
                sys.exit(__doc__)
            expect_prefixes.append(args[i + 1])
            i += 2
        else:
            positional.append(args[i])
            i += 1
    if not positional:
        sys.exit(__doc__)
    with open(positional[0]) as f:
        profile = json.load(f)
    docs_paths = positional[1:] or ["docs/OBSERVABILITY.md"]
    documented = set()
    for path in docs_paths:
        with open(path) as f:
            documented |= documented_names(f.read())
    emitted = emitted_names(profile)

    missing_prefixes = [p for p in expect_prefixes
                        if not any(n.startswith(p) for n in emitted)]
    if missing_prefixes:
        print("no emitted metric starts with the expected prefix(es):")
        for p in missing_prefixes:
            print(f"  {p}")
        sys.exit(1)

    if prefix:
        documented = {n for n in documented if n.startswith(prefix)}
        emitted = {n for n in emitted if n.startswith(prefix)}

    docs_label = ", ".join(docs_paths)
    undocumented = sorted(emitted - documented)
    dead = sorted(documented - emitted)
    if undocumented:
        print(f"emitted but not documented in {docs_label}:")
        for name in undocumented:
            print(f"  {name}")
    if dead:
        print(f"documented in {docs_label} but never emitted by the workload:")
        for name in dead:
            print(f"  {name}")
    if undocumented or dead:
        sys.exit(1)
    print(f"ok: {len(emitted)} metric names match the catalogue")


if __name__ == "__main__":
    main()
