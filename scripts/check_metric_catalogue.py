#!/usr/bin/env python3
"""Two-way diff of emitted metric names against docs/OBSERVABILITY.md.

Usage: check_metric_catalogue.py <profile.json> [docs/OBSERVABILITY.md]

<profile.json> is bench_profile --json output (or the query_profile
section of BENCH_kernels.json). Emitted names are every per-operator
counter plus every global-registry counter/histogram name. Documented
names are the backticked dotted names in the catalogue tables of
OBSERVABILITY.md; `<CONNECTOR>` rows expand against the four exchange
connector names.

Fails (exit 1) on an emitted-but-undocumented name OR a
documented-but-never-emitted name, so the catalogue can neither lag the
code nor carry dead rows.
"""
import json
import re
import sys

CONNECTORS = ["HASH-EXCHANGE", "BROADCAST-EXCHANGE", "GATHER", "MERGE-GATHER"]
NAME_RE = re.compile(r"`([a-z]+\.[A-Za-z0-9_.<>-]+)`")


def emitted_names(profile):
    names = set()
    for query in profile.get("queries", []):
        for op in query["profile"]["operators"]:
            names.update(op["counters"].keys())
    metrics = profile.get("metrics", {})
    names.update(metrics.get("counters", {}).keys())
    names.update(metrics.get("histograms", {}).keys())
    return names


def documented_names(markdown):
    """Backticked dotted names from table rows, placeholders expanded."""
    names = set()
    for line in markdown.splitlines():
        if not line.lstrip().startswith("|"):
            continue
        for name in NAME_RE.findall(line):
            if "<CONNECTOR>" in name:
                names.update(name.replace("<CONNECTOR>", c)
                             for c in CONNECTORS)
            else:
                names.add(name)
    return names


def main():
    if len(sys.argv) not in (2, 3):
        sys.exit(__doc__)
    with open(sys.argv[1]) as f:
        profile = json.load(f)
    docs_path = sys.argv[2] if len(sys.argv) == 3 else "docs/OBSERVABILITY.md"
    with open(docs_path) as f:
        documented = documented_names(f.read())
    emitted = emitted_names(profile)

    undocumented = sorted(emitted - documented)
    dead = sorted(documented - emitted)
    if undocumented:
        print(f"emitted but not documented in {docs_path}:")
        for name in undocumented:
            print(f"  {name}")
    if dead:
        print(f"documented in {docs_path} but never emitted by the workload:")
        for name in dead:
            print(f"  {name}")
    if undocumented or dead:
        sys.exit(1)
    print(f"ok: {len(emitted)} metric names match the catalogue")


if __name__ == "__main__":
    main()
