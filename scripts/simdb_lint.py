#!/usr/bin/env python3
"""Project-specific static checks that the compiler cannot express.

Usage: simdb_lint.py [--check] [--root DIR] [--allowlist FILE] [PATH...]

Five rules, each born from a real bug class in this engine's history:

  discarded-status   `(void)Foo(...)` throws away a Status/Result (the
                     classes are [[nodiscard]], so a cast is the only way
                     to discard one). Every such cast must carry a
                     justification comment on the same or preceding line.
  bare-cv-wait       A single-argument condition-variable wait must sit in
                     a `while (predicate)` loop (clang's thread-safety
                     analysis cannot see through predicate lambdas, so the
                     codebase standardizes on explicit loops; a bare wait
                     is a lost-wakeup / spurious-wakeup bug).
  fork-site          `fork()` is only legal in the socket transport's
                     eager-fork site. A fork anywhere else can capture
                     locked mutexes and background threads mid-flight.
  metric-name        GetCounter/GetHistogram with a string literal must
                     name a metric documented in the docs/ catalogues
                     (docs/OBSERVABILITY.md et al.). A typo'd name would
                     otherwise silently register a parallel metric.
                     Dynamically built names (string concatenation) are
                     skipped; the runtime catalogue check covers those.
  raw-mutex          `std::mutex` / `std::condition_variable` / lock RAII
                     types outside common/thread_annotations.h bypass the
                     annotated wrappers and the lock-rank deadlock
                     detector.

Findings can be suppressed two ways:
  * inline: a `simdb-lint: <rule>-ok` comment on the finding's line
    (e.g. `// simdb-lint: raw-mutex-ok (the wrapper itself)`), or for
    discarded-status any justification comment (see above);
  * allowlist: scripts/simdb_lint_allowlist.json maps rule -> list of
    "path" or "path:line" entries. The allowlist is frozen: CI fails on
    new findings, and stale entries (allowlisted but no longer firing)
    also fail so the file cannot rot.

Exit status: 0 clean, 1 findings (or stale allowlist entries), 2 usage.
"""

import argparse
import json
import re
import sys
from pathlib import Path

CPP_SUFFIXES = {".h", ".hpp", ".cc", ".cpp", ".cxx"}

# Files that implement the abstractions the rules protect.
WRAPPER_FILES = {
    "src/common/thread_annotations.h",  # the annotated wrapper itself
    "src/analysis/lock_rank.cc",        # detector internals (pre-wrapper)
    "src/analysis/lock_rank.h",
}
FORK_FILE = "src/transport/socket_transport.cc"

RAW_MUTEX_RE = re.compile(
    r"\bstd::(mutex|recursive_mutex|timed_mutex|shared_mutex|"
    r"condition_variable(_any)?|lock_guard|unique_lock|scoped_lock|"
    r"shared_lock)\b")
FORK_RE = re.compile(r"(?<![\w:.])fork\s*\(\s*\)")
VOID_DISCARD_RE = re.compile(r"\(void\)\s*[A-Za-z_][\w:.\->]*\s*\(")
CV_WAIT_RE = re.compile(r"[\w\)\]]\s*(?:\.|->)\s*[Ww]ait\s*\(")
METRIC_CALL_RE = re.compile(
    r"Get(Counter|Histogram)\s*\(\s*\"([A-Za-z0-9_.<>-]+)\"\s*\)")
# Backticked dotted names in markdown catalogue tables (same convention as
# scripts/check_metric_catalogue.py).
DOC_NAME_RE = re.compile(r"`([a-z]+\.[A-Za-z0-9_.<>-]+)`")
CONNECTORS = ["HASH-EXCHANGE", "BROADCAST-EXCHANGE", "GATHER", "MERGE-GATHER"]


class Finding:
    def __init__(self, rule, path, line, message):
        self.rule = rule
        self.path = path  # repo-relative, POSIX separators
        self.line = line
        self.message = message

    def key(self):
        return f"{self.path}:{self.line}"

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comment(line):
    """Code portion of a line (drops // comments; naive about strings)."""
    idx = line.find("//")
    return line if idx < 0 else line[:idx]


def has_suppression(lines, i, rule):
    """True when line i (or the line above) carries a rule suppression."""
    tag = f"simdb-lint: {rule}-ok"
    if tag in lines[i]:
        return True
    return i > 0 and tag in lines[i - 1]


def single_argument(call_tail):
    """True when the parenthesized argument list that starts at call_tail
    holds exactly one non-empty top-level argument (no comma at depth 1).
    Zero-argument calls (`ticket->Wait()`) are not condvar waits."""
    depth = 0
    saw_token = False
    for ch in call_tail:
        if ch in "([{":
            depth += 1
        elif ch in ")]}":
            depth -= 1
            if depth == 0:
                return saw_token  # closed without a top-level comma
        elif ch == "," and depth == 1:
            return False
        elif depth >= 1 and not ch.isspace():
            saw_token = True
    return saw_token  # unterminated on this line: assume single-arg


def documented_metric_names(root):
    names = set()
    for md in sorted((root / "docs").glob("*.md")):
        for line in md.read_text(encoding="utf-8").splitlines():
            if not line.lstrip().startswith("|"):
                continue
            for name in DOC_NAME_RE.findall(line):
                if "<CONNECTOR>" in name:
                    names.update(
                        name.replace("<CONNECTOR>", c) for c in CONNECTORS)
                else:
                    names.add(name)
    return names


def check_file(relpath, lines, metric_names):
    findings = []
    in_wrapper = relpath in WRAPPER_FILES

    for i, raw in enumerate(lines):
        lineno = i + 1
        code = strip_comment(raw)

        # raw-mutex: std synchronization primitives outside the wrapper.
        if not in_wrapper:
            m = RAW_MUTEX_RE.search(code)
            if m and not has_suppression(lines, i, "raw-mutex"):
                findings.append(Finding(
                    "raw-mutex", relpath, lineno,
                    f"std::{m.group(1)} outside common/thread_annotations.h; "
                    "use the annotated Mutex/CondVar wrappers"))

        # fork-site: fork() only in the socket transport.
        if relpath != FORK_FILE and FORK_RE.search(code):
            if not has_suppression(lines, i, "fork-site"):
                findings.append(Finding(
                    "fork-site", relpath, lineno,
                    "fork() outside the socket transport's eager-fork site"))

        # discarded-status: (void)Call(...) needs a why-comment.
        m = VOID_DISCARD_RE.search(code)
        if m:
            has_comment = "//" in raw or (i > 0 and "//" in lines[i - 1])
            if not has_comment:
                findings.append(Finding(
                    "discarded-status", relpath, lineno,
                    "(void)-discarded call without a justification comment "
                    "on this or the preceding line"))

        # bare-cv-wait: single-arg wait must sit in a while loop.
        m = CV_WAIT_RE.search(code)
        if m and single_argument(code[m.end() - 1:]):
            window = " ".join(
                strip_comment(lines[j])
                for j in range(max(0, i - 3), i + 1))
            if (not re.search(r"\bwhile\b", window)
                    and not has_suppression(lines, i, "bare-cv-wait")):
                findings.append(Finding(
                    "bare-cv-wait", relpath, lineno,
                    "condition-variable Wait without an enclosing "
                    "while(predicate) loop within 3 lines"))

        # metric-name: literal lookups must be in the docs catalogue.
        for kind, name in METRIC_CALL_RE.findall(code):
            if name not in metric_names and \
                    not has_suppression(lines, i, "metric-name"):
                findings.append(Finding(
                    "metric-name", relpath, lineno,
                    f'Get{kind}("{name}") not in the docs/ metric '
                    "catalogue tables"))

    return findings


def load_allowlist(path):
    if not path.exists():
        return {}
    data = json.loads(path.read_text(encoding="utf-8"))
    return {rule: set(entries) for rule, entries in data.items()
            if rule != "_comment"}


def main(argv):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--check", action="store_true",
                    help="CI mode: same checks, explicit-by-name in logs")
    ap.add_argument("--root", default=None,
                    help="repo root (default: this script's parent's parent)")
    ap.add_argument("--allowlist", default=None,
                    help="allowlist JSON (default: scripts/simdb_lint_allowlist.json)")
    ap.add_argument("paths", nargs="*",
                    help="files or directories to lint (default: src/)")
    args = ap.parse_args(argv)

    root = Path(args.root) if args.root else Path(__file__).resolve().parent.parent
    allowlist_path = (Path(args.allowlist) if args.allowlist
                      else root / "scripts" / "simdb_lint_allowlist.json")
    targets = [root / p for p in args.paths] if args.paths else [root / "src"]

    files = []
    for target in targets:
        if target.is_dir():
            files.extend(p for p in sorted(target.rglob("*"))
                         if p.suffix in CPP_SUFFIXES)
        elif target.is_file():
            files.append(target)
        else:
            print(f"simdb_lint: no such path: {target}", file=sys.stderr)
            return 2

    metric_names = documented_metric_names(root)
    allowlist = load_allowlist(allowlist_path)

    findings = []
    for path in files:
        rel = path.relative_to(root).as_posix()
        lines = path.read_text(encoding="utf-8", errors="replace").splitlines()
        findings.extend(check_file(rel, lines, metric_names))

    # Partition against the frozen allowlist; track which entries matched so
    # stale entries fail too.
    used = {rule: set() for rule in allowlist}
    reported = []
    for f in findings:
        allowed = allowlist.get(f.rule, set())
        if f.key() in allowed:
            used[f.rule].add(f.key())
        elif f.path in allowed:
            used[f.rule].add(f.path)
        else:
            reported.append(f)

    exit_code = 0
    for f in reported:
        print(str(f))
        exit_code = 1

    for rule, entries in allowlist.items():
        stale = entries - used.get(rule, set())
        for entry in sorted(stale):
            print(f"simdb_lint: stale allowlist entry [{rule}] {entry} "
                  "(no longer fires; remove it)")
            exit_code = 1

    if exit_code == 0:
        print(f"simdb_lint: OK ({len(files)} files, "
              f"{len(findings)} allowlisted findings)")
    return exit_code


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
