file(REMOVE_RECURSE
  "CMakeFiles/bench_aqlplus_compile.dir/bench_aqlplus_compile.cpp.o"
  "CMakeFiles/bench_aqlplus_compile.dir/bench_aqlplus_compile.cpp.o.d"
  "bench_aqlplus_compile"
  "bench_aqlplus_compile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_aqlplus_compile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
