# Empty dependencies file for bench_aqlplus_compile.
# This may be replaced when dependencies are built.
