file(REMOVE_RECURSE
  "libsimdb_bench_util.a"
)
