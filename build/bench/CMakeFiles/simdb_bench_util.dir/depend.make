# Empty dependencies file for simdb_bench_util.
# This may be replaced when dependencies are built.
