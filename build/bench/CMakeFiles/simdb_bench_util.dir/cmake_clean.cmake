file(REMOVE_RECURSE
  "CMakeFiles/simdb_bench_util.dir/bench_util.cc.o"
  "CMakeFiles/simdb_bench_util.dir/bench_util.cc.o.d"
  "libsimdb_bench_util.a"
  "libsimdb_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simdb_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
