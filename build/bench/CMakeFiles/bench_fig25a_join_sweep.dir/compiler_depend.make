# Empty compiler generated dependencies file for bench_fig25a_join_sweep.
# This may be replaced when dependencies are built.
