file(REMOVE_RECURSE
  "CMakeFiles/bench_fig27_scaling.dir/bench_fig27_scaling.cpp.o"
  "CMakeFiles/bench_fig27_scaling.dir/bench_fig27_scaling.cpp.o.d"
  "bench_fig27_scaling"
  "bench_fig27_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig27_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
