file(REMOVE_RECURSE
  "CMakeFiles/bench_fig25b_multiway.dir/bench_fig25b_multiway.cpp.o"
  "CMakeFiles/bench_fig25b_multiway.dir/bench_fig25b_multiway.cpp.o.d"
  "bench_fig25b_multiway"
  "bench_fig25b_multiway.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig25b_multiway.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
