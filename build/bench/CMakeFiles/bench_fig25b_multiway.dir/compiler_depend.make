# Empty compiler generated dependencies file for bench_fig25b_multiway.
# This may be replaced when dependencies are built.
