file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_candidates.dir/bench_table6_candidates.cpp.o"
  "CMakeFiles/bench_table6_candidates.dir/bench_table6_candidates.cpp.o.d"
  "bench_table6_candidates"
  "bench_table6_candidates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_candidates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
