file(REMOVE_RECURSE
  "CMakeFiles/bench_fig24_join.dir/bench_fig24_join.cpp.o"
  "CMakeFiles/bench_fig24_join.dir/bench_fig24_join.cpp.o.d"
  "bench_fig24_join"
  "bench_fig24_join.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig24_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
