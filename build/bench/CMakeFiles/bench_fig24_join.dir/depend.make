# Empty dependencies file for bench_fig24_join.
# This may be replaced when dependencies are built.
