# Empty dependencies file for fuzzy_product_search.
# This may be replaced when dependencies are built.
