file(REMOVE_RECURSE
  "CMakeFiles/fuzzy_product_search.dir/fuzzy_product_search.cpp.o"
  "CMakeFiles/fuzzy_product_search.dir/fuzzy_product_search.cpp.o.d"
  "fuzzy_product_search"
  "fuzzy_product_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuzzy_product_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
