file(REMOVE_RECURSE
  "CMakeFiles/aqlplus_custom_rewrite.dir/aqlplus_custom_rewrite.cpp.o"
  "CMakeFiles/aqlplus_custom_rewrite.dir/aqlplus_custom_rewrite.cpp.o.d"
  "aqlplus_custom_rewrite"
  "aqlplus_custom_rewrite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aqlplus_custom_rewrite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
