# Empty dependencies file for aqlplus_custom_rewrite.
# This may be replaced when dependencies are built.
