file(REMOVE_RECURSE
  "CMakeFiles/aql_shell.dir/aql_shell.cpp.o"
  "CMakeFiles/aql_shell.dir/aql_shell.cpp.o.d"
  "aql_shell"
  "aql_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aql_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
