# Empty dependencies file for aql_shell.
# This may be replaced when dependencies are built.
