# Empty compiler generated dependencies file for social_media.
# This may be replaced when dependencies are built.
