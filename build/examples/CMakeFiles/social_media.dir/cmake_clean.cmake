file(REMOVE_RECURSE
  "CMakeFiles/social_media.dir/social_media.cpp.o"
  "CMakeFiles/social_media.dir/social_media.cpp.o.d"
  "social_media"
  "social_media.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/social_media.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
