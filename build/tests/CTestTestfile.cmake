# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(common_test "/root/repo/build/tests/common_test")
set_tests_properties(common_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;12;simdb_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(value_test "/root/repo/build/tests/value_test")
set_tests_properties(value_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;13;simdb_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(similarity_test "/root/repo/build/tests/similarity_test")
set_tests_properties(similarity_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;14;simdb_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(storage_test "/root/repo/build/tests/storage_test")
set_tests_properties(storage_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;15;simdb_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(hyracks_test "/root/repo/build/tests/hyracks_test")
set_tests_properties(hyracks_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;16;simdb_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(functions_test "/root/repo/build/tests/functions_test")
set_tests_properties(functions_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;17;simdb_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(exchange_property_test "/root/repo/build/tests/exchange_property_test")
set_tests_properties(exchange_property_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;18;simdb_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(algebricks_test "/root/repo/build/tests/algebricks_test")
set_tests_properties(algebricks_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;19;simdb_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(aql_test "/root/repo/build/tests/aql_test")
set_tests_properties(aql_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;20;simdb_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(core_test "/root/repo/build/tests/core_test")
set_tests_properties(core_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;21;simdb_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(core_extended_test "/root/repo/build/tests/core_extended_test")
set_tests_properties(core_extended_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;22;simdb_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(datagen_test "/root/repo/build/tests/datagen_test")
set_tests_properties(datagen_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;23;simdb_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(plan_equivalence_test "/root/repo/build/tests/plan_equivalence_test")
set_tests_properties(plan_equivalence_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;24;simdb_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(integration_scale_test "/root/repo/build/tests/integration_scale_test")
set_tests_properties(integration_scale_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;25;simdb_add_test;/root/repo/tests/CMakeLists.txt;0;")
