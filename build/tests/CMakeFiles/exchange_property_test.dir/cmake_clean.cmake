file(REMOVE_RECURSE
  "CMakeFiles/exchange_property_test.dir/exchange_property_test.cc.o"
  "CMakeFiles/exchange_property_test.dir/exchange_property_test.cc.o.d"
  "exchange_property_test"
  "exchange_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exchange_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
