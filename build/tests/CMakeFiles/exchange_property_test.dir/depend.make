# Empty dependencies file for exchange_property_test.
# This may be replaced when dependencies are built.
