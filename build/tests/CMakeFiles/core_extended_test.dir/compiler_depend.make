# Empty compiler generated dependencies file for core_extended_test.
# This may be replaced when dependencies are built.
