file(REMOVE_RECURSE
  "CMakeFiles/core_extended_test.dir/core_extended_test.cc.o"
  "CMakeFiles/core_extended_test.dir/core_extended_test.cc.o.d"
  "core_extended_test"
  "core_extended_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_extended_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
