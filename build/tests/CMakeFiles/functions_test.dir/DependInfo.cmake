
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/functions_test.cc" "tests/CMakeFiles/functions_test.dir/functions_test.cc.o" "gcc" "tests/CMakeFiles/functions_test.dir/functions_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cluster/CMakeFiles/simdb_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/simdb_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/simdb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/aql/CMakeFiles/simdb_aql.dir/DependInfo.cmake"
  "/root/repo/build/src/algebricks/CMakeFiles/simdb_algebricks.dir/DependInfo.cmake"
  "/root/repo/build/src/hyracks/CMakeFiles/simdb_hyracks.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/simdb_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/similarity/CMakeFiles/simdb_similarity.dir/DependInfo.cmake"
  "/root/repo/build/src/adm/CMakeFiles/simdb_adm.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/simdb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
