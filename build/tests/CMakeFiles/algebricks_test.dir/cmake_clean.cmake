file(REMOVE_RECURSE
  "CMakeFiles/algebricks_test.dir/algebricks_test.cc.o"
  "CMakeFiles/algebricks_test.dir/algebricks_test.cc.o.d"
  "algebricks_test"
  "algebricks_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/algebricks_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
