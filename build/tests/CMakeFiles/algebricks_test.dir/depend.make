# Empty dependencies file for algebricks_test.
# This may be replaced when dependencies are built.
