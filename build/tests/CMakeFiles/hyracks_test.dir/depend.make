# Empty dependencies file for hyracks_test.
# This may be replaced when dependencies are built.
