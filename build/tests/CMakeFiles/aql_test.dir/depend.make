# Empty dependencies file for aql_test.
# This may be replaced when dependencies are built.
