# Empty compiler generated dependencies file for simdb_cluster.
# This may be replaced when dependencies are built.
