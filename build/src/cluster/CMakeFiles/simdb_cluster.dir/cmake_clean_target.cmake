file(REMOVE_RECURSE
  "libsimdb_cluster.a"
)
