file(REMOVE_RECURSE
  "CMakeFiles/simdb_cluster.dir/cost_model.cc.o"
  "CMakeFiles/simdb_cluster.dir/cost_model.cc.o.d"
  "libsimdb_cluster.a"
  "libsimdb_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simdb_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
