file(REMOVE_RECURSE
  "libsimdb_similarity.a"
)
