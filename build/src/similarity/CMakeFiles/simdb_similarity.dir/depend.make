# Empty dependencies file for simdb_similarity.
# This may be replaced when dependencies are built.
