
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/similarity/edit_distance.cc" "src/similarity/CMakeFiles/simdb_similarity.dir/edit_distance.cc.o" "gcc" "src/similarity/CMakeFiles/simdb_similarity.dir/edit_distance.cc.o.d"
  "/root/repo/src/similarity/index_compat.cc" "src/similarity/CMakeFiles/simdb_similarity.dir/index_compat.cc.o" "gcc" "src/similarity/CMakeFiles/simdb_similarity.dir/index_compat.cc.o.d"
  "/root/repo/src/similarity/jaccard.cc" "src/similarity/CMakeFiles/simdb_similarity.dir/jaccard.cc.o" "gcc" "src/similarity/CMakeFiles/simdb_similarity.dir/jaccard.cc.o.d"
  "/root/repo/src/similarity/similarity_function.cc" "src/similarity/CMakeFiles/simdb_similarity.dir/similarity_function.cc.o" "gcc" "src/similarity/CMakeFiles/simdb_similarity.dir/similarity_function.cc.o.d"
  "/root/repo/src/similarity/tokenizer.cc" "src/similarity/CMakeFiles/simdb_similarity.dir/tokenizer.cc.o" "gcc" "src/similarity/CMakeFiles/simdb_similarity.dir/tokenizer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/adm/CMakeFiles/simdb_adm.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/simdb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
