file(REMOVE_RECURSE
  "CMakeFiles/simdb_similarity.dir/edit_distance.cc.o"
  "CMakeFiles/simdb_similarity.dir/edit_distance.cc.o.d"
  "CMakeFiles/simdb_similarity.dir/index_compat.cc.o"
  "CMakeFiles/simdb_similarity.dir/index_compat.cc.o.d"
  "CMakeFiles/simdb_similarity.dir/jaccard.cc.o"
  "CMakeFiles/simdb_similarity.dir/jaccard.cc.o.d"
  "CMakeFiles/simdb_similarity.dir/similarity_function.cc.o"
  "CMakeFiles/simdb_similarity.dir/similarity_function.cc.o.d"
  "CMakeFiles/simdb_similarity.dir/tokenizer.cc.o"
  "CMakeFiles/simdb_similarity.dir/tokenizer.cc.o.d"
  "libsimdb_similarity.a"
  "libsimdb_similarity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simdb_similarity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
