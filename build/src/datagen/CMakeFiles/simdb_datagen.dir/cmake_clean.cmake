file(REMOVE_RECURSE
  "CMakeFiles/simdb_datagen.dir/textgen.cc.o"
  "CMakeFiles/simdb_datagen.dir/textgen.cc.o.d"
  "libsimdb_datagen.a"
  "libsimdb_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simdb_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
