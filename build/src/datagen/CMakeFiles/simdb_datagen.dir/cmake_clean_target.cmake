file(REMOVE_RECURSE
  "libsimdb_datagen.a"
)
