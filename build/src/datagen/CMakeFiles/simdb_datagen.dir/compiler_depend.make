# Empty compiler generated dependencies file for simdb_datagen.
# This may be replaced when dependencies are built.
