file(REMOVE_RECURSE
  "CMakeFiles/simdb_storage.dir/catalog.cc.o"
  "CMakeFiles/simdb_storage.dir/catalog.cc.o.d"
  "CMakeFiles/simdb_storage.dir/dataset.cc.o"
  "CMakeFiles/simdb_storage.dir/dataset.cc.o.d"
  "CMakeFiles/simdb_storage.dir/file_util.cc.o"
  "CMakeFiles/simdb_storage.dir/file_util.cc.o.d"
  "CMakeFiles/simdb_storage.dir/index_tokens.cc.o"
  "CMakeFiles/simdb_storage.dir/index_tokens.cc.o.d"
  "CMakeFiles/simdb_storage.dir/inverted_index.cc.o"
  "CMakeFiles/simdb_storage.dir/inverted_index.cc.o.d"
  "CMakeFiles/simdb_storage.dir/key.cc.o"
  "CMakeFiles/simdb_storage.dir/key.cc.o.d"
  "CMakeFiles/simdb_storage.dir/lsm_index.cc.o"
  "CMakeFiles/simdb_storage.dir/lsm_index.cc.o.d"
  "CMakeFiles/simdb_storage.dir/sorted_run.cc.o"
  "CMakeFiles/simdb_storage.dir/sorted_run.cc.o.d"
  "libsimdb_storage.a"
  "libsimdb_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simdb_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
