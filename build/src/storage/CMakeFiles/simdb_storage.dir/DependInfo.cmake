
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/catalog.cc" "src/storage/CMakeFiles/simdb_storage.dir/catalog.cc.o" "gcc" "src/storage/CMakeFiles/simdb_storage.dir/catalog.cc.o.d"
  "/root/repo/src/storage/dataset.cc" "src/storage/CMakeFiles/simdb_storage.dir/dataset.cc.o" "gcc" "src/storage/CMakeFiles/simdb_storage.dir/dataset.cc.o.d"
  "/root/repo/src/storage/file_util.cc" "src/storage/CMakeFiles/simdb_storage.dir/file_util.cc.o" "gcc" "src/storage/CMakeFiles/simdb_storage.dir/file_util.cc.o.d"
  "/root/repo/src/storage/index_tokens.cc" "src/storage/CMakeFiles/simdb_storage.dir/index_tokens.cc.o" "gcc" "src/storage/CMakeFiles/simdb_storage.dir/index_tokens.cc.o.d"
  "/root/repo/src/storage/inverted_index.cc" "src/storage/CMakeFiles/simdb_storage.dir/inverted_index.cc.o" "gcc" "src/storage/CMakeFiles/simdb_storage.dir/inverted_index.cc.o.d"
  "/root/repo/src/storage/key.cc" "src/storage/CMakeFiles/simdb_storage.dir/key.cc.o" "gcc" "src/storage/CMakeFiles/simdb_storage.dir/key.cc.o.d"
  "/root/repo/src/storage/lsm_index.cc" "src/storage/CMakeFiles/simdb_storage.dir/lsm_index.cc.o" "gcc" "src/storage/CMakeFiles/simdb_storage.dir/lsm_index.cc.o.d"
  "/root/repo/src/storage/sorted_run.cc" "src/storage/CMakeFiles/simdb_storage.dir/sorted_run.cc.o" "gcc" "src/storage/CMakeFiles/simdb_storage.dir/sorted_run.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/adm/CMakeFiles/simdb_adm.dir/DependInfo.cmake"
  "/root/repo/build/src/similarity/CMakeFiles/simdb_similarity.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/simdb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
