# Empty compiler generated dependencies file for simdb_storage.
# This may be replaced when dependencies are built.
