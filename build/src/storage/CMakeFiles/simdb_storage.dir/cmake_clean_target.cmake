file(REMOVE_RECURSE
  "libsimdb_storage.a"
)
