# Empty compiler generated dependencies file for simdb_adm.
# This may be replaced when dependencies are built.
