file(REMOVE_RECURSE
  "libsimdb_adm.a"
)
