# Empty dependencies file for simdb_adm.
# This may be replaced when dependencies are built.
