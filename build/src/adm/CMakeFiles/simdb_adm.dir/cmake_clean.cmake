file(REMOVE_RECURSE
  "CMakeFiles/simdb_adm.dir/value.cc.o"
  "CMakeFiles/simdb_adm.dir/value.cc.o.d"
  "CMakeFiles/simdb_adm.dir/value_json.cc.o"
  "CMakeFiles/simdb_adm.dir/value_json.cc.o.d"
  "CMakeFiles/simdb_adm.dir/value_serde.cc.o"
  "CMakeFiles/simdb_adm.dir/value_serde.cc.o.d"
  "libsimdb_adm.a"
  "libsimdb_adm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simdb_adm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
