# Empty compiler generated dependencies file for simdb_common.
# This may be replaced when dependencies are built.
