file(REMOVE_RECURSE
  "libsimdb_common.a"
)
