file(REMOVE_RECURSE
  "CMakeFiles/simdb_common.dir/logging.cc.o"
  "CMakeFiles/simdb_common.dir/logging.cc.o.d"
  "CMakeFiles/simdb_common.dir/random.cc.o"
  "CMakeFiles/simdb_common.dir/random.cc.o.d"
  "CMakeFiles/simdb_common.dir/status.cc.o"
  "CMakeFiles/simdb_common.dir/status.cc.o.d"
  "CMakeFiles/simdb_common.dir/thread_pool.cc.o"
  "CMakeFiles/simdb_common.dir/thread_pool.cc.o.d"
  "libsimdb_common.a"
  "libsimdb_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simdb_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
