file(REMOVE_RECURSE
  "CMakeFiles/simdb_aql.dir/lexer.cc.o"
  "CMakeFiles/simdb_aql.dir/lexer.cc.o.d"
  "CMakeFiles/simdb_aql.dir/parser.cc.o"
  "CMakeFiles/simdb_aql.dir/parser.cc.o.d"
  "CMakeFiles/simdb_aql.dir/translator.cc.o"
  "CMakeFiles/simdb_aql.dir/translator.cc.o.d"
  "libsimdb_aql.a"
  "libsimdb_aql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simdb_aql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
