# Empty compiler generated dependencies file for simdb_aql.
# This may be replaced when dependencies are built.
