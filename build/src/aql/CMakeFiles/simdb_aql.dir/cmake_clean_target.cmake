file(REMOVE_RECURSE
  "libsimdb_aql.a"
)
