file(REMOVE_RECURSE
  "CMakeFiles/simdb_core.dir/query_processor.cc.o"
  "CMakeFiles/simdb_core.dir/query_processor.cc.o.d"
  "CMakeFiles/simdb_core.dir/rules_similarity.cc.o"
  "CMakeFiles/simdb_core.dir/rules_similarity.cc.o.d"
  "CMakeFiles/simdb_core.dir/sim_predicate.cc.o"
  "CMakeFiles/simdb_core.dir/sim_predicate.cc.o.d"
  "CMakeFiles/simdb_core.dir/three_stage.cc.o"
  "CMakeFiles/simdb_core.dir/three_stage.cc.o.d"
  "libsimdb_core.a"
  "libsimdb_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simdb_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
