file(REMOVE_RECURSE
  "libsimdb_core.a"
)
