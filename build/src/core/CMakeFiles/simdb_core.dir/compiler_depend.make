# Empty compiler generated dependencies file for simdb_core.
# This may be replaced when dependencies are built.
