
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hyracks/exec.cc" "src/hyracks/CMakeFiles/simdb_hyracks.dir/exec.cc.o" "gcc" "src/hyracks/CMakeFiles/simdb_hyracks.dir/exec.cc.o.d"
  "/root/repo/src/hyracks/expr.cc" "src/hyracks/CMakeFiles/simdb_hyracks.dir/expr.cc.o" "gcc" "src/hyracks/CMakeFiles/simdb_hyracks.dir/expr.cc.o.d"
  "/root/repo/src/hyracks/functions.cc" "src/hyracks/CMakeFiles/simdb_hyracks.dir/functions.cc.o" "gcc" "src/hyracks/CMakeFiles/simdb_hyracks.dir/functions.cc.o.d"
  "/root/repo/src/hyracks/ops_basic.cc" "src/hyracks/CMakeFiles/simdb_hyracks.dir/ops_basic.cc.o" "gcc" "src/hyracks/CMakeFiles/simdb_hyracks.dir/ops_basic.cc.o.d"
  "/root/repo/src/hyracks/ops_exchange.cc" "src/hyracks/CMakeFiles/simdb_hyracks.dir/ops_exchange.cc.o" "gcc" "src/hyracks/CMakeFiles/simdb_hyracks.dir/ops_exchange.cc.o.d"
  "/root/repo/src/hyracks/ops_group.cc" "src/hyracks/CMakeFiles/simdb_hyracks.dir/ops_group.cc.o" "gcc" "src/hyracks/CMakeFiles/simdb_hyracks.dir/ops_group.cc.o.d"
  "/root/repo/src/hyracks/ops_index.cc" "src/hyracks/CMakeFiles/simdb_hyracks.dir/ops_index.cc.o" "gcc" "src/hyracks/CMakeFiles/simdb_hyracks.dir/ops_index.cc.o.d"
  "/root/repo/src/hyracks/ops_join.cc" "src/hyracks/CMakeFiles/simdb_hyracks.dir/ops_join.cc.o" "gcc" "src/hyracks/CMakeFiles/simdb_hyracks.dir/ops_join.cc.o.d"
  "/root/repo/src/hyracks/ops_scan.cc" "src/hyracks/CMakeFiles/simdb_hyracks.dir/ops_scan.cc.o" "gcc" "src/hyracks/CMakeFiles/simdb_hyracks.dir/ops_scan.cc.o.d"
  "/root/repo/src/hyracks/tuple.cc" "src/hyracks/CMakeFiles/simdb_hyracks.dir/tuple.cc.o" "gcc" "src/hyracks/CMakeFiles/simdb_hyracks.dir/tuple.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/storage/CMakeFiles/simdb_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/similarity/CMakeFiles/simdb_similarity.dir/DependInfo.cmake"
  "/root/repo/build/src/adm/CMakeFiles/simdb_adm.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/simdb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
