# Empty compiler generated dependencies file for simdb_hyracks.
# This may be replaced when dependencies are built.
