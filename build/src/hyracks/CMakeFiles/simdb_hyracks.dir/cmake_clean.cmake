file(REMOVE_RECURSE
  "CMakeFiles/simdb_hyracks.dir/exec.cc.o"
  "CMakeFiles/simdb_hyracks.dir/exec.cc.o.d"
  "CMakeFiles/simdb_hyracks.dir/expr.cc.o"
  "CMakeFiles/simdb_hyracks.dir/expr.cc.o.d"
  "CMakeFiles/simdb_hyracks.dir/functions.cc.o"
  "CMakeFiles/simdb_hyracks.dir/functions.cc.o.d"
  "CMakeFiles/simdb_hyracks.dir/ops_basic.cc.o"
  "CMakeFiles/simdb_hyracks.dir/ops_basic.cc.o.d"
  "CMakeFiles/simdb_hyracks.dir/ops_exchange.cc.o"
  "CMakeFiles/simdb_hyracks.dir/ops_exchange.cc.o.d"
  "CMakeFiles/simdb_hyracks.dir/ops_group.cc.o"
  "CMakeFiles/simdb_hyracks.dir/ops_group.cc.o.d"
  "CMakeFiles/simdb_hyracks.dir/ops_index.cc.o"
  "CMakeFiles/simdb_hyracks.dir/ops_index.cc.o.d"
  "CMakeFiles/simdb_hyracks.dir/ops_join.cc.o"
  "CMakeFiles/simdb_hyracks.dir/ops_join.cc.o.d"
  "CMakeFiles/simdb_hyracks.dir/ops_scan.cc.o"
  "CMakeFiles/simdb_hyracks.dir/ops_scan.cc.o.d"
  "CMakeFiles/simdb_hyracks.dir/tuple.cc.o"
  "CMakeFiles/simdb_hyracks.dir/tuple.cc.o.d"
  "libsimdb_hyracks.a"
  "libsimdb_hyracks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simdb_hyracks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
