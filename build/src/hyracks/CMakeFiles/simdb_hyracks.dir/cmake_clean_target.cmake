file(REMOVE_RECURSE
  "libsimdb_hyracks.a"
)
