file(REMOVE_RECURSE
  "libsimdb_algebricks.a"
)
