file(REMOVE_RECURSE
  "CMakeFiles/simdb_algebricks.dir/jobgen.cc.o"
  "CMakeFiles/simdb_algebricks.dir/jobgen.cc.o.d"
  "CMakeFiles/simdb_algebricks.dir/lexpr.cc.o"
  "CMakeFiles/simdb_algebricks.dir/lexpr.cc.o.d"
  "CMakeFiles/simdb_algebricks.dir/lop.cc.o"
  "CMakeFiles/simdb_algebricks.dir/lop.cc.o.d"
  "CMakeFiles/simdb_algebricks.dir/rules.cc.o"
  "CMakeFiles/simdb_algebricks.dir/rules.cc.o.d"
  "libsimdb_algebricks.a"
  "libsimdb_algebricks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simdb_algebricks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
