# Empty compiler generated dependencies file for simdb_algebricks.
# This may be replaced when dependencies are built.
