// Figure 24: average execution time of similarity-join queries on the
// Amazon-review dataset (outer branch limited to 10 records, as in the
// paper's protocol). (a) Jaccard joins at 0.2/0.5/0.8 — without an index the
// three-stage plan is used; (b) edit-distance joins at 1/2/3 — without an
// index a nested-loop join is used. Exact-match join (hash join) baseline.
// Paper shapes: exact-match join is far cheaper (hash join); indexed join
// time falls with rising Jaccard threshold and rises with the edit-distance
// threshold.
#include <cstdio>

#include "bench/bench_util.h"

using namespace simdb;
using namespace simdb::bench;

namespace {

Status Run() {
  BenchEnv env({2, 2});
  core::QueryProcessor& engine = env.engine();
  int64_t count = Scaled(20000);
  const int kOuter = 10;

  SIMDB_RETURN_IF_ERROR(LoadTextDataset(engine, "AmazonReview",
                                        datagen::AmazonProfile(), count)
                            .status());
  SIMDB_RETURN_IF_ERROR(engine.Execute(R"(
    create index smix on AmazonReview(summary) type keyword;
    create index nix on AmazonReview(reviewerName) type ngram(2);
  )"));
  std::string outer_limit = "$o.id < " + std::to_string(kOuter);

  auto jaccard_join = [&](double threshold) {
    return "count(for $o in dataset AmazonReview "
           "for $i in dataset AmazonReview "
           "where similarity-jaccard(word-tokens($o.summary), "
           "word-tokens($i.summary)) >= " + std::to_string(threshold) +
           " and " + outer_limit + " and $o.id < $i.id "
           "return {'o': $o.id, 'i': $i.id})";
  };
  auto ed_join = [&](int k) {
    return "count(for $o in dataset AmazonReview "
           "for $i in dataset AmazonReview "
           "where edit-distance($o.reviewerName, $i.reviewerName) <= " +
           std::to_string(k) + " and " + outer_limit +
           " and $o.id < $i.id return {'o': $o.id, 'i': $i.id})";
  };
  std::string exact_join =
      "count(for $o in dataset AmazonReview for $i in dataset AmazonReview "
      "where $o.summary = $i.summary and " + outer_limit +
      " and $o.id < $i.id return {'o': $o.id})";

  PrintTitle("Figure 24(a): Jaccard join on `summary` (10 outer records)",
             "paper: without-index = three-stage; exact-match hash join wins");
  PrintRow({"threshold", "without-index", "with-index", "pairs"});
  {
    SIMDB_ASSIGN_OR_RETURN(QueryTiming exact, TimeQuery(engine, exact_join));
    PrintRow({"exact match", Seconds(exact.makespan_seconds), "-",
              std::to_string(exact.result_count)});
    for (double threshold : {0.2, 0.5, 0.8}) {
      SIMDB_ASSIGN_OR_RETURN(QueryTiming on,
                             TimeQuery(engine, jaccard_join(threshold)));
      engine.opt_context().enable_index_join = false;  // -> three-stage
      SIMDB_ASSIGN_OR_RETURN(QueryTiming off,
                             TimeQuery(engine, jaccard_join(threshold)));
      engine.opt_context().enable_index_join = true;
      PrintRow({std::to_string(threshold).substr(0, 3),
                Seconds(off.makespan_seconds), Seconds(on.makespan_seconds),
                std::to_string(on.result_count)});
      if (on.result_count != off.result_count) {
        return Status::Internal("plan disagreement at threshold " +
                                std::to_string(threshold));
      }
    }
  }

  PrintTitle("Figure 24(b): edit-distance join on `reviewerName`",
             "paper: without-index = nested loop (flat, high); indexed time "
             "rises with k");
  PrintRow({"threshold", "without-index", "with-index", "pairs"});
  for (int k : {1, 2, 3}) {
    SIMDB_ASSIGN_OR_RETURN(QueryTiming on, TimeQuery(engine, ed_join(k)));
    engine.opt_context().enable_index_join = false;  // -> nested loop
    SIMDB_ASSIGN_OR_RETURN(QueryTiming off, TimeQuery(engine, ed_join(k)));
    engine.opt_context().enable_index_join = true;
    PrintRow({std::to_string(k), Seconds(off.makespan_seconds),
              Seconds(on.makespan_seconds), std::to_string(on.result_count)});
    if (on.result_count != off.result_count) {
      return Status::Internal("plan disagreement at k=" + std::to_string(k));
    }
  }
  std::printf("records: %lld; simulated 2x2 cluster makespans\n",
              static_cast<long long>(count));
  return Status::OK();
}

}  // namespace

int main() {
  Status status = Run();
  if (!status.ok()) {
    std::fprintf(stderr, "bench failed: %s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}
