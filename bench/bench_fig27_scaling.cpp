// Figure 27: scale-out and speed-up of Jaccard selection and join queries
// (threshold 0.8, with and without indexes) as the simulated cluster grows
// from 1 to 8 nodes (2 partitions per node, as in the paper).
//   (a) scale-out: data grows with the cluster (12.5% per node) — ideally a
//       flat line; the non-indexed three-stage join drifts up slightly from
//       the global-token-order broadcast.
//   (b,c) speed-up: fixed data — ideally linear in the node count; small
//       queries flatten early because of fixed per-query overhead.
#include <cstdio>

#include "bench/bench_util.h"

using namespace simdb;
using namespace simdb::bench;

namespace {

struct ScalingResult {
  double jac_sel_index = 0, jac_sel_noindex = 0;
  double jac_join_index = 0, jac_join_noindex = 0;
};

Result<ScalingResult> RunConfig(int nodes, int64_t records) {
  BenchEnv env({nodes, 2});
  core::QueryProcessor& engine = env.engine();
  SIMDB_ASSIGN_OR_RETURN(auto gen,
                         LoadTextDataset(engine, "AmazonReview",
                                         datagen::AmazonProfile(), records));
  SIMDB_RETURN_IF_ERROR(engine.Execute(
      "create index smix on AmazonReview(summary) type keyword;"));
  datagen::WorkloadSampler sampler(gen->texts());

  ScalingResult out;
  const int kQueries = 5;
  for (int q = 0; q < kQueries; ++q) {
    SIMDB_ASSIGN_OR_RETURN(std::string value, sampler.SampleWithMinWords(3));
    std::string escaped;
    for (char c : value) {
      if (c != '\'') escaped.push_back(c);
    }
    std::string selection =
        "count(for $t in dataset AmazonReview where "
        "similarity-jaccard(word-tokens($t.summary), word-tokens('" +
        escaped + "')) >= 0.8 return $t)";
    engine.opt_context().enable_index_select = true;
    SIMDB_ASSIGN_OR_RETURN(QueryTiming sel_on, TimeQuery(engine, selection));
    engine.opt_context().enable_index_select = false;
    SIMDB_ASSIGN_OR_RETURN(QueryTiming sel_off, TimeQuery(engine, selection));
    engine.opt_context().enable_index_select = true;
    out.jac_sel_index += sel_on.makespan_seconds / kQueries;
    out.jac_sel_noindex += sel_off.makespan_seconds / kQueries;
  }
  std::string join =
      "count(for $o in dataset AmazonReview for $i in dataset AmazonReview "
      "where similarity-jaccard(word-tokens($o.summary), "
      "word-tokens($i.summary)) >= 0.8 and $o.id < 10 and $o.id < $i.id "
      "return {'o': $o.id})";
  SIMDB_ASSIGN_OR_RETURN(QueryTiming join_on, TimeQuery(engine, join));
  engine.opt_context().enable_index_join = false;  // -> three-stage
  SIMDB_ASSIGN_OR_RETURN(QueryTiming join_off, TimeQuery(engine, join));
  engine.opt_context().enable_index_join = true;
  out.jac_join_index = join_on.makespan_seconds;
  out.jac_join_noindex = join_off.makespan_seconds;
  return out;
}

Status Run() {
  const int64_t kFullData = Scaled(16000);
  const int kNodeCounts[] = {1, 2, 4, 8};

  PrintTitle("Figure 27(a): scale-out (data grows with the cluster)",
             "paper: near-flat lines; the three-stage join pays a growing "
             "token-order broadcast");
  PrintRow({"nodes", "Jac-Join-NoIdx", "Jac-Sel-NoIdx", "Jac-Join-Idx",
            "Jac-Sel-Idx"});
  for (int nodes : kNodeCounts) {
    int64_t records = kFullData * nodes / 8;
    SIMDB_ASSIGN_OR_RETURN(ScalingResult r, RunConfig(nodes, records));
    PrintRow({std::to_string(nodes), Seconds(r.jac_join_noindex),
              Seconds(r.jac_sel_noindex), Seconds(r.jac_join_index),
              Seconds(r.jac_sel_index)});
  }

  PrintTitle("Figure 27(b,c): speed-up (fixed data)",
             "paper: speed-up roughly proportional to the node count; small "
             "indexed selections flatten early");
  PrintRow({"nodes", "Jac-Join-NoIdx", "Jac-Sel-NoIdx", "Jac-Join-Idx",
            "Jac-Sel-Idx"});
  ScalingResult base;
  for (int nodes : kNodeCounts) {
    SIMDB_ASSIGN_OR_RETURN(ScalingResult r, RunConfig(nodes, kFullData));
    if (nodes == 1) base = r;
    PrintRow({std::to_string(nodes), Seconds(r.jac_join_noindex),
              Seconds(r.jac_sel_noindex), Seconds(r.jac_join_index),
              Seconds(r.jac_sel_index)});
    if (nodes > 1) {
      char ratios[128];
      std::snprintf(ratios, sizeof(ratios),
                    "  speed-up vs 1 node: join-noidx %.1fx, sel-noidx %.1fx,"
                    " join-idx %.1fx, sel-idx %.1fx",
                    base.jac_join_noindex / r.jac_join_noindex,
                    base.jac_sel_noindex / r.jac_sel_noindex,
                    base.jac_join_index / r.jac_join_index,
                    base.jac_sel_index / r.jac_sel_index);
      std::printf("%s\n", ratios);
    }
  }
  std::printf("full dataset: %lld records; simulated makespans (2 "
              "partitions/node)\n",
              static_cast<long long>(kFullData));
  return Status::OK();
}

}  // namespace

int main() {
  Status status = Run();
  if (!status.ok()) {
    std::fprintf(stderr, "bench failed: %s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}
