#include "bench/bench_util.h"

#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "storage/file_util.h"

namespace simdb::bench {

double BenchScale() {
  const char* env = std::getenv("SIMDB_BENCH_SCALE");
  if (env == nullptr) return 1.0;
  double scale = std::atof(env);
  return scale > 0 ? scale : 1.0;
}

int64_t Scaled(int64_t base) {
  int64_t scaled = static_cast<int64_t>(static_cast<double>(base) * BenchScale());
  return scaled < 1 ? 1 : scaled;
}

BenchEnv::BenchEnv(hyracks::ClusterTopology topology, size_t threads) {
  static int counter = 0;
  dir_ = (std::filesystem::temp_directory_path() /
          ("simdb_bench_" + std::to_string(::getpid()) + "_" +
           std::to_string(counter++)))
             .string();
  core::EngineOptions options;
  options.data_dir = dir_;
  options.topology = topology;
  options.num_threads = threads;
  engine_ = std::make_unique<core::QueryProcessor>(options);
}

BenchEnv::~BenchEnv() {
  engine_.reset();
  storage::RemoveAllBestEffort(dir_);
}

Result<std::unique_ptr<datagen::TextDatasetGenerator>> LoadTextDataset(
    core::QueryProcessor& engine, const std::string& dataset,
    const datagen::TextProfile& profile, int64_t count, uint64_t seed) {
  SIMDB_RETURN_IF_ERROR(
      engine.Execute("create dataset " + dataset + " primary key id;"));
  auto gen = std::make_unique<datagen::TextDatasetGenerator>(profile, seed);
  for (int64_t id = 0; id < count; ++id) {
    SIMDB_RETURN_IF_ERROR(engine.Insert(dataset, gen->NextRecord(id)));
  }
  return gen;
}

Result<QueryTiming> TimeQuery(core::QueryProcessor& engine,
                              const std::string& aql, int repeats) {
  QueryTiming timing;
  if (repeats < 1) repeats = 1;
  for (int i = 0; i < repeats; ++i) {
    core::QueryResult result;
    SIMDB_RETURN_IF_ERROR(engine.Execute(aql, &result));
    timing.wall_seconds += result.exec.wall_seconds;
    timing.compile_seconds += result.compile.total_seconds;
    timing.aqlplus_seconds += result.compile.aqlplus_seconds;
    timing.remote_bytes += result.exec.TotalRemoteBytes();
    for (const hyracks::OpStats& op : result.exec.ops) {
      if (op.name.rfind("BROADCAST", 0) == 0) {
        timing.broadcast_bytes += op.remote_bytes;
      }
    }
    cluster::MakespanReport makespan = cluster::ComputeMakespan(
        result.exec, engine.options().topology);
    timing.makespan_seconds += makespan.total_seconds();
    if (result.rows.size() == 1 && result.rows[0].is_int64()) {
      timing.result_count = result.rows[0].AsInt64();
    } else {
      timing.result_count = static_cast<int64_t>(result.rows.size());
    }
  }
  timing.wall_seconds /= repeats;
  timing.makespan_seconds /= repeats;
  timing.compile_seconds /= repeats;
  timing.aqlplus_seconds /= repeats;
  timing.remote_bytes /= static_cast<uint64_t>(repeats);
  timing.broadcast_bytes /= static_cast<uint64_t>(repeats);
  return timing;
}

void PrintTitle(const std::string& title, const std::string& note) {
  std::printf("\n=== %s ===\n", title.c_str());
  if (!note.empty()) std::printf("%s\n", note.c_str());
  std::printf("(bench scale %.2f; absolute numbers are simulator-scale — "
              "compare shapes, not magnitudes)\n",
              BenchScale());
}

void PrintRow(const std::vector<std::string>& cells) {
  for (size_t i = 0; i < cells.size(); ++i) {
    std::printf("%s%-18s", i == 0 ? "" : " ", cells[i].c_str());
  }
  std::printf("\n");
}

std::string Seconds(double s) {
  char buf[32];
  if (s < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.2f ms", s * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3f s", s);
  }
  return buf;
}

std::string Bytes(uint64_t bytes) {
  char buf[32];
  if (bytes < (1 << 20)) {
    std::snprintf(buf, sizeof(buf), "%.1f KiB", bytes / 1024.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f MiB", bytes / 1048576.0);
  }
  return buf;
}

}  // namespace simdb::bench
