// Table 6: T-occurrence candidate-set size vs. final result size for the
// indexed Jaccard selection, by threshold. The paper's shape: both shrink as
// the threshold rises, and the result/candidate ratio falls (6.7% -> 1.9% ->
// 0.3%), i.e. low thresholds do proportionally more wasted primary lookups.
#include <cstdio>

#include "bench/bench_util.h"
#include "similarity/jaccard.h"
#include "storage/index_tokens.h"

using namespace simdb;
using namespace simdb::bench;

namespace {

Status Run() {
  BenchEnv env({2, 2});
  core::QueryProcessor& engine = env.engine();
  int64_t count = Scaled(20000);

  PrintTitle("Table 6: candidate vs. result size, indexed Jaccard selection",
             "paper: ratio B/C falls as the threshold rises");

  SIMDB_ASSIGN_OR_RETURN(auto gen,
                         LoadTextDataset(engine, "AmazonReview",
                                         datagen::AmazonProfile(), count));
  SIMDB_RETURN_IF_ERROR(engine.Execute(
      "create index smix on AmazonReview(summary) type keyword;"));
  storage::Dataset* ds = engine.catalog()->Find("AmazonReview");
  const storage::IndexSpec* spec = ds->FindIndex("smix");

  datagen::WorkloadSampler sampler(gen->texts());
  const int kQueries = 20;

  PrintRow({"threshold", "results (B)", "candidates (C)", "ratio B/C"});
  for (double threshold : {0.2, 0.5, 0.8}) {
    uint64_t total_candidates = 0;
    int64_t total_results = 0;
    for (int q = 0; q < kQueries; ++q) {
      SIMDB_ASSIGN_OR_RETURN(std::string value, sampler.SampleWithMinWords(3));
      // Candidate count straight from the T-occurrence search.
      SIMDB_ASSIGN_OR_RETURN(
          std::vector<std::string> tokens,
          storage::ExtractIndexTokens(*spec, adm::Value::String(value)));
      int t = similarity::JaccardTOccurrence(static_cast<int>(tokens.size()),
                                             threshold);
      for (int p = 0; p < ds->num_partitions(); ++p) {
        storage::InvertedSearchStats stats;
        SIMDB_RETURN_IF_ERROR(ds->inverted_index(p, "smix")
                                  ->SearchTOccurrence(
                                      tokens, t,
                                      storage::TOccurrenceAlgorithm::kScanCount,
                                      &stats)
                                  .status());
        total_candidates += stats.candidates;
      }
      // Result count through the engine (verification applied).
      std::string escaped;
      for (char c : value) {
        if (c == '\'') continue;
        escaped.push_back(c);
      }
      SIMDB_ASSIGN_OR_RETURN(
          QueryTiming timing,
          TimeQuery(engine,
                    "count(for $t in dataset AmazonReview where "
                    "similarity-jaccard(word-tokens($t.summary), "
                    "word-tokens('" + escaped + "')) >= " +
                        std::to_string(threshold) + " return $t)"));
      total_results += timing.result_count;
    }
    double avg_b = static_cast<double>(total_results) / kQueries;
    double avg_c = static_cast<double>(total_candidates) / kQueries;
    char ratio[32];
    std::snprintf(ratio, sizeof(ratio), "%.1f%%",
                  avg_c > 0 ? 100.0 * avg_b / avg_c : 0.0);
    char b_str[32], c_str[32];
    std::snprintf(b_str, sizeof(b_str), "%.1f", avg_b);
    std::snprintf(c_str, sizeof(c_str), "%.1f", avg_c);
    PrintRow({std::to_string(threshold).substr(0, 3), b_str, c_str, ratio});
  }
  std::printf("records: %lld, %d queries per threshold\n",
              static_cast<long long>(count), kQueries);
  return Status::OK();
}

}  // namespace

int main() {
  Status status = Run();
  if (!status.ok()) {
    std::fprintf(stderr, "bench failed: %s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}
