// Measures the optimizer-path cost of EngineOptions::verify_plans: Explain
// (parse + translate + rewrite + job generation) on identical engines with
// verification off vs on. Verification adds the per-rule contract checker,
// two logical-plan verifier passes, and the task-graph verifier; it is off
// by default, so the "off" series is the production compile path and the
// ratio between the two series is the fuzz/test-tier overhead.
#include <benchmark/benchmark.h>

#include <filesystem>
#include <string>

#include "core/query_processor.h"
#include "storage/file_util.h"

namespace {

using namespace simdb;

const char* kDdl =
    "create dataset Reviews primary key id;"
    "create index rv_kw on Reviews(summary) type keyword;"
    "create index rv_ng on Reviews(reviewerName) type ngram(2);";

// One selection (index plan + corner-case union) and one self join (runtime
// corner-case union + surrogate projection): the two heaviest rewrites.
const char* kQueries[] = {
    "set simfunction 'jaccard'; set simthreshold '0.8'; "
    "for $r in dataset Reviews "
    "where word-tokens($r.summary) ~= word-tokens('great product') "
    "return $r.id",
    "set simfunction 'edit-distance'; set simthreshold '2'; "
    "for $a in dataset Reviews for $b in dataset Reviews "
    "where $a.reviewerName ~= $b.reviewerName and $a.id < $b.id "
    "return {'a': $a.id, 'b': $b.id}",
};

std::unique_ptr<core::QueryProcessor> MakeEngine(bool verify,
                                                 const std::string& tag) {
  std::string dir = (std::filesystem::temp_directory_path() /
                     ("simdb_bench_verify_" + tag))
                        .string();
  storage::RemoveAllBestEffort(dir);
  core::EngineOptions options;
  options.data_dir = dir;
  options.topology = {2, 2};
  options.num_threads = 2;
  options.verify_plans = verify;
  auto engine = std::make_unique<core::QueryProcessor>(std::move(options));
  Status ddl = engine->Execute(kDdl);
  if (!ddl.ok()) std::abort();
  return engine;
}

void RunExplain(benchmark::State& state, bool verify) {
  auto engine = MakeEngine(verify, verify ? "on" : "off");
  const char* query = kQueries[state.range(0)];
  for (auto _ : state) {
    Result<std::string> plan = engine->Explain(query);
    if (!plan.ok()) {
      state.SkipWithError(plan.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(plan.value());
  }
}

void BM_OptimizeVerifyOff(benchmark::State& state) {
  RunExplain(state, false);
}
BENCHMARK(BM_OptimizeVerifyOff)->Arg(0)->Arg(1)->Unit(benchmark::kMicrosecond);

void BM_OptimizeVerifyOn(benchmark::State& state) { RunExplain(state, true); }
BENCHMARK(BM_OptimizeVerifyOn)->Arg(0)->Arg(1)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
