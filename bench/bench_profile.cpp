// Per-operator query profiles: runs a workload chosen to light up every
// operator counter and all four exchange connectors (three-stage jaccard
// join via HASH-EXCHANGE, indexed selection and indexed edit-distance join
// via BROADCAST-EXCHANGE, a nested-loop edit-distance join, an order-by via
// MERGE-GATHER; every query roots in a GATHER), prints each query's profile
// tree, and measures the profile-off overhead the docs promise (< 2%).
//
// Flags:
//   --json <path>    write {"queries": [...], "overhead": {...},
//                    "metrics": {...}} (merged into BENCH_kernels.json by
//                    bench/run_benches.sh)
//   --trace <path>   export the three-stage join's Chrome trace
//   --quick          small dataset / few repeats (CI smoke; numbers are not
//                    meaningful, only the output shape is)
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "observability/metrics.h"
#include "observability/profile.h"

using namespace simdb;
using namespace simdb::bench;

namespace {

struct ProfiledQuery {
  std::string name;
  std::string aql;
  /// Disable the index-join rewrites so the AQL+ three-stage (or plain
  /// nested-loop) plan runs instead of the surrogate index-NL join.
  bool no_index_join = false;
  bool no_three_stage = false;
  std::shared_ptr<const obs::QueryProfile> profile;
};

std::string Escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c != '\'') out.push_back(c);
  }
  return out;
}

Status Run(bool quick, const std::string& json_path,
           const std::string& trace_path) {
  BenchEnv env({2, 2});
  core::QueryProcessor& engine = env.engine();
  int64_t count = Scaled(quick ? 400 : 4000);

  SIMDB_ASSIGN_OR_RETURN(auto gen,
                         LoadTextDataset(engine, "AmazonReview",
                                         datagen::AmazonProfile(), count));
  SIMDB_RETURN_IF_ERROR(engine.Execute(R"(
    create index smix on AmazonReview(summary) type keyword;
    create index nix on AmazonReview(reviewerName) type ngram(2);
  )"));

  datagen::WorkloadSampler summaries(gen->texts());
  SIMDB_ASSIGN_OR_RETURN(std::string sample, summaries.SampleWithMinWords(3));

  const int64_t nl_cap = quick ? 60 : 200;
  std::vector<ProfiledQuery> queries = {
      {"three_stage_jaccard_join",
       "count(for $l in dataset AmazonReview for $r in dataset AmazonReview "
       "where similarity-jaccard(word-tokens($l.summary), "
       "word-tokens($r.summary)) >= 0.5 and $l.id < $r.id "
       "return {'l': $l.id, 'r': $r.id})",
       /*no_index_join=*/true, false, nullptr},
      {"indexed_jaccard_selection",
       "count(for $t in dataset AmazonReview where "
       "similarity-jaccard(word-tokens($t.summary), word-tokens('" +
           Escape(sample) +
           "')) >= 0.5 return $t)",
       false, false, nullptr},
      {"indexed_ed_join",
       "set simfunction 'edit-distance'; set simthreshold '1'; "
       "count(for $l in dataset AmazonReview for $r in dataset AmazonReview "
       "where $l.reviewerName ~= $r.reviewerName and $l.id < $r.id "
       "return {'l': $l.id, 'r': $r.id})",
       false, false, nullptr},
      {"nested_loop_ed_join",
       "count(for $l in dataset AmazonReview for $r in dataset AmazonReview "
       "where $l.id < " +
           std::to_string(nl_cap) + " and $r.id < " +
           std::to_string(nl_cap) +
           " and edit-distance($l.reviewerName, $r.reviewerName) <= 1 "
           "and $l.id < $r.id return {'l': $l.id, 'r': $r.id})",
       /*no_index_join=*/true, /*no_three_stage=*/true, nullptr},
      {"order_by_merge_gather",
       "for $t in dataset AmazonReview order by $t.summary, $t.id "
       "return $t.id",
       false, false, nullptr},
  };

  engine.set_profile_queries(true);
  for (ProfiledQuery& q : queries) {
    if (q.no_index_join) engine.opt_context().enable_index_join = false;
    if (q.no_three_stage) engine.opt_context().enable_three_stage_join = false;
    core::QueryResult result;
    Status s = engine.Execute(q.aql, &result);
    engine.opt_context().enable_index_join = true;
    engine.opt_context().enable_three_stage_join = true;
    SIMDB_RETURN_IF_ERROR(s);
    if (result.profile == nullptr) {
      return Status::Internal("query " + q.name + " produced no profile");
    }
    q.profile = result.profile;
    std::printf("== %s ==\n%s\n", q.name.c_str(),
                q.profile->RenderTree().c_str());
  }

  if (!trace_path.empty()) {
    SIMDB_RETURN_IF_ERROR(queries[0].profile->ExportTrace(trace_path));
    std::printf("wrote Chrome trace: %s\n", trace_path.c_str());
  }

  // Profile-off overhead on the heaviest query (median of repeats). The
  // docs and EngineOptions::profile_queries promise < 2%; quick mode only
  // checks the plumbing.
  const int repeats = quick ? 3 : 9;
  auto median_time = [&](bool profiled) -> Result<double> {
    engine.set_profile_queries(profiled);
    engine.opt_context().enable_index_join = !queries[0].no_index_join;
    std::vector<double> times;
    for (int i = 0; i < repeats; ++i) {
      core::QueryResult result;
      Stopwatch sw;
      Status s = engine.Execute(queries[0].aql, &result);
      if (!s.ok()) {
        engine.opt_context().enable_index_join = true;
        return s;
      }
      times.push_back(sw.ElapsedSeconds());
    }
    engine.opt_context().enable_index_join = true;
    std::sort(times.begin(), times.end());
    return times[times.size() / 2];
  };
  SIMDB_ASSIGN_OR_RETURN(double off_seconds, median_time(false));
  SIMDB_ASSIGN_OR_RETURN(double on_seconds, median_time(true));
  double overhead_pct =
      on_seconds > 0 ? (on_seconds - off_seconds) / on_seconds * 100.0 : 0;
  std::printf(
      "profile overhead on %s: off %s, on %s (profiling costs %.1f%%)\n",
      queries[0].name.c_str(), Seconds(off_seconds).c_str(),
      Seconds(on_seconds).c_str(), overhead_pct);

  if (!json_path.empty()) {
    std::string json = "{\n  \"queries\": [\n";
    for (size_t i = 0; i < queries.size(); ++i) {
      json += "    {\"name\": \"" + queries[i].name +
              "\", \"profile\": " + queries[i].profile->ToJson() + "}";
      json += (i + 1 < queries.size()) ? ",\n" : "\n";
    }
    json += "  ],\n  \"overhead\": {\"query\": \"" + queries[0].name +
            "\", \"off_seconds\": " + std::to_string(off_seconds) +
            ", \"on_seconds\": " + std::to_string(on_seconds) + "},\n";
    json += "  \"metrics\": " + obs::MetricsRegistry::Global().ToJson() +
            "\n}\n";
    FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) return Status::IOError("cannot write " + json_path);
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string json_path, trace_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--quick] [--json path] [--trace path]\n",
                   argv[0]);
      return 2;
    }
  }
  Status s = Run(quick, json_path, trace_path);
  if (!s.ok()) {
    std::fprintf(stderr, "bench_profile failed: %s\n", s.ToString().c_str());
    return 1;
  }
  return 0;
}
