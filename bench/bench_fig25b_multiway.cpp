// Figure 25(b): multi-way similarity queries (an equi join limiting the
// outer branch, then TWO similarity conditions: Jaccard 0.8 and edit
// distance 1) on all three datasets, varying which similarity condition is
// evaluated first and whether it can use an index:
//   Jac-I,ED-NI : Jaccard via index join first, edit distance verified after
//   ED-I,Jac-NI : edit distance via index join first, Jaccard verified after
//   Jac-NI,ED-NI: no index joins (three-stage for Jaccard), both verified
// Paper shape: Jaccard-first with an index is best (no corner-case path and
// fewer candidates); ED-first is worse; fully non-indexed is worst.
#include <cstdio>

#include "bench/bench_util.h"

using namespace simdb;
using namespace simdb::bench;

namespace {

Status LoadWithGroupField(core::QueryProcessor& engine,
                          const std::string& dataset,
                          const datagen::TextProfile& profile, int64_t count) {
  SIMDB_RETURN_IF_ERROR(
      engine.Execute("create dataset " + dataset + " primary key id;"));
  datagen::TextDatasetGenerator gen(profile, /*seed=*/99);
  for (int64_t id = 0; id < count; ++id) {
    adm::Value record = gen.NextRecord(id);
    // Add the equi-join group field f1 (10 records per group, as in the
    // paper's Figure 26 protocol).
    adm::Value::Object fields = record.AsObject();
    fields.emplace_back("f1", adm::Value::Int64(id / 10));
    SIMDB_RETURN_IF_ERROR(
        engine.Insert(dataset, adm::Value::MakeObject(std::move(fields))));
  }
  return Status::OK();
}

Status Run() {
  PrintTitle("Figure 25(b): multi-way similarity joins on three datasets",
             "paper: Jac-I,ED-NI < ED-I,Jac-NI < Jac-NI,ED-NI");
  PrintRow({"dataset", "Jac-I,ED-NI", "ED-I,Jac-NI", "Jac-NI,ED-NI"});

  struct DatasetRun {
    datagen::TextProfile profile;
    int64_t count;
  };
  const DatasetRun runs[] = {
      {datagen::AmazonProfile(), Scaled(8000)},
      {datagen::RedditProfile(), Scaled(4000)},
      {datagen::TwitterProfile(), Scaled(6000)},
  };
  for (const DatasetRun& run : runs) {
    BenchEnv env({2, 2});
    core::QueryProcessor& engine = env.engine();
    const std::string ds = "D";
    SIMDB_RETURN_IF_ERROR(
        LoadWithGroupField(engine, ds, run.profile, run.count));
    const std::string& text = run.profile.text_field;
    const std::string& name = run.profile.name_field;
    SIMDB_RETURN_IF_ERROR(engine.Execute(
        "create index kwix on " + ds + "(" + text + ") type keyword;"
        "create index ngix on " + ds + "(" + name + ") type ngram(2);"
        "create index f1ix on " + ds + "(f1) type btree;"));

    std::string jac = "similarity-jaccard(word-tokens($o." + text +
                      "), word-tokens($i." + text + ")) >= 0.8";
    std::string ed =
        "edit-distance($o." + name + ", $i." + name + ") <= 1";
    // The equi join limits the outer branch to one f1 group (~10 records).
    auto query = [&](const std::string& first, const std::string& second) {
      return "count(for $o in dataset " + ds + " for $i in dataset " + ds +
             " where $o.f1 = 3 and " + first + " and " + second +
             " and $o.id < $i.id return {'o': $o.id})";
    };

    auto& opt = engine.opt_context();
    // Jaccard indexed first; ED verified in a SELECT above it.
    SIMDB_ASSIGN_OR_RETURN(QueryTiming jac_first,
                           TimeQuery(engine, query(jac, ed)));
    // ED indexed first; Jaccard verified in a SELECT above it.
    SIMDB_ASSIGN_OR_RETURN(QueryTiming ed_first,
                           TimeQuery(engine, query(ed, jac)));
    // No index joins: three-stage for Jaccard, ED verified after.
    opt.enable_index_join = false;
    SIMDB_ASSIGN_OR_RETURN(QueryTiming no_index,
                           TimeQuery(engine, query(jac, ed)));
    opt.enable_index_join = true;
    if (jac_first.result_count != ed_first.result_count ||
        jac_first.result_count != no_index.result_count) {
      return Status::Internal("plan disagreement on " + run.profile.label);
    }
    PrintRow({run.profile.label + " (" + std::to_string(run.count) + ")",
              Seconds(jac_first.makespan_seconds),
              Seconds(ed_first.makespan_seconds),
              Seconds(no_index.makespan_seconds)});
  }
  std::printf("simulated 2x2 cluster makespans; outer limited to one f1 "
              "group (~10 records)\n");
  return Status::OK();
}

}  // namespace

int main() {
  Status status = Run();
  if (!status.ok()) {
    std::fprintf(stderr, "bench failed: %s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}
