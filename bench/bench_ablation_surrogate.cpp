// Ablation (paper Section 5.4.1): the surrogate index-nested-loop join.
// With the optimization on, the outer branch is projected to (surrogate,
// key) before the broadcast to the secondary-index partitions; the full
// records are re-joined at the top by surrogate. With it off, whole outer
// tuples are broadcast. The win grows with the width of the outer records —
// here the synthetic reviews carry their full summary/name payload.
#include <cstdio>

#include "bench/bench_util.h"

using namespace simdb;
using namespace simdb::bench;

namespace {

/// Loads reviews carrying a wide payload field (the full review text) so the
/// outer records are much wider than the join key, as in real review data —
/// this is exactly the situation the surrogate optimization targets.
Status LoadWideReviews(core::QueryProcessor& engine, int64_t count) {
  SIMDB_RETURN_IF_ERROR(
      engine.Execute("create dataset AmazonReview primary key id;"));
  datagen::TextDatasetGenerator gen(datagen::AmazonProfile(), 42);
  std::string payload(1500, 'x');  // stands in for the full reviewText field
  for (int64_t id = 0; id < count; ++id) {
    adm::Value record = gen.NextRecord(id);
    adm::Value::Object fields = record.AsObject();
    fields.emplace_back("reviewText", adm::Value::String(payload));
    SIMDB_RETURN_IF_ERROR(engine.Insert(
        "AmazonReview", adm::Value::MakeObject(std::move(fields))));
  }
  return Status::OK();
}

Status Run() {
  BenchEnv env({2, 2});
  core::QueryProcessor& engine = env.engine();
  int64_t count = Scaled(10000);

  SIMDB_RETURN_IF_ERROR(LoadWideReviews(engine, count));
  SIMDB_RETURN_IF_ERROR(engine.Execute(
      "create index smix on AmazonReview(summary) type keyword;"));

  std::string query =
      "count(for $o in dataset AmazonReview for $i in dataset AmazonReview "
      "where similarity-jaccard(word-tokens($o.summary), "
      "word-tokens($i.summary)) >= 0.8 and $o.id < 200 and $o.id < $i.id "
      "return {'o': $o.id, 'i': $i.id, 'os': $o.summary, 'is': $i.summary})";

  PrintTitle("Ablation 5.4.1: surrogate index-nested-loop join",
             "surrogate on -> less broadcast traffic to the index partitions");
  PrintRow({"variant", "makespan", "broadcast", "total shuffle", "pairs"});
  SIMDB_ASSIGN_OR_RETURN(QueryTiming with_surrogate, TimeQuery(engine, query));
  engine.opt_context().enable_surrogate_join = false;
  SIMDB_ASSIGN_OR_RETURN(QueryTiming without_surrogate,
                         TimeQuery(engine, query));
  engine.opt_context().enable_surrogate_join = true;
  PrintRow({"surrogate ON", Seconds(with_surrogate.makespan_seconds),
            Bytes(with_surrogate.broadcast_bytes),
            Bytes(with_surrogate.remote_bytes),
            std::to_string(with_surrogate.result_count)});
  PrintRow({"surrogate OFF", Seconds(without_surrogate.makespan_seconds),
            Bytes(without_surrogate.broadcast_bytes),
            Bytes(without_surrogate.remote_bytes),
            std::to_string(without_surrogate.result_count)});
  if (with_surrogate.result_count != without_surrogate.result_count) {
    return Status::Internal("surrogate ablation changed the answer");
  }
  std::printf("records: %lld, outer 200; simulated 2x2 cluster\n",
              static_cast<long long>(count));
  return Status::OK();
}

}  // namespace

int main() {
  Status status = Run();
  if (!status.ok()) {
    std::fprintf(stderr, "bench failed: %s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}
