// Figure 25(a): Jaccard self-join (threshold 0.8) execution time as the
// number of records from the outer branch grows, for the three join plans:
// plain nested-loop, index-nested-loop, and three-stage.
// Paper shape: nested-loop is worst and grows drastically; index-nested-loop
// grows linearly with the outer cardinality; the three-stage join pays a
// near-constant token-ordering cost and overtakes index-NL at a crossover
// (~400 records in the paper).
#include <cstdio>

#include "bench/bench_util.h"

using namespace simdb;
using namespace simdb::bench;

namespace {

Status Run() {
  BenchEnv env({2, 2});
  core::QueryProcessor& engine = env.engine();
  int64_t count = Scaled(5000);

  SIMDB_RETURN_IF_ERROR(LoadTextDataset(engine, "AmazonReview",
                                        datagen::AmazonProfile(), count)
                            .status());
  SIMDB_RETURN_IF_ERROR(engine.Execute(
      "create index smix on AmazonReview(summary) type keyword;"));

  auto query = [&](int outer) {
    return "count(for $o in dataset AmazonReview "
           "for $i in dataset AmazonReview "
           "where similarity-jaccard(word-tokens($o.summary), "
           "word-tokens($i.summary)) >= 0.8 and $o.id < " +
           std::to_string(outer) +
           " and $o.id < $i.id return {'o': $o.id})";
  };

  PrintTitle("Figure 25(a): join time vs. outer-branch records (Jaccard 0.8)",
             "paper: NL worst and steep; three-stage ~flat, overtakes "
             "index-NL as the outer side grows");
  PrintRow({"outer", "nested-loop", "three-stage", "index-NL", "pairs"});
  for (int outer : {25, 50, 100, 200, 400, 600, 800, 1000, 1200, 1400}) {
    auto& opt = engine.opt_context();
    opt.enable_index_join = true;
    opt.enable_three_stage_join = true;
    SIMDB_ASSIGN_OR_RETURN(QueryTiming indexed,
                           TimeQuery(engine, query(outer)));
    opt.enable_index_join = false;
    SIMDB_ASSIGN_OR_RETURN(QueryTiming three_stage,
                           TimeQuery(engine, query(outer)));
    opt.enable_three_stage_join = false;
    SIMDB_ASSIGN_OR_RETURN(QueryTiming nested,
                           TimeQuery(engine, query(outer)));
    opt.enable_index_join = true;
    opt.enable_three_stage_join = true;
    if (indexed.result_count != three_stage.result_count ||
        indexed.result_count != nested.result_count) {
      return Status::Internal("plan disagreement at outer=" +
                              std::to_string(outer));
    }
    PrintRow({std::to_string(outer), Seconds(nested.makespan_seconds),
              Seconds(three_stage.makespan_seconds),
              Seconds(indexed.makespan_seconds),
              std::to_string(indexed.result_count)});
  }
  std::printf("inner records: %lld; simulated 2x2 cluster makespans\n",
              static_cast<long long>(count));
  return Status::OK();
}

}  // namespace

int main() {
  Status status = Run();
  if (!status.ok()) {
    std::fprintf(stderr, "bench failed: %s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}
