// Section 6.4.1: compilation overhead of the AQL+ framework. The paper
// reports ~50 ms to generate the three-stage logical plan via AQL+, ~500 ms
// to optimize it, and ~900 ms total compilation. This bench isolates the
// same phases for the self-join query of Figure 4 and also reports the
// operator-count blow-up of Figure 15 (nested-loop plan vs. three-stage).
#include <cstdio>
#include <unordered_set>

#include "bench/bench_util.h"

using namespace simdb;
using namespace simdb::bench;

namespace {

int CountOps(const algebricks::LOpPtr& op,
             std::unordered_set<const algebricks::LOp*>& seen) {
  if (op == nullptr || !seen.insert(op.get()).second) return 0;
  int n = 1;
  for (const auto& in : op->inputs) n += CountOps(in, seen);
  return n;
}

Status Run() {
  BenchEnv env({2, 2});
  core::QueryProcessor& engine = env.engine();
  SIMDB_RETURN_IF_ERROR(LoadTextDataset(engine, "AmazonReview",
                                        datagen::AmazonProfile(), 200)
                            .status());
  std::string query =
      "count(for $o in dataset AmazonReview for $i in dataset AmazonReview "
      "where similarity-jaccard(word-tokens($o.summary), "
      "word-tokens($i.summary)) >= 0.5 and $o.id < $i.id "
      "return {'o': $o.id})";

  PrintTitle("Section 6.4.1: AQL+ compilation overhead",
             "paper: ~50 ms AQL+ plan generation, ~500 ms optimize, ~900 ms "
             "total compile");
  const int kRepeats = 20;
  double translate = 0, optimize = 0, aqlplus = 0, jobgen = 0, total = 0;
  for (int i = 0; i < kRepeats; ++i) {
    core::QueryResult result;
    SIMDB_RETURN_IF_ERROR(engine.Execute(query, &result));
    translate += result.compile.translate_seconds;
    optimize += result.compile.optimize_seconds;
    aqlplus += result.compile.aqlplus_seconds;
    jobgen += result.compile.jobgen_seconds;
    total += result.compile.total_seconds;
  }
  PrintRow({"phase", "avg time"});
  PrintRow({"parse+translate", Seconds(translate / kRepeats)});
  PrintRow({"AQL+ generation", Seconds(aqlplus / kRepeats)});
  PrintRow({"optimize (incl. AQL+)", Seconds(optimize / kRepeats)});
  PrintRow({"job generation", Seconds(jobgen / kRepeats)});
  PrintRow({"total compile", Seconds(total / kRepeats)});

  // Figure 15: operator counts of the two logical plans.
  auto count_plan = [&](bool three_stage) -> Result<int> {
    engine.opt_context().enable_three_stage_join = three_stage;
    engine.opt_context().enable_index_join = false;
    core::QueryResult result;
    SIMDB_RETURN_IF_ERROR(engine.Execute(query, &result));
    engine.opt_context().enable_three_stage_join = true;
    engine.opt_context().enable_index_join = true;
    // Count operators by re-compiling via Explain's plan rendering lines.
    int lines = 0;
    for (char c : result.logical_plan) lines += c == '\n';
    return lines;
  };
  SIMDB_ASSIGN_OR_RETURN(int nl_ops, count_plan(false));
  SIMDB_ASSIGN_OR_RETURN(int ts_ops, count_plan(true));
  std::printf("\nFigure 15 (operator counts): nested-loop plan %d operators, "
              "three-stage plan %d operators (paper: 6 vs 77)\n",
              nl_ops, ts_ops);
  return Status::OK();
}

}  // namespace

int main() {
  Status status = Run();
  if (!status.ok()) {
    std::fprintf(stderr, "bench failed: %s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}
