// Compares the two dataflow runtimes (task-graph scheduler vs the legacy
// stage-sequential executor) on a job built to expose their difference: a
// chain of partition-local operators with skewed per-partition cost over
// more partitions than workers. The stage-sequential executor inserts a
// barrier after every operator, so each stage waits for the slowest
// partition while other workers idle; the task-graph scheduler lets fast
// partitions run ahead through the whole chain. Identical work, identical
// answers — only the scheduling differs.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <memory>
#include <vector>

#include "cluster/cost_model.h"
#include "common/thread_pool.h"
#include "hyracks/exec.h"
#include "hyracks/ops_exchange.h"

namespace {

using namespace simdb;
using namespace simdb::hyracks;

/// Deterministic CPU burn: xorshift rounds over a seed. The optimizer can't
/// elide it (result feeds the output tuple).
uint64_t Spin(uint64_t seed, int rounds) {
  uint64_t x = seed | 1;
  for (int i = 0; i < rounds; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
  }
  return x;
}

class SpinSourceOp : public PartitionOperator {
 public:
  explicit SpinSourceOp(int rows) : rows_(rows) {}
  std::string name() const override { return "SPIN-SOURCE"; }
  int num_inputs() const override { return 0; }
  Result<Rows> ExecutePartition(ExecContext&, int p,
                                const std::vector<const Rows*>&) override {
    Rows rows;
    rows.reserve(static_cast<size_t>(rows_));
    for (int i = 0; i < rows_; ++i) {
      rows.push_back({adm::Value::Int64(p * 100003 + i)});
    }
    return rows;
  }

 private:
  int rows_;
};

/// Per-row work scaled by (partition index + 1): partition P-1 costs P times
/// partition 0, the skew that makes per-stage barriers expensive.
class SpinWorkOp : public PartitionOperator {
 public:
  explicit SpinWorkOp(int rounds_per_row) : rounds_(rounds_per_row) {}
  std::string name() const override { return "SPIN-WORK"; }
  Result<Rows> ExecutePartition(ExecContext&, int p,
                                const std::vector<const Rows*>& inputs)
      override {
    Rows out;
    out.reserve(inputs[0]->size());
    for (const Tuple& t : *inputs[0]) {
      uint64_t v = static_cast<uint64_t>(t[0].AsInt64());
      v = Spin(v, rounds_ * (p + 1));
      out.push_back({adm::Value::Int64(static_cast<int64_t>(v >> 1))});
    }
    return out;
  }

 private:
  int rounds_;
};

constexpr int kStages = 6;
constexpr int kRowsPerPartition = 64;
constexpr int kRoundsPerRow = 2000;

Job MakeChainJob() {
  Job job;
  int prev = job.Add(std::make_unique<SpinSourceOp>(kRowsPerPartition), {},
                     RowSchema({"v"}));
  for (int s = 0; s < kStages; ++s) {
    prev = job.Add(std::make_unique<SpinWorkOp>(kRoundsPerRow), {prev},
                   RowSchema({"v"}));
  }
  job.Add(std::make_unique<GatherOp>(), {prev}, RowSchema({"v"}));
  return job;
}

void RunExecutor(benchmark::State& state, ExecutorKind kind) {
  ThreadPool pool(static_cast<size_t>(state.range(0)));
  const ClusterTopology topology{4, 2};  // 8 partitions
  Job job = MakeChainJob();
  size_t rows = 0;
  for (auto _ : state) {
    ExecContext ctx;
    ctx.pool = &pool;
    ctx.topology = topology;
    ctx.executor = kind;
    Result<PartitionedRows> out = Executor::Run(job, ctx);
    if (!out.ok()) {
      state.SkipWithError(out.status().ToString().c_str());
      return;
    }
    rows = RowsCount(*out);
    benchmark::DoNotOptimize(rows);
  }
  state.counters["rows"] = static_cast<double>(rows);

  // Machine-independent figures from the cluster cost model: the critical
  // path through the task DAG (what a dependency-scheduled runtime achieves
  // with enough workers) vs the stage-sum the per-operator barriers impose.
  // Wall time above depends on the host's core count; these do not.
  ExecStats stats;
  ExecContext ctx;
  ctx.pool = &pool;
  ctx.topology = topology;
  ctx.executor = kind;
  ctx.stats = &stats;
  Result<PartitionedRows> out = Executor::Run(job, ctx);
  if (out.ok()) {
    cluster::MakespanReport model =
        cluster::ComputeMakespan(stats, topology);
    state.counters["model_critical_path_s"] = model.critical_path_seconds;
    state.counters["model_stage_sum_s"] = model.stage_sum_seconds();
  }
}

void BM_TaskGraphScheduler(benchmark::State& state) {
  RunExecutor(state, ExecutorKind::kScheduler);
}
BENCHMARK(BM_TaskGraphScheduler)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_StageSequential(benchmark::State& state) {
  RunExecutor(state, ExecutorKind::kStageSequential);
}
BENCHMARK(BM_StageSequential)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
