// Table 5: index size and build time for the Amazon-review dataset.
// Reproduces the paper's ordering: the 2-gram index is by far the largest
// secondary index (many keys per record), keyword is next, B+-tree smallest;
// build time is roughly proportional to index size.
#include <cstdio>

#include "bench/bench_util.h"
#include "common/stopwatch.h"

using namespace simdb;
using namespace simdb::bench;

namespace {

Status Run() {
  BenchEnv env({2, 2});
  core::QueryProcessor& engine = env.engine();
  int64_t count = Scaled(20000);

  PrintTitle("Table 5: index size and build time (Amazon reviews)",
             "paper: 2-gram ~25% of dataset size >> keyword > B+-tree");

  Stopwatch load;
  SIMDB_RETURN_IF_ERROR(LoadTextDataset(engine, "AmazonReview",
                                        datagen::AmazonProfile(), count)
                            .status());
  storage::Dataset* ds = engine.catalog()->Find("AmazonReview");
  SIMDB_RETURN_IF_ERROR(ds->FlushAll());
  double load_seconds = load.ElapsedSeconds();

  PrintRow({"field/index", "type", "size", "build time"});
  PrintRow({"dataset itself", "B+ tree",
            Bytes(ds->PrimaryDiskSize()), Seconds(load_seconds)});

  struct IndexRun {
    const char* ddl;
    const char* name;
    const char* label;
    const char* type;
  };
  const IndexRun runs[] = {
      {"create index rn_bt on AmazonReview(reviewerName) type btree;",
       "rn_bt", "reviewerName", "B+ tree"},
      {"create index rn_2g on AmazonReview(reviewerName) type ngram(2);",
       "rn_2g", "reviewerName", "2-gram"},
      {"create index sm_bt on AmazonReview(summary) type btree;",
       "sm_bt", "summary", "B+ tree"},
      {"create index sm_kw on AmazonReview(summary) type keyword;",
       "sm_kw", "summary", "keyword"},
  };
  for (const IndexRun& run : runs) {
    Stopwatch sw;
    SIMDB_RETURN_IF_ERROR(engine.Execute(run.ddl));
    SIMDB_RETURN_IF_ERROR(ds->FlushAll());
    double build = sw.ElapsedSeconds();
    PrintRow({run.label, run.type, Bytes(ds->IndexDiskSize(run.name)),
              Seconds(build)});
  }
  std::printf("records: %lld\n", static_cast<long long>(count));
  return Status::OK();
}

}  // namespace

int main() {
  Status status = Run();
  if (!status.ok()) {
    std::fprintf(stderr, "bench failed: %s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}
