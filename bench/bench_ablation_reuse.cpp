// Ablation (paper Section 5.4.2): materializing/reusing the shared subplans
// of the three-stage self-join (Figure 20). With reuse on, the two join
// inputs are shared LOp nodes compiled once and replicated to stages 1-3;
// with it off, each stage re-derives its input subtree. The gap grows when
// the join inputs are expensive subqueries; here they are filtered scans.
#include <cstdio>

#include "bench/bench_util.h"

using namespace simdb;
using namespace simdb::bench;

namespace {

Status Run() {
  BenchEnv env({2, 2});
  core::QueryProcessor& engine = env.engine();
  int64_t count = Scaled(5000);

  SIMDB_RETURN_IF_ERROR(LoadTextDataset(engine, "AmazonReview",
                                        datagen::AmazonProfile(), count)
                            .status());
  // No keyword index: force the three-stage plan. The join inputs carry a
  // deliberately expensive filter (a quadratic edit-distance computation per
  // record), standing in for the paper's "complex computation from a
  // subquery": with reuse OFF every stage re-derives it.
  std::string long_literal(400, 'q');
  std::string expensive =
      "edit-distance($X.summary, '" + long_literal + "') >= 0";
  std::string left = expensive, right = expensive;
  left.replace(left.find("$X"), 2, "$o");
  right.replace(right.find("$X"), 2, "$i");
  std::string query =
      "count(for $o in dataset AmazonReview for $i in dataset AmazonReview "
      "where similarity-jaccard(word-tokens($o.summary), "
      "word-tokens($i.summary)) >= 0.9 "
      "and " + left + " and " + right + " and $o.id < $i.id "
      "return {'o': $o.id})";

  PrintTitle("Ablation 5.4.2: materialize/reuse of shared subplans",
             "reuse on -> each three-stage input subtree computed once");
  PrintRow({"variant", "makespan", "wall", "pairs"});
  engine.opt_context().enable_index_join = false;
  SIMDB_RETURN_IF_ERROR(TimeQuery(engine, query).status());  // warm up
  SIMDB_ASSIGN_OR_RETURN(QueryTiming shared, TimeQuery(engine, query, 2));
  engine.opt_context().enable_subplan_reuse = false;
  SIMDB_ASSIGN_OR_RETURN(QueryTiming cloned, TimeQuery(engine, query, 2));
  engine.opt_context().enable_subplan_reuse = true;
  engine.opt_context().enable_index_join = true;
  PrintRow({"reuse ON", Seconds(shared.makespan_seconds),
            Seconds(shared.wall_seconds), std::to_string(shared.result_count)});
  PrintRow({"reuse OFF", Seconds(cloned.makespan_seconds),
            Seconds(cloned.wall_seconds), std::to_string(cloned.result_count)});
  if (shared.result_count != cloned.result_count) {
    return Status::Internal("reuse ablation changed the answer");
  }
  std::printf("records: %lld; simulated 2x2 cluster\n",
              static_cast<long long>(count));
  return Status::OK();
}

}  // namespace

int main() {
  Status status = Run();
  if (!status.ok()) {
    std::fprintf(stderr, "bench failed: %s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}
