#!/usr/bin/env bash
# Runs the kernel micro-benchmarks (bench_kernels) and the Figure-22
# similarity-selection benchmark (bench_fig22_selection) and merges their
# results into BENCH_kernels.json at the repo root.
#
# Usage: bench/run_benches.sh [build_dir]     (default: <repo>/build)
#
# Environment:
#   SIMDB_BENCH_SCALE  record-count multiplier for the dataset benches
#   SIMDB_BENCH_QUICK  =1: reduced iterations + small dataset (CI smoke run;
#                      numbers are NOT meaningful, only the output shape is)
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-$ROOT/build}"
OUT="$ROOT/BENCH_kernels.json"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

KERNELS_BIN="$BUILD/bench/bench_kernels"
SCHEDULER_BIN="$BUILD/bench/bench_scheduler"
VERIFY_BIN="$BUILD/bench/bench_verify_overhead"
FIG22_BIN="$BUILD/bench/bench_fig22_selection"
PROFILE_BIN="$BUILD/bench/bench_profile"
SERVING_BIN="$BUILD/bench/bench_serving"
TRANSPORT_BIN="$BUILD/bench/bench_transport"
for bin in "$KERNELS_BIN" "$SCHEDULER_BIN" "$VERIFY_BIN" "$FIG22_BIN" \
           "$PROFILE_BIN" "$SERVING_BIN" "$TRANSPORT_BIN"; do
  if [[ ! -x "$bin" ]]; then
    echo "missing benchmark binary: $bin (build the tree first)" >&2
    exit 1
  fi
done

KERNEL_FLAGS=()
QUICK="${SIMDB_BENCH_QUICK:-0}"
if [[ "$QUICK" == "1" ]]; then
  KERNEL_FLAGS+=(--benchmark_min_time=0.01)
  export SIMDB_BENCH_SCALE="${SIMDB_BENCH_SCALE:-0.05}"
fi

echo "== bench_kernels =="
"$KERNELS_BIN" "${KERNEL_FLAGS[@]+"${KERNEL_FLAGS[@]}"}" \
  --benchmark_out="$TMP/kernels.json" --benchmark_out_format=json

echo "== bench_scheduler =="
"$SCHEDULER_BIN" "${KERNEL_FLAGS[@]+"${KERNEL_FLAGS[@]}"}" \
  --benchmark_out="$TMP/scheduler.json" --benchmark_out_format=json

echo "== bench_verify_overhead =="
"$VERIFY_BIN" "${KERNEL_FLAGS[@]+"${KERNEL_FLAGS[@]}"}" \
  --benchmark_out="$TMP/verify.json" --benchmark_out_format=json

echo "== bench_fig22_selection =="
"$FIG22_BIN" | tee "$TMP/fig22.txt"

echo "== bench_profile =="
PROFILE_FLAGS=(--json "$TMP/profile.json")
if [[ "$QUICK" == "1" ]]; then
  PROFILE_FLAGS+=(--quick)
fi
"$PROFILE_BIN" "${PROFILE_FLAGS[@]}"

echo "== bench_serving =="
SERVING_FLAGS=(--json "$TMP/serving.json")
if [[ "$QUICK" == "1" ]]; then
  SERVING_FLAGS+=(--quick)
fi
"$SERVING_BIN" "${SERVING_FLAGS[@]}"

echo "== bench_transport =="
TRANSPORT_FLAGS=(--json "$TMP/transport.json")
if [[ "$QUICK" == "1" ]]; then
  TRANSPORT_FLAGS+=(--quick)
fi
"$TRANSPORT_BIN" "${TRANSPORT_FLAGS[@]}"

python3 - "$TMP/kernels.json" "$TMP/scheduler.json" "$TMP/verify.json" \
  "$TMP/fig22.txt" "$TMP/profile.json" "$TMP/serving.json" \
  "$TMP/transport.json" "$OUT" "$QUICK" <<'PY'
import json, sys

(kernels_path, scheduler_path, verify_path, fig22_path, profile_path,
 serving_path, transport_path, out_path, quick) = sys.argv[1:10]
with open(kernels_path) as f:
    kernels = json.load(f)
with open(scheduler_path) as f:
    scheduler = json.load(f)
with open(verify_path) as f:
    verify = json.load(f)
with open(fig22_path) as f:
    fig22_lines = [line.rstrip("\n") for line in f]
with open(profile_path) as f:
    query_profile = json.load(f)
with open(serving_path) as f:
    serving = json.load(f)
with open(transport_path) as f:
    transport = json.load(f)

merged = {
    "generated_by": "bench/run_benches.sh",
    "quick_mode": quick == "1",
    "bench_kernels": kernels,
    "bench_scheduler": scheduler,
    "bench_verify_overhead": verify,
    "bench_fig22_selection": {"raw": fig22_lines},
    "query_profile": query_profile,
    "bench_serving": serving,
    "bench_transport": transport,
}
with open(out_path, "w") as f:
    json.dump(merged, f, indent=2)
    f.write("\n")

names = [b.get("name", "") for b in kernels.get("benchmarks", [])]
print(f"wrote {out_path}: {len(names)} kernel benchmarks, "
      f"{len(fig22_lines)} fig22 output lines")
PY
