// Tables 3/4: characteristics of the synthetic stand-ins for the paper's
// three datasets. Prints the generated field statistics next to the paper's
// calibration targets so the substitution is auditable (see DESIGN.md).
#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"
#include "similarity/tokenizer.h"

using namespace simdb;
using namespace simdb::bench;

namespace {

struct FieldStats {
  double avg_chars = 0;
  size_t max_chars = 0;
  double avg_words = 0;
  size_t max_words = 0;
};

FieldStats Analyze(const std::vector<std::string>& values) {
  FieldStats stats;
  if (values.empty()) return stats;
  for (const std::string& v : values) {
    stats.avg_chars += static_cast<double>(v.size());
    stats.max_chars = std::max(stats.max_chars, v.size());
    size_t words = similarity::WordTokens(v).size();
    stats.avg_words += static_cast<double>(words);
    stats.max_words = std::max(stats.max_words, words);
  }
  stats.avg_chars /= static_cast<double>(values.size());
  stats.avg_words /= static_cast<double>(values.size());
  return stats;
}

void PrintStats(const std::string& label, const FieldStats& s,
                const std::string& paper_note) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "%-24s avg %5.1f ch (max %4zu), avg %5.1f words (max %3zu)"
                "   [paper: %s]",
                label.c_str(), s.avg_chars, s.max_chars, s.avg_words,
                s.max_words, paper_note.c_str());
  std::printf("%s\n", buf);
}

Status Run() {
  PrintTitle("Tables 3/4: synthetic dataset field characteristics",
             "generated statistics vs. the paper's calibration targets "
             "(long fields are scaled down; see DESIGN.md)");
  int64_t count = Scaled(10000);
  struct Run {
    datagen::TextProfile profile;
    const char* name_note;
    const char* text_note;
  };
  const Run runs[] = {
      {datagen::AmazonProfile(), "10.3 ch / 1.7 words",
       "22.8 ch / 4.0 words (max 44)"},
      {datagen::RedditProfile(), "24.3 ch / 4.1 words",
       "1056 ch / 1173 words (scaled down)"},
      {datagen::TwitterProfile(), "10.6 ch / 1.7 words",
       "62.5 ch / 9.7 words (max 70)"},
  };
  for (const Run& run : runs) {
    datagen::TextDatasetGenerator gen(run.profile, 42);
    for (int64_t i = 0; i < count; ++i) gen.NextRecord(i);
    std::printf("\n%s (%lld records)\n", run.profile.label.c_str(),
                static_cast<long long>(count));
    PrintStats("  " + run.profile.name_field, Analyze(gen.names()),
               run.name_note);
    PrintStats("  " + run.profile.text_field, Analyze(gen.texts()),
               run.text_note);
  }
  return Status::OK();
}

}  // namespace

int main() {
  Status status = Run();
  if (!status.ok()) {
    std::fprintf(stderr, "bench failed: %s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}
