#ifndef SIMDB_BENCH_BENCH_UTIL_H_
#define SIMDB_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cost_model.h"
#include "core/query_processor.h"
#include "datagen/textgen.h"

namespace simdb::bench {

/// Record-count multiplier from the SIMDB_BENCH_SCALE environment variable
/// (default 1.0). The paper's datasets are 84M-196M records; the defaults
/// here are laptop-sized and every bench prints the scale it ran at.
double BenchScale();
int64_t Scaled(int64_t base);

/// A throwaway engine rooted in a unique temp directory (removed on
/// destruction). Benches default to one worker thread so the per-partition
/// compute timings feeding the cluster cost model are contention-free.
class BenchEnv {
 public:
  explicit BenchEnv(hyracks::ClusterTopology topology, size_t threads = 1);
  ~BenchEnv();

  core::QueryProcessor& engine() { return *engine_; }

 private:
  std::string dir_;
  std::unique_ptr<core::QueryProcessor> engine_;
};

/// Creates `dataset` and loads `count` synthetic records from `profile`.
/// Returns the generator (for workload sampling).
Result<std::unique_ptr<datagen::TextDatasetGenerator>> LoadTextDataset(
    core::QueryProcessor& engine, const std::string& dataset,
    const datagen::TextProfile& profile, int64_t count, uint64_t seed = 42);

/// Timing of one query averaged over repeats.
struct QueryTiming {
  double wall_seconds = 0;       // measured on this machine
  double makespan_seconds = 0;   // simulated cluster time (cost model)
  double compile_seconds = 0;
  double aqlplus_seconds = 0;
  int64_t result_count = -1;     // rows (or the count() value)
  uint64_t remote_bytes = 0;
  uint64_t broadcast_bytes = 0;  // remote bytes of BROADCAST exchanges only
};

Result<QueryTiming> TimeQuery(core::QueryProcessor& engine,
                              const std::string& aql, int repeats = 1);

/// Formatting helpers for paper-style tables.
void PrintTitle(const std::string& title, const std::string& note);
void PrintRow(const std::vector<std::string>& cells);
std::string Seconds(double s);
std::string Bytes(uint64_t bytes);

}  // namespace simdb::bench

#endif  // SIMDB_BENCH_BENCH_UTIL_H_
