// Closed-loop serving benchmark: N client threads submit-and-await a mixed
// workload (cheap indexed selections + heavy self joins) against one
// serving::QueryEngine, for rising client counts. Reports throughput and
// latency percentiles per client count, then drives an intentionally
// overloaded engine (1 worker, queue of 2) to demonstrate load shedding,
// quota refusal, deadline expiry, and cancellation with their distinct
// outcome counters.
//
// Flags:
//   --json <path>   write {"clients": [...], "overload": {...},
//                   "metrics": {...}} (merged into BENCH_kernels.json by
//                   bench/run_benches.sh)
//   --quick         small dataset / few queries (CI smoke; numbers are NOT
//                   meaningful, only the output shape is)
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "observability/metrics.h"
#include "serving/query_engine.h"
#include "storage/file_util.h"

using namespace simdb;
using namespace simdb::bench;

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  size_t idx = static_cast<size_t>(p * static_cast<double>(values.size()));
  return values[std::min(idx, values.size() - 1)];
}

struct SeriesResult {
  int clients = 0;
  int queries = 0;
  double wall_seconds = 0;
  double qps = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  double cheap_p99_ms = 0;
  double heavy_p99_ms = 0;
};

struct ServingBench {
  std::string dir;
  std::unique_ptr<serving::QueryEngine> engine;

  ServingBench(serving::ServingOptions serving_options, int64_t count,
               const char* tag) {
    dir = (std::filesystem::temp_directory_path() /
           ("simdb_bench_serving_" + std::to_string(::getpid()) + "_" + tag))
              .string();
    storage::RemoveAllBestEffort(dir);
    core::EngineOptions options;
    options.data_dir = dir;
    options.topology = {2, 2};
    options.num_threads = 4;
    engine =
        std::make_unique<serving::QueryEngine>(options, serving_options);
    auto gen = LoadTextDataset(engine->processor(), "AmazonReview",
                               datagen::AmazonProfile(), count);
    if (!gen.ok()) {
      std::fprintf(stderr, "dataset load failed: %s\n",
                   gen.status().ToString().c_str());
      std::exit(1);
    }
    Status s = engine->processor().Execute(
        "create index smix on AmazonReview(summary) type keyword;"
        "create index nix on AmazonReview(reviewerName) type ngram(2);");
    if (!s.ok()) {
      std::fprintf(stderr, "index build failed: %s\n", s.ToString().c_str());
      std::exit(1);
    }
  }
  ~ServingBench() {
    engine.reset();
    storage::RemoveAllBestEffort(dir);
  }
};

const char kCheapQuery[] =
    "for $t in dataset AmazonReview where "
    "similarity-jaccard(word-tokens($t.summary), "
    "word-tokens('great product fantastic gift')) >= 0.6 return $t.id;";
std::string HeavyQuery(int64_t cap) {
  // Bounded self join so a heavy query costs ~10-100x a cheap one without
  // dominating the whole run.
  return "for $l in dataset AmazonReview for $r in dataset AmazonReview "
         "where $l.id < " +
         std::to_string(cap) + " and $r.id < " + std::to_string(cap) +
         " and similarity-jaccard(word-tokens($l.summary), "
         "word-tokens($r.summary)) >= 0.6 and $l.id < $r.id "
         "return {'l': $l.id, 'r': $r.id};";
}

/// Closed loop: each client thread runs `per_client` submit-and-wait
/// iterations, one heavy query out of every five.
SeriesResult RunSeries(serving::QueryEngine& engine, int clients,
                       int per_client, const std::string& heavy_query) {
  std::vector<std::vector<double>> cheap_lat(clients), heavy_lat(clients);
  std::atomic<int> errors{0};
  Clock::time_point start = Clock::now();
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      for (int i = 0; i < per_client; ++i) {
        bool heavy = (c + i) % 5 == 4;
        const std::string& aql = heavy ? heavy_query : kCheapQuery;
        Clock::time_point t0 = Clock::now();
        Result<std::shared_ptr<serving::QueryTicket>> ticket =
            engine.Submit(aql);
        if (!ticket.ok() || !ticket.value()->Wait().ok()) {
          errors.fetch_add(1);
          continue;
        }
        (heavy ? heavy_lat : cheap_lat)[c].push_back(SecondsSince(t0));
      }
    });
  }
  for (std::thread& t : threads) t.join();

  SeriesResult r;
  r.clients = clients;
  r.queries = clients * per_client - errors.load();
  r.wall_seconds = SecondsSince(start);
  r.qps = r.wall_seconds > 0 ? r.queries / r.wall_seconds : 0;
  std::vector<double> all, cheap, heavy;
  for (const auto& v : cheap_lat) cheap.insert(cheap.end(), v.begin(), v.end());
  for (const auto& v : heavy_lat) heavy.insert(heavy.end(), v.begin(), v.end());
  all = cheap;
  all.insert(all.end(), heavy.begin(), heavy.end());
  r.p50_ms = Percentile(all, 0.50) * 1e3;
  r.p99_ms = Percentile(all, 0.99) * 1e3;
  r.cheap_p99_ms = Percentile(cheap, 0.99) * 1e3;
  r.heavy_p99_ms = Percentile(heavy, 0.99) * 1e3;
  if (errors.load() != 0) {
    std::fprintf(stderr, "series clients=%d: %d unexpected failures\n",
                 clients, errors.load());
    std::exit(1);
  }
  return r;
}

/// Drives a deliberately tiny engine (1 worker, queue depth 2) into every
/// refusal/termination path so the serving.* outcome counters are all
/// exercised: queue-full shedding, pre-execution quota refusal, deadline
/// expiry, client cancellation, and a parse reject.
serving::ServingStats RunOverloadScenario(int64_t records,
                                          const std::string& heavy_query) {
  serving::ServingOptions serving_options;
  serving_options.max_concurrent = 1;
  serving_options.max_queue = 2;
  ServingBench bench(serving_options, records, "overload");
  serving::QueryEngine& engine = *bench.engine;

  // Burst far past the queue: 1 running + 2 queued admit, the rest shed.
  std::vector<std::shared_ptr<serving::QueryTicket>> admitted;
  for (int i = 0; i < 12; ++i) {
    Result<std::shared_ptr<serving::QueryTicket>> t =
        engine.Submit(heavy_query);
    if (t.ok()) admitted.push_back(t.value());
  }
  for (const auto& t : admitted) t->Wait();

  serving::SubmitOptions tiny_quota;
  tiny_quota.memory_quota_bytes = 64;  // refused at admission
  if (Result<std::shared_ptr<serving::QueryTicket>> t =
          engine.Submit("for $t in dataset AmazonReview return $t;",
                        tiny_quota);
      t.ok()) {
    t.value()->Wait();
  }

  serving::SubmitOptions tight_deadline;
  tight_deadline.deadline_seconds = 1e-6;
  if (Result<std::shared_ptr<serving::QueryTicket>> t =
          engine.Submit(heavy_query, tight_deadline);
      t.ok()) {
    t.value()->Wait();
  }

  // Deterministic cancel: park a target behind a running blocker, cancel it
  // while it is still queued.
  Result<std::shared_ptr<serving::QueryTicket>> blocker =
      engine.Submit(heavy_query);
  if (Result<std::shared_ptr<serving::QueryTicket>> t =
          engine.Submit(heavy_query);
      t.ok()) {
    t.value()->Cancel();
    t.value()->Wait();
  }
  if (blocker.ok()) blocker.value()->Wait();

  engine.Submit("for $t in (((;").status();  // parse reject

  return engine.Stats();
}

int Main(int argc, char** argv) {
  bool quick = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--json path]\n", argv[0]);
      return 2;
    }
  }

  int64_t count = Scaled(quick ? 300 : 3000);
  int per_client = quick ? 6 : 30;
  std::string heavy_query = HeavyQuery(std::max<int64_t>(count / 10, 20));

  serving::ServingOptions serving_options;  // defaults: 4 workers, queue 16
  serving_options.max_queue = 64;
  ServingBench bench(serving_options, count, "series");

  PrintTitle("Concurrent serving: closed-loop clients vs one QueryEngine",
             "4 workers (1 reserved cheap slot), mixed 4:1 cheap:heavy");
  PrintRow({"clients", "queries", "QPS", "p50", "p99", "cheap p99",
            "heavy p99"});
  std::vector<SeriesResult> series;
  for (int clients : {1, 2, 4, 8}) {
    SeriesResult r = RunSeries(*bench.engine, clients, per_client,
                               heavy_query);
    series.push_back(r);
    PrintRow({std::to_string(r.clients), std::to_string(r.queries),
              std::to_string(static_cast<int64_t>(r.qps)),
              Seconds(r.p50_ms / 1e3), Seconds(r.p99_ms / 1e3),
              Seconds(r.cheap_p99_ms / 1e3), Seconds(r.heavy_p99_ms / 1e3)});
  }
  serving::ServingStats series_stats = bench.engine->Stats();

  serving::ServingStats overload =
      RunOverloadScenario(quick ? 200 : 400, heavy_query);
  std::printf(
      "overload engine (1 worker, queue 2): submitted %llu, admitted %llu, "
      "shed %llu, quota-refused %llu, deadline %llu, cancelled %llu, "
      "parse-rejected %llu\n",
      static_cast<unsigned long long>(overload.submitted),
      static_cast<unsigned long long>(overload.admitted),
      static_cast<unsigned long long>(overload.rejected_queue_full),
      static_cast<unsigned long long>(overload.rejected_quota),
      static_cast<unsigned long long>(overload.deadline_exceeded),
      static_cast<unsigned long long>(overload.cancelled),
      static_cast<unsigned long long>(overload.rejected_parse));
  if (overload.rejected_queue_full == 0) {
    std::fprintf(stderr, "overload scenario shed no load\n");
    return 1;
  }

  if (!json_path.empty()) {
    auto u64 = [](uint64_t v) { return std::to_string(v); };
    std::string json = "{\n  \"clients\": [\n";
    for (size_t i = 0; i < series.size(); ++i) {
      const SeriesResult& r = series[i];
      json += "    {\"clients\": " + std::to_string(r.clients) +
              ", \"queries\": " + std::to_string(r.queries) +
              ", \"qps\": " + std::to_string(r.qps) +
              ", \"p50_ms\": " + std::to_string(r.p50_ms) +
              ", \"p99_ms\": " + std::to_string(r.p99_ms) +
              ", \"cheap_p99_ms\": " + std::to_string(r.cheap_p99_ms) +
              ", \"heavy_p99_ms\": " + std::to_string(r.heavy_p99_ms) + "}";
      json += (i + 1 < series.size()) ? ",\n" : "\n";
    }
    json += "  ],\n  \"series_stats\": {\"submitted\": " +
            u64(series_stats.submitted) +
            ", \"admitted\": " + u64(series_stats.admitted) +
            ", \"completed\": " + u64(series_stats.completed) +
            ", \"peak_queue_depth\": " + u64(series_stats.peak_queue_depth) +
            "},\n";
    json += "  \"overload\": {\"submitted\": " + u64(overload.submitted) +
            ", \"admitted\": " + u64(overload.admitted) +
            ", \"rejected_queue_full\": " + u64(overload.rejected_queue_full) +
            ", \"rejected_quota\": " + u64(overload.rejected_quota) +
            ", \"rejected_parse\": " + u64(overload.rejected_parse) +
            ", \"deadline_exceeded\": " + u64(overload.deadline_exceeded) +
            ", \"cancelled\": " + u64(overload.cancelled) +
            ", \"completed\": " + u64(overload.completed) + "},\n";
    json += "  \"metrics\": " + obs::MetricsRegistry::Global().ToJson() +
            "\n}\n";
    FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Main(argc, argv); }
