// Transport backend comparison on the Figure-27 scaling workload: the same
// exchange-heavy Jaccard join runs under the modeled, shared-memory, and
// socket backends as the simulated cluster grows 1 -> 8 nodes, reporting
// measured wall clock, the cost-model makespan, and the measured transport
// seconds (real backends) next to the modeled network charge. A second
// section microbenches the rows-frame codec (serialize/deserialize through
// the versioned CRC frame) at several row counts.
//
//   --json <path>   write {"scaling": [...], "serde": [...], "metrics": ...}
//                   (merged into BENCH_kernels.json by bench/run_benches.sh)
//   --quick         small dataset (CI smoke; numbers are NOT meaningful)
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "observability/metrics.h"
#include "transport/transport.h"

using namespace simdb;
using namespace simdb::bench;

namespace {

struct ScalingPoint {
  int nodes = 0;
  const char* backend = "";
  double wall_seconds = 0;
  double makespan_seconds = 0;
  double measured_network_seconds = 0;
  double modeled_network_seconds = 0;
  uint64_t remote_bytes = 0;
  int64_t result_count = 0;
};

Result<ScalingPoint> RunConfig(int nodes, int64_t records,
                               transport::TransportKind kind) {
  BenchEnv env({nodes, 2}, /*threads=*/2);
  core::QueryProcessor& engine = env.engine();
  engine.set_transport(kind);
  SIMDB_ASSIGN_OR_RETURN(auto gen,
                         LoadTextDataset(engine, "AmazonReview",
                                         datagen::AmazonProfile(), records));
  (void)gen;
  std::string join =
      "count(for $o in dataset AmazonReview for $i in dataset AmazonReview "
      "where similarity-jaccard(word-tokens($o.summary), "
      "word-tokens($i.summary)) >= 0.8 and $o.id < 10 and $o.id < $i.id "
      "return {'o': $o.id})";
  ScalingPoint point;
  point.nodes = nodes;
  point.backend = transport::TransportKindName(kind);
  Stopwatch sw;
  core::QueryResult result;
  SIMDB_RETURN_IF_ERROR(engine.Execute(join + ";", &result));
  point.wall_seconds = sw.ElapsedSeconds();
  cluster::MakespanReport report =
      cluster::ComputeMakespan(result.exec, engine.options().topology);
  point.makespan_seconds = report.total_seconds();
  point.measured_network_seconds = report.measured_network_seconds;
  point.modeled_network_seconds = report.network_seconds;
  point.remote_bytes = result.exec.TotalRemoteBytes();
  point.result_count = result.rows.size() == 1 && result.rows[0].is_int64()
                           ? result.rows[0].AsInt64()
                           : static_cast<int64_t>(result.rows.size());
  return point;
}

struct SerdePoint {
  int rows = 0;
  uint64_t frame_bytes = 0;
  double encode_mb_per_sec = 0;
  double decode_mb_per_sec = 0;
};

SerdePoint RunSerde(int nrows, int repeats) {
  hyracks::Rows rows;
  for (int i = 0; i < nrows; ++i) {
    hyracks::Tuple row;
    row.push_back(adm::Value::Int64(i));
    row.push_back(adm::Value::String(
        "review summary text for record " + std::to_string(i)));
    row.push_back(adm::Value::Double(0.125 * static_cast<double>(i)));
    rows.push_back(std::move(row));
  }
  SerdePoint point;
  point.rows = nrows;
  std::string frame;
  Stopwatch enc;
  for (int r = 0; r < repeats; ++r) {
    frame.clear();
    transport::EncodeRowsFrame(rows, &frame);
  }
  double enc_seconds = enc.ElapsedSeconds();
  point.frame_bytes = frame.size();
  Stopwatch dec;
  for (int r = 0; r < repeats; ++r) {
    auto back = transport::DecodeRowsFrame(frame);
    if (!back.ok()) {
      std::fprintf(stderr, "decode failed: %s\n",
                   back.status().ToString().c_str());
      std::exit(1);
    }
  }
  double dec_seconds = dec.ElapsedSeconds();
  double mb = static_cast<double>(frame.size()) * repeats / (1024.0 * 1024.0);
  point.encode_mb_per_sec = enc_seconds > 0 ? mb / enc_seconds : 0;
  point.decode_mb_per_sec = dec_seconds > 0 ? mb / dec_seconds : 0;
  return point;
}

std::string Fmt(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  return buf;
}

int Main(int argc, char** argv) {
  bool quick = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--json path]\n", argv[0]);
      return 2;
    }
  }

  const int64_t full_data = Scaled(quick ? 400 : 4000);
  const transport::TransportKind kinds[] = {
      transport::TransportKind::kModeled,
      transport::TransportKind::kSharedMemory,
      transport::TransportKind::kSocket};
  std::vector<ScalingPoint> scaling;

  PrintTitle("Transport backends on the Figure-27 speed-up workload",
             "same Jaccard join, fixed data, cluster grows 1 -> 8 nodes; "
             "modeled charges the network formula, shm/socket measure real "
             "ship time");
  PrintRow({"nodes", "backend", "wall", "makespan", "net(meas)", "net(model)",
            "remote"});
  for (int nodes : {1, 2, 4, 8}) {
    for (transport::TransportKind kind : kinds) {
      Result<ScalingPoint> point = RunConfig(nodes, full_data, kind);
      if (!point.ok()) {
        std::fprintf(stderr, "bench failed: %s\n",
                     point.status().ToString().c_str());
        return 1;
      }
      scaling.push_back(*point);
      PrintRow({std::to_string(point->nodes), point->backend,
                Seconds(point->wall_seconds),
                Seconds(point->makespan_seconds),
                Seconds(point->measured_network_seconds),
                Seconds(point->modeled_network_seconds),
                Bytes(point->remote_bytes)});
    }
  }

  PrintTitle("Rows-frame codec (adm wire frame: magic/version/length/CRC-32)",
             "per-row: int64 + string + double; throughput includes framing "
             "and checksum");
  PrintRow({"rows", "frame bytes", "encode MB/s", "decode MB/s"});
  std::vector<SerdePoint> serde;
  const int repeats = quick ? 20 : 200;
  for (int nrows : {16, 256, 4096}) {
    SerdePoint point = RunSerde(nrows, repeats);
    serde.push_back(point);
    PrintRow({std::to_string(point.rows), std::to_string(point.frame_bytes),
              Fmt(point.encode_mb_per_sec), Fmt(point.decode_mb_per_sec)});
  }

  if (!json_path.empty()) {
    std::string json = "{\n  \"scaling\": [\n";
    for (size_t i = 0; i < scaling.size(); ++i) {
      const ScalingPoint& p = scaling[i];
      json += "    {\"nodes\": " + std::to_string(p.nodes) +
              ", \"backend\": \"" + p.backend +
              "\", \"wall_seconds\": " + Fmt(p.wall_seconds) +
              ", \"makespan_seconds\": " + Fmt(p.makespan_seconds) +
              ", \"measured_network_seconds\": " +
              Fmt(p.measured_network_seconds) +
              ", \"modeled_network_seconds\": " +
              Fmt(p.modeled_network_seconds) +
              ", \"remote_bytes\": " + std::to_string(p.remote_bytes) +
              ", \"result_count\": " + std::to_string(p.result_count) + "}";
      json += (i + 1 < scaling.size()) ? ",\n" : "\n";
    }
    json += "  ],\n  \"serde\": [\n";
    for (size_t i = 0; i < serde.size(); ++i) {
      const SerdePoint& p = serde[i];
      json += "    {\"rows\": " + std::to_string(p.rows) +
              ", \"frame_bytes\": " + std::to_string(p.frame_bytes) +
              ", \"encode_mb_per_sec\": " + Fmt(p.encode_mb_per_sec) +
              ", \"decode_mb_per_sec\": " + Fmt(p.decode_mb_per_sec) + "}";
      json += (i + 1 < serde.size()) ? ",\n" : "\n";
    }
    json += "  ],\n  \"metrics\": " +
            obs::MetricsRegistry::Global().ToJson() + "\n}\n";
    FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Main(argc, argv); }
