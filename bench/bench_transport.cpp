// Transport backend comparison on the Figure-27 scaling workload: the same
// exchange-heavy Jaccard join runs under the modeled, shared-memory, and
// socket backends as the simulated cluster grows 1 -> 8 nodes, reporting
// measured wall clock, the cost-model makespan, and the measured transport
// seconds (real backends) next to the modeled network charge. A second
// section microbenches the rows-frame codec (serialize/deserialize through
// the versioned CRC frame) at several row counts.
//
// A third section compares parent-side vs worker-side compute: the same
// join at a fixed {4 nodes x 2 partitions} topology under the socket
// backend with fragment dispatch off (workers only echo shipped bytes)
// and on (exchange destinations are built inside the forked workers),
// reporting the measured remote compute surfaced by the cost model.
//
//   --json <path>   write {"scaling": [...], "serde": [...],
//                   "remote_compute": [...], "queries": [...],
//                   "metrics": ...}
//                   (merged into BENCH_kernels.json by bench/run_benches.sh)
//   --quick         small dataset (CI smoke; numbers are NOT meaningful)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "observability/metrics.h"
#include "observability/profile.h"
#include "transport/transport.h"

using namespace simdb;
using namespace simdb::bench;

namespace {

struct ScalingPoint {
  int nodes = 0;
  const char* backend = "";
  double wall_seconds = 0;
  double makespan_seconds = 0;
  double measured_network_seconds = 0;
  double modeled_network_seconds = 0;
  uint64_t remote_bytes = 0;
  int64_t result_count = 0;
};

std::string JoinQuery() {
  return "count(for $o in dataset AmazonReview for $i in dataset AmazonReview "
         "where similarity-jaccard(word-tokens($o.summary), "
         "word-tokens($i.summary)) >= 0.8 and $o.id < 10 and $o.id < $i.id "
         "return {'o': $o.id})";
}

Result<ScalingPoint> RunConfig(int nodes, int64_t records,
                               transport::TransportKind kind) {
  BenchEnv env({nodes, 2}, /*threads=*/2);
  core::QueryProcessor& engine = env.engine();
  engine.set_transport(kind);
  SIMDB_ASSIGN_OR_RETURN(auto gen,
                         LoadTextDataset(engine, "AmazonReview",
                                         datagen::AmazonProfile(), records));
  (void)gen;
  std::string join = JoinQuery();
  ScalingPoint point;
  point.nodes = nodes;
  point.backend = transport::TransportKindName(kind);
  Stopwatch sw;
  core::QueryResult result;
  SIMDB_RETURN_IF_ERROR(engine.Execute(join + ";", &result));
  point.wall_seconds = sw.ElapsedSeconds();
  cluster::MakespanReport report =
      cluster::ComputeMakespan(result.exec, engine.options().topology);
  point.makespan_seconds = report.total_seconds();
  point.measured_network_seconds = report.measured_network_seconds;
  point.modeled_network_seconds = report.network_seconds;
  point.remote_bytes = result.exec.TotalRemoteBytes();
  point.result_count = result.rows.size() == 1 && result.rows[0].is_int64()
                           ? result.rows[0].AsInt64()
                           : static_cast<int64_t>(result.rows.size());
  return point;
}

struct RemoteComputePoint {
  const char* mode = "";
  double wall_seconds = 0;
  double makespan_seconds = 0;
  double remote_compute_seconds = 0;
  uint64_t tasks_remote = 0;
  int64_t result_count = 0;
};

// Same join, fixed {4 nodes x 2 partitions}, socket backend, profiling on;
// SIMDB_SOCKET_FRAGMENTS decides whether exchange destinations are built in
// the parent (off: workers echo shipped bytes) or inside the owning forked
// worker (on: kFragment dispatch). The fragments-on profile is kept for the
// JSON "queries" section so the exec.remote.* catalogue check in CI sees the
// per-operator counters a remote build emits.
Result<RemoteComputePoint> RunRemoteCompute(bool fragments_on, int64_t records,
                                            std::string* profile_json) {
  setenv("SIMDB_SOCKET_FRAGMENTS", fragments_on ? "1" : "0", /*overwrite=*/1);
  BenchEnv env({4, 2}, /*threads=*/2);
  core::QueryProcessor& engine = env.engine();
  engine.set_transport(transport::TransportKind::kSocket);
  engine.set_profile_queries(true);
  SIMDB_ASSIGN_OR_RETURN(auto gen,
                         LoadTextDataset(engine, "AmazonReview",
                                         datagen::AmazonProfile(), records));
  (void)gen;
  RemoteComputePoint point;
  point.mode = fragments_on ? "worker_compute" : "parent_compute";
  Stopwatch sw;
  core::QueryResult result;
  SIMDB_RETURN_IF_ERROR(engine.Execute(JoinQuery() + ";", &result));
  point.wall_seconds = sw.ElapsedSeconds();
  cluster::MakespanReport report =
      cluster::ComputeMakespan(result.exec, engine.options().topology);
  point.makespan_seconds = report.total_seconds();
  point.remote_compute_seconds = report.remote_compute_seconds;
  point.tasks_remote = result.exec.tasks_remote;
  point.result_count = result.rows.size() == 1 && result.rows[0].is_int64()
                           ? result.rows[0].AsInt64()
                           : static_cast<int64_t>(result.rows.size());
  if (fragments_on && profile_json != nullptr) {
    if (result.profile == nullptr)
      return Status::Internal("profiled join produced no profile");
    *profile_json = result.profile->ToJson();
  }
  return point;
}

struct SerdePoint {
  int rows = 0;
  uint64_t frame_bytes = 0;
  double encode_mb_per_sec = 0;
  double decode_mb_per_sec = 0;
};

SerdePoint RunSerde(int nrows, int repeats) {
  hyracks::Rows rows;
  for (int i = 0; i < nrows; ++i) {
    hyracks::Tuple row;
    row.push_back(adm::Value::Int64(i));
    row.push_back(adm::Value::String(
        "review summary text for record " + std::to_string(i)));
    row.push_back(adm::Value::Double(0.125 * static_cast<double>(i)));
    rows.push_back(std::move(row));
  }
  SerdePoint point;
  point.rows = nrows;
  std::string frame;
  Stopwatch enc;
  for (int r = 0; r < repeats; ++r) {
    frame.clear();
    transport::EncodeRowsFrame(rows, &frame);
  }
  double enc_seconds = enc.ElapsedSeconds();
  point.frame_bytes = frame.size();
  Stopwatch dec;
  for (int r = 0; r < repeats; ++r) {
    auto back = transport::DecodeRowsFrame(frame);
    if (!back.ok()) {
      std::fprintf(stderr, "decode failed: %s\n",
                   back.status().ToString().c_str());
      std::exit(1);
    }
  }
  double dec_seconds = dec.ElapsedSeconds();
  double mb = static_cast<double>(frame.size()) * repeats / (1024.0 * 1024.0);
  point.encode_mb_per_sec = enc_seconds > 0 ? mb / enc_seconds : 0;
  point.decode_mb_per_sec = dec_seconds > 0 ? mb / dec_seconds : 0;
  return point;
}

std::string Fmt(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  return buf;
}

int Main(int argc, char** argv) {
  bool quick = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--json path]\n", argv[0]);
      return 2;
    }
  }

  const int64_t full_data = Scaled(quick ? 400 : 4000);
  const transport::TransportKind kinds[] = {
      transport::TransportKind::kModeled,
      transport::TransportKind::kSharedMemory,
      transport::TransportKind::kSocket};
  std::vector<ScalingPoint> scaling;

  PrintTitle("Transport backends on the Figure-27 speed-up workload",
             "same Jaccard join, fixed data, cluster grows 1 -> 8 nodes; "
             "modeled charges the network formula, shm/socket measure real "
             "ship time");
  PrintRow({"nodes", "backend", "wall", "makespan", "net(meas)", "net(model)",
            "remote"});
  for (int nodes : {1, 2, 4, 8}) {
    for (transport::TransportKind kind : kinds) {
      Result<ScalingPoint> point = RunConfig(nodes, full_data, kind);
      if (!point.ok()) {
        std::fprintf(stderr, "bench failed: %s\n",
                     point.status().ToString().c_str());
        return 1;
      }
      scaling.push_back(*point);
      PrintRow({std::to_string(point->nodes), point->backend,
                Seconds(point->wall_seconds),
                Seconds(point->makespan_seconds),
                Seconds(point->measured_network_seconds),
                Seconds(point->modeled_network_seconds),
                Bytes(point->remote_bytes)});
    }
  }

  PrintTitle("Rows-frame codec (adm wire frame: magic/version/length/CRC-32)",
             "per-row: int64 + string + double; throughput includes framing "
             "and checksum");
  PrintRow({"rows", "frame bytes", "encode MB/s", "decode MB/s"});
  std::vector<SerdePoint> serde;
  const int repeats = quick ? 20 : 200;
  for (int nrows : {16, 256, 4096}) {
    SerdePoint point = RunSerde(nrows, repeats);
    serde.push_back(point);
    PrintRow({std::to_string(point.rows), std::to_string(point.frame_bytes),
              Fmt(point.encode_mb_per_sec), Fmt(point.decode_mb_per_sec)});
  }

  PrintTitle("Remote compute: parent vs forked workers ({4 nodes x 2 parts}, "
             "socket backend)",
             "fragments off: workers echo shipped frames, all compute in the "
             "parent; fragments on: kFragment dispatch builds exchange "
             "destinations inside the owning worker");
  PrintRow({"mode", "wall", "makespan", "remote compute", "remote tasks"});
  std::vector<RemoteComputePoint> remote_compute;
  std::string remote_profile_json;
  for (bool fragments_on : {false, true}) {
    Result<RemoteComputePoint> point =
        RunRemoteCompute(fragments_on, full_data, &remote_profile_json);
    if (!point.ok()) {
      std::fprintf(stderr, "remote-compute bench failed: %s\n",
                   point.status().ToString().c_str());
      return 1;
    }
    remote_compute.push_back(*point);
    PrintRow({point->mode, Seconds(point->wall_seconds),
              Seconds(point->makespan_seconds),
              Seconds(point->remote_compute_seconds),
              std::to_string(point->tasks_remote)});
  }
  unsetenv("SIMDB_SOCKET_FRAGMENTS");
  if (remote_compute[0].tasks_remote != 0 ||
      remote_compute[1].tasks_remote == 0) {
    std::fprintf(stderr,
                 "remote-compute bench did not exercise fragment dispatch "
                 "(off: %llu remote tasks, on: %llu)\n",
                 static_cast<unsigned long long>(remote_compute[0].tasks_remote),
                 static_cast<unsigned long long>(remote_compute[1].tasks_remote));
    return 1;
  }

  if (!json_path.empty()) {
    std::string json = "{\n  \"scaling\": [\n";
    for (size_t i = 0; i < scaling.size(); ++i) {
      const ScalingPoint& p = scaling[i];
      json += "    {\"nodes\": " + std::to_string(p.nodes) +
              ", \"backend\": \"" + p.backend +
              "\", \"wall_seconds\": " + Fmt(p.wall_seconds) +
              ", \"makespan_seconds\": " + Fmt(p.makespan_seconds) +
              ", \"measured_network_seconds\": " +
              Fmt(p.measured_network_seconds) +
              ", \"modeled_network_seconds\": " +
              Fmt(p.modeled_network_seconds) +
              ", \"remote_bytes\": " + std::to_string(p.remote_bytes) +
              ", \"result_count\": " + std::to_string(p.result_count) + "}";
      json += (i + 1 < scaling.size()) ? ",\n" : "\n";
    }
    json += "  ],\n  \"serde\": [\n";
    for (size_t i = 0; i < serde.size(); ++i) {
      const SerdePoint& p = serde[i];
      json += "    {\"rows\": " + std::to_string(p.rows) +
              ", \"frame_bytes\": " + std::to_string(p.frame_bytes) +
              ", \"encode_mb_per_sec\": " + Fmt(p.encode_mb_per_sec) +
              ", \"decode_mb_per_sec\": " + Fmt(p.decode_mb_per_sec) + "}";
      json += (i + 1 < serde.size()) ? ",\n" : "\n";
    }
    json += "  ],\n  \"remote_compute\": [\n";
    for (size_t i = 0; i < remote_compute.size(); ++i) {
      const RemoteComputePoint& p = remote_compute[i];
      json += "    {\"mode\": \"" + std::string(p.mode) +
              "\", \"wall_seconds\": " + Fmt(p.wall_seconds) +
              ", \"makespan_seconds\": " + Fmt(p.makespan_seconds) +
              ", \"remote_compute_seconds\": " + Fmt(p.remote_compute_seconds) +
              ", \"tasks_remote\": " + std::to_string(p.tasks_remote) +
              ", \"result_count\": " + std::to_string(p.result_count) + "}";
      json += (i + 1 < remote_compute.size()) ? ",\n" : "\n";
    }
    // Same {"queries": [{"name", "profile"}]} shape as bench_profile --json,
    // so scripts/check_metric_catalogue.py can diff the exec.remote.*
    // operator counters against docs/DISTRIBUTED.md.
    json += "  ],\n  \"queries\": [\n";
    json += "    {\"name\": \"jaccard_join_worker_compute\", \"profile\": " +
            remote_profile_json + "}\n";
    json += "  ],\n  \"metrics\": " +
            obs::MetricsRegistry::Global().ToJson() + "\n}\n";
    FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Main(argc, argv); }
