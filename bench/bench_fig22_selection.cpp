// Figure 22: average execution time of similarity-selection queries on the
// Amazon-review dataset, with and without an index, plus the exact-match
// baseline. (a) Jaccard on `summary` at thresholds 0.2/0.5/0.8; (b) edit
// distance on `reviewerName` at thresholds 1/2/3.
// Paper shapes: indexed time falls as the Jaccard threshold rises and rises
// with the edit-distance threshold; without an index all queries cost about
// a full scan; exact match with an index is the cheapest.
#include <cstdio>

#include "bench/bench_util.h"

using namespace simdb;
using namespace simdb::bench;

namespace {

std::string Escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c != '\'') out.push_back(c);
  }
  return out;
}

Status Run() {
  BenchEnv env({2, 2});
  core::QueryProcessor& engine = env.engine();
  int64_t count = Scaled(20000);
  const int kQueries = 10;

  SIMDB_ASSIGN_OR_RETURN(auto gen,
                         LoadTextDataset(engine, "AmazonReview",
                                         datagen::AmazonProfile(), count));
  SIMDB_RETURN_IF_ERROR(engine.Execute(R"(
    create index smix on AmazonReview(summary) type keyword;
    create index nix on AmazonReview(reviewerName) type ngram(2);
    create index sm_bt on AmazonReview(summary) type btree;
    create index rn_bt on AmazonReview(reviewerName) type btree;
  )"));

  datagen::WorkloadSampler summaries(gen->texts());
  datagen::WorkloadSampler names(gen->names());

  // Runs the same query batch with and without index rewrites enabled.
  auto run_batch = [&](const std::vector<std::string>& queries)
      -> Result<std::pair<double, double>> {
    double with_index = 0, without_index = 0;
    for (const std::string& q : queries) {
      engine.opt_context().enable_index_select = true;
      SIMDB_ASSIGN_OR_RETURN(QueryTiming on, TimeQuery(engine, q));
      with_index += on.makespan_seconds;
      engine.opt_context().enable_index_select = false;
      SIMDB_ASSIGN_OR_RETURN(QueryTiming off, TimeQuery(engine, q));
      without_index += off.makespan_seconds;
      engine.opt_context().enable_index_select = true;
    }
    return std::make_pair(without_index / queries.size(),
                          with_index / queries.size());
  };

  PrintTitle("Figure 22(a): Jaccard selection on `summary`",
             "paper: indexed time falls with the threshold; no-index ~ scan");
  PrintRow({"threshold", "without-index", "with-index"});
  {
    std::vector<std::string> exact;
    for (int q = 0; q < kQueries; ++q) {
      SIMDB_ASSIGN_OR_RETURN(std::string v, summaries.SampleWithMinWords(3));
      exact.push_back("count(for $t in dataset AmazonReview where "
                      "$t.summary = '" + Escape(v) + "' return $t)");
    }
    SIMDB_ASSIGN_OR_RETURN(auto baseline, run_batch(exact));
    PrintRow({"exact match", Seconds(baseline.first),
              Seconds(baseline.second)});
    // The same sampled values are reused across thresholds so rows differ
    // only by the threshold (the paper's protocol).
    std::vector<std::string> values;
    for (int q = 0; q < kQueries; ++q) {
      SIMDB_ASSIGN_OR_RETURN(std::string v, summaries.SampleWithMinWords(3));
      values.push_back(Escape(v));
    }
    for (double threshold : {0.2, 0.5, 0.8}) {
      std::vector<std::string> queries;
      for (const std::string& v : values) {
        queries.push_back(
            "count(for $t in dataset AmazonReview where "
            "similarity-jaccard(word-tokens($t.summary), word-tokens('" + v +
            "')) >= " + std::to_string(threshold) + " return $t)");
      }
      SIMDB_ASSIGN_OR_RETURN(auto row, run_batch(queries));
      PrintRow({std::to_string(threshold).substr(0, 3), Seconds(row.first),
                Seconds(row.second)});
    }
  }

  PrintTitle("Figure 22(b): edit-distance selection on `reviewerName`",
             "paper: indexed time RISES with the threshold (more candidates)");
  PrintRow({"threshold", "without-index", "with-index"});
  {
    std::vector<std::string> exact;
    for (int q = 0; q < kQueries; ++q) {
      SIMDB_ASSIGN_OR_RETURN(std::string v, names.SampleWithMinChars(3));
      exact.push_back("count(for $t in dataset AmazonReview where "
                      "$t.reviewerName = '" + Escape(v) + "' return $t)");
    }
    SIMDB_ASSIGN_OR_RETURN(auto baseline, run_batch(exact));
    PrintRow({"exact match", Seconds(baseline.first),
              Seconds(baseline.second)});
    std::vector<std::string> values;
    for (int q = 0; q < kQueries; ++q) {
      SIMDB_ASSIGN_OR_RETURN(std::string v, names.SampleWithMinChars(8));
      values.push_back(Escape(v));
    }
    for (int k : {1, 2, 3}) {
      std::vector<std::string> queries;
      for (const std::string& v : values) {
        queries.push_back(
            "count(for $t in dataset AmazonReview where "
            "edit-distance($t.reviewerName, '" + v + "') <= " +
            std::to_string(k) + " return $t)");
      }
      SIMDB_ASSIGN_OR_RETURN(auto row, run_batch(queries));
      PrintRow({std::to_string(k), Seconds(row.first), Seconds(row.second)});
    }
  }
  std::printf("records: %lld, %d queries per row; simulated 2x2 cluster "
              "makespans\n",
              static_cast<long long>(count), kQueries);
  return Status::OK();
}

}  // namespace

int main() {
  Status status = Run();
  if (!status.ok()) {
    std::fprintf(stderr, "bench failed: %s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}
