// Micro-benchmarks (google-benchmark) of the similarity and storage kernels
// underlying every experiment: tokenizers, edit-distance DP vs. the banded
// verifier, Jaccard merge vs. the early-terminating check, the two
// T-occurrence list-merge algorithms, and LSM point operations.
#include <benchmark/benchmark.h>

#include <filesystem>

#include "common/random.h"
#include "similarity/edit_distance.h"
#include "similarity/jaccard.h"
#include "similarity/tokenizer.h"
#include "storage/file_util.h"
#include "storage/inverted_index.h"
#include "storage/lsm_index.h"
#include "storage/token_dictionary.h"

namespace {

using namespace simdb;

std::string RandomString(Random& rng, size_t len) {
  std::string s;
  for (size_t i = 0; i < len; ++i) {
    s.push_back(static_cast<char>('a' + rng.Uniform(26)));
  }
  return s;
}

void BM_WordTokens(benchmark::State& state) {
  std::string text =
      "great product fantastic gift better than i ever expected to buy";
  for (auto _ : state) {
    benchmark::DoNotOptimize(similarity::WordTokens(text));
  }
}
BENCHMARK(BM_WordTokens);

void BM_GramTokens(benchmark::State& state) {
  std::string text = "supercalifragilisticexpialidocious";
  for (auto _ : state) {
    benchmark::DoNotOptimize(similarity::GramTokens(text, 2));
  }
}
BENCHMARK(BM_GramTokens);

void BM_EditDistanceFull(benchmark::State& state) {
  Random rng(1);
  std::string a = RandomString(rng, static_cast<size_t>(state.range(0)));
  std::string b = RandomString(rng, static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(similarity::EditDistance(a, b));
  }
}
BENCHMARK(BM_EditDistanceFull)->Arg(10)->Arg(40)->Arg(160);

void BM_EditDistanceCheckBanded(benchmark::State& state) {
  Random rng(1);
  std::string a = RandomString(rng, static_cast<size_t>(state.range(0)));
  std::string b = a;
  b[0] = '#';
  for (auto _ : state) {
    benchmark::DoNotOptimize(similarity::EditDistanceCheck(a, b, 2));
  }
}
BENCHMARK(BM_EditDistanceCheckBanded)->Arg(10)->Arg(40)->Arg(160);

std::vector<std::string> RandomTokens(Random& rng, size_t n) {
  std::vector<std::string> tokens;
  for (size_t i = 0; i < n; ++i) {
    tokens.push_back("tok" + std::to_string(rng.Uniform(400)));
  }
  std::sort(tokens.begin(), tokens.end());
  return tokens;
}

void BM_JaccardExact(benchmark::State& state) {
  Random rng(2);
  auto a = RandomTokens(rng, static_cast<size_t>(state.range(0)));
  auto b = RandomTokens(rng, static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(similarity::JaccardSorted(a, b));
  }
}
BENCHMARK(BM_JaccardExact)->Arg(8)->Arg(64);

void BM_JaccardCheckEarlyTermination(benchmark::State& state) {
  Random rng(2);
  auto a = RandomTokens(rng, static_cast<size_t>(state.range(0)));
  auto b = RandomTokens(rng, static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(similarity::JaccardCheckSorted(a, b, 0.9));
  }
}
BENCHMARK(BM_JaccardCheckEarlyTermination)->Arg(8)->Arg(64);

/// Same token distribution as the string kernels above, dictionary-encoded
/// to dense ids — the representation the verify operators run on once the
/// inverted index hands out integer postings.
std::vector<uint32_t> EncodeIds(storage::TokenDictionary& dict,
                                const std::vector<std::string>& tokens) {
  std::vector<uint32_t> ids;
  ids.reserve(tokens.size());
  for (const std::string& t : tokens) ids.push_back(dict.GetOrAssign(t));
  std::sort(ids.begin(), ids.end());
  return ids;
}

void BM_JaccardExactIds(benchmark::State& state) {
  Random rng(2);
  storage::TokenDictionary dict;
  auto a = EncodeIds(dict, RandomTokens(rng, static_cast<size_t>(state.range(0))));
  auto b = EncodeIds(dict, RandomTokens(rng, static_cast<size_t>(state.range(0))));
  for (auto _ : state) {
    benchmark::DoNotOptimize(similarity::JaccardSortedIds(a, b));
  }
}
BENCHMARK(BM_JaccardExactIds)->Arg(8)->Arg(64);

void BM_JaccardCheckIds(benchmark::State& state) {
  Random rng(2);
  storage::TokenDictionary dict;
  auto a = EncodeIds(dict, RandomTokens(rng, static_cast<size_t>(state.range(0))));
  auto b = EncodeIds(dict, RandomTokens(rng, static_cast<size_t>(state.range(0))));
  for (auto _ : state) {
    benchmark::DoNotOptimize(similarity::JaccardCheckSortedIds(a, b, 0.9));
  }
}
BENCHMARK(BM_JaccardCheckIds)->Arg(8)->Arg(64);

/// Shared inverted index used by the T-occurrence benchmarks.
class InvertedIndexFixture : public benchmark::Fixture {
 public:
  void SetUp(const benchmark::State&) override {
    if (index_ != nullptr) return;
    dir_ = (std::filesystem::temp_directory_path() /
            ("simdb_kernels_" + std::to_string(::getpid())))
               .string();
    index_ = *storage::InvertedIndex::Open(dir_ + "/inv");
    Random rng(3);
    for (int64_t pk = 0; pk < 5000; ++pk) {
      std::vector<std::string> tokens;
      for (int t = 0; t < 8; ++t) {
        tokens.push_back("tok" + std::to_string(rng.Uniform(500)));
      }
      (void)index_->Insert(similarity::DedupOccurrences(tokens), pk);
    }
    query_ = similarity::DedupOccurrences(RandomTokens(rng, 8));
  }

  static std::unique_ptr<storage::InvertedIndex> index_;
  static std::vector<std::string> query_;
  static std::string dir_;
};

std::unique_ptr<storage::InvertedIndex> InvertedIndexFixture::index_;
std::vector<std::string> InvertedIndexFixture::query_;
std::string InvertedIndexFixture::dir_;

BENCHMARK_DEFINE_F(InvertedIndexFixture, TOccurrenceScanCount)
(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(index_->SearchTOccurrence(
        query_, 4, storage::TOccurrenceAlgorithm::kScanCount));
  }
}
BENCHMARK_REGISTER_F(InvertedIndexFixture, TOccurrenceScanCount);

BENCHMARK_DEFINE_F(InvertedIndexFixture, TOccurrenceHeapMerge)
(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(index_->SearchTOccurrence(
        query_, 4, storage::TOccurrenceAlgorithm::kHeapMerge));
  }
}
BENCHMARK_REGISTER_F(InvertedIndexFixture, TOccurrenceHeapMerge);

// Cold path: every probe decodes its posting lists from the LSM instead of
// hitting the decoded-list cache, isolating the cache's contribution.
BENCHMARK_DEFINE_F(InvertedIndexFixture, TOccurrenceScanCountNoCache)
(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(index_->SearchTOccurrence(
        query_, 4, storage::TOccurrenceAlgorithm::kScanCount,
        /*stats=*/nullptr, /*use_cache=*/false));
  }
}
BENCHMARK_REGISTER_F(InvertedIndexFixture, TOccurrenceScanCountNoCache);

void BM_LsmPut(benchmark::State& state) {
  std::string dir = (std::filesystem::temp_directory_path() /
                     ("simdb_lsmput_" + std::to_string(::getpid())))
                        .string();
  auto lsm = *storage::LsmIndex::Open(dir);
  Random rng(4);
  int64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        lsm->Put({adm::Value::Int64(i++)}, "payload-bytes"));
  }
  state.SetItemsProcessed(i);
  lsm.reset();
  (void)storage::RemoveAll(dir);
}
BENCHMARK(BM_LsmPut);

void BM_LsmGet(benchmark::State& state) {
  std::string dir = (std::filesystem::temp_directory_path() /
                     ("simdb_lsmget_" + std::to_string(::getpid())))
                        .string();
  auto lsm = *storage::LsmIndex::Open(dir);
  for (int64_t i = 0; i < 10000; ++i) {
    (void)lsm->Put({adm::Value::Int64(i)}, "payload");
  }
  (void)lsm->Flush();
  Random rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        lsm->Get({adm::Value::Int64(rng.UniformRange(0, 9999))}));
  }
  lsm.reset();
  (void)storage::RemoveAll(dir);
}
BENCHMARK(BM_LsmGet);

}  // namespace

BENCHMARK_MAIN();
