// Micro-benchmarks (google-benchmark) of the similarity and storage kernels
// underlying every experiment: tokenizers, edit-distance DP vs. the banded
// verifier, Jaccard merge vs. the early-terminating check, the two
// T-occurrence list-merge algorithms, and LSM point operations.
#include <benchmark/benchmark.h>

#include <filesystem>

#include "common/random.h"
#include "similarity/edit_distance.h"
#include "similarity/jaccard.h"
#include "similarity/simd_kernels.h"
#include "similarity/tokenizer.h"
#include "storage/file_util.h"
#include "storage/inverted_index.h"
#include "storage/lsm_index.h"
#include "storage/token_dictionary.h"

namespace {

using namespace simdb;

std::string RandomString(Random& rng, size_t len) {
  std::string s;
  for (size_t i = 0; i < len; ++i) {
    s.push_back(static_cast<char>('a' + rng.Uniform(26)));
  }
  return s;
}

void BM_WordTokens(benchmark::State& state) {
  std::string text =
      "great product fantastic gift better than i ever expected to buy";
  for (auto _ : state) {
    benchmark::DoNotOptimize(similarity::WordTokens(text));
  }
}
BENCHMARK(BM_WordTokens);

void BM_GramTokens(benchmark::State& state) {
  std::string text = "supercalifragilisticexpialidocious";
  for (auto _ : state) {
    benchmark::DoNotOptimize(similarity::GramTokens(text, 2));
  }
}
BENCHMARK(BM_GramTokens);

void BM_EditDistanceFull(benchmark::State& state) {
  Random rng(1);
  std::string a = RandomString(rng, static_cast<size_t>(state.range(0)));
  std::string b = RandomString(rng, static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(similarity::EditDistance(a, b));
  }
}
BENCHMARK(BM_EditDistanceFull)->Arg(10)->Arg(40)->Arg(160);

void BM_EditDistanceCheckBanded(benchmark::State& state) {
  Random rng(1);
  std::string a = RandomString(rng, static_cast<size_t>(state.range(0)));
  std::string b = a;
  b[0] = '#';
  for (auto _ : state) {
    benchmark::DoNotOptimize(similarity::EditDistanceCheck(a, b, 2));
  }
}
BENCHMARK(BM_EditDistanceCheckBanded)->Arg(10)->Arg(40)->Arg(160);

std::vector<std::string> RandomTokens(Random& rng, size_t n) {
  std::vector<std::string> tokens;
  for (size_t i = 0; i < n; ++i) {
    tokens.push_back("tok" + std::to_string(rng.Uniform(400)));
  }
  std::sort(tokens.begin(), tokens.end());
  return tokens;
}

void BM_JaccardExact(benchmark::State& state) {
  Random rng(2);
  auto a = RandomTokens(rng, static_cast<size_t>(state.range(0)));
  auto b = RandomTokens(rng, static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(similarity::JaccardSorted(a, b));
  }
}
BENCHMARK(BM_JaccardExact)->Arg(8)->Arg(64);

void BM_JaccardCheckEarlyTermination(benchmark::State& state) {
  Random rng(2);
  auto a = RandomTokens(rng, static_cast<size_t>(state.range(0)));
  auto b = RandomTokens(rng, static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(similarity::JaccardCheckSorted(a, b, 0.9));
  }
}
BENCHMARK(BM_JaccardCheckEarlyTermination)->Arg(8)->Arg(64);

/// Same token distribution as the string kernels above, dictionary-encoded
/// to dense ids — the representation the verify operators run on once the
/// inverted index hands out integer postings.
std::vector<uint32_t> EncodeIds(storage::TokenDictionary& dict,
                                const std::vector<std::string>& tokens) {
  std::vector<uint32_t> ids;
  ids.reserve(tokens.size());
  for (const std::string& t : tokens) ids.push_back(dict.GetOrAssign(t));
  std::sort(ids.begin(), ids.end());
  return ids;
}

void BM_JaccardExactIds(benchmark::State& state) {
  Random rng(2);
  storage::TokenDictionary dict;
  auto a = EncodeIds(dict, RandomTokens(rng, static_cast<size_t>(state.range(0))));
  auto b = EncodeIds(dict, RandomTokens(rng, static_cast<size_t>(state.range(0))));
  for (auto _ : state) {
    benchmark::DoNotOptimize(similarity::JaccardSortedIds(a, b));
  }
}
BENCHMARK(BM_JaccardExactIds)->Arg(8)->Arg(64);

void BM_JaccardCheckIds(benchmark::State& state) {
  Random rng(2);
  storage::TokenDictionary dict;
  auto a = EncodeIds(dict, RandomTokens(rng, static_cast<size_t>(state.range(0))));
  auto b = EncodeIds(dict, RandomTokens(rng, static_cast<size_t>(state.range(0))));
  for (auto _ : state) {
    benchmark::DoNotOptimize(similarity::JaccardCheckSortedIds(a, b, 0.9));
  }
}
BENCHMARK(BM_JaccardCheckIds)->Arg(8)->Arg(64);

// ---------------------------------------------------------------------------
// Batch/SIMD kernels (runtime-dispatched; compare against the scalar
// per-pair baselines above).
// ---------------------------------------------------------------------------

void BM_JaccardCheckIdsSimd(benchmark::State& state) {
  Random rng(2);
  storage::TokenDictionary dict;
  auto a = EncodeIds(dict, RandomTokens(rng, static_cast<size_t>(state.range(0))));
  auto b = EncodeIds(dict, RandomTokens(rng, static_cast<size_t>(state.range(0))));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        simd::JaccardCheckSortedIds(a.data(), a.size(), b.data(), b.size(), 0.9));
  }
}
BENCHMARK(BM_JaccardCheckIdsSimd)->Arg(8)->Arg(64);

/// Near-threshold verify workload: candidates that survived the length and
/// T-occurrence filters share most of the probe's tokens, so verification
/// has to merge deep into both lists before it can decide. Ids are
/// occurrence-distinct (always unique within a list), exactly what the
/// operators' TokenIdEncoder produces. Candidate i replaces d random probe
/// ids with fresh ones in place (the lists stay sorted and unique), giving
/// Jaccard (len-d)/(len+d) — a mix of accepts and rejects around 0.9.
struct JaccardWorkload {
  std::vector<uint32_t> probe;
  std::vector<std::vector<uint32_t>> candidates;
  std::vector<uint32_t> ids;        // candidates in CSR form
  std::vector<size_t> offsets{0};
};

JaccardWorkload MakeJaccardWorkload(size_t len, size_t n) {
  Random rng(2);
  JaccardWorkload w;
  for (size_t j = 0; j < len; ++j) {
    w.probe.push_back(static_cast<uint32_t>(1000 * j));
  }
  const uint32_t max_d = static_cast<uint32_t>(len / 10 + 2);
  for (size_t i = 0; i < n; ++i) {
    std::vector<uint32_t> cand = w.probe;
    const uint32_t d = rng.Uniform(max_d + 1);
    for (uint32_t r = 0; r < d; ++r) {
      const size_t p = rng.Uniform(static_cast<uint32_t>(len));
      cand[p] = static_cast<uint32_t>(1000 * p + 1 + rng.Uniform(998));
    }
    w.ids.insert(w.ids.end(), cand.begin(), cand.end());
    w.offsets.push_back(w.ids.size());
    w.candidates.push_back(std::move(cand));
  }
  return w;
}

/// The PR 2 scalar kernel called once per pair over the near-threshold
/// workload — the baseline the batch kernel's per-item time is compared
/// against.
void BM_JaccardCheckIdsScalarBatch(benchmark::State& state) {
  JaccardWorkload w =
      MakeJaccardWorkload(static_cast<size_t>(state.range(0)), 1024);
  std::vector<double> out(w.candidates.size());
  for (auto _ : state) {
    for (size_t i = 0; i < w.candidates.size(); ++i) {
      out[i] = similarity::JaccardCheckSortedIds(w.probe, w.candidates[i], 0.9);
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(w.candidates.size()));
}
BENCHMARK(BM_JaccardCheckIdsScalarBatch)->Arg(8)->Arg(64);

/// Verifies 1024 candidates per call through the CSR batch kernel — the
/// shape the SELECT/JOIN batch paths produce. Per-item time against
/// BM_JaccardCheckIdsScalarBatch is the batch-execution speedup.
void BM_JaccardCheckIdsBatch(benchmark::State& state) {
  JaccardWorkload w =
      MakeJaccardWorkload(static_cast<size_t>(state.range(0)), 1024);
  const size_t n = w.candidates.size();
  std::vector<double> out(n);
  for (auto _ : state) {
    simd::JaccardCheckBatch(w.probe.data(), w.probe.size(), w.ids.data(),
                            w.offsets.data(), n, 0.9, out.data(),
                            /*assume_unique=*/true);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_JaccardCheckIdsBatch)->Arg(8)->Arg(64);

void BM_EditDistanceCheckMyers(benchmark::State& state) {
  Random rng(1);
  std::string a = RandomString(rng, static_cast<size_t>(state.range(0)));
  std::string b = a;
  b[0] = '#';
  for (auto _ : state) {
    benchmark::DoNotOptimize(simd::EditDistanceCheck(a, b, 2));
  }
}
BENCHMARK(BM_EditDistanceCheckMyers)->Arg(10)->Arg(40);

/// Verifies 1024 candidate strings against one pattern per call (the
/// NL-JOIN batch shape): the bit-parallel pattern is preprocessed once and
/// equal-length candidates run four per AVX2 vector.
void BM_EditDistanceCheckBatch(benchmark::State& state) {
  Random rng(1);
  const size_t n = 1024;
  const size_t len = static_cast<size_t>(state.range(0));
  std::string pattern = RandomString(rng, len);
  std::vector<char> chars;
  std::vector<size_t> offsets{0};
  for (size_t i = 0; i < n; ++i) {
    std::string cand = pattern;
    cand[rng.Uniform(static_cast<uint32_t>(len))] = '#';
    chars.insert(chars.end(), cand.begin(), cand.end());
    offsets.push_back(chars.size());
  }
  std::vector<int> out(n);
  simd::EditDistancePattern prepared(pattern);
  for (auto _ : state) {
    prepared.CheckBatch(chars.data(), offsets.data(), n, 2, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_EditDistanceCheckBatch)->Arg(10)->Arg(40);

/// Shared inverted index used by the T-occurrence benchmarks.
class InvertedIndexFixture : public benchmark::Fixture {
 public:
  void SetUp(const benchmark::State&) override {
    if (index_ != nullptr) return;
    dir_ = (std::filesystem::temp_directory_path() /
            ("simdb_kernels_" + std::to_string(::getpid())))
               .string();
    index_ = *storage::InvertedIndex::Open(dir_ + "/inv");
    Random rng(3);
    for (int64_t pk = 0; pk < 5000; ++pk) {
      std::vector<std::string> tokens;
      for (int t = 0; t < 8; ++t) {
        tokens.push_back("tok" + std::to_string(rng.Uniform(500)));
      }
      // Benchmark setup over a fresh index; an insert failure would
      // surface as wrong benchmark cardinalities.
      (void)index_->Insert(similarity::DedupOccurrences(tokens), pk);
    }
    query_ = similarity::DedupOccurrences(RandomTokens(rng, 8));
  }

  static std::unique_ptr<storage::InvertedIndex> index_;
  static std::vector<std::string> query_;
  static std::string dir_;
};

std::unique_ptr<storage::InvertedIndex> InvertedIndexFixture::index_;
std::vector<std::string> InvertedIndexFixture::query_;
std::string InvertedIndexFixture::dir_;

BENCHMARK_DEFINE_F(InvertedIndexFixture, TOccurrenceScanCount)
(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(index_->SearchTOccurrence(
        query_, 4, storage::TOccurrenceAlgorithm::kScanCount));
  }
}
BENCHMARK_REGISTER_F(InvertedIndexFixture, TOccurrenceScanCount);

BENCHMARK_DEFINE_F(InvertedIndexFixture, TOccurrenceHeapMerge)
(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(index_->SearchTOccurrence(
        query_, 4, storage::TOccurrenceAlgorithm::kHeapMerge));
  }
}
BENCHMARK_REGISTER_F(InvertedIndexFixture, TOccurrenceHeapMerge);

// Batch path: occurrences counted in a dense per-slot counter array directly
// over the cached posting arrays — no gather copy, no per-posting hashing.
// Compare against TOccurrenceScanCount (the gather baseline).
BENCHMARK_DEFINE_F(InvertedIndexFixture, TOccurrenceBatch)
(benchmark::State& state) {
  simd::TOccurrenceScratch scratch;
  for (auto _ : state) {
    benchmark::DoNotOptimize(index_->SearchTOccurrence(
        query_, 4, storage::TOccurrenceAlgorithm::kScanCount,
        /*stats=*/nullptr, /*use_cache=*/true, &scratch));
  }
}
BENCHMARK_REGISTER_F(InvertedIndexFixture, TOccurrenceBatch);

// Cold path: every probe decodes its posting lists from the LSM instead of
// hitting the decoded-list cache, isolating the cache's contribution.
BENCHMARK_DEFINE_F(InvertedIndexFixture, TOccurrenceScanCountNoCache)
(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(index_->SearchTOccurrence(
        query_, 4, storage::TOccurrenceAlgorithm::kScanCount,
        /*stats=*/nullptr, /*use_cache=*/false));
  }
}
BENCHMARK_REGISTER_F(InvertedIndexFixture, TOccurrenceScanCountNoCache);

void BM_LsmPut(benchmark::State& state) {
  std::string dir = (std::filesystem::temp_directory_path() /
                     ("simdb_lsmput_" + std::to_string(::getpid())))
                        .string();
  auto lsm = *storage::LsmIndex::Open(dir);
  Random rng(4);
  int64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        lsm->Put({adm::Value::Int64(i++)}, "payload-bytes"));
  }
  state.SetItemsProcessed(i);
  lsm.reset();
  storage::RemoveAllBestEffort(dir);
}
BENCHMARK(BM_LsmPut);

void BM_LsmGet(benchmark::State& state) {
  std::string dir = (std::filesystem::temp_directory_path() /
                     ("simdb_lsmget_" + std::to_string(::getpid())))
                        .string();
  auto lsm = *storage::LsmIndex::Open(dir);
  for (int64_t i = 0; i < 10000; ++i) {
    // Setup writes to a fresh scratch LSM cannot meaningfully fail.
    (void)lsm->Put({adm::Value::Int64(i)}, "payload");
  }
  (void)lsm->Flush();  // setup flush on a fresh scratch LSM
  Random rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        lsm->Get({adm::Value::Int64(rng.UniformRange(0, 9999))}));
  }
  lsm.reset();
  storage::RemoveAllBestEffort(dir);
}
BENCHMARK(BM_LsmGet);

}  // namespace

BENCHMARK_MAIN();
