#ifndef SIMDB_OBSERVABILITY_METRICS_H_
#define SIMDB_OBSERVABILITY_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/thread_annotations.h"

namespace simdb::obs {

/// A monotonically increasing counter. Thread-safe; relaxed atomics — the
/// counters feed reports, not synchronization.
class Counter {
 public:
  void Add(uint64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Point-in-time view of a Histogram.
struct HistogramSnapshot {
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t min = 0;
  uint64_t max = 0;
  /// buckets[i] counts observations v with 2^(i-1) <= v < 2^i (bucket 0
  /// counts v == 0). Trailing empty buckets are trimmed.
  std::vector<uint64_t> buckets;

  double mean() const { return count == 0 ? 0.0 : static_cast<double>(sum) / count; }
};

/// A log2-bucketed histogram of non-negative integer observations
/// (typically microseconds or byte counts). Thread-safe, lock-free.
class Histogram {
 public:
  static constexpr int kBuckets = 64;

  void Observe(uint64_t value);
  HistogramSnapshot Snapshot() const;
  void Reset();

 private:
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_{UINT64_MAX};
  std::atomic<uint64_t> max_{0};
  std::atomic<uint64_t> buckets_[kBuckets] = {};
};

/// A registry of named counters and histograms. Get* returns a stable
/// pointer, creating the metric on first use; lookups take a mutex (callers
/// are expected to cache the pointer on hot paths). The process-wide
/// instance (`Global()`) is what bench binaries and the fuzz harness
/// snapshot; per-query figures flow through QueryProfile instead.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  Counter* GetCounter(std::string_view name) SIMDB_EXCLUDES(mu_);
  Histogram* GetHistogram(std::string_view name) SIMDB_EXCLUDES(mu_);

  struct Snapshot {
    std::map<std::string, uint64_t> counters;
    std::map<std::string, HistogramSnapshot> histograms;
  };
  Snapshot Snap() const SIMDB_EXCLUDES(mu_);

  /// {"counters": {name: value, ...}, "histograms": {name: {count, sum,
  /// min, max, mean}, ...}} — stable name order (std::map).
  std::string ToJson() const;

  /// Zeroes every registered metric (names stay registered). Test/bench
  /// isolation helper.
  void ResetAll() SIMDB_EXCLUDES(mu_);

 private:
  /// Rank kMetrics: a leaf — serving, transport, and profiling paths look
  /// names up while holding their own locks.
  mutable Mutex mu_{lockrank::Rank::kMetrics, "MetricsRegistry::mu_"};
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      SIMDB_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_
      SIMDB_GUARDED_BY(mu_);
};

}  // namespace simdb::obs

#endif  // SIMDB_OBSERVABILITY_METRICS_H_
