#include "observability/metrics.h"

#include <bit>

namespace simdb::obs {

namespace {

/// Bucket 0 holds v == 0; bucket i holds 2^(i-1) <= v < 2^i.
int BucketOf(uint64_t value) {
  if (value == 0) return 0;
  return 64 - std::countl_zero(value);
}

void AtomicMin(std::atomic<uint64_t>& slot, uint64_t value) {
  uint64_t cur = slot.load(std::memory_order_relaxed);
  while (value < cur &&
         !slot.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<uint64_t>& slot, uint64_t value) {
  uint64_t cur = slot.load(std::memory_order_relaxed);
  while (value > cur &&
         !slot.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

}  // namespace

void Histogram::Observe(uint64_t value) {
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  AtomicMin(min_, value);
  AtomicMax(max_, value);
  int b = BucketOf(value);
  if (b >= kBuckets) b = kBuckets - 1;
  buckets_[b].fetch_add(1, std::memory_order_relaxed);
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  uint64_t min = min_.load(std::memory_order_relaxed);
  snap.min = snap.count == 0 ? 0 : min;
  snap.max = max_.load(std::memory_order_relaxed);
  int last = -1;
  uint64_t raw[kBuckets];
  for (int i = 0; i < kBuckets; ++i) {
    raw[i] = buckets_[i].load(std::memory_order_relaxed);
    if (raw[i] != 0) last = i;
  }
  snap.buckets.assign(raw, raw + last + 1);
  return snap;
}

void Histogram::Reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(UINT64_MAX, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  MutexLock lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name) {
  MutexLock lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return it->second.get();
}

MetricsRegistry::Snapshot MetricsRegistry::Snap() const {
  MutexLock lock(mu_);
  Snapshot snap;
  for (const auto& [name, counter] : counters_) {
    snap.counters.emplace(name, counter->value());
  }
  for (const auto& [name, histogram] : histograms_) {
    snap.histograms.emplace(name, histogram->Snapshot());
  }
  return snap;
}

std::string MetricsRegistry::ToJson() const {
  Snapshot snap = Snap();
  std::string out = "{\"counters\": {";
  bool first = true;
  for (const auto& [name, value] : snap.counters) {
    if (!first) out += ", ";
    first = false;
    out += "\"" + name + "\": " + std::to_string(value);
  }
  out += "}, \"histograms\": {";
  first = true;
  for (const auto& [name, h] : snap.histograms) {
    if (!first) out += ", ";
    first = false;
    out += "\"" + name + "\": {\"count\": " + std::to_string(h.count) +
           ", \"sum\": " + std::to_string(h.sum) +
           ", \"min\": " + std::to_string(h.min) +
           ", \"max\": " + std::to_string(h.max) + "}";
  }
  out += "}}";
  return out;
}

void MetricsRegistry::ResetAll() {
  MutexLock lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

}  // namespace simdb::obs
