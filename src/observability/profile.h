#ifndef SIMDB_OBSERVABILITY_PROFILE_H_
#define SIMDB_OBSERVABILITY_PROFILE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "cluster/cost_model.h"
#include "hyracks/exec.h"
#include "observability/trace.h"

namespace simdb::obs {

/// One operator's slice of a query profile, derived from its OpStats.
struct OperatorProfile {
  std::string name;
  int node_id = -1;
  std::vector<int> input_ops;
  bool barrier = false;
  int stage = 0;
  /// Sum / max of the measured per-partition compute seconds.
  double seconds = 0;
  double max_partition_seconds = 0;
  /// max / mean over partitions (1.0 = perfectly balanced). 1.0 when the
  /// operator did no measurable work.
  double skew = 1.0;
  uint64_t rows_in = 0;
  uint64_t rows_out = 0;
  std::vector<uint64_t> partition_rows;
  uint64_t local_bytes = 0;
  uint64_t remote_bytes = 0;
  uint64_t remote_transfers = 0;
  /// Modeled NIC time for this operator's remote bytes (cost model figure).
  /// Zero when the run shipped through a wall-clock transport backend — the
  /// real time is then in `transport_seconds` (and inside `seconds`).
  double network_seconds = 0;
  /// Measured wall-clock the exchange spent inside Transport::Ship (already
  /// contained in `seconds`; zero under the modeled backend).
  double transport_seconds = 0;
  /// Operator-specific counters, sorted by name (see docs/OBSERVABILITY.md).
  std::vector<std::pair<std::string, uint64_t>> counters;
};

/// Aggregate over all operators of one pipeline stage (stage = number of
/// barriers on the longest path from a source; see ComputeStages).
struct StageProfile {
  int stage = 0;
  int num_ops = 0;
  double seconds = 0;
  double network_seconds = 0;
  uint64_t rows_out = 0;
};

/// Everything `EngineOptions::profile_queries` attaches to a query result:
/// per-operator breakdowns, per-stage rollups, and the raw task spans.
class QueryProfile {
 public:
  std::vector<OperatorProfile> operators;  // job-node order
  double wall_seconds = 0;
  /// Cost-model figures for the same run (critical path preferred).
  double makespan_seconds = 0;
  double compute_seconds = 0;
  double network_seconds = 0;
  /// Task/exchange spans drained from the collector plus one synthetic
  /// "network" span per remote-traffic exchange (pid -1 track, modeled
  /// duration from the cost model).
  std::vector<TraceEvent> events;
  uint64_t trace_dropped = 0;

  /// Per-stage rollup, ascending stage order.
  std::vector<StageProfile> Stages() const;

  /// EXPLAIN PROFILE-style text tree: one line per operator (time, share of
  /// total compute, rows, skew, traffic, counters), rendered from the root
  /// down, followed by a per-stage summary. See docs/OBSERVABILITY.md for a
  /// reading guide.
  std::string RenderTree() const;

  /// Machine-readable profile ({"operators": [...], "stages": [...], ...});
  /// bench binaries embed this in BENCH_kernels.json and the CI catalogue
  /// check parses counter names out of it.
  std::string ToJson() const;

  /// Writes the spans as Chrome trace_event JSON for chrome://tracing or
  /// Perfetto.
  Status ExportTrace(const std::string& path) const;
};

/// Assembles a profile from a finished run: `stats` from the executor,
/// `events` drained from the run's TraceCollector. Synthesizes the modeled
/// network spans and computes the cost-model makespan with `net`.
QueryProfile BuildQueryProfile(const hyracks::ExecStats& stats,
                               const hyracks::ClusterTopology& topology,
                               std::vector<TraceEvent> events,
                               uint64_t trace_dropped = 0,
                               const cluster::NetworkModel& net = {});

}  // namespace simdb::obs

#endif  // SIMDB_OBSERVABILITY_PROFILE_H_
