#include "observability/profile.h"

#include <algorithm>
#include <cstdio>
#include <functional>
#include <map>
#include <unordered_map>
#include <unordered_set>

namespace simdb::obs {

namespace {

std::string FmtDouble(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

/// JSON string literal with escaping — operator names embed expression
/// renderings that may contain quotes/backslashes.
std::string JsonQuote(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out += "\"";
  return out;
}

std::string FmtMs(double seconds) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.3f ms", seconds * 1e3);
  return buf;
}

std::string FmtPct(double fraction) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%4.1f%%", fraction * 100.0);
  return buf;
}

std::string FmtBytes(uint64_t bytes) {
  char buf[40];
  if (bytes < 1024) {
    std::snprintf(buf, sizeof(buf), "%llu B",
                  static_cast<unsigned long long>(bytes));
  } else if (bytes < 1024 * 1024) {
    std::snprintf(buf, sizeof(buf), "%.1f KiB",
                  static_cast<double>(bytes) / 1024);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f MiB",
                  static_cast<double>(bytes) / (1024 * 1024));
  }
  return buf;
}

int64_t ArgValue(const TraceEvent& e, const char* key, int64_t fallback) {
  for (const auto& [k, v] : e.args) {
    if (k == key) return v;
  }
  return fallback;
}

}  // namespace

QueryProfile BuildQueryProfile(const hyracks::ExecStats& stats,
                               const hyracks::ClusterTopology& topology,
                               std::vector<TraceEvent> events,
                               uint64_t trace_dropped,
                               const cluster::NetworkModel& net) {
  QueryProfile profile;
  profile.wall_seconds = stats.wall_seconds;
  profile.trace_dropped = trace_dropped;

  cluster::MakespanReport report =
      cluster::ComputeMakespan(stats, topology, net);
  profile.makespan_seconds = report.total_seconds();
  profile.compute_seconds = report.compute_seconds;
  profile.network_seconds = report.network_seconds;

  profile.operators.reserve(stats.ops.size());
  for (const hyracks::OpStats& op : stats.ops) {
    OperatorProfile p;
    p.name = op.name;
    p.node_id = op.node_id;
    p.input_ops = op.input_ops;
    p.barrier = op.barrier;
    p.stage = op.stage;
    for (double s : op.partition_seconds) {
      p.seconds += s;
      p.max_partition_seconds = std::max(p.max_partition_seconds, s);
    }
    if (!op.partition_seconds.empty() && p.seconds > 0) {
      double mean = p.seconds / static_cast<double>(op.partition_seconds.size());
      p.skew = p.max_partition_seconds / mean;
    }
    p.rows_in = op.rows_in;
    p.rows_out = op.rows_out;
    p.partition_rows = op.partition_rows;
    p.local_bytes = op.local_bytes;
    p.remote_bytes = op.remote_bytes;
    p.remote_transfers = op.remote_transfers;
    p.network_seconds = stats.network_measured
                            ? 0.0
                            : cluster::ModeledNetworkSeconds(
                                  op.remote_bytes, topology.num_nodes, net);
    p.transport_seconds = op.transport_seconds;
    p.counters = op.counters;
    profile.operators.push_back(std::move(p));
  }

  // The cluster simulator's network charge, rendered as spans on a synthetic
  // "modeled network" track (pid -1): one span per exchange that moved
  // remote bytes, starting when the last measured span of that exchange
  // ended.
  std::vector<TraceEvent> net_events;
  for (const OperatorProfile& p : profile.operators) {
    if (p.remote_bytes == 0 || p.network_seconds <= 0) continue;
    int64_t start = 0;
    for (const TraceEvent& e : events) {
      if (ArgValue(e, "node", -1) == p.node_id) {
        start = std::max(start, e.start_us + e.dur_us);
      }
    }
    TraceEvent ev;
    ev.category = "network";
    ev.name = p.name + ":net";
    ev.start_us = start;
    ev.dur_us = static_cast<int64_t>(p.network_seconds * 1e6);
    ev.pid = -1;
    ev.tid = 0;
    ev.args = {{"node", p.node_id},
               {"remote_bytes", static_cast<int64_t>(p.remote_bytes)}};
    net_events.push_back(std::move(ev));
  }
  events.insert(events.end(), net_events.begin(), net_events.end());
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.start_us < b.start_us;
                   });
  profile.events = std::move(events);
  return profile;
}

std::vector<StageProfile> QueryProfile::Stages() const {
  std::map<int, StageProfile> by_stage;
  for (const OperatorProfile& op : operators) {
    StageProfile& s = by_stage[op.stage];
    s.stage = op.stage;
    ++s.num_ops;
    s.seconds += op.seconds;
    s.network_seconds += op.network_seconds;
    s.rows_out += op.rows_out;
  }
  std::vector<StageProfile> out;
  out.reserve(by_stage.size());
  for (auto& [stage, s] : by_stage) out.push_back(s);
  return out;
}

std::string QueryProfile::RenderTree() const {
  double total = 0;
  for (const OperatorProfile& op : operators) total += op.seconds;

  std::string out = "QUERY PROFILE  wall " + FmtMs(wall_seconds) +
                    "  compute " + FmtMs(total) + "  modeled makespan " +
                    FmtMs(makespan_seconds) + " (network " +
                    FmtMs(network_seconds) + ")\n";
  if (trace_dropped > 0) {
    out += "  !! " + std::to_string(trace_dropped) +
           " trace events dropped (ring overflow)\n";
  }

  // Render the operator DAG from its roots (nodes no other operator
  // consumes), children = input_ops. A node feeding several consumers is
  // expanded once; later visits print a stub.
  std::unordered_map<int, size_t> by_node;
  std::unordered_set<int> consumed;
  for (size_t i = 0; i < operators.size(); ++i) {
    if (operators[i].node_id >= 0) by_node[operators[i].node_id] = i;
    for (int in : operators[i].input_ops) consumed.insert(in);
  }
  std::unordered_set<int> expanded;

  // Recursive lambda over (index, childhood prefix, own branch glyph).
  std::function<void(size_t, const std::string&, const std::string&)> render =
      [&](size_t i, const std::string& prefix, const std::string& branch) {
        const OperatorProfile& op = operators[i];
        double share = total > 0 ? op.seconds / total : 0;
        std::string line = prefix + branch;
        line += "[" + FmtPct(share) + "] " + FmtMs(op.seconds) + "  ";
        if (op.node_id >= 0) line += std::to_string(op.node_id) + ":";
        line += op.name + "  stage " + std::to_string(op.stage);
        line += "  rows " + std::to_string(op.rows_in) + "->" +
                std::to_string(op.rows_out);
        if (op.skew > 1.05) {
          char buf[32];
          std::snprintf(buf, sizeof(buf), "  skew %.2fx", op.skew);
          line += buf;
        }
        if (op.local_bytes > 0 || op.remote_bytes > 0) {
          line += "  local " + FmtBytes(op.local_bytes) + " remote " +
                  FmtBytes(op.remote_bytes);
        }
        if (!op.partition_rows.empty() && op.partition_rows.size() <= 8) {
          line += "  parts [";
          for (size_t p = 0; p < op.partition_rows.size(); ++p) {
            if (p > 0) line += " ";
            line += std::to_string(op.partition_rows[p]);
          }
          line += "]";
        }
        if (!op.counters.empty()) {
          line += "  {";
          for (size_t c = 0; c < op.counters.size(); ++c) {
            if (c > 0) line += ", ";
            line += op.counters[c].first + "=" +
                    std::to_string(op.counters[c].second);
          }
          line += "}";
        }
        out += line + "\n";

        if (op.node_id >= 0) expanded.insert(op.node_id);
        std::string child_prefix = prefix;
        if (branch == "├─ ") {
          child_prefix += "│  ";
        } else if (branch == "└─ ") {
          child_prefix += "   ";
        }
        for (size_t c = 0; c < op.input_ops.size(); ++c) {
          int in = op.input_ops[c];
          bool last = c + 1 == op.input_ops.size();
          std::string glyph = last ? "└─ " : "├─ ";
          auto it = by_node.find(in);
          if (it == by_node.end()) {
            out += child_prefix + glyph + "node " + std::to_string(in) +
                   " (no stats)\n";
            continue;
          }
          if (expanded.count(in) != 0) {
            out += child_prefix + glyph + "node " + std::to_string(in) + ":" +
                   operators[it->second].name + " (shared, shown above)\n";
            continue;
          }
          render(it->second, child_prefix, glyph);
        }
      };

  // Roots in descending node order (the job root renders first).
  std::vector<size_t> roots;
  for (size_t i = 0; i < operators.size(); ++i) {
    if (operators[i].node_id < 0 || consumed.count(operators[i].node_id) == 0) {
      roots.push_back(i);
    }
  }
  std::reverse(roots.begin(), roots.end());
  for (size_t r : roots) render(r, "", "");

  out += "stages:\n";
  for (const StageProfile& s : Stages()) {
    out += "  stage " + std::to_string(s.stage) + ": " +
           std::to_string(s.num_ops) + " op(s)  compute " + FmtMs(s.seconds) +
           "  network " + FmtMs(s.network_seconds) + "  rows out " +
           std::to_string(s.rows_out) + "\n";
  }
  return out;
}

std::string QueryProfile::ToJson() const {
  std::string out = "{";
  out += "\"wall_seconds\": " + FmtDouble(wall_seconds);
  out += ", \"makespan_seconds\": " + FmtDouble(makespan_seconds);
  out += ", \"compute_seconds\": " + FmtDouble(compute_seconds);
  out += ", \"network_seconds\": " + FmtDouble(network_seconds);
  out += ", \"trace_dropped\": " + std::to_string(trace_dropped);
  out += ", \"operators\": [";
  for (size_t i = 0; i < operators.size(); ++i) {
    const OperatorProfile& op = operators[i];
    if (i > 0) out += ", ";
    out += "{\"node\": " + std::to_string(op.node_id);
    out += ", \"name\": " + JsonQuote(op.name);
    out += ", \"stage\": " + std::to_string(op.stage);
    out += ", \"barrier\": " + std::string(op.barrier ? "true" : "false");
    out += ", \"seconds\": " + FmtDouble(op.seconds);
    out += ", \"max_partition_seconds\": " + FmtDouble(op.max_partition_seconds);
    out += ", \"skew\": " + FmtDouble(op.skew);
    out += ", \"rows_in\": " + std::to_string(op.rows_in);
    out += ", \"rows_out\": " + std::to_string(op.rows_out);
    out += ", \"partition_rows\": [";
    for (size_t p = 0; p < op.partition_rows.size(); ++p) {
      if (p > 0) out += ", ";
      out += std::to_string(op.partition_rows[p]);
    }
    out += "], \"local_bytes\": " + std::to_string(op.local_bytes);
    out += ", \"remote_bytes\": " + std::to_string(op.remote_bytes);
    out += ", \"remote_transfers\": " + std::to_string(op.remote_transfers);
    out += ", \"network_seconds\": " + FmtDouble(op.network_seconds);
    out += ", \"transport_seconds\": " + FmtDouble(op.transport_seconds);
    out += ", \"counters\": {";
    for (size_t c = 0; c < op.counters.size(); ++c) {
      if (c > 0) out += ", ";
      out += JsonQuote(op.counters[c].first) + ": " +
             std::to_string(op.counters[c].second);
    }
    out += "}}";
  }
  out += "], \"stages\": [";
  std::vector<StageProfile> stages = Stages();
  for (size_t i = 0; i < stages.size(); ++i) {
    if (i > 0) out += ", ";
    out += "{\"stage\": " + std::to_string(stages[i].stage);
    out += ", \"num_ops\": " + std::to_string(stages[i].num_ops);
    out += ", \"seconds\": " + FmtDouble(stages[i].seconds);
    out += ", \"network_seconds\": " + FmtDouble(stages[i].network_seconds);
    out += ", \"rows_out\": " + std::to_string(stages[i].rows_out) + "}";
  }
  out += "]}";
  return out;
}

Status QueryProfile::ExportTrace(const std::string& path) const {
  return WriteChromeTrace(path, events);
}

}  // namespace simdb::obs
