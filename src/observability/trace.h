#ifndef SIMDB_OBSERVABILITY_TRACE_H_
#define SIMDB_OBSERVABILITY_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"

namespace simdb::obs {

/// One completed span. Maps 1:1 onto a Chrome trace_event "X" (complete)
/// event: `pid` is the simulated cluster node, `tid` the partition lane the
/// work belongs to (route/barrier tasks use lane 0 of their node).
struct TraceEvent {
  /// Static-lifetime category string: "task", "exchange", "network", "query".
  const char* category = "task";
  std::string name;
  int64_t start_us = 0;  // since the collector's epoch
  int64_t dur_us = 0;
  int pid = 0;  // simulated node
  int tid = 0;  // partition lane within the node
  /// Small integer annotations (node id, partition, stage, rows, ...).
  std::vector<std::pair<std::string, int64_t>> args;
};

/// Collects spans from many threads with no lock on the record path: each
/// thread appends into its own fixed-capacity ring buffer, registered once
/// (under a mutex) on that thread's first event. When a ring is full the
/// oldest events are overwritten and counted as dropped — recording never
/// blocks and never allocates after the ring exists.
///
/// Drain() must not race with Record(): the executors only drain after every
/// task of the job has completed, which is exactly the quiescent point.
class TraceCollector {
 public:
  explicit TraceCollector(size_t per_thread_capacity = size_t{1} << 14);
  ~TraceCollector();

  TraceCollector(const TraceCollector&) = delete;
  TraceCollector& operator=(const TraceCollector&) = delete;

  /// Appends to the calling thread's ring buffer.
  void Record(TraceEvent event);

  /// Microseconds since this collector's construction (steady clock). Spans
  /// built from this are directly comparable across threads.
  int64_t NowMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }

  /// Merges every thread's ring (oldest-first) and sorts by start time.
  /// Call only when no thread is recording.
  std::vector<TraceEvent> Drain() SIMDB_EXCLUDES(mu_);

  /// Events overwritten because a ring filled up.
  uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }

 private:
  struct Ring {
    explicit Ring(size_t capacity) : slots(capacity) {}
    std::vector<TraceEvent> slots;
    size_t next = 0;       // total events ever written (owner thread only)
  };

  Ring* RingForThisThread() SIMDB_EXCLUDES(mu_);

  const std::chrono::steady_clock::time_point epoch_;
  const size_t capacity_;
  const uint64_t id_;  // process-unique; guards the thread-local ring cache
  std::atomic<uint64_t> dropped_{0};
  /// Guards ring registration and drain only; Record appends through a raw
  /// Ring* cached thread-locally, safe because each ring has exactly one
  /// writer (its owner thread) and Drain runs only at quiescent points.
  Mutex mu_{lockrank::Rank::kTrace, "TraceCollector::mu_"};
  std::vector<std::unique_ptr<Ring>> rings_ SIMDB_GUARDED_BY(mu_);
};

/// Renders spans as a Chrome trace_event JSON document ("traceEvents"
/// array of complete events plus process/thread naming metadata), loadable
/// in chrome://tracing and Perfetto.
std::string ToChromeTraceJson(const std::vector<TraceEvent>& events);

/// Writes ToChromeTraceJson(events) to `path`.
Status WriteChromeTrace(const std::string& path,
                        const std::vector<TraceEvent>& events);

}  // namespace simdb::obs

#endif  // SIMDB_OBSERVABILITY_TRACE_H_
