#include "observability/trace.h"

#include <algorithm>
#include <cstdio>
#include <set>

namespace simdb::obs {

namespace {

std::atomic<uint64_t> g_next_collector_id{1};

struct ThreadRingCache {
  uint64_t collector_id = 0;
  void* ring = nullptr;
};

thread_local ThreadRingCache t_ring_cache;

void AppendJsonEscaped(std::string& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

TraceCollector::TraceCollector(size_t per_thread_capacity)
    : epoch_(std::chrono::steady_clock::now()),
      capacity_(per_thread_capacity == 0 ? 1 : per_thread_capacity),
      id_(g_next_collector_id.fetch_add(1, std::memory_order_relaxed)) {}

TraceCollector::~TraceCollector() = default;

TraceCollector::Ring* TraceCollector::RingForThisThread() {
  // The cache is keyed on the collector's process-unique id, not its
  // address: a new collector can reuse a destroyed one's address, but never
  // its id, so a stale cache entry can't alias across collectors.
  if (t_ring_cache.collector_id == id_) {
    return static_cast<Ring*>(t_ring_cache.ring);
  }
  MutexLock lock(mu_);
  rings_.push_back(std::make_unique<Ring>(capacity_));
  Ring* ring = rings_.back().get();
  t_ring_cache = {id_, ring};
  return ring;
}

void TraceCollector::Record(TraceEvent event) {
  Ring* ring = RingForThisThread();
  if (ring->next >= ring->slots.size()) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
  }
  ring->slots[ring->next % ring->slots.size()] = std::move(event);
  ++ring->next;
}

std::vector<TraceEvent> TraceCollector::Drain() {
  MutexLock lock(mu_);
  std::vector<TraceEvent> out;
  for (auto& ring : rings_) {
    size_t n = std::min(ring->next, ring->slots.size());
    // Oldest-first: when the ring wrapped, the oldest surviving slot is
    // the one `next` would overwrite.
    size_t start = ring->next > ring->slots.size()
                       ? ring->next % ring->slots.size()
                       : 0;
    for (size_t i = 0; i < n; ++i) {
      out.push_back(std::move(ring->slots[(start + i) % ring->slots.size()]));
    }
    ring->next = 0;
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.start_us != b.start_us) return a.start_us < b.start_us;
                     if (a.pid != b.pid) return a.pid < b.pid;
                     return a.tid < b.tid;
                   });
  return out;
}

std::string ToChromeTraceJson(const std::vector<TraceEvent>& events) {
  std::string out = "{\"traceEvents\": [";
  bool first = true;
  // Process/thread naming metadata so chrome://tracing labels rows as
  // "node N" / "partition P" instead of bare integers.
  std::set<int> pids;
  std::set<std::pair<int, int>> lanes;
  for (const TraceEvent& e : events) {
    pids.insert(e.pid);
    lanes.insert({e.pid, e.tid});
  }
  for (int pid : pids) {
    if (!first) out += ", ";
    first = false;
    // pid -1 is the synthetic "modeled network" track (see profile.h).
    std::string label =
        pid < 0 ? "modeled network" : "node " + std::to_string(pid);
    out += "{\"ph\": \"M\", \"name\": \"process_name\", \"pid\": " +
           std::to_string(pid) + ", \"tid\": 0, \"args\": {\"name\": \"" +
           label + "\"}}";
  }
  for (const auto& [pid, tid] : lanes) {
    if (!first) out += ", ";
    first = false;
    out += "{\"ph\": \"M\", \"name\": \"thread_name\", \"pid\": " +
           std::to_string(pid) + ", \"tid\": " + std::to_string(tid) +
           ", \"args\": {\"name\": \"partition " + std::to_string(tid) +
           "\"}}";
  }
  for (const TraceEvent& e : events) {
    if (!first) out += ", ";
    first = false;
    out += "{\"ph\": \"X\", \"name\": \"";
    AppendJsonEscaped(out, e.name);
    out += "\", \"cat\": \"";
    AppendJsonEscaped(out, e.category);
    out += "\", \"ts\": " + std::to_string(e.start_us) +
           ", \"dur\": " + std::to_string(e.dur_us) +
           ", \"pid\": " + std::to_string(e.pid) +
           ", \"tid\": " + std::to_string(e.tid);
    if (!e.args.empty()) {
      out += ", \"args\": {";
      bool first_arg = true;
      for (const auto& [key, value] : e.args) {
        if (!first_arg) out += ", ";
        first_arg = false;
        out += "\"";
        AppendJsonEscaped(out, key);
        out += "\": " + std::to_string(value);
      }
      out += "}";
    }
    out += "}";
  }
  out += "], \"displayTimeUnit\": \"ms\"}";
  return out;
}

Status WriteChromeTrace(const std::string& path,
                        const std::vector<TraceEvent>& events) {
  std::string json = ToChromeTraceJson(events);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IOError("cannot open trace file for writing: " + path);
  }
  size_t written = std::fwrite(json.data(), 1, json.size(), f);
  int close_rc = std::fclose(f);
  if (written != json.size() || close_rc != 0) {
    return Status::IOError("short write to trace file: " + path);
  }
  return Status::OK();
}

}  // namespace simdb::obs
