#ifndef SIMDB_AQL_TRANSLATOR_H_
#define SIMDB_AQL_TRANSLATOR_H_

#include <map>
#include <string>

#include "algebricks/lop.h"
#include "aql/ast.h"
#include "common/result.h"

namespace simdb::aql {

/// AQL+ bindings supplied by a rewrite rule when compiling a template: `##X`
/// meta-clauses resolve to already-built logical subplans (with their primary
/// output variable), `$$X` meta-variables resolve to logical expressions over
/// those subplans' variables (paper Section 5.2, Table 1).
struct MetaBindings {
  struct ClauseBinding {
    algebricks::LOpPtr plan;
    std::string out_var;  // variable the template's `for $v in ##X` binds to
  };
  std::map<std::string, ClauseBinding> clauses;
  std::map<std::string, algebricks::LExprPtr> vars;
};

/// The result of translating a query: a logical plan plus the variable
/// holding each output row's value.
struct TranslationResult {
  algebricks::LOpPtr plan;
  std::string out_var;
  /// Set when the root was count(<subquery>): the caller should return the
  /// row count of `plan` instead of its rows.
  bool is_count = false;
};

/// Translates an AQL (or AQL+) query expression into a logical plan.
/// User-defined AQL functions are inlined via `functions` (name -> params +
/// body). Translation is compositional and never optimizes; rewrite rules
/// and the job generator handle that.
class Translator {
 public:
  struct FunctionDefAst {
    std::vector<std::string> params;
    AExprPtr body;
  };

  explicit Translator(MetaBindings bindings = {},
                      const std::map<std::string, FunctionDefAst>* functions =
                          nullptr)
      : bindings_(std::move(bindings)), functions_(functions) {}

  Result<TranslationResult> TranslateQuery(const AExprPtr& root);

 private:
  /// Lazily-translated let-bound subqueries, cached by AST node so that every
  /// use — including uses in nested subqueries — shares one subplan
  /// (materialize/reuse, paper Figure 20).
  struct CachedSource {
    TranslationResult tr;
    std::string rank_var;  // set once a positional (`at`) use ranks the plan
  };

  struct Scope {
    algebricks::LOpPtr plan;  // null until the first source
    std::map<std::string, algebricks::LExprPtr> var_map;
    /// let-bound subqueries visible in this scope (inherited by nested
    /// subqueries). Values are AST nodes; plans live in the shared cache.
    std::map<std::string, AExprPtr> named_sources;
    std::shared_ptr<std::map<const AExpr*, CachedSource>> named_cache;
  };

  Result<TranslationResult> TranslateFlwor(const Flwor& flwor,
                                           const Scope* parent = nullptr);
  Status TranslateClause(const Clause& clause, Scope* scope);
  Status AddForBinding(const std::string& var, const std::string& pos_var,
                       const AExprPtr& source, Scope* scope);
  /// Attaches an independent source subplan (cross joins with the current
  /// plan; selection pushes refine it later).
  void AttachSource(algebricks::LOpPtr source, Scope* scope);
  Result<algebricks::LExprPtr> TranslateExpr(const AExprPtr& expr,
                                             Scope& scope, int depth = 0);
  /// Translates a source that yields a collection plan (subquery / union /
  /// named let). Returns plan + the item variable.
  Result<TranslationResult> TranslateCollection(const AExprPtr& expr,
                                                Scope& scope);

  std::string FreshVar(const std::string& hint);

  MetaBindings bindings_;
  const std::map<std::string, FunctionDefAst>* functions_;
};

}  // namespace simdb::aql

#endif  // SIMDB_AQL_TRANSLATOR_H_
