#include "aql/translator.h"

#include <atomic>

namespace simdb::aql {

using algebricks::LAgg;
using algebricks::LExpr;
using algebricks::LExprPtr;
using algebricks::LOpPtr;
using algebricks::LSortKey;

namespace {

/// Globally unique plan-variable names: template instantiations and user
/// queries may be composed into one plan, so names must never collide.
std::atomic<int> g_var_counter{0};

constexpr int kMaxInlineDepth = 32;

}  // namespace

std::string Translator::FreshVar(const std::string& hint) {
  return "v" + std::to_string(g_var_counter++) + "_" + hint;
}

Result<TranslationResult> Translator::TranslateQuery(const AExprPtr& root) {
  if (root == nullptr) return Status::PlanError("empty query");
  if (root->kind == AExpr::Kind::kSubquery) {
    return TranslateFlwor(*root->subquery);
  }
  if (root->kind == AExpr::Kind::kCall && root->name == "count" &&
      root->children.size() == 1 &&
      root->children[0]->kind == AExpr::Kind::kSubquery) {
    SIMDB_ASSIGN_OR_RETURN(TranslationResult inner,
                           TranslateFlwor(*root->children[0]->subquery));
    inner.is_count = true;
    return inner;
  }
  // A scalar expression: evaluate over a single constant tuple.
  Scope scope;
  scope.named_cache = std::make_shared<std::map<const AExpr*, CachedSource>>();
  scope.plan = algebricks::MakeConstantTuple();
  SIMDB_ASSIGN_OR_RETURN(LExprPtr e, TranslateExpr(root, scope));
  std::string rv = FreshVar("ret");
  LOpPtr plan = algebricks::MakeAssign(scope.plan, {{rv, e}});
  plan = algebricks::MakeProject(plan, {rv});
  return TranslationResult{plan, rv, false};
}

Result<TranslationResult> Translator::TranslateFlwor(const Flwor& flwor,
                                                     const Scope* parent) {
  Scope scope;
  if (parent != nullptr) {
    scope.named_sources = parent->named_sources;
    scope.named_cache = parent->named_cache;
  } else {
    scope.named_cache =
        std::make_shared<std::map<const AExpr*, CachedSource>>();
  }
  for (const Clause& clause : flwor.clauses) {
    SIMDB_RETURN_IF_ERROR(TranslateClause(clause, &scope));
  }
  if (flwor.return_expr == nullptr) {
    return Status::PlanError("FLWOR without return");
  }
  SIMDB_ASSIGN_OR_RETURN(LExprPtr ret, TranslateExpr(flwor.return_expr, scope));
  if (scope.plan == nullptr) scope.plan = algebricks::MakeConstantTuple();
  std::string rv = FreshVar("ret");
  LOpPtr plan = algebricks::MakeAssign(scope.plan, {{rv, ret}});
  plan = algebricks::MakeProject(plan, {rv});
  return TranslationResult{plan, rv, false};
}

void Translator::AttachSource(LOpPtr source, Scope* scope) {
  if (scope->plan == nullptr) {
    scope->plan = std::move(source);
  } else {
    scope->plan = algebricks::MakeJoin(
        scope->plan, std::move(source),
        LExpr::Lit(adm::Value::Boolean(true)));
  }
}

Result<TranslationResult> Translator::TranslateCollection(const AExprPtr& expr,
                                                          Scope& scope) {
  if (expr->kind == AExpr::Kind::kSubquery) {
    return TranslateFlwor(*expr->subquery, &scope);
  }
  if (expr->kind == AExpr::Kind::kUnion) {
    std::string common = FreshVar("u");
    LOpPtr combined;
    for (const FlworPtr& branch : expr->branches) {
      SIMDB_ASSIGN_OR_RETURN(TranslationResult tr,
                             TranslateFlwor(*branch, &scope));
      LOpPtr renamed = algebricks::MakeAssign(
          tr.plan, {{common, LExpr::Var(tr.out_var)}});
      renamed = algebricks::MakeProject(renamed, {common});
      combined = combined == nullptr
                     ? renamed
                     : algebricks::MakeUnionAll(combined, renamed, {common});
    }
    return TranslationResult{combined, common, false};
  }
  (void)scope;
  return Status::PlanError("expected a collection-valued source");
}

Status Translator::AddForBinding(const std::string& var,
                                 const std::string& pos_var,
                                 const AExprPtr& source, Scope* scope) {
  switch (source->kind) {
    case AExpr::Kind::kDatasetRef: {
      if (!pos_var.empty()) {
        return Status::PlanError("'at' is not defined over datasets");
      }
      std::string sv = FreshVar(var);
      scope->var_map[var] = LExpr::Var(sv);
      AttachSource(algebricks::MakeDataScan(source->name, sv), scope);
      return Status::OK();
    }
    case AExpr::Kind::kMetaClause: {
      auto it = bindings_.clauses.find(source->name);
      if (it == bindings_.clauses.end()) {
        return Status::PlanError("unbound meta-clause ##" + source->name);
      }
      if (!pos_var.empty()) {
        return Status::PlanError("'at' is not defined over meta-clauses");
      }
      scope->var_map[var] = LExpr::Var(it->second.out_var);
      AttachSource(it->second.plan, scope);
      return Status::OK();
    }
    case AExpr::Kind::kSubquery:
    case AExpr::Kind::kUnion: {
      SIMDB_ASSIGN_OR_RETURN(TranslationResult tr,
                             TranslateCollection(source, *scope));
      std::string rank_var;
      if (!pos_var.empty()) {
        rank_var = FreshVar(pos_var);
        tr.plan = algebricks::MakeRank(tr.plan, rank_var);
      }
      scope->var_map[var] = LExpr::Var(tr.out_var);
      if (!pos_var.empty()) scope->var_map[pos_var] = LExpr::Var(rank_var);
      AttachSource(tr.plan, scope);
      return Status::OK();
    }
    case AExpr::Kind::kVar: {
      auto named = scope->named_sources.find(source->name);
      if (named != scope->named_sources.end()) {
        // let-bound subquery used as a source; translate once and share the
        // subplan across all uses (materialize/reuse, paper Figure 20). The
        // cache is keyed by AST node and shared with nested subqueries.
        const AExpr* key = named->second.get();
        auto cached = scope->named_cache->find(key);
        if (cached == scope->named_cache->end()) {
          SIMDB_ASSIGN_OR_RETURN(TranslationResult tr,
                                 TranslateCollection(named->second, *scope));
          cached = scope->named_cache->emplace(key, CachedSource{tr, ""}).first;
        }
        CachedSource& entry = cached->second;
        if (!pos_var.empty() && entry.rank_var.empty()) {
          entry.rank_var = FreshVar("rank");
          entry.tr.plan = algebricks::MakeRank(entry.tr.plan, entry.rank_var);
        }
        scope->var_map[var] = LExpr::Var(entry.tr.out_var);
        if (!pos_var.empty()) {
          scope->var_map[pos_var] = LExpr::Var(entry.rank_var);
        }
        AttachSource(entry.tr.plan, scope);
        return Status::OK();
      }
      break;  // fall through: correlated iteration over a bound variable
    }
    default:
      break;
  }
  // Correlated source: unnest an expression over the current bindings.
  SIMDB_ASSIGN_OR_RETURN(LExprPtr list, TranslateExpr(source, *scope));
  if (scope->plan == nullptr) scope->plan = algebricks::MakeConstantTuple();
  std::string iv = FreshVar(var);
  std::string pv = pos_var.empty() ? "" : FreshVar(pos_var);
  scope->plan = algebricks::MakeUnnest(scope->plan, list, iv, pv);
  scope->var_map[var] = LExpr::Var(iv);
  if (!pos_var.empty()) scope->var_map[pos_var] = LExpr::Var(pv);
  return Status::OK();
}

Status Translator::TranslateClause(const Clause& clause, Scope* scope) {
  switch (clause.kind) {
    case Clause::Kind::kFor:
      return AddForBinding(clause.var, clause.pos_var, clause.source, scope);
    case Clause::Kind::kLet: {
      if (clause.source->kind == AExpr::Kind::kSubquery ||
          clause.source->kind == AExpr::Kind::kUnion) {
        scope->named_sources[clause.var] = clause.source;
        return Status::OK();
      }
      SIMDB_ASSIGN_OR_RETURN(LExprPtr e, TranslateExpr(clause.source, *scope));
      if (scope->plan == nullptr) {
        scope->plan = algebricks::MakeConstantTuple();
      }
      std::string fv = FreshVar(clause.var);
      scope->plan = algebricks::MakeAssign(scope->plan, {{fv, e}});
      scope->var_map[clause.var] = LExpr::Var(fv);
      return Status::OK();
    }
    case Clause::Kind::kWhere: {
      if (scope->plan == nullptr) {
        return Status::PlanError("'where' before any 'for'");
      }
      SIMDB_ASSIGN_OR_RETURN(LExprPtr cond,
                             TranslateExpr(clause.condition, *scope));
      scope->plan = algebricks::MakeSelect(scope->plan, cond);
      return Status::OK();
    }
    case Clause::Kind::kGroupBy: {
      if (scope->plan == nullptr) {
        return Status::PlanError("'group by' before any 'for'");
      }
      std::vector<std::pair<std::string, LExprPtr>> keys;
      std::vector<std::pair<std::string, std::string>> key_bindings;
      for (const auto& [user_var, expr] : clause.group_keys) {
        SIMDB_ASSIGN_OR_RETURN(LExprPtr e, TranslateExpr(expr, *scope));
        std::string kv = FreshVar(user_var);
        keys.emplace_back(kv, std::move(e));
        key_bindings.emplace_back(user_var, kv);
      }
      std::vector<LAgg> aggs;
      std::vector<std::pair<std::string, std::string>> agg_bindings;
      for (const std::string& wv : clause.with_vars) {
        auto bound = scope->var_map.find(wv);
        if (bound == scope->var_map.end()) {
          return Status::PlanError("'with' of unbound variable $" + wv);
        }
        LAgg agg;
        agg.kind = LAgg::Kind::kListify;
        agg.input = bound->second;
        agg.out_var = FreshVar(wv);
        agg_bindings.emplace_back(wv, agg.out_var);
        aggs.push_back(std::move(agg));
      }
      scope->plan = algebricks::MakeGroupBy(scope->plan, std::move(keys),
                                            std::move(aggs));
      scope->var_map.clear();
      for (const auto& [user_var, kv] : key_bindings) {
        scope->var_map[user_var] = LExpr::Var(kv);
      }
      for (const auto& [user_var, av] : agg_bindings) {
        scope->var_map[user_var] = LExpr::Var(av);
      }
      return Status::OK();
    }
    case Clause::Kind::kOrderBy: {
      if (scope->plan == nullptr) {
        return Status::PlanError("'order by' before any 'for'");
      }
      std::vector<LSortKey> keys;
      for (const auto& [expr, asc] : clause.order_keys) {
        SIMDB_ASSIGN_OR_RETURN(LExprPtr e, TranslateExpr(expr, *scope));
        keys.push_back({std::move(e), asc});
      }
      scope->plan = algebricks::MakeOrderBy(scope->plan, std::move(keys));
      return Status::OK();
    }
    case Clause::Kind::kLimit: {
      if (scope->plan == nullptr) {
        return Status::PlanError("'limit' before any 'for'");
      }
      scope->plan = algebricks::MakeLimit(scope->plan, clause.limit);
      return Status::OK();
    }
    case Clause::Kind::kJoin: {
      // AQL+ explicit join: bind every source, then apply the condition; the
      // optimizer's select rules merge it into the synthesized joins.
      for (const auto& [var, source] : clause.join_bindings) {
        SIMDB_RETURN_IF_ERROR(AddForBinding(var, "", source, scope));
      }
      SIMDB_ASSIGN_OR_RETURN(LExprPtr cond,
                             TranslateExpr(clause.join_condition, *scope));
      scope->plan = algebricks::MakeSelect(scope->plan, cond);
      return Status::OK();
    }
  }
  return Status::Internal("unreachable clause kind");
}

Result<LExprPtr> Translator::TranslateExpr(const AExprPtr& expr, Scope& scope,
                                           int depth) {
  if (depth > kMaxInlineDepth) {
    return Status::PlanError("function inlining too deep (cycle?)");
  }
  switch (expr->kind) {
    case AExpr::Kind::kVar: {
      auto it = scope.var_map.find(expr->name);
      if (it == scope.var_map.end()) {
        if (scope.named_sources.count(expr->name) > 0) {
          return Status::PlanError(
              "subquery-valued variable $" + expr->name +
              " can only be used as a 'for' source");
        }
        return Status::PlanError("unbound variable $" + expr->name);
      }
      return it->second;
    }
    case AExpr::Kind::kLiteral:
      return LExpr::Lit(expr->literal);
    case AExpr::Kind::kField: {
      SIMDB_ASSIGN_OR_RETURN(LExprPtr base,
                             TranslateExpr(expr->children[0], scope, depth));
      return LExpr::Field(std::move(base), expr->name);
    }
    case AExpr::Kind::kCall: {
      // Inline user-defined AQL functions.
      if (functions_ != nullptr) {
        auto fn = functions_->find(expr->name);
        if (fn != functions_->end()) {
          if (fn->second.params.size() != expr->children.size()) {
            return Status::PlanError("function " + expr->name +
                                     " arity mismatch");
          }
          Scope fn_scope;
          for (size_t i = 0; i < fn->second.params.size(); ++i) {
            SIMDB_ASSIGN_OR_RETURN(
                LExprPtr arg, TranslateExpr(expr->children[i], scope, depth));
            fn_scope.var_map[fn->second.params[i]] = std::move(arg);
          }
          return TranslateExpr(fn->second.body, fn_scope, depth + 1);
        }
      }
      std::vector<LExprPtr> args;
      args.reserve(expr->children.size());
      for (const AExprPtr& c : expr->children) {
        SIMDB_ASSIGN_OR_RETURN(LExprPtr a, TranslateExpr(c, scope, depth));
        args.push_back(std::move(a));
      }
      LExprPtr call = LExpr::CallF(expr->name, std::move(args));
      if (expr->bcast_hint) {
        auto mutable_call = std::make_shared<LExpr>(*call);
        mutable_call->bcast_hint = true;
        call = mutable_call;
      }
      return call;
    }
    case AExpr::Kind::kRecord: {
      std::vector<LExprPtr> values;
      for (const AExprPtr& c : expr->children) {
        SIMDB_ASSIGN_OR_RETURN(LExprPtr v, TranslateExpr(c, scope, depth));
        values.push_back(std::move(v));
      }
      return LExpr::Record(expr->field_names, std::move(values));
    }
    case AExpr::Kind::kList: {
      std::vector<LExprPtr> items;
      for (const AExprPtr& c : expr->children) {
        SIMDB_ASSIGN_OR_RETURN(LExprPtr v, TranslateExpr(c, scope, depth));
        items.push_back(std::move(v));
      }
      return LExpr::List(std::move(items));
    }
    case AExpr::Kind::kMetaVar: {
      auto it = bindings_.vars.find(expr->name);
      if (it == bindings_.vars.end()) {
        return Status::PlanError("unbound meta-variable $$" + expr->name);
      }
      return it->second;
    }
    case AExpr::Kind::kSubquery:
    case AExpr::Kind::kUnion:
      return Status::PlanError(
          "correlated subqueries in scalar positions are not supported; "
          "use a 'for' source or group-by collection instead");
    case AExpr::Kind::kDatasetRef:
      return Status::PlanError("dataset reference in scalar position");
    case AExpr::Kind::kMetaClause:
      return Status::PlanError("meta-clause in scalar position");
  }
  return Status::Internal("unreachable expr kind");
}

}  // namespace simdb::aql
