#include "aql/parser.h"

#include "aql/lexer.h"

namespace simdb::aql {

AExprPtr MakeVar(std::string name) {
  auto e = std::make_shared<AExpr>();
  e->kind = AExpr::Kind::kVar;
  e->name = std::move(name);
  return e;
}

AExprPtr MakeLiteral(adm::Value v) {
  auto e = std::make_shared<AExpr>();
  e->kind = AExpr::Kind::kLiteral;
  e->literal = std::move(v);
  return e;
}

AExprPtr MakeField(AExprPtr base, std::string field) {
  auto e = std::make_shared<AExpr>();
  e->kind = AExpr::Kind::kField;
  e->name = std::move(field);
  e->children.push_back(std::move(base));
  return e;
}

AExprPtr MakeCall(std::string fn, std::vector<AExprPtr> args) {
  auto e = std::make_shared<AExpr>();
  e->kind = AExpr::Kind::kCall;
  e->name = std::move(fn);
  e->children = std::move(args);
  return e;
}

namespace {

/// Recursive-descent parser over the token stream.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Program> ParseProgram();
  Result<AExprPtr> ParseSingleExpression();

 private:
  const Token& Peek(int ahead = 0) const {
    size_t i = pos_ + static_cast<size_t>(ahead);
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Advance() { return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_]; }

  bool AtSymbol(std::string_view s, int ahead = 0) const {
    const Token& t = Peek(ahead);
    return t.kind == TokenKind::kSymbol && t.text == s;
  }
  bool AtKeyword(std::string_view kw, int ahead = 0) const {
    const Token& t = Peek(ahead);
    return t.kind == TokenKind::kIdentifier && t.text == kw;
  }
  bool ConsumeSymbol(std::string_view s) {
    if (AtSymbol(s)) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool ConsumeKeyword(std::string_view kw) {
    if (AtKeyword(kw)) {
      ++pos_;
      return true;
    }
    return false;
  }
  Status Err(const std::string& msg) const {
    return Status::ParseError(msg + " near offset " +
                              std::to_string(Peek().offset) + " (token '" +
                              Peek().text + "')");
  }
  Status ExpectSymbol(std::string_view s) {
    if (!ConsumeSymbol(s)) return Err("expected '" + std::string(s) + "'");
    return Status::OK();
  }
  Status ExpectKeyword(std::string_view kw) {
    if (!ConsumeKeyword(kw)) return Err("expected '" + std::string(kw) + "'");
    return Status::OK();
  }
  Result<std::string> ExpectIdentifier(const std::string& what) {
    if (Peek().kind != TokenKind::kIdentifier) return Err("expected " + what);
    return Advance().text;
  }
  Result<std::string> ExpectVariable() {
    if (Peek().kind != TokenKind::kVariable) return Err("expected variable");
    return Advance().text;
  }

  bool AtFlworStart() const {
    return AtKeyword("for") || AtKeyword("let") || AtKeyword("join");
  }

  Result<Statement> ParseStatement();
  Result<FlworPtr> ParseFlwor();
  Result<Clause> ParseClause(bool* done);
  Result<AExprPtr> ParseExpr();
  Result<AExprPtr> ParseOr();
  Result<AExprPtr> ParseAnd();
  Result<AExprPtr> ParseComparison();
  Result<AExprPtr> ParseAdditive();
  Result<AExprPtr> ParseMultiplicative();
  Result<AExprPtr> ParseUnary();
  Result<AExprPtr> ParsePostfix();
  Result<AExprPtr> ParsePrimary();
  Result<AExprPtr> ParseParenthesized();

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

Result<Program> Parser::ParseProgram() {
  Program program;
  while (Peek().kind != TokenKind::kEnd) {
    SIMDB_ASSIGN_OR_RETURN(Statement stmt, ParseStatement());
    program.statements.push_back(std::move(stmt));
    while (ConsumeSymbol(";")) {
    }
  }
  return program;
}

Result<AExprPtr> Parser::ParseSingleExpression() {
  AExprPtr e;
  if (AtFlworStart()) {
    auto sub = std::make_shared<AExpr>();
    sub->kind = AExpr::Kind::kSubquery;
    SIMDB_ASSIGN_OR_RETURN(sub->subquery, ParseFlwor());
    e = std::move(sub);
  } else {
    SIMDB_ASSIGN_OR_RETURN(e, ParseExpr());
  }
  ConsumeSymbol(";");
  if (Peek().kind != TokenKind::kEnd) return Err("trailing tokens");
  return e;
}

Result<Statement> Parser::ParseStatement() {
  Statement stmt;
  if (ConsumeKeyword("use")) {
    SIMDB_RETURN_IF_ERROR(ExpectKeyword("dataverse"));
    SIMDB_ASSIGN_OR_RETURN(stmt.name, ExpectIdentifier("dataverse name"));
    stmt.kind = Statement::Kind::kUseDataverse;
    return stmt;
  }
  if (AtKeyword("set") && Peek(1).kind == TokenKind::kIdentifier &&
      Peek(2).kind == TokenKind::kString) {
    Advance();
    stmt.kind = Statement::Kind::kSet;
    stmt.name = Advance().text;
    stmt.set_value = Advance().text;
    return stmt;
  }
  if (ConsumeKeyword("create")) {
    if (ConsumeKeyword("dataset")) {
      stmt.kind = Statement::Kind::kCreateDataset;
      SIMDB_ASSIGN_OR_RETURN(stmt.dataset, ExpectIdentifier("dataset name"));
      SIMDB_RETURN_IF_ERROR(ExpectKeyword("primary"));
      SIMDB_RETURN_IF_ERROR(ExpectKeyword("key"));
      SIMDB_ASSIGN_OR_RETURN(stmt.pk_field, ExpectIdentifier("key field"));
      if (ConsumeKeyword("partitions")) {
        if (Peek().kind != TokenKind::kInteger) return Err("expected count");
        stmt.partitions = static_cast<int>(Advance().int_value);
      }
      return stmt;
    }
    if (ConsumeKeyword("index")) {
      stmt.kind = Statement::Kind::kCreateIndex;
      SIMDB_ASSIGN_OR_RETURN(stmt.name, ExpectIdentifier("index name"));
      SIMDB_RETURN_IF_ERROR(ExpectKeyword("on"));
      SIMDB_ASSIGN_OR_RETURN(stmt.dataset, ExpectIdentifier("dataset name"));
      SIMDB_RETURN_IF_ERROR(ExpectSymbol("("));
      SIMDB_ASSIGN_OR_RETURN(stmt.field, ExpectIdentifier("field name"));
      SIMDB_RETURN_IF_ERROR(ExpectSymbol(")"));
      SIMDB_RETURN_IF_ERROR(ExpectKeyword("type"));
      SIMDB_ASSIGN_OR_RETURN(stmt.index_type, ExpectIdentifier("index type"));
      if (stmt.index_type == "ngram") {
        SIMDB_RETURN_IF_ERROR(ExpectSymbol("("));
        if (Peek().kind != TokenKind::kInteger) return Err("expected n");
        stmt.gram_len = static_cast<int>(Advance().int_value);
        SIMDB_RETURN_IF_ERROR(ExpectSymbol(")"));
      } else if (stmt.index_type != "keyword" && stmt.index_type != "btree") {
        return Err("unknown index type " + stmt.index_type);
      }
      return stmt;
    }
    if (ConsumeKeyword("function")) {
      stmt.kind = Statement::Kind::kCreateFunction;
      SIMDB_ASSIGN_OR_RETURN(stmt.name, ExpectIdentifier("function name"));
      SIMDB_RETURN_IF_ERROR(ExpectSymbol("("));
      if (!AtSymbol(")")) {
        do {
          SIMDB_ASSIGN_OR_RETURN(std::string p, ExpectVariable());
          stmt.params.push_back(std::move(p));
        } while (ConsumeSymbol(","));
      }
      SIMDB_RETURN_IF_ERROR(ExpectSymbol(")"));
      SIMDB_RETURN_IF_ERROR(ExpectSymbol("{"));
      SIMDB_ASSIGN_OR_RETURN(stmt.body, ParseExpr());
      SIMDB_RETURN_IF_ERROR(ExpectSymbol("}"));
      return stmt;
    }
    return Err("expected dataset/index/function after 'create'");
  }
  if (ConsumeKeyword("explain")) {
    stmt.kind = Statement::Kind::kExplain;
    if (AtFlworStart()) {
      auto sub = std::make_shared<AExpr>();
      sub->kind = AExpr::Kind::kSubquery;
      SIMDB_ASSIGN_OR_RETURN(sub->subquery, ParseFlwor());
      stmt.body = std::move(sub);
    } else {
      SIMDB_ASSIGN_OR_RETURN(stmt.body, ParseExpr());
    }
    return stmt;
  }
  if (ConsumeKeyword("insert")) {
    SIMDB_RETURN_IF_ERROR(ExpectKeyword("into"));
    stmt.kind = Statement::Kind::kInsert;
    SIMDB_ASSIGN_OR_RETURN(stmt.dataset, ExpectIdentifier("dataset name"));
    SIMDB_ASSIGN_OR_RETURN(stmt.body, ParseExpr());
    return stmt;
  }
  if (ConsumeKeyword("delete")) {
    stmt.kind = Statement::Kind::kDelete;
    SIMDB_ASSIGN_OR_RETURN(stmt.var, ExpectVariable());
    SIMDB_RETURN_IF_ERROR(ExpectKeyword("from"));
    SIMDB_RETURN_IF_ERROR(ExpectKeyword("dataset"));
    SIMDB_ASSIGN_OR_RETURN(stmt.dataset, ExpectIdentifier("dataset name"));
    if (ConsumeKeyword("where")) {
      SIMDB_ASSIGN_OR_RETURN(stmt.condition, ParseExpr());
    }
    return stmt;
  }
  if (AtKeyword("load") && AtKeyword("dataset", 1)) {
    Advance();
    Advance();
    stmt.kind = Statement::Kind::kLoad;
    SIMDB_ASSIGN_OR_RETURN(stmt.dataset, ExpectIdentifier("dataset name"));
    SIMDB_RETURN_IF_ERROR(ExpectKeyword("from"));
    if (Peek().kind != TokenKind::kString) return Err("expected file path");
    stmt.path = Advance().text;
    return stmt;
  }
  // Otherwise: a query expression (a bare FLWOR is allowed at top level).
  stmt.kind = Statement::Kind::kQuery;
  if (AtFlworStart()) {
    auto sub = std::make_shared<AExpr>();
    sub->kind = AExpr::Kind::kSubquery;
    SIMDB_ASSIGN_OR_RETURN(sub->subquery, ParseFlwor());
    stmt.body = std::move(sub);
  } else {
    SIMDB_ASSIGN_OR_RETURN(stmt.body, ParseExpr());
  }
  return stmt;
}

Result<FlworPtr> Parser::ParseFlwor() {
  auto flwor = std::make_shared<Flwor>();
  bool done = false;
  while (!done) {
    if (ConsumeKeyword("return")) {
      SIMDB_ASSIGN_OR_RETURN(flwor->return_expr, ParseExpr());
      break;
    }
    SIMDB_ASSIGN_OR_RETURN(Clause clause, ParseClause(&done));
    if (!done) flwor->clauses.push_back(std::move(clause));
  }
  if (flwor->return_expr == nullptr) return Err("FLWOR missing 'return'");
  return flwor;
}

Result<Clause> Parser::ParseClause(bool* done) {
  Clause clause;
  *done = false;
  bool hash_hint = false;
  while (Peek().kind == TokenKind::kHint) {
    if (Advance().text == "hash") hash_hint = true;
  }
  if (ConsumeKeyword("for")) {
    clause.kind = Clause::Kind::kFor;
    SIMDB_ASSIGN_OR_RETURN(clause.var, ExpectVariable());
    if (ConsumeKeyword("at")) {
      SIMDB_ASSIGN_OR_RETURN(clause.pos_var, ExpectVariable());
    }
    SIMDB_RETURN_IF_ERROR(ExpectKeyword("in"));
    SIMDB_ASSIGN_OR_RETURN(clause.source, ParseExpr());
    return clause;
  }
  if (ConsumeKeyword("let")) {
    clause.kind = Clause::Kind::kLet;
    SIMDB_ASSIGN_OR_RETURN(clause.var, ExpectVariable());
    SIMDB_RETURN_IF_ERROR(ExpectSymbol(":="));
    SIMDB_ASSIGN_OR_RETURN(clause.source, ParseExpr());
    return clause;
  }
  if (ConsumeKeyword("where")) {
    clause.kind = Clause::Kind::kWhere;
    SIMDB_ASSIGN_OR_RETURN(clause.condition, ParseExpr());
    return clause;
  }
  if (AtKeyword("group") && AtKeyword("by", 1)) {
    Advance();
    Advance();
    clause.kind = Clause::Kind::kGroupBy;
    clause.hash_hint = hash_hint;
    do {
      SIMDB_ASSIGN_OR_RETURN(std::string k, ExpectVariable());
      SIMDB_RETURN_IF_ERROR(ExpectSymbol(":="));
      SIMDB_ASSIGN_OR_RETURN(AExprPtr e, ParseExpr());
      clause.group_keys.emplace_back(std::move(k), std::move(e));
    } while (ConsumeSymbol(","));
    SIMDB_RETURN_IF_ERROR(ExpectKeyword("with"));
    do {
      SIMDB_ASSIGN_OR_RETURN(std::string v, ExpectVariable());
      clause.with_vars.push_back(std::move(v));
    } while (ConsumeSymbol(","));
    return clause;
  }
  if (AtKeyword("order") && AtKeyword("by", 1)) {
    Advance();
    Advance();
    clause.kind = Clause::Kind::kOrderBy;
    do {
      SIMDB_ASSIGN_OR_RETURN(AExprPtr e, ParseExpr());
      bool asc = true;
      if (ConsumeKeyword("desc")) {
        asc = false;
      } else {
        ConsumeKeyword("asc");
      }
      clause.order_keys.emplace_back(std::move(e), asc);
    } while (ConsumeSymbol(","));
    return clause;
  }
  if (ConsumeKeyword("limit")) {
    clause.kind = Clause::Kind::kLimit;
    if (Peek().kind != TokenKind::kInteger) return Err("expected limit count");
    clause.limit = Advance().int_value;
    return clause;
  }
  if (ConsumeKeyword("join")) {
    clause.kind = Clause::Kind::kJoin;
    do {
      SIMDB_ASSIGN_OR_RETURN(std::string v, ExpectVariable());
      SIMDB_RETURN_IF_ERROR(ExpectKeyword("in"));
      SIMDB_ASSIGN_OR_RETURN(AExprPtr src, ParseExpr());
      clause.join_bindings.emplace_back(std::move(v), std::move(src));
    } while (ConsumeSymbol(","));
    SIMDB_RETURN_IF_ERROR(ExpectKeyword("on"));
    SIMDB_ASSIGN_OR_RETURN(clause.join_condition, ParseExpr());
    return clause;
  }
  return Err("expected a FLWOR clause");
}

Result<AExprPtr> Parser::ParseExpr() { return ParseOr(); }

Result<AExprPtr> Parser::ParseOr() {
  SIMDB_ASSIGN_OR_RETURN(AExprPtr left, ParseAnd());
  while (ConsumeKeyword("or")) {
    SIMDB_ASSIGN_OR_RETURN(AExprPtr right, ParseAnd());
    left = MakeCall("or", {left, right});
  }
  return left;
}

Result<AExprPtr> Parser::ParseAnd() {
  SIMDB_ASSIGN_OR_RETURN(AExprPtr left, ParseComparison());
  while (ConsumeKeyword("and")) {
    SIMDB_ASSIGN_OR_RETURN(AExprPtr right, ParseComparison());
    left = MakeCall("and", {left, right});
  }
  return left;
}

Result<AExprPtr> Parser::ParseComparison() {
  SIMDB_ASSIGN_OR_RETURN(AExprPtr left, ParseAdditive());
  static const struct {
    const char* symbol;
    const char* fn;
  } kOps[] = {{"=", "eq"},  {"!=", "neq"}, {"<=", "le"},
              {">=", "ge"}, {"<", "lt"},   {">", "gt"},
              {"~=", "sim-eq"}};
  for (const auto& op : kOps) {
    if (AtSymbol(op.symbol)) {
      Advance();
      // A bcast hint directly after the comparison marks a broadcast join
      // for this conjunct (paper Figure 11 line 19).
      bool bcast = false;
      while (Peek().kind == TokenKind::kHint) {
        if (Advance().text == "bcast") bcast = true;
      }
      SIMDB_ASSIGN_OR_RETURN(AExprPtr right, ParseAdditive());
      AExprPtr call = MakeCall(op.fn, {left, right});
      call->bcast_hint = bcast;
      return call;
    }
  }
  return left;
}

Result<AExprPtr> Parser::ParseAdditive() {
  SIMDB_ASSIGN_OR_RETURN(AExprPtr left, ParseMultiplicative());
  for (;;) {
    if (ConsumeSymbol("+")) {
      SIMDB_ASSIGN_OR_RETURN(AExprPtr right, ParseMultiplicative());
      left = MakeCall("add", {left, right});
    } else if (ConsumeSymbol("-")) {
      SIMDB_ASSIGN_OR_RETURN(AExprPtr right, ParseMultiplicative());
      left = MakeCall("sub", {left, right});
    } else {
      return left;
    }
  }
}

Result<AExprPtr> Parser::ParseMultiplicative() {
  SIMDB_ASSIGN_OR_RETURN(AExprPtr left, ParseUnary());
  for (;;) {
    if (ConsumeSymbol("*")) {
      SIMDB_ASSIGN_OR_RETURN(AExprPtr right, ParseUnary());
      left = MakeCall("mul", {left, right});
    } else if (ConsumeSymbol("/")) {
      SIMDB_ASSIGN_OR_RETURN(AExprPtr right, ParseUnary());
      left = MakeCall("div", {left, right});
    } else {
      return left;
    }
  }
}

Result<AExprPtr> Parser::ParseUnary() {
  if (ConsumeSymbol("-")) {
    SIMDB_ASSIGN_OR_RETURN(AExprPtr inner, ParseUnary());
    return MakeCall("sub", {MakeLiteral(adm::Value::Int64(0)), inner});
  }
  if (ConsumeKeyword("not")) {
    SIMDB_ASSIGN_OR_RETURN(AExprPtr inner, ParseUnary());
    return MakeCall("not", {inner});
  }
  return ParsePostfix();
}

Result<AExprPtr> Parser::ParsePostfix() {
  SIMDB_ASSIGN_OR_RETURN(AExprPtr base, ParsePrimary());
  while (AtSymbol(".")) {
    Advance();
    SIMDB_ASSIGN_OR_RETURN(std::string field, ExpectIdentifier("field name"));
    base = MakeField(std::move(base), std::move(field));
  }
  return base;
}

Result<AExprPtr> Parser::ParseParenthesized() {
  // '(' already consumed: either a FLWOR subquery or a plain expression.
  AExprPtr out;
  if (AtFlworStart()) {
    auto e = std::make_shared<AExpr>();
    e->kind = AExpr::Kind::kSubquery;
    SIMDB_ASSIGN_OR_RETURN(e->subquery, ParseFlwor());
    out = e;
  } else {
    SIMDB_ASSIGN_OR_RETURN(out, ParseExpr());
  }
  SIMDB_RETURN_IF_ERROR(ExpectSymbol(")"));
  return out;
}

Result<AExprPtr> Parser::ParsePrimary() {
  const Token& tok = Peek();
  switch (tok.kind) {
    case TokenKind::kVariable:
      return MakeVar(Advance().text);
    case TokenKind::kMetaVar: {
      auto e = std::make_shared<AExpr>();
      e->kind = AExpr::Kind::kMetaVar;
      e->name = Advance().text;
      return e;
    }
    case TokenKind::kMetaClause: {
      auto e = std::make_shared<AExpr>();
      e->kind = AExpr::Kind::kMetaClause;
      e->name = Advance().text;
      return e;
    }
    case TokenKind::kString:
      return MakeLiteral(adm::Value::String(Advance().text));
    case TokenKind::kInteger:
      return MakeLiteral(adm::Value::Int64(Advance().int_value));
    case TokenKind::kDouble:
      return MakeLiteral(adm::Value::Double(Advance().double_value));
    default:
      break;
  }
  if (ConsumeSymbol("(")) return ParseParenthesized();
  if (AtSymbol("{")) {
    Advance();
    auto e = std::make_shared<AExpr>();
    e->kind = AExpr::Kind::kRecord;
    if (!AtSymbol("}")) {
      do {
        std::string name;
        if (Peek().kind == TokenKind::kString ||
            Peek().kind == TokenKind::kIdentifier) {
          name = Advance().text;
        } else {
          return Err("expected field name");
        }
        if (!ConsumeSymbol(":")) {
          // allow `'a': e` with ':' lexed as part of ':=': only ':' exists
          return Err("expected ':' in record");
        }
        SIMDB_ASSIGN_OR_RETURN(AExprPtr value, ParseExpr());
        e->field_names.push_back(std::move(name));
        e->children.push_back(std::move(value));
      } while (ConsumeSymbol(","));
    }
    SIMDB_RETURN_IF_ERROR(ExpectSymbol("}"));
    return AExprPtr(e);
  }
  if (AtSymbol("[")) {
    Advance();
    auto e = std::make_shared<AExpr>();
    e->kind = AExpr::Kind::kList;
    if (!AtSymbol("]")) {
      do {
        SIMDB_ASSIGN_OR_RETURN(AExprPtr item, ParseExpr());
        e->children.push_back(std::move(item));
      } while (ConsumeSymbol(","));
    }
    SIMDB_RETURN_IF_ERROR(ExpectSymbol("]"));
    return AExprPtr(e);
  }
  if (tok.kind == TokenKind::kIdentifier) {
    if (tok.text == "true" || tok.text == "false") {
      Advance();
      return MakeLiteral(adm::Value::Boolean(tok.text == "true"));
    }
    if (tok.text == "null") {
      Advance();
      return MakeLiteral(adm::Value::Null());
    }
    if (tok.text == "dataset") {
      Advance();
      auto e = std::make_shared<AExpr>();
      e->kind = AExpr::Kind::kDatasetRef;
      if (ConsumeSymbol("(")) {
        if (Peek().kind != TokenKind::kString) return Err("expected name");
        e->name = Advance().text;
        SIMDB_RETURN_IF_ERROR(ExpectSymbol(")"));
      } else {
        SIMDB_ASSIGN_OR_RETURN(e->name, ExpectIdentifier("dataset name"));
      }
      return AExprPtr(e);
    }
    if (tok.text == "union" && AtSymbol("(", 1)) {
      Advance();
      Advance();  // union (
      auto e = std::make_shared<AExpr>();
      e->kind = AExpr::Kind::kUnion;
      do {
        SIMDB_RETURN_IF_ERROR(ExpectSymbol("("));
        if (!AtFlworStart()) return Err("union branch must be a FLWOR");
        SIMDB_ASSIGN_OR_RETURN(FlworPtr branch, ParseFlwor());
        e->branches.push_back(std::move(branch));
        SIMDB_RETURN_IF_ERROR(ExpectSymbol(")"));
      } while (ConsumeSymbol(","));
      SIMDB_RETURN_IF_ERROR(ExpectSymbol(")"));
      if (e->branches.size() < 2) return Err("union needs two branches");
      return AExprPtr(e);
    }
    // Function call or bare identifier (not allowed).
    if (AtSymbol("(", 1)) {
      std::string fn = Advance().text;
      Advance();  // (
      std::vector<AExprPtr> args;
      if (!AtSymbol(")")) {
        do {
          if (AtFlworStart()) {
            auto sub = std::make_shared<AExpr>();
            sub->kind = AExpr::Kind::kSubquery;
            SIMDB_ASSIGN_OR_RETURN(sub->subquery, ParseFlwor());
            args.push_back(std::move(sub));
          } else {
            SIMDB_ASSIGN_OR_RETURN(AExprPtr a, ParseExpr());
            args.push_back(std::move(a));
          }
        } while (ConsumeSymbol(","));
      }
      SIMDB_RETURN_IF_ERROR(ExpectSymbol(")"));
      return MakeCall(std::move(fn), std::move(args));
    }
  }
  return Err("expected an expression");
}

}  // namespace

Result<Program> ParseProgram(std::string_view text) {
  SIMDB_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(text));
  return Parser(std::move(tokens)).ParseProgram();
}

Result<AExprPtr> ParseExpression(std::string_view text) {
  SIMDB_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(text));
  return Parser(std::move(tokens)).ParseSingleExpression();
}

}  // namespace simdb::aql
