#include "aql/lexer.h"

#include <cctype>
#include <cstdlib>

namespace simdb::aql {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-';
}

}  // namespace

Result<std::vector<Token>> Lex(std::string_view text) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = text.size();
  auto err = [&](const std::string& msg) {
    return Status::ParseError(msg + " at offset " + std::to_string(i));
  };

  while (i < n) {
    char c = text[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Comments and hints.
    if (c == '/' && i + 1 < n && text[i + 1] == '/') {
      while (i < n && text[i] != '\n') ++i;
      continue;
    }
    if (c == '/' && i + 1 < n && text[i + 1] == '*') {
      bool is_hint = i + 2 < n && text[i + 2] == '+';
      size_t start = i + (is_hint ? 3 : 2);
      size_t end = text.find("*/", start);
      if (end == std::string_view::npos) return err("unterminated comment");
      if (is_hint) {
        std::string body(text.substr(start, end - start));
        // trim
        while (!body.empty() && std::isspace(static_cast<unsigned char>(body.front()))) {
          body.erase(body.begin());
        }
        while (!body.empty() && std::isspace(static_cast<unsigned char>(body.back()))) {
          body.pop_back();
        }
        tokens.push_back({TokenKind::kHint, body, 0, 0, i});
      }
      i = end + 2;
      continue;
    }
    // Variables and meta tokens.
    if (c == '$') {
      size_t start = i;
      bool meta = i + 1 < n && text[i + 1] == '$';
      i += meta ? 2 : 1;
      size_t name_start = i;
      while (i < n && IsIdentChar(text[i])) ++i;
      if (i == name_start) return err("expected variable name after '$'");
      tokens.push_back({meta ? TokenKind::kMetaVar : TokenKind::kVariable,
                        std::string(text.substr(name_start, i - name_start)),
                        0, 0, start});
      continue;
    }
    if (c == '#' && i + 1 < n && text[i + 1] == '#') {
      size_t start = i;
      i += 2;
      size_t name_start = i;
      while (i < n && IsIdentChar(text[i])) ++i;
      if (i == name_start) return err("expected name after '##'");
      tokens.push_back({TokenKind::kMetaClause,
                        std::string(text.substr(name_start, i - name_start)),
                        0, 0, start});
      continue;
    }
    // Strings.
    if (c == '\'' || c == '"') {
      char quote = c;
      size_t start = i++;
      std::string out;
      while (i < n && text[i] != quote) {
        if (text[i] == '\\' && i + 1 < n) {
          ++i;
          switch (text[i]) {
            case 'n':
              out.push_back('\n');
              break;
            case 't':
              out.push_back('\t');
              break;
            default:
              out.push_back(text[i]);
          }
        } else {
          out.push_back(text[i]);
        }
        ++i;
      }
      if (i >= n) return err("unterminated string");
      ++i;  // closing quote
      tokens.push_back({TokenKind::kString, std::move(out), 0, 0, start});
      continue;
    }
    // Numbers (including ".5" and the AQL float suffix "f": ".5f").
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(text[i + 1])))) {
      size_t start = i;
      bool is_double = false;
      while (i < n && std::isdigit(static_cast<unsigned char>(text[i]))) ++i;
      if (i < n && text[i] == '.' && i + 1 < n &&
          std::isdigit(static_cast<unsigned char>(text[i + 1]))) {
        is_double = true;
        ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(text[i]))) ++i;
      } else if (i < n && text[i] == '.' &&
                 !(i + 1 < n && IsIdentStart(text[i + 1]))) {
        is_double = true;
        ++i;
      }
      if (i < n && (text[i] == 'e' || text[i] == 'E')) {
        is_double = true;
        ++i;
        if (i < n && (text[i] == '+' || text[i] == '-')) ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(text[i]))) ++i;
      }
      std::string num(text.substr(start, i - start));
      if (i < n && (text[i] == 'f' || text[i] == 'F')) {
        is_double = true;
        ++i;  // consume float suffix
      }
      Token tok;
      tok.offset = start;
      if (is_double) {
        tok.kind = TokenKind::kDouble;
        tok.double_value = std::strtod(num.c_str(), nullptr);
      } else {
        tok.kind = TokenKind::kInteger;
        tok.int_value = std::strtoll(num.c_str(), nullptr, 10);
      }
      tokens.push_back(std::move(tok));
      continue;
    }
    if (IsIdentStart(c)) {
      size_t start = i;
      while (i < n && IsIdentChar(text[i])) ++i;
      tokens.push_back({TokenKind::kIdentifier,
                        std::string(text.substr(start, i - start)), 0, 0,
                        start});
      continue;
    }
    // Multi-char symbols first.
    auto symbol = [&](std::string s) {
      tokens.push_back({TokenKind::kSymbol, std::move(s), 0, 0, i});
    };
    std::string_view rest = text.substr(i);
    if (rest.rfind(":=", 0) == 0 || rest.rfind("<=", 0) == 0 ||
        rest.rfind(">=", 0) == 0 || rest.rfind("!=", 0) == 0 ||
        rest.rfind("~=", 0) == 0) {
      symbol(std::string(rest.substr(0, 2)));
      i += 2;
      continue;
    }
    if (std::string("(){}[],;=<>+-*/.:").find(c) != std::string::npos) {
      symbol(std::string(1, c));
      ++i;
      continue;
    }
    return err(std::string("unexpected character '") + c + "'");
  }
  tokens.push_back({TokenKind::kEnd, "", 0, 0, n});
  return tokens;
}

}  // namespace simdb::aql
