#ifndef SIMDB_AQL_AST_H_
#define SIMDB_AQL_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "adm/value.h"

namespace simdb::aql {

struct Flwor;
using FlworPtr = std::shared_ptr<Flwor>;

/// AST expression. Binary operators are normalized to call form ("eq", "lt",
/// "add", ...); the `~=` similarity operator becomes a "sim-eq" call that the
/// optimizer's sugar rule resolves using the session's simfunction /
/// simthreshold settings (paper Section 3.2).
struct AExpr {
  enum class Kind {
    kVar,         // $name
    kLiteral,
    kField,       // base.field
    kCall,        // fn(args)
    kRecord,      // {'a': e, ...}
    kList,        // [e, ...]
    kDatasetRef,  // dataset Name / dataset('Name')
    kSubquery,    // ( flwor )
    kUnion,       // union((flwor), (flwor))  [AQL+ helper]
    kMetaVar,     // $$NAME                    [AQL+]
    kMetaClause,  // ##NAME                    [AQL+]
  };

  Kind kind = Kind::kLiteral;
  std::string name;  // var/field/fn/dataset/meta name
  adm::Value literal;
  std::vector<std::shared_ptr<AExpr>> children;
  std::vector<std::string> field_names;  // kRecord
  FlworPtr subquery;                     // kSubquery
  std::vector<FlworPtr> branches;        // kUnion
  /// `/*+ bcast */` on the right operand of an equality (paper Fig. 11).
  bool bcast_hint = false;
};

using AExprPtr = std::shared_ptr<AExpr>;

/// One FLWOR clause.
struct Clause {
  enum class Kind { kFor, kLet, kWhere, kGroupBy, kOrderBy, kLimit, kJoin };

  Kind kind = Kind::kFor;

  // kFor: `for $var (at $pos_var)? in source`; kLet: `let $var := source`.
  std::string var;
  std::string pos_var;
  AExprPtr source;

  // kWhere.
  AExprPtr condition;

  // kGroupBy: `group by $k := e, ... with $v, ...` (+ optional /*+ hash */).
  std::vector<std::pair<std::string, AExprPtr>> group_keys;
  std::vector<std::string> with_vars;
  bool hash_hint = false;

  // kOrderBy: exprs with ascending flags.
  std::vector<std::pair<AExprPtr, bool>> order_keys;

  // kLimit.
  int64_t limit = 0;

  // kJoin (AQL+ explicit join clause): `join $a in src1, $b in src2 on cond`.
  std::vector<std::pair<std::string, AExprPtr>> join_bindings;
  AExprPtr join_condition;
};

/// A FLWOR block: clauses plus the return expression.
struct Flwor {
  std::vector<Clause> clauses;
  AExprPtr return_expr;
};

/// A top-level statement.
struct Statement {
  enum class Kind {
    kUseDataverse,    // use dataverse X
    kSet,             // set name 'value'
    kCreateDataset,   // create dataset X primary key id [partitions N]
    kCreateIndex,     // create index i on X(field) type ngram(2)|keyword|btree
    kCreateFunction,  // create function f($a, $b) { expr }
    kInsert,          // insert into X <record-or-list literal>
    kDelete,          // delete $v from dataset X where <cond>
    kLoad,            // load dataset X from '<path>' (JSON lines)
    kQuery,           // an expression (usually a subquery / count(subquery))
    kExplain,         // explain <query>
  };

  Kind kind = Kind::kQuery;
  std::string name;        // dataverse / set key / dataset / index / function
  std::string set_value;   // kSet
  std::string dataset;     // kCreateDataset / kCreateIndex target
  std::string pk_field;    // kCreateDataset
  int partitions = 0;      // kCreateDataset (0 = engine default)
  std::string field;       // kCreateIndex
  std::string index_type;  // "ngram" | "keyword" | "btree"
  int gram_len = 2;        // kCreateIndex ngram(n)
  std::vector<std::string> params;  // kCreateFunction parameter names
  AExprPtr body;           // kCreateFunction body / kQuery / kInsert payload
  std::string var;         // kDelete iteration variable
  AExprPtr condition;      // kDelete predicate (may be null = delete all)
  std::string path;        // kLoad source file
};

struct Program {
  std::vector<Statement> statements;
};

// ---- constructors ----
AExprPtr MakeVar(std::string name);
AExprPtr MakeLiteral(adm::Value v);
AExprPtr MakeField(AExprPtr base, std::string field);
AExprPtr MakeCall(std::string fn, std::vector<AExprPtr> args);

}  // namespace simdb::aql

#endif  // SIMDB_AQL_AST_H_
