#ifndef SIMDB_AQL_LEXER_H_
#define SIMDB_AQL_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace simdb::aql {

enum class TokenKind {
  kIdentifier,  // for, dataset, foo  (keywords are identifiers contextually)
  kVariable,    // $x
  kMetaVar,     // $$X        [AQL+]
  kMetaClause,  // ##X        [AQL+]
  kString,      // 'abc' or "abc"
  kInteger,
  kDouble,
  kHint,        // /*+ ... */
  kSymbol,      // punctuation / operators, text holds the exact symbol
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;       // identifier/variable/meta name, symbol, hint body
  int64_t int_value = 0;
  double double_value = 0;
  size_t offset = 0;      // for error messages
};

/// Tokenizes AQL/AQL+ text. `//` and non-hint `/* */` comments are skipped;
/// `/*+ ... */` hints become kHint tokens.
Result<std::vector<Token>> Lex(std::string_view text);

}  // namespace simdb::aql

#endif  // SIMDB_AQL_LEXER_H_
