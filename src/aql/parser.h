#ifndef SIMDB_AQL_PARSER_H_
#define SIMDB_AQL_PARSER_H_

#include <string_view>

#include "aql/ast.h"
#include "common/result.h"

namespace simdb::aql {

/// Parses a full AQL/AQL+ program: statements separated by ';' with an
/// optional trailing query expression.
Result<Program> ParseProgram(std::string_view text);

/// Parses a single expression (usually a FLWOR subquery); used by the AQL+
/// framework to compile rewrite templates during optimization.
Result<AExprPtr> ParseExpression(std::string_view text);

}  // namespace simdb::aql

#endif  // SIMDB_AQL_PARSER_H_
