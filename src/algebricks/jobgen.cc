#include "algebricks/jobgen.h"

#include <set>

#include "hyracks/ops_basic.h"
#include "hyracks/ops_exchange.h"
#include "hyracks/ops_group.h"
#include "hyracks/ops_join.h"
#include "hyracks/ops_scan.h"

namespace simdb::algebricks {

using hyracks::AggSpec;
using hyracks::ExprPtr;
using hyracks::RowSchema;

Result<ExprPtr> CompileLExpr(const LExprPtr& expr,
                             const std::map<std::string, int>& vars) {
  if (expr == nullptr) return Status::PlanError("null expression");
  switch (expr->kind) {
    case LExpr::Kind::kVar: {
      auto it = vars.find(expr->name);
      if (it == vars.end()) {
        return Status::PlanError("unbound variable $" + expr->name);
      }
      return hyracks::Col(it->second, expr->name);
    }
    case LExpr::Kind::kLiteral:
      return hyracks::Lit(expr->literal);
    case LExpr::Kind::kField: {
      SIMDB_ASSIGN_OR_RETURN(ExprPtr base, CompileLExpr(expr->children[0], vars));
      return ExprPtr(
          std::make_shared<hyracks::FieldAccessExpr>(base, expr->name));
    }
    case LExpr::Kind::kCall: {
      std::vector<ExprPtr> args;
      args.reserve(expr->children.size());
      for (const LExprPtr& c : expr->children) {
        SIMDB_ASSIGN_OR_RETURN(ExprPtr a, CompileLExpr(c, vars));
        args.push_back(std::move(a));
      }
      // `count` over a list value is its length at the expression level.
      std::string fn = expr->name == "count" ? "len" : expr->name;
      return hyracks::Call(std::move(fn), std::move(args));
    }
    case LExpr::Kind::kRecord: {
      std::vector<ExprPtr> values;
      for (const LExprPtr& c : expr->children) {
        SIMDB_ASSIGN_OR_RETURN(ExprPtr v, CompileLExpr(c, vars));
        values.push_back(std::move(v));
      }
      return ExprPtr(std::make_shared<hyracks::RecordConstructorExpr>(
          expr->field_names, std::move(values)));
    }
    case LExpr::Kind::kList: {
      std::vector<ExprPtr> items;
      for (const LExprPtr& c : expr->children) {
        SIMDB_ASSIGN_OR_RETURN(ExprPtr v, CompileLExpr(c, vars));
        items.push_back(std::move(v));
      }
      return ExprPtr(
          std::make_shared<hyracks::ListConstructorExpr>(std::move(items)));
    }
  }
  return Status::Internal("unreachable expr kind");
}

Result<adm::Value> EvaluateConstant(const LExprPtr& expr) {
  SIMDB_ASSIGN_OR_RETURN(ExprPtr compiled, CompileLExpr(expr, {}));
  return compiled->Eval(hyracks::Tuple{});
}

Result<ExprPtr> JobGenerator::CompileExpr(
    const LExprPtr& expr, const std::map<std::string, int>& vars) {
  return CompileLExpr(expr, vars);
}

RowSchema JobGenerator::SchemaOf(const Compiled& c) const {
  std::vector<std::string> cols(static_cast<size_t>(c.width));
  for (size_t i = 0; i < cols.size(); ++i) cols[i] = "_c" + std::to_string(i);
  for (const auto& [name, col] : c.vars) {
    cols[static_cast<size_t>(col)] = name;
  }
  return RowSchema(std::move(cols));
}

Result<std::vector<int>> JobGenerator::MaterializeColumns(
    Compiled* plan, const std::vector<LExprPtr>& exprs,
    const std::string& label) {
  std::vector<int> cols(exprs.size(), -1);
  std::vector<ExprPtr> to_assign;
  std::vector<size_t> assign_positions;
  for (size_t i = 0; i < exprs.size(); ++i) {
    if (exprs[i]->kind == LExpr::Kind::kVar) {
      auto it = plan->vars.find(exprs[i]->name);
      if (it != plan->vars.end()) {
        cols[i] = it->second;
        continue;
      }
    }
    SIMDB_ASSIGN_OR_RETURN(ExprPtr compiled, CompileExpr(exprs[i], plan->vars));
    to_assign.push_back(std::move(compiled));
    assign_positions.push_back(i);
  }
  if (!to_assign.empty()) {
    std::vector<std::string> names;
    for (size_t i = 0; i < to_assign.size(); ++i) {
      names.push_back("_" + label + std::to_string(i));
    }
    int base = plan->width;
    // Widen before attaching the schema: the assign node's declared schema
    // must include the columns it appends.
    plan->width = base + static_cast<int>(assign_positions.size());
    plan->node = job_.Add(
        std::make_unique<hyracks::AssignOp>(std::move(to_assign), names),
        {plan->node}, SchemaOf(*plan));
    for (size_t i = 0; i < assign_positions.size(); ++i) {
      cols[assign_positions[i]] = base + static_cast<int>(i);
    }
  }
  return cols;
}

Result<JobGenerator::Compiled> JobGenerator::CompileJoin(const LOpPtr& op) {
  SIMDB_ASSIGN_OR_RETURN(Compiled left, Compile(op->inputs[0]));
  SIMDB_ASSIGN_OR_RETURN(Compiled right, Compile(op->inputs[1]));

  std::set<std::string> left_vars, right_vars;
  for (const auto& [v, c] : left.vars) {
    (void)c;
    left_vars.insert(v);
  }
  for (const auto& [v, c] : right.vars) {
    (void)c;
    right_vars.insert(v);
  }

  // Classify conjuncts into equi pairs and residual conditions.
  std::vector<LExprPtr> left_keys, right_keys, residual;
  bool bcast = op->join_strategy == JoinStrategy::kBroadcastHash ||
               op->join_strategy == JoinStrategy::kBroadcastNl;
  for (const LExprPtr& c : SplitConjuncts(op->expr)) {
    if (c->kind == LExpr::Kind::kLiteral && c->literal.is_boolean() &&
        c->literal.AsBoolean()) {
      continue;
    }
    if (c->bcast_hint) bcast = true;
    bool is_equi = false;
    if (c->kind == LExpr::Kind::kCall && c->name == "eq" &&
        c->children.size() == 2) {
      const LExprPtr& a = c->children[0];
      const LExprPtr& b = c->children[1];
      std::set<std::string> va, vb;
      a->CollectVars(&va);
      b->CollectVars(&vb);
      auto subset = [](const std::set<std::string>& s,
                       const std::set<std::string>& of) {
        for (const std::string& v : s) {
          if (of.count(v) == 0) return false;
        }
        return !s.empty();
      };
      if (subset(va, left_vars) && subset(vb, right_vars)) {
        left_keys.push_back(a);
        right_keys.push_back(b);
        is_equi = true;
      } else if (subset(vb, left_vars) && subset(va, right_vars)) {
        left_keys.push_back(b);
        right_keys.push_back(a);
        is_equi = true;
      }
    }
    if (!is_equi) residual.push_back(c);
  }

  bool nested_loop =
      left_keys.empty() || op->join_strategy == JoinStrategy::kBroadcastNl;

  if (nested_loop) {
    // Broadcast the right side and run a local theta join.
    right.node = job_.Add(std::make_unique<hyracks::BroadcastExchangeOp>(),
                          {right.node}, SchemaOf(right));
    Compiled out;
    out.width = left.width + right.width;
    out.vars = left.vars;
    for (const auto& [v, c] : right.vars) out.vars[v] = left.width + c;
    std::vector<LExprPtr> all = left_keys.empty()
                                    ? residual
                                    : SplitConjuncts(op->expr);
    LExprPtr cond = CombineConjuncts(std::move(all));
    SIMDB_ASSIGN_OR_RETURN(ExprPtr pred, CompileExpr(cond, out.vars));
    out.node =
        job_.Add(std::make_unique<hyracks::NestedLoopJoinOp>(std::move(pred)),
                 {left.node, right.node}, SchemaOf(out));
    return out;
  }

  SIMDB_ASSIGN_OR_RETURN(std::vector<int> lcols,
                         MaterializeColumns(&left, left_keys, "ljk"));
  SIMDB_ASSIGN_OR_RETURN(std::vector<int> rcols,
                         MaterializeColumns(&right, right_keys, "rjk"));

  if (bcast) {
    right.node = job_.Add(std::make_unique<hyracks::BroadcastExchangeOp>(),
                          {right.node}, SchemaOf(right));
  } else {
    left.node = job_.Add(std::make_unique<hyracks::HashExchangeOp>(lcols),
                         {left.node}, SchemaOf(left));
    right.node = job_.Add(std::make_unique<hyracks::HashExchangeOp>(rcols),
                          {right.node}, SchemaOf(right));
  }

  Compiled out;
  out.width = left.width + right.width;
  out.vars = left.vars;
  for (const auto& [v, c] : right.vars) out.vars[v] = left.width + c;
  ExprPtr residual_pred;
  if (!residual.empty()) {
    SIMDB_ASSIGN_OR_RETURN(
        residual_pred, CompileExpr(CombineConjuncts(residual), out.vars));
  }
  out.node = job_.Add(
      std::make_unique<hyracks::HashJoinOp>(lcols, rcols, residual_pred),
      {left.node, right.node}, SchemaOf(out));
  return out;
}

Result<JobGenerator::Compiled> JobGenerator::Compile(const LOpPtr& op) {
  auto cached = cache_.find(op.get());
  if (cached != cache_.end()) return cached->second;

  Compiled out;
  switch (op->kind) {
    case LOpKind::kDataScan: {
      out.node = job_.Add(std::make_unique<hyracks::DataScanOp>(op->dataset),
                          {}, RowSchema({op->out_var}));
      out.vars[op->out_var] = 0;
      out.width = 1;
      break;
    }
    case LOpKind::kConstantTuple: {
      out.node = job_.Add(std::make_unique<hyracks::ConstantSourceOp>(
                              hyracks::Rows{hyracks::Tuple{}}),
                          {}, RowSchema());
      out.width = 0;
      break;
    }
    case LOpKind::kSelect: {
      SIMDB_ASSIGN_OR_RETURN(out, Compile(op->inputs[0]));
      SIMDB_ASSIGN_OR_RETURN(ExprPtr pred, CompileExpr(op->expr, out.vars));
      out.node = job_.Add(std::make_unique<hyracks::SelectOp>(std::move(pred)),
                          {out.node}, SchemaOf(out));
      break;
    }
    case LOpKind::kAssign: {
      SIMDB_ASSIGN_OR_RETURN(out, Compile(op->inputs[0]));
      std::vector<ExprPtr> exprs;
      std::vector<std::string> names;
      for (const auto& [name, e] : op->assigns) {
        SIMDB_ASSIGN_OR_RETURN(ExprPtr compiled, CompileExpr(e, out.vars));
        exprs.push_back(std::move(compiled));
        names.push_back(name);
        out.vars[name] = out.width + static_cast<int>(names.size()) - 1;
      }
      int new_width = out.width + static_cast<int>(names.size());
      out.node =
          job_.Add(std::make_unique<hyracks::AssignOp>(std::move(exprs), names),
                   {out.node}, SchemaOf(Compiled{out.node, out.vars, new_width}));
      out.width = new_width;
      break;
    }
    case LOpKind::kJoin: {
      SIMDB_ASSIGN_OR_RETURN(out, CompileJoin(op));
      break;
    }
    case LOpKind::kGroupBy: {
      SIMDB_ASSIGN_OR_RETURN(out, Compile(op->inputs[0]));
      std::vector<LExprPtr> key_exprs;
      for (const auto& [name, e] : op->group_keys) {
        (void)name;
        key_exprs.push_back(e);
      }
      SIMDB_ASSIGN_OR_RETURN(std::vector<int> key_cols,
                             MaterializeColumns(&out, key_exprs, "gk"));
      out.node = job_.Add(std::make_unique<hyracks::HashExchangeOp>(key_cols),
                          {out.node}, SchemaOf(out));
      std::vector<ExprPtr> keys;
      for (size_t i = 0; i < key_cols.size(); ++i) {
        keys.push_back(hyracks::Col(key_cols[i], op->group_keys[i].first));
      }
      std::vector<AggSpec> aggs;
      for (const LAgg& agg : op->group_aggs) {
        AggSpec spec;
        switch (agg.kind) {
          case LAgg::Kind::kListify:
            spec.kind = AggSpec::Kind::kListify;
            break;
          case LAgg::Kind::kCount:
            spec.kind = AggSpec::Kind::kCount;
            break;
          case LAgg::Kind::kSum:
            spec.kind = AggSpec::Kind::kSum;
            break;
          case LAgg::Kind::kMin:
            spec.kind = AggSpec::Kind::kMin;
            break;
          case LAgg::Kind::kMax:
            spec.kind = AggSpec::Kind::kMax;
            break;
          case LAgg::Kind::kFirst:
            spec.kind = AggSpec::Kind::kFirst;
            break;
        }
        if (agg.input != nullptr) {
          SIMDB_ASSIGN_OR_RETURN(spec.input, CompileExpr(agg.input, out.vars));
        }
        spec.out_name = agg.out_var;
        aggs.push_back(std::move(spec));
      }
      Compiled grouped;
      int col = 0;
      for (const auto& [name, e] : op->group_keys) {
        (void)e;
        grouped.vars[name] = col++;
      }
      for (const LAgg& agg : op->group_aggs) grouped.vars[agg.out_var] = col++;
      grouped.width = col;
      grouped.node = job_.Add(
          std::make_unique<hyracks::HashGroupOp>(std::move(keys), std::move(aggs)),
          {out.node}, SchemaOf(grouped));
      out = grouped;
      break;
    }
    case LOpKind::kOrderBy:
    case LOpKind::kLocalSort: {
      SIMDB_ASSIGN_OR_RETURN(out, Compile(op->inputs[0]));
      std::vector<LExprPtr> key_exprs;
      for (const LSortKey& k : op->sort_keys) key_exprs.push_back(k.expr);
      SIMDB_ASSIGN_OR_RETURN(std::vector<int> cols,
                             MaterializeColumns(&out, key_exprs, "sk"));
      std::vector<hyracks::SortKey> keys;
      for (size_t i = 0; i < cols.size(); ++i) {
        keys.push_back({cols[i], op->sort_keys[i].ascending});
      }
      out.node = job_.Add(std::make_unique<hyracks::SortOp>(keys), {out.node},
                          SchemaOf(out));
      if (op->kind == LOpKind::kOrderBy) {
        out.node = job_.Add(std::make_unique<hyracks::MergeGatherOp>(keys),
                            {out.node}, SchemaOf(out));
      }
      break;
    }
    case LOpKind::kUnnest: {
      SIMDB_ASSIGN_OR_RETURN(out, Compile(op->inputs[0]));
      SIMDB_ASSIGN_OR_RETURN(ExprPtr list, CompileExpr(op->expr, out.vars));
      bool with_pos = !op->pos_var.empty();
      out.vars[op->out_var] = out.width;
      if (with_pos) out.vars[op->pos_var] = out.width + 1;
      out.width += with_pos ? 2 : 1;
      out.node =
          job_.Add(std::make_unique<hyracks::UnnestOp>(std::move(list), with_pos),
                   {out.node}, SchemaOf(out));
      break;
    }
    case LOpKind::kRank: {
      SIMDB_ASSIGN_OR_RETURN(out, Compile(op->inputs[0]));
      out.vars[op->pos_var] = out.width;
      out.width += 1;
      out.node = job_.Add(std::make_unique<hyracks::RankAssignOp>(/*start=*/1),
                          {out.node}, SchemaOf(out));
      break;
    }
    case LOpKind::kProject: {
      SIMDB_ASSIGN_OR_RETURN(out, Compile(op->inputs[0]));
      std::vector<int> keep;
      Compiled projected;
      for (const std::string& v : op->project_vars) {
        auto it = out.vars.find(v);
        if (it == out.vars.end()) {
          return Status::PlanError("project of unbound variable $" + v);
        }
        projected.vars[v] = static_cast<int>(keep.size());
        keep.push_back(it->second);
      }
      projected.width = static_cast<int>(keep.size());
      projected.node = job_.Add(std::make_unique<hyracks::ProjectOp>(keep),
                                {out.node}, SchemaOf(projected));
      out = projected;
      break;
    }
    case LOpKind::kLimit: {
      SIMDB_ASSIGN_OR_RETURN(out, Compile(op->inputs[0]));
      out.node = job_.Add(std::make_unique<hyracks::LimitOp>(op->limit),
                          {out.node}, SchemaOf(out));
      break;
    }
    case LOpKind::kUnionAll: {
      SIMDB_ASSIGN_OR_RETURN(Compiled left, Compile(op->inputs[0]));
      SIMDB_ASSIGN_OR_RETURN(Compiled right, Compile(op->inputs[1]));
      auto project_side = [&](Compiled& side) -> Status {
        std::vector<int> keep;
        for (const std::string& v : op->project_vars) {
          auto it = side.vars.find(v);
          if (it == side.vars.end()) {
            return Status::PlanError("union branch missing variable $" + v);
          }
          keep.push_back(it->second);
        }
        Compiled projected;
        for (size_t i = 0; i < op->project_vars.size(); ++i) {
          projected.vars[op->project_vars[i]] = static_cast<int>(i);
        }
        projected.width = static_cast<int>(keep.size());
        projected.node = job_.Add(std::make_unique<hyracks::ProjectOp>(keep),
                                  {side.node}, SchemaOf(projected));
        side = projected;
        return Status::OK();
      };
      SIMDB_RETURN_IF_ERROR(project_side(left));
      SIMDB_RETURN_IF_ERROR(project_side(right));
      out = left;
      out.node = job_.Add(std::make_unique<hyracks::UnionAllOp>(),
                          {left.node, right.node}, SchemaOf(out));
      break;
    }
    case LOpKind::kIndexSearch: {
      SIMDB_ASSIGN_OR_RETURN(out, Compile(op->inputs[0]));
      out.node = job_.Add(std::make_unique<hyracks::BroadcastExchangeOp>(),
                          {out.node}, SchemaOf(out));
      SIMDB_ASSIGN_OR_RETURN(ExprPtr key, CompileExpr(op->expr, out.vars));
      out.vars[op->pk_var] = out.width;
      out.width += 1;
      out.node = job_.Add(std::make_unique<hyracks::InvertedIndexSearchOp>(
                              op->dataset, op->index_name, std::move(key),
                              op->sim_spec),
                          {out.node}, SchemaOf(out));
      break;
    }
    case LOpKind::kBtreeSearch: {
      SIMDB_ASSIGN_OR_RETURN(out, Compile(op->inputs[0]));
      out.node = job_.Add(std::make_unique<hyracks::BroadcastExchangeOp>(),
                          {out.node}, SchemaOf(out));
      SIMDB_ASSIGN_OR_RETURN(ExprPtr key, CompileExpr(op->expr, out.vars));
      out.vars[op->pk_var] = out.width;
      out.width += 1;
      out.node = job_.Add(std::make_unique<hyracks::BtreeSearchOp>(
                              op->dataset, op->index_name, std::move(key)),
                          {out.node}, SchemaOf(out));
      break;
    }
    case LOpKind::kPrimaryLookup: {
      SIMDB_ASSIGN_OR_RETURN(out, Compile(op->inputs[0]));
      auto it = out.vars.find(op->pk_var);
      if (it == out.vars.end()) {
        return Status::PlanError("primary lookup of unbound pk $" + op->pk_var);
      }
      int pk_col = it->second;
      out.vars[op->out_var] = out.width;
      out.width += 1;
      out.node = job_.Add(
          std::make_unique<hyracks::PrimaryLookupOp>(op->dataset, pk_col),
          {out.node}, SchemaOf(out));
      break;
    }
  }
  cache_[op.get()] = out;
  return out;
}

Status JobGenerator::Generate(const LOpPtr& root, hyracks::Job* out_job) {
  job_ = hyracks::Job();
  cache_.clear();
  SIMDB_ASSIGN_OR_RETURN(Compiled root_compiled, Compile(root));
  job_.Add(std::make_unique<hyracks::GatherOp>(), {root_compiled.node},
           SchemaOf(root_compiled));
  *out_job = std::move(job_);
  return Status::OK();
}

}  // namespace simdb::algebricks
