#include "algebricks/lop.h"

#include <algorithm>

namespace simdb::algebricks {

std::string_view LOpKindToString(LOpKind kind) {
  switch (kind) {
    case LOpKind::kDataScan:
      return "DATA-SCAN";
    case LOpKind::kSelect:
      return "SELECT";
    case LOpKind::kAssign:
      return "ASSIGN";
    case LOpKind::kJoin:
      return "JOIN";
    case LOpKind::kGroupBy:
      return "GROUP-BY";
    case LOpKind::kOrderBy:
      return "ORDER-BY";
    case LOpKind::kUnnest:
      return "UNNEST";
    case LOpKind::kProject:
      return "PROJECT";
    case LOpKind::kLimit:
      return "LIMIT";
    case LOpKind::kUnionAll:
      return "UNION-ALL";
    case LOpKind::kRank:
      return "RANK";
    case LOpKind::kConstantTuple:
      return "CONSTANT-TUPLE";
    case LOpKind::kIndexSearch:
      return "INDEX-SEARCH";
    case LOpKind::kBtreeSearch:
      return "BTREE-SEARCH";
    case LOpKind::kPrimaryLookup:
      return "PRIMARY-LOOKUP";
    case LOpKind::kLocalSort:
      return "LOCAL-SORT";
  }
  return "?";
}

Result<std::vector<std::string>> LOp::OutputVars() const {
  auto input_vars = [this](size_t i) -> Result<std::vector<std::string>> {
    if (i >= inputs.size()) return Status::PlanError("missing input");
    return inputs[i]->OutputVars();
  };
  switch (kind) {
    case LOpKind::kDataScan:
      return std::vector<std::string>{out_var};
    case LOpKind::kConstantTuple:
      return std::vector<std::string>{};
    case LOpKind::kSelect:
    case LOpKind::kOrderBy:
    case LOpKind::kLocalSort:
    case LOpKind::kLimit:
      return input_vars(0);
    case LOpKind::kAssign: {
      SIMDB_ASSIGN_OR_RETURN(std::vector<std::string> vars, input_vars(0));
      for (const auto& [name, e] : assigns) {
        (void)e;
        vars.push_back(name);
      }
      return vars;
    }
    case LOpKind::kJoin: {
      SIMDB_ASSIGN_OR_RETURN(std::vector<std::string> vars, input_vars(0));
      SIMDB_ASSIGN_OR_RETURN(std::vector<std::string> right, input_vars(1));
      vars.insert(vars.end(), right.begin(), right.end());
      return vars;
    }
    case LOpKind::kGroupBy: {
      std::vector<std::string> vars;
      for (const auto& [name, e] : group_keys) {
        (void)e;
        vars.push_back(name);
      }
      for (const LAgg& agg : group_aggs) vars.push_back(agg.out_var);
      return vars;
    }
    case LOpKind::kUnnest: {
      SIMDB_ASSIGN_OR_RETURN(std::vector<std::string> vars, input_vars(0));
      vars.push_back(out_var);
      if (!pos_var.empty()) vars.push_back(pos_var);
      return vars;
    }
    case LOpKind::kRank: {
      SIMDB_ASSIGN_OR_RETURN(std::vector<std::string> vars, input_vars(0));
      vars.push_back(pos_var);
      return vars;
    }
    case LOpKind::kProject:
    case LOpKind::kUnionAll:
      return project_vars;
    case LOpKind::kIndexSearch:
    case LOpKind::kBtreeSearch: {
      SIMDB_ASSIGN_OR_RETURN(std::vector<std::string> vars, input_vars(0));
      vars.push_back(pk_var);
      return vars;
    }
    case LOpKind::kPrimaryLookup: {
      SIMDB_ASSIGN_OR_RETURN(std::vector<std::string> vars, input_vars(0));
      vars.push_back(out_var);
      return vars;
    }
  }
  return Status::Internal("unreachable LOp kind");
}

std::string LOp::ToString(int indent) const {
  std::string pad(static_cast<size_t>(indent) * 2, ' ');
  std::string out = pad + std::string(LOpKindToString(kind));
  switch (kind) {
    case LOpKind::kDataScan:
      out += " " + dataset + " -> $" + out_var;
      break;
    case LOpKind::kSelect:
    case LOpKind::kJoin:
      if (expr) out += " cond=" + expr->ToString();
      if (kind == LOpKind::kJoin &&
          join_strategy == JoinStrategy::kBroadcastHash) {
        out += " [bcast]";
      }
      break;
    case LOpKind::kAssign:
      for (const auto& [name, e] : assigns) {
        out += " $" + name + ":=" + e->ToString();
      }
      break;
    case LOpKind::kGroupBy:
      for (const auto& [name, e] : group_keys) {
        out += " $" + name + ":=" + e->ToString();
      }
      for (const LAgg& agg : group_aggs) {
        out += " agg($" + agg.out_var + ")";
      }
      break;
    case LOpKind::kUnnest:
      out += " " + expr->ToString() + " -> $" + out_var;
      if (!pos_var.empty()) out += " at $" + pos_var;
      break;
    case LOpKind::kIndexSearch:
    case LOpKind::kBtreeSearch:
      out += " " + dataset + "." + index_name + " key=" + expr->ToString() +
             " -> $" + pk_var;
      break;
    case LOpKind::kPrimaryLookup:
      out += " " + dataset + " $" + pk_var + " -> $" + out_var;
      break;
    case LOpKind::kProject:
    case LOpKind::kUnionAll:
      for (const std::string& v : project_vars) out += " $" + v;
      break;
    default:
      break;
  }
  out += "\n";
  for (const LOpPtr& in : inputs) out += in->ToString(indent + 1);
  return out;
}

namespace {

LOpPtr MakeNode(LOpKind kind, std::vector<LOpPtr> inputs) {
  auto op = std::make_shared<LOp>();
  op->kind = kind;
  op->inputs = std::move(inputs);
  return op;
}

}  // namespace

LOpPtr MakeDataScan(std::string dataset, std::string var) {
  LOpPtr op = MakeNode(LOpKind::kDataScan, {});
  op->dataset = std::move(dataset);
  op->out_var = std::move(var);
  return op;
}

LOpPtr MakeSelect(LOpPtr input, LExprPtr cond) {
  LOpPtr op = MakeNode(LOpKind::kSelect, {std::move(input)});
  op->expr = std::move(cond);
  return op;
}

LOpPtr MakeAssign(LOpPtr input,
                  std::vector<std::pair<std::string, LExprPtr>> assigns) {
  LOpPtr op = MakeNode(LOpKind::kAssign, {std::move(input)});
  op->assigns = std::move(assigns);
  return op;
}

LOpPtr MakeJoin(LOpPtr left, LOpPtr right, LExprPtr cond,
                JoinStrategy strategy) {
  LOpPtr op = MakeNode(LOpKind::kJoin, {std::move(left), std::move(right)});
  op->expr = std::move(cond);
  op->join_strategy = strategy;
  return op;
}

LOpPtr MakeGroupBy(LOpPtr input,
                   std::vector<std::pair<std::string, LExprPtr>> keys,
                   std::vector<LAgg> aggs) {
  LOpPtr op = MakeNode(LOpKind::kGroupBy, {std::move(input)});
  op->group_keys = std::move(keys);
  op->group_aggs = std::move(aggs);
  return op;
}

LOpPtr MakeOrderBy(LOpPtr input, std::vector<LSortKey> keys) {
  LOpPtr op = MakeNode(LOpKind::kOrderBy, {std::move(input)});
  op->sort_keys = std::move(keys);
  return op;
}

LOpPtr MakeUnnest(LOpPtr input, LExprPtr list, std::string var,
                  std::string pos_var) {
  LOpPtr op = MakeNode(LOpKind::kUnnest, {std::move(input)});
  op->expr = std::move(list);
  op->out_var = std::move(var);
  op->pos_var = std::move(pos_var);
  return op;
}

LOpPtr MakeProject(LOpPtr input, std::vector<std::string> vars) {
  LOpPtr op = MakeNode(LOpKind::kProject, {std::move(input)});
  op->project_vars = std::move(vars);
  return op;
}

LOpPtr MakeLimit(LOpPtr input, int64_t limit) {
  LOpPtr op = MakeNode(LOpKind::kLimit, {std::move(input)});
  op->limit = limit;
  return op;
}

LOpPtr MakeUnionAll(LOpPtr left, LOpPtr right, std::vector<std::string> vars) {
  LOpPtr op = MakeNode(LOpKind::kUnionAll, {std::move(left), std::move(right)});
  op->project_vars = std::move(vars);
  return op;
}

LOpPtr MakeRank(LOpPtr input, std::string pos_var) {
  LOpPtr op = MakeNode(LOpKind::kRank, {std::move(input)});
  op->pos_var = std::move(pos_var);
  return op;
}

LOpPtr MakeConstantTuple() { return MakeNode(LOpKind::kConstantTuple, {}); }

LOpPtr MakeIndexSearch(LOpPtr input, std::string dataset, std::string index,
                       LExprPtr key, hyracks::SimSearchSpec spec,
                       std::string pk_var) {
  LOpPtr op = MakeNode(LOpKind::kIndexSearch, {std::move(input)});
  op->dataset = std::move(dataset);
  op->index_name = std::move(index);
  op->expr = std::move(key);
  op->sim_spec = spec;
  op->pk_var = std::move(pk_var);
  return op;
}

LOpPtr MakePrimaryLookup(LOpPtr input, std::string dataset, std::string pk_var,
                         std::string record_var) {
  LOpPtr op = MakeNode(LOpKind::kPrimaryLookup, {std::move(input)});
  op->dataset = std::move(dataset);
  op->pk_var = std::move(pk_var);
  op->out_var = std::move(record_var);
  return op;
}

LOpPtr MakeBtreeSearch(LOpPtr input, std::string dataset, std::string index,
                       LExprPtr key, std::string pk_var) {
  LOpPtr op = MakeNode(LOpKind::kBtreeSearch, {std::move(input)});
  op->dataset = std::move(dataset);
  op->index_name = std::move(index);
  op->expr = std::move(key);
  op->pk_var = std::move(pk_var);
  return op;
}

LOpPtr MakeLocalSort(LOpPtr input, std::vector<LSortKey> keys) {
  LOpPtr op = MakeNode(LOpKind::kLocalSort, {std::move(input)});
  op->sort_keys = std::move(keys);
  return op;
}

LOpPtr CloneTree(const LOpPtr& op) {
  if (op == nullptr) return nullptr;
  auto copy = std::make_shared<LOp>(*op);
  for (LOpPtr& input : copy->inputs) input = CloneTree(input);
  return copy;
}

}  // namespace simdb::algebricks
