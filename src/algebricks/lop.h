#ifndef SIMDB_ALGEBRICKS_LOP_H_
#define SIMDB_ALGEBRICKS_LOP_H_

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "algebricks/lexpr.h"
#include "common/result.h"
#include "hyracks/ops_index.h"

namespace simdb::algebricks {

/// Logical operator kinds. The first group comes from query translation; the
/// index-access kinds are introduced by optimizer rewrite rules (paper
/// Section 5.1).
enum class LOpKind {
  kDataScan,       // dataset primary-index scan, binds out_var to the record
  kSelect,         // filter by expr
  kAssign,         // bind new vars to expressions
  kJoin,           // binary join with condition (inputs[0]=outer/left)
  kGroupBy,        // hash group-by with aggregates
  kOrderBy,        // global order (gathers to one partition)
  kUnnest,         // iterate a list expr, binds out_var (and maybe pos_var)
  kProject,        // restrict live variables
  kLimit,          // cap row count
  kUnionAll,       // bag union of two inputs over union_vars
  kRank,           // bind 1-based position over a gathered ordered input
  kConstantTuple,  // single empty tuple (source for constant index searches)
  kIndexSearch,    // inverted-index T-occurrence search, binds pk_var
  kBtreeSearch,    // exact-match secondary B+-tree search, binds pk_var
  kPrimaryLookup,  // pk -> record lookup, binds out_var
  kLocalSort,      // per-partition sort (e.g. pks before primary lookup)
};

std::string_view LOpKindToString(LOpKind kind);

struct LOp;
using LOpPtr = std::shared_ptr<LOp>;

/// One aggregate of a kGroupBy.
struct LAgg {
  enum class Kind { kListify, kCount, kSum, kMin, kMax, kFirst };
  Kind kind = Kind::kListify;
  LExprPtr input;  // null for kCount
  std::string out_var;
};

struct LSortKey {
  LExprPtr expr;
  bool ascending = true;
};

/// How a kJoin should be executed; decided by hints and rules, consumed by
/// the job generator.
enum class JoinStrategy {
  kAuto,           // hash join when equi keys exist, else broadcast NL
  kBroadcastHash,  // broadcast the right input, local hash join
  kBroadcastNl,    // broadcast the right input, local NL join
};

/// A logical operator node. Sharing an LOpPtr between two parents expresses
/// the materialize/reuse pattern (paper Figure 20): the job generator emits
/// the shared subplan once.
struct LOp {
  LOpKind kind;
  std::vector<LOpPtr> inputs;

  // kDataScan: dataset + record var. kPrimaryLookup: dataset + record var.
  std::string dataset;
  std::string out_var;
  std::string pos_var;  // kUnnest / kRank position variable (may be empty)

  LExprPtr expr;  // kSelect/kJoin condition, kUnnest list, kIndexSearch key

  std::vector<std::pair<std::string, LExprPtr>> assigns;  // kAssign

  std::vector<std::pair<std::string, LExprPtr>> group_keys;  // kGroupBy
  std::vector<LAgg> group_aggs;

  std::vector<LSortKey> sort_keys;  // kOrderBy / kLocalSort

  std::vector<std::string> project_vars;  // kProject / kUnionAll schema
  int64_t limit = 0;

  JoinStrategy join_strategy = JoinStrategy::kAuto;

  // kIndexSearch parameters.
  std::string index_name;
  hyracks::SimSearchSpec sim_spec;
  std::string pk_var;  // kIndexSearch output / kPrimaryLookup input

  /// Variables visible in this node's output.
  Result<std::vector<std::string>> OutputVars() const;

  std::string ToString(int indent = 0) const;
};

// ---- constructors ----
LOpPtr MakeDataScan(std::string dataset, std::string var);
LOpPtr MakeSelect(LOpPtr input, LExprPtr cond);
LOpPtr MakeAssign(LOpPtr input,
                  std::vector<std::pair<std::string, LExprPtr>> assigns);
LOpPtr MakeJoin(LOpPtr left, LOpPtr right, LExprPtr cond,
                JoinStrategy strategy = JoinStrategy::kAuto);
LOpPtr MakeGroupBy(LOpPtr input,
                   std::vector<std::pair<std::string, LExprPtr>> keys,
                   std::vector<LAgg> aggs);
LOpPtr MakeOrderBy(LOpPtr input, std::vector<LSortKey> keys);
LOpPtr MakeUnnest(LOpPtr input, LExprPtr list, std::string var,
                  std::string pos_var = "");
LOpPtr MakeProject(LOpPtr input, std::vector<std::string> vars);
LOpPtr MakeLimit(LOpPtr input, int64_t limit);
LOpPtr MakeUnionAll(LOpPtr left, LOpPtr right, std::vector<std::string> vars);
LOpPtr MakeRank(LOpPtr input, std::string pos_var);
LOpPtr MakeConstantTuple();
LOpPtr MakeIndexSearch(LOpPtr input, std::string dataset, std::string index,
                       LExprPtr key, hyracks::SimSearchSpec spec,
                       std::string pk_var);
LOpPtr MakeBtreeSearch(LOpPtr input, std::string dataset, std::string index,
                       LExprPtr key, std::string pk_var);
LOpPtr MakePrimaryLookup(LOpPtr input, std::string dataset, std::string pk_var,
                         std::string record_var);
LOpPtr MakeLocalSort(LOpPtr input, std::vector<LSortKey> keys);

/// Deep-copies a plan tree (shared nodes are duplicated). Used to ablate the
/// materialize/reuse optimization: cloned subtrees compile to independent
/// pipelines instead of one shared, replicated one.
LOpPtr CloneTree(const LOpPtr& op);

}  // namespace simdb::algebricks

#endif  // SIMDB_ALGEBRICKS_LOP_H_
