#include "algebricks/rules.h"

#include <functional>
#include <set>
#include <unordered_map>
#include <unordered_set>

namespace simdb::algebricks {

namespace {

void CollectSharedNodesImpl(const LOpPtr& op,
                            std::unordered_map<const LOp*, int>& parents) {
  for (const LOpPtr& in : op->inputs) {
    if (++parents[in.get()] == 1) CollectSharedNodesImpl(in, parents);
  }
}

/// Depth-first application of `rule` over the DAG hanging off the edge `op`
/// of the plan `root`. After every firing the shared-node set is rebuilt so
/// rules always see current sharing, and the verify hook (if any) re-checks
/// the rule's contract plus full-plan invariants.
Result<bool> ApplyRuleOnce(LOpPtr& op, LOpPtr& root, RewriteRule& rule,
                           OptContext& ctx,
                           std::unordered_set<const LOp*>& visited,
                           std::unordered_set<const LOp*>& shared) {
  bool changed = false;
  if (ctx.check_hook != nullptr) ctx.check_hook->BeforeApply(rule, op, root);
  SIMDB_ASSIGN_OR_RETURN(bool top_changed, rule.Apply(op, ctx));
  if (ctx.check_hook != nullptr) {
    SIMDB_RETURN_IF_ERROR(
        ctx.check_hook->AfterApply(rule, op, root, top_changed));
  }
  if (top_changed) {
    ctx.fired_rules.push_back(rule.name());
    shared = CollectSharedNodes(root);
    changed = true;
  }
  if (visited.insert(op.get()).second) {
    for (LOpPtr& input : op->inputs) {
      SIMDB_ASSIGN_OR_RETURN(
          bool sub, ApplyRuleOnce(input, root, rule, ctx, visited, shared));
      changed = changed || sub;
    }
  }
  return changed;
}

}  // namespace

std::unordered_set<const LOp*> CollectSharedNodes(const LOpPtr& root) {
  std::unordered_map<const LOp*, int> parents;
  CollectSharedNodesImpl(root, parents);
  std::unordered_set<const LOp*> shared;
  for (const auto& [node, count] : parents) {
    if (count > 1) shared.insert(node);
  }
  return shared;
}

Result<bool> ApplyRuleSet(LOpPtr& root, const RuleSet& set, OptContext& ctx) {
  std::unordered_set<const LOp*> shared = CollectSharedNodes(root);
  const std::unordered_set<const LOp*>* prev_shared = ctx.shared_nodes;
  ctx.shared_nodes = &shared;
  auto run = [&]() -> Result<bool> {
    bool any = false;
    for (int pass = 0; pass < set.max_iterations; ++pass) {
      bool changed = false;
      for (const auto& rule : set.rules) {
        std::unordered_set<const LOp*> visited;
        SIMDB_ASSIGN_OR_RETURN(
            bool c, ApplyRuleOnce(root, root, *rule, ctx, visited, shared));
        changed = changed || c;
      }
      any = any || changed;
      if (!changed) break;
    }
    return any;
  };
  Result<bool> result = run();
  ctx.shared_nodes = prev_shared;
  return result;
}

namespace {

class PushSelectIntoJoinRule : public RewriteRule {
 public:
  std::string name() const override { return "push-select-into-join"; }

  RuleContract contract() const override {
    RuleContract c;
    c.may_introduce = {};  // reuses the child join node
    return c;
  }

  Result<bool> Apply(LOpPtr& op, OptContext& ctx) override {
    if (op->kind != LOpKind::kSelect) return false;
    LOpPtr join = op->inputs[0];
    if (join->kind != LOpKind::kJoin) return false;
    // Merging this select's condition changes the join's output, which is
    // wrong for any *other* parent of a shared join (e.g. the gt/le corner
    // selects the index-join rewrite hangs off one reused subplan).
    if (ctx.IsShared(join.get())) return false;
    std::vector<LExprPtr> conjuncts = SplitConjuncts(join->expr);
    std::vector<LExprPtr> extra = SplitConjuncts(op->expr);
    conjuncts.insert(conjuncts.end(), extra.begin(), extra.end());
    // Drop TRUE literals.
    std::vector<LExprPtr> kept;
    for (const LExprPtr& c : conjuncts) {
      if (c->kind == LExpr::Kind::kLiteral && c->literal.is_boolean() &&
          c->literal.AsBoolean()) {
        continue;
      }
      kept.push_back(c);
    }
    join->expr = CombineConjuncts(std::move(kept));
    op = join;
    return true;
  }
};

class PushSelectBelowJoinRule : public RewriteRule {
 public:
  std::string name() const override { return "push-select-below-join"; }

  RuleContract contract() const override {
    RuleContract c;
    c.may_introduce = {LOpKind::kSelect};
    // Pushing its own conjuncts below a join leaves the join's output
    // unchanged, so rewriting a shared join is safe for every parent.
    c.shared_mutation_safe = true;
    return c;
  }

  Result<bool> Apply(LOpPtr& op, OptContext&) override {
    if (op->kind != LOpKind::kJoin) return false;
    SIMDB_ASSIGN_OR_RETURN(std::vector<std::string> lv,
                           op->inputs[0]->OutputVars());
    SIMDB_ASSIGN_OR_RETURN(std::vector<std::string> rv,
                           op->inputs[1]->OutputVars());
    std::set<std::string> left_vars(lv.begin(), lv.end());
    std::set<std::string> right_vars(rv.begin(), rv.end());

    std::vector<LExprPtr> keep, to_left, to_right;
    for (const LExprPtr& c : SplitConjuncts(op->expr)) {
      if (c->kind == LExpr::Kind::kLiteral && c->literal.is_boolean() &&
          c->literal.AsBoolean()) {
        continue;  // TRUE conjunct
      }
      std::set<std::string> used;
      c->CollectVars(&used);
      if (used.empty()) {
        keep.push_back(c);  // constant non-true condition stays on the join
      } else if (c->UsesOnly(left_vars)) {
        to_left.push_back(c);
      } else if (c->UsesOnly(right_vars)) {
        to_right.push_back(c);
      } else {
        keep.push_back(c);
      }
    }
    if (to_left.empty() && to_right.empty()) return false;
    if (!to_left.empty()) {
      op->inputs[0] =
          MakeSelect(op->inputs[0], CombineConjuncts(std::move(to_left)));
    }
    if (!to_right.empty()) {
      op->inputs[1] =
          MakeSelect(op->inputs[1], CombineConjuncts(std::move(to_right)));
    }
    op->expr = CombineConjuncts(std::move(keep));
    return true;
  }
};

class RemoveTrivialSelectRule : public RewriteRule {
 public:
  std::string name() const override { return "remove-trivial-select"; }

  RuleContract contract() const override {
    RuleContract c;
    c.may_introduce = {};  // only unlinks a node
    return c;
  }

  Result<bool> Apply(LOpPtr& op, OptContext&) override {
    if (op->kind != LOpKind::kSelect) return false;
    const LExprPtr& cond = op->expr;
    if (cond->kind == LExpr::Kind::kLiteral && cond->literal.is_boolean() &&
        cond->literal.AsBoolean()) {
      op = op->inputs[0];
      return true;
    }
    return false;
  }
};

// ---- count/listify rewrite ----

/// Walks every expression in the plan, invoking `fn` with a mutable pointer
/// so expressions can be replaced in place.
void ForEachExpr(const LOpPtr& op, std::unordered_set<const LOp*>& visited,
                 const std::function<void(LExprPtr*)>& fn) {
  if (!visited.insert(op.get()).second) return;
  if (op->expr) fn(&op->expr);
  for (auto& [name, e] : op->assigns) {
    (void)name;
    fn(&e);
  }
  for (auto& [name, e] : op->group_keys) {
    (void)name;
    fn(&e);
  }
  for (LAgg& agg : op->group_aggs) {
    if (agg.input) fn(&agg.input);
  }
  for (LSortKey& k : op->sort_keys) fn(&k.expr);
  for (const LOpPtr& in : op->inputs) ForEachExpr(in, visited, fn);
}

/// Counts how often `var` occurs in `expr`, and how many of those occurrences
/// are exactly count($var)/len($var).
void CountUses(const LExprPtr& expr, const std::string& var, int* total,
               int* as_count_arg) {
  if (expr == nullptr) return;
  if (expr->kind == LExpr::Kind::kVar && expr->name == var) {
    ++*total;
    return;
  }
  if (expr->kind == LExpr::Kind::kCall &&
      (expr->name == "count" || expr->name == "len") &&
      expr->children.size() == 1 &&
      expr->children[0]->kind == LExpr::Kind::kVar &&
      expr->children[0]->name == var) {
    ++*total;
    ++*as_count_arg;
    return;
  }
  for (const LExprPtr& c : expr->children) {
    CountUses(c, var, total, as_count_arg);
  }
}

LExprPtr ReplaceCountCalls(const LExprPtr& expr, const std::string& var) {
  if (expr == nullptr) return nullptr;
  if (expr->kind == LExpr::Kind::kCall &&
      (expr->name == "count" || expr->name == "len") &&
      expr->children.size() == 1 &&
      expr->children[0]->kind == LExpr::Kind::kVar &&
      expr->children[0]->name == var) {
    return LExpr::Var(var);
  }
  auto copy = std::make_shared<LExpr>(*expr);
  for (LExprPtr& c : copy->children) c = ReplaceCountCalls(c, var);
  return copy;
}

void CollectGroupBys(const LOpPtr& op, std::unordered_set<const LOp*>& visited,
                     std::vector<LOp*>* out) {
  if (!visited.insert(op.get()).second) return;
  if (op->kind == LOpKind::kGroupBy) out->push_back(op.get());
  for (const LOpPtr& in : op->inputs) CollectGroupBys(in, visited, out);
}

}  // namespace

Result<bool> ApplyCountListifyRewrite(LOpPtr& root, OptContext& ctx) {
  if (!ctx.enable_count_rewrite) return false;
  std::vector<LOp*> group_bys;
  {
    std::unordered_set<const LOp*> visited;
    CollectGroupBys(root, visited, &group_bys);
  }
  bool changed = false;
  for (LOp* gb : group_bys) {
    for (LAgg& agg : gb->group_aggs) {
      if (agg.kind != LAgg::Kind::kListify) continue;
      int total = 0, as_count = 0;
      {
        std::unordered_set<const LOp*> visited;
        ForEachExpr(root, visited, [&](LExprPtr* e) {
          CountUses(*e, agg.out_var, &total, &as_count);
        });
      }
      if (total == 0 || total != as_count) continue;
      // Every use is count($v)/len($v): aggregate a count instead and let
      // the variable itself carry the number.
      agg.kind = LAgg::Kind::kCount;
      agg.input = nullptr;
      {
        std::unordered_set<const LOp*> visited;
        ForEachExpr(root, visited, [&](LExprPtr* e) {
          *e = ReplaceCountCalls(*e, agg.out_var);
        });
      }
      ctx.fired_rules.push_back("count-listify-to-count");
      changed = true;
    }
  }
  if (changed && ctx.check_hook != nullptr) {
    SIMDB_RETURN_IF_ERROR(
        ctx.check_hook->AfterGlobalRewrite("count-listify-to-count", root));
  }
  return changed;
}

std::shared_ptr<RewriteRule> MakePushSelectIntoJoinRule() {
  return std::make_shared<PushSelectIntoJoinRule>();
}

std::shared_ptr<RewriteRule> MakePushSelectBelowJoinRule() {
  return std::make_shared<PushSelectBelowJoinRule>();
}

std::shared_ptr<RewriteRule> MakeRemoveTrivialSelectRule() {
  return std::make_shared<RemoveTrivialSelectRule>();
}

}  // namespace simdb::algebricks
