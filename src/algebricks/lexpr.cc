#include "algebricks/lexpr.h"

namespace simdb::algebricks {

LExprPtr LExpr::Var(std::string name) {
  auto e = std::make_shared<LExpr>();
  e->kind = Kind::kVar;
  e->name = std::move(name);
  return e;
}

LExprPtr LExpr::Lit(adm::Value v) {
  auto e = std::make_shared<LExpr>();
  e->kind = Kind::kLiteral;
  e->literal = std::move(v);
  return e;
}

LExprPtr LExpr::Field(LExprPtr base, std::string field) {
  auto e = std::make_shared<LExpr>();
  e->kind = Kind::kField;
  e->name = std::move(field);
  e->children.push_back(std::move(base));
  return e;
}

LExprPtr LExpr::CallF(std::string fn, std::vector<LExprPtr> args) {
  auto e = std::make_shared<LExpr>();
  e->kind = Kind::kCall;
  e->name = std::move(fn);
  e->children = std::move(args);
  return e;
}

LExprPtr LExpr::Record(std::vector<std::string> names,
                       std::vector<LExprPtr> values) {
  auto e = std::make_shared<LExpr>();
  e->kind = Kind::kRecord;
  e->field_names = std::move(names);
  e->children = std::move(values);
  return e;
}

LExprPtr LExpr::List(std::vector<LExprPtr> items) {
  auto e = std::make_shared<LExpr>();
  e->kind = Kind::kList;
  e->children = std::move(items);
  return e;
}

void LExpr::CollectVars(std::set<std::string>* out) const {
  if (kind == Kind::kVar) out->insert(name);
  for (const LExprPtr& c : children) c->CollectVars(out);
}

bool LExpr::UsesOnly(const std::set<std::string>& vars) const {
  std::set<std::string> used;
  CollectVars(&used);
  for (const std::string& v : used) {
    if (vars.count(v) == 0) return false;
  }
  return true;
}

bool LExpr::UsesAny(const std::set<std::string>& vars) const {
  std::set<std::string> used;
  CollectVars(&used);
  for (const std::string& v : used) {
    if (vars.count(v) > 0) return true;
  }
  return false;
}

std::string LExpr::ToString() const {
  switch (kind) {
    case Kind::kVar:
      return "$" + name;
    case Kind::kLiteral:
      return literal.ToJson();
    case Kind::kField:
      return children[0]->ToString() + "." + name;
    case Kind::kCall: {
      std::string out = name + "(";
      for (size_t i = 0; i < children.size(); ++i) {
        if (i > 0) out += ", ";
        out += children[i]->ToString();
      }
      return out + ")";
    }
    case Kind::kRecord: {
      std::string out = "{";
      for (size_t i = 0; i < children.size(); ++i) {
        if (i > 0) out += ", ";
        out += field_names[i] + ": " + children[i]->ToString();
      }
      return out + "}";
    }
    case Kind::kList: {
      std::string out = "[";
      for (size_t i = 0; i < children.size(); ++i) {
        if (i > 0) out += ", ";
        out += children[i]->ToString();
      }
      return out + "]";
    }
  }
  return "?";
}

namespace {

void SplitInto(const LExprPtr& cond, std::vector<LExprPtr>* out) {
  if (cond->kind == LExpr::Kind::kCall && cond->name == "and") {
    for (const LExprPtr& c : cond->children) SplitInto(c, out);
    return;
  }
  out->push_back(cond);
}

}  // namespace

std::vector<LExprPtr> SplitConjuncts(const LExprPtr& cond) {
  std::vector<LExprPtr> out;
  if (cond != nullptr) SplitInto(cond, &out);
  return out;
}

LExprPtr CombineConjuncts(std::vector<LExprPtr> conjuncts) {
  if (conjuncts.empty()) return LExpr::Lit(adm::Value::Boolean(true));
  if (conjuncts.size() == 1) return conjuncts[0];
  return LExpr::CallF("and", std::move(conjuncts));
}

LExprPtr SubstituteVars(const LExprPtr& expr,
                        const std::map<std::string, LExprPtr>& replacements) {
  if (expr == nullptr) return nullptr;
  if (expr->kind == LExpr::Kind::kVar) {
    auto it = replacements.find(expr->name);
    return it == replacements.end() ? expr : it->second;
  }
  auto copy = std::make_shared<LExpr>(*expr);
  for (LExprPtr& c : copy->children) {
    c = SubstituteVars(c, replacements);
  }
  return copy;
}

}  // namespace simdb::algebricks
