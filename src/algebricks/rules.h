#ifndef SIMDB_ALGEBRICKS_RULES_H_
#define SIMDB_ALGEBRICKS_RULES_H_

#include <memory>
#include <string>
#include <vector>

#include "algebricks/lop.h"
#include "common/result.h"
#include "storage/catalog.h"

namespace simdb::algebricks {

/// Session + engine state visible to rewrite rules. The feature flags allow
/// benchmarks to ablate individual optimizations (paper Section 5.4).
struct OptContext {
  storage::Catalog* catalog = nullptr;

  // `set simfunction` / `set simthreshold` session parameters (paper §3.2).
  std::string sim_function_alias = "jaccard";
  double sim_threshold = 0.5;

  // Optimization feature flags (ablation knobs for paper Section 5.4).
  bool enable_index_select = true;
  bool enable_index_join = true;
  bool enable_three_stage_join = true;
  bool enable_surrogate_join = true;
  bool enable_count_rewrite = true;
  bool enable_subplan_reuse = true;

  /// Names of rules that fired, in order (for explain output and tests).
  std::vector<std::string> fired_rules;

  /// Time spent generating plans through the AQL+ framework (template
  /// instantiation + re-parse + re-translate), for the Section 6.4.1
  /// compile-overhead measurement.
  double aqlplus_seconds = 0;
};

/// A rewrite rule applied node-by-node, top-down. `op` is a reference to the
/// edge pointing at the node, so a rule can replace the whole subtree.
class RewriteRule {
 public:
  virtual ~RewriteRule() = default;
  virtual std::string name() const = 0;
  virtual Result<bool> Apply(LOpPtr& op, OptContext& ctx) = 0;
};

/// An ordered group of rules applied to a fixpoint (bounded by
/// `max_iterations` full passes), mirroring Algebricks' sequential rule sets.
struct RuleSet {
  std::string name;
  std::vector<std::shared_ptr<RewriteRule>> rules;
  int max_iterations = 8;
};

/// Applies one rule set over the whole plan (DAG-aware: shared nodes are
/// visited once per pass). Returns whether anything changed.
Result<bool> ApplyRuleSet(LOpPtr& root, const RuleSet& set, OptContext& ctx);

// ---- generic (non-similarity) rules, as in stock Algebricks ----

/// SELECT over JOIN: merge the selection condition into the join condition.
std::shared_ptr<RewriteRule> MakePushSelectIntoJoinRule();

/// Conjuncts of a JOIN condition that reference only one branch's variables
/// are pushed into a SELECT on that branch.
std::shared_ptr<RewriteRule> MakePushSelectBelowJoinRule();

/// Drops SELECT(true) nodes left behind by other rewrites.
std::shared_ptr<RewriteRule> MakeRemoveTrivialSelectRule();

/// GROUP-BY listify aggregates whose output is only ever used inside
/// count()/len() become count aggregates (the paper's hash-group count path;
/// avoids materializing per-group lists when ranking tokens by frequency).
/// Applied as a whole-plan pass because it needs global variable usage.
Result<bool> ApplyCountListifyRewrite(LOpPtr& root, OptContext& ctx);

}  // namespace simdb::algebricks

#endif  // SIMDB_ALGEBRICKS_RULES_H_
