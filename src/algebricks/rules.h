#ifndef SIMDB_ALGEBRICKS_RULES_H_
#define SIMDB_ALGEBRICKS_RULES_H_

#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "algebricks/lop.h"
#include "common/result.h"
#include "storage/catalog.h"

namespace simdb::algebricks {

class RewriteRule;

/// Machine-checkable contract a rewrite rule declares about itself. In
/// verify mode (`EngineOptions::verify_plans`) a `PlanCheckHook` installed in
/// the `OptContext` re-checks the contract after every application and runs
/// the full plan verifier, reporting the offending rule, the seed plan, and a
/// minimized diff on the first violation.
struct RuleContract {
  /// Every variable visible at the rewritten edge before the rewrite is
  /// still visible after it (as a set; rules may add helper variables).
  bool preserves_output_vars = true;
  /// The rule only rewrites expressions in place: the matched node keeps its
  /// identity, kind, and input wiring.
  bool expression_only = false;
  /// Operator kinds the rewrite may introduce. Kinds already present in the
  /// matched subtree are always allowed.
  std::vector<LOpKind> may_introduce;
  /// The rule consults the catalog and must not fire without one.
  bool needs_catalog = false;
  /// The rule may mutate a node that is shared with another parent (subplan
  /// reuse) because its rewrite is output-equivalent for every parent (e.g.
  /// select pushdown below a join). Rules without this bit must not change
  /// any shared node: the checker compares shared subtrees before/after.
  bool shared_mutation_safe = false;
};

/// Verification callback wrapped around every rule application by
/// `ApplyRuleSet`. Implemented by `analysis::RuleContractChecker`; declared
/// here so algebricks does not depend on the analysis library.
class PlanCheckHook {
 public:
  virtual ~PlanCheckHook() = default;
  /// Called before `rule` attempts the edge `op` of the plan `root`.
  virtual void BeforeApply(const RewriteRule& rule, const LOpPtr& op,
                           const LOpPtr& root) = 0;
  /// Called after the attempt; `fired` says whether the rule reported a
  /// change. A non-OK status aborts optimization with the rule's name and a
  /// plan diff in the message.
  virtual Status AfterApply(const RewriteRule& rule, const LOpPtr& op,
                            const LOpPtr& root, bool fired) = 0;
  /// Called after a whole-plan rewrite (e.g. count-listify) fired.
  virtual Status AfterGlobalRewrite(const std::string& name,
                                    const LOpPtr& root) = 0;
};

/// Session + engine state visible to rewrite rules. The feature flags allow
/// benchmarks to ablate individual optimizations (paper Section 5.4).
struct OptContext {
  storage::Catalog* catalog = nullptr;

  // `set simfunction` / `set simthreshold` session parameters (paper §3.2).
  std::string sim_function_alias = "jaccard";
  double sim_threshold = 0.5;

  // Optimization feature flags (ablation knobs for paper Section 5.4).
  bool enable_index_select = true;
  bool enable_index_join = true;
  bool enable_three_stage_join = true;
  bool enable_surrogate_join = true;
  bool enable_count_rewrite = true;
  bool enable_subplan_reuse = true;

  /// Names of rules that fired, in order (for explain output and tests).
  std::vector<std::string> fired_rules;

  /// Verification hook run around every rule application (verify mode);
  /// null when verification is off.
  PlanCheckHook* check_hook = nullptr;

  /// Nodes with more than one parent in the current plan (subplan reuse),
  /// maintained by `ApplyRuleSet` while a rule set runs. Rules whose rewrite
  /// is not output-equivalent for every parent (e.g. merging an outer
  /// select's condition into a child join) must skip shared nodes.
  const std::unordered_set<const LOp*>* shared_nodes = nullptr;
  bool IsShared(const LOp* node) const {
    return shared_nodes != nullptr && shared_nodes->count(node) > 0;
  }

  /// Time spent generating plans through the AQL+ framework (template
  /// instantiation + re-parse + re-translate), for the Section 6.4.1
  /// compile-overhead measurement.
  double aqlplus_seconds = 0;
};

/// A rewrite rule applied node-by-node, top-down. `op` is a reference to the
/// edge pointing at the node, so a rule can replace the whole subtree.
class RewriteRule {
 public:
  virtual ~RewriteRule() = default;
  virtual std::string name() const = 0;
  virtual Result<bool> Apply(LOpPtr& op, OptContext& ctx) = 0;
  /// The contract this rule promises to uphold (checked in verify mode).
  virtual RuleContract contract() const { return {}; }
};

/// Computes the set of nodes reachable from `root` through more than one
/// parent edge (shared subplans).
std::unordered_set<const LOp*> CollectSharedNodes(const LOpPtr& root);

/// An ordered group of rules applied to a fixpoint (bounded by
/// `max_iterations` full passes), mirroring Algebricks' sequential rule sets.
struct RuleSet {
  std::string name;
  std::vector<std::shared_ptr<RewriteRule>> rules;
  int max_iterations = 8;
};

/// Applies one rule set over the whole plan (DAG-aware: shared nodes are
/// visited once per pass). Returns whether anything changed.
Result<bool> ApplyRuleSet(LOpPtr& root, const RuleSet& set, OptContext& ctx);

// ---- generic (non-similarity) rules, as in stock Algebricks ----

/// SELECT over JOIN: merge the selection condition into the join condition.
std::shared_ptr<RewriteRule> MakePushSelectIntoJoinRule();

/// Conjuncts of a JOIN condition that reference only one branch's variables
/// are pushed into a SELECT on that branch.
std::shared_ptr<RewriteRule> MakePushSelectBelowJoinRule();

/// Drops SELECT(true) nodes left behind by other rewrites.
std::shared_ptr<RewriteRule> MakeRemoveTrivialSelectRule();

/// GROUP-BY listify aggregates whose output is only ever used inside
/// count()/len() become count aggregates (the paper's hash-group count path;
/// avoids materializing per-group lists when ranking tokens by frequency).
/// Applied as a whole-plan pass because it needs global variable usage.
Result<bool> ApplyCountListifyRewrite(LOpPtr& root, OptContext& ctx);

}  // namespace simdb::algebricks

#endif  // SIMDB_ALGEBRICKS_RULES_H_
