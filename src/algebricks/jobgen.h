#ifndef SIMDB_ALGEBRICKS_JOBGEN_H_
#define SIMDB_ALGEBRICKS_JOBGEN_H_

#include <map>
#include <string>
#include <unordered_map>

#include "algebricks/lop.h"
#include "common/result.h"
#include "hyracks/exec.h"
#include "hyracks/expr.h"

namespace simdb::algebricks {

/// Compiles a logical expression against a variable -> column mapping.
Result<hyracks::ExprPtr> CompileLExpr(const LExprPtr& expr,
                                      const std::map<std::string, int>& vars);

/// Evaluates a variable-free logical expression at plan time (used for
/// compile-time constant analysis, e.g. the edit-distance corner-case check
/// of paper Section 5.1.1).
Result<adm::Value> EvaluateConstant(const LExprPtr& expr);

/// Lowers an optimized logical plan into a hyracks Job: picks physical
/// operators, inserts exchange connectors (hash repartition / broadcast /
/// merge), compiles variable-based expressions to positional ones, and shares
/// the compiled form of LOp nodes referenced by several parents (REPLICATE /
/// materialize-reuse, paper Figure 20).
class JobGenerator {
 public:
  /// Compiles `root`; the job's final node gathers results at partition 0
  /// (the coordinator). On success the job is moved into `*out`.
  Status Generate(const LOpPtr& root, hyracks::Job* out);

 private:
  /// A compiled subplan: its job node plus the var -> column mapping.
  struct Compiled {
    int node = -1;
    std::map<std::string, int> vars;
    int width = 0;
  };

  Result<Compiled> Compile(const LOpPtr& op);
  Result<Compiled> CompileJoin(const LOpPtr& op);

  Result<hyracks::ExprPtr> CompileExpr(const LExprPtr& expr,
                                       const std::map<std::string, int>& vars);

  /// Ensures `exprs` are available as columns, appending an AssignOp when an
  /// expression is not already a plain variable column. Returns the columns.
  Result<std::vector<int>> MaterializeColumns(
      Compiled* plan, const std::vector<LExprPtr>& exprs,
      const std::string& label);

  hyracks::RowSchema SchemaOf(const Compiled& c) const;

  hyracks::Job job_;
  std::unordered_map<const LOp*, Compiled> cache_;
};

}  // namespace simdb::algebricks

#endif  // SIMDB_ALGEBRICKS_JOBGEN_H_
