#ifndef SIMDB_ALGEBRICKS_LEXPR_H_
#define SIMDB_ALGEBRICKS_LEXPR_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "adm/value.h"

namespace simdb::algebricks {

struct LExpr;
using LExprPtr = std::shared_ptr<const LExpr>;

/// A logical (variable-based) expression. Unlike hyracks::Expr, columns are
/// referenced by variable name; the job generator resolves them to positions.
struct LExpr {
  enum class Kind { kVar, kLiteral, kField, kCall, kRecord, kList };

  Kind kind = Kind::kLiteral;
  /// kVar: variable name. kField: field name. kCall: function name.
  std::string name;
  adm::Value literal;             // kLiteral
  std::vector<LExprPtr> children; // kField: base; kCall: args; kRecord/kList
  std::vector<std::string> field_names;  // kRecord

  /// When set on an `eq` call, the optimizer should broadcast the join side
  /// this conjunct's right operand comes from (the `/*+ bcast */` hint).
  bool bcast_hint = false;

  static LExprPtr Var(std::string name);
  static LExprPtr Lit(adm::Value v);
  static LExprPtr Field(LExprPtr base, std::string field);
  static LExprPtr CallF(std::string fn, std::vector<LExprPtr> args);
  static LExprPtr Record(std::vector<std::string> names,
                         std::vector<LExprPtr> values);
  static LExprPtr List(std::vector<LExprPtr> items);

  void CollectVars(std::set<std::string>* out) const;
  bool UsesOnly(const std::set<std::string>& vars) const;
  bool UsesAny(const std::set<std::string>& vars) const;

  std::string ToString() const;
};

/// Splits a condition into AND conjuncts (flattening nested `and` calls).
std::vector<LExprPtr> SplitConjuncts(const LExprPtr& cond);

/// Combines conjuncts back into a single condition (TRUE literal when empty).
LExprPtr CombineConjuncts(std::vector<LExprPtr> conjuncts);

/// Substitutes variables by name; entries absent from the map are kept.
LExprPtr SubstituteVars(
    const LExprPtr& expr,
    const std::map<std::string, LExprPtr>& replacements);

}  // namespace simdb::algebricks

#endif  // SIMDB_ALGEBRICKS_LEXPR_H_
