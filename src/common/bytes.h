#ifndef SIMDB_COMMON_BYTES_H_
#define SIMDB_COMMON_BYTES_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "common/result.h"
#include "common/status.h"

namespace simdb {

/// Appends fixed-width little-endian primitives and length-prefixed strings to
/// a byte buffer. Paired with ByteReader; used for record and index-entry
/// serialization in the storage layer.
class ByteWriter {
 public:
  explicit ByteWriter(std::string* out) : out_(out) {}

  void PutU8(uint8_t v) { out_->push_back(static_cast<char>(v)); }

  void PutU32(uint32_t v) {
    char buf[4];
    std::memcpy(buf, &v, 4);
    out_->append(buf, 4);
  }

  void PutU64(uint64_t v) {
    char buf[8];
    std::memcpy(buf, &v, 8);
    out_->append(buf, 8);
  }

  void PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }

  void PutDouble(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, 8);
    PutU64(bits);
  }

  void PutString(std::string_view s) {
    PutU32(static_cast<uint32_t>(s.size()));
    out_->append(s.data(), s.size());
  }

 private:
  std::string* out_;
};

/// Reads values written by ByteWriter. All getters fail with Corruption when
/// the buffer is exhausted, so malformed files are detected rather than read
/// out of bounds.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data), pos_(0) {}

  size_t remaining() const { return data_.size() - pos_; }
  size_t position() const { return pos_; }

  Result<uint8_t> GetU8() {
    if (remaining() < 1) return Truncated();
    return static_cast<uint8_t>(data_[pos_++]);
  }

  Result<uint32_t> GetU32() {
    if (remaining() < 4) return Truncated();
    uint32_t v;
    std::memcpy(&v, data_.data() + pos_, 4);
    pos_ += 4;
    return v;
  }

  Result<uint64_t> GetU64() {
    if (remaining() < 8) return Truncated();
    uint64_t v;
    std::memcpy(&v, data_.data() + pos_, 8);
    pos_ += 8;
    return v;
  }

  Result<int64_t> GetI64() {
    SIMDB_ASSIGN_OR_RETURN(uint64_t v, GetU64());
    return static_cast<int64_t>(v);
  }

  Result<double> GetDouble() {
    SIMDB_ASSIGN_OR_RETURN(uint64_t bits, GetU64());
    double v;
    std::memcpy(&v, &bits, 8);
    return v;
  }

  /// Returns `n` raw bytes as a view into the buffer (no length prefix).
  Result<std::string_view> GetRaw(size_t n) {
    if (remaining() < n) return Truncated();
    std::string_view s(data_.data() + pos_, n);
    pos_ += n;
    return s;
  }

  Result<std::string_view> GetString() {
    SIMDB_ASSIGN_OR_RETURN(uint32_t len, GetU32());
    if (remaining() < len) return Truncated();
    std::string_view s(data_.data() + pos_, len);
    pos_ += len;
    return s;
  }

 private:
  Status Truncated() const {
    return Status::Corruption("byte buffer truncated at offset " +
                              std::to_string(pos_));
  }

  std::string_view data_;
  size_t pos_;
};

}  // namespace simdb

#endif  // SIMDB_COMMON_BYTES_H_
