#include "common/status.h"

namespace simdb {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kUnsupported:
      return "Unsupported";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kTypeError:
      return "TypeError";
    case StatusCode::kPlanError:
      return "PlanError";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kOverloaded:
      return "Overloaded";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code_));
  out += ": ";
  out += message_;
  return out;
}

}  // namespace simdb
