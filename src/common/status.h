#ifndef SIMDB_COMMON_STATUS_H_
#define SIMDB_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace simdb {

/// Error categories used across the engine. Mirrors the coarse classification
/// used by LSM storage engines (IO vs. logical errors) plus query-compiler
/// specific codes.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kIOError,
  kCorruption,
  kUnsupported,
  kInternal,
  kParseError,
  kTypeError,
  kPlanError,
  // Serving-layer codes: each rejection/termination class is distinct so
  // clients (and the admission tests) can tell them apart programmatically.
  kCancelled,          // client-initiated cooperative cancellation
  kDeadlineExceeded,   // query deadline hit (queued or mid-execution)
  kResourceExhausted,  // per-query memory/task quota refused or tripped
  kOverloaded,         // admission rejected: bounded wait queue is full
  // Distributed-execution code: a remote worker process is gone (died,
  // closed its socket, or reset the connection). Distinct from kIOError so
  // callers can tell "peer vanished" from "local disk/socket misbehaved".
  kUnavailable,
};

/// Returns a stable human-readable name for a status code.
std::string_view StatusCodeToString(StatusCode code);

/// A lightweight success-or-error value. The engine does not use exceptions;
/// every fallible operation returns a Status (or a Result<T>, see result.h).
/// [[nodiscard]]: silently dropping a returned Status swallows the error. A
/// deliberate best-effort discard must be written `(void)Foo()` with a
/// comment saying why (simdb_lint checks for the comment).
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status PlanError(std::string msg) {
    return Status(StatusCode::kPlanError, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Overloaded(std::string msg) {
    return Status(StatusCode::kOverloaded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

}  // namespace simdb

#endif  // SIMDB_COMMON_STATUS_H_
