#ifndef SIMDB_COMMON_THREAD_ANNOTATIONS_H_
#define SIMDB_COMMON_THREAD_ANNOTATIONS_H_

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "analysis/lock_rank.h"

// Clang thread-safety annotations plus the project's annotated mutex
// wrappers. All engine locking goes through simdb::Mutex / simdb::SharedMutex
// and the scoped locks below (simdb_lint forbids raw std::mutex outside this
// header); in return every guarded member is provable at compile time by
// clang's -Wthread-safety (CI "thread-safety" job, errors) and every
// acquisition is rank-checked at runtime by the lock-rank deadlock detector
// in debug/sanitizer builds (src/analysis/lock_rank.h). Under GCC the
// attributes expand to nothing and the wrappers are plain pass-throughs.
//
// Usage guide (see docs/ANALYSIS.md, "Concurrency analysis"):
//   simdb::Mutex mu_{lockrank::Rank::kThreadPool, "ThreadPool::mu_"};
//   std::deque<Task> queue_ SIMDB_GUARDED_BY(mu_);
//   void LaunchLocked() SIMDB_REQUIRES(mu_);  // caller holds mu_
//   void Submit(Task t) SIMDB_EXCLUDES(mu_);  // caller must NOT hold mu_
// Condvar waits use the loop form (clang analyzes predicate lambdas as
// separate functions, so `cv.wait(lock, pred)` trips the analysis):
//   while (!shutdown_ && queue_.empty()) work_cv_.Wait(lock);

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define SIMDB_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef SIMDB_THREAD_ANNOTATION
#define SIMDB_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

#define SIMDB_CAPABILITY(x) SIMDB_THREAD_ANNOTATION(capability(x))
#define SIMDB_SCOPED_CAPABILITY SIMDB_THREAD_ANNOTATION(scoped_lockable)
#define SIMDB_GUARDED_BY(x) SIMDB_THREAD_ANNOTATION(guarded_by(x))
#define SIMDB_PT_GUARDED_BY(x) SIMDB_THREAD_ANNOTATION(pt_guarded_by(x))
#define SIMDB_REQUIRES(...) \
  SIMDB_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define SIMDB_REQUIRES_SHARED(...) \
  SIMDB_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define SIMDB_EXCLUDES(...) \
  SIMDB_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define SIMDB_ACQUIRE(...) \
  SIMDB_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define SIMDB_ACQUIRE_SHARED(...) \
  SIMDB_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define SIMDB_RELEASE(...) \
  SIMDB_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define SIMDB_RELEASE_SHARED(...) \
  SIMDB_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define SIMDB_TRY_ACQUIRE(...) \
  SIMDB_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define SIMDB_ASSERT_CAPABILITY(x) \
  SIMDB_THREAD_ANNOTATION(assert_capability(x))
#define SIMDB_RETURN_CAPABILITY(x) SIMDB_THREAD_ANNOTATION(lock_returned(x))
#define SIMDB_NO_THREAD_SAFETY_ANALYSIS \
  SIMDB_THREAD_ANNOTATION(no_thread_safety_analysis)

// Lock-rank checks are on whenever the build defines SIMDB_LOCK_RANK
// (debug/RelWithDebInfo and all sanitizer builds — set project-wide by the
// top-level CMakeLists so inline functions see one definition everywhere).
// Release builds compile the hooks out; CI's release job verifies no
// lockrank symbol survives in the binaries.
#if defined(SIMDB_LOCK_RANK)
#define SIMDB_LOCK_RANK_CHECKS 1
#else
#define SIMDB_LOCK_RANK_CHECKS 0
#endif

namespace simdb {

/// Rank-checked, capability-annotated mutex. Construct with the lock's rank
/// from the registry and a stable diagnostic name.
class SIMDB_CAPABILITY("mutex") Mutex {
 public:
  explicit Mutex(lockrank::Rank rank, const char* name)
      : rank_(static_cast<int>(rank)), name_(name) {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() SIMDB_ACQUIRE() {
#if SIMDB_LOCK_RANK_CHECKS
    lockrank::OnAcquire(rank_, name_, this);
#endif
    mu_.lock();
  }

  bool TryLock() SIMDB_TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
#if SIMDB_LOCK_RANK_CHECKS
    // A successful try_lock still extends the held stack; rank-check it so
    // polling loops cannot smuggle in an inversion. (It cannot deadlock by
    // itself, but the ordering discipline is what the detector proves.)
    lockrank::OnAcquire(rank_, name_, this);
#endif
    return true;
  }

  void Unlock() SIMDB_RELEASE() {
    mu_.unlock();
#if SIMDB_LOCK_RANK_CHECKS
    lockrank::OnRelease(this);
#endif
  }

  int rank() const { return rank_; }
  const char* name() const { return name_; }

 private:
  friend class CondVar;
  std::mutex mu_;  // simdb-lint: raw-mutex-ok (the wrapper itself)
  const int rank_;
  const char* const name_;
};

/// Rank-checked reader/writer mutex (core::QueryProcessor engine state).
class SIMDB_CAPABILITY("shared_mutex") SharedMutex {
 public:
  explicit SharedMutex(lockrank::Rank rank, const char* name)
      : rank_(static_cast<int>(rank)), name_(name) {}
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() SIMDB_ACQUIRE() {
#if SIMDB_LOCK_RANK_CHECKS
    lockrank::OnAcquire(rank_, name_, this);
#endif
    mu_.lock();
  }
  void Unlock() SIMDB_RELEASE() {
    mu_.unlock();
#if SIMDB_LOCK_RANK_CHECKS
    lockrank::OnRelease(this);
#endif
  }
  void LockShared() SIMDB_ACQUIRE_SHARED() {
#if SIMDB_LOCK_RANK_CHECKS
    lockrank::OnAcquire(rank_, name_, this);
#endif
    mu_.lock_shared();
  }
  void UnlockShared() SIMDB_RELEASE_SHARED() {
    mu_.unlock_shared();
#if SIMDB_LOCK_RANK_CHECKS
    lockrank::OnRelease(this);
#endif
  }

 private:
  std::shared_mutex mu_;  // simdb-lint: raw-mutex-ok (the wrapper itself)
  const int rank_;
  const char* const name_;
};

/// RAII exclusive lock over simdb::Mutex (the project's lock_guard /
/// unique_lock). Supports early Unlock()/relock for condvar-style code.
class SIMDB_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) SIMDB_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() SIMDB_RELEASE() {
    if (held_) mu_.Unlock();
  }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  void Unlock() SIMDB_RELEASE() {
    mu_.Unlock();
    held_ = false;
  }
  void Lock() SIMDB_ACQUIRE() {
    mu_.Lock();
    held_ = true;
  }

 private:
  friend class CondVar;
  Mutex& mu_;
  bool held_ = true;
};

/// RAII exclusive lock over SharedMutex (writer side).
class SIMDB_SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex& mu) SIMDB_ACQUIRE(mu) : mu_(mu) {
    mu_.Lock();
  }
  ~WriterLock() SIMDB_RELEASE() { mu_.Unlock(); }
  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// RAII shared lock over SharedMutex (reader side).
class SIMDB_SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex& mu) SIMDB_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.LockShared();
  }
  ~ReaderLock() SIMDB_RELEASE() { mu_.UnlockShared(); }
  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Condition variable bound to simdb::Mutex via MutexLock. Waits take the
/// scoped lock (not the mutex) so the annotated lock state stays balanced,
/// and use the explicit loop form:
///   while (!predicate) cv.Wait(lock);
/// The wait releases the rank entry while blocked and re-checks it on
/// wakeup, so a wait never holds a rank slot it does not hold a lock for.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  // Contract: the caller holds `lock` (checked at runtime by the rank
  // hooks). Not expressed as SIMDB_REQUIRES(lock.mu_): clang's analysis
  // cannot prove the scoped lock's mu_ field aliases the caller's held
  // mutex (it does not track the MutexLock constructor binding), so the
  // annotation would reject every correct call site. The guarded predicate
  // reads in the caller's `while` loop remain fully checked.
  void Wait(MutexLock& lock) SIMDB_NO_THREAD_SAFETY_ANALYSIS {
#if SIMDB_LOCK_RANK_CHECKS
    lockrank::OnRelease(&lock.mu_);
#endif
    std::unique_lock<std::mutex> adapter(lock.mu_.mu_, std::adopt_lock);
    cv_.wait(adapter);  // simdb-lint: bare-cv-wait-ok (the primitive itself; callers loop)
    adapter.release();
#if SIMDB_LOCK_RANK_CHECKS
    lockrank::OnAcquire(lock.mu_.rank(), lock.mu_.name(), &lock.mu_);
#endif
  }

  /// Timed wait; returns false on timeout (predicate loop re-checks).
  /// Same holds-the-lock contract (and same annotation caveat) as Wait.
  template <typename Clock, typename Duration>
  bool WaitUntil(MutexLock& lock,
                 const std::chrono::time_point<Clock, Duration>& deadline)
      SIMDB_NO_THREAD_SAFETY_ANALYSIS {
#if SIMDB_LOCK_RANK_CHECKS
    lockrank::OnRelease(&lock.mu_);
#endif
    std::unique_lock<std::mutex> adapter(lock.mu_.mu_, std::adopt_lock);
    bool no_timeout = cv_.wait_until(adapter, deadline) ==
                      std::cv_status::no_timeout;
    adapter.release();
#if SIMDB_LOCK_RANK_CHECKS
    lockrank::OnAcquire(lock.mu_.rank(), lock.mu_.name(), &lock.mu_);
#endif
    return no_timeout;
  }

  template <typename Rep, typename Period>
  bool WaitFor(MutexLock& lock,
               const std::chrono::duration<Rep, Period>& timeout)
      SIMDB_NO_THREAD_SAFETY_ANALYSIS {
    return WaitUntil(lock, std::chrono::steady_clock::now() + timeout);
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;  // simdb-lint: raw-mutex-ok (the wrapper)
};

}  // namespace simdb

#endif  // SIMDB_COMMON_THREAD_ANNOTATIONS_H_
