#ifndef SIMDB_COMMON_RANDOM_H_
#define SIMDB_COMMON_RANDOM_H_

#include <cstdint>
#include <vector>

namespace simdb {

/// Deterministic, fast PRNG (splitmix64). Used everywhere randomness is
/// needed so that tests and benchmarks are reproducible across runs.
///
/// Every consumer of randomness takes one uint64_t seed (no global state, no
/// time-based seeding), so any randomized run — datagen, workload sampling,
/// the differential fuzzer — reproduces exactly from a single logged number.
/// Independent sub-streams are derived with Fork(), which depends only on the
/// initial seed (not on how many values were consumed), keeping downstream
/// streams stable when an upstream consumer draws more or fewer values.
class Random {
 public:
  explicit Random(uint64_t seed = 0x9e3779b97f4a7c15ULL)
      : initial_seed_(seed), state_(seed) {}

  /// The seed this generator was constructed with (for failure logging).
  uint64_t initial_seed() const { return initial_seed_; }

  /// Finalizer of splitmix64: a bijective 64-bit mixer, usable to derive
  /// well-distributed seeds from structured values (seed ^ stream ids).
  static uint64_t Mix(uint64_t z) {
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// A deterministic, independent sub-generator for stream `stream`. Depends
  /// only on initial_seed(), so forks are position-independent.
  Random Fork(uint64_t stream) const {
    return Random(Mix(initial_seed_ + (stream + 1) * 0x9e3779b97f4a7c15ULL));
  }

  uint64_t NextU64() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    return Mix(z);
  }

  /// Uniform integer in [0, n); n == 0 yields 0 (guarded so that sanitizer
  /// runs never hit a division by zero on degenerate inputs).
  uint64_t Uniform(uint64_t n) { return n == 0 ? 0 : NextU64() % n; }

  /// Uniform integer in [lo, hi] inclusive (hi < lo yields lo).
  int64_t UniformRange(int64_t lo, int64_t hi) {
    if (hi < lo) return lo;
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * (1.0 / 9007199254740992.0);
  }

  bool OneIn(uint64_t n) { return Uniform(n) == 0; }

 private:
  uint64_t initial_seed_;
  uint64_t state_;
};

/// Samples ranks from a Zipf(s) distribution over [0, n). Token frequencies in
/// the paper's text datasets are heavily skewed; the generator reproduces that
/// skew so T-occurrence candidate-set behaviour matches the paper's shape.
class ZipfGenerator {
 public:
  /// `skew` is the Zipf exponent (1.0 is classic Zipf; 0 is uniform).
  ZipfGenerator(uint64_t n, double skew);

  /// Returns a rank in [0, n); rank 0 is the most frequent.
  uint64_t Next(Random& rng) const;

  uint64_t n() const { return n_; }

 private:
  uint64_t n_;
  std::vector<double> cdf_;  // cumulative probabilities, size n_.
};

}  // namespace simdb

#endif  // SIMDB_COMMON_RANDOM_H_
