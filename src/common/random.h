#ifndef SIMDB_COMMON_RANDOM_H_
#define SIMDB_COMMON_RANDOM_H_

#include <cstdint>
#include <vector>

namespace simdb {

/// Deterministic, fast PRNG (splitmix64). Used everywhere randomness is
/// needed so that tests and benchmarks are reproducible across runs.
class Random {
 public:
  explicit Random(uint64_t seed = 0x9e3779b97f4a7c15ULL) : state_(seed) {}

  uint64_t NextU64() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n) { return NextU64() % n; }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * (1.0 / 9007199254740992.0);
  }

  bool OneIn(uint64_t n) { return Uniform(n) == 0; }

 private:
  uint64_t state_;
};

/// Samples ranks from a Zipf(s) distribution over [0, n). Token frequencies in
/// the paper's text datasets are heavily skewed; the generator reproduces that
/// skew so T-occurrence candidate-set behaviour matches the paper's shape.
class ZipfGenerator {
 public:
  /// `skew` is the Zipf exponent (1.0 is classic Zipf; 0 is uniform).
  ZipfGenerator(uint64_t n, double skew);

  /// Returns a rank in [0, n); rank 0 is the most frequent.
  uint64_t Next(Random& rng) const;

  uint64_t n() const { return n_; }

 private:
  uint64_t n_;
  std::vector<double> cdf_;  // cumulative probabilities, size n_.
};

}  // namespace simdb

#endif  // SIMDB_COMMON_RANDOM_H_
