#include "common/random.h"

#include <algorithm>
#include <cmath>

namespace simdb {

ZipfGenerator::ZipfGenerator(uint64_t n, double skew) : n_(n) {
  cdf_.resize(n_);
  double sum = 0.0;
  for (uint64_t i = 0; i < n_; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), skew);
    cdf_[i] = sum;
  }
  for (uint64_t i = 0; i < n_; ++i) cdf_[i] /= sum;
}

uint64_t ZipfGenerator::Next(Random& rng) const {
  double u = rng.NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return n_ - 1;
  return static_cast<uint64_t>(it - cdf_.begin());
}

}  // namespace simdb
