#ifndef SIMDB_COMMON_THREAD_POOL_H_
#define SIMDB_COMMON_THREAD_POOL_H_

#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"

namespace simdb {

/// Fixed-size worker pool used to run dataset partitions in parallel
/// (simulating AsterixDB node controllers). Tasks are plain closures; use
/// RunAll to execute a batch and wait for completion.
class ThreadPool {
 public:
  /// `num_threads` == 0 selects std::thread::hardware_concurrency().
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return threads_.size(); }

  /// Runs all tasks (possibly concurrently) and blocks until every one has
  /// finished. Tasks must not throw; they communicate failure out of band.
  /// Safe to call from inside a pool worker: the batch then runs inline on
  /// the calling thread instead of deadlocking the pool on its own queue.
  /// Completion is tracked per batch, so concurrent RunAll callers (several
  /// queries sharing the engine pool) wait only for their own tasks — one
  /// query's long batch cannot strand another's wait.
  void RunAll(std::vector<std::function<void()>> tasks) SIMDB_EXCLUDES(mu_);

  /// Enqueues one task and returns immediately. Completion tracking is the
  /// caller's responsibility (the task-graph scheduler keeps its own counts);
  /// tasks must not throw. A submitted task may itself Submit more tasks.
  /// Callable while holding locks of rank below kThreadPool (the scheduler
  /// submits under its run mutex).
  void Submit(std::function<void()> task) SIMDB_EXCLUDES(mu_);

  /// True when the calling thread is one of this process's pool workers.
  static bool OnWorkerThread();

 private:
  void WorkerLoop();

  std::vector<std::thread> threads_;
  Mutex mu_{lockrank::Rank::kThreadPool, "ThreadPool::mu_"};
  /// Waiters are homogeneous (every worker waits on the same "work or
  /// shutdown" predicate), so Submit's NotifyOne cannot wake the wrong kind
  /// of waiter — see the condvar audit in docs/ANALYSIS.md.
  CondVar work_cv_;
  std::deque<std::function<void()>> queue_ SIMDB_GUARDED_BY(mu_);
  bool shutdown_ SIMDB_GUARDED_BY(mu_) = false;
};

}  // namespace simdb

#endif  // SIMDB_COMMON_THREAD_POOL_H_
