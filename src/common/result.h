#ifndef SIMDB_COMMON_RESULT_H_
#define SIMDB_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace simdb {

/// Holds either a value of type T or an error Status. Modeled after
/// arrow::Result / absl::StatusOr. A Result is never default-ok without a
/// value: constructing from an OK status is a programming error reported as
/// an Internal status.
/// [[nodiscard]]: a dropped Result drops the error with it; see the Status
/// discard policy in status.h.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit construction from a value (the common success path).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from an error status.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` when this Result holds an error.
  T ValueOr(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  std::optional<T> value_;
  Status status_;  // OK iff value_ holds a value.
};

}  // namespace simdb

// Propagates a non-OK Status out of the enclosing function.
#define SIMDB_RETURN_IF_ERROR(expr)             \
  do {                                          \
    ::simdb::Status _simdb_status = (expr);     \
    if (!_simdb_status.ok()) return _simdb_status; \
  } while (false)

#define SIMDB_CONCAT_IMPL(a, b) a##b
#define SIMDB_CONCAT(a, b) SIMDB_CONCAT_IMPL(a, b)

// Evaluates `rexpr` (a Result<T>); on error propagates the Status, otherwise
// move-assigns the value into `lhs` (which may include a declaration).
#define SIMDB_ASSIGN_OR_RETURN(lhs, rexpr)                            \
  SIMDB_ASSIGN_OR_RETURN_IMPL(SIMDB_CONCAT(_simdb_result_, __LINE__), \
                              lhs, rexpr)

#define SIMDB_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).value()

#endif  // SIMDB_COMMON_RESULT_H_
