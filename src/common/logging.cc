#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "common/thread_annotations.h"

namespace simdb {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

// Serializes interleaved log lines from worker threads. Rank kLogging: the
// innermost leaf, so logging is legal under any engine lock.
Mutex& LogMutex() {
  static Mutex* m = new Mutex(lockrank::Rank::kLogging, "logging::LogMutex");
  return *m;
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level); }
LogLevel GetLogLevel() { return g_level.load(); }

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line, bool fatal)
    : level_(level), fatal_(fatal) {
  // Keep only the basename to keep lines short.
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelName(level_) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  {
    MutexLock lock(LogMutex());
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
  }
  if (fatal_) std::abort();
}

}  // namespace internal_logging
}  // namespace simdb
