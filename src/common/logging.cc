#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace simdb {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

// Serializes interleaved log lines from worker threads.
std::mutex& LogMutex() {
  static std::mutex* m = new std::mutex;
  return *m;
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level); }
LogLevel GetLogLevel() { return g_level.load(); }

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line, bool fatal)
    : level_(level), fatal_(fatal) {
  // Keep only the basename to keep lines short.
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelName(level_) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  {
    std::lock_guard<std::mutex> lock(LogMutex());
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
  }
  if (fatal_) std::abort();
}

}  // namespace internal_logging
}  // namespace simdb
