#include "common/thread_pool.h"

namespace simdb {

namespace {
/// Set for the lifetime of every pool worker; RunAll consults it so a task
/// that (indirectly) calls RunAll again helps inline instead of parking a
/// worker on a queue only workers can drain.
thread_local bool t_on_pool_worker = false;
}  // namespace

bool ThreadPool::OnWorkerThread() { return t_on_pool_worker; }

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::thread::hardware_concurrency();
    if (num_threads == 0) num_threads = 1;
  }
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::RunAll(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  if (t_on_pool_worker) {
    for (auto& t : tasks) t();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& t : tasks) {
      queue_.push_back(std::move(t));
      ++in_flight_;
    }
  }
  work_cv_.notify_all();
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return in_flight_ == 0 && queue_.empty(); });
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  t_on_pool_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
    }
    done_cv_.notify_all();
  }
}

}  // namespace simdb
