#include "common/thread_pool.h"

namespace simdb {

namespace {
/// Set for the lifetime of every pool worker; RunAll consults it so a task
/// that (indirectly) calls RunAll again helps inline instead of parking a
/// worker on a queue only workers can drain.
thread_local bool t_on_pool_worker = false;
}  // namespace

bool ThreadPool::OnWorkerThread() { return t_on_pool_worker; }

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::thread::hardware_concurrency();
    if (num_threads == 0) num_threads = 1;
  }
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    shutdown_ = true;
  }
  work_cv_.NotifyAll();
  for (auto& t : threads_) t.join();
}

void ThreadPool::RunAll(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  if (t_on_pool_worker) {
    for (auto& t : tasks) t();
    return;
  }
  // Per-batch completion state: the caller waits for exactly its own tasks,
  // so concurrent RunAll batches from different queries never observe each
  // other. shared_ptr keeps the state alive until the last task finished
  // even if a spurious wakeup races the caller out first.
  struct Batch {
    Mutex mu{lockrank::Rank::kPoolBatch, "ThreadPool::RunAll::Batch::mu"};
    CondVar cv;
    size_t remaining SIMDB_GUARDED_BY(mu) = 0;
  };
  auto batch = std::make_shared<Batch>();
  {
    MutexLock lock(batch->mu);
    batch->remaining = tasks.size();
  }
  {
    MutexLock lock(mu_);
    for (auto& t : tasks) {
      queue_.push_back([batch, fn = std::move(t)] {
        fn();
        MutexLock lock(batch->mu);
        if (--batch->remaining == 0) batch->cv.NotifyAll();
      });
    }
  }
  work_cv_.NotifyAll();
  MutexLock lock(batch->mu);
  while (batch->remaining != 0) batch->cv.Wait(lock);
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_cv_.NotifyOne();
}

void ThreadPool::WorkerLoop() {
  t_on_pool_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      while (!shutdown_ && queue_.empty()) work_cv_.Wait(lock);
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace simdb
