#include "common/thread_pool.h"

namespace simdb {

namespace {
/// Set for the lifetime of every pool worker; RunAll consults it so a task
/// that (indirectly) calls RunAll again helps inline instead of parking a
/// worker on a queue only workers can drain.
thread_local bool t_on_pool_worker = false;
}  // namespace

bool ThreadPool::OnWorkerThread() { return t_on_pool_worker; }

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::thread::hardware_concurrency();
    if (num_threads == 0) num_threads = 1;
  }
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::RunAll(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  if (t_on_pool_worker) {
    for (auto& t : tasks) t();
    return;
  }
  // Per-batch completion state: the caller waits for exactly its own tasks,
  // so concurrent RunAll batches from different queries never observe each
  // other. shared_ptr keeps the state alive until the last task finished
  // even if a spurious wakeup races the caller out first.
  struct Batch {
    std::mutex mu;
    std::condition_variable cv;
    size_t remaining;
  };
  auto batch = std::make_shared<Batch>();
  batch->remaining = tasks.size();
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& t : tasks) {
      queue_.push_back([batch, fn = std::move(t)] {
        fn();
        std::lock_guard<std::mutex> lock(batch->mu);
        if (--batch->remaining == 0) batch->cv.notify_all();
      });
    }
  }
  work_cv_.notify_all();
  std::unique_lock<std::mutex> lock(batch->mu);
  batch->cv.wait(lock, [&] { return batch->remaining == 0; });
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  t_on_pool_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace simdb
