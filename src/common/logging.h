#ifndef SIMDB_COMMON_LOGGING_H_
#define SIMDB_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace simdb {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global minimum level; messages below it are discarded. Defaults to kWarn so
/// tests and benches stay quiet unless something is wrong.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal_logging {

/// Stream-style log sink: accumulates a line and emits it on destruction.
/// When `fatal` is set the process aborts after emitting the line (used by
/// SIMDB_CHECK for invariants that must never fail in correct code).
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line, bool fatal = false);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  bool fatal_;
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace simdb

#define SIMDB_LOG(level)                                              \
  if (::simdb::LogLevel::level >= ::simdb::GetLogLevel())             \
  ::simdb::internal_logging::LogMessage(::simdb::LogLevel::level,     \
                                        __FILE__, __LINE__)

// Aborts the process with a message when `cond` is false.
#define SIMDB_CHECK(cond)                                                   \
  if (!(cond))                                                              \
  ::simdb::internal_logging::LogMessage(::simdb::LogLevel::kError,          \
                                        __FILE__, __LINE__, /*fatal=*/true) \
      << "Check failed: " #cond " "

#endif  // SIMDB_COMMON_LOGGING_H_
