#ifndef SIMDB_COMMON_CANCELLATION_H_
#define SIMDB_COMMON_CANCELLATION_H_

#include <atomic>
#include <chrono>
#include <cstdint>

#include "common/status.h"

namespace simdb {

/// Cooperative cancellation handle shared between a query's client (who may
/// call RequestCancel at any time) and the runtime (which polls Check at
/// task boundaries). Cancellation is cooperative: a task that has already
/// started runs to completion; everything not yet started is skipped, so the
/// scheduler still drains its graph and releases partial outputs.
///
/// A token optionally carries a deadline (steady clock). Deadline expiry and
/// client cancellation report distinct status codes (kDeadlineExceeded vs
/// kCancelled); when both apply, the client's explicit cancel wins.
///
/// Thread-safe; all operations are lock-free atomics.
class CancellationToken {
 public:
  CancellationToken() = default;

  CancellationToken(const CancellationToken&) = delete;
  CancellationToken& operator=(const CancellationToken&) = delete;

  /// Client-initiated cancellation. Idempotent.
  void RequestCancel() { cancelled_.store(true, std::memory_order_release); }

  /// Arms the deadline at `seconds` from now (<= 0 disarms). Steady-clock
  /// based, so wall-clock adjustments cannot fire or starve it.
  void SetDeadlineAfter(double seconds) {
    if (seconds <= 0) {
      deadline_micros_.store(0, std::memory_order_release);
      return;
    }
    deadline_micros_.store(
        NowMicros() + static_cast<int64_t>(seconds * 1e6),
        std::memory_order_release);
  }

  bool cancel_requested() const {
    return cancelled_.load(std::memory_order_acquire);
  }

  bool deadline_expired() const {
    int64_t d = deadline_micros_.load(std::memory_order_acquire);
    return d != 0 && NowMicros() >= d;
  }

  /// OK while the query may keep running; Cancelled / DeadlineExceeded once
  /// it must stop. The runtime polls this before starting each task.
  Status Check() const {
    if (cancel_requested()) return Status::Cancelled("query cancelled");
    if (deadline_expired()) {
      return Status::DeadlineExceeded("query deadline exceeded");
    }
    return Status::OK();
  }

 private:
  static int64_t NowMicros() {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  std::atomic<bool> cancelled_{false};
  /// Steady-clock micros; 0 = no deadline.
  std::atomic<int64_t> deadline_micros_{0};
};

}  // namespace simdb

#endif  // SIMDB_COMMON_CANCELLATION_H_
