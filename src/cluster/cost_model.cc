#include "cluster/cost_model.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <unordered_map>
#include <vector>

namespace simdb::cluster {

namespace {

/// Modeled seconds to push `remote_bytes` through the per-node NICs: bytes
/// flow roughly evenly, frame latency is charged per 32 KiB frame, also
/// spread across nodes. Shared by the stage-sum and critical-path figures.
double NetworkSeconds(uint64_t remote_bytes, int nodes,
                      const NetworkModel& net) {
  if (remote_bytes == 0) return 0;
  double per_node_bytes = static_cast<double>(remote_bytes) / nodes;
  double frames =
      std::ceil(static_cast<double>(remote_bytes) / net.frame_bytes) / nodes;
  return per_node_bytes / net.bandwidth_bytes_per_sec +
         frames * net.frame_latency_sec;
}

double PartitionSeconds(const hyracks::OpStats& op, int p) {
  return static_cast<size_t>(p) < op.partition_seconds.size()
             ? op.partition_seconds[static_cast<size_t>(p)]
             : 0.0;
}

/// Longest dependency chain through the per-(node, partition) task DAG.
/// done(i, p) = ready(i, p) + partition_seconds(i, p), where a local task is
/// ready when partition p of each input is done, and a barrier waits for all
/// partitions of all inputs plus its own network time.
double CriticalPathSeconds(const hyracks::ExecStats& stats, int parts,
                           int nodes, const NetworkModel& net) {
  std::unordered_map<int, const hyracks::OpStats*> by_node;
  for (const hyracks::OpStats& op : stats.ops) {
    if (op.node_id >= 0) by_node[op.node_id] = &op;
  }
  std::unordered_map<int, std::vector<double>> done;
  double longest = 0;
  // ops are pushed in node order (topological), so inputs resolve first.
  for (const hyracks::OpStats& op : stats.ops) {
    if (op.node_id < 0) continue;
    std::vector<double>& d =
        done.emplace(op.node_id, std::vector<double>(
                                     static_cast<size_t>(parts), 0.0))
            .first->second;
    if (op.barrier) {
      double ready = 0;
      for (int in : op.input_ops) {
        auto it = done.find(in);
        if (it == done.end()) continue;
        for (double v : it->second) ready = std::max(ready, v);
      }
      ready += NetworkSeconds(op.remote_bytes, nodes, net);
      for (int p = 0; p < parts; ++p) {
        d[static_cast<size_t>(p)] = ready + PartitionSeconds(op, p);
      }
    } else {
      for (int p = 0; p < parts; ++p) {
        double ready = 0;
        for (int in : op.input_ops) {
          auto it = done.find(in);
          if (it == done.end()) continue;
          ready = std::max(ready, it->second[static_cast<size_t>(p)]);
        }
        d[static_cast<size_t>(p)] = ready + PartitionSeconds(op, p);
      }
    }
    for (double v : d) longest = std::max(longest, v);
  }
  return longest;
}

}  // namespace

MakespanReport ComputeMakespan(const hyracks::ExecStats& stats,
                               const hyracks::ClusterTopology& topology,
                               const NetworkModel& net) {
  MakespanReport report;
  report.network_measured = stats.network_measured;
  int nodes = std::max(1, topology.num_nodes);
  for (const hyracks::OpStats& op : stats.ops) {
    // Compute: the slowest node bounds the stage.
    std::vector<double> node_seconds(static_cast<size_t>(nodes), 0.0);
    for (size_t p = 0; p < op.partition_seconds.size(); ++p) {
      int node = topology.NodeOfPartition(static_cast<int>(p));
      if (node >= 0 && node < nodes) {
        node_seconds[static_cast<size_t>(node)] += op.partition_seconds[p];
      }
    }
    double stage = 0;
    for (double s : node_seconds) stage = std::max(stage, s);
    report.compute_seconds += stage;
    // Measured runs already paid transport inside the build times; the
    // modeled charge would double-count the same bytes.
    if (!stats.network_measured) {
      report.network_seconds += NetworkSeconds(op.remote_bytes, nodes, net);
    }
    report.measured_network_seconds += op.transport_seconds;
    report.remote_compute_seconds += op.remote_compute_seconds;
  }
  if (stats.has_task_dag) {
    report.has_critical_path = true;
    NetworkModel effective = net;
    if (stats.network_measured) {
      // Zero out the modeled barrier charge; ship time is inside
      // partition_seconds already.
      effective.bandwidth_bytes_per_sec =
          std::numeric_limits<double>::infinity();
      effective.frame_latency_sec = 0;
    }
    report.critical_path_seconds = CriticalPathSeconds(
        stats, std::max(1, topology.total_partitions()), nodes, effective);
  }
  return report;
}

double ModeledNetworkSeconds(uint64_t remote_bytes, int nodes,
                             const NetworkModel& net) {
  return NetworkSeconds(remote_bytes, std::max(1, nodes), net);
}

std::string FormatMakespan(const MakespanReport& report) {
  char buf[160];
  if (report.network_measured) {
    if (report.remote_compute_seconds > 0) {
      std::snprintf(buf, sizeof(buf),
                    "%.3fs %s (measured network %.3fs, remote compute %.3fs "
                    "inside compute)",
                    report.total_seconds(),
                    report.has_critical_path ? "critical path" : "stage-sum",
                    report.measured_network_seconds,
                    report.remote_compute_seconds);
      return buf;
    }
    std::snprintf(buf, sizeof(buf),
                  "%.3fs %s (measured network %.3fs inside compute)",
                  report.total_seconds(),
                  report.has_critical_path ? "critical path" : "stage-sum",
                  report.measured_network_seconds);
    return buf;
  }
  if (report.has_critical_path) {
    std::snprintf(buf, sizeof(buf),
                  "%.3fs critical path (stage-sum %.3fs = compute %.3fs + "
                  "network %.3fs)",
                  report.critical_path_seconds, report.stage_sum_seconds(),
                  report.compute_seconds, report.network_seconds);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3fs (compute %.3fs + network %.3fs)",
                  report.total_seconds(), report.compute_seconds,
                  report.network_seconds);
  }
  return buf;
}

}  // namespace simdb::cluster
