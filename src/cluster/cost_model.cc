#include "cluster/cost_model.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

namespace simdb::cluster {

MakespanReport ComputeMakespan(const hyracks::ExecStats& stats,
                               const hyracks::ClusterTopology& topology,
                               const NetworkModel& net) {
  MakespanReport report;
  int nodes = std::max(1, topology.num_nodes);
  for (const hyracks::OpStats& op : stats.ops) {
    // Compute: the slowest node bounds the stage.
    std::vector<double> node_seconds(static_cast<size_t>(nodes), 0.0);
    for (size_t p = 0; p < op.partition_seconds.size(); ++p) {
      int node = topology.NodeOfPartition(static_cast<int>(p));
      if (node >= 0 && node < nodes) {
        node_seconds[static_cast<size_t>(node)] += op.partition_seconds[p];
      }
    }
    double stage = 0;
    for (double s : node_seconds) stage = std::max(stage, s);
    report.compute_seconds += stage;

    // Network: remote bytes flow through per-node NICs roughly evenly; frame
    // latency is charged per 32 KiB frame, also spread across nodes.
    if (op.remote_bytes > 0) {
      double per_node_bytes = static_cast<double>(op.remote_bytes) / nodes;
      double frames = std::ceil(static_cast<double>(op.remote_bytes) /
                                net.frame_bytes) /
                      nodes;
      report.network_seconds +=
          per_node_bytes / net.bandwidth_bytes_per_sec +
          frames * net.frame_latency_sec;
    }
  }
  return report;
}

std::string FormatMakespan(const MakespanReport& report) {
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                "%.3fs (compute %.3fs + network %.3fs)",
                report.total_seconds(), report.compute_seconds,
                report.network_seconds);
  return buf;
}

}  // namespace simdb::cluster
