#ifndef SIMDB_CLUSTER_COST_MODEL_H_
#define SIMDB_CLUSTER_COST_MODEL_H_

#include <string>

#include "hyracks/exec.h"

namespace simdb::cluster {

/// Network parameters of the simulated cluster. Defaults approximate the
/// paper's testbed (1 GbE per node; payload bandwidth ~117 MiB/s) with
/// frame-granularity transfer latency.
struct NetworkModel {
  double bandwidth_bytes_per_sec = 117.0 * 1024 * 1024;
  double frame_bytes = 32 * 1024;
  double frame_latency_sec = 3e-5;
};

/// A simulated parallel execution time ("makespan") derived from measured
/// per-partition compute times and counted exchange traffic. The executor is
/// stage-sequential, so the makespan is the sum over operators of
///   max over nodes (sum of that node's partition compute seconds)
/// plus the modeled time to move each exchange's remote bytes through the
/// per-node NICs. This preserves the paper's scale-out/speed-up shapes on a
/// single machine (see DESIGN.md).
struct MakespanReport {
  double compute_seconds = 0;
  double network_seconds = 0;

  double total_seconds() const { return compute_seconds + network_seconds; }
};

MakespanReport ComputeMakespan(const hyracks::ExecStats& stats,
                               const hyracks::ClusterTopology& topology,
                               const NetworkModel& net = {});

/// One-line rendering for bench output.
std::string FormatMakespan(const MakespanReport& report);

}  // namespace simdb::cluster

#endif  // SIMDB_CLUSTER_COST_MODEL_H_
