#ifndef SIMDB_CLUSTER_COST_MODEL_H_
#define SIMDB_CLUSTER_COST_MODEL_H_

#include <string>

#include "hyracks/exec.h"

namespace simdb::cluster {

/// Network parameters of the simulated cluster. Defaults approximate the
/// paper's testbed (1 GbE per node; payload bandwidth ~117 MiB/s) with
/// frame-granularity transfer latency.
struct NetworkModel {
  double bandwidth_bytes_per_sec = 117.0 * 1024 * 1024;
  double frame_bytes = 32 * 1024;
  double frame_latency_sec = 3e-5;
};

/// A simulated parallel execution time ("makespan") derived from measured
/// per-partition compute times and counted exchange traffic.
///
/// Two figures are computed:
///   - stage-sum (`compute_seconds` + `network_seconds`): the legacy
///     stage-sequential model — sum over operators of
///     max-over-nodes(sum of that node's partition compute seconds), plus the
///     modeled time to move each exchange's remote bytes through the
///     per-node NICs. Kept as the comparison figure.
///   - critical path (`critical_path_seconds`): the longest dependency chain
///     through the per-(node, partition) task DAG, available when the stats
///     carry DAG shape (ExecStats::has_task_dag). A partition-local task is
///     ready when the same partition of each input is done; a barrier
///     (exchange / whole-node operator) waits for every partition of every
///     input and additionally pays its network time before its outputs
///     start. This is the makespan a dependency-scheduled runtime achieves
///     with unbounded workers.
///
/// Both preserve the paper's scale-out/speed-up shapes on a single machine
/// (see DESIGN.md); `total_seconds()` prefers the critical path.
struct MakespanReport {
  double compute_seconds = 0;
  double network_seconds = 0;
  double critical_path_seconds = 0;
  /// True when the stats carried task-DAG shape and the critical path was
  /// computed; false for hand-built or legacy stats (stage-sum only).
  bool has_critical_path = false;
  /// True when the run shipped its exchange traffic through a wall-clock
  /// transport backend (ExecStats::network_measured). The shipping time is
  /// then already inside the exchange partition_seconds — charging the
  /// modeled formula on top would double-count — so `network_seconds` stays
  /// 0 and the measured transport time is reported here instead.
  bool network_measured = false;
  /// Sum of the exchanges' measured Transport::Ship seconds (informational;
  /// already contained in compute_seconds / the critical path).
  double measured_network_seconds = 0;
  /// Sum of the exchanges' worker-reported fragment compute seconds (socket
  /// transport with fragment dispatch — see docs/DISTRIBUTED.md). Like
  /// measured_network_seconds this is informational: the parent times the
  /// whole fragment round trip inside the build's partition_seconds, so the
  /// worker compute is already contained in compute_seconds / the critical
  /// path. Nonzero only when destinations were actually built remotely.
  double remote_compute_seconds = 0;

  double stage_sum_seconds() const { return compute_seconds + network_seconds; }
  double total_seconds() const {
    return has_critical_path ? critical_path_seconds : stage_sum_seconds();
  }
};

MakespanReport ComputeMakespan(const hyracks::ExecStats& stats,
                               const hyracks::ClusterTopology& topology,
                               const NetworkModel& net = {});

/// Modeled seconds to push `remote_bytes` through the per-node NICs — the
/// exact figure both makespan variants charge an exchange. Exposed so the
/// observability layer can emit the same modeled network time as trace spans
/// next to the measured compute spans.
double ModeledNetworkSeconds(uint64_t remote_bytes, int nodes,
                             const NetworkModel& net = {});

/// One-line rendering for bench output.
std::string FormatMakespan(const MakespanReport& report);

}  // namespace simdb::cluster

#endif  // SIMDB_CLUSTER_COST_MODEL_H_
