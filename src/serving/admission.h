#ifndef SIMDB_SERVING_ADMISSION_H_
#define SIMDB_SERVING_ADMISSION_H_

#include <cstddef>
#include <cstdint>
#include <deque>

namespace simdb::serving {

/// Coarse workload class assigned at submit time from the query's AST shape
/// (two or more dataset references = a join = heavy). Drives weighted
/// fairness: cheap selections must not starve behind long similarity joins.
enum class QueryClass { kCheap, kHeavy };

/// Bounded two-class admission queue with weighted fair dequeue.
///
/// Each class is FIFO internally; across classes the next query is chosen by
/// smallest virtual finish time (served_so_far + 1) / weight — classic
/// weighted round robin. With cheap_weight=3, heavy_weight=1 a full queue
/// drains cheap:heavy 3:1, so a burst of heavy joins delays a waiting cheap
/// selection by a bounded number of heavy dequeues instead of the whole
/// burst. Ties break toward cheap (lower tail latency is the whole point).
///
/// Push refusal (queue at max_depth) is the engine's load-shedding signal:
/// the caller maps it to kOverloaded, never blocks.
///
/// NOT thread-safe on its own — the engine calls it under its mutex. Kept
/// lock-free of time and randomness so the dequeue order is a pure function
/// of the push/pop history (asserted by the admission unit tests).
class WeightedQueue {
 public:
  WeightedQueue(size_t max_depth, double cheap_weight, double heavy_weight)
      : max_depth_(max_depth),
        cheap_weight_(cheap_weight > 0 ? cheap_weight : 1.0),
        heavy_weight_(heavy_weight > 0 ? heavy_weight : 1.0) {}

  /// False when the queue is full; nothing is enqueued.
  bool TryPush(QueryClass c, uint64_t id) {
    if (depth() >= max_depth_) return false;
    (c == QueryClass::kCheap ? cheap_ : heavy_).push_back(id);
    return true;
  }

  /// Pops the next id by weighted fairness; false when empty.
  bool Pop(QueryClass* c, uint64_t* id) {
    if (cheap_.empty() && heavy_.empty()) return false;
    QueryClass pick;
    if (cheap_.empty()) {
      pick = QueryClass::kHeavy;
    } else if (heavy_.empty()) {
      pick = QueryClass::kCheap;
    } else {
      double cheap_finish = (cheap_served_ + 1) / cheap_weight_;
      double heavy_finish = (heavy_served_ + 1) / heavy_weight_;
      pick = cheap_finish <= heavy_finish ? QueryClass::kCheap
                                          : QueryClass::kHeavy;
    }
    return PopClass(pick, c, id);
  }

  /// Pops the oldest entry of exactly `want` (the reserved cheap slot only
  /// ever takes cheap work); false when that class is empty.
  bool PopClass(QueryClass want, QueryClass* c, uint64_t* id) {
    std::deque<uint64_t>& q = want == QueryClass::kCheap ? cheap_ : heavy_;
    if (q.empty()) return false;
    *c = want;
    *id = q.front();
    q.pop_front();
    if (want == QueryClass::kCheap) {
      ++cheap_served_;
    } else {
      ++heavy_served_;
    }
    return true;
  }

  /// Removes `id` wherever it is queued (client cancelled while waiting).
  bool Remove(uint64_t id) {
    for (std::deque<uint64_t>* q : {&cheap_, &heavy_}) {
      for (auto it = q->begin(); it != q->end(); ++it) {
        if (*it == id) {
          q->erase(it);
          return true;
        }
      }
    }
    return false;
  }

  size_t depth() const { return cheap_.size() + heavy_.size(); }
  size_t depth(QueryClass c) const {
    return c == QueryClass::kCheap ? cheap_.size() : heavy_.size();
  }
  size_t max_depth() const { return max_depth_; }
  bool empty() const { return cheap_.empty() && heavy_.empty(); }

 private:
  size_t max_depth_;
  double cheap_weight_;
  double heavy_weight_;
  std::deque<uint64_t> cheap_;
  std::deque<uint64_t> heavy_;
  uint64_t cheap_served_ = 0;
  uint64_t heavy_served_ = 0;
};

}  // namespace simdb::serving

#endif  // SIMDB_SERVING_ADMISSION_H_
