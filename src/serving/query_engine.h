#ifndef SIMDB_SERVING_QUERY_ENGINE_H_
#define SIMDB_SERVING_QUERY_ENGINE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/cancellation.h"
#include "common/thread_annotations.h"
#include "common/result.h"
#include "core/query_processor.h"
#include "hyracks/budget.h"
#include "serving/admission.h"

namespace simdb::serving {

/// Serving-layer knobs on top of core::EngineOptions.
struct ServingOptions {
  /// Worker threads = queries in flight at once. One of them is the
  /// reserved cheap slot when reserve_cheap_slot is on (and max_concurrent
  /// is > 1): it only ever takes cheap queries, so a selection's p99 stays
  /// bounded while heavy joins occupy every other slot.
  int max_concurrent = 4;
  /// Bounded wait queue; a submit that finds it full is refused immediately
  /// with kOverloaded (load shedding, never blocking the client).
  size_t max_queue = 16;
  double cheap_weight = 3.0;
  double heavy_weight = 1.0;
  bool reserve_cheap_slot = true;
  /// Defaults applied to every query unless overridden per submit; 0 means
  /// unlimited / no deadline.
  int64_t default_memory_quota_bytes = 0;
  int64_t default_task_quota = 0;
  double default_deadline_seconds = 0;
};

/// Per-submit overrides; a negative field means "use the engine default".
struct SubmitOptions {
  int64_t memory_quota_bytes = -1;
  int64_t task_quota = -1;
  double deadline_seconds = -1;
};

/// Where a query is in its lifecycle (see docs/SERVING.md).
enum class QueryState { kQueued, kRunning, kDone };

/// The client's handle to one submitted query: await the outcome, cancel it,
/// inspect its resource accounting. Shared between the client thread and the
/// worker executing the query; all state transitions happen under its own
/// mutex, so Wait/Cancel may race Submit/completion freely.
class QueryTicket {
 public:
  uint64_t id() const { return id_; }
  QueryClass query_class() const { return class_; }

  /// Client-initiated cooperative cancel: running tasks finish, everything
  /// else is skipped, the ticket completes with kCancelled. Cancelling a
  /// still-queued query completes it without executing anything. Idempotent;
  /// a no-op once the query finished.
  void Cancel();

  /// Blocks until the query reaches kDone; returns its final status.
  const Status& Wait();

  bool Done() const;
  QueryState state() const;

  /// Valid once Done(); the result is meaningful only when status().ok().
  const Status& status() const;
  const core::QueryResult& result() const;

  /// Time spent queued (admission to execution start) and executing.
  double queue_seconds() const;
  double exec_seconds() const;

  /// The query's resource accounting (memory returns to zero once done).
  const hyracks::ResourceBudget& budget() const { return budget_; }

 private:
  friend class QueryEngine;

  QueryTicket(uint64_t id, QueryClass c, std::string aql,
              int64_t memory_quota_bytes, int64_t task_quota)
      : id_(id),
        class_(c),
        aql_(std::move(aql)),
        budget_(memory_quota_bytes, task_quota) {}

  const uint64_t id_;
  const QueryClass class_;
  const std::string aql_;
  CancellationToken cancel_;
  hyracks::ResourceBudget budget_;

  mutable Mutex mu_{lockrank::Rank::kServingTicket, "QueryTicket::mu_"};
  /// Waiters all share the one "done" predicate; NotifyAll wakes every
  /// client blocked in Wait().
  CondVar cv_;
  QueryState state_ SIMDB_GUARDED_BY(mu_) = QueryState::kQueued;
  Status status_ SIMDB_GUARDED_BY(mu_) = Status::OK();
  core::QueryResult result_ SIMDB_GUARDED_BY(mu_);
  std::chrono::steady_clock::time_point submit_tp_;
  double queue_seconds_ SIMDB_GUARDED_BY(mu_) = 0;
  double exec_seconds_ SIMDB_GUARDED_BY(mu_) = 0;
};

class QueryEngine;

/// A client session: carries a prelude of session `set` statements and
/// default quotas applied to every query submitted through it. Sessions are
/// cheap handles — any number may submit concurrently.
class Session {
 public:
  /// Statements prepended to every submit ("set simfunction 'jaccard'; ...").
  void set_prelude(std::string prelude) { prelude_ = std::move(prelude); }
  void set_defaults(SubmitOptions defaults) { defaults_ = defaults; }

  Result<std::shared_ptr<QueryTicket>> Submit(const std::string& aql);
  Result<std::shared_ptr<QueryTicket>> Submit(const std::string& aql,
                                              const SubmitOptions& opts);

  uint64_t session_id() const { return session_id_; }
  uint64_t queries_submitted() const {
    return submitted_.load(std::memory_order_relaxed);
  }

 private:
  friend class QueryEngine;
  Session(QueryEngine* engine, uint64_t id)
      : engine_(engine), session_id_(id) {}

  QueryEngine* engine_;
  const uint64_t session_id_;
  std::string prelude_;
  SubmitOptions defaults_;
  std::atomic<uint64_t> submitted_{0};
};

/// Consistent snapshot of the engine's serving counters. The invariant the
/// stress test asserts: submitted == admitted + rejected_queue_full +
/// rejected_parse, and admitted == completed + failed + cancelled +
/// deadline_exceeded + rejected_quota + queued + running.
struct ServingStats {
  uint64_t submitted = 0;
  uint64_t admitted = 0;
  uint64_t rejected_queue_full = 0;
  uint64_t rejected_parse = 0;
  uint64_t rejected_quota = 0;  // kResourceExhausted outcomes
  uint64_t completed = 0;
  uint64_t failed = 0;
  uint64_t cancelled = 0;
  uint64_t deadline_exceeded = 0;
  uint64_t queued = 0;   // currently waiting
  uint64_t running = 0;  // currently executing
  uint64_t peak_queue_depth = 0;
};

/// The concurrent serving front-end: owns one core::QueryProcessor (shared
/// catalogs, storage, thread pool) and multiplexes N client sessions onto it.
/// Submit never blocks: a query is admitted into the bounded weighted queue
/// or refused with kOverloaded. max_concurrent worker threads drain the
/// queue, each running its query through QueryProcessor::ExecuteConcurrent
/// under the query's own cancellation token and resource budget.
///
/// DDL / data loading go through processor().Execute(), which serializes
/// exclusively against all in-flight queries (a shared_mutex inside the
/// processor) — the serving path itself is read-only.
class QueryEngine {
 public:
  QueryEngine(core::EngineOptions engine_options,
              ServingOptions serving_options);
  ~QueryEngine();

  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  /// The underlying single-session engine, for setup (DDL, loads) and
  /// sequential baselines. Safe to call concurrently with serving traffic —
  /// its mutating entry points take the state lock exclusively.
  core::QueryProcessor& processor() { return processor_; }

  const ServingOptions& serving_options() const { return serving_; }

  std::shared_ptr<Session> CreateSession();

  /// Admits `aql` (classified cheap/heavy from its AST) or refuses it:
  ///   - kParseError: the program does not parse (serving.rejected.parse)
  ///   - kOverloaded: the wait queue is full (serving.rejected.queue_full)
  /// On success the ticket is queued; await it with ticket->Wait().
  Result<std::shared_ptr<QueryTicket>> Submit(const std::string& aql,
                                              const SubmitOptions& opts = {});

  /// Drains the engine: waits for running queries, completes still-queued
  /// tickets as kCancelled without executing them, joins the workers.
  /// Idempotent; the destructor calls it.
  void Shutdown();

  ServingStats Stats() const;

 private:
  void WorkerLoop(bool cheap_only) SIMDB_EXCLUDES(mu_);
  std::shared_ptr<QueryTicket> NextTicketLocked(bool cheap_only)
      SIMDB_REQUIRES(mu_);
  void RunTicket(const std::shared_ptr<QueryTicket>& ticket);
  void FinishTicket(const std::shared_ptr<QueryTicket>& ticket, Status status,
                    core::QueryResult result, double exec_seconds);

  core::QueryProcessor processor_;
  ServingOptions serving_;

  /// Rank kServingEngine: metric lookups (kMetrics) happen while it is
  /// held, and ticket mutexes (kServingTicket) nest inside worker paths.
  mutable Mutex mu_{lockrank::Rank::kServingEngine, "QueryEngine::mu_"};
  /// Heterogeneous waiters (the reserved cheap-only worker waits on a
  /// different predicate than general workers), so every wake must be
  /// NotifyAll — a NotifyOne could land on a cheap-only worker that goes
  /// right back to sleep while a general query waits (the PR 8 lost-wakeup
  /// pattern; see docs/ANALYSIS.md).
  CondVar work_cv_;
  WeightedQueue queue_ SIMDB_GUARDED_BY(mu_);
  std::unordered_map<uint64_t, std::shared_ptr<QueryTicket>> queued_
      SIMDB_GUARDED_BY(mu_);
  bool shutdown_ SIMDB_GUARDED_BY(mu_) = false;
  std::vector<std::thread> workers_;

  std::atomic<uint64_t> next_query_id_{1};
  std::atomic<uint64_t> next_session_id_{1};

  // Serving counters (mirrored into obs::MetricsRegistry::Global()).
  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> admitted_{0};
  std::atomic<uint64_t> rejected_queue_full_{0};
  std::atomic<uint64_t> rejected_parse_{0};
  std::atomic<uint64_t> rejected_quota_{0};
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> failed_{0};
  std::atomic<uint64_t> cancelled_{0};
  std::atomic<uint64_t> deadline_exceeded_{0};
  std::atomic<uint64_t> running_{0};
  std::atomic<uint64_t> peak_queue_depth_{0};
};

}  // namespace simdb::serving

#endif  // SIMDB_SERVING_QUERY_ENGINE_H_
