#include "serving/query_engine.h"

#include <algorithm>
#include <utility>

#include "aql/parser.h"
#include "observability/metrics.h"

namespace simdb::serving {

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

void CountRefsExpr(const aql::AExprPtr& e, int* n);

void CountRefsFlwor(const aql::FlworPtr& f, int* n) {
  if (f == nullptr) return;
  for (const aql::Clause& c : f->clauses) {
    CountRefsExpr(c.source, n);
    CountRefsExpr(c.condition, n);
    for (const auto& [key, expr] : c.group_keys) CountRefsExpr(expr, n);
    for (const auto& [expr, asc] : c.order_keys) CountRefsExpr(expr, n);
    for (const auto& [var, expr] : c.join_bindings) CountRefsExpr(expr, n);
    CountRefsExpr(c.join_condition, n);
  }
  CountRefsExpr(f->return_expr, n);
}

void CountRefsExpr(const aql::AExprPtr& e, int* n) {
  if (e == nullptr) return;
  if (e->kind == aql::AExpr::Kind::kDatasetRef) ++*n;
  for (const aql::AExprPtr& c : e->children) CountRefsExpr(c, n);
  CountRefsFlwor(e->subquery, n);
  for (const aql::FlworPtr& b : e->branches) CountRefsFlwor(b, n);
}

/// Two or more dataset references anywhere in the program's queries = a
/// join = heavy. Everything else (selections, lookups, explains) is cheap.
QueryClass ClassifyProgram(const aql::Program& program) {
  int refs = 0;
  for (const aql::Statement& stmt : program.statements) {
    if (stmt.kind == aql::Statement::Kind::kQuery ||
        stmt.kind == aql::Statement::Kind::kExplain) {
      CountRefsExpr(stmt.body, &refs);
    }
  }
  return refs >= 2 ? QueryClass::kHeavy : QueryClass::kCheap;
}

/// Bound on the post-cancel/deadline transport drain. The ships of the
/// finished query are synchronous and already returned, so the drain is a
/// liveness check on the engine-shared transport, not a correctness step —
/// and unrelated concurrent queries keep shipping through the same backend,
/// so an unbounded wait could starve the finishing worker indefinitely.
constexpr double kFinishDrainTimeoutSeconds = 1.0;

void BumpMax(std::atomic<uint64_t>& slot, uint64_t candidate) {
  uint64_t cur = slot.load(std::memory_order_relaxed);
  while (candidate > cur && !slot.compare_exchange_weak(
                                cur, candidate, std::memory_order_relaxed)) {
  }
}

/// A cancelled or deadline-exceeded query may have abandoned exchange
/// destinations mid-ship; drain the transport so the dead query leaves no
/// bytes in flight (for the socket backend this also proves every worker is
/// alive and idle). Under fragment dispatch the dead query's id is first
/// recorded in every worker's cancel ledger so a fragment racing the
/// cancellation is refused rather than executed (see docs/DISTRIBUTED.md).
/// Both steps are bounded and their failures are counted — a silent
/// `(void)` discard would hide dead socket workers.
void DrainTransportAfterAbort(core::QueryProcessor& processor,
                              obs::MetricsRegistry& reg, uint64_t query_id) {
  Status cancelled =
      processor.CancelRemoteFragments(query_id, kFinishDrainTimeoutSeconds);
  Status drained = processor.DrainTransport(kFinishDrainTimeoutSeconds);
  if (!cancelled.ok() || !drained.ok()) {
    reg.GetCounter("serving.transport_drain_failures")->Increment();
  }
}

}  // namespace

// ---- QueryTicket ----

void QueryTicket::Cancel() { cancel_.RequestCancel(); }

const Status& QueryTicket::Wait() {
  MutexLock lock(mu_);
  while (state_ != QueryState::kDone) cv_.Wait(lock);
  return status_;
}

bool QueryTicket::Done() const {
  MutexLock lock(mu_);
  return state_ == QueryState::kDone;
}

QueryState QueryTicket::state() const {
  MutexLock lock(mu_);
  return state_;
}

const Status& QueryTicket::status() const {
  MutexLock lock(mu_);
  return status_;
}

const core::QueryResult& QueryTicket::result() const {
  MutexLock lock(mu_);
  return result_;
}

double QueryTicket::queue_seconds() const {
  MutexLock lock(mu_);
  return queue_seconds_;
}

double QueryTicket::exec_seconds() const {
  MutexLock lock(mu_);
  return exec_seconds_;
}

// ---- Session ----

Result<std::shared_ptr<QueryTicket>> Session::Submit(const std::string& aql) {
  return Submit(aql, defaults_);
}

Result<std::shared_ptr<QueryTicket>> Session::Submit(
    const std::string& aql, const SubmitOptions& opts) {
  submitted_.fetch_add(1, std::memory_order_relaxed);
  return engine_->Submit(prelude_.empty() ? aql : prelude_ + "\n" + aql, opts);
}

// ---- QueryEngine ----

QueryEngine::QueryEngine(core::EngineOptions engine_options,
                         ServingOptions serving_options)
    : processor_(std::move(engine_options)),
      serving_(serving_options),
      queue_(serving_options.max_queue, serving_options.cheap_weight,
             serving_options.heavy_weight) {
  // Touch every serving metric so the catalogue check sees the full set even
  // in runs that never hit a given outcome (rejections, deadlines, ...).
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  for (const char* name :
       {"serving.submitted", "serving.admitted", "serving.completed",
        "serving.failed", "serving.cancelled", "serving.deadline_exceeded",
        "serving.rejected.queue_full", "serving.rejected.quota",
        "serving.rejected.parse", "serving.transport_drain_failures"}) {
    reg.GetCounter(name);
  }
  for (const char* name :
       {"serving.queue_depth", "serving.queue_wait_micros",
        "serving.exec_micros", "serving.latency_micros",
        "serving.cheap.latency_micros", "serving.heavy.latency_micros"}) {
    reg.GetHistogram(name);
  }

  int n = std::max(1, serving_.max_concurrent);
  bool reserve = serving_.reserve_cheap_slot && n > 1;
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    bool cheap_only = reserve && i == 0;
    workers_.emplace_back([this, cheap_only] { WorkerLoop(cheap_only); });
  }
}

QueryEngine::~QueryEngine() { Shutdown(); }

std::shared_ptr<Session> QueryEngine::CreateSession() {
  return std::shared_ptr<Session>(new Session(
      this, next_session_id_.fetch_add(1, std::memory_order_relaxed)));
}

Result<std::shared_ptr<QueryTicket>> QueryEngine::Submit(
    const std::string& aql, const SubmitOptions& opts) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  submitted_.fetch_add(1, std::memory_order_relaxed);
  reg.GetCounter("serving.submitted")->Increment();

  // Parse once up front: a malformed program is refused here (distinct
  // metric), and the parse feeds the cheap/heavy classification.
  Result<aql::Program> parsed = aql::ParseProgram(aql);
  if (!parsed.ok()) {
    rejected_parse_.fetch_add(1, std::memory_order_relaxed);
    reg.GetCounter("serving.rejected.parse")->Increment();
    return parsed.status();
  }
  QueryClass qc = ClassifyProgram(parsed.value());

  int64_t memory_quota = opts.memory_quota_bytes >= 0
                             ? opts.memory_quota_bytes
                             : serving_.default_memory_quota_bytes;
  int64_t task_quota =
      opts.task_quota >= 0 ? opts.task_quota : serving_.default_task_quota;
  double deadline = opts.deadline_seconds >= 0
                        ? opts.deadline_seconds
                        : serving_.default_deadline_seconds;

  auto ticket = std::shared_ptr<QueryTicket>(
      new QueryTicket(next_query_id_.fetch_add(1, std::memory_order_relaxed),
                      qc, aql, memory_quota, task_quota));
  ticket->submit_tp_ = Clock::now();
  // The deadline clock starts at admission: it bounds total latency (queue
  // wait included), which is what a client timeout actually means.
  if (deadline > 0) ticket->cancel_.SetDeadlineAfter(deadline);

  {
    MutexLock lock(mu_);
    if (shutdown_ || !queue_.TryPush(qc, ticket->id())) {
      rejected_queue_full_.fetch_add(1, std::memory_order_relaxed);
      reg.GetCounter("serving.rejected.queue_full")->Increment();
      return Status::Overloaded(
          shutdown_ ? "engine is shutting down"
                    : "admission queue full (" +
                          std::to_string(queue_.max_depth()) + " waiting)");
    }
    queued_[ticket->id()] = ticket;
    admitted_.fetch_add(1, std::memory_order_relaxed);
    reg.GetCounter("serving.admitted")->Increment();
    uint64_t depth = queue_.depth();
    reg.GetHistogram("serving.queue_depth")->Observe(depth);
    BumpMax(peak_queue_depth_, depth);
  }
  work_cv_.NotifyAll();
  return ticket;
}

void QueryEngine::WorkerLoop(bool cheap_only) {
  for (;;) {
    std::shared_ptr<QueryTicket> ticket;
    {
      MutexLock lock(mu_);
      while (!shutdown_ &&
             (cheap_only ? queue_.depth(QueryClass::kCheap) == 0
                         : queue_.empty())) {
        work_cv_.Wait(lock);
      }
      if (shutdown_) return;  // leftovers are cancelled by Shutdown
      ticket = NextTicketLocked(cheap_only);
    }
    if (ticket != nullptr) RunTicket(ticket);
  }
}

std::shared_ptr<QueryTicket> QueryEngine::NextTicketLocked(bool cheap_only) {
  QueryClass c;
  uint64_t id = 0;
  bool got = cheap_only ? queue_.PopClass(QueryClass::kCheap, &c, &id)
                        : queue_.Pop(&c, &id);
  if (!got) return nullptr;
  auto it = queued_.find(id);
  std::shared_ptr<QueryTicket> ticket = std::move(it->second);
  queued_.erase(it);
  return ticket;
}

void QueryEngine::RunTicket(const std::shared_ptr<QueryTicket>& ticket) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  double queue_seconds = SecondsSince(ticket->submit_tp_);
  {
    MutexLock lock(ticket->mu_);
    ticket->state_ = QueryState::kRunning;
    ticket->queue_seconds_ = queue_seconds;
  }
  running_.fetch_add(1, std::memory_order_relaxed);
  reg.GetHistogram("serving.queue_wait_micros")
      ->Observe(static_cast<uint64_t>(queue_seconds * 1e6));

  // A cancel or deadline that fired while queued finishes the ticket
  // without executing anything.
  Status pre = ticket->cancel_.Check();
  if (!pre.ok()) {
    running_.fetch_sub(1, std::memory_order_relaxed);
    FinishTicket(ticket, std::move(pre), core::QueryResult(), 0.0);
    return;
  }

  core::QueryGovernor gov;
  gov.cancel = &ticket->cancel_;
  gov.budget = &ticket->budget_;
  gov.query_id = ticket->id();
  core::QueryResult result;
  Clock::time_point exec_start = Clock::now();
  Status s = processor_.ExecuteConcurrent(ticket->aql_, gov, &result);
  double exec_seconds = SecondsSince(exec_start);
  running_.fetch_sub(1, std::memory_order_relaxed);
  FinishTicket(ticket, std::move(s), std::move(result), exec_seconds);
}

void QueryEngine::FinishTicket(const std::shared_ptr<QueryTicket>& ticket,
                               Status status, core::QueryResult result,
                               double exec_seconds) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  switch (status.code()) {
    case StatusCode::kOk:
      completed_.fetch_add(1, std::memory_order_relaxed);
      reg.GetCounter("serving.completed")->Increment();
      break;
    case StatusCode::kCancelled:
      cancelled_.fetch_add(1, std::memory_order_relaxed);
      reg.GetCounter("serving.cancelled")->Increment();
      DrainTransportAfterAbort(processor_, reg, ticket->id());
      break;
    case StatusCode::kDeadlineExceeded:
      deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
      reg.GetCounter("serving.deadline_exceeded")->Increment();
      DrainTransportAfterAbort(processor_, reg, ticket->id());
      break;
    case StatusCode::kResourceExhausted:
      rejected_quota_.fetch_add(1, std::memory_order_relaxed);
      reg.GetCounter("serving.rejected.quota")->Increment();
      break;
    default:
      failed_.fetch_add(1, std::memory_order_relaxed);
      reg.GetCounter("serving.failed")->Increment();
      break;
  }
  double latency_seconds = SecondsSince(ticket->submit_tp_);
  reg.GetHistogram("serving.exec_micros")
      ->Observe(static_cast<uint64_t>(exec_seconds * 1e6));
  reg.GetHistogram("serving.latency_micros")
      ->Observe(static_cast<uint64_t>(latency_seconds * 1e6));
  reg.GetHistogram(ticket->query_class() == QueryClass::kCheap
                       ? "serving.cheap.latency_micros"
                       : "serving.heavy.latency_micros")
      ->Observe(static_cast<uint64_t>(latency_seconds * 1e6));
  {
    MutexLock lock(ticket->mu_);
    ticket->status_ = std::move(status);
    ticket->result_ = std::move(result);
    ticket->exec_seconds_ = exec_seconds;
    ticket->state_ = QueryState::kDone;
  }
  ticket->cv_.NotifyAll();
}

void QueryEngine::Shutdown() {
  {
    MutexLock lock(mu_);
    shutdown_ = true;
  }
  work_cv_.NotifyAll();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  // Queries still waiting never execute: complete them as cancelled so
  // their clients' Wait() returns.
  std::vector<std::shared_ptr<QueryTicket>> leftover;
  {
    MutexLock lock(mu_);
    QueryClass c;
    uint64_t id = 0;
    while (queue_.Pop(&c, &id)) {
      auto it = queued_.find(id);
      if (it != queued_.end()) {
        leftover.push_back(std::move(it->second));
        queued_.erase(it);
      }
    }
  }
  for (const std::shared_ptr<QueryTicket>& t : leftover) {
    FinishTicket(t, Status::Cancelled("engine shutdown"), core::QueryResult(),
                 0.0);
  }
}

ServingStats QueryEngine::Stats() const {
  ServingStats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.admitted = admitted_.load(std::memory_order_relaxed);
  s.rejected_queue_full = rejected_queue_full_.load(std::memory_order_relaxed);
  s.rejected_parse = rejected_parse_.load(std::memory_order_relaxed);
  s.rejected_quota = rejected_quota_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.failed = failed_.load(std::memory_order_relaxed);
  s.cancelled = cancelled_.load(std::memory_order_relaxed);
  s.deadline_exceeded = deadline_exceeded_.load(std::memory_order_relaxed);
  s.running = running_.load(std::memory_order_relaxed);
  s.peak_queue_depth = peak_queue_depth_.load(std::memory_order_relaxed);
  {
    MutexLock lock(mu_);
    s.queued = queue_.depth();
  }
  return s;
}

}  // namespace simdb::serving
