#include "similarity/jaccard.h"

#include <algorithm>
#include <cmath>

namespace simdb::similarity {

double JaccardSorted(const std::vector<std::string>& a,
                     const std::vector<std::string>& b) {
  // 0/0 is defined as 0 so that empty fields never match (keeps scan-based,
  // index-based, and three-stage plans consistent with each other).
  if (a.empty() && b.empty()) return 0.0;
  size_t i = 0, j = 0, inter = 0;
  while (i < a.size() && j < b.size()) {
    int c = a[i].compare(b[j]);
    if (c == 0) {
      ++inter;
      ++i;
      ++j;
    } else if (c < 0) {
      ++i;
    } else {
      ++j;
    }
  }
  size_t uni = a.size() + b.size() - inter;
  return uni == 0 ? 1.0 : static_cast<double>(inter) / static_cast<double>(uni);
}

double Jaccard(std::vector<std::string> a, std::vector<std::string> b) {
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  return JaccardSorted(a, b);
}

double JaccardCheckSorted(const std::vector<std::string>& a,
                          const std::vector<std::string>& b, double delta) {
  if (a.empty() && b.empty()) return 0.0 >= delta ? 0.0 : -1.0;
  size_t la = a.size(), lb = b.size();
  // Length filter: Jaccard <= min/max.
  double min_len = static_cast<double>(std::min(la, lb));
  double max_len = static_cast<double>(std::max(la, lb));
  if (max_len > 0 && min_len / max_len < delta) return -1.0;

  size_t i = 0, j = 0, inter = 0;
  while (i < la && j < lb) {
    // Early termination: even if every remaining element matched, the best
    // achievable intersection is inter + remaining_min.
    size_t remaining = std::min(la - i, lb - j);
    size_t best_inter = inter + remaining;
    double best_jacc = static_cast<double>(best_inter) /
                       static_cast<double>(la + lb - best_inter);
    if (best_jacc < delta) return -1.0;
    int c = a[i].compare(b[j]);
    if (c == 0) {
      ++inter;
      ++i;
      ++j;
    } else if (c < 0) {
      ++i;
    } else {
      ++j;
    }
  }
  double jacc = static_cast<double>(inter) /
                static_cast<double>(la + lb - inter);
  return jacc >= delta ? jacc : -1.0;
}

int PrefixLenJaccard(int len, double delta) {
  if (len <= 0) return 0;
  int keep = static_cast<int>(std::ceil(delta * len));
  int prefix = len - keep + 1;
  if (prefix < 0) prefix = 0;
  if (prefix > len) prefix = len;
  return prefix;
}

int JaccardTOccurrence(int query_len, double delta) {
  int t = static_cast<int>(std::ceil(delta * query_len));
  return t < 1 ? 1 : t;
}

int JaccardMinLength(int len, double delta) {
  return static_cast<int>(std::ceil(delta * len));
}

int JaccardMaxLength(int len, double delta) {
  if (delta <= 0) return 1 << 30;
  return static_cast<int>(std::floor(len / delta));
}

namespace {

/// Shared merge for integer element types. The comparisons are branch-light
/// (no three-way string compare), which is where the id kernels win.
template <typename T>
double JaccardSortedNum(const std::vector<T>& a, const std::vector<T>& b) {
  if (a.empty() && b.empty()) return 0.0;
  size_t i = 0, j = 0, inter = 0;
  while (i < a.size() && j < b.size()) {
    T x = a[i], y = b[j];
    if (x == y) {
      ++inter;
      ++i;
      ++j;
    } else if (x < y) {
      ++i;
    } else {
      ++j;
    }
  }
  size_t uni = a.size() + b.size() - inter;
  return uni == 0 ? 1.0 : static_cast<double>(inter) / static_cast<double>(uni);
}

template <typename T>
double JaccardCheckSortedNum(const std::vector<T>& a, const std::vector<T>& b,
                             double delta) {
  if (a.empty() && b.empty()) return 0.0 >= delta ? 0.0 : -1.0;
  size_t la = a.size(), lb = b.size();
  double min_len = static_cast<double>(std::min(la, lb));
  double max_len = static_cast<double>(std::max(la, lb));
  if (max_len > 0 && min_len / max_len < delta) return -1.0;

  // The divisionless form of best_jacc < delta screens most steps; a
  // positive screen is confirmed with the exact division so the early exit
  // can never disagree with the final `jacc >= delta` test at a rounding
  // boundary (the differential harness requires bit-identical decisions).
  double dsum = delta * static_cast<double>(la + lb);
  size_t i = 0, j = 0, inter = 0;
  while (i < la && j < lb) {
    size_t best_inter = inter + std::min(la - i, lb - j);
    if ((1.0 + delta) * static_cast<double>(best_inter) < dsum) {
      double best_jacc = static_cast<double>(best_inter) /
                         static_cast<double>(la + lb - best_inter);
      if (best_jacc < delta) return -1.0;
    }
    T x = a[i], y = b[j];
    if (x == y) {
      ++inter;
      ++i;
      ++j;
    } else if (x < y) {
      ++i;
    } else {
      ++j;
    }
  }
  double jacc = static_cast<double>(inter) /
                static_cast<double>(la + lb - inter);
  return jacc >= delta ? jacc : -1.0;
}

}  // namespace

double JaccardSortedIds(const std::vector<uint32_t>& a,
                        const std::vector<uint32_t>& b) {
  return JaccardSortedNum(a, b);
}

double JaccardCheckSortedIds(const std::vector<uint32_t>& a,
                             const std::vector<uint32_t>& b, double delta) {
  return JaccardCheckSortedNum(a, b, delta);
}

size_t IntersectSortedIds(const std::vector<uint32_t>& a,
                          const std::vector<uint32_t>& b) {
  size_t i = 0, j = 0, inter = 0;
  while (i < a.size() && j < b.size()) {
    uint32_t x = a[i], y = b[j];
    if (x == y) {
      ++inter;
      ++i;
      ++j;
    } else if (x < y) {
      ++i;
    } else {
      ++j;
    }
  }
  return inter;
}

double JaccardSortedInt64(const std::vector<int64_t>& a,
                          const std::vector<int64_t>& b) {
  return JaccardSortedNum(a, b);
}

double JaccardCheckSortedInt64(const std::vector<int64_t>& a,
                               const std::vector<int64_t>& b, double delta) {
  return JaccardCheckSortedNum(a, b, delta);
}

namespace {

size_t SortedIntersection(const std::vector<std::string>& a,
                          const std::vector<std::string>& b) {
  size_t i = 0, j = 0, inter = 0;
  while (i < a.size() && j < b.size()) {
    int c = a[i].compare(b[j]);
    if (c == 0) {
      ++inter;
      ++i;
      ++j;
    } else if (c < 0) {
      ++i;
    } else {
      ++j;
    }
  }
  return inter;
}

}  // namespace

double DiceSorted(const std::vector<std::string>& a,
                  const std::vector<std::string>& b) {
  if (a.empty() && b.empty()) return 0.0;
  return 2.0 * static_cast<double>(SortedIntersection(a, b)) /
         static_cast<double>(a.size() + b.size());
}

double CosineSorted(const std::vector<std::string>& a,
                    const std::vector<std::string>& b) {
  if (a.empty() || b.empty()) return 0.0;
  return static_cast<double>(SortedIntersection(a, b)) /
         std::sqrt(static_cast<double>(a.size()) *
                   static_cast<double>(b.size()));
}

}  // namespace simdb::similarity
