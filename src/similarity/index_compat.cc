#include "similarity/index_compat.h"

namespace simdb::similarity {

std::string_view IndexKindToString(IndexKind kind) {
  switch (kind) {
    case IndexKind::kBtree:
      return "btree";
    case IndexKind::kNGram:
      return "ngram";
    case IndexKind::kKeyword:
      return "keyword";
  }
  return "?";
}

bool IsIndexCompatible(IndexKind kind, std::string_view function_name) {
  switch (kind) {
    case IndexKind::kNGram:
      return function_name == "edit-distance" ||
             function_name == "edit-distance-check" ||
             function_name == "contains";
    case IndexKind::kKeyword:
      return function_name == "similarity-jaccard" ||
             function_name == "similarity-jaccard-check";
    case IndexKind::kBtree:
      return function_name == "eq";
  }
  return false;
}

}  // namespace simdb::similarity
