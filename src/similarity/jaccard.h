#ifndef SIMDB_SIMILARITY_JACCARD_H_
#define SIMDB_SIMILARITY_JACCARD_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace simdb::similarity {

/// Exact multiset Jaccard |r ∩ s| / |r ∪ s| over two token multisets given as
/// *sorted* vectors. Duplicate tokens intersect up to min(count_r, count_s)
/// and union up to max(count_r, count_s). Both-empty inputs yield 0 (0/0 is
/// defined as no match so empty fields never join; all plan variants agree).
double JaccardSorted(const std::vector<std::string>& a,
                     const std::vector<std::string>& b);

/// Convenience wrapper that sorts copies of the inputs first.
double Jaccard(std::vector<std::string> a, std::vector<std::string> b);

/// Early-terminating verifier: returns the Jaccard value if it is >= delta,
/// else -1. Applies the length filter (|a| and |b| must satisfy
/// delta <= min/max) and aborts the merge as soon as the remaining elements
/// cannot reach the threshold (the paper's `similarity-jaccard-check`).
/// Inputs must be sorted.
double JaccardCheckSorted(const std::vector<std::string>& a,
                          const std::vector<std::string>& b, double delta);

/// Prefix length for Jaccard threshold `delta` over a set of size `len`:
/// two sets r, s with Jaccard(r,s) >= delta must share at least one token in
/// the first (len - ceil(delta*len) + 1) tokens of their global ordering
/// (the paper's `prefix-len-jaccard()` builtin).
int PrefixLenJaccard(int len, double delta);

/// T-occurrence lower bound for an index lookup with query token-set size
/// `query_len`: any answer shares at least ceil(delta * query_len) tokens
/// with the query. Always >= 1 for delta > 0, so Jaccard has no corner case
/// (paper Section 5.1.1).
int JaccardTOccurrence(int query_len, double delta);

/// Length filter bounds: a set s can only satisfy Jaccard(r, s) >= delta if
/// |s| is within [ceil(delta*|r|), floor(|r|/delta)].
int JaccardMinLength(int len, double delta);
int JaccardMaxLength(int len, double delta);

/// Integer-id kernels: the same merges over dictionary-encoded token ids
/// (storage::TokenDictionary) or three-stage rank lists. Semantics are
/// bit-identical to the string kernels — only the element comparisons shrink
/// from std::string::compare to integer compares.
double JaccardSortedIds(const std::vector<uint32_t>& a,
                        const std::vector<uint32_t>& b);
double JaccardCheckSortedIds(const std::vector<uint32_t>& a,
                             const std::vector<uint32_t>& b, double delta);
/// Multiset intersection size of two sorted id lists.
size_t IntersectSortedIds(const std::vector<uint32_t>& a,
                          const std::vector<uint32_t>& b);

/// int64 variants backing the rank-list verify path of the three-stage join
/// (stage 2 verifies similarity-jaccard over integer rank lists).
double JaccardSortedInt64(const std::vector<int64_t>& a,
                          const std::vector<int64_t>& b);
double JaccardCheckSortedInt64(const std::vector<int64_t>& a,
                               const std::vector<int64_t>& b, double delta);

/// Dice coefficient 2|r ∩ s| / (|r| + |s|) over sorted token multisets (the
/// paper lists dice and cosine as the other common set-similarity measures).
/// Both-empty inputs yield 0, consistent with Jaccard.
double DiceSorted(const std::vector<std::string>& a,
                  const std::vector<std::string>& b);

/// Cosine similarity |r ∩ s| / sqrt(|r|·|s|) over sorted token multisets.
double CosineSorted(const std::vector<std::string>& a,
                    const std::vector<std::string>& b);

}  // namespace simdb::similarity

#endif  // SIMDB_SIMILARITY_JACCARD_H_
