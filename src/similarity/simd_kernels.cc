#include "similarity/simd_kernels.h"

#include <algorithm>
#include <atomic>
#include <climits>
#include <cstdlib>

#include "similarity/edit_distance.h"

#if defined(__x86_64__) || defined(_M_X64)
#define SIMDB_SIMD_X86 1
#include <immintrin.h>
#else
#define SIMDB_SIMD_X86 0
#endif

namespace simdb::simd {

// ---------------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------------

namespace {

DispatchLevel DetectMaxLevel() {
#if SIMDB_SIMD_X86
  if (__builtin_cpu_supports("avx2")) return DispatchLevel::kAvx2;
#endif
  return DispatchLevel::kScalar;
}

DispatchLevel InitialLevel() {
  DispatchLevel max_level = DetectMaxLevel();
  const char* env = std::getenv("SIMDB_SIMD");
  if (env == nullptr) return max_level;
  std::string_view v(env);
  if (v == "scalar") return DispatchLevel::kScalar;
  return max_level;  // "avx2" and unknown values both mean "best supported"
}

std::atomic<DispatchLevel>& ActiveLevelSlot() {
  static std::atomic<DispatchLevel> level{InitialLevel()};
  return level;
}

}  // namespace

DispatchLevel MaxSupportedLevel() {
  static const DispatchLevel level = DetectMaxLevel();
  return level;
}

DispatchLevel ActiveLevel() {
  return ActiveLevelSlot().load(std::memory_order_relaxed);
}

const char* LevelName(DispatchLevel level) {
  return level == DispatchLevel::kAvx2 ? "avx2" : "scalar";
}

void SetActiveLevelForTest(DispatchLevel level) {
  if (level > MaxSupportedLevel()) level = MaxSupportedLevel();
  ActiveLevelSlot().store(level, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Kernel 1: sorted-id intersection + Jaccard verification
// ---------------------------------------------------------------------------

namespace {

bool HasSortedDuplicatesScalar(const uint32_t* p, size_t n) {
  for (size_t i = 1; i < n; ++i) {
    if (p[i] == p[i - 1]) return true;
  }
  return false;
}

#if SIMDB_SIMD_X86

/// Adjacent-equality scan, eight pairs per compare: p[i..i+7] vs
/// p[i-1..i+6]. The pre-scan runs on every kernel call, so it must cost a
/// fraction of the merge it guards.
__attribute__((target("avx2"))) inline bool HasSortedDuplicatesAvx2(
    const uint32_t* p, size_t n) {
  size_t i = 1;
  for (; i + 8 <= n; i += 8) {
    __m256i cur =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + i));
    __m256i prev =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + i - 1));
    if (_mm256_movemask_epi8(_mm256_cmpeq_epi32(cur, prev)) != 0) return true;
  }
  for (; i < n; ++i) {
    if (p[i] == p[i - 1]) return true;
  }
  return false;
}

/// Boundary twin of the scan for calls from baseline-ISA code: the explicit
/// vzeroupper cleans the ymm state the scan dirties, so the dirty-upper
/// merge penalty cannot leak into the caller's legacy-SSE code. The inline
/// scan above deliberately skips per-call cleanup — inside the AVX2 batch
/// drivers a vzeroupper would clobber their ymm-resident constants.
__attribute__((target("avx2"))) bool HasSortedDuplicatesAvx2Clean(
    const uint32_t* p, size_t n) {
  bool r = HasSortedDuplicatesAvx2(p, n);
  _mm256_zeroupper();
  return r;
}

#endif  // SIMDB_SIMD_X86

bool HasSortedDuplicates(const uint32_t* p, size_t n, bool avx2) {
#if SIMDB_SIMD_X86
  if (avx2) return HasSortedDuplicatesAvx2Clean(p, n);
#endif
  (void)avx2;
  return HasSortedDuplicatesScalar(p, n);
}

/// Reference multiset merge — identical to similarity::IntersectSortedIds.
size_t MultisetIntersect(const uint32_t* a, size_t la, const uint32_t* b,
                         size_t lb) {
  size_t i = 0, j = 0, inter = 0;
  while (i < la && j < lb) {
    uint32_t x = a[i], y = b[j];
    if (x == y) {
      ++inter;
      ++i;
      ++j;
    } else if (x < y) {
      ++i;
    } else {
      ++j;
    }
  }
  return inter;
}

/// Galloping intersection for unique sorted lists with heavy size skew
/// (|small| * 16 < |big|): exponential search in the big list per element
/// of the small one. The posting-list shapes after the length filter are
/// exactly this skewed.
size_t GallopIntersect(const uint32_t* small, size_t ls, const uint32_t* big,
                       size_t lb) {
  size_t count = 0;
  const uint32_t* lo = big;
  const uint32_t* end = big + lb;
  for (size_t i = 0; i < ls && lo < end; ++i) {
    uint32_t x = small[i];
    const uint32_t* p = lo;
    size_t step = 1;
    while (p + step < end && p[step] < x) {
      p += step;
      step <<= 1;
    }
    const uint32_t* hi = (p + step + 1 < end) ? p + step + 1 : end;
    lo = std::lower_bound(p, hi, x);
    if (lo < end && *lo == x) {
      ++count;
      ++lo;
    }
  }
  return count;
}

/// Verbatim body of similarity::JaccardCheckSortedNum<uint32_t> on raw
/// pointers — the bit-identity anchor for the AVX2 check below. The body
/// is an always_inline helper so it can be instantiated twice: at the
/// baseline ISA (ScalarJaccardCheck) and VEX-encoded for calls from inside
/// the AVX2 kernels (ScalarJaccardCheckVex).
__attribute__((always_inline)) inline double ScalarJaccardCheckImpl(
    const uint32_t* a, size_t la, const uint32_t* b, size_t lb,
    double delta) {
  double dsum = delta * static_cast<double>(la + lb);
  size_t i = 0, j = 0, inter = 0;
  while (i < la && j < lb) {
    size_t best_inter = inter + std::min(la - i, lb - j);
    if ((1.0 + delta) * static_cast<double>(best_inter) < dsum) {
      double best_jacc = static_cast<double>(best_inter) /
                         static_cast<double>(la + lb - best_inter);
      if (best_jacc < delta) return -1.0;
    }
    uint32_t x = a[i], y = b[j];
    if (x == y) {
      ++inter;
      ++i;
      ++j;
    } else if (x < y) {
      ++i;
    } else {
      ++j;
    }
  }
  double jacc =
      static_cast<double>(inter) / static_cast<double>(la + lb - inter);
  return jacc >= delta ? jacc : -1.0;
}

double ScalarJaccardCheck(const uint32_t* a, size_t la, const uint32_t* b,
                          size_t lb, double delta) {
  return ScalarJaccardCheckImpl(a, la, b, lb, delta);
}

#if SIMDB_SIMD_X86

/// VEX-encoded twin of ScalarJaccardCheck for fallback calls from AVX2
/// context. Calling the legacy-SSE copy from ymm-dirty code is a trap:
/// GCC's vzeroupper pass misses tail-call edges, legacy SSE executed with
/// dirty uppers pays a per-instruction merge penalty, and the dirty state
/// then leaks out to every later legacy-SSE instruction in the process.
/// The VEX encoding has no dirty-upper penalty; results are bit-identical.
__attribute__((target("avx2"))) double ScalarJaccardCheckVex(
    const uint32_t* a, size_t la, const uint32_t* b, size_t lb,
    double delta) {
  return ScalarJaccardCheckImpl(a, la, b, lb, delta);
}

/// 8x8 blocked intersection of unique sorted lists (Schlegel/Lemire style):
/// compare an 8-lane window of `a` against all eight rotations of an 8-lane
/// window of `b`, popcount the matched a-lanes, then advance whichever
/// window has the smaller maximum. Uniqueness guarantees each a-lane is
/// counted at most once across iterations. Returns the count over the
/// blocked region and the scalar resume positions.
/// The eight rotations of a window, as independent shuffle controls: eight
/// chained `permutevar(r, rot1)` steps serialize on a ~3-cycle latency each,
/// while eight permutes of the same source pipeline at one per cycle.
__attribute__((target("avx2"))) inline __m256i RotationControl(int k) {
  return _mm256_setr_epi32(k % 8, (k + 1) % 8, (k + 2) % 8, (k + 3) % 8,
                           (k + 4) % 8, (k + 5) % 8, (k + 6) % 8,
                           (k + 7) % 8);
}

__attribute__((target("avx2"))) size_t IntersectUniqueAvx2(
    const uint32_t* a, size_t la, const uint32_t* b, size_t lb, size_t* ai,
    size_t* bj) {
  const __m256i rot[7] = {RotationControl(1), RotationControl(2),
                          RotationControl(3), RotationControl(4),
                          RotationControl(5), RotationControl(6),
                          RotationControl(7)};
  size_t i = 0, j = 0, count = 0;
  while (i + 8 <= la && j + 8 <= lb) {
    __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + j));
    __m256i match = _mm256_cmpeq_epi32(va, vb);
    // Lists that survived the length + T-occurrence filters are mostly
    // equal, so fully-matching windows dominate: skip the rotations.
    if (_mm256_movemask_epi8(match) == -1) {
      count += 8;
      i += 8;
      j += 8;
      continue;
    }
    for (int k = 0; k < 7; ++k) {
      match = _mm256_or_si256(
          match,
          _mm256_cmpeq_epi32(va, _mm256_permutevar8x32_epi32(vb, rot[k])));
    }
    count += static_cast<size_t>(__builtin_popcount(static_cast<unsigned>(
        _mm256_movemask_ps(_mm256_castsi256_ps(match)))));
    uint32_t amax = a[i + 7], bmax = b[j + 7];
    if (amax <= bmax) i += 8;
    if (bmax <= amax) j += 8;
  }
  *ai = i;
  *bj = j;
  return count;
}

/// JaccardCheck over unique sorted lists: the blocked intersection with the
/// reference's divisionless early-exit screen applied per block. The screen
/// uses a valid upper bound on the final intersection and is confirmed by
/// the exact division, so every early -1.0 agrees with the reference's
/// final `jacc >= delta` test; when no exit fires the exact count feeds the
/// identical division.
__attribute__((target("avx2"))) inline double JaccardCheckUniqueAvx2(
    const uint32_t* a, size_t la, const uint32_t* b, size_t lb,
    double delta) {
  const double dsum = delta * static_cast<double>(la + lb);
  const __m256i rot[7] = {RotationControl(1), RotationControl(2),
                          RotationControl(3), RotationControl(4),
                          RotationControl(5), RotationControl(6),
                          RotationControl(7)};
  // Pre-filter threshold for the per-block screen. It only gates the exact
  // `best_jacc < delta` re-check below, which alone decides the early -1,
  // so the rearranged arithmetic cannot change any verdict.
  const double screen_thresh = dsum / (1.0 + delta);
  size_t i = 0, j = 0, inter = 0;
  while (i + 8 <= la && j + 8 <= lb) {
    size_t best_inter = inter + std::min(la - i, lb - j);
    if (static_cast<double>(best_inter) < screen_thresh) {
      double best_jacc = static_cast<double>(best_inter) /
                         static_cast<double>(la + lb - best_inter);
      if (best_jacc < delta) return -1.0;
    }
    __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + j));
    __m256i match = _mm256_cmpeq_epi32(va, vb);
    // Fully-matching windows dominate on near-duplicate candidates.
    if (_mm256_movemask_epi8(match) == -1) {
      inter += 8;
      i += 8;
      j += 8;
      continue;
    }
    for (int k = 0; k < 7; ++k) {
      match = _mm256_or_si256(
          match,
          _mm256_cmpeq_epi32(va, _mm256_permutevar8x32_epi32(vb, rot[k])));
    }
    inter += static_cast<size_t>(__builtin_popcount(static_cast<unsigned>(
        _mm256_movemask_ps(_mm256_castsi256_ps(match)))));
    uint32_t amax = a[i + 7], bmax = b[j + 7];
    if (amax <= bmax) i += 8;
    if (bmax <= amax) j += 8;
  }
  // Screenless scalar tail (< 15 steps): the per-step screen is a pure
  // early-exit optimization — skipping it cannot change the verdict, which
  // the final division decides identically either way.
  while (i < la && j < lb) {
    uint32_t x = a[i], y = b[j];
    if (x == y) {
      ++inter;
      ++i;
      ++j;
    } else if (x < y) {
      ++i;
    } else {
      ++j;
    }
  }
  double jacc =
      static_cast<double>(inter) / static_cast<double>(la + lb - inter);
  return jacc >= delta ? jacc : -1.0;
}

/// Single-pair check with the AVX2 dup-scan and merge inlined.
/// `a_unique`/`b_unique`: -1 = unknown (scan here), 0 = has duplicates,
/// 1 = caller-guaranteed unique (the scan is skipped entirely).
__attribute__((target("avx2"))) inline double JaccardCheckOneAvx2(
    const uint32_t* a, size_t la, const uint32_t* b, size_t lb, double delta,
    int a_unique, int b_unique) {
  if (la == 0 && lb == 0) return 0.0 >= delta ? 0.0 : -1.0;
  double min_len = static_cast<double>(std::min(la, lb));
  double max_len = static_cast<double>(std::max(la, lb));
  if (max_len > 0 && min_len / max_len < delta) return -1.0;
  // Below ~1.5 vector blocks of merge work the scalar merge wins; both
  // paths return identical values, so the cutover is pure tuning.
  if (la >= 8 && lb >= 8 && la + lb >= 24) {
    bool au = a_unique >= 0 ? a_unique == 1 : !HasSortedDuplicatesAvx2(a, la);
    if (au && (b_unique >= 0 ? b_unique == 1
                             : !HasSortedDuplicatesAvx2(b, lb))) {
      return JaccardCheckUniqueAvx2(a, la, b, lb, delta);
    }
  }
  return ScalarJaccardCheckVex(a, la, b, lb, delta);
}

/// Non-inlined boundary for single-pair calls from baseline-ISA code: the
/// explicit vzeroupper guarantees the upper-ymm state is clean on return no
/// matter which internal path ran (the inline helpers above deliberately
/// skip per-call cleanup so batch drivers can keep constants in ymm).
__attribute__((target("avx2"))) double JaccardCheckSingleAvx2(
    const uint32_t* a, size_t la, const uint32_t* b, size_t lb, double delta,
    int a_unique, int b_unique) {
  double r = JaccardCheckOneAvx2(a, la, b, lb, delta, a_unique, b_unique);
  _mm256_zeroupper();
  return r;
}


/// Whole-batch AVX2 driver: one target("avx2") function wrapping the
/// candidate loop so the scan and merge kernels inline into it and their
/// vector constants are hoisted out of the loop — per-candidate call
/// overhead is what the per-pair baseline spends most of its time on.
__attribute__((target("avx2"))) void JaccardCheckBatchAvx2(
    const uint32_t* probe, size_t probe_len, int probe_unique,
    const uint32_t* ids, const size_t* offsets, size_t n, double delta,
    double* out, int cand_unique) {
  for (size_t i = 0; i < n; ++i) {
    out[i] = JaccardCheckOneAvx2(probe, probe_len, ids + offsets[i],
                                 offsets[i + 1] - offsets[i], delta,
                                 probe_unique, cand_unique);
  }
  // Leave with clean upper-ymm state: the caller resumes legacy-SSE code.
  _mm256_zeroupper();
}

__attribute__((target("avx2"))) void JaccardCheckPairsAvx2(
    const uint32_t* a_ids, const size_t* a_offsets, const uint32_t* b_ids,
    const size_t* b_offsets, size_t n, double delta, double* out,
    int unique) {
  for (size_t i = 0; i < n; ++i) {
    out[i] = JaccardCheckOneAvx2(
        a_ids + a_offsets[i], a_offsets[i + 1] - a_offsets[i],
        b_ids + b_offsets[i], b_offsets[i + 1] - b_offsets[i], delta, unique,
        unique);
  }
  _mm256_zeroupper();
}

#endif  // SIMDB_SIMD_X86

size_t IntersectUniqueSorted(const uint32_t* a, size_t la, const uint32_t* b,
                             size_t lb, bool avx2) {
  if (la > lb) {
    std::swap(a, b);
    std::swap(la, lb);
  }
  if (la * 16 < lb) return GallopIntersect(a, la, b, lb);
#if SIMDB_SIMD_X86
  if (avx2 && la >= 8) {
    size_t i = 0, j = 0;
    size_t count = IntersectUniqueAvx2(a, la, b, lb, &i, &j);
    return count + MultisetIntersect(a + i, la - i, b + j, lb - j);
  }
#endif
  (void)avx2;
  return MultisetIntersect(a, la, b, lb);
}

size_t IntersectDispatch(const uint32_t* a, size_t la, const uint32_t* b,
                         size_t lb, bool avx2, bool assume_unique) {
  if (la == 0 || lb == 0) return 0;
  if (!assume_unique && (HasSortedDuplicates(a, la, avx2) ||
                         HasSortedDuplicates(b, lb, avx2))) {
    return MultisetIntersect(a, la, b, lb);
  }
  return IntersectUniqueSorted(a, la, b, lb, avx2);
}

double JaccardDispatch(const uint32_t* a, size_t la, const uint32_t* b,
                       size_t lb, bool avx2, bool assume_unique) {
  if (la == 0 && lb == 0) return 0.0;
  size_t inter = IntersectDispatch(a, la, b, lb, avx2, assume_unique);
  size_t uni = la + lb - inter;
  return uni == 0 ? 1.0
                  : static_cast<double>(inter) / static_cast<double>(uni);
}

double JaccardCheckDispatch(const uint32_t* a, size_t la, const uint32_t* b,
                            size_t lb, double delta, bool avx2) {
#if SIMDB_SIMD_X86
  if (avx2) {
    return JaccardCheckSingleAvx2(a, la, b, lb, delta, /*a_unique=*/-1,
                                  /*b_unique=*/-1);
  }
#endif
  (void)avx2;
  if (la == 0 && lb == 0) return 0.0 >= delta ? 0.0 : -1.0;
  double min_len = static_cast<double>(std::min(la, lb));
  double max_len = static_cast<double>(std::max(la, lb));
  if (max_len > 0 && min_len / max_len < delta) return -1.0;
  return ScalarJaccardCheck(a, la, b, lb, delta);
}

bool Avx2Active() { return ActiveLevel() == DispatchLevel::kAvx2; }

}  // namespace

size_t IntersectSortedIds(const uint32_t* a, size_t la, const uint32_t* b,
                          size_t lb) {
  return IntersectDispatch(a, la, b, lb, Avx2Active(),
                           /*assume_unique=*/false);
}

double JaccardSortedIds(const uint32_t* a, size_t la, const uint32_t* b,
                        size_t lb) {
  return JaccardDispatch(a, la, b, lb, Avx2Active(), /*assume_unique=*/false);
}

double JaccardCheckSortedIds(const uint32_t* a, size_t la, const uint32_t* b,
                             size_t lb, double delta) {
  return JaccardCheckDispatch(a, la, b, lb, delta, Avx2Active());
}

void JaccardCheckBatch(const uint32_t* probe, size_t probe_len,
                       const uint32_t* ids, const size_t* offsets, size_t n,
                       double delta, double* out, bool assume_unique) {
#if SIMDB_SIMD_X86
  if (Avx2Active()) {
    // One probe against many candidates: scan the probe for duplicates
    // once instead of once per candidate (or not at all under the
    // caller's uniqueness guarantee).
    const int probe_unique =
        assume_unique
            ? 1
            : (HasSortedDuplicatesAvx2Clean(probe, probe_len) ? 0 : 1);
    JaccardCheckBatchAvx2(probe, probe_len, probe_unique, ids, offsets, n,
                          delta, out, /*cand_unique=*/assume_unique ? 1 : -1);
    return;
  }
#endif
  for (size_t i = 0; i < n; ++i) {
    out[i] = JaccardCheckDispatch(probe, probe_len, ids + offsets[i],
                                  offsets[i + 1] - offsets[i], delta, false);
  }
}

void JaccardCheckPairs(const uint32_t* a_ids, const size_t* a_offsets,
                       const uint32_t* b_ids, const size_t* b_offsets,
                       size_t n, double delta, double* out,
                       bool assume_unique) {
#if SIMDB_SIMD_X86
  if (Avx2Active()) {
    JaccardCheckPairsAvx2(a_ids, a_offsets, b_ids, b_offsets, n, delta, out,
                          /*unique=*/assume_unique ? 1 : -1);
    return;
  }
#endif
  for (size_t i = 0; i < n; ++i) {
    out[i] = JaccardCheckDispatch(
        a_ids + a_offsets[i], a_offsets[i + 1] - a_offsets[i],
        b_ids + b_offsets[i], b_offsets[i + 1] - b_offsets[i], delta, false);
  }
}

void JaccardEvalPairs(const uint32_t* a_ids, const size_t* a_offsets,
                      const uint32_t* b_ids, const size_t* b_offsets,
                      size_t n, double* out, bool assume_unique) {
  const bool avx2 = Avx2Active();
  for (size_t i = 0; i < n; ++i) {
    out[i] = JaccardDispatch(a_ids + a_offsets[i],
                             a_offsets[i + 1] - a_offsets[i],
                             b_ids + b_offsets[i],
                             b_offsets[i + 1] - b_offsets[i], avx2,
                             assume_unique);
  }
}

// ---------------------------------------------------------------------------
// Kernel 2: edit-distance verification (Myers bit-parallel DP)
// ---------------------------------------------------------------------------

namespace {

/// Myers/Hyyrö bit-parallel Levenshtein for patterns up to 64 chars: one
/// DP column per text character in O(1) word operations. Exact distance,
/// so the "distance if <= k else -1" decisions match the banded reference.
/// Returns k+1 when the score provably cannot return to <= k (the score
/// changes by at most one per column).
int MyersDistance(const std::array<uint64_t, 256>& peq, size_t m,
                  std::string_view text, int k) {
  const uint64_t hb = 1ull << (m - 1);
  uint64_t pv = ~0ull;
  uint64_t mv = 0;
  int score = static_cast<int>(m);
  const int n = static_cast<int>(text.size());
  for (int j = 0; j < n; ++j) {
    const uint64_t eq = peq[static_cast<unsigned char>(text[j])];
    const uint64_t xv = eq | mv;
    const uint64_t xh = (((eq & pv) + pv) ^ pv) | eq;
    uint64_t ph = mv | ~(xh | pv);
    uint64_t mh = pv & xh;
    if (ph & hb) ++score;
    if (mh & hb) --score;
    ph = (ph << 1) | 1;
    mh <<= 1;
    pv = mh | ~(xv | ph);
    mv = ph & xv;
    if (score - (n - j - 1) > k) return k + 1;
  }
  return score;
}

#if SIMDB_SIMD_X86

/// Four same-length candidates per call: the Myers recurrence on four
/// 64-bit lanes of one __m256i. Bails out (reporting k+1 for every lane)
/// only when all four lanes are past recovery.
__attribute__((target("avx2"))) void MyersDistance4Avx2(
    const std::array<uint64_t, 256>& peq, size_t m,
    const char* const texts[4], size_t tlen, int k, int scores_out[4]) {
  const uint64_t hb = 1ull << (m - 1);
  const __m256i vhb = _mm256_set1_epi64x(static_cast<long long>(hb));
  const __m256i ones = _mm256_set1_epi64x(1);
  const __m256i allset = _mm256_set1_epi64x(-1);
  __m256i pv = allset;
  __m256i mv = _mm256_setzero_si256();
  int scores[4] = {static_cast<int>(m), static_cast<int>(m),
                   static_cast<int>(m), static_cast<int>(m)};
  for (size_t j = 0; j < tlen; ++j) {
    __m256i eq = _mm256_set_epi64x(
        static_cast<long long>(peq[static_cast<unsigned char>(texts[3][j])]),
        static_cast<long long>(peq[static_cast<unsigned char>(texts[2][j])]),
        static_cast<long long>(peq[static_cast<unsigned char>(texts[1][j])]),
        static_cast<long long>(peq[static_cast<unsigned char>(texts[0][j])]));
    __m256i xv = _mm256_or_si256(eq, mv);
    __m256i xh = _mm256_or_si256(
        _mm256_xor_si256(_mm256_add_epi64(_mm256_and_si256(eq, pv), pv), pv),
        eq);
    __m256i ph =
        _mm256_or_si256(mv, _mm256_andnot_si256(_mm256_or_si256(xh, pv),
                                                allset));
    __m256i mh = _mm256_and_si256(pv, xh);
    int ph_mask = _mm256_movemask_pd(_mm256_castsi256_pd(
        _mm256_cmpeq_epi64(_mm256_and_si256(ph, vhb), vhb)));
    int mh_mask = _mm256_movemask_pd(_mm256_castsi256_pd(
        _mm256_cmpeq_epi64(_mm256_and_si256(mh, vhb), vhb)));
    for (int l = 0; l < 4; ++l) {
      scores[l] += (ph_mask >> l) & 1;
      scores[l] -= (mh_mask >> l) & 1;
    }
    ph = _mm256_or_si256(_mm256_slli_epi64(ph, 1), ones);
    mh = _mm256_slli_epi64(mh, 1);
    pv = _mm256_or_si256(mh, _mm256_andnot_si256(_mm256_or_si256(xv, ph),
                                                 allset));
    mv = _mm256_and_si256(ph, xv);
    const int remaining = static_cast<int>(tlen - j - 1);
    if (scores[0] - remaining > k && scores[1] - remaining > k &&
        scores[2] - remaining > k && scores[3] - remaining > k) {
      for (int l = 0; l < 4; ++l) scores_out[l] = k + 1;
      return;
    }
  }
  for (int l = 0; l < 4; ++l) scores_out[l] = scores[l];
}

#endif  // SIMDB_SIMD_X86

}  // namespace

EditDistancePattern::EditDistancePattern(std::string_view pattern)
    : pattern_(pattern) {
  bit_parallel_ = !pattern_.empty() && pattern_.size() <= 64;
  if (bit_parallel_) {
    for (size_t i = 0; i < pattern_.size(); ++i) {
      peq_[static_cast<unsigned char>(pattern_[i])] |= 1ull << i;
    }
  }
}

int EditDistancePattern::CheckBitParallel(std::string_view text,
                                          int k) const {
  int d = MyersDistance(peq_, pattern_.size(), text, k);
  return d <= k ? d : -1;
}

int EditDistancePattern::Check(std::string_view text, int k) const {
  if (k < 0) return -1;
  const int n = static_cast<int>(pattern_.size());
  const int m = static_cast<int>(text.size());
  if (std::abs(n - m) > k) return -1;  // length filter
  if (n == 0) return m <= k ? m : -1;
  if (m == 0) return n <= k ? n : -1;
  if (bit_parallel_) return CheckBitParallel(text, k);
  return similarity::internal::EditDistanceCheckImpl(pattern_, text, k);
}

void EditDistancePattern::CheckBatch(const char* chars, const size_t* offsets,
                                     size_t n, int k, int* out) const {
  const int plen = static_cast<int>(pattern_.size());
  std::vector<uint32_t> pending;
  pending.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const int tlen = static_cast<int>(offsets[i + 1] - offsets[i]);
    if (k < 0 || std::abs(plen - tlen) > k) {
      out[i] = -1;
    } else if (plen == 0) {
      out[i] = tlen <= k ? tlen : -1;
    } else if (tlen == 0) {
      out[i] = plen <= k ? plen : -1;
    } else {
      pending.push_back(static_cast<uint32_t>(i));
    }
  }
  if (pending.empty()) return;
  if (!bit_parallel_) {
    for (uint32_t i : pending) {
      out[i] = similarity::internal::EditDistanceCheckImpl(
          pattern_,
          std::string_view(chars + offsets[i], offsets[i + 1] - offsets[i]),
          k);
    }
    return;
  }
#if SIMDB_SIMD_X86
  if (ActiveLevel() == DispatchLevel::kAvx2) {
    // Group equal-length candidates so four of them share one DP run.
    std::stable_sort(pending.begin(), pending.end(),
                     [&](uint32_t x, uint32_t y) {
                       return offsets[x + 1] - offsets[x] <
                              offsets[y + 1] - offsets[y];
                     });
    size_t g = 0;
    while (g < pending.size()) {
      const size_t tlen = offsets[pending[g] + 1] - offsets[pending[g]];
      size_t h = g;
      while (h < pending.size() &&
             offsets[pending[h] + 1] - offsets[pending[h]] == tlen) {
        ++h;
      }
      size_t idx = g;
      for (; idx + 4 <= h; idx += 4) {
        const char* texts[4] = {chars + offsets[pending[idx]],
                                chars + offsets[pending[idx + 1]],
                                chars + offsets[pending[idx + 2]],
                                chars + offsets[pending[idx + 3]]};
        int scores[4];
        MyersDistance4Avx2(peq_, pattern_.size(), texts, tlen, k, scores);
        for (int l = 0; l < 4; ++l) {
          out[pending[idx + l]] = scores[l] <= k ? scores[l] : -1;
        }
      }
      for (; idx < h; ++idx) {
        out[pending[idx]] = CheckBitParallel(
            std::string_view(chars + offsets[pending[idx]], tlen), k);
      }
      g = h;
    }
    return;
  }
#endif
  for (uint32_t i : pending) {
    out[i] = CheckBitParallel(
        std::string_view(chars + offsets[i], offsets[i + 1] - offsets[i]), k);
  }
}

int EditDistanceCheck(std::string_view a, std::string_view b, int k) {
  return EditDistancePattern(a).Check(b, k);
}

void EditDistanceCheckPairs(const char* a_chars, const size_t* a_offsets,
                            const char* b_chars, const size_t* b_offsets,
                            size_t n, int k, int* out) {
  for (size_t i = 0; i < n; ++i) {
    EditDistancePattern pattern(
        std::string_view(a_chars + a_offsets[i], a_offsets[i + 1] - a_offsets[i]));
    out[i] = pattern.Check(
        std::string_view(b_chars + b_offsets[i], b_offsets[i + 1] - b_offsets[i]),
        k);
  }
}

// ---------------------------------------------------------------------------
// Kernel 3: batched T-occurrence counting over dense ids
// ---------------------------------------------------------------------------

void TOccurrenceCount(const uint32_t* const* lists, const size_t* sizes,
                      size_t num_lists, int t, TOccurrenceScratch& scratch,
                      std::vector<uint32_t>* result, uint64_t* pruned) {
  for (size_t l = 0; l < num_lists; ++l) {
    const uint32_t* slots = lists[l];
    const size_t n = sizes[l];
    for (size_t i = 0; i < n; ++i) {
      const uint32_t s = slots[i];
      if (scratch.counts[s]++ == 0) scratch.touched.push_back(s);
    }
  }
  for (uint32_t s : scratch.touched) {
    if (static_cast<int>(scratch.counts[s]) >= t) {
      result->push_back(s);
    } else {
      ++*pruned;
    }
    scratch.counts[s] = 0;
  }
  scratch.touched.clear();
}

}  // namespace simdb::simd
