#include "similarity/tokenizer.h"

#include <cctype>
#include <unordered_map>

namespace simdb::similarity {

std::vector<std::string> WordTokens(std::string_view text) {
  std::vector<std::string> tokens;
  std::string current;
  for (char c : text) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      current.push_back(static_cast<char>(
          std::tolower(static_cast<unsigned char>(c))));
    } else if (!current.empty()) {
      tokens.push_back(std::move(current));
      current.clear();
    }
  }
  if (!current.empty()) tokens.push_back(std::move(current));
  return tokens;
}

std::vector<std::string> GramTokens(std::string_view text, int n,
                                    bool pre_post_pad) {
  std::vector<std::string> grams;
  if (n <= 0) return grams;
  std::string padded;
  std::string_view s = text;
  if (pre_post_pad) {
    padded.reserve(text.size() + 2 * (n - 1));
    padded.append(static_cast<size_t>(n - 1), '#');
    padded.append(text);
    padded.append(static_cast<size_t>(n - 1), '$');
    s = padded;
  }
  if (s.size() < static_cast<size_t>(n)) return grams;
  grams.reserve(s.size() - n + 1);
  for (size_t i = 0; i + n <= s.size(); ++i) {
    grams.emplace_back(s.substr(i, n));
  }
  return grams;
}

int GramCount(int len, int n) {
  int g = len - n + 1;
  return g > 0 ? g : 0;
}

std::vector<std::string> DedupOccurrences(
    const std::vector<std::string>& tokens) {
  std::vector<std::string> out;
  out.reserve(tokens.size());
  std::unordered_map<std::string, int> seen;
  for (const std::string& t : tokens) {
    int count = seen[t]++;
    if (count == 0) {
      out.push_back(t);
    } else {
      out.push_back(t + "#" + std::to_string(count));
    }
  }
  return out;
}

}  // namespace simdb::similarity
