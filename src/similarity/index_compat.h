#ifndef SIMDB_SIMILARITY_INDEX_COMPAT_H_
#define SIMDB_SIMILARITY_INDEX_COMPAT_H_

#include <string_view>

namespace simdb::similarity {

/// Secondary-index kinds supported by the storage layer.
enum class IndexKind {
  kBtree,    // exact-match / range secondary index
  kNGram,    // n-gram inverted index (edit distance, contains)
  kKeyword,  // keyword inverted index (Jaccard on token sets)
};

std::string_view IndexKindToString(IndexKind kind);

/// The index-to-function compatibility table from the paper (Figure 13):
///   n-gram  -> edit-distance(), edit-distance-check(), contains()
///   keyword -> similarity-jaccard(), similarity-jaccard-check()
///   btree   -> exact equality only
bool IsIndexCompatible(IndexKind kind, std::string_view function_name);

}  // namespace simdb::similarity

#endif  // SIMDB_SIMILARITY_INDEX_COMPAT_H_
