#include "similarity/similarity_function.h"

#include <algorithm>
#include <mutex>

#include "similarity/edit_distance.h"
#include "similarity/jaccard.h"

namespace simdb::similarity {

using adm::Value;

Result<std::vector<std::string>> ValueToTokens(const Value& v) {
  if (!v.is_list()) {
    return Status::TypeError("expected a list of tokens, got " +
                             std::string(adm::ValueTypeToString(v.type())));
  }
  std::vector<std::string> tokens;
  tokens.reserve(v.AsList().size());
  for (const Value& item : v.AsList()) {
    if (!item.is_string()) {
      return Status::TypeError("token list elements must be strings");
    }
    tokens.push_back(item.AsString());
  }
  return tokens;
}

namespace {

Result<Value> EvalEditDistance(const Value& a, const Value& b) {
  if (a.is_string() && b.is_string()) {
    return Value::Int64(EditDistance(a.AsString(), b.AsString()));
  }
  if (a.is_array() && b.is_array()) {
    SIMDB_ASSIGN_OR_RETURN(std::vector<std::string> ta, ValueToTokens(a));
    SIMDB_ASSIGN_OR_RETURN(std::vector<std::string> tb, ValueToTokens(b));
    return Value::Int64(EditDistance(ta, tb));
  }
  return Status::TypeError(
      "edit-distance expects two strings or two ordered lists");
}

Result<bool> CheckEditDistance(const Value& a, const Value& b,
                               double threshold) {
  int k = static_cast<int>(threshold);
  if (a.is_string() && b.is_string()) {
    return EditDistanceCheck(a.AsString(), b.AsString(), k) >= 0;
  }
  if (a.is_array() && b.is_array()) {
    SIMDB_ASSIGN_OR_RETURN(std::vector<std::string> ta, ValueToTokens(a));
    SIMDB_ASSIGN_OR_RETURN(std::vector<std::string> tb, ValueToTokens(b));
    return EditDistanceCheck(ta, tb, k) >= 0;
  }
  return Status::TypeError(
      "edit-distance expects two strings or two ordered lists");
}

bool AllStrings(const Value& v) {
  for (const Value& item : v.AsList()) {
    if (!item.is_string()) return false;
  }
  return true;
}

bool AllInt64(const Value& v) {
  for (const Value& item : v.AsList()) {
    if (!item.is_int64()) return false;
  }
  return true;
}

std::vector<int64_t> ToInt64s(const Value& v) {
  std::vector<int64_t> out;
  out.reserve(v.AsList().size());
  for (const Value& item : v.AsList()) out.push_back(item.AsInt64());
  return out;
}

/// Multiset Jaccard over lists of arbitrary comparable values (used when the
/// three-stage join verifies on integer rank lists).
double JaccardValues(Value::Array a, Value::Array b) {
  if (a.empty() && b.empty()) return 0.0;
  auto less = [](const Value& x, const Value& y) {
    return Value::Compare(x, y) < 0;
  };
  std::sort(a.begin(), a.end(), less);
  std::sort(b.begin(), b.end(), less);
  size_t i = 0, j = 0, inter = 0;
  while (i < a.size() && j < b.size()) {
    int c = Value::Compare(a[i], b[j]);
    if (c == 0) {
      ++inter;
      ++i;
      ++j;
    } else if (c < 0) {
      ++i;
    } else {
      ++j;
    }
  }
  return static_cast<double>(inter) /
         static_cast<double>(a.size() + b.size() - inter);
}

Result<Value> EvalJaccard(const Value& a, const Value& b) {
  if (!a.is_list() || !b.is_list()) {
    return Status::TypeError("similarity-jaccard expects two lists");
  }
  if (AllStrings(a) && AllStrings(b)) {
    SIMDB_ASSIGN_OR_RETURN(std::vector<std::string> ta, ValueToTokens(a));
    SIMDB_ASSIGN_OR_RETURN(std::vector<std::string> tb, ValueToTokens(b));
    return Value::Double(Jaccard(std::move(ta), std::move(tb)));
  }
  if (AllInt64(a) && AllInt64(b)) {
    // Integer rank lists (the three-stage join's stage-2 verify): sort and
    // merge native int64s instead of boxed Values.
    std::vector<int64_t> ia = ToInt64s(a), ib = ToInt64s(b);
    std::sort(ia.begin(), ia.end());
    std::sort(ib.begin(), ib.end());
    return Value::Double(JaccardSortedInt64(ia, ib));
  }
  return Value::Double(JaccardValues(a.AsList(), b.AsList()));
}

Result<bool> CheckJaccard(const Value& a, const Value& b, double delta) {
  if (!a.is_list() || !b.is_list()) {
    return Status::TypeError("similarity-jaccard expects two lists");
  }
  if (AllStrings(a) && AllStrings(b)) {
    SIMDB_ASSIGN_OR_RETURN(std::vector<std::string> ta, ValueToTokens(a));
    SIMDB_ASSIGN_OR_RETURN(std::vector<std::string> tb, ValueToTokens(b));
    std::sort(ta.begin(), ta.end());
    std::sort(tb.begin(), tb.end());
    return JaccardCheckSorted(ta, tb, delta) >= 0;
  }
  if (AllInt64(a) && AllInt64(b)) {
    std::vector<int64_t> ia = ToInt64s(a), ib = ToInt64s(b);
    std::sort(ia.begin(), ia.end());
    std::sort(ib.begin(), ib.end());
    return JaccardCheckSortedInt64(ia, ib, delta) >= 0;
  }
  return JaccardValues(a.AsList(), b.AsList()) >= delta;
}

}  // namespace

Result<Value> EvalDice(const Value& a, const Value& b) {
  SIMDB_ASSIGN_OR_RETURN(std::vector<std::string> ta, ValueToTokens(a));
  SIMDB_ASSIGN_OR_RETURN(std::vector<std::string> tb, ValueToTokens(b));
  std::sort(ta.begin(), ta.end());
  std::sort(tb.begin(), tb.end());
  return Value::Double(DiceSorted(ta, tb));
}

Result<Value> EvalCosine(const Value& a, const Value& b) {
  SIMDB_ASSIGN_OR_RETURN(std::vector<std::string> ta, ValueToTokens(a));
  SIMDB_ASSIGN_OR_RETURN(std::vector<std::string> tb, ValueToTokens(b));
  std::sort(ta.begin(), ta.end());
  std::sort(tb.begin(), tb.end());
  return Value::Double(CosineSorted(ta, tb));
}

SimilarityFunctionRegistry::SimilarityFunctionRegistry() {
  Register({.name = "edit-distance",
            .sense = ThresholdSense::kDistanceAtMost,
            .eval = EvalEditDistance,
            .check = CheckEditDistance});
  Register({.name = "similarity-jaccard",
            .sense = ThresholdSense::kSimilarityAtLeast,
            .eval = EvalJaccard,
            .check = CheckJaccard});
  Register({.name = "similarity-dice",
            .sense = ThresholdSense::kSimilarityAtLeast,
            .eval = EvalDice,
            .check = nullptr});
  Register({.name = "similarity-cosine",
            .sense = ThresholdSense::kSimilarityAtLeast,
            .eval = EvalCosine,
            .check = nullptr});
}

SimilarityFunctionRegistry& SimilarityFunctionRegistry::Global() {
  static SimilarityFunctionRegistry* registry = new SimilarityFunctionRegistry;
  return *registry;
}

void SimilarityFunctionRegistry::Register(SimilarityFunction fn) {
  for (auto& existing : functions_) {
    if (existing->name == fn.name) {
      *existing = std::move(fn);
      return;
    }
  }
  functions_.push_back(std::make_unique<SimilarityFunction>(std::move(fn)));
}

const SimilarityFunction* SimilarityFunctionRegistry::Find(
    std::string_view name) const {
  for (const auto& fn : functions_) {
    if (fn->name == name) return fn.get();
  }
  return nullptr;
}

const SimilarityFunction* SimilarityFunctionRegistry::FindByAlias(
    std::string_view alias) const {
  if (alias == "jaccard") return Find("similarity-jaccard");
  if (alias == "dice") return Find("similarity-dice");
  if (alias == "cosine") return Find("similarity-cosine");
  if (alias == "edit-distance" || alias == "ed") return Find("edit-distance");
  return Find(alias);
}

std::vector<std::string> SimilarityFunctionRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(functions_.size());
  for (const auto& fn : functions_) names.push_back(fn->name);
  return names;
}

}  // namespace simdb::similarity
