#ifndef SIMDB_SIMILARITY_SIMILARITY_FUNCTION_H_
#define SIMDB_SIMILARITY_SIMILARITY_FUNCTION_H_

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "adm/value.h"
#include "common/result.h"

namespace simdb::similarity {

/// How a similarity function's threshold is interpreted in a predicate:
/// similarity measures match when sim >= threshold, distance measures match
/// when dist <= threshold.
enum class ThresholdSense { kSimilarityAtLeast, kDistanceAtMost };

/// Metadata + evaluator for one similarity measure. System-provided measures
/// (edit-distance, similarity-jaccard) are pre-registered; users can register
/// their own (the paper's UDF path) via SimilarityFunctionRegistry::Register.
struct SimilarityFunction {
  std::string name;
  ThresholdSense sense = ThresholdSense::kSimilarityAtLeast;
  /// Computes the raw similarity/distance value for two operands.
  std::function<Result<adm::Value>(const adm::Value&, const adm::Value&)> eval;
  /// Optimized predicate check with early termination; returns whether the
  /// pair satisfies the threshold. Falls back to eval when unset.
  std::function<Result<bool>(const adm::Value&, const adm::Value&, double)>
      check;
};

/// Process-wide registry of similarity measures, consulted by the expression
/// library, the `~=` sugar rewrite, and the optimizer rules.
class SimilarityFunctionRegistry {
 public:
  static SimilarityFunctionRegistry& Global();

  /// Registers (or replaces) a measure under `fn.name`.
  void Register(SimilarityFunction fn);

  /// Looks up by exact function name ("edit-distance", "similarity-jaccard",
  /// or a registered UDF name); nullptr when unknown.
  const SimilarityFunction* Find(std::string_view name) const;

  /// Resolves the `set simfunction '<alias>'` aliases used with `~=`:
  /// "jaccard" -> similarity-jaccard, "edit-distance"/"ed" -> edit-distance.
  const SimilarityFunction* FindByAlias(std::string_view alias) const;

  std::vector<std::string> Names() const;

 private:
  SimilarityFunctionRegistry();

  std::vector<std::unique_ptr<SimilarityFunction>> functions_;
};

/// Extracts a string-token vector from a list Value (elements must be
/// strings). Used by both evaluators and the inverted-index search path.
Result<std::vector<std::string>> ValueToTokens(const adm::Value& v);

}  // namespace simdb::similarity

#endif  // SIMDB_SIMILARITY_SIMILARITY_FUNCTION_H_
