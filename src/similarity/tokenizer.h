#ifndef SIMDB_SIMILARITY_TOKENIZER_H_
#define SIMDB_SIMILARITY_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace simdb::similarity {

/// Splits `text` into lowercase word tokens on non-alphanumeric boundaries.
/// This is the `word-tokens()` builtin used for Jaccard queries.
std::vector<std::string> WordTokens(std::string_view text);

/// Extracts the n-grams of `text` (length-n substrings). When `pre_post_pad`
/// is set, the string is padded with (n-1) leading '#' and trailing '$'
/// characters, as in AsterixDB's gram-tokens(). Without padding a string
/// shorter than n yields no grams.
std::vector<std::string> GramTokens(std::string_view text, int n,
                                    bool pre_post_pad = false);

/// Number of grams a string of length `len` produces (without padding):
/// max(len - n + 1, 0).
int GramCount(int len, int n);

/// Deduplicates a token multiset into set form by tagging the i-th duplicate
/// occurrence of a token with a suffix marker ("tok", "tok#1", "tok#2", ...).
/// The three-stage join (Vernica et al.) requires set semantics; this mapping
/// preserves multiset Jaccard exactly because matching occurrences pair up.
std::vector<std::string> DedupOccurrences(const std::vector<std::string>& tokens);

}  // namespace simdb::similarity

#endif  // SIMDB_SIMILARITY_TOKENIZER_H_
