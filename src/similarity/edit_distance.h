#ifndef SIMDB_SIMILARITY_EDIT_DISTANCE_H_
#define SIMDB_SIMILARITY_EDIT_DISTANCE_H_

#include <algorithm>
#include <climits>
#include <string>
#include <string_view>
#include <vector>

namespace simdb::similarity {

namespace internal {

/// Full O(|a|·|b|) Levenshtein DP over any indexable sequences with
/// equality-comparable elements.
template <typename SeqA, typename SeqB>
int EditDistanceImpl(const SeqA& a, const SeqB& b) {
  size_t n = a.size(), m = b.size();
  if (n == 0) return static_cast<int>(m);
  if (m == 0) return static_cast<int>(n);
  std::vector<int> prev(m + 1), cur(m + 1);
  for (size_t j = 0; j <= m; ++j) prev[j] = static_cast<int>(j);
  for (size_t i = 1; i <= n; ++i) {
    cur[0] = static_cast<int>(i);
    for (size_t j = 1; j <= m; ++j) {
      int sub = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
    }
    std::swap(prev, cur);
  }
  return prev[m];
}

/// Banded (Ukkonen) verification: returns the edit distance if it is <= k,
/// otherwise -1, in O(k·min(|a|,|b|)) time with early termination when every
/// cell in the band exceeds k. This is the `edit-distance-check` fast path
/// used by verification after T-occurrence candidate generation.
template <typename SeqA, typename SeqB>
int EditDistanceCheckImpl(const SeqA& a, const SeqB& b, int k) {
  if (k < 0) return -1;
  int n = static_cast<int>(a.size()), m = static_cast<int>(b.size());
  if (std::abs(n - m) > k) return -1;  // length filter
  if (n == 0) return m <= k ? m : -1;
  if (m == 0) return n <= k ? n : -1;
  const int kInf = INT_MAX / 2;
  std::vector<int> prev(m + 1, kInf), cur(m + 1, kInf);
  for (int j = 0; j <= std::min(m, k); ++j) prev[j] = j;
  for (int i = 1; i <= n; ++i) {
    int lo = std::max(1, i - k), hi = std::min(m, i + k);
    std::fill(cur.begin(), cur.end(), kInf);
    if (i <= k) cur[0] = i;
    bool any_within = false;
    for (int j = lo; j <= hi; ++j) {
      int sub = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      int del = prev[j] + 1;
      int ins = cur[j - 1] + 1;
      cur[j] = std::min({sub, del, ins});
      if (cur[j] <= k) any_within = true;
    }
    if (!any_within && !(i <= k && cur[0] <= k)) return -1;  // early exit
    std::swap(prev, cur);
  }
  return prev[m] <= k ? prev[m] : -1;
}

}  // namespace internal

/// Exact edit (Levenshtein) distance between two strings.
int EditDistance(std::string_view a, std::string_view b);

/// Exact edit distance between two ordered lists of strings (the paper's
/// generalization of edit distance to ordered lists).
int EditDistance(const std::vector<std::string>& a,
                 const std::vector<std::string>& b);

/// Returns the edit distance if it is <= k, else -1 (early-terminating).
int EditDistanceCheck(std::string_view a, std::string_view b, int k);
int EditDistanceCheck(const std::vector<std::string>& a,
                      const std::vector<std::string>& b, int k);

/// T-occurrence lower bound for edit distance with q-grams: a string within
/// edit distance k of q must share at least T = |G(q)| - k*n grams. T <= 0 is
/// the corner case: the index cannot prune and a scan is required (paper
/// Sections 2.2 and 5.1.1).
int EditDistanceTOccurrence(int query_len, int gram_len, int k);

}  // namespace simdb::similarity

#endif  // SIMDB_SIMILARITY_EDIT_DISTANCE_H_
