#ifndef SIMDB_SIMILARITY_SIMD_KERNELS_H_
#define SIMDB_SIMILARITY_SIMD_KERNELS_H_

// Runtime-dispatched SIMD kernels for the batch execution path.
//
// Every kernel here has a scalar body that is bit-identical to the
// tuple-path reference in similarity/jaccard.h / similarity/edit_distance.h,
// plus (where profitable) an AVX2 body compiled with
// __attribute__((target("avx2"))) so the translation unit builds under
// plain -march=x86-64 and the tier is chosen per-process from cpuid. The
// batch-on/off differential fuzz seeds rely on the bit-identical contract:
// a kernel may reorder work (blocked intersection, bit-parallel DP) but the
// returned doubles/ints must equal the scalar reference exactly.

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace simdb::simd {

// ---------------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------------

/// Instruction-set tier a kernel dispatches to.
enum class DispatchLevel { kScalar = 0, kAvx2 = 1 };

/// Highest tier this binary + CPU supports (cpuid probe, cached).
DispatchLevel MaxSupportedLevel();

/// The tier kernels actually run at: MaxSupportedLevel() clamped by the
/// SIMDB_SIMD environment variable ("scalar" | "avx2"), read once. The
/// no-AVX2 CI job pins SIMDB_SIMD=scalar to exercise the fallback
/// end-to-end on AVX2 hardware.
DispatchLevel ActiveLevel();

const char* LevelName(DispatchLevel level);

/// Test hook: pins the active level (clamped to MaxSupportedLevel) so the
/// unit tests can run every kernel at every tier in one process. Not
/// synchronized against concurrently running kernels.
void SetActiveLevelForTest(DispatchLevel level);

// ---------------------------------------------------------------------------
// Kernel 1: sorted-id intersection + Jaccard verification
// ---------------------------------------------------------------------------

/// Multiset intersection size of two sorted uint32 id lists. Drop-in for
/// similarity::IntersectSortedIds on dense token ids. Lists with no
/// duplicates take the galloping/AVX2 path; duplicated inputs fall back to
/// the scalar multiset merge (same result).
size_t IntersectSortedIds(const uint32_t* a, size_t la, const uint32_t* b,
                          size_t lb);

/// Jaccard similarity of two sorted id multisets; mirrors
/// similarity::JaccardSortedIds exactly (both-empty => 0.0, union 0 => 1.0).
double JaccardSortedIds(const uint32_t* a, size_t la, const uint32_t* b,
                        size_t lb);

/// Verification variant: returns the similarity when it is >= delta and
/// -1.0 otherwise, with the same length filter and early termination
/// decisions as similarity::JaccardCheckSortedIds (bit-identical output).
double JaccardCheckSortedIds(const uint32_t* a, size_t la, const uint32_t* b,
                             size_t lb, double delta);

/// Batched check of one sorted probe against `n` candidate id lists in CSR
/// layout (candidate i occupies ids[offsets[i]..offsets[i+1])). Writes the
/// per-candidate JaccardCheckSortedIds result into out[i].
///
/// `assume_unique`: the caller guarantees every id list is duplicate-free,
/// so the kernels skip the multiset pre-scan. The operators' occurrence-
/// distinct TokenIdEncoder output satisfies this by construction; with the
/// guarantee violated the intersection counts (and so the results) are
/// undefined. Defaults to the multiset-safe scan.
void JaccardCheckBatch(const uint32_t* probe, size_t probe_len,
                       const uint32_t* ids, const size_t* offsets, size_t n,
                       double delta, double* out, bool assume_unique = false);

/// Batched check over `n` independent (a, b) pairs, both sides CSR. Writes
/// JaccardCheckSortedIds(a_i, b_i, delta) into out[i]. `assume_unique` as
/// in JaccardCheckBatch.
void JaccardCheckPairs(const uint32_t* a_ids, const size_t* a_offsets,
                       const uint32_t* b_ids, const size_t* b_offsets,
                       size_t n, double delta, double* out,
                       bool assume_unique = false);

/// Batched full-value Jaccard over `n` independent (a, b) pairs, both sides
/// CSR. Writes JaccardSortedIds(a_i, b_i) into out[i]. `assume_unique` as
/// in JaccardCheckBatch.
void JaccardEvalPairs(const uint32_t* a_ids, const size_t* a_offsets,
                      const uint32_t* b_ids, const size_t* b_offsets,
                      size_t n, double* out, bool assume_unique = false);

// ---------------------------------------------------------------------------
// Kernel 2: edit-distance verification (Myers bit-parallel DP)
// ---------------------------------------------------------------------------

/// One probe string verified against many candidates. Patterns up to 64
/// characters run the Myers bit-parallel recurrence on a per-character
/// match-mask table built once and shared across every candidate; longer
/// patterns fall back to the banded DP reference. All paths return exactly
/// what similarity::EditDistanceCheck returns: the distance when <= k,
/// -1 otherwise.
class EditDistancePattern {
 public:
  explicit EditDistancePattern(std::string_view pattern);

  /// Distance to `text` if <= k, else -1.
  int Check(std::string_view text, int k) const;

  /// Batched verification of `n` candidates in CSR layout (candidate i is
  /// chars[offsets[i]..offsets[i+1])). Candidates of equal length are
  /// verified four at a time in AVX2 lanes when that tier is active.
  void CheckBatch(const char* chars, const size_t* offsets, size_t n, int k,
                  int* out) const;

  bool bit_parallel() const { return bit_parallel_; }

 private:
  int CheckBitParallel(std::string_view text, int k) const;

  std::string pattern_;
  bool bit_parallel_ = false;       // pattern fits one 64-bit word
  std::array<uint64_t, 256> peq_{};  // per-character pattern match masks
};

/// Convenience single-pair form (builds the pattern table per call).
int EditDistanceCheck(std::string_view a, std::string_view b, int k);

/// Batched check over `n` independent (a, b) string pairs, both sides CSR.
void EditDistanceCheckPairs(const char* a_chars, const size_t* a_offsets,
                            const char* b_chars, const size_t* b_offsets,
                            size_t n, int k, int* out);

// ---------------------------------------------------------------------------
// Kernel 3: batched T-occurrence counting over dense ids
// ---------------------------------------------------------------------------

/// Reusable scratch for counter-array T-occurrence: a dense uint16 counter
/// per candidate slot plus the list of slots touched by the current probe,
/// so reset cost is proportional to candidates touched, not to the slot
/// universe.
struct TOccurrenceScratch {
  std::vector<uint16_t> counts;
  std::vector<uint32_t> touched;

  /// Grows (never shrinks) the counter array to cover `num_slots` slots.
  void EnsureSlots(size_t num_slots) {
    if (counts.size() < num_slots) counts.resize(num_slots, 0);
  }
};

/// Counts slot occurrences across `num_lists` posting lists of dense slot
/// ids and appends every slot whose count >= t to `result` (unsorted).
/// Slots touched but below threshold are added to *pruned. Replaces the
/// gather + sort + run-count (previously hash-map) per-probe path; the
/// caller guarantees num_lists fits the uint16 counters (<= 65535) and
/// that scratch covers every slot id that appears.
void TOccurrenceCount(const uint32_t* const* lists, const size_t* sizes,
                      size_t num_lists, int t, TOccurrenceScratch& scratch,
                      std::vector<uint32_t>* result, uint64_t* pruned);

}  // namespace simdb::simd

#endif  // SIMDB_SIMILARITY_SIMD_KERNELS_H_
