#include "similarity/edit_distance.h"

#include "similarity/tokenizer.h"

namespace simdb::similarity {

int EditDistance(std::string_view a, std::string_view b) {
  return internal::EditDistanceImpl(a, b);
}

int EditDistance(const std::vector<std::string>& a,
                 const std::vector<std::string>& b) {
  return internal::EditDistanceImpl(a, b);
}

int EditDistanceCheck(std::string_view a, std::string_view b, int k) {
  return internal::EditDistanceCheckImpl(a, b, k);
}

int EditDistanceCheck(const std::vector<std::string>& a,
                      const std::vector<std::string>& b, int k) {
  return internal::EditDistanceCheckImpl(a, b, k);
}

int EditDistanceTOccurrence(int query_len, int gram_len, int k) {
  return GramCount(query_len, gram_len) - k * gram_len;
}

}  // namespace simdb::similarity
