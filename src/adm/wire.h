#ifndef SIMDB_ADM_WIRE_H_
#define SIMDB_ADM_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/bytes.h"
#include "common/result.h"

namespace simdb::adm {

/// Versioned wire framing for serialized ADM payloads. Every frame is
///
///   magic   u32  'SFRM' (0x4d524653 little-endian)
///   version u8   kWireVersion
///   length  u32  payload byte count
///   crc32   u32  CRC-32 (IEEE 802.3, reflected) of the payload
///   payload length bytes
///
/// ReadFrame validates all four header fields before handing the payload
/// out, so a truncated, corrupted, or future-versioned frame is rejected at
/// the boundary instead of feeding garbage into Value::Deserialize. The
/// transport layer wraps every shipped exchange destination in one frame;
/// the round-trip guarantees are pinned by tests/value_test.cc.
inline constexpr uint32_t kWireMagic = 0x4d524653u;  // "SFRM"
inline constexpr uint8_t kWireVersion = 1;
inline constexpr size_t kWireHeaderBytes = 4 + 1 + 4 + 4;

/// CRC-32 (IEEE 802.3 polynomial, reflected, init/final 0xffffffff) over
/// `data`. Table-driven software implementation — no hardware dependency.
uint32_t Crc32(std::string_view data);

/// Appends one frame wrapping `payload` to `*out`.
void WriteFrame(std::string_view payload, std::string* out);

/// Consumes one frame from `r`, validating magic, version, length, and
/// checksum. Returns a view of the payload (valid while the reader's backing
/// buffer lives). Corruption statuses name the failing field.
Result<std::string_view> ReadFrame(ByteReader* r);

}  // namespace simdb::adm

#endif  // SIMDB_ADM_WIRE_H_
