#ifndef SIMDB_ADM_WIRE_H_
#define SIMDB_ADM_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "common/status.h"

namespace simdb::adm {

/// Versioned wire framing for serialized ADM payloads. Every frame is
///
///   magic   u32  'SFRM' (0x4d524653 little-endian)
///   version u8   kWireVersion
///   length  u32  payload byte count
///   crc32   u32  CRC-32 (IEEE 802.3, reflected) of the payload
///   payload length bytes
///
/// ReadFrame validates all four header fields before handing the payload
/// out, so a truncated, corrupted, or future-versioned frame is rejected at
/// the boundary instead of feeding garbage into Value::Deserialize. The
/// transport layer wraps every shipped exchange destination in one frame;
/// the round-trip guarantees are pinned by tests/value_test.cc.
inline constexpr uint32_t kWireMagic = 0x4d524653u;  // "SFRM"
inline constexpr uint8_t kWireVersion = 1;
inline constexpr size_t kWireHeaderBytes = 4 + 1 + 4 + 4;

/// CRC-32 (IEEE 802.3 polynomial, reflected, init/final 0xffffffff) over
/// `data`. Table-driven software implementation — no hardware dependency.
uint32_t Crc32(std::string_view data);

/// Appends one frame wrapping `payload` to `*out`.
void WriteFrame(std::string_view payload, std::string* out);

/// Consumes one frame from `r`, validating magic, version, length, and
/// checksum. Returns a view of the payload (valid while the reader's backing
/// buffer lives). Corruption statuses name the failing field.
Result<std::string_view> ReadFrame(ByteReader* r);

/// Message types spoken on a socket-transport channel. Every message is one
/// tag byte followed by one frame (see above); the tag decides how the frame
/// payload is interpreted. kData..kError are the PR 8 echo protocol;
/// kFragment..kCancelFragment carry node-local execution (docs/DISTRIBUTED.md
/// is the full reference).
enum class WireMessage : uint8_t {
  kData = 1,            // parent -> worker: rows frame to validate + echo
  kPing = 2,            // parent -> worker: liveness probe (empty payload)
  kShutdown = 3,        // parent -> worker: exit cleanly (empty payload)
  kPong = 4,            // worker -> parent: ping/cancel acknowledgement
  kError = 5,           // worker -> parent: kData rejection (message payload)
  kFragment = 6,        // parent -> worker: execute a fragment closure
  kFragmentResult = 7,  // worker -> parent: fragment rows + accounting
  kFragmentError = 8,   // worker -> parent: encoded Status of a failed fragment
  kCancelFragment = 9,  // parent -> worker: cancel fragments of one query id
};

/// Stable human-readable name for a wire message type ("kFragment" etc.).
std::string_view WireMessageName(WireMessage type);

/// Exchange-operator kinds a fragment closure can name. The closure is the
/// operator's serialized identity: which connector to reconstruct in the
/// worker plus its column parameters. Values are wire-stable.
enum class FragmentOp : uint8_t {
  kHash = 1,         // hash-partitioned exchange (columns = hash keys)
  kBroadcast = 2,    // replicate to every partition (no columns)
  kGather = 3,       // concatenate into partition 0 (no columns)
  kMergeGather = 4,  // ordered merge into partition 0 (columns + directions)
};

/// Serialized identity of one exchange connector. `columns` are the hash-key
/// or sort-key column indexes; `ascending` parallels `columns` for
/// merge-gather (1 = ascending) and is empty for the other ops.
struct FragmentClosure {
  FragmentOp op = FragmentOp::kHash;
  std::vector<int32_t> columns;
  std::vector<uint8_t> ascending;
};

void EncodeFragmentClosure(const FragmentClosure& closure, ByteWriter* w);
Result<FragmentClosure> DecodeFragmentClosure(ByteReader* r);

/// Fixed prelude of a kFragment request payload. `query_id` leads so a worker
/// can match the request against its cancellation ledger before decoding the
/// (potentially large) partition groups that follow the closure.
struct FragmentHeader {
  uint64_t query_id = 0;
  uint32_t dst_partition = 0;
  uint32_t num_nodes = 0;
  uint32_t partitions_per_node = 0;
  uint32_t num_groups = 0;  // partition-group count following the closure
};

void EncodeFragmentHeader(const FragmentHeader& h, ByteWriter* w);
Result<FragmentHeader> DecodeFragmentHeader(ByteReader* r);

/// Fixed prelude of a kFragmentResult payload: the worker's accounting for
/// the build it ran, followed (outside this struct) by the produced rows.
/// `worker_pid` is the executing process id — tests use it to prove the
/// destination was produced outside the parent.
struct FragmentResultHeader {
  uint64_t query_id = 0;
  int64_t worker_pid = 0;
  uint64_t local_bytes = 0;
  uint64_t remote_bytes = 0;
  uint64_t remote_transfers = 0;
  double compute_seconds = 0;
};

void EncodeFragmentResultHeader(const FragmentResultHeader& h, ByteWriter* w);
Result<FragmentResultHeader> DecodeFragmentResultHeader(ByteReader* r);

/// kFragmentError payload: `[u8 status code][u32 len][message]`. Encoding an
/// OK status is a caller bug (checked); decoding returns the carried Status,
/// or Corruption when the payload itself is malformed (unknown code, OK code,
/// truncation) — so a garbled error can never masquerade as success.
void EncodeFragmentError(const Status& status, std::string* payload);
Status DecodeFragmentError(std::string_view payload);

}  // namespace simdb::adm

#endif  // SIMDB_ADM_WIRE_H_
