#include "adm/value.h"

namespace simdb::adm {

void Value::Serialize(ByteWriter* w) const {
  w->PutU8(static_cast<uint8_t>(type_));
  switch (type_) {
    case ValueType::kMissing:
    case ValueType::kNull:
      return;
    case ValueType::kBoolean:
      w->PutU8(AsBoolean() ? 1 : 0);
      return;
    case ValueType::kInt64:
      w->PutI64(AsInt64());
      return;
    case ValueType::kDouble:
      w->PutDouble(AsDoubleExact());
      return;
    case ValueType::kString:
      w->PutString(AsString());
      return;
    case ValueType::kArray:
    case ValueType::kMultiset: {
      const Array& items = AsList();
      w->PutU32(static_cast<uint32_t>(items.size()));
      for (const Value& v : items) v.Serialize(w);
      return;
    }
    case ValueType::kObject: {
      const Object& fields = AsObject();
      w->PutU32(static_cast<uint32_t>(fields.size()));
      for (const Field& f : fields) {
        w->PutString(f.first);
        f.second.Serialize(w);
      }
      return;
    }
  }
}

Result<Value> Value::Deserialize(ByteReader* r) {
  SIMDB_ASSIGN_OR_RETURN(uint8_t tag, r->GetU8());
  if (tag > static_cast<uint8_t>(ValueType::kObject)) {
    return Status::Corruption("bad value type tag " + std::to_string(tag));
  }
  ValueType type = static_cast<ValueType>(tag);
  switch (type) {
    case ValueType::kMissing:
      return Value::Missing();
    case ValueType::kNull:
      return Value::Null();
    case ValueType::kBoolean: {
      SIMDB_ASSIGN_OR_RETURN(uint8_t b, r->GetU8());
      return Value::Boolean(b != 0);
    }
    case ValueType::kInt64: {
      SIMDB_ASSIGN_OR_RETURN(int64_t i, r->GetI64());
      return Value::Int64(i);
    }
    case ValueType::kDouble: {
      SIMDB_ASSIGN_OR_RETURN(double d, r->GetDouble());
      return Value::Double(d);
    }
    case ValueType::kString: {
      SIMDB_ASSIGN_OR_RETURN(std::string_view s, r->GetString());
      return Value::String(std::string(s));
    }
    case ValueType::kArray:
    case ValueType::kMultiset: {
      SIMDB_ASSIGN_OR_RETURN(uint32_t n, r->GetU32());
      Array items;
      items.reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        SIMDB_ASSIGN_OR_RETURN(Value v, Deserialize(r));
        items.push_back(std::move(v));
      }
      return type == ValueType::kArray ? Value::MakeArray(std::move(items))
                                       : Value::MakeMultiset(std::move(items));
    }
    case ValueType::kObject: {
      SIMDB_ASSIGN_OR_RETURN(uint32_t n, r->GetU32());
      Object fields;
      fields.reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        SIMDB_ASSIGN_OR_RETURN(std::string_view name, r->GetString());
        std::string name_copy(name);
        SIMDB_ASSIGN_OR_RETURN(Value v, Deserialize(r));
        fields.emplace_back(std::move(name_copy), std::move(v));
      }
      // Fields were stored sorted; MakeObject re-canonicalizes defensively.
      return Value::MakeObject(std::move(fields));
    }
  }
  return Status::Corruption("unreachable value tag");
}

}  // namespace simdb::adm
