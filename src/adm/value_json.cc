#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "adm/value.h"

namespace simdb::adm {
namespace {

void AppendEscaped(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\r':
        out->append("\\r");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void ToJsonImpl(const Value& v, std::string* out) {
  switch (v.type()) {
    case ValueType::kMissing:
      out->append("missing");
      return;
    case ValueType::kNull:
      out->append("null");
      return;
    case ValueType::kBoolean:
      out->append(v.AsBoolean() ? "true" : "false");
      return;
    case ValueType::kInt64:
      out->append(std::to_string(v.AsInt64()));
      return;
    case ValueType::kDouble: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.17g", v.AsDoubleExact());
      out->append(buf);
      return;
    }
    case ValueType::kString:
      AppendEscaped(v.AsString(), out);
      return;
    case ValueType::kArray:
    case ValueType::kMultiset: {
      bool multiset = v.is_multiset();
      out->append(multiset ? "{{" : "[");
      bool first = true;
      for (const Value& item : v.AsList()) {
        if (!first) out->push_back(',');
        first = false;
        ToJsonImpl(item, out);
      }
      out->append(multiset ? "}}" : "]");
      return;
    }
    case ValueType::kObject: {
      out->push_back('{');
      bool first = true;
      for (const Value::Field& f : v.AsObject()) {
        if (!first) out->push_back(',');
        first = false;
        AppendEscaped(f.first, out);
        out->push_back(':');
        ToJsonImpl(f.second, out);
      }
      out->push_back('}');
      return;
    }
  }
}

/// Minimal recursive-descent JSON parser with the ADM `{{ ... }}` multiset
/// extension. Does not decode \uXXXX beyond Latin-1 (sufficient for the
/// synthetic datasets and tests).
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text), pos_(0) {}

  Result<Value> Parse() {
    SIMDB_ASSIGN_OR_RETURN(Value v, ParseValue());
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Err("trailing characters after JSON value");
    }
    return v;
  }

 private:
  Status Err(const std::string& msg) const {
    return Status::ParseError(msg + " at offset " + std::to_string(pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(std::string_view w) {
    SkipWhitespace();
    if (text_.substr(pos_, w.size()) == w) {
      pos_ += w.size();
      return true;
    }
    return false;
  }

  Result<Value> ParseValue() {
    SkipWhitespace();
    if (pos_ >= text_.size()) return Err("unexpected end of input");
    char c = text_[pos_];
    if (c == '{') {
      if (text_.substr(pos_, 2) == "{{") return ParseMultiset();
      return ParseObject();
    }
    if (c == '[') return ParseArray();
    if (c == '"') {
      SIMDB_ASSIGN_OR_RETURN(std::string s, ParseString());
      return Value::String(std::move(s));
    }
    if (ConsumeWord("true")) return Value::Boolean(true);
    if (ConsumeWord("false")) return Value::Boolean(false);
    if (ConsumeWord("null")) return Value::Null();
    if (ConsumeWord("missing")) return Value::Missing();
    return ParseNumber();
  }

  Result<Value> ParseObject() {
    ++pos_;  // '{'
    Value::Object fields;
    SkipWhitespace();
    if (Consume('}')) return Value::MakeObject(std::move(fields));
    for (;;) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Err("expected field name");
      }
      SIMDB_ASSIGN_OR_RETURN(std::string name, ParseString());
      if (!Consume(':')) return Err("expected ':'");
      SIMDB_ASSIGN_OR_RETURN(Value v, ParseValue());
      fields.emplace_back(std::move(name), std::move(v));
      if (Consume(',')) continue;
      if (Consume('}')) break;
      return Err("expected ',' or '}'");
    }
    return Value::MakeObject(std::move(fields));
  }

  Result<Value> ParseArray() {
    ++pos_;  // '['
    Value::Array items;
    if (Consume(']')) return Value::MakeArray(std::move(items));
    for (;;) {
      SIMDB_ASSIGN_OR_RETURN(Value v, ParseValue());
      items.push_back(std::move(v));
      if (Consume(',')) continue;
      if (Consume(']')) break;
      return Err("expected ',' or ']'");
    }
    return Value::MakeArray(std::move(items));
  }

  Result<Value> ParseMultiset() {
    pos_ += 2;  // '{{'
    Value::Array items;
    SkipWhitespace();
    if (text_.substr(pos_, 2) == "}}") {
      pos_ += 2;
      return Value::MakeMultiset(std::move(items));
    }
    for (;;) {
      SIMDB_ASSIGN_OR_RETURN(Value v, ParseValue());
      items.push_back(std::move(v));
      if (Consume(',')) continue;
      SkipWhitespace();
      if (text_.substr(pos_, 2) == "}}") {
        pos_ += 2;
        break;
      }
      return Err("expected ',' or '}}'");
    }
    return Value::MakeMultiset(std::move(items));
  }

  Result<std::string> ParseString() {
    ++pos_;  // '"'
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) return Err("bad escape");
        char e = text_[pos_++];
        switch (e) {
          case '"':
            out.push_back('"');
            break;
          case '\\':
            out.push_back('\\');
            break;
          case '/':
            out.push_back('/');
            break;
          case 'n':
            out.push_back('\n');
            break;
          case 'r':
            out.push_back('\r');
            break;
          case 't':
            out.push_back('\t');
            break;
          case 'b':
            out.push_back('\b');
            break;
          case 'f':
            out.push_back('\f');
            break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return Err("bad \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                return Err("bad \\u escape digit");
              }
            }
            // Encode as UTF-8.
            if (code < 0x80) {
              out.push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out.push_back(static_cast<char>(0xC0 | (code >> 6)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out.push_back(static_cast<char>(0xE0 | (code >> 12)));
              out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default:
            return Err("unknown escape");
        }
      } else {
        out.push_back(c);
      }
    }
    return Err("unterminated string");
  }

  Result<Value> ParseNumber() {
    size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    bool is_double = false;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        is_double = true;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) return Err("expected a value");
    std::string num(text_.substr(start, pos_ - start));
    if (is_double) {
      char* end = nullptr;
      double d = std::strtod(num.c_str(), &end);
      if (end != num.c_str() + num.size()) return Err("bad number");
      return Value::Double(d);
    }
    errno = 0;
    char* end = nullptr;
    long long i = std::strtoll(num.c_str(), &end, 10);
    if (end != num.c_str() + num.size() || errno == ERANGE) {
      return Err("bad integer");
    }
    return Value::Int64(i);
  }

  std::string_view text_;
  size_t pos_;
};

}  // namespace

std::string Value::ToJson() const {
  std::string out;
  ToJsonImpl(*this, &out);
  return out;
}

Result<Value> Value::FromJson(std::string_view text) {
  return JsonParser(text).Parse();
}

}  // namespace simdb::adm
