#ifndef SIMDB_ADM_VALUE_H_
#define SIMDB_ADM_VALUE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"

namespace simdb::adm {

/// Type tags of the ADM-like data model. The order of enumerators defines the
/// cross-type total order used for sorting heterogeneous values (as in
/// schema-less AsterixDB datasets).
enum class ValueType : uint8_t {
  kMissing = 0,
  kNull = 1,
  kBoolean = 2,
  kInt64 = 3,
  kDouble = 4,
  kString = 5,
  kArray = 6,     // ordered list
  kMultiset = 7,  // unordered list
  kObject = 8,
};

std::string_view ValueTypeToString(ValueType t);

/// A dynamically typed ADM value: the unit of data flowing through every
/// layer (records, index keys, query results). Objects keep fields sorted by
/// name so equality/comparison/hash are canonical.
class Value {
 public:
  using Array = std::vector<Value>;
  using Field = std::pair<std::string, Value>;
  using Object = std::vector<Field>;  // sorted by field name

  /// Constructs MISSING (absent field), the bottom of the type order.
  Value() : type_(ValueType::kMissing) {}

  static Value Missing() { return Value(); }
  static Value Null() {
    Value v;
    v.type_ = ValueType::kNull;
    return v;
  }
  static Value Boolean(bool b) {
    Value v;
    v.type_ = ValueType::kBoolean;
    v.data_ = b;
    return v;
  }
  static Value Int64(int64_t i) {
    Value v;
    v.type_ = ValueType::kInt64;
    v.data_ = i;
    return v;
  }
  static Value Double(double d) {
    Value v;
    v.type_ = ValueType::kDouble;
    v.data_ = d;
    return v;
  }
  static Value String(std::string s) {
    Value v;
    v.type_ = ValueType::kString;
    v.data_ = std::move(s);
    return v;
  }
  static Value MakeArray(Array items) {
    Value v;
    v.type_ = ValueType::kArray;
    v.data_ = std::move(items);
    return v;
  }
  static Value MakeMultiset(Array items) {
    Value v;
    v.type_ = ValueType::kMultiset;
    v.data_ = std::move(items);
    return v;
  }
  /// Fields are sorted by name; duplicate names keep the last occurrence.
  static Value MakeObject(Object fields);

  ValueType type() const { return type_; }
  bool is_missing() const { return type_ == ValueType::kMissing; }
  bool is_null() const { return type_ == ValueType::kNull; }
  bool is_boolean() const { return type_ == ValueType::kBoolean; }
  bool is_int64() const { return type_ == ValueType::kInt64; }
  bool is_double() const { return type_ == ValueType::kDouble; }
  bool is_numeric() const { return is_int64() || is_double(); }
  bool is_string() const { return type_ == ValueType::kString; }
  bool is_array() const { return type_ == ValueType::kArray; }
  bool is_multiset() const { return type_ == ValueType::kMultiset; }
  bool is_list() const { return is_array() || is_multiset(); }
  bool is_object() const { return type_ == ValueType::kObject; }

  bool AsBoolean() const { return std::get<bool>(data_); }
  int64_t AsInt64() const { return std::get<int64_t>(data_); }
  double AsDoubleExact() const { return std::get<double>(data_); }
  /// Numeric value widened to double (valid for int64 and double).
  double AsNumber() const {
    return is_int64() ? static_cast<double>(AsInt64()) : AsDoubleExact();
  }
  const std::string& AsString() const { return std::get<std::string>(data_); }
  const Array& AsList() const { return std::get<Array>(data_); }
  Array& MutableList() { return std::get<Array>(data_); }
  const Object& AsObject() const { return std::get<Object>(data_); }

  /// Returns the field value, or MISSING when absent / not an object.
  const Value& GetField(std::string_view name) const;

  /// Total order across all types: MISSING < NULL < bool < numbers (compared
  /// numerically across int64/double) < strings < arrays < multisets <
  /// objects. Returns <0, 0, >0.
  static int Compare(const Value& a, const Value& b);

  bool operator==(const Value& other) const { return Compare(*this, other) == 0; }
  bool operator!=(const Value& other) const { return !(*this == other); }
  bool operator<(const Value& other) const { return Compare(*this, other) < 0; }

  /// Hash consistent with operator== (numeric values hash by double value).
  uint64_t Hash() const;

  /// Compact JSON-style rendering (objects print fields in sorted order).
  std::string ToJson() const;

  /// Parses a JSON document. Integers without fraction/exponent parse as
  /// int64; `{{ ... }}` parses as a multiset (AsterixDB ADM syntax).
  static Result<Value> FromJson(std::string_view text);

  /// Binary serialization (storage format).
  void Serialize(ByteWriter* w) const;
  static Result<Value> Deserialize(ByteReader* r);

  /// Rough in-memory footprint in bytes (used for memtable budgets).
  size_t MemoryUsage() const;

 private:
  ValueType type_;
  std::variant<std::monostate, bool, int64_t, double, std::string, Array,
               Object>
      data_;
};

/// The canonical MISSING singleton returned by failed field lookups.
const Value& MissingValue();

}  // namespace simdb::adm

#endif  // SIMDB_ADM_VALUE_H_
