#include "adm/value.h"

#include <algorithm>
#include <cmath>

namespace simdb::adm {

std::string_view ValueTypeToString(ValueType t) {
  switch (t) {
    case ValueType::kMissing:
      return "missing";
    case ValueType::kNull:
      return "null";
    case ValueType::kBoolean:
      return "boolean";
    case ValueType::kInt64:
      return "int64";
    case ValueType::kDouble:
      return "double";
    case ValueType::kString:
      return "string";
    case ValueType::kArray:
      return "array";
    case ValueType::kMultiset:
      return "multiset";
    case ValueType::kObject:
      return "object";
  }
  return "?";
}

Value Value::MakeObject(Object fields) {
  std::stable_sort(fields.begin(), fields.end(),
                   [](const Field& a, const Field& b) { return a.first < b.first; });
  // Duplicate names keep the last occurrence (JSON semantics).
  Object dedup;
  dedup.reserve(fields.size());
  for (auto& f : fields) {
    if (!dedup.empty() && dedup.back().first == f.first) {
      dedup.back().second = std::move(f.second);
    } else {
      dedup.push_back(std::move(f));
    }
  }
  Value v;
  v.type_ = ValueType::kObject;
  v.data_ = std::move(dedup);
  return v;
}

const Value& MissingValue() {
  static const Value* kMissing = new Value();
  return *kMissing;
}

const Value& Value::GetField(std::string_view name) const {
  if (!is_object()) return MissingValue();
  const Object& fields = AsObject();
  auto it = std::lower_bound(
      fields.begin(), fields.end(), name,
      [](const Field& f, std::string_view n) { return f.first < n; });
  if (it != fields.end() && it->first == name) return it->second;
  return MissingValue();
}

namespace {

// Numeric class shared by int64 and double for cross-type ordering.
int TypeClass(ValueType t) {
  switch (t) {
    case ValueType::kMissing:
      return 0;
    case ValueType::kNull:
      return 1;
    case ValueType::kBoolean:
      return 2;
    case ValueType::kInt64:
    case ValueType::kDouble:
      return 3;
    case ValueType::kString:
      return 4;
    case ValueType::kArray:
      return 5;
    case ValueType::kMultiset:
      return 6;
    case ValueType::kObject:
      return 7;
  }
  return 8;
}

int CompareDouble(double a, double b) {
  if (a < b) return -1;
  if (a > b) return 1;
  return 0;
}

}  // namespace

int Value::Compare(const Value& a, const Value& b) {
  int ca = TypeClass(a.type_), cb = TypeClass(b.type_);
  if (ca != cb) return ca < cb ? -1 : 1;
  switch (a.type_) {
    case ValueType::kMissing:
    case ValueType::kNull:
      return 0;
    case ValueType::kBoolean: {
      int ia = a.AsBoolean() ? 1 : 0, ib = b.AsBoolean() ? 1 : 0;
      return ia - ib;
    }
    case ValueType::kInt64:
    case ValueType::kDouble: {
      if (a.is_int64() && b.is_int64()) {
        int64_t ia = a.AsInt64(), ib = b.AsInt64();
        if (ia < ib) return -1;
        if (ia > ib) return 1;
        return 0;
      }
      return CompareDouble(a.AsNumber(), b.AsNumber());
    }
    case ValueType::kString: {
      int c = a.AsString().compare(b.AsString());
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
    case ValueType::kArray:
    case ValueType::kMultiset: {
      const Array& la = a.AsList();
      const Array& lb = b.AsList();
      size_t n = std::min(la.size(), lb.size());
      for (size_t i = 0; i < n; ++i) {
        int c = Compare(la[i], lb[i]);
        if (c != 0) return c;
      }
      if (la.size() < lb.size()) return -1;
      if (la.size() > lb.size()) return 1;
      return 0;
    }
    case ValueType::kObject: {
      const Object& oa = a.AsObject();
      const Object& ob = b.AsObject();
      size_t n = std::min(oa.size(), ob.size());
      for (size_t i = 0; i < n; ++i) {
        int c = oa[i].first.compare(ob[i].first);
        if (c != 0) return c < 0 ? -1 : 1;
        c = Compare(oa[i].second, ob[i].second);
        if (c != 0) return c;
      }
      if (oa.size() < ob.size()) return -1;
      if (oa.size() > ob.size()) return 1;
      return 0;
    }
  }
  return 0;
}

namespace {

uint64_t HashCombine(uint64_t h, uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

// splitmix64 finalizer: spreads entropy into the low bits, which partition
// routing (hash % P) depends on.
uint64_t Mix(uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t HashBytes(std::string_view s) {
  // FNV-1a.
  uint64_t h = 14695981039346656037ULL;
  for (char c : s) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

uint64_t Value::Hash() const {
  switch (type_) {
    case ValueType::kMissing:
      return 0x4d495353;
    case ValueType::kNull:
      return 0x4e554c4c;
    case ValueType::kBoolean:
      return AsBoolean() ? 0xb001u : 0xb000u;
    case ValueType::kInt64:
    case ValueType::kDouble: {
      // Hash by numeric (double) value so 1 and 1.0 collide, matching ==.
      double d = AsNumber();
      if (d == 0.0) d = 0.0;  // normalize -0.0
      uint64_t bits;
      std::memcpy(&bits, &d, 8);
      return Mix(HashCombine(0x6e756d, bits));
    }
    case ValueType::kString:
      return HashBytes(AsString());
    case ValueType::kArray:
    case ValueType::kMultiset: {
      uint64_t h = 0xa88a;
      for (const Value& v : AsList()) h = HashCombine(h, v.Hash());
      return h;
    }
    case ValueType::kObject: {
      uint64_t h = 0x0b77;
      for (const Field& f : AsObject()) {
        h = HashCombine(h, HashBytes(f.first));
        h = HashCombine(h, f.second.Hash());
      }
      return h;
    }
  }
  return 0;
}

size_t Value::MemoryUsage() const {
  size_t base = sizeof(Value);
  switch (type_) {
    case ValueType::kString:
      return base + AsString().capacity();
    case ValueType::kArray:
    case ValueType::kMultiset: {
      size_t s = base;
      for (const Value& v : AsList()) s += v.MemoryUsage();
      return s;
    }
    case ValueType::kObject: {
      size_t s = base;
      for (const Field& f : AsObject()) {
        s += f.first.capacity() + f.second.MemoryUsage();
      }
      return s;
    }
    default:
      return base;
  }
}

}  // namespace simdb::adm
