#include "adm/wire.h"

#include <array>

namespace simdb::adm {

namespace {

std::array<uint32_t, 256> MakeCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) != 0 ? 0xedb88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

uint32_t Crc32(std::string_view data) {
  static const std::array<uint32_t, 256> kTable = MakeCrcTable();
  uint32_t c = 0xffffffffu;
  for (char ch : data) {
    c = kTable[(c ^ static_cast<uint8_t>(ch)) & 0xffu] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

void WriteFrame(std::string_view payload, std::string* out) {
  ByteWriter w(out);
  w.PutU32(kWireMagic);
  w.PutU8(kWireVersion);
  w.PutU32(static_cast<uint32_t>(payload.size()));
  w.PutU32(Crc32(payload));
  out->append(payload.data(), payload.size());
}

Result<std::string_view> ReadFrame(ByteReader* r) {
  SIMDB_ASSIGN_OR_RETURN(uint32_t magic, r->GetU32());
  if (magic != kWireMagic) {
    return Status::Corruption("bad frame magic " + std::to_string(magic));
  }
  SIMDB_ASSIGN_OR_RETURN(uint8_t version, r->GetU8());
  if (version != kWireVersion) {
    return Status::Corruption("unsupported frame version " +
                              std::to_string(version));
  }
  SIMDB_ASSIGN_OR_RETURN(uint32_t length, r->GetU32());
  SIMDB_ASSIGN_OR_RETURN(uint32_t crc, r->GetU32());
  if (r->remaining() < length) {
    return Status::Corruption(
        "frame truncated: payload needs " + std::to_string(length) +
        " bytes, " + std::to_string(r->remaining()) + " remain");
  }
  SIMDB_ASSIGN_OR_RETURN(std::string_view raw, r->GetRaw(length));
  if (Crc32(raw) != crc) {
    return Status::Corruption("frame checksum mismatch");
  }
  return raw;
}

}  // namespace simdb::adm
