#include "adm/wire.h"

#include <array>

#include "common/logging.h"

namespace simdb::adm {

namespace {

std::array<uint32_t, 256> MakeCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) != 0 ? 0xedb88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

uint32_t Crc32(std::string_view data) {
  static const std::array<uint32_t, 256> kTable = MakeCrcTable();
  uint32_t c = 0xffffffffu;
  for (char ch : data) {
    c = kTable[(c ^ static_cast<uint8_t>(ch)) & 0xffu] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

void WriteFrame(std::string_view payload, std::string* out) {
  ByteWriter w(out);
  w.PutU32(kWireMagic);
  w.PutU8(kWireVersion);
  w.PutU32(static_cast<uint32_t>(payload.size()));
  w.PutU32(Crc32(payload));
  out->append(payload.data(), payload.size());
}

Result<std::string_view> ReadFrame(ByteReader* r) {
  SIMDB_ASSIGN_OR_RETURN(uint32_t magic, r->GetU32());
  if (magic != kWireMagic) {
    return Status::Corruption("bad frame magic " + std::to_string(magic));
  }
  SIMDB_ASSIGN_OR_RETURN(uint8_t version, r->GetU8());
  if (version != kWireVersion) {
    return Status::Corruption("unsupported frame version " +
                              std::to_string(version));
  }
  SIMDB_ASSIGN_OR_RETURN(uint32_t length, r->GetU32());
  SIMDB_ASSIGN_OR_RETURN(uint32_t crc, r->GetU32());
  if (r->remaining() < length) {
    return Status::Corruption(
        "frame truncated: payload needs " + std::to_string(length) +
        " bytes, " + std::to_string(r->remaining()) + " remain");
  }
  SIMDB_ASSIGN_OR_RETURN(std::string_view raw, r->GetRaw(length));
  if (Crc32(raw) != crc) {
    return Status::Corruption("frame checksum mismatch");
  }
  return raw;
}

std::string_view WireMessageName(WireMessage type) {
  switch (type) {
    case WireMessage::kData:
      return "kData";
    case WireMessage::kPing:
      return "kPing";
    case WireMessage::kShutdown:
      return "kShutdown";
    case WireMessage::kPong:
      return "kPong";
    case WireMessage::kError:
      return "kError";
    case WireMessage::kFragment:
      return "kFragment";
    case WireMessage::kFragmentResult:
      return "kFragmentResult";
    case WireMessage::kFragmentError:
      return "kFragmentError";
    case WireMessage::kCancelFragment:
      return "kCancelFragment";
  }
  return "unknown";
}

void EncodeFragmentClosure(const FragmentClosure& closure, ByteWriter* w) {
  w->PutU8(static_cast<uint8_t>(closure.op));
  w->PutU32(static_cast<uint32_t>(closure.columns.size()));
  for (int32_t c : closure.columns) w->PutU32(static_cast<uint32_t>(c));
  w->PutU32(static_cast<uint32_t>(closure.ascending.size()));
  for (uint8_t a : closure.ascending) w->PutU8(a);
}

Result<FragmentClosure> DecodeFragmentClosure(ByteReader* r) {
  FragmentClosure closure;
  SIMDB_ASSIGN_OR_RETURN(uint8_t op, r->GetU8());
  if (op < static_cast<uint8_t>(FragmentOp::kHash) ||
      op > static_cast<uint8_t>(FragmentOp::kMergeGather)) {
    return Status::Corruption("unknown fragment op tag " + std::to_string(op));
  }
  closure.op = static_cast<FragmentOp>(op);
  SIMDB_ASSIGN_OR_RETURN(uint32_t ncols, r->GetU32());
  // Element reads bound memory growth: a lying count fails on truncation
  // before any large allocation happens.
  for (uint32_t i = 0; i < ncols; ++i) {
    SIMDB_ASSIGN_OR_RETURN(uint32_t c, r->GetU32());
    closure.columns.push_back(static_cast<int32_t>(c));
  }
  SIMDB_ASSIGN_OR_RETURN(uint32_t nasc, r->GetU32());
  for (uint32_t i = 0; i < nasc; ++i) {
    SIMDB_ASSIGN_OR_RETURN(uint8_t a, r->GetU8());
    closure.ascending.push_back(a);
  }
  if (!closure.ascending.empty() &&
      closure.ascending.size() != closure.columns.size()) {
    return Status::Corruption(
        "fragment closure: " + std::to_string(closure.columns.size()) +
        " columns but " + std::to_string(closure.ascending.size()) +
        " sort directions");
  }
  return closure;
}

void EncodeFragmentHeader(const FragmentHeader& h, ByteWriter* w) {
  w->PutU64(h.query_id);
  w->PutU32(h.dst_partition);
  w->PutU32(h.num_nodes);
  w->PutU32(h.partitions_per_node);
  w->PutU32(h.num_groups);
}

Result<FragmentHeader> DecodeFragmentHeader(ByteReader* r) {
  FragmentHeader h;
  SIMDB_ASSIGN_OR_RETURN(h.query_id, r->GetU64());
  SIMDB_ASSIGN_OR_RETURN(h.dst_partition, r->GetU32());
  SIMDB_ASSIGN_OR_RETURN(h.num_nodes, r->GetU32());
  SIMDB_ASSIGN_OR_RETURN(h.partitions_per_node, r->GetU32());
  SIMDB_ASSIGN_OR_RETURN(h.num_groups, r->GetU32());
  if (h.num_nodes == 0 || h.partitions_per_node == 0) {
    return Status::Corruption("fragment header: empty topology");
  }
  uint64_t parts =
      static_cast<uint64_t>(h.num_nodes) * h.partitions_per_node;
  if (h.num_groups != parts) {
    return Status::Corruption(
        "fragment header: " + std::to_string(h.num_groups) + " groups for " +
        std::to_string(parts) + " partitions");
  }
  if (h.dst_partition >= parts) {
    return Status::Corruption("fragment header: destination partition " +
                              std::to_string(h.dst_partition) +
                              " out of range");
  }
  return h;
}

void EncodeFragmentResultHeader(const FragmentResultHeader& h, ByteWriter* w) {
  w->PutU64(h.query_id);
  w->PutI64(h.worker_pid);
  w->PutU64(h.local_bytes);
  w->PutU64(h.remote_bytes);
  w->PutU64(h.remote_transfers);
  w->PutDouble(h.compute_seconds);
}

Result<FragmentResultHeader> DecodeFragmentResultHeader(ByteReader* r) {
  FragmentResultHeader h;
  SIMDB_ASSIGN_OR_RETURN(h.query_id, r->GetU64());
  SIMDB_ASSIGN_OR_RETURN(h.worker_pid, r->GetI64());
  SIMDB_ASSIGN_OR_RETURN(h.local_bytes, r->GetU64());
  SIMDB_ASSIGN_OR_RETURN(h.remote_bytes, r->GetU64());
  SIMDB_ASSIGN_OR_RETURN(h.remote_transfers, r->GetU64());
  SIMDB_ASSIGN_OR_RETURN(h.compute_seconds, r->GetDouble());
  return h;
}

void EncodeFragmentError(const Status& status, std::string* payload) {
  SIMDB_CHECK(!status.ok()) << "fragment error payload cannot carry OK";
  ByteWriter w(payload);
  w.PutU8(static_cast<uint8_t>(status.code()));
  w.PutString(status.message());
}

Status DecodeFragmentError(std::string_view payload) {
  ByteReader r(payload);
  Result<uint8_t> code = r.GetU8();
  if (!code.ok()) return code.status();
  Result<std::string_view> message = r.GetString();
  if (!message.ok()) return message.status();
  if (*code == static_cast<uint8_t>(StatusCode::kOk) ||
      *code > static_cast<uint8_t>(StatusCode::kUnavailable)) {
    return Status::Corruption("fragment error payload carries status code " +
                              std::to_string(*code));
  }
  return Status(static_cast<StatusCode>(*code), std::string(*message));
}

}  // namespace simdb::adm
