#include "testing/fuzz.h"

#include <algorithm>

#include "common/random.h"

namespace simdb::testing {

namespace {

// Fixed Fork() stream ids: adding a stream must not renumber existing ones,
// or every recorded failing seed changes meaning.
constexpr uint64_t kStreamProfile = 1;
constexpr uint64_t kStreamData = 2;
constexpr uint64_t kStreamQuery = 3;
constexpr uint64_t kStreamSampler = 4;

std::string FmtDouble(double v) {
  // Stable short rendering for thresholds (0, 0.1, ..., 1).
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", v);
  return buf;
}

/// Jaccard threshold with edge cases: 0 (matches everything, including
/// token-disjoint pairs — the T = 0 corner), 1 (exact set match), otherwise a
/// mid-range value in 0.1 steps.
double PickJaccardDelta(Random& rng) {
  uint64_t c = rng.Uniform(8);
  if (c == 0) return 0.0;
  if (c == 1) return 1.0;
  return 0.1 * static_cast<double>(1 + rng.Uniform(8));  // 0.1 .. 0.8
}

/// Edit-distance threshold with edge cases: 0 (exact match), a large k that
/// drives T = |G(q)| - k*n below zero for short names (index corner branch),
/// otherwise small k.
int PickEditK(Random& rng) {
  uint64_t c = rng.Uniform(8);
  if (c == 0) return 0;
  if (c == 1) return 9;
  return 1 + static_cast<int>(rng.Uniform(3));  // 1 .. 3
}

std::string SampleText(datagen::WorkloadSampler& sampler,
                       const std::string& fallback) {
  Result<std::string> v = sampler.SampleWithMinWords(1);
  return v.ok() ? *v : fallback;
}

std::string SampleName(datagen::WorkloadSampler& sampler,
                       const std::string& fallback) {
  Result<std::string> v = sampler.SampleWithMinChars(3);
  return v.ok() ? *v : fallback;
}

}  // namespace

FuzzCase MakeFuzzCase(uint64_t seed) {
  Random master(seed);
  Random prof_rng = master.Fork(kStreamProfile);
  Random query_rng = master.Fork(kStreamQuery);

  FuzzCase c;
  c.seed = seed;
  c.data_seed = master.Fork(kStreamData).initial_seed();

  // Small vocabularies and high duplicate rates make the similarity space
  // dense enough that every plan variant has non-trivial answers to disagree
  // about.
  switch (prof_rng.Uniform(3)) {
    case 0:
      c.profile = datagen::AmazonProfile();
      break;
    case 1:
      c.profile = datagen::TwitterProfile();
      break;
    default:
      c.profile = datagen::RedditProfile();
      break;
  }
  c.profile.vocab_size = 30 + static_cast<int>(prof_rng.Uniform(50));
  c.profile.avg_words = 3 + static_cast<int>(prof_rng.Uniform(4));
  c.profile.max_words = std::min(c.profile.max_words, 20);
  c.profile.name_pool_size = 30 + static_cast<int>(prof_rng.Uniform(40));
  c.profile.near_duplicate_rate = 0.3 + 0.2 * prof_rng.NextDouble();
  c.profile.name_typo_rate = 0.5;
  c.num_records = 60 + static_cast<int>(prof_rng.Uniform(60));

  const std::string& text_field = c.profile.text_field;
  const std::string& name_field = c.profile.name_field;
  c.ddl = "create dataset D primary key id;"
          "create index kw on D(" + text_field + ") type keyword;"
          "create index ng on D(" + name_field + ") type ngram(2);";

  // Pre-generate the record stream once so query constants can be sampled
  // from real field values (the paper's workload protocol).
  datagen::TextDatasetGenerator gen(c.profile, c.data_seed);
  for (int64_t i = 0; i < c.num_records; ++i) gen.NextRecord(i);
  Random sampler_seed = master.Fork(kStreamSampler);
  datagen::WorkloadSampler texts(gen.texts(), sampler_seed.NextU64());
  datagen::WorkloadSampler names(gen.names(), sampler_seed.NextU64());

  auto jaccard_pred = [&](const std::string& a, const std::string& b,
                          double delta) {
    return "similarity-jaccard(word-tokens(" + a + "), word-tokens(" + b +
           ")) >= " + FmtDouble(delta);
  };
  auto ed_pred = [&](const std::string& a, const std::string& b, int k) {
    return "edit-distance(" + a + ", " + b + ") <= " + std::to_string(k);
  };

  // 1. A selection (Jaccard or edit distance), returning whole records so
  //    the comparison is bit-exact on record content.
  if (query_rng.OneIn(2)) {
    double delta = PickJaccardDelta(query_rng);
    std::string v = SampleText(texts, "ba ri");
    c.queries.push_back(
        {"jaccard-select",
         "for $t in dataset D where " +
             jaccard_pred("$t." + text_field, "'" + v + "'", delta) +
             " return $t",
         /*is_join=*/false});
  } else {
    int k = PickEditK(query_rng);
    std::string v = SampleName(names, "maria");
    c.queries.push_back(
        {"ed-select",
         "for $t in dataset D where " +
             ed_pred("$t." + name_field, "'" + v + "'", k) + " return $t",
         /*is_join=*/false});
  }

  // 2. A self join (Jaccard or edit distance) over id-ordered pairs.
  if (query_rng.OneIn(2)) {
    double delta = PickJaccardDelta(query_rng);
    c.queries.push_back(
        {"jaccard-join",
         "for $o in dataset D for $i in dataset D where " +
             jaccard_pred("$o." + text_field, "$i." + text_field, delta) +
             " and $o.id < $i.id return {'o': $o.id, 'i': $i.id}",
         /*is_join=*/true});
  } else {
    int k = PickEditK(query_rng);
    c.queries.push_back(
        {"ed-join",
         "for $o in dataset D for $i in dataset D where " +
             ed_pred("$o." + name_field, "$i." + name_field, k) +
             " and $o.id < $i.id return {'o': $o.id, 'i': $i.id}",
         /*is_join=*/true});
  }

  // 3. Every third seed: a multi-way join (two similarity predicates in one
  //    join, as in paper Figure 25(b)), outer limited so the NL baseline
  //    stays cheap. The predicate order is randomized so either similarity
  //    condition can be the indexed one.
  if (seed % 3 == 0) {
    double delta = 0.1 * static_cast<double>(2 + query_rng.Uniform(6));
    int k = 1 + static_cast<int>(query_rng.Uniform(3));
    int64_t limit = 20 + static_cast<int64_t>(query_rng.Uniform(20));
    std::string jac =
        jaccard_pred("$o." + text_field, "$i." + text_field, delta);
    std::string ed = ed_pred("$o." + name_field, "$i." + name_field, k);
    std::string first = jac, second = ed;
    if (query_rng.OneIn(2)) std::swap(first, second);
    c.queries.push_back(
        {"multiway-join",
         "for $o in dataset D for $i in dataset D where $o.id < " +
             std::to_string(limit) + " and " + first + " and " + second +
             " and $o.id != $i.id return {'o': $o.id, 'i': $i.id}",
         /*is_join=*/true});
  }
  return c;
}

std::vector<adm::Value> MakeRecords(const FuzzCase& c, int count) {
  datagen::TextDatasetGenerator gen(c.profile, c.data_seed);
  std::vector<adm::Value> records;
  records.reserve(static_cast<size_t>(count));
  for (int64_t i = 0; i < count; ++i) records.push_back(gen.NextRecord(i));
  return records;
}

std::string DescribeFuzzCase(const FuzzCase& c) {
  std::string out = "seed=" + std::to_string(c.seed) + " profile=" +
                    c.profile.label + " vocab=" +
                    std::to_string(c.profile.vocab_size) + " records=" +
                    std::to_string(c.num_records) + " queries=[";
  for (size_t i = 0; i < c.queries.size(); ++i) {
    if (i > 0) out += ", ";
    out += c.queries[i].label;
  }
  out += "]";
  return out;
}

}  // namespace simdb::testing
