#include "testing/differential.h"

#include <algorithm>
#include <cctype>
#include <memory>
#include <utility>

#include "core/query_processor.h"
#include "serving/query_engine.h"
#include "storage/file_util.h"

namespace simdb::testing {

namespace {

using core::EngineOptions;
using core::QueryProcessor;
using core::QueryResult;

/// Applies a variant's optimizer flags and runtime algorithm to an engine.
void ApplyVariant(QueryProcessor& engine, const ExecVariant& v) {
  algebricks::OptContext& opt = engine.opt_context();
  opt.enable_index_select = v.enable_index_select;
  opt.enable_index_join = v.enable_index_join;
  opt.enable_three_stage_join = v.enable_three_stage_join;
  opt.enable_surrogate_join = v.enable_surrogate_join;
  engine.set_t_occurrence_algorithm(v.t_occurrence);
  engine.set_posting_cache_enabled(v.posting_cache);
  engine.set_batch_execution(v.batch_execution);
  engine.set_executor(v.executor);
  if (engine.transport_kind() != v.transport) engine.set_transport(v.transport);
}

/// Executes one query and returns its result set as a sorted vector of JSON
/// rows. Sorting normalizes partitioning/exchange order, which legitimately
/// differs across topologies and join strategies; the multiset of rows must
/// not.
Result<std::vector<std::string>> RunNormalized(QueryProcessor& engine,
                                               const std::string& aql) {
  QueryResult result;
  SIMDB_RETURN_IF_ERROR(engine.Execute(aql + ";", &result));
  std::vector<std::string> rows;
  rows.reserve(result.rows.size());
  for (const adm::Value& row : result.rows) rows.push_back(row.ToJson());
  std::sort(rows.begin(), rows.end());
  return rows;
}

/// Builds a fresh engine over `records` (prefix of the case's stream).
Result<std::unique_ptr<QueryProcessor>> BuildEngine(
    const FuzzCase& c, const hyracks::ClusterTopology& topology,
    const std::string& dir, int num_records) {
  storage::RemoveAllBestEffort(dir);
  EngineOptions options;
  options.data_dir = dir;
  options.topology = topology;
  options.num_threads = 2;
  // Every fuzz compilation doubles as a verifier workload: rule contracts,
  // logical-plan invariants, and task-graph well-formedness are checked on
  // each seed; violations surface as query failures with --replay repros.
  options.verify_plans = true;
  auto engine = std::make_unique<QueryProcessor>(options);
  SIMDB_RETURN_IF_ERROR(engine->Execute(c.ddl));
  for (adm::Value& record : MakeRecords(c, num_records)) {
    SIMDB_RETURN_IF_ERROR(engine->Insert("D", std::move(record)));
  }
  return engine;
}

std::string VariantAt(const ExecVariant& v,
                      const hyracks::ClusterTopology& topo) {
  return v.label + "@" + TopologyLabel(topo);
}

/// First row present in `a` but not `b` (both sorted), empty if none.
std::string FirstOnlyIn(const std::vector<std::string>& a,
                        const std::vector<std::string>& b) {
  std::vector<std::string> diff;
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(diff));
  return diff.empty() ? "" : diff.front();
}

struct Mismatch {
  const FuzzQuery* query = nullptr;
  ExecVariant baseline_variant, variant;
  hyracks::ClusterTopology baseline_topology, topology;
  std::vector<std::string> baseline_rows, rows;
};

/// Re-runs the two disagreeing configurations on ever-smaller prefixes of
/// the record stream; returns the smallest count that still reproduces the
/// mismatch (prefix-halving, then a linear refinement step back up).
int MinimizeRecords(const FuzzCase& c, const Mismatch& m,
                    const std::string& scratch, int full_count) {
  auto mismatches_at = [&](int count) -> bool {
    auto base = BuildEngine(c, m.baseline_topology, scratch + "/min_a", count);
    auto other = BuildEngine(c, m.topology, scratch + "/min_b", count);
    if (!base.ok() || !other.ok()) return false;
    ApplyVariant(**base, m.baseline_variant);
    ApplyVariant(**other, m.variant);
    auto rows_a = RunNormalized(**base, m.query->aql);
    auto rows_b = RunNormalized(**other, m.query->aql);
    if (!rows_a.ok() || !rows_b.ok()) return true;  // an error also repros
    return *rows_a != *rows_b;
  };
  int best = full_count;
  int probe = full_count / 2;
  while (probe >= 1) {
    if (mismatches_at(probe)) {
      best = probe;
      probe /= 2;
    } else {
      // The witness records sit in the upper half; step back up by quarters.
      int step = std::max(1, (best - probe) / 2);
      int refined = probe + step;
      if (refined >= best) break;
      if (mismatches_at(refined)) best = refined;
      break;
    }
  }
  storage::RemoveAllBestEffort(scratch + "/min_a");
  storage::RemoveAllBestEffort(scratch + "/min_b");
  return best;
}

/// Strips the digits from generated variable ids ($v<n>_x -> $v_x): they
/// come from a process-global fresh-name counter, so the same query compiled
/// twice names its variables differently while meaning the same plan.
std::string NormalizeVarIds(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (size_t i = 0; i < text.size(); ++i) {
    out.push_back(text[i]);
    if (text[i] == 'v' && i > 0 && text[i - 1] == '$') {
      while (i + 1 < text.size() &&
             std::isdigit(static_cast<unsigned char>(text[i + 1]))) {
        ++i;
      }
    }
  }
  return out;
}

std::string FormatMismatch(const FuzzCase& c, const Mismatch& m,
                           int minimized_records) {
  std::string out;
  out += "SIMDB_FUZZ_FAILURE " + DescribeFuzzCase(c) + "\n";
  out += "  query[" + m.query->label + "]: " + m.query->aql + "\n";
  out += "  " + VariantAt(m.baseline_variant, m.baseline_topology) + ": " +
         std::to_string(m.baseline_rows.size()) + " rows\n";
  out += "  " + VariantAt(m.variant, m.topology) + ": " +
         std::to_string(m.rows.size()) + " rows\n";
  std::string missing = FirstOnlyIn(m.baseline_rows, m.rows);
  std::string extra = FirstOnlyIn(m.rows, m.baseline_rows);
  if (!missing.empty()) out += "  first missing row: " + missing + "\n";
  if (!extra.empty()) out += "  first extra row:   " + extra + "\n";
  if (minimized_records > 0 && minimized_records < c.num_records) {
    out += "  minimized: mismatch reproduces with the first " +
           std::to_string(minimized_records) + " of " +
           std::to_string(c.num_records) + " records\n";
  }
  out += "  repro: fuzz_equivalence_test --replay " + std::to_string(c.seed);
  return out;
}

}  // namespace

std::vector<ExecVariant> PlanVariantMatrix() {
  std::vector<ExecVariant> variants;
  ExecVariant scan;
  scan.label = "scan";
  scan.enable_index_select = false;
  scan.enable_index_join = false;
  scan.enable_three_stage_join = false;
  scan.enable_surrogate_join = false;
  variants.push_back(scan);

  ExecVariant indexed;
  indexed.label = "indexed";
  variants.push_back(indexed);

  ExecVariant nosurr = indexed;
  nosurr.label = "indexed-nosurr";
  nosurr.enable_surrogate_join = false;
  variants.push_back(nosurr);

  ExecVariant threestage = indexed;
  threestage.label = "threestage";
  threestage.enable_index_join = false;
  variants.push_back(threestage);

  ExecVariant heapmerge = indexed;
  heapmerge.label = "indexed-heapmerge";
  heapmerge.t_occurrence = storage::TOccurrenceAlgorithm::kHeapMerge;
  variants.push_back(heapmerge);

  // The decoded posting-list cache must be invisible to results: run the
  // full indexed configuration again with the cache disabled. Because the
  // cached variants above warm the cache on the same engines, any stale-
  // cache bug shows up as a variant mismatch here.
  ExecVariant nocache = indexed;
  nocache.label = "indexed-nocache";
  nocache.posting_cache = false;
  variants.push_back(nocache);

  // The dataflow runtime must be invisible to results: run the full indexed
  // configuration once more on the legacy stage-sequential executor. Every
  // other variant (including the scan ground truth) runs on the task-graph
  // scheduler, so any scheduling, routing, or tuple-stealing bug shows up
  // as a variant mismatch here.
  ExecVariant stageseq = indexed;
  stageseq.label = "indexed-stageseq";
  stageseq.executor = hyracks::ExecutorKind::kStageSequential;
  variants.push_back(stageseq);
  return variants;
}

std::vector<ExecVariant> BatchVariantMatrix() {
  // Three plan shapes reach the batch-capable operators through different
  // operator mixes: indexed (inverted-index search + SELECT verify +
  // index-nested-loop join), scan (pure SELECT / NL-JOIN verification over
  // full scans), and threestage (ASSIGN similarity-jaccard + NL-JOIN).
  // Each shape runs with batch execution on and off; the pair must agree
  // bit-for-bit.
  std::vector<ExecVariant> variants;
  ExecVariant indexed;
  ExecVariant scan;
  scan.enable_index_select = false;
  scan.enable_index_join = false;
  scan.enable_three_stage_join = false;
  scan.enable_surrogate_join = false;
  ExecVariant threestage;
  threestage.enable_index_join = false;
  const std::pair<const char*, ExecVariant> shapes[] = {
      {"indexed", indexed}, {"scan", scan}, {"threestage", threestage}};
  for (const auto& [name, shape] : shapes) {
    ExecVariant batch = shape;
    batch.label = std::string(name) + "-batch";
    batch.batch_execution = true;
    variants.push_back(batch);
    ExecVariant tuple = shape;
    tuple.label = std::string(name) + "-nobatch";
    tuple.batch_execution = false;
    variants.push_back(tuple);
  }
  return variants;
}

std::vector<ExecVariant> TransportVariantMatrix() {
  // The fully-indexed shape reaches every exchange kind (hash repartition,
  // broadcast, gather, merge-gather). Each backend must agree bit-for-bit
  // with the modeled baseline; shared-memory additionally runs on the
  // stage-sequential executor, since both executors drive the same
  // BuildAndShipDestination seam.
  std::vector<ExecVariant> variants;
  const std::pair<const char*, transport::TransportKind> backends[] = {
      {"indexed-modeled", transport::TransportKind::kModeled},
      {"indexed-shm", transport::TransportKind::kSharedMemory},
      {"indexed-socket", transport::TransportKind::kSocket}};
  for (const auto& [name, kind] : backends) {
    ExecVariant v;
    v.label = name;
    v.transport = kind;
    variants.push_back(v);
  }
  ExecVariant stageseq;
  stageseq.label = "indexed-shm-stageseq";
  stageseq.transport = transport::TransportKind::kSharedMemory;
  stageseq.executor = hyracks::ExecutorKind::kStageSequential;
  variants.push_back(stageseq);
  return variants;
}

std::vector<hyracks::ClusterTopology> TopologyMatrix() {
  return {{1, 1}, {2, 2}, {4, 2}};
}

std::string TopologyLabel(const hyracks::ClusterTopology& t) {
  return std::to_string(t.num_nodes) + "x" +
         std::to_string(t.partitions_per_node);
}

DifferentialReport RunDifferential(const FuzzCase& c,
                                   const DifferentialOptions& options) {
  DifferentialReport report;
  auto fail = [&](std::string message) {
    report.ok = false;
    report.failure = std::move(message);
    return report;
  };
  if (options.variants.empty() || options.topologies.empty()) {
    return fail("empty variant or topology matrix");
  }

  // Baseline: first variant on the first topology.
  struct Baseline {
    std::vector<std::string> rows;
  };
  std::vector<Baseline> baselines(c.queries.size());

  bool first_combination = true;
  for (const hyracks::ClusterTopology& topo : options.topologies) {
    std::string dir = options.scratch_dir + "/topo_" + TopologyLabel(topo);
    Result<std::unique_ptr<QueryProcessor>> engine =
        BuildEngine(c, topo, dir, c.num_records);
    if (!engine.ok()) {
      return fail("SIMDB_FUZZ_FAILURE " + DescribeFuzzCase(c) +
                  "\n  engine build failed on " + TopologyLabel(topo) + ": " +
                  engine.status().ToString());
    }
    for (const ExecVariant& variant : options.variants) {
      ApplyVariant(**engine, variant);
      for (size_t qi = 0; qi < c.queries.size(); ++qi) {
        const FuzzQuery& query = c.queries[qi];
        Result<std::vector<std::string>> rows =
            RunNormalized(**engine, query.aql);
        if (!rows.ok()) {
          return fail("SIMDB_FUZZ_FAILURE " + DescribeFuzzCase(c) +
                      "\n  query[" + query.label + "]: " + query.aql +
                      "\n  " + VariantAt(variant, topo) +
                      " failed: " + rows.status().ToString() +
                      "\n  repro: fuzz_equivalence_test --replay " +
                      std::to_string(c.seed));
        }
        ++report.comparisons;
        if (first_combination && variant.label == options.variants[0].label) {
          baselines[qi].rows = std::move(*rows);
          continue;
        }
        if (*rows != baselines[qi].rows) {
          Mismatch m;
          m.query = &query;
          m.baseline_variant = options.variants[0];
          m.baseline_topology = options.topologies[0];
          m.variant = variant;
          m.topology = topo;
          m.baseline_rows = baselines[qi].rows;
          m.rows = std::move(*rows);
          int minimized =
              options.minimize
                  ? MinimizeRecords(c, m, options.scratch_dir, c.num_records)
                  : 0;
          return fail(FormatMismatch(c, m, minimized));
        }
      }
    }
    first_combination = false;
  }
  return report;
}

DifferentialReport RunConcurrentDifferential(
    const FuzzCase& c, const ConcurrentDifferentialOptions& options) {
  DifferentialReport report;
  auto fail = [&](std::string message) {
    report.ok = false;
    report.failure = std::move(message);
    return report;
  };
  auto describe = [&](const std::string& detail) {
    return "SIMDB_FUZZ_CONCURRENT_FAILURE " + DescribeFuzzCase(c) + "\n  " +
           detail + "\n  repro: fuzz_equivalence_test --replay " +
           std::to_string(c.seed);
  };

  storage::RemoveAllBestEffort(options.scratch_dir);
  EngineOptions engine_options;
  engine_options.data_dir = options.scratch_dir;
  engine_options.topology = options.topology;
  engine_options.num_threads = 2;
  engine_options.verify_plans = true;
  serving::ServingOptions serving_options;
  serving_options.max_concurrent = options.max_in_flight;
  // Queue everything up front so max_in_flight queries genuinely overlap;
  // the queue must never shed in this harness.
  serving_options.max_queue =
      c.queries.size() * static_cast<size_t>(options.repeats) + 8;
  serving::QueryEngine engine(engine_options, serving_options);

  Status setup = engine.processor().Execute(c.ddl);
  if (setup.ok()) {
    for (adm::Value& record : MakeRecords(c, c.num_records)) {
      setup = engine.processor().Insert("D", std::move(record));
      if (!setup.ok()) break;
    }
  }
  if (!setup.ok()) {
    storage::RemoveAllBestEffort(options.scratch_dir);
    return fail(describe("engine build failed: " + setup.ToString()));
  }

  // Sequential expectations through the exclusive single-query path, on the
  // same engine configuration the concurrent path will use.
  struct Expected {
    bool ok = false;
    std::vector<std::string> rows;
    std::string error;
  };
  std::vector<Expected> expected(c.queries.size());
  for (size_t qi = 0; qi < c.queries.size(); ++qi) {
    Result<std::vector<std::string>> rows =
        RunNormalized(engine.processor(), c.queries[qi].aql);
    if (rows.ok()) {
      expected[qi].ok = true;
      expected[qi].rows = std::move(*rows);
    } else {
      expected[qi].error = NormalizeVarIds(rows.status().ToString());
    }
  }

  // Submit every (query x repeat) before awaiting anything.
  std::vector<std::pair<size_t, std::shared_ptr<serving::QueryTicket>>>
      tickets;
  tickets.reserve(c.queries.size() * static_cast<size_t>(options.repeats));
  for (int rep = 0; rep < options.repeats; ++rep) {
    for (size_t qi = 0; qi < c.queries.size(); ++qi) {
      Result<std::shared_ptr<serving::QueryTicket>> ticket =
          engine.Submit(c.queries[qi].aql + ";");
      if (!ticket.ok()) {
        engine.Shutdown();
        storage::RemoveAllBestEffort(options.scratch_dir);
        return fail(describe("query[" + c.queries[qi].label +
                             "] refused at submit: " +
                             ticket.status().ToString()));
      }
      tickets.emplace_back(qi, std::move(ticket).value());
    }
  }

  for (const auto& [qi, ticket] : tickets) {
    const FuzzQuery& query = c.queries[qi];
    const Status& status = ticket->Wait();
    ++report.comparisons;
    if (expected[qi].ok) {
      if (!status.ok()) {
        engine.Shutdown();
        storage::RemoveAllBestEffort(options.scratch_dir);
        return fail(describe(
            "query[" + query.label + "]: " + query.aql +
            "\n  concurrent run failed where the sequential run succeeded: " +
            status.ToString()));
      }
      std::vector<std::string> rows;
      rows.reserve(ticket->result().rows.size());
      for (const adm::Value& row : ticket->result().rows) {
        rows.push_back(row.ToJson());
      }
      std::sort(rows.begin(), rows.end());
      if (rows != expected[qi].rows) {
        std::string detail =
            "query[" + query.label + "]: " + query.aql + "\n  sequential: " +
            std::to_string(expected[qi].rows.size()) +
            " rows, concurrent: " + std::to_string(rows.size()) + " rows";
        std::string missing = FirstOnlyIn(expected[qi].rows, rows);
        std::string extra = FirstOnlyIn(rows, expected[qi].rows);
        if (!missing.empty()) detail += "\n  first missing row: " + missing;
        if (!extra.empty()) detail += "\n  first extra row:   " + extra;
        engine.Shutdown();
        storage::RemoveAllBestEffort(options.scratch_dir);
        return fail(describe(detail));
      }
    } else {
      std::string error = NormalizeVarIds(status.ToString());
      if (status.ok() || error != expected[qi].error) {
        engine.Shutdown();
        storage::RemoveAllBestEffort(options.scratch_dir);
        return fail(describe(
            "query[" + query.label + "]: " + query.aql +
            "\n  sequential error: " + expected[qi].error +
            "\n  concurrent outcome: " +
            (status.ok() ? "success" : error)));
      }
    }
  }

  engine.Shutdown();
  storage::RemoveAllBestEffort(options.scratch_dir);
  return report;
}

}  // namespace simdb::testing
