#ifndef SIMDB_TESTING_DIFFERENTIAL_H_
#define SIMDB_TESTING_DIFFERENTIAL_H_

#include <string>
#include <vector>

#include "hyracks/exec.h"
#include "storage/inverted_index.h"
#include "testing/fuzz.h"
#include "transport/transport.h"

namespace simdb::testing {

/// One plan-variant configuration: which optimizer rewrites are allowed and
/// which T-occurrence algorithm the runtime uses. Every variant must return
/// the same answer for every query — that is the paper's semantics-
/// preservation claim this harness checks.
struct ExecVariant {
  std::string label;
  bool enable_index_select = true;
  bool enable_index_join = true;
  bool enable_three_stage_join = true;
  bool enable_surrogate_join = true;
  storage::TOccurrenceAlgorithm t_occurrence =
      storage::TOccurrenceAlgorithm::kScanCount;
  /// Serve inverted-index probes from the decoded posting-list cache.
  bool posting_cache = true;
  /// Columnar/SIMD batch execution in the hot similarity operators. Batch
  /// and tuple execution must be answer-identical on every query.
  bool batch_execution = true;
  /// Dataflow runtime executing the job (task-graph scheduler vs legacy
  /// stage-sequential). Both must be answer-identical on every query.
  hyracks::ExecutorKind executor = hyracks::ExecutorKind::kScheduler;
  /// Exchange transport backend (modeled / shared-memory / socket). All
  /// backends must be answer- and error-identical on every query: the rows
  /// round-trip losslessly through the wire frame, so shipping is an
  /// identity on the result.
  transport::TransportKind transport = transport::TransportKind::kModeled;
};

/// The default plan-variant matrix:
///   scan              - every similarity rewrite disabled (ground truth:
///                       full scans and NL joins)
///   indexed           - all rewrites on (index select / index-nested-loop
///                       join with surrogates / three-stage fallback)
///   indexed-nosurr    - index join without the surrogate optimization
///   threestage        - index joins off; Jaccard joins go three-stage
///   indexed-heapmerge - all rewrites on, heap-merge T-occurrence
///   indexed-nocache   - all rewrites on, posting-list cache disabled
///   indexed-stageseq  - all rewrites on, legacy stage-sequential executor
///                       (cross-checks the task-graph scheduler)
std::vector<ExecVariant> PlanVariantMatrix();

/// The batch-execution differential matrix: the three plan shapes that
/// exercise the batch-capable operators (index select/join, scan + verify,
/// three-stage join), each run with batch execution on and off. The on/off
/// pair must be bit-identical per plan shape.
std::vector<ExecVariant> BatchVariantMatrix();

/// The transport differential matrix: the fully-indexed plan shape run under
/// every transport backend (modeled / shared-memory / socket) on the
/// task-graph scheduler, plus shared-memory on the stage-sequential executor
/// (both executors drive the same BuildAndShipDestination seam). All
/// variants must be bit-identical per query — results and errors.
std::vector<ExecVariant> TransportVariantMatrix();

/// Cluster shapes the matrix runs under: 1x1, 2x2, 4x2
/// (nodes x partitions-per-node).
std::vector<hyracks::ClusterTopology> TopologyMatrix();

std::string TopologyLabel(const hyracks::ClusterTopology& t);

struct DifferentialOptions {
  /// Scratch directory for engine data (one subdirectory per topology);
  /// created and reused, removed by the caller.
  std::string scratch_dir = "/tmp/simdb_fuzz";
  std::vector<ExecVariant> variants = PlanVariantMatrix();
  std::vector<hyracks::ClusterTopology> topologies = TopologyMatrix();
  /// Shrink the dataset to a minimal reproducing prefix on mismatch.
  bool minimize = true;
};

struct DifferentialReport {
  bool ok = true;
  /// Number of (query, variant, topology) executions compared.
  int comparisons = 0;
  /// Diagnostic on failure: seed, query, disagreeing variants, row diff,
  /// minimized record count, and a one-command repro line.
  std::string failure;
};

/// Runs every query of `c` under every (variant x topology) combination and
/// compares order-normalized result sets against the first combination.
/// Reports the first mismatch (with minimization) or ok.
DifferentialReport RunDifferential(const FuzzCase& c,
                                   const DifferentialOptions& options = {});

struct ConcurrentDifferentialOptions {
  std::string scratch_dir = "/tmp/simdb_fuzz_concurrent";
  hyracks::ClusterTopology topology = {2, 2};
  /// Serving-engine concurrency: how many queries execute at once.
  int max_in_flight = 4;
  /// How many times each query of the case is submitted concurrently.
  int repeats = 2;
};

/// Differential check for the concurrent serving path: every query of `c` is
/// first executed on the exclusive single-query path (the expectation), then
/// submitted `repeats` times through a serving::QueryEngine with
/// `max_in_flight` queries executing at once. Every concurrent execution
/// must be bit-identical to its sequential run — same sorted result rows on
/// success, and the same error (normalized for generated variable ids) on
/// failure, no matter how executions interleave.
DifferentialReport RunConcurrentDifferential(
    const FuzzCase& c, const ConcurrentDifferentialOptions& options = {});

}  // namespace simdb::testing

#endif  // SIMDB_TESTING_DIFFERENTIAL_H_
