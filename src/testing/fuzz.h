#ifndef SIMDB_TESTING_FUZZ_H_
#define SIMDB_TESTING_FUZZ_H_

#include <cstdint>
#include <string>
#include <vector>

#include "adm/value.h"
#include "datagen/textgen.h"

namespace simdb::testing {

/// One randomly generated similarity query over the fuzz dataset "D". The
/// query is a plain FLWOR returning rows (records of ids for joins, whole
/// records for selections) so the differential runner can compare full
/// order-normalized result sets, not just counts.
struct FuzzQuery {
  std::string label;  // "jaccard-select", "ed-join", "multiway-join", ...
  std::string aql;    // the query text (no trailing ';')
  bool is_join = false;
};

/// A complete differential test case derived from one uint64_t seed: a text
/// dataset profile, a record count, DDL (dataset + keyword/ngram indexes),
/// and a handful of queries mixing Jaccard and edit-distance selections,
/// self joins, and multi-way (two-similarity-predicate) joins. Thresholds
/// include the corner cases delta in {0, 1} and k in {0, large} so the
/// T-occurrence corner paths (T <= 0) are exercised.
struct FuzzCase {
  uint64_t seed = 0;
  datagen::TextProfile profile;
  uint64_t data_seed = 0;  // forked from `seed`; logged for reproduction
  int num_records = 0;
  std::string ddl;
  std::vector<FuzzQuery> queries;
};

/// Deterministically expands `seed` into a FuzzCase. Same seed, same case —
/// across runs, platforms, and library-internal refactors that do not touch
/// the generator itself.
FuzzCase MakeFuzzCase(uint64_t seed);

/// Regenerates the case's records. Record streams are prefix-stable: the
/// first `count` records are identical for any two calls with the same case,
/// which is what lets the failure minimizer shrink the dataset by prefix.
std::vector<adm::Value> MakeRecords(const FuzzCase& c, int count);

/// Human-readable one-line description (for failure reports).
std::string DescribeFuzzCase(const FuzzCase& c);

}  // namespace simdb::testing

#endif  // SIMDB_TESTING_FUZZ_H_
