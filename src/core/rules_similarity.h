#ifndef SIMDB_CORE_RULES_SIMILARITY_H_
#define SIMDB_CORE_RULES_SIMILARITY_H_

#include <memory>

#include "algebricks/rules.h"

namespace simdb::core {

/// Resolves the `~=` similarity operator (parsed as a "sim-eq" call) into the
/// session's similarity function + threshold comparison (paper Section 3.2):
///   simfunction 'jaccard'       -> similarity-jaccard(a, b) >= delta
///   simfunction 'edit-distance' -> edit-distance(a, b) <= k
std::shared_ptr<algebricks::RewriteRule> MakeSimilaritySugarRule();

/// Rewrites SELECT-over-DATA-SCAN with an indexable similarity condition on a
/// constant into the secondary-to-primary index plan of paper Figure 7:
///   INDEX-SEARCH -> LOCAL-SORT(pk) -> PRIMARY-LOOKUP -> SELECT(verify).
/// Detects the edit-distance corner case (T <= 0) at compile time and leaves
/// the scan plan in place (paper Section 5.1.1).
std::shared_ptr<algebricks::RewriteRule> MakeIndexSelectRule();

/// Rewrites a JOIN whose inner branch is a DATA-SCAN with a compatible index
/// into the index-nested-loop plan of paper Figures 10/14/19, including the
/// runtime corner-case split (replicate -> T>0 / T<=0 -> union) and the
/// surrogate optimization (project the outer to (surrogate, key), resolve
/// surrogates with a top-level equi join).
std::shared_ptr<algebricks::RewriteRule> MakeIndexJoinRule();

/// Final pass: rewrites verification predicates into their early-terminating
/// check variants (similarity-jaccard-check / edit-distance-check), which
/// apply length filters and abort early (paper Section 3.2's "variations of
/// similarity functions ... that can do early termination").
std::shared_ptr<algebricks::RewriteRule> MakeUseCheckVariantRule();

}  // namespace simdb::core

#endif  // SIMDB_CORE_RULES_SIMILARITY_H_
