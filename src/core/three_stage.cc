#include "core/three_stage.h"

#include <set>

#include "aql/parser.h"
#include "aql/translator.h"
#include "common/stopwatch.h"
#include "core/sim_predicate.h"

namespace simdb::core {

using algebricks::LExpr;
using algebricks::LExprPtr;
using algebricks::LOp;
using algebricks::LOpKind;
using algebricks::LOpPtr;
using algebricks::OptContext;
using algebricks::RewriteRule;
using algebricks::RuleContract;

namespace {

/// Replaces every occurrence of `from` in `text` with `to`.
std::string ReplaceAll(std::string text, const std::string& from,
                       const std::string& to) {
  size_t pos = 0;
  while ((pos = text.find(from, pos)) != std::string::npos) {
    text.replace(pos, from.size(), to);
    pos += to.size();
  }
  return text;
}

const LOp* FindScanOfVar(const LOpPtr& plan, const std::string& var) {
  if (plan == nullptr) return nullptr;
  if (plan->kind == LOpKind::kDataScan && plan->out_var == var) {
    return plan.get();
  }
  for (const LOpPtr& input : plan->inputs) {
    const LOp* found = FindScanOfVar(input, var);
    if (found != nullptr) return found;
  }
  return nullptr;
}

/// Per-side information needed by the template.
struct SideInfo {
  LOpPtr plan;
  std::string record_var;  // bound by `for $x in ##SIDE`
  LExprPtr tokens;         // occurrence-deduped token expression
  LExprPtr pk;             // primary-key expression
  std::string dataset;     // base dataset of the key's scan (for self detect)
};

/// Resolves one join side: the key expression must be rooted in exactly one
/// variable that a DATA-SCAN in this side binds, so the primary key is
/// available for rid-pair generation and the stage-3 joins.
Result<SideInfo> ResolveSide(OptContext& ctx, const LOpPtr& side,
                             const LExprPtr& key_arg) {
  std::set<std::string> key_vars;
  key_arg->CollectVars(&key_vars);
  if (key_vars.size() != 1) {
    return Status::Unsupported("three-stage join needs a single-record key");
  }
  const LOp* scan = FindScanOfVar(side, *key_vars.begin());
  if (scan == nullptr) {
    return Status::Unsupported("three-stage join key is not scan-rooted");
  }
  storage::Dataset* ds =
      ctx.catalog != nullptr ? ctx.catalog->Find(scan->dataset) : nullptr;
  if (ds == nullptr) return Status::Unsupported("unknown dataset");
  SideInfo info;
  info.plan = side;
  info.record_var = scan->out_var;
  info.tokens = LExpr::CallF("dedup-occurrences", {key_arg});
  info.pk = LExpr::Field(LExpr::Var(scan->out_var), ds->spec().pk_field);
  info.dataset = scan->dataset;
  return info;
}

}  // namespace

std::string ThreeStageTemplateText(double delta, bool self_like) {
  // Stage 1 (token ordering), stage 2 (rid-pair generation via prefix
  // filtering), stage 3 (record join) — expressed in AQL+ (cf. Figure 17).
  std::string order_source = self_like
                                 ? "(for $l1 in ##LEFT1 "
                                   "for $t1 in $$LTOKENS1 return $t1)"
                                 : "union((for $l1 in ##LEFT1 "
                                   "for $t1 in $$LTOKENS1 return $t1), "
                                   "(for $r1 in ##RIGHT1 "
                                   "for $t2 in $$RTOKENS1 return $t2))";
  std::string text = R"AQL(
let $rankedTokens := (
  for $tok in @ORDER_SOURCE@
  /*+ hash */
  group by $tokenGrouped := $tok with $tok
  order by count($tok), $tokenGrouped
  return $tokenGrouped
)
let $leftRanks := (
  for $l2 in ##LEFT2
  for $tu in $$LTOKENS2
  for $rt at $i in $rankedTokens
  where $tu = /*+ bcast */ $rt
  group by $lid := $$LPK2 with $i
  return { 'id': $lid, 'ranks': sort-list($i) }
)
let $rightRanks := (
  for $r2 in ##RIGHT2
  for $tu2 in $$RTOKENS2
  for $rt2 at $i2 in $rankedTokens
  where $tu2 = /*+ bcast */ $rt2
  group by $rid := $$RPK2 with $i2
  return { 'id': $rid, 'ranks': sort-list($i2) }
)
let $leftPrefix := (
  for $lr in $leftRanks
  for $pt in subset-collection($lr.ranks, 0,
                               prefix-len-jaccard(len($lr.ranks), @DELTA@))
  return { 'id': $lr.id, 'ranks': $lr.ranks, 'pt': $pt }
)
let $rightPrefix := (
  for $rr in $rightRanks
  for $pt2 in subset-collection($rr.ranks, 0,
                                prefix-len-jaccard(len($rr.ranks), @DELTA@))
  return { 'id': $rr.id, 'ranks': $rr.ranks, 'pt': $pt2 }
)
let $ridpairs := (
  for $lp in $leftPrefix
  for $rp in $rightPrefix
  where $lp.pt = $rp.pt
  /* ranks are integer positions in $rankedTokens, so this verify runs on
     the int64 Jaccard kernel, not the generic Value comparator */
  let $sim := similarity-jaccard($lp.ranks, $rp.ranks)
  where $sim >= @DELTA@
  group by $glid := $lp.id, $grid := $rp.id with $sim
  return { 'lid': $glid, 'rid': $grid }
)
for $pair in $ridpairs
for $l3 in ##LEFT3
where $pair.lid = $$LPK3
for $r3 in ##RIGHT3
where $pair.rid = $$RPK3
return true
)AQL";
  text = ReplaceAll(text, "@ORDER_SOURCE@", order_source);
  text = ReplaceAll(text, "@DELTA@", std::to_string(delta));
  return text;
}

namespace {

class ThreeStageJoinRule : public RewriteRule {
 public:
  std::string name() const override { return "three-stage-similarity-join"; }

  RuleContract contract() const override {
    RuleContract c;
    c.needs_catalog = true;
    // The instantiated AQL+ template is a full translated subplan: it may
    // contain any relational operator the translator emits.
    c.may_introduce = {LOpKind::kDataScan, LOpKind::kSelect,
                       LOpKind::kAssign,   LOpKind::kJoin,
                       LOpKind::kGroupBy,  LOpKind::kOrderBy,
                       LOpKind::kUnnest,   LOpKind::kProject,
                       LOpKind::kLimit,    LOpKind::kRank,
                       LOpKind::kUnionAll, LOpKind::kConstantTuple};
    return c;
  }

  Result<bool> Apply(LOpPtr& op, OptContext& ctx) override {
    if (!ctx.enable_three_stage_join) return false;
    if (op->kind != LOpKind::kJoin) return false;
    const LOpPtr& left = op->inputs[0];
    const LOpPtr& right = op->inputs[1];
    SIMDB_ASSIGN_OR_RETURN(std::vector<std::string> lv, left->OutputVars());
    SIMDB_ASSIGN_OR_RETURN(std::vector<std::string> rv, right->OutputVars());
    std::set<std::string> left_vars(lv.begin(), lv.end());
    std::set<std::string> right_vars(rv.begin(), rv.end());

    std::vector<LExprPtr> conjuncts = algebricks::SplitConjuncts(op->expr);
    for (size_t ci = 0; ci < conjuncts.size(); ++ci) {
      std::optional<SimPredicate> pred = MatchSimilarityConjunct(conjuncts[ci]);
      if (!pred.has_value() || pred->fn != SimPredicate::Fn::kJaccard) {
        continue;
      }
      // The rid-pair stage only finds pairs sharing a prefix token, which is
      // incomplete for delta <= 0 (token-disjoint pairs qualify too). Leave
      // such joins to the NL plan.
      if (pred->threshold <= 0) continue;
      // Orient the operands: one must cover the left side, one the right.
      LExprPtr left_key = pred->arg0, right_key = pred->arg1;
      if (!(left_key->UsesOnly(left_vars) && right_key->UsesOnly(right_vars))) {
        std::swap(left_key, right_key);
        if (!(left_key->UsesOnly(left_vars) &&
              right_key->UsesOnly(right_vars))) {
          continue;
        }
      }
      Result<SideInfo> left_info = ResolveSide(ctx, left, left_key);
      Result<SideInfo> right_info = ResolveSide(ctx, right, right_key);
      if (!left_info.ok() || !right_info.ok()) continue;

      std::vector<LExprPtr> remaining;
      for (size_t i = 0; i < conjuncts.size(); ++i) {
        if (i != ci) remaining.push_back(conjuncts[i]);
      }
      // jaccard > d (strict) is verified again on top since the template
      // tests >= d.
      if (pred->original->name == "gt") remaining.push_back(pred->original);

      SIMDB_ASSIGN_OR_RETURN(
          LOpPtr rewritten,
          Instantiate(ctx, *left_info, *right_info, pred->threshold,
                      std::move(remaining), lv, rv));
      op = rewritten;
      return true;
    }
    return false;
  }

 private:
  /// Runs the AQL+ two-step rewrite: substitute placeholders, parse the
  /// template, bind meta-clauses/meta-variables, translate, splice.
  Result<LOpPtr> Instantiate(OptContext& ctx, const SideInfo& left,
                             const SideInfo& right, double delta,
                             std::vector<LExprPtr> remaining,
                             const std::vector<std::string>& left_out,
                             const std::vector<std::string>& right_out) {
    Stopwatch sw;
    // The single-sided token order is only sound when both sides are the
    // same unfiltered scan (the paper's self-join, Figure 11); any filter or
    // subplan difference requires ranking over the union of both sides.
    bool self_like = left.dataset == right.dataset &&
                     left.plan->kind == LOpKind::kDataScan &&
                     right.plan->kind == LOpKind::kDataScan;
    std::string text = ThreeStageTemplateText(delta, self_like);
    SIMDB_ASSIGN_OR_RETURN(aql::AExprPtr ast, aql::ParseExpression(text));

    aql::MetaBindings bindings;
    auto bind_side = [&](const std::string& prefix, const SideInfo& side) {
      // Without subplan reuse each stage gets an independent deep copy
      // (ablation of Figure 20's materialize/reuse).
      for (int stage = 1; stage <= 3; ++stage) {
        LOpPtr plan = ctx.enable_subplan_reuse ? side.plan
                                               : algebricks::CloneTree(side.plan);
        bindings.clauses[prefix + std::to_string(stage)] = {plan,
                                                            side.record_var};
      }
    };
    bind_side("LEFT", left);
    bind_side("RIGHT", right);
    for (int stage = 1; stage <= 3; ++stage) {
      std::string s = std::to_string(stage);
      bindings.vars["LTOKENS" + s] = left.tokens;
      bindings.vars["RTOKENS" + s] = right.tokens;
      bindings.vars["LPK" + s] = left.pk;
      bindings.vars["RPK" + s] = right.pk;
    }

    aql::Translator translator(std::move(bindings));
    SIMDB_ASSIGN_OR_RETURN(aql::TranslationResult tr,
                           translator.TranslateQuery(ast));
    // Strip the template's `return true` (Project over Assign) to expose the
    // full stage-3 variable space, then restore the original join's output.
    if (tr.plan->kind != LOpKind::kProject ||
        tr.plan->inputs[0]->kind != LOpKind::kAssign) {
      return Status::Internal("unexpected template plan shape");
    }
    LOpPtr plan = tr.plan->inputs[0]->inputs[0];
    if (!remaining.empty()) {
      plan = algebricks::MakeSelect(plan,
                                    algebricks::CombineConjuncts(remaining));
    }
    std::vector<std::string> out_vars = left_out;
    out_vars.insert(out_vars.end(), right_out.begin(), right_out.end());
    plan = algebricks::MakeProject(plan, out_vars);
    ctx.aqlplus_seconds += sw.ElapsedSeconds();
    return plan;
  }
};

}  // namespace

std::shared_ptr<RewriteRule> MakeThreeStageJoinRule() {
  return std::make_shared<ThreeStageJoinRule>();
}

}  // namespace simdb::core
