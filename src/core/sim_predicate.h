#ifndef SIMDB_CORE_SIM_PREDICATE_H_
#define SIMDB_CORE_SIM_PREDICATE_H_

#include <optional>
#include <set>
#include <string>

#include "algebricks/lexpr.h"
#include "hyracks/ops_index.h"
#include "similarity/index_compat.h"

namespace simdb::core {

/// A recognized similarity conjunct within a SELECT or JOIN condition.
struct SimPredicate {
  enum class Fn { kJaccard, kEditDistance, kContains };
  Fn fn = Fn::kJaccard;
  /// Operands of the similarity function in source order.
  algebricks::LExprPtr arg0;
  algebricks::LExprPtr arg1;
  /// Normalized threshold: Jaccard delta (match when sim >= delta) or edit
  /// distance k (match when dist <= k). `contains` has no threshold.
  double threshold = 0;
  /// The original conjunct (used for verification SELECTs).
  algebricks::LExprPtr original;
};

/// Recognizes similarity conjuncts of the forms
///   similarity-jaccard(a, b) >= d    (also > d, and flipped literal-first)
///   edit-distance(a, b) <= k         (also < k+1, flipped)
///   contains(a, b)
/// Returns nullopt for anything else.
std::optional<SimPredicate> MatchSimilarityConjunct(
    const algebricks::LExprPtr& conjunct);

/// If `expr` is a (possibly word-tokens-wrapped) access to a field of the
/// record variable `record_var`, returns the field name. Handles:
///   $v.field
///   word-tokens($v.field)
///   gram-tokens($v.field, n [, pad])
std::optional<std::string> ExtractFieldRef(const algebricks::LExprPtr& expr,
                                           const std::string& record_var);

/// The index kind able to serve a given similarity function (Figure 13).
similarity::IndexKind CompatibleIndexKind(SimPredicate::Fn fn);

/// The execution-time search spec corresponding to a predicate.
hyracks::SimSearchSpec ToSearchSpec(const SimPredicate& pred);

}  // namespace simdb::core

#endif  // SIMDB_CORE_SIM_PREDICATE_H_
