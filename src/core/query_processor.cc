#include "core/query_processor.h"

#include <cctype>
#include <functional>
#include <mutex>
#include <unordered_set>

#include "analysis/dag_verifier.h"
#include "analysis/plan_verifier.h"
#include "analysis/rule_contract.h"
#include "common/stopwatch.h"
#include "core/rules_similarity.h"
#include "core/three_stage.h"
#include "hyracks/functions.h"
#include "observability/metrics.h"
#include "storage/file_util.h"

namespace simdb::core {

using algebricks::LOpPtr;
using algebricks::RuleSet;

namespace {

bool IsExchangeName(const std::string& name) {
  return name == "HASH-EXCHANGE" || name == "BROADCAST-EXCHANGE" ||
         name == "GATHER" || name == "MERGE-GATHER";
}

/// Rolls one query's profile into the process-wide registry so bench
/// binaries and the fuzz harness can snapshot cumulative figures.
void RollupMetrics(const obs::QueryProfile& profile) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  reg.GetCounter("query.profiled_count")->Increment();
  reg.GetHistogram("query.exec_micros")
      ->Observe(static_cast<uint64_t>(profile.wall_seconds * 1e6));
  for (const obs::OperatorProfile& op : profile.operators) {
    for (const auto& [name, value] : op.counters) {
      reg.GetCounter(name)->Add(value);
    }
    if (IsExchangeName(op.name)) {
      reg.GetCounter("exchange." + op.name + ".local_bytes")
          ->Add(op.local_bytes);
      reg.GetCounter("exchange." + op.name + ".remote_bytes")
          ->Add(op.remote_bytes);
      reg.GetCounter("exchange." + op.name + ".remote_transfers")
          ->Add(op.remote_transfers);
    }
  }
}

/// Pre-execution admission estimate: bytes the optimized plan's dataset
/// scans will produce (records x kAdmissionBytesPerRecord). Shared subplans
/// are counted once — they are materialized once. Deliberately coarse: its
/// only job is to refuse obviously hopeless queries before any task runs.
int64_t EstimateScanBytes(const algebricks::LOpPtr& root,
                          storage::Catalog* catalog) {
  std::unordered_set<const algebricks::LOp*> seen;
  int64_t bytes = 0;
  std::function<void(const algebricks::LOpPtr&)> walk =
      [&](const algebricks::LOpPtr& op) {
        if (op == nullptr || !seen.insert(op.get()).second) return;
        if (op->kind == algebricks::LOpKind::kDataScan) {
          storage::Dataset* ds = catalog->Find(op->dataset);
          if (ds != nullptr) {
            bytes +=
                ds->record_count() * QueryProcessor::kAdmissionBytesPerRecord;
          }
        }
        for (const algebricks::LOpPtr& in : op->inputs) walk(in);
      };
  walk(root);
  return bytes;
}

}  // namespace

QueryProcessor::QueryProcessor(EngineOptions options)
    : options_(std::move(options)),
      catalog_(options_.data_dir, options_.lsm),
      pool_(std::make_unique<ThreadPool>(options_.num_threads)) {
  // The environment override (SIMDB_TRANSPORT) lets CI rerun the entire
  // suite on a real backend without touching any test code.
  options_.transport = transport::KindFromEnv(options_.transport);
  transport_ =
      transport::MakeTransport(options_.transport, options_.topology.num_nodes);
  opt_.catalog = &catalog_;
  if (options_.verify_plans) {
    check_hook_ = std::make_unique<analysis::RuleContractChecker>(&catalog_);
    opt_.check_hook = check_hook_.get();
  }
}

Result<storage::Dataset*> QueryProcessor::CreateDataset(
    const std::string& name, const std::string& pk_field) {
  WriterLock lock(state_mu_);
  storage::DatasetSpec spec;
  spec.name = name;
  spec.pk_field = pk_field;
  spec.num_partitions = options_.topology.total_partitions();
  return catalog_.CreateDataset(std::move(spec));
}

Status QueryProcessor::Insert(const std::string& dataset, adm::Value record) {
  WriterLock lock(state_mu_);
  storage::Dataset* ds = catalog_.Find(dataset);
  if (ds == nullptr) return Status::NotFound("dataset " + dataset);
  SIMDB_ASSIGN_OR_RETURN(int64_t pk, ds->Insert(std::move(record)));
  (void)pk;
  return Status::OK();
}

void QueryProcessor::RegisterSimilarityUdf(similarity::SimilarityFunction fn) {
  // Make it callable by name in queries...
  hyracks::FunctionDef def;
  def.name = fn.name;
  def.min_args = 2;
  def.max_args = 2;
  auto eval = fn.eval;
  def.fn = [eval](const std::vector<adm::Value>& args) {
    return eval(args[0], args[1]);
  };
  hyracks::FunctionRegistry::Global().Register(std::move(def));
  // ...and resolvable as a `set simfunction` alias for `~=`.
  similarity::SimilarityFunctionRegistry::Global().Register(std::move(fn));
}

Status QueryProcessor::OptimizePlan(LOpPtr& plan,
                                    algebricks::OptContext& opt) {
  RuleSet normalize;
  normalize.name = "normalize";
  normalize.rules = {
      algebricks::MakeRemoveTrivialSelectRule(),
      MakeSimilaritySugarRule(),
      algebricks::MakePushSelectIntoJoinRule(),
      algebricks::MakePushSelectBelowJoinRule(),
  };
  RuleSet similarity_set;
  similarity_set.name = "similarity";
  similarity_set.rules = {
      MakeIndexSelectRule(),
      MakeIndexJoinRule(),
      MakeThreeStageJoinRule(),
  };
  // Paper Section 5.3: normalize, apply the similarity rule set (which may
  // regenerate whole subplans through AQL+), then let the newly generated
  // plan go through the earlier rules again, and finally specialize
  // aggregates.
  RuleSet finalize;
  finalize.name = "finalize";
  finalize.rules = {MakeUseCheckVariantRule()};
  finalize.max_iterations = 1;
  SIMDB_RETURN_IF_ERROR(ApplyRuleSet(plan, normalize, opt).status());
  SIMDB_RETURN_IF_ERROR(ApplyRuleSet(plan, similarity_set, opt).status());
  SIMDB_RETURN_IF_ERROR(ApplyRuleSet(plan, normalize, opt).status());
  SIMDB_RETURN_IF_ERROR(ApplyCountListifyRewrite(plan, opt).status());
  SIMDB_RETURN_IF_ERROR(ApplyRuleSet(plan, finalize, opt).status());
  return Status::OK();
}

Status QueryProcessor::RunQuery(const aql::AExprPtr& query,
                                QueryResult* result,
                                algebricks::OptContext& opt,
                                const QueryGovernor* gov) {
  CompileStats compile;
  Stopwatch total;

  Stopwatch phase;
  aql::Translator translator({}, &functions_);
  SIMDB_ASSIGN_OR_RETURN(aql::TranslationResult tr,
                         translator.TranslateQuery(query));
  compile.translate_seconds = phase.ElapsedSeconds();
  if (options_.verify_plans) {
    SIMDB_RETURN_IF_ERROR(analysis::PlanVerifier::Verify(tr.plan, &catalog_));
  }

  phase.Restart();
  double aqlplus_before = opt.aqlplus_seconds;
  size_t fired_before = opt.fired_rules.size();
  SIMDB_RETURN_IF_ERROR(OptimizePlan(tr.plan, opt));
  compile.optimize_seconds = phase.ElapsedSeconds();
  compile.aqlplus_seconds = opt.aqlplus_seconds - aqlplus_before;
  if (options_.verify_plans) {
    SIMDB_RETURN_IF_ERROR(analysis::PlanVerifier::Verify(tr.plan, &catalog_));
  }

  // Admission control: refuse a query whose scanned input alone cannot fit
  // the memory quota, before generating or running any task.
  if (gov != nullptr && gov->budget != nullptr &&
      gov->budget->max_memory_bytes() > 0) {
    int64_t est = EstimateScanBytes(tr.plan, &catalog_);
    if (est > gov->budget->max_memory_bytes()) {
      return Status::ResourceExhausted(
          "admission: estimated " + std::to_string(est) +
          " bytes of scanned input exceeds the " +
          std::to_string(gov->budget->max_memory_bytes()) +
          "-byte memory quota");
    }
  }

  phase.Restart();
  hyracks::Job job;
  algebricks::JobGenerator jobgen;
  SIMDB_RETURN_IF_ERROR(jobgen.Generate(tr.plan, &job));
  compile.jobgen_seconds = phase.ElapsedSeconds();
  if (options_.verify_plans) {
    SIMDB_RETURN_IF_ERROR(
        analysis::DagVerifier::Verify(job, options_.topology));
  }
  compile.total_seconds = total.ElapsedSeconds();

  hyracks::ExecStats exec_stats;
  hyracks::ExecContext ctx;
  ctx.pool = pool_.get();
  ctx.catalog = &catalog_;
  ctx.topology = options_.topology;
  ctx.stats = &exec_stats;
  ctx.t_occurrence_algorithm = options_.t_occurrence_algorithm;
  ctx.posting_cache_enabled = options_.posting_cache_enabled;
  ctx.batch_execution = options_.batch_execution;
  ctx.batch_size = options_.batch_size;
  ctx.executor = options_.executor;
  ctx.transport = transport_.get();
  if (gov != nullptr) {
    ctx.cancel = gov->cancel;
    ctx.budget = gov->budget;
    ctx.query_id = gov->query_id;
  }
  std::unique_ptr<obs::TraceCollector> collector;
  if (options_.profile_queries) {
    collector = std::make_unique<obs::TraceCollector>();
    ctx.trace = collector.get();
  }
  Result<hyracks::PartitionedRows> run = hyracks::Executor::Run(job, ctx);
  if (!run.ok()) {
    // Hand the execution stats back even on failure: the cancellation tests
    // assert the graph drained (executed + skipped == total) from here.
    if (result != nullptr) result->exec = std::move(exec_stats);
    return run.status();
  }
  hyracks::PartitionedRows rows = std::move(run).value();

  std::shared_ptr<const obs::QueryProfile> profile;
  if (collector != nullptr) {
    uint64_t dropped = collector->dropped();
    auto built = std::make_shared<obs::QueryProfile>(obs::BuildQueryProfile(
        exec_stats, options_.topology, collector->Drain(), dropped));
    RollupMetrics(*built);
    profile = std::move(built);
  }

  if (result != nullptr) {
    result->rows.clear();
    if (tr.is_count) {
      result->rows.push_back(
          adm::Value::Int64(static_cast<int64_t>(hyracks::RowsCount(rows))));
    } else {
      for (const hyracks::Rows& part : rows) {
        for (const hyracks::Tuple& tuple : part) {
          result->rows.push_back(tuple.empty() ? adm::Value::Missing()
                                               : tuple[0]);
        }
      }
    }
    result->exec = std::move(exec_stats);
    result->compile = compile;
    result->profile = std::move(profile);
    result->logical_plan = tr.plan->ToString();
    result->fired_rules.assign(opt.fired_rules.begin() + fired_before,
                               opt.fired_rules.end());
  }
  return Status::OK();
}

Status QueryProcessor::ExecuteStatement(const aql::Statement& stmt,
                                        QueryResult* result,
                                        algebricks::OptContext& opt,
                                        const QueryGovernor* gov,
                                        bool concurrent) {
  if (concurrent) {
    switch (stmt.kind) {
      case aql::Statement::Kind::kUseDataverse:
      case aql::Statement::Kind::kSet:
      case aql::Statement::Kind::kExplain:
      case aql::Statement::Kind::kQuery:
        break;  // read-only / per-call session state
      default:
        return Status::InvalidArgument(
            "DDL/mutation statements are not allowed on a concurrent "
            "session; use the exclusive Execute path");
    }
  }
  switch (stmt.kind) {
    case aql::Statement::Kind::kUseDataverse:
      return Status::OK();  // single-dataverse engine
    case aql::Statement::Kind::kSet: {
      if (stmt.name == "simfunction") {
        opt.sim_function_alias = stmt.set_value;
        return Status::OK();
      }
      if (stmt.name == "simthreshold") {
        char* end = nullptr;
        double v = std::strtod(stmt.set_value.c_str(), &end);
        if (end == stmt.set_value.c_str()) {
          return Status::ParseError("bad simthreshold");
        }
        opt.sim_threshold = v;
        return Status::OK();
      }
      return Status::OK();  // unknown settings are accepted and ignored
    }
    case aql::Statement::Kind::kCreateDataset: {
      storage::DatasetSpec spec;
      spec.name = stmt.dataset;
      spec.pk_field = stmt.pk_field;
      spec.num_partitions = stmt.partitions > 0
                                ? stmt.partitions
                                : options_.topology.total_partitions();
      return catalog_.CreateDataset(std::move(spec)).status();
    }
    case aql::Statement::Kind::kCreateIndex: {
      storage::Dataset* ds = catalog_.Find(stmt.dataset);
      if (ds == nullptr) return Status::NotFound("dataset " + stmt.dataset);
      storage::IndexSpec spec;
      spec.name = stmt.name;
      spec.field = stmt.field;
      if (stmt.index_type == "ngram") {
        spec.kind = similarity::IndexKind::kNGram;
        spec.gram_len = stmt.gram_len;
      } else if (stmt.index_type == "keyword") {
        spec.kind = similarity::IndexKind::kKeyword;
      } else {
        spec.kind = similarity::IndexKind::kBtree;
      }
      return ds->CreateIndex(std::move(spec));
    }
    case aql::Statement::Kind::kCreateFunction: {
      functions_[stmt.name] = {stmt.params, stmt.body};
      return Status::OK();
    }
    case aql::Statement::Kind::kInsert: {
      storage::Dataset* ds = catalog_.Find(stmt.dataset);
      if (ds == nullptr) return Status::NotFound("dataset " + stmt.dataset);
      SIMDB_ASSIGN_OR_RETURN(adm::Value payload, EvalConstantAst(stmt.body));
      if (payload.is_object()) {
        return ds->Insert(std::move(payload)).status();
      }
      if (payload.is_list()) {
        for (const adm::Value& record : payload.AsList()) {
          SIMDB_RETURN_IF_ERROR(ds->Insert(record).status());
        }
        return Status::OK();
      }
      return Status::TypeError("insert expects a record or list of records");
    }
    case aql::Statement::Kind::kDelete: {
      storage::Dataset* ds = catalog_.Find(stmt.dataset);
      if (ds == nullptr) return Status::NotFound("dataset " + stmt.dataset);
      // Evaluate `for $v in dataset X where cond return $v.<pk>` and delete
      // the surviving primary keys.
      auto flwor = std::make_shared<aql::Flwor>();
      aql::Clause for_clause;
      for_clause.kind = aql::Clause::Kind::kFor;
      for_clause.var = stmt.var;
      auto ds_ref = std::make_shared<aql::AExpr>();
      ds_ref->kind = aql::AExpr::Kind::kDatasetRef;
      ds_ref->name = stmt.dataset;
      for_clause.source = ds_ref;
      flwor->clauses.push_back(std::move(for_clause));
      if (stmt.condition != nullptr) {
        aql::Clause where_clause;
        where_clause.kind = aql::Clause::Kind::kWhere;
        where_clause.condition = stmt.condition;
        flwor->clauses.push_back(std::move(where_clause));
      }
      flwor->return_expr =
          aql::MakeField(aql::MakeVar(stmt.var), ds->spec().pk_field);
      auto query = std::make_shared<aql::AExpr>();
      query->kind = aql::AExpr::Kind::kSubquery;
      query->subquery = std::move(flwor);
      QueryResult pks;
      SIMDB_RETURN_IF_ERROR(RunQuery(query, &pks, opt, gov));
      for (const adm::Value& pk : pks.rows) {
        if (!pk.is_int64()) return Status::TypeError("non-int64 primary key");
        SIMDB_RETURN_IF_ERROR(ds->Delete(pk.AsInt64()));
      }
      return Status::OK();
    }
    case aql::Statement::Kind::kLoad: {
      storage::Dataset* ds = catalog_.Find(stmt.dataset);
      if (ds == nullptr) return Status::NotFound("dataset " + stmt.dataset);
      SIMDB_ASSIGN_OR_RETURN(std::string data, storage::ReadFile(stmt.path));
      size_t start = 0;
      while (start < data.size()) {
        size_t end = data.find('\n', start);
        if (end == std::string::npos) end = data.size();
        std::string_view line(data.data() + start, end - start);
        start = end + 1;
        // Skip blank lines.
        bool blank = true;
        for (char c : line) {
          if (!std::isspace(static_cast<unsigned char>(c))) blank = false;
        }
        if (blank) continue;
        SIMDB_ASSIGN_OR_RETURN(adm::Value record, adm::Value::FromJson(line));
        SIMDB_RETURN_IF_ERROR(ds->Insert(std::move(record)).status());
      }
      return Status::OK();
    }
    case aql::Statement::Kind::kExplain: {
      aql::Translator translator({}, &functions_);
      SIMDB_ASSIGN_OR_RETURN(aql::TranslationResult tr,
                             translator.TranslateQuery(stmt.body));
      size_t fired_before = opt.fired_rules.size();
      SIMDB_RETURN_IF_ERROR(OptimizePlan(tr.plan, opt));
      if (options_.verify_plans) {
        SIMDB_RETURN_IF_ERROR(
            analysis::PlanVerifier::Verify(tr.plan, &catalog_));
      }
      if (result != nullptr) {
        result->rows = {adm::Value::String(tr.plan->ToString())};
        result->logical_plan = tr.plan->ToString();
        result->fired_rules.assign(opt.fired_rules.begin() + fired_before,
                                   opt.fired_rules.end());
      }
      return Status::OK();
    }
    case aql::Statement::Kind::kQuery:
      return RunQuery(stmt.body, result, opt, gov);
  }
  return Status::Internal("unreachable statement kind");
}

Result<adm::Value> QueryProcessor::EvalConstantAst(const aql::AExprPtr& expr) {
  if (expr == nullptr) return Status::PlanError("empty expression");
  switch (expr->kind) {
    case aql::AExpr::Kind::kLiteral:
      return expr->literal;
    case aql::AExpr::Kind::kRecord: {
      adm::Value::Object fields;
      for (size_t i = 0; i < expr->children.size(); ++i) {
        SIMDB_ASSIGN_OR_RETURN(adm::Value v, EvalConstantAst(expr->children[i]));
        fields.emplace_back(expr->field_names[i], std::move(v));
      }
      return adm::Value::MakeObject(std::move(fields));
    }
    case aql::AExpr::Kind::kList: {
      adm::Value::Array items;
      for (const aql::AExprPtr& c : expr->children) {
        SIMDB_ASSIGN_OR_RETURN(adm::Value v, EvalConstantAst(c));
        items.push_back(std::move(v));
      }
      return adm::Value::MakeArray(std::move(items));
    }
    case aql::AExpr::Kind::kCall: {
      const hyracks::FunctionDef* def =
          hyracks::FunctionRegistry::Global().Find(expr->name);
      if (def == nullptr) {
        return Status::PlanError("unknown function " + expr->name);
      }
      std::vector<adm::Value> args;
      for (const aql::AExprPtr& c : expr->children) {
        SIMDB_ASSIGN_OR_RETURN(adm::Value v, EvalConstantAst(c));
        args.push_back(std::move(v));
      }
      return def->fn(args);
    }
    default:
      return Status::PlanError(
          "insert payloads must be constant records/lists");
  }
}

Status QueryProcessor::Execute(std::string_view aql, QueryResult* result) {
  Stopwatch parse;
  SIMDB_ASSIGN_OR_RETURN(aql::Program program, aql::ParseProgram(aql));
  double parse_seconds = parse.ElapsedSeconds();
  WriterLock lock(state_mu_);
  for (const aql::Statement& stmt : program.statements) {
    SIMDB_RETURN_IF_ERROR(
        ExecuteStatement(stmt, result, opt_, nullptr, /*concurrent=*/false));
  }
  if (result != nullptr) result->compile.parse_seconds = parse_seconds;
  return Status::OK();
}

Status QueryProcessor::ExecuteConcurrent(std::string_view aql,
                                         const QueryGovernor& gov,
                                         QueryResult* result) {
  Stopwatch parse;
  SIMDB_ASSIGN_OR_RETURN(aql::Program program, aql::ParseProgram(aql));
  double parse_seconds = parse.ElapsedSeconds();
  ReaderLock lock(state_mu_);
  // Per-query optimizer context: a copy of the engine's session defaults
  // that this query's `set` statements mutate privately. In verify mode the
  // (stateful) contract checker is likewise a per-query instance.
  algebricks::OptContext opt = opt_;
  std::unique_ptr<analysis::RuleContractChecker> checker;
  if (options_.verify_plans) {
    checker = std::make_unique<analysis::RuleContractChecker>(&catalog_);
    opt.check_hook = checker.get();
  } else {
    opt.check_hook = nullptr;
  }
  for (const aql::Statement& stmt : program.statements) {
    SIMDB_RETURN_IF_ERROR(
        ExecuteStatement(stmt, result, opt, &gov, /*concurrent=*/true));
  }
  if (result != nullptr) result->compile.parse_seconds = parse_seconds;
  return Status::OK();
}

Result<std::string> QueryProcessor::Explain(std::string_view aql) {
  SIMDB_ASSIGN_OR_RETURN(aql::Program program, aql::ParseProgram(aql));
  WriterLock lock(state_mu_);
  const aql::AExprPtr* query = nullptr;
  for (const aql::Statement& stmt : program.statements) {
    if (stmt.kind == aql::Statement::Kind::kQuery) {
      query = &stmt.body;
    } else {
      SIMDB_RETURN_IF_ERROR(ExecuteStatement(stmt, nullptr, opt_, nullptr,
                                             /*concurrent=*/false));
    }
  }
  if (query == nullptr) return Status::InvalidArgument("no query to explain");
  aql::Translator translator({}, &functions_);
  SIMDB_ASSIGN_OR_RETURN(aql::TranslationResult tr,
                         translator.TranslateQuery(*query));
  SIMDB_RETURN_IF_ERROR(OptimizePlan(tr.plan, opt_));
  if (options_.verify_plans) {
    SIMDB_RETURN_IF_ERROR(analysis::PlanVerifier::Verify(tr.plan, &catalog_));
  }
  return tr.plan->ToString();
}

}  // namespace simdb::core
