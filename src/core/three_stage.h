#ifndef SIMDB_CORE_THREE_STAGE_H_
#define SIMDB_CORE_THREE_STAGE_H_

#include <memory>

#include "algebricks/rules.h"

namespace simdb::core {

/// The similarity join rule (SJR, paper Section 5.3): rewrites a JOIN with a
/// Jaccard similarity condition into the three-stage set-similarity join of
/// Vernica et al. via the AQL+ framework — the rule instantiates an AQL+
/// template (meta-clauses ## for the join inputs, meta-variables $$ for keys
/// and primary keys, placeholders for the threshold), re-parses and
/// re-translates it, and splices the result into the plan (Figures 11/16/17).
///
/// Stage 1 builds the global token order (over the union of both inputs, or
/// one input for self-join shapes, sharing the subplan as in Figure 20);
/// stage 2 generates verified rid pairs via prefix filtering; stage 3 joins
/// the rid pairs back to both inputs.
std::shared_ptr<algebricks::RewriteRule> MakeThreeStageJoinRule();

/// The AQL+ template text after placeholder substitution, exposed for tests
/// and documentation.
std::string ThreeStageTemplateText(double delta, bool self_like);

}  // namespace simdb::core

#endif  // SIMDB_CORE_THREE_STAGE_H_
