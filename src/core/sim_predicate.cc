#include "core/sim_predicate.h"

namespace simdb::core {

using algebricks::LExpr;
using algebricks::LExprPtr;

namespace {

bool IsCall(const LExprPtr& e, std::string_view name) {
  return e != nullptr && e->kind == LExpr::Kind::kCall && e->name == name;
}

std::optional<double> LiteralNumber(const LExprPtr& e) {
  if (e != nullptr && e->kind == LExpr::Kind::kLiteral &&
      e->literal.is_numeric()) {
    return e->literal.AsNumber();
  }
  return std::nullopt;
}

}  // namespace

std::optional<SimPredicate> MatchSimilarityConjunct(const LExprPtr& conjunct) {
  if (conjunct == nullptr || conjunct->kind != LExpr::Kind::kCall) {
    return std::nullopt;
  }
  // contains(a, b) stands alone.
  if (IsCall(conjunct, "contains") && conjunct->children.size() == 2) {
    SimPredicate pred;
    pred.fn = SimPredicate::Fn::kContains;
    pred.arg0 = conjunct->children[0];
    pred.arg1 = conjunct->children[1];
    pred.original = conjunct;
    return pred;
  }
  if (conjunct->children.size() != 2) return std::nullopt;
  const std::string& cmp = conjunct->name;
  if (cmp != "ge" && cmp != "gt" && cmp != "le" && cmp != "lt") {
    return std::nullopt;
  }
  // Normalize to (fn-call, literal, effective-comparison-direction).
  LExprPtr call = conjunct->children[0];
  std::optional<double> lit = LiteralNumber(conjunct->children[1]);
  bool call_first = true;
  if (!lit.has_value() || call->kind != LExpr::Kind::kCall) {
    call = conjunct->children[1];
    lit = LiteralNumber(conjunct->children[0]);
    call_first = false;
    if (!lit.has_value() || call == nullptr ||
        call->kind != LExpr::Kind::kCall) {
      return std::nullopt;
    }
  }
  // Direction as seen by the function value: "at least" or "at most".
  bool at_least = call_first ? (cmp == "ge" || cmp == "gt")
                             : (cmp == "le" || cmp == "lt");
  bool strict = cmp == "gt" || cmp == "lt";

  SimPredicate pred;
  pred.original = conjunct;
  if (IsCall(call, "similarity-jaccard") && call->children.size() == 2) {
    if (!at_least) return std::nullopt;  // jaccard <= d is not indexable
    pred.fn = SimPredicate::Fn::kJaccard;
    pred.threshold = *lit;  // for strict >, using d as T bound stays complete
    (void)strict;
  } else if (IsCall(call, "edit-distance") && call->children.size() == 2) {
    if (at_least) return std::nullopt;  // edit-distance >= k not indexable
    pred.fn = SimPredicate::Fn::kEditDistance;
    // dist < k is dist <= k-1.
    pred.threshold = strict ? *lit - 1 : *lit;
  } else {
    return std::nullopt;
  }
  pred.arg0 = call->children[0];
  pred.arg1 = call->children[1];
  return pred;
}

std::optional<std::string> ExtractFieldRef(const LExprPtr& expr,
                                           const std::string& record_var) {
  if (expr == nullptr) return std::nullopt;
  const LExpr* e = expr.get();
  if (e->kind == LExpr::Kind::kCall &&
      (e->name == "word-tokens" || e->name == "gram-tokens") &&
      !e->children.empty()) {
    e = e->children[0].get();
  }
  if (e->kind == LExpr::Kind::kField && !e->children.empty() &&
      e->children[0]->kind == LExpr::Kind::kVar &&
      e->children[0]->name == record_var) {
    return e->name;
  }
  return std::nullopt;
}

similarity::IndexKind CompatibleIndexKind(SimPredicate::Fn fn) {
  switch (fn) {
    case SimPredicate::Fn::kJaccard:
      return similarity::IndexKind::kKeyword;
    case SimPredicate::Fn::kEditDistance:
    case SimPredicate::Fn::kContains:
      return similarity::IndexKind::kNGram;
  }
  return similarity::IndexKind::kKeyword;
}

hyracks::SimSearchSpec ToSearchSpec(const SimPredicate& pred) {
  hyracks::SimSearchSpec spec;
  switch (pred.fn) {
    case SimPredicate::Fn::kJaccard:
      spec.fn = hyracks::SimSearchSpec::Fn::kJaccard;
      break;
    case SimPredicate::Fn::kEditDistance:
      spec.fn = hyracks::SimSearchSpec::Fn::kEditDistance;
      break;
    case SimPredicate::Fn::kContains:
      spec.fn = hyracks::SimSearchSpec::Fn::kContains;
      break;
  }
  spec.threshold = pred.threshold;
  return spec;
}

}  // namespace simdb::core
