#ifndef SIMDB_CORE_QUERY_PROCESSOR_H_
#define SIMDB_CORE_QUERY_PROCESSOR_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "algebricks/jobgen.h"
#include "algebricks/rules.h"
#include "aql/parser.h"
#include "aql/translator.h"
#include "common/cancellation.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "hyracks/budget.h"
#include "hyracks/exec.h"
#include "observability/profile.h"
#include "similarity/similarity_function.h"
#include "storage/catalog.h"
#include "transport/transport.h"

namespace simdb::core {

/// Engine-wide configuration (the scaled-down analogue of paper Table 2).
struct EngineOptions {
  std::string data_dir = "/tmp/simdb_data";
  hyracks::ClusterTopology topology{1, 2};
  storage::LsmOptions lsm;
  /// Worker threads executing partitions (0 = hardware concurrency).
  size_t num_threads = 0;
  storage::TOccurrenceAlgorithm t_occurrence_algorithm =
      storage::TOccurrenceAlgorithm::kScanCount;
  /// Serve inverted-index probes from the decoded posting-list cache.
  bool posting_cache_enabled = true;
  /// Batch execution: hot similarity operators process rows in columnar
  /// scratch batches through the runtime-dispatched SIMD kernels. Off forces
  /// the tuple-at-a-time path everywhere; the two are answer-identical.
  bool batch_execution = true;
  /// Rows per columnar scratch batch on the batch path.
  int batch_size = 1024;
  /// Dataflow runtime: dependency-scheduled task graph (default) or the
  /// legacy stage-sequential loop. The two are answer-identical.
  hyracks::ExecutorKind executor = hyracks::ExecutorKind::kScheduler;
  /// Exchange transport backend (see transport/transport.h and
  /// docs/TRANSPORT.md). kModeled is the paper-figure default; the
  /// SIMDB_TRANSPORT environment variable overrides it at engine
  /// construction so CI can run the whole suite on a real backend. All
  /// backends must be answer- and error-identical (checked by the transport
  /// differential fuzz seeds).
  transport::TransportKind transport = transport::TransportKind::kModeled;
  /// Static verification of every compiled query: the plan verifier runs on
  /// the translated and optimized logical plans, every rewrite-rule
  /// application is checked against the rule's declared contract, and the
  /// generated job passes the task-graph verifier before execution. Off by
  /// default (zero cost); on in tests and the differential fuzz harness.
  bool verify_plans = false;
  /// Attach a QueryProfile (per-operator times/rows/bytes/counters, task
  /// spans, Chrome-trace export) to every query result and roll the figures
  /// into obs::MetricsRegistry::Global(). Off by default; when off the
  /// runtime takes a single never-taken branch per task (verified < 2%
  /// overhead by bench_profile / the observability test).
  bool profile_queries = false;
};

/// Compilation timings, including the AQL+ overhead the paper reports in
/// Section 6.4.1.
struct CompileStats {
  double parse_seconds = 0;
  double translate_seconds = 0;
  double optimize_seconds = 0;
  double aqlplus_seconds = 0;  // template generation inside optimization
  double jobgen_seconds = 0;
  double total_seconds = 0;
};

/// Per-query serving controls threaded from the serving layer down into the
/// executors. Both pointers are owned by the caller (the serving layer's
/// QueryTicket) and must outlive the query. Null members disable the
/// corresponding control.
struct QueryGovernor {
  const CancellationToken* cancel = nullptr;
  hyracks::ResourceBudget* budget = nullptr;
  /// Serving-layer query id stamped into every fragment this query
  /// dispatches to socket workers (0 = unattributed, never cancellable).
  /// Lets CancelRemoteFragments tell the workers to refuse this query's
  /// in-flight fragments after a cancellation or deadline.
  uint64_t query_id = 0;
};

/// Everything a query run produces.
struct QueryResult {
  std::vector<adm::Value> rows;
  hyracks::ExecStats exec;
  CompileStats compile;
  std::string logical_plan;  // optimized plan (explain)
  std::vector<std::string> fired_rules;
  /// Populated when EngineOptions::profile_queries is on; null otherwise.
  /// Shared so results stay cheap to copy.
  std::shared_ptr<const obs::QueryProfile> profile;
};

/// The end-to-end engine facade: owns the catalog, session settings, the
/// optimizer pipeline (normalize -> similarity rule set -> normalize ->
/// count rewrite, paper Section 5.3), the job generator, and the simulated
/// cluster's thread pool.
class QueryProcessor {
 public:
  explicit QueryProcessor(EngineOptions options);

  /// Executes a full AQL program (set/DDL statements and queries). The last
  /// query statement's output is stored into `*result` when non-null.
  /// Takes the engine's state lock exclusively: DDL and data mutation are
  /// serialized against every concurrent query.
  Status Execute(std::string_view aql, QueryResult* result = nullptr);

  /// Executes a read-only AQL program (use/set/explain/query statements)
  /// concurrently with other ExecuteConcurrent callers. Session `set`
  /// statements apply to a per-call copy of the optimizer context, so
  /// concurrent callers cannot observe each other's settings — the engine
  /// keeps no mutable per-query state. DDL and mutation statements are
  /// rejected with InvalidArgument (route them through Execute). `gov`
  /// carries the query's cancellation token and resource budget; when a
  /// memory quota is set, a pre-execution admission estimate (scanned
  /// records x kAdmissionBytesPerRecord) refuses hopeless queries with
  /// ResourceExhausted before any task runs.
  Status ExecuteConcurrent(std::string_view aql, const QueryGovernor& gov,
                           QueryResult* result = nullptr);

  /// Bytes-per-record constant behind the admission estimate: deliberately
  /// coarse (a scan's output is at least this much) and documented so tests
  /// can size quotas above/below the refusal threshold.
  static constexpr int64_t kAdmissionBytesPerRecord = 128;

  /// Compiles (but does not run) the last query in `aql`; returns the
  /// optimized logical plan rendering.
  Result<std::string> Explain(std::string_view aql);

  /// Session + optimizer state: simfunction/simthreshold and the feature
  /// flags used by ablation benchmarks.
  algebricks::OptContext& opt_context() { return opt_; }

  storage::Catalog* catalog() { return &catalog_; }
  const EngineOptions& options() const { return options_; }

  /// Switches the T-occurrence algorithm used by subsequent queries. The
  /// algorithms must be answer-equivalent; the differential fuzz harness
  /// toggles this per execution variant without rebuilding the engine.
  void set_t_occurrence_algorithm(storage::TOccurrenceAlgorithm algorithm) {
    options_.t_occurrence_algorithm = algorithm;
  }

  /// Toggles the inverted-index posting-list cache for subsequent queries.
  /// Cached and uncached execution must be answer-identical; the differential
  /// fuzz harness toggles this per execution variant.
  void set_posting_cache_enabled(bool enabled) {
    options_.posting_cache_enabled = enabled;
  }

  /// Toggles the columnar/SIMD batch execution path for subsequent queries.
  /// Batch and tuple execution must be answer-identical; the batch
  /// differential fuzz seeds toggle this per execution variant.
  void set_batch_execution(bool enabled) {
    options_.batch_execution = enabled;
  }

  /// Rows per columnar scratch batch (batch path only).
  void set_batch_size(int rows) { options_.batch_size = rows; }

  /// Switches the dataflow runtime for subsequent queries. The task-graph
  /// scheduler and the stage-sequential executor must be answer-identical;
  /// the differential fuzz harness runs both per execution variant.
  void set_executor(hyracks::ExecutorKind executor) {
    options_.executor = executor;
  }

  /// Toggles query profiling for subsequent queries (see
  /// EngineOptions::profile_queries). Profiling must not change answers —
  /// it only observes.
  void set_profile_queries(bool enabled) {
    options_.profile_queries = enabled;
  }

  /// Switches the exchange transport backend for subsequent queries,
  /// replacing the engine's backend instance (socket workers of the old
  /// backend are shut down). Backends must be answer- and error-identical;
  /// the transport differential fuzz seeds toggle this per variant. Not
  /// thread-safe against in-flight queries — call between queries only.
  void set_transport(transport::TransportKind kind) {
    options_.transport = kind;
    transport_ = transport::MakeTransport(kind, options_.topology.num_nodes);
  }

  transport::TransportKind transport_kind() const {
    return options_.transport;
  }

  /// Blocks until the transport has no bytes in flight and its workers are
  /// provably idle (socket: control-channel ping per live worker). The
  /// serving layer calls this after a cancellation or deadline so a dead
  /// query leaves nothing in flight behind it. A positive `timeout_seconds`
  /// bounds the wait (the transport is shared by all concurrent queries, so
  /// an unbounded drain can be starved by unrelated shipping); a timeout
  /// surfaces as kDeadlineExceeded and is safe to retry. Non-positive waits
  /// indefinitely.
  Status DrainTransport(double timeout_seconds = 0.0) {
    return transport_->Drain(timeout_seconds);
  }

  /// Tells every socket worker to refuse further fragments of `query_id`
  /// (recorded in a per-worker cancel ledger; see docs/DISTRIBUTED.md). The
  /// serving layer calls this before DrainTransport when a query dies so a
  /// fragment raced against the cancellation cannot be executed afterwards.
  /// No-op (OK) on backends without remote execution. `timeout_seconds`
  /// bounds the wait exactly like DrainTransport.
  Status CancelRemoteFragments(uint64_t query_id,
                               double timeout_seconds = 0.0) {
    return transport_->CancelFragments(query_id, timeout_seconds);
  }

  /// The engine-owned transport backend instance (tests inspect worker pids
  /// and fragment execution directly). Replaced by set_transport.
  transport::Transport* transport_backend() { return transport_.get(); }

  /// Programmatic data path used by generators and benches (bypasses AQL).
  Result<storage::Dataset*> CreateDataset(const std::string& name,
                                          const std::string& pk_field);
  Status Insert(const std::string& dataset, adm::Value record);

  /// Registers a C++ similarity UDF usable both via `~=` (simfunction alias)
  /// and as a named function in queries.
  void RegisterSimilarityUdf(similarity::SimilarityFunction fn);

 private:
  /// All compilation/execution paths take the optimizer context explicitly:
  /// the legacy single-session path passes the member `opt_` (under the
  /// exclusive lock), the concurrent path passes a per-query copy, so query
  /// compilation never races on shared mutable state. `gov` may be null.
  Status ExecuteStatement(const aql::Statement& stmt, QueryResult* result,
                          algebricks::OptContext& opt,
                          const QueryGovernor* gov, bool concurrent);
  /// Evaluates a constant AST expression (insert payloads).
  Result<adm::Value> EvalConstantAst(const aql::AExprPtr& expr);
  Status RunQuery(const aql::AExprPtr& query, QueryResult* result,
                  algebricks::OptContext& opt, const QueryGovernor* gov);
  Status OptimizePlan(algebricks::LOpPtr& plan, algebricks::OptContext& opt);

  /// Verifies each optimizer step in verify mode (null otherwise); owned
  /// here, installed into `opt_.check_hook`. Concurrent queries install a
  /// per-query checker instead (the checker is stateful).
  std::unique_ptr<algebricks::PlanCheckHook> check_hook_;

  EngineOptions options_;
  storage::Catalog catalog_;
  std::unique_ptr<ThreadPool> pool_;
  /// Engine-owned exchange transport, shared by all concurrent queries.
  std::unique_ptr<transport::Transport> transport_;
  /// Guards engine state: concurrent queries hold it shared for their whole
  /// run; Execute / CreateDataset / Insert / RegisterSimilarityUdf hold it
  /// exclusively (DDL, data mutation, session settings, option toggles).
  /// Rank kEngineState — the outermost engine lock: every scheduler, pool,
  /// cache, transport, and metrics lock is taken while a query holds this
  /// shared.
  mutable SharedMutex state_mu_{lockrank::Rank::kEngineState,
                                "QueryProcessor::state_mu_"};
  algebricks::OptContext opt_;
  std::map<std::string, aql::Translator::FunctionDefAst> functions_;
};

}  // namespace simdb::core

#endif  // SIMDB_CORE_QUERY_PROCESSOR_H_
