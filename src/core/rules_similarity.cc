#include "core/rules_similarity.h"

#include <atomic>
#include <functional>
#include <set>

#include "algebricks/jobgen.h"
#include "core/sim_predicate.h"
#include "similarity/edit_distance.h"
#include "similarity/similarity_function.h"
#include "similarity/tokenizer.h"

namespace simdb::core {

using algebricks::LExpr;
using algebricks::LExprPtr;
using algebricks::LOp;
using algebricks::LOpKind;
using algebricks::LOpPtr;
using algebricks::OptContext;
using algebricks::RewriteRule;
using algebricks::RuleContract;

namespace {

std::atomic<int> g_rule_var_counter{0};

std::string RuleVar(const std::string& hint) {
  return "r" + std::to_string(g_rule_var_counter++) + "_" + hint;
}

// ---------------------------------------------------------------------------
// ~= sugar
// ---------------------------------------------------------------------------

Result<LExprPtr> RewriteSimEq(const LExprPtr& expr, const OptContext& ctx,
                              bool* changed) {
  if (expr == nullptr) return expr;
  auto copy = std::make_shared<LExpr>(*expr);
  for (LExprPtr& c : copy->children) {
    SIMDB_ASSIGN_OR_RETURN(c, RewriteSimEq(c, ctx, changed));
  }
  if (copy->kind != LExpr::Kind::kCall || copy->name != "sim-eq") {
    return LExprPtr(copy);
  }
  if (copy->children.size() != 2) {
    return Status::PlanError("~= expects two operands");
  }
  const similarity::SimilarityFunction* fn =
      similarity::SimilarityFunctionRegistry::Global().FindByAlias(
          ctx.sim_function_alias);
  if (fn == nullptr) {
    return Status::PlanError("unknown simfunction '" + ctx.sim_function_alias +
                             "'");
  }
  LExprPtr call = LExpr::CallF(fn->name, {copy->children[0], copy->children[1]});
  LExprPtr threshold = LExpr::Lit(adm::Value::Double(ctx.sim_threshold));
  *changed = true;
  if (fn->sense == similarity::ThresholdSense::kDistanceAtMost) {
    return LExpr::CallF("le", {call, threshold});
  }
  return LExpr::CallF("ge", {call, threshold});
}

class SimilaritySugarRule : public RewriteRule {
 public:
  std::string name() const override { return "similarity-sugar"; }

  RuleContract contract() const override {
    RuleContract c;
    c.expression_only = true;
    // Desugaring `~=` is the same rewrite for every parent of a shared node.
    c.shared_mutation_safe = true;
    return c;
  }

  Result<bool> Apply(LOpPtr& op, OptContext& ctx) override {
    bool changed = false;
    if (op->expr != nullptr) {
      SIMDB_ASSIGN_OR_RETURN(op->expr, RewriteSimEq(op->expr, ctx, &changed));
    }
    for (auto& [name, e] : op->assigns) {
      (void)name;
      SIMDB_ASSIGN_OR_RETURN(e, RewriteSimEq(e, ctx, &changed));
    }
    return changed;
  }
};

// ---------------------------------------------------------------------------
// check-variant rewrite (early-terminating verification, paper Section 3.2)
// ---------------------------------------------------------------------------

/// similarity-jaccard(a,b) >= d  ->  similarity-jaccard-check(a,b,d)
/// edit-distance(a,b) <= k       ->  edit-distance-check(a,b,k)
/// (and the literal-first flips). The check variants apply length filters
/// and abort the merge/DP early, so SELECT and join-residual verification is
/// much cheaper. Run as the final rewrite pass: the index rules match the
/// plain forms.
LExprPtr RewriteToCheckVariant(const LExprPtr& expr, bool* changed) {
  if (expr == nullptr) return expr;
  auto copy = std::make_shared<LExpr>(*expr);
  for (LExprPtr& c : copy->children) {
    c = RewriteToCheckVariant(c, changed);
  }
  if (copy->kind != LExpr::Kind::kCall || copy->children.size() != 2) {
    return LExprPtr(copy);
  }
  auto is_lit = [](const LExprPtr& e) {
    return e->kind == LExpr::Kind::kLiteral && e->literal.is_numeric();
  };
  auto is_fn = [](const LExprPtr& e, const char* name) {
    return e->kind == LExpr::Kind::kCall && e->name == name &&
           e->children.size() == 2;
  };
  const LExprPtr& lhs = copy->children[0];
  const LExprPtr& rhs = copy->children[1];
  const char* check_fn = nullptr;
  LExprPtr call, threshold;
  if ((copy->name == "ge" && is_fn(lhs, "similarity-jaccard") && is_lit(rhs)) ||
      (copy->name == "le" && is_fn(rhs, "similarity-jaccard") && is_lit(lhs))) {
    check_fn = "similarity-jaccard-check";
    call = is_lit(rhs) ? lhs : rhs;
    threshold = is_lit(rhs) ? rhs : lhs;
  } else if ((copy->name == "le" && is_fn(lhs, "edit-distance") &&
              is_lit(rhs)) ||
             (copy->name == "ge" && is_fn(rhs, "edit-distance") &&
              is_lit(lhs))) {
    check_fn = "edit-distance-check";
    call = is_lit(rhs) ? lhs : rhs;
    threshold = is_lit(rhs) ? rhs : lhs;
  }
  if (check_fn == nullptr) return LExprPtr(copy);
  *changed = true;
  return LExpr::CallF(check_fn,
                      {call->children[0], call->children[1], threshold});
}

class UseCheckVariantRule : public RewriteRule {
 public:
  std::string name() const override { return "use-check-variants"; }

  RuleContract contract() const override {
    RuleContract c;
    c.expression_only = true;
    // Swapping in the cheaper check variant preserves every parent's output.
    c.shared_mutation_safe = true;
    return c;
  }

  Result<bool> Apply(LOpPtr& op, OptContext&) override {
    if (op->kind != LOpKind::kSelect && op->kind != LOpKind::kJoin) {
      return false;
    }
    bool changed = false;
    op->expr = RewriteToCheckVariant(op->expr, &changed);
    return changed;
  }
};

// ---------------------------------------------------------------------------
// shared helpers for the index rules
// ---------------------------------------------------------------------------

/// True when every row of `plan` maps 1:1 (or 1:0) to a row of its base
/// DATA-SCAN — i.e. the plan is a linear Select/Assign/Project chain over one
/// scan. The surrogate optimization needs this: a row-multiplying outer
/// (join, unnest) would duplicate surrogates and the top-level resolution
/// join would then square the duplication.
bool IsScanChain(const LOpPtr& plan) {
  const LOp* node = plan.get();
  while (node != nullptr) {
    switch (node->kind) {
      case LOpKind::kDataScan:
        return true;
      case LOpKind::kSelect:
      case LOpKind::kAssign:
      case LOpKind::kProject:
      case LOpKind::kLimit:
      case LOpKind::kLocalSort:
        node = node->inputs[0].get();
        break;
      default:
        return false;
    }
  }
  return false;
}

/// Finds the (single) DATA-SCAN node in `plan` that binds `var`.
const LOp* FindScanOfVar(const LOpPtr& plan, const std::string& var) {
  if (plan == nullptr) return nullptr;
  if (plan->kind == LOpKind::kDataScan && plan->out_var == var) {
    return plan.get();
  }
  for (const LOpPtr& input : plan->inputs) {
    const LOp* found = FindScanOfVar(input, var);
    if (found != nullptr) return found;
  }
  return nullptr;
}

bool ExprHasVars(const LExprPtr& e) {
  std::set<std::string> vars;
  e->CollectVars(&vars);
  return !vars.empty();
}

/// The T-occurrence bound expression for a runtime (join-side) corner-case
/// split: edit-distance-t-occurrence(key, gram_len, k) <= 0 is the corner.
LExprPtr CornerTExpr(const LExprPtr& key, int gram_len, int k) {
  return LExpr::CallF("edit-distance-t-occurrence",
                      {key, LExpr::Lit(adm::Value::Int64(gram_len)),
                       LExpr::Lit(adm::Value::Int64(k))});
}

// ---------------------------------------------------------------------------
// index-based similarity selection (paper Figure 7)
// ---------------------------------------------------------------------------

class IndexSelectRule : public RewriteRule {
 public:
  std::string name() const override { return "introduce-similarity-select-index"; }

  RuleContract contract() const override {
    RuleContract c;
    c.needs_catalog = true;
    c.may_introduce = {LOpKind::kConstantTuple, LOpKind::kIndexSearch,
                       LOpKind::kBtreeSearch,   LOpKind::kLocalSort,
                       LOpKind::kPrimaryLookup, LOpKind::kSelect,
                       LOpKind::kAssign,        LOpKind::kProject,
                       LOpKind::kUnionAll};
    return c;
  }

  Result<bool> Apply(LOpPtr& op, OptContext& ctx) override {
    if (!ctx.enable_index_select || ctx.catalog == nullptr) return false;
    if (op->kind != LOpKind::kSelect) return false;
    const LOpPtr& scan = op->inputs[0];
    if (scan->kind != LOpKind::kDataScan) return false;
    storage::Dataset* ds = ctx.catalog->Find(scan->dataset);
    if (ds == nullptr) return false;

    for (const LExprPtr& conjunct : algebricks::SplitConjuncts(op->expr)) {
      // Exact-match predicates use a secondary B+-tree when available (the
      // paper's exact-match baseline in Figure 22).
      if (conjunct->kind == LExpr::Kind::kCall && conjunct->name == "eq" &&
          conjunct->children.size() == 2) {
        for (int side = 0; side < 2; ++side) {
          std::optional<std::string> eq_field = ExtractFieldRef(
              conjunct->children[static_cast<size_t>(side)], scan->out_var);
          const LExprPtr& eq_const =
              conjunct->children[static_cast<size_t>(1 - side)];
          if (!eq_field.has_value() || ExprHasVars(eq_const)) continue;
          const storage::IndexSpec* btree =
              ds->FindIndexOnField(*eq_field, similarity::IndexKind::kBtree);
          if (btree == nullptr) continue;
          std::string pk_var = RuleVar("pk");
          LOpPtr plan = algebricks::MakeBtreeSearch(
              algebricks::MakeConstantTuple(), scan->dataset, btree->name,
              eq_const, pk_var);
          plan = algebricks::MakeLocalSort(plan, {{LExpr::Var(pk_var), true}});
          plan = algebricks::MakePrimaryLookup(plan, scan->dataset, pk_var,
                                               scan->out_var);
          plan = algebricks::MakeSelect(plan, op->expr);
          plan = algebricks::MakeProject(plan, {scan->out_var});
          op = plan;
          return true;
        }
      }
      std::optional<SimPredicate> pred = MatchSimilarityConjunct(conjunct);
      if (!pred.has_value()) continue;
      // One side must be a field of the scanned record, the other constant.
      LExprPtr const_arg;
      std::optional<std::string> field =
          ExtractFieldRef(pred->arg0, scan->out_var);
      if (field.has_value() && !ExprHasVars(pred->arg1)) {
        const_arg = pred->arg1;
      } else {
        field = ExtractFieldRef(pred->arg1, scan->out_var);
        if (!field.has_value() || ExprHasVars(pred->arg0)) continue;
        const_arg = pred->arg0;
      }
      const storage::IndexSpec* index =
          ds->FindIndexOnField(*field, CompatibleIndexKind(pred->fn));
      if (index == nullptr) continue;

      // Jaccard corner case: delta <= 0 is satisfied by every record
      // (including token-disjoint ones), so T = ceil(delta * len) = 0 and the
      // index cannot produce candidates. Keep the scan plan.
      if (pred->fn == SimPredicate::Fn::kJaccard && pred->threshold <= 0) {
        continue;
      }
      // Compile-time corner-case analysis (edit distance / contains): when
      // T <= 0 the index cannot prune and the scan plan must remain.
      if (pred->fn != SimPredicate::Fn::kJaccard) {
        SIMDB_ASSIGN_OR_RETURN(adm::Value key,
                               algebricks::EvaluateConstant(const_arg));
        if (!key.is_string()) continue;
        int k = pred->fn == SimPredicate::Fn::kEditDistance
                    ? static_cast<int>(pred->threshold)
                    : 0;
        int t = similarity::EditDistanceTOccurrence(
            static_cast<int>(key.AsString().size()), index->gram_len, k);
        if (t <= 0) return false;  // corner case: keep the scan-based plan
      }

      // Replace SCAN+SELECT with the secondary-to-primary index plan.
      std::string pk_var = RuleVar("pk");
      LOpPtr plan = algebricks::MakeIndexSearch(
          algebricks::MakeConstantTuple(), scan->dataset, index->name,
          const_arg, ToSearchSpec(*pred), pk_var);
      plan = algebricks::MakeLocalSort(plan, {{LExpr::Var(pk_var), true}});
      plan = algebricks::MakePrimaryLookup(plan, scan->dataset, pk_var,
                                           scan->out_var);
      plan = algebricks::MakeSelect(plan, op->expr);  // verify everything
      plan = algebricks::MakeProject(plan, {scan->out_var});
      op = plan;
      return true;
    }
    return false;
  }
};

// ---------------------------------------------------------------------------
// index-nested-loop similarity join (paper Figures 10, 14, 19)
// ---------------------------------------------------------------------------

class IndexJoinRule : public RewriteRule {
 public:
  std::string name() const override { return "introduce-similarity-index-join"; }

  RuleContract contract() const override {
    RuleContract c;
    c.needs_catalog = true;
    c.may_introduce = {LOpKind::kDataScan,      LOpKind::kIndexSearch,
                       LOpKind::kLocalSort,     LOpKind::kPrimaryLookup,
                       LOpKind::kSelect,        LOpKind::kAssign,
                       LOpKind::kProject,       LOpKind::kJoin,
                       LOpKind::kUnionAll};
    return c;
  }

  Result<bool> Apply(LOpPtr& op, OptContext& ctx) override {
    if (!ctx.enable_index_join || ctx.catalog == nullptr) return false;
    if (op->kind != LOpKind::kJoin) return false;
    const LOpPtr& outer = op->inputs[0];
    const LOpPtr& inner = op->inputs[1];
    if (inner->kind != LOpKind::kDataScan) return false;
    storage::Dataset* ds = ctx.catalog->Find(inner->dataset);
    if (ds == nullptr) return false;

    SIMDB_ASSIGN_OR_RETURN(std::vector<std::string> outer_vars_list,
                           outer->OutputVars());
    std::set<std::string> outer_vars(outer_vars_list.begin(),
                                     outer_vars_list.end());

    std::vector<LExprPtr> conjuncts = algebricks::SplitConjuncts(op->expr);
    for (size_t ci = 0; ci < conjuncts.size(); ++ci) {
      std::optional<SimPredicate> pred = MatchSimilarityConjunct(conjuncts[ci]);
      if (!pred.has_value()) continue;
      // Identify the inner (indexed) side and the outer key expression.
      std::optional<std::string> field =
          ExtractFieldRef(pred->arg0, inner->out_var);
      LExprPtr outer_key = pred->arg1;
      if (!field.has_value()) {
        field = ExtractFieldRef(pred->arg1, inner->out_var);
        outer_key = pred->arg0;
      }
      if (!field.has_value()) continue;
      if (!outer_key->UsesOnly(outer_vars)) continue;
      // Jaccard delta <= 0 matches token-disjoint pairs, which an inverted
      // index can never surface (T = 0) and the plan has no corner branch for
      // Jaccard keys; only the NL join is complete there.
      if (pred->fn == SimPredicate::Fn::kJaccard && pred->threshold <= 0) {
        continue;
      }
      const storage::IndexSpec* index =
          ds->FindIndexOnField(*field, CompatibleIndexKind(pred->fn));
      if (index == nullptr) continue;

      std::vector<LExprPtr> remaining;
      for (size_t i = 0; i < conjuncts.size(); ++i) {
        if (i != ci) remaining.push_back(conjuncts[i]);
      }
      SIMDB_ASSIGN_OR_RETURN(
          LOpPtr rewritten,
          Build(ctx, op, outer, inner, ds, *index, *pred, outer_key,
                std::move(remaining), outer_vars_list));
      op = rewritten;
      return true;
    }
    return false;
  }

 private:
  Result<LOpPtr> Build(OptContext& ctx, const LOpPtr& join, const LOpPtr& outer,
                       const LOpPtr& inner, storage::Dataset* ds,
                       const storage::IndexSpec& index,
                       const SimPredicate& pred, const LExprPtr& outer_key,
                       std::vector<LExprPtr> remaining,
                       const std::vector<std::string>& outer_vars) {
    (void)join;
    // Surrogate optimization (Figure 19): project the outer branch to
    // (surrogate, key) before broadcasting, then resolve surrogates with a
    // top-level equi join against the full outer branch.
    LExprPtr surrogate_expr;
    if (ctx.enable_surrogate_join && IsScanChain(outer)) {
      std::set<std::string> key_vars;
      outer_key->CollectVars(&key_vars);
      if (key_vars.size() == 1) {
        const LOp* scan = FindScanOfVar(outer, *key_vars.begin());
        if (scan != nullptr) {
          storage::Dataset* outer_ds = ctx.catalog->Find(scan->dataset);
          if (outer_ds != nullptr) {
            surrogate_expr = LExpr::Field(LExpr::Var(scan->out_var),
                                          outer_ds->spec().pk_field);
          }
        }
      }
    }

    LOpPtr pipeline_input;       // branch feeding the index search
    LExprPtr pipeline_key;       // key expression over that branch
    std::string surrogate_var;   // bound in the projected branch
    LExprPtr verify_conjunct;    // sim conjunct over pipeline vars
    std::vector<std::string> pipeline_vars;
    if (surrogate_expr != nullptr) {
      surrogate_var = RuleVar("surr");
      std::string skey_var = RuleVar("skey");
      // Ship the *raw* secondary-key field, not derived values: when the key
      // expression is a tokenizer call, project its argument and re-apply
      // the tokenizer at the index site (the paper's "only sending the
      // secondary-key fields together with a compact surrogate").
      LExprPtr projected = outer_key;
      if (outer_key->kind == LExpr::Kind::kCall &&
          (outer_key->name == "word-tokens" ||
           outer_key->name == "gram-tokens") &&
          !outer_key->children.empty()) {
        projected = outer_key->children[0];
      }
      pipeline_input = algebricks::MakeProject(
          algebricks::MakeAssign(
              outer, {{surrogate_var, surrogate_expr}, {skey_var, projected}}),
          {surrogate_var, skey_var});
      // Rewrite the key and the sim conjunct to reference the projected
      // column instead of the original outer expression.
      std::function<LExprPtr(const LExprPtr&)> subst =
          [&](const LExprPtr& e) -> LExprPtr {
        if (e == projected) return LExpr::Var(skey_var);
        auto copy = std::make_shared<LExpr>(*e);
        for (LExprPtr& c : copy->children) c = subst(c);
        return copy;
      };
      pipeline_key = subst(outer_key);
      verify_conjunct = subst(pred.original);
      pipeline_vars = {surrogate_var, skey_var};
    } else {
      pipeline_input = outer;
      pipeline_key = outer_key;
      verify_conjunct = pred.original;
      pipeline_vars = outer_vars;
    }

    // Corner-case handling for edit distance / contains: search keys are
    // produced at runtime, so split the stream on T (Figure 14).
    bool needs_corner = pred.fn != SimPredicate::Fn::kJaccard;
    int corner_k = pred.fn == SimPredicate::Fn::kEditDistance
                       ? static_cast<int>(pred.threshold)
                       : 0;

    LOpPtr search_input = pipeline_input;
    if (needs_corner) {
      search_input = algebricks::MakeSelect(
          pipeline_input,
          LExpr::CallF("gt", {CornerTExpr(pipeline_key, index.gram_len,
                                          corner_k),
                              LExpr::Lit(adm::Value::Int64(0))}));
    }

    std::string pk_var = RuleVar("pk");
    LOpPtr plan = algebricks::MakeIndexSearch(search_input, inner->dataset,
                                              index.name, pipeline_key,
                                              ToSearchSpec(pred), pk_var);
    plan = algebricks::MakeLocalSort(plan, {{LExpr::Var(pk_var), true}});
    plan = algebricks::MakePrimaryLookup(plan, inner->dataset, pk_var,
                                         inner->out_var);
    plan = algebricks::MakeSelect(plan, verify_conjunct);

    if (needs_corner) {
      // Corner records (T <= 0) go through a nested-loop join with a scan of
      // the inner dataset; the final answer is the union of both paths. The
      // pipeline input is shared between the two selects (replicate).
      LOpPtr corner_input = algebricks::MakeSelect(
          pipeline_input,
          LExpr::CallF("le", {CornerTExpr(pipeline_key, index.gram_len,
                                          corner_k),
                              LExpr::Lit(adm::Value::Int64(0))}));
      // Put the corner stream on the right so the broadcast NL join ships
      // the (small) corner stream, not the dataset.
      LOpPtr corner_scan = algebricks::MakeDataScan(inner->dataset,
                                                    inner->out_var);
      LOpPtr corner_join = algebricks::MakeJoin(
          corner_scan, corner_input, verify_conjunct,
          algebricks::JoinStrategy::kBroadcastNl);
      std::vector<std::string> union_vars = pipeline_vars;
      union_vars.push_back(inner->out_var);
      plan = algebricks::MakeUnionAll(plan, corner_join, union_vars);
    }

    if (surrogate_expr != nullptr) {
      // Resolve surrogates: top-level equi join with the full outer branch
      // (executed as a parallel hash join).
      plan = algebricks::MakeJoin(
          outer, plan,
          LExpr::CallF("eq", {surrogate_expr, LExpr::Var(surrogate_var)}));
    }
    if (!remaining.empty()) {
      plan = algebricks::MakeSelect(plan,
                                    algebricks::CombineConjuncts(remaining));
    }
    std::vector<std::string> final_vars = outer_vars;
    final_vars.push_back(inner->out_var);
    return algebricks::MakeProject(plan, final_vars);
  }
};

}  // namespace

std::shared_ptr<RewriteRule> MakeSimilaritySugarRule() {
  return std::make_shared<SimilaritySugarRule>();
}

std::shared_ptr<RewriteRule> MakeUseCheckVariantRule() {
  return std::make_shared<UseCheckVariantRule>();
}

std::shared_ptr<RewriteRule> MakeIndexSelectRule() {
  return std::make_shared<IndexSelectRule>();
}

std::shared_ptr<RewriteRule> MakeIndexJoinRule() {
  return std::make_shared<IndexJoinRule>();
}

}  // namespace simdb::core
