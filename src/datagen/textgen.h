#ifndef SIMDB_DATAGEN_TEXTGEN_H_
#define SIMDB_DATAGEN_TEXTGEN_H_

#include <string>
#include <vector>

#include "adm/value.h"
#include "common/random.h"
#include "common/result.h"

namespace simdb::datagen {

/// Statistical shape of one synthetic text dataset, calibrated against the
/// field characteristics of paper Table 4 (scaled: e.g. Reddit titles average
/// 1,173 words in the paper; we keep the relative ordering of datasets while
/// staying laptop-sized). Token frequencies are Zipf-distributed, names come
/// from a pool with typo perturbation, and a fraction of records are
/// near-duplicates so similarity joins have non-trivial answers.
struct TextProfile {
  std::string label;        // "amazon", "reddit", "twitter"
  std::string name_field;   // short string field (edit distance)
  std::string text_field;   // long tokenizable field (Jaccard)

  int vocab_size = 2000;
  double zipf_skew = 1.0;
  int min_words = 1;
  int avg_words = 4;
  int max_words = 44;

  int name_pool_size = 300;
  double name_suffix_rate = 0.5;   // append digits to the base name
  double name_typo_rate = 0.3;     // apply 1-2 character edits
  double near_duplicate_rate = 0.15;
};

/// Profiles mirroring the paper's three datasets (Table 3/4).
TextProfile AmazonProfile();
TextProfile RedditProfile();
TextProfile TwitterProfile();

/// Generates records {<pk>: int64, <name_field>: string, <text_field>:
/// string} deterministically from a seed.
class TextDatasetGenerator {
 public:
  explicit TextDatasetGenerator(TextProfile profile, uint64_t seed = 42);

  const TextProfile& profile() const { return profile_; }
  /// The seed the generator was constructed with; record streams are fully
  /// determined by (profile, seed), and prefixes are stable: the first k
  /// records of two generators with equal seeds are identical.
  uint64_t seed() const { return rng_.initial_seed(); }

  /// Produces the record with primary key `id` ("id" field).
  adm::Value NextRecord(int64_t id);

  /// Values generated so far (for workload sampling, paper Section 6.3).
  const std::vector<std::string>& names() const { return names_; }
  const std::vector<std::string>& texts() const { return texts_; }

  /// The i-th vocabulary word (rank 0 = most frequent).
  std::string Word(uint64_t rank) const;

 private:
  std::string MakeName();
  std::string MakeText();
  std::string PerturbName(const std::string& name);
  std::string PerturbText(const std::string& text);

  TextProfile profile_;
  Random rng_;
  ZipfGenerator zipf_;
  std::vector<std::string> name_pool_;
  std::vector<std::string> names_;
  std::vector<std::string> texts_;
};

/// Samples workload values per the paper's protocol: random unique values
/// from a field, with a minimum word count (Jaccard) or character length
/// (edit distance).
class WorkloadSampler {
 public:
  WorkloadSampler(std::vector<std::string> values, uint64_t seed = 7);

  /// The seed the sampler was constructed with (for failure logging).
  uint64_t seed() const { return rng_.initial_seed(); }

  /// A random value with at least `min_words` word tokens.
  Result<std::string> SampleWithMinWords(int min_words);
  /// A random value with at least `min_chars` characters.
  Result<std::string> SampleWithMinChars(int min_chars);

 private:
  std::vector<std::string> values_;
  Random rng_;
};

}  // namespace simdb::datagen

#endif  // SIMDB_DATAGEN_TEXTGEN_H_
