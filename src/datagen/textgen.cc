#include "datagen/textgen.h"

#include <algorithm>
#include <cmath>

#include "similarity/tokenizer.h"

namespace simdb::datagen {

using adm::Value;

TextProfile AmazonProfile() {
  TextProfile p;
  p.label = "amazon";
  p.name_field = "reviewerName";
  p.text_field = "summary";
  p.vocab_size = 2000;
  p.avg_words = 4;
  p.max_words = 44;
  p.name_pool_size = 300;
  return p;
}

TextProfile RedditProfile() {
  TextProfile p;
  p.label = "reddit";
  p.name_field = "author";
  p.text_field = "title";
  p.vocab_size = 4000;
  p.avg_words = 12;  // scaled stand-in for the paper's very long titles
  p.max_words = 120;
  p.name_pool_size = 500;
  p.name_suffix_rate = 0.9;  // reddit authors look like "name_1234"
  return p;
}

TextProfile TwitterProfile() {
  TextProfile p;
  p.label = "twitter";
  p.name_field = "user_name";
  p.text_field = "text";
  p.vocab_size = 3000;
  p.avg_words = 10;
  p.max_words = 70;
  p.name_pool_size = 400;
  return p;
}

namespace {

// All syllables are exactly two characters so that the little-endian
// syllable decomposition in Word() parses uniquely (injective ranks).
constexpr const char* kSyllables[] = {
    "ba", "ri", "to", "ma", "lu", "ke", "sa", "do", "vi", "na",
    "pe", "go", "ti", "ra", "mo", "ch", "le", "qu", "za", "fe"};
constexpr size_t kNumSyllables = sizeof(kSyllables) / sizeof(kSyllables[0]);

constexpr const char* kBaseNames[] = {
    "james", "mary",   "robert", "patricia", "john",   "jennifer",
    "michael", "linda", "david", "elizabeth", "william", "barbara",
    "richard", "susan", "joseph", "jessica",  "thomas", "sarah",
    "charles", "karen", "maria",  "marla",    "mario",  "jamie",
    "daniel",  "nancy", "matthew", "lisa",    "anthony", "betty",
    "mark",    "helen", "donald", "sandra",   "steven",  "donna",
    "paul",    "carol", "andrew", "ruth",     "joshua",  "sharon",
    "kenneth", "michelle", "kevin", "laura",  "brian",   "amy"};
constexpr size_t kNumBaseNames = sizeof(kBaseNames) / sizeof(kBaseNames[0]);

}  // namespace

TextDatasetGenerator::TextDatasetGenerator(TextProfile profile, uint64_t seed)
    : profile_(std::move(profile)),
      rng_(seed),
      zipf_(static_cast<uint64_t>(profile_.vocab_size), profile_.zipf_skew) {
  // Build the name pool: base names, optionally suffixed with digits.
  name_pool_.reserve(static_cast<size_t>(profile_.name_pool_size));
  for (int i = 0; i < profile_.name_pool_size; ++i) {
    std::string name(kBaseNames[static_cast<size_t>(i) % kNumBaseNames]);
    if (rng_.NextDouble() < profile_.name_suffix_rate) {
      name += std::to_string(rng_.Uniform(1000));
    }
    name_pool_.push_back(std::move(name));
  }
}

std::string TextDatasetGenerator::Word(uint64_t rank) const {
  // Decompose the rank in base-kNumSyllables so every rank maps to a unique
  // pronounceable word of 2+ syllables.
  // Minimum two syllables; little-endian digits in base kNumSyllables.
  std::string word = kSyllables[rank % kNumSyllables];
  uint64_t v = rank / kNumSyllables;
  word += kSyllables[v % kNumSyllables];
  v /= kNumSyllables;
  while (v > 0) {
    word += kSyllables[v % kNumSyllables];
    v /= kNumSyllables;
  }
  return word;
}

std::string TextDatasetGenerator::PerturbName(const std::string& name) {
  std::string out = name;
  int edits = 1 + static_cast<int>(rng_.Uniform(2));
  for (int e = 0; e < edits && !out.empty(); ++e) {
    size_t pos = rng_.Uniform(out.size());
    char c = static_cast<char>('a' + rng_.Uniform(26));
    switch (rng_.Uniform(3)) {
      case 0:
        out[pos] = c;
        break;
      case 1:
        out.insert(pos, 1, c);
        break;
      default:
        out.erase(pos, 1);
    }
  }
  return out.empty() ? name : out;
}

std::string TextDatasetGenerator::PerturbText(const std::string& text) {
  std::vector<std::string> words = similarity::WordTokens(text);
  if (words.empty()) return text;
  int edits = 1 + static_cast<int>(rng_.Uniform(2));
  for (int e = 0; e < edits && !words.empty(); ++e) {
    size_t pos = rng_.Uniform(words.size());
    switch (rng_.Uniform(3)) {
      case 0:
        words[pos] = Word(zipf_.Next(rng_));
        break;
      case 1:
        words.insert(words.begin() + static_cast<std::ptrdiff_t>(pos),
                     Word(zipf_.Next(rng_)));
        break;
      default:
        words.erase(words.begin() + static_cast<std::ptrdiff_t>(pos));
    }
  }
  if (words.empty()) words.push_back(Word(zipf_.Next(rng_)));
  std::string out;
  for (size_t i = 0; i < words.size(); ++i) {
    if (i > 0) out += ' ';
    out += words[i];
  }
  return out;
}

std::string TextDatasetGenerator::MakeName() {
  if (!names_.empty() && rng_.NextDouble() < profile_.name_typo_rate) {
    return PerturbName(names_[rng_.Uniform(names_.size())]);
  }
  return name_pool_[rng_.Uniform(name_pool_.size())];
}

std::string TextDatasetGenerator::MakeText() {
  if (!texts_.empty() && rng_.NextDouble() < profile_.near_duplicate_rate) {
    return PerturbText(texts_[rng_.Uniform(texts_.size())]);
  }
  // Exponential length distribution clipped to [min_words, max_words].
  double u = rng_.NextDouble();
  int len = static_cast<int>(
      std::round(-std::log(1.0 - u) * profile_.avg_words));
  len = std::clamp(len, profile_.min_words, profile_.max_words);
  std::string out;
  for (int i = 0; i < len; ++i) {
    if (i > 0) out += ' ';
    out += Word(zipf_.Next(rng_));
  }
  return out;
}

Value TextDatasetGenerator::NextRecord(int64_t id) {
  std::string name = MakeName();
  std::string text = MakeText();
  names_.push_back(name);
  texts_.push_back(text);
  return Value::MakeObject({{"id", Value::Int64(id)},
                            {profile_.name_field, Value::String(name)},
                            {profile_.text_field, Value::String(text)}});
}

WorkloadSampler::WorkloadSampler(std::vector<std::string> values,
                                 uint64_t seed)
    : values_(std::move(values)), rng_(seed) {}

Result<std::string> WorkloadSampler::SampleWithMinWords(int min_words) {
  for (int attempt = 0; attempt < 10000; ++attempt) {
    const std::string& v = values_[rng_.Uniform(values_.size())];
    if (static_cast<int>(similarity::WordTokens(v).size()) >= min_words) {
      return v;
    }
  }
  return Status::NotFound("no value with >= " + std::to_string(min_words) +
                          " words");
}

Result<std::string> WorkloadSampler::SampleWithMinChars(int min_chars) {
  for (int attempt = 0; attempt < 10000; ++attempt) {
    const std::string& v = values_[rng_.Uniform(values_.size())];
    if (static_cast<int>(v.size()) >= min_chars) return v;
  }
  return Status::NotFound("no value with >= " + std::to_string(min_chars) +
                          " chars");
}

}  // namespace simdb::datagen
