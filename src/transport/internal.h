#ifndef SIMDB_TRANSPORT_INTERNAL_H_
#define SIMDB_TRANSPORT_INTERNAL_H_

#include <memory>

#include "observability/metrics.h"
#include "transport/transport.h"

namespace simdb::transport::internal {

/// Cached handles to the transport.* metrics (registry lookups take a mutex;
/// shipping is a hot path). Construction registers every name, so a snapshot
/// taken after MakeTransport always shows the full catalogue — the two-way
/// check in CI depends on that.
struct Metrics {
  obs::Counter* frames_sent;
  obs::Counter* frames_received;
  obs::Counter* bytes_sent;
  obs::Counter* bytes_received;
  obs::Counter* ship_errors;
  obs::Counter* drains;
  obs::Counter* workers_spawned;
  obs::Histogram* serialize_nanos;
  obs::Histogram* deserialize_nanos;
  obs::Histogram* rtt_micros;
};

Metrics& GetMetrics();

/// Cached handles to the transport.fragment.* metrics (docs/DISTRIBUTED.md).
/// Registered separately from Metrics and only by the socket backend: the
/// modeled/shm backends never dispatch fragments, and registering the names
/// for them would put emitted-but-never-incremented metrics into every
/// paper-figure profile snapshot the catalogue check audits.
struct FragmentMetrics {
  obs::Counter* dispatched;
  obs::Counter* errors;
  obs::Counter* fallbacks;
  obs::Counter* cancels_sent;
  obs::Counter* request_bytes;
  obs::Counter* reply_bytes;
  obs::Histogram* remote_compute_micros;
};

FragmentMetrics& GetFragmentMetrics();

/// Parses the SIMDB_SOCKET_FRAGMENTS environment toggle. Fragment dispatch
/// is ON by default on the socket backend; "0"/"off"/"false" fall back to
/// the PR 8 echo protocol (workers validate and echo, partitions computed in
/// the parent) for A/B benchmarking.
bool SocketFragmentsFromEnv();

std::unique_ptr<Transport> MakeSharedMemoryTransport();
std::unique_ptr<Transport> MakeSocketTransport(int num_nodes);

}  // namespace simdb::transport::internal

#endif  // SIMDB_TRANSPORT_INTERNAL_H_
