#ifndef SIMDB_TRANSPORT_INTERNAL_H_
#define SIMDB_TRANSPORT_INTERNAL_H_

#include <memory>

#include "observability/metrics.h"
#include "transport/transport.h"

namespace simdb::transport::internal {

/// Cached handles to the transport.* metrics (registry lookups take a mutex;
/// shipping is a hot path). Construction registers every name, so a snapshot
/// taken after MakeTransport always shows the full catalogue — the two-way
/// check in CI depends on that.
struct Metrics {
  obs::Counter* frames_sent;
  obs::Counter* frames_received;
  obs::Counter* bytes_sent;
  obs::Counter* bytes_received;
  obs::Counter* ship_errors;
  obs::Counter* drains;
  obs::Counter* workers_spawned;
  obs::Histogram* serialize_nanos;
  obs::Histogram* deserialize_nanos;
  obs::Histogram* rtt_micros;
};

Metrics& GetMetrics();

std::unique_ptr<Transport> MakeSharedMemoryTransport();
std::unique_ptr<Transport> MakeSocketTransport(int num_nodes);

}  // namespace simdb::transport::internal

#endif  // SIMDB_TRANSPORT_INTERNAL_H_
