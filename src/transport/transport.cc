#include "transport/transport.h"

#include <chrono>
#include <cstdlib>
#include <cstring>

#include "adm/wire.h"
#include "transport/internal.h"

namespace simdb::transport {

namespace {

uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// The paper-figure backend: no bytes move, nothing is timed; the exchange
/// keeps its counted traffic and the cost model charges the modeled network
/// formula, exactly as before the transport seam existed.
class ModeledTransport final : public Transport {
 public:
  TransportKind kind() const override { return TransportKind::kModeled; }
  bool measures_wall_clock() const override { return false; }
  bool ShouldShip(size_t, uint64_t) const override { return false; }
  Status Ship(int, hyracks::Rows*, double*) override { return Status::OK(); }
  Status Drain(double) override {
    internal::GetMetrics().drains->Increment();
    return Status::OK();
  }
};

/// Installed fragment interpreter. Written once, during static
/// initialization of hyracks/fragment.cc (single-threaded, pre-main, and
/// pre-fork), read-only afterwards — so plain loads are race-free and the
/// forked workers inherit the pointer.
FragmentInterpreter g_fragment_interpreter = nullptr;

}  // namespace

Status Transport::ExecuteFragment(int, const std::string&, std::string*,
                                  double*) {
  return Status::Unsupported(std::string("transport '") + name() +
                             "' does not execute fragments");
}

Status Transport::CancelFragments(uint64_t, double) { return Status::OK(); }

std::vector<int> Transport::worker_pids() { return {}; }

void InstallFragmentInterpreter(FragmentInterpreter fn) {
  g_fragment_interpreter = fn;
}

FragmentInterpreter InstalledFragmentInterpreter() {
  return g_fragment_interpreter;
}

namespace internal {

Metrics& GetMetrics() {
  static Metrics m = [] {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
    Metrics handles;
    handles.frames_sent = reg.GetCounter("transport.frames_sent");
    handles.frames_received = reg.GetCounter("transport.frames_received");
    handles.bytes_sent = reg.GetCounter("transport.bytes_sent");
    handles.bytes_received = reg.GetCounter("transport.bytes_received");
    handles.ship_errors = reg.GetCounter("transport.ship_errors");
    handles.drains = reg.GetCounter("transport.drains");
    handles.workers_spawned = reg.GetCounter("transport.workers_spawned");
    handles.serialize_nanos = reg.GetHistogram("transport.serialize_nanos");
    handles.deserialize_nanos =
        reg.GetHistogram("transport.deserialize_nanos");
    handles.rtt_micros = reg.GetHistogram("transport.rtt_micros");
    return handles;
  }();
  return m;
}

FragmentMetrics& GetFragmentMetrics() {
  static FragmentMetrics m = [] {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
    FragmentMetrics handles;
    handles.dispatched = reg.GetCounter("transport.fragment.dispatched");
    handles.errors = reg.GetCounter("transport.fragment.errors");
    handles.fallbacks = reg.GetCounter("transport.fragment.fallbacks");
    handles.cancels_sent = reg.GetCounter("transport.fragment.cancels_sent");
    handles.request_bytes = reg.GetCounter("transport.fragment.request_bytes");
    handles.reply_bytes = reg.GetCounter("transport.fragment.reply_bytes");
    handles.remote_compute_micros =
        reg.GetHistogram("transport.fragment.remote_compute_micros");
    return handles;
  }();
  return m;
}

bool SocketFragmentsFromEnv() {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): read-only getenv at transport
  // construction, same idiom as KindFromEnv below.
  const char* env = std::getenv("SIMDB_SOCKET_FRAGMENTS");
  if (env == nullptr) return true;
  return std::strcmp(env, "0") != 0 && std::strcmp(env, "off") != 0 &&
         std::strcmp(env, "false") != 0;
}

}  // namespace internal

const char* TransportKindName(TransportKind kind) {
  switch (kind) {
    case TransportKind::kModeled:
      return "modeled";
    case TransportKind::kSharedMemory:
      return "shm";
    case TransportKind::kSocket:
      return "socket";
  }
  return "unknown";
}

TransportKind KindFromEnv(TransportKind fallback) {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): read-only getenv at engine
  // construction, same idiom as the SIMDB_SIMD override.
  const char* env = std::getenv("SIMDB_TRANSPORT");
  if (env == nullptr) return fallback;
  if (std::strcmp(env, "modeled") == 0) return TransportKind::kModeled;
  if (std::strcmp(env, "shm") == 0 || std::strcmp(env, "shared-memory") == 0) {
    return TransportKind::kSharedMemory;
  }
  if (std::strcmp(env, "socket") == 0) return TransportKind::kSocket;
  return fallback;
}

void EncodeRowsFrame(const hyracks::Rows& rows, std::string* out) {
  internal::Metrics& m = internal::GetMetrics();
  uint64_t start = NowNanos();
  std::string payload;
  ByteWriter w(&payload);
  w.PutU32(static_cast<uint32_t>(rows.size()));
  for (const hyracks::Tuple& row : rows) {
    w.PutU32(static_cast<uint32_t>(row.size()));
    for (const adm::Value& v : row) v.Serialize(&w);
  }
  adm::WriteFrame(payload, out);
  m.serialize_nanos->Observe(NowNanos() - start);
  m.frames_sent->Increment();
  m.bytes_sent->Add(out->size());
}

Result<hyracks::Rows> DecodeRowsFrame(std::string_view frame) {
  internal::Metrics& m = internal::GetMetrics();
  uint64_t start = NowNanos();
  ByteReader outer(frame);
  SIMDB_ASSIGN_OR_RETURN(std::string_view payload, adm::ReadFrame(&outer));
  ByteReader r(payload);
  SIMDB_ASSIGN_OR_RETURN(uint32_t nrows, r.GetU32());
  hyracks::Rows rows;
  rows.reserve(nrows);
  for (uint32_t i = 0; i < nrows; ++i) {
    SIMDB_ASSIGN_OR_RETURN(uint32_t ncols, r.GetU32());
    hyracks::Tuple row;
    row.reserve(ncols);
    for (uint32_t c = 0; c < ncols; ++c) {
      SIMDB_ASSIGN_OR_RETURN(adm::Value v, adm::Value::Deserialize(&r));
      row.push_back(std::move(v));
    }
    rows.push_back(std::move(row));
  }
  if (r.remaining() != 0) {
    return Status::Corruption("rows frame has " +
                              std::to_string(r.remaining()) +
                              " trailing payload bytes");
  }
  m.deserialize_nanos->Observe(NowNanos() - start);
  m.frames_received->Increment();
  m.bytes_received->Add(frame.size());
  return rows;
}

std::unique_ptr<Transport> MakeTransport(TransportKind kind, int num_nodes) {
  internal::GetMetrics();  // register the catalogue for every backend
  switch (kind) {
    case TransportKind::kModeled:
      return std::make_unique<ModeledTransport>();
    case TransportKind::kSharedMemory:
      return internal::MakeSharedMemoryTransport();
    case TransportKind::kSocket:
      return internal::MakeSocketTransport(num_nodes);
  }
  return std::make_unique<ModeledTransport>();
}

}  // namespace simdb::transport
