// Shared-memory backend: every built exchange destination is round-tripped
// through an in-process frame channel. The payload really is serialized
// (adm::Value::Serialize into a versioned/checksummed frame) and
// deserialized back, so the exchange path exercises genuine encode/decode on
// every query; only the transfer itself is a same-address-space handoff
// through a bounded pool of in-flight frame slots (capacity models the
// sender-side frame buffers of a real NIC path and gives concurrent queries
// real backpressure to contend on — the TSan CI job runs this backend).
#include <chrono>

#include "common/stopwatch.h"
#include "common/thread_annotations.h"
#include "transport/internal.h"

namespace simdb::transport {
namespace internal {

namespace {

class SharedMemoryTransport final : public Transport {
 public:
  /// In-flight frame slots shared by all shippers (all destinations): a
  /// shipper claims a slot for the duration of its transfer and blocks when
  /// every slot is busy.
  static constexpr int kFrameSlots = 8;

  TransportKind kind() const override { return TransportKind::kSharedMemory; }
  bool measures_wall_clock() const override { return true; }

  bool ShouldShip(size_t dest_rows, uint64_t) const override {
    // Ship every non-empty destination — local traffic too, so the 1x1
    // topology round-trips its rows as well and serde bugs cannot hide
    // behind "everything was local".
    return dest_rows > 0;
  }

  Status Ship(int, hyracks::Rows* rows, double* seconds) override {
    Stopwatch sw;
    std::string frame;
    EncodeRowsFrame(*rows, &frame);
    {
      MutexLock lock(mu_);
      while (free_slots_ == 0) slot_cv_.Wait(lock);
      --free_slots_;
    }
    // The frame is "in flight": it left the builder's ownership and is the
    // only copy of these rows (the caller's tuples may have been moved out
    // of the steal view). Deliver it back through the decoder.
    Result<hyracks::Rows> back = DecodeRowsFrame(frame);
    bool all_idle;
    {
      MutexLock lock(mu_);
      ++free_slots_;
      all_idle = free_slots_ == kFrameSlots;
    }
    // Shippers and drainers wait on distinct condition variables: a single
    // notify_one on a shared one could be consumed by a Drain waiter whose
    // predicate (all slots free) is still false, permanently stranding a
    // blocked shipper — a lost-wakeup deadlock.
    slot_cv_.NotifyOne();
    if (all_idle) idle_cv_.NotifyAll();
    if (!back.ok()) {
      GetMetrics().ship_errors->Increment();
      return back.status();
    }
    *rows = std::move(back).value();
    if (seconds != nullptr) *seconds = sw.ElapsedSeconds();
    GetMetrics().rtt_micros->Observe(
        static_cast<uint64_t>(sw.ElapsedSeconds() * 1e6));
    return Status::OK();
  }

  Status Drain(double timeout_seconds) override SIMDB_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    if (timeout_seconds > 0) {
      auto deadline = std::chrono::steady_clock::now() +
                      std::chrono::duration_cast<
                          std::chrono::steady_clock::duration>(
                          std::chrono::duration<double>(timeout_seconds));
      while (free_slots_ != kFrameSlots) {
        if (!idle_cv_.WaitUntil(lock, deadline)) {
          if (free_slots_ == kFrameSlots) break;  // woke at the deadline, idle
          return Status::DeadlineExceeded(
              "transport shm: drain timed out with " +
              std::to_string(kFrameSlots - free_slots_) +
              " frame slot(s) still in flight");
        }
      }
    } else {
      while (free_slots_ != kFrameSlots) idle_cv_.Wait(lock);
    }
    GetMetrics().drains->Increment();
    return Status::OK();
  }

 private:
  Mutex mu_{lockrank::Rank::kTransport, "SharedMemoryTransport::mu_"};
  CondVar slot_cv_;  // signaled when a slot frees up
  CondVar idle_cv_;  // signaled when every slot is free
  int free_slots_ SIMDB_GUARDED_BY(mu_) = kFrameSlots;
};

}  // namespace

std::unique_ptr<Transport> MakeSharedMemoryTransport() {
  return std::make_unique<SharedMemoryTransport>();
}

}  // namespace internal
}  // namespace simdb::transport
