// Shared-memory backend: every built exchange destination is round-tripped
// through an in-process frame channel. The payload really is serialized
// (adm::Value::Serialize into a versioned/checksummed frame) and
// deserialized back, so the exchange path exercises genuine encode/decode on
// every query; only the transfer itself is a same-address-space handoff
// through a bounded pool of in-flight frame slots (capacity models the
// sender-side frame buffers of a real NIC path and gives concurrent queries
// real backpressure to contend on — the TSan CI job runs this backend).
#include <condition_variable>
#include <mutex>

#include "common/stopwatch.h"
#include "transport/internal.h"

namespace simdb::transport {
namespace internal {

namespace {

class SharedMemoryTransport final : public Transport {
 public:
  /// In-flight frame slots shared by all shippers (all destinations): a
  /// shipper claims a slot for the duration of its transfer and blocks when
  /// every slot is busy.
  static constexpr int kFrameSlots = 8;

  TransportKind kind() const override { return TransportKind::kSharedMemory; }
  bool measures_wall_clock() const override { return true; }

  bool ShouldShip(size_t dest_rows, uint64_t) const override {
    // Ship every non-empty destination — local traffic too, so the 1x1
    // topology round-trips its rows as well and serde bugs cannot hide
    // behind "everything was local".
    return dest_rows > 0;
  }

  Status Ship(int, hyracks::Rows* rows, double* seconds) override {
    Stopwatch sw;
    std::string frame;
    EncodeRowsFrame(*rows, &frame);
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return free_slots_ > 0; });
      --free_slots_;
    }
    // The frame is "in flight": it left the builder's ownership and is the
    // only copy of these rows (the caller's tuples may have been moved out
    // of the steal view). Deliver it back through the decoder.
    Result<hyracks::Rows> back = DecodeRowsFrame(frame);
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++free_slots_;
    }
    cv_.notify_one();
    if (!back.ok()) {
      GetMetrics().ship_errors->Increment();
      return back.status();
    }
    *rows = std::move(back).value();
    if (seconds != nullptr) *seconds = sw.ElapsedSeconds();
    GetMetrics().rtt_micros->Observe(
        static_cast<uint64_t>(sw.ElapsedSeconds() * 1e6));
    return Status::OK();
  }

  Status Drain() override {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return free_slots_ == kFrameSlots; });
    GetMetrics().drains->Increment();
    return Status::OK();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  int free_slots_ = kFrameSlots;
};

}  // namespace

std::unique_ptr<Transport> MakeSharedMemoryTransport() {
  return std::make_unique<SharedMemoryTransport>();
}

}  // namespace internal
}  // namespace simdb::transport
