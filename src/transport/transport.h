#ifndef SIMDB_TRANSPORT_TRANSPORT_H_
#define SIMDB_TRANSPORT_TRANSPORT_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "hyracks/tuple.h"

namespace simdb::transport {

/// How exchange destinations move between partitions.
///
///   kModeled       no bytes move; the cluster cost model charges the
///                  counted exchange traffic against a bandwidth/latency
///                  model. This is the paper-figure backend and is
///                  bit-identical to the pre-transport engine.
///   kSharedMemory  every built destination is round-tripped through an
///                  in-process frame queue: rows are serialized with
///                  adm::Value::Serialize into a versioned/checksummed
///                  frame, handed across, and deserialized back. Real
///                  encode/decode on the exchange path, no processes.
///   kSocket        destinations with cross-node traffic are shipped over a
///                  UNIX socket pair to a forked worker process per cluster
///                  node, which validates, decodes, re-encodes, and replies.
///                  Bytes genuinely leave and re-enter the process; the
///                  measured wall clock replaces the modeled network charge.
///
/// All three backends must be answer- and error-identical: row serialization
/// is lossless, so the round trip is an identity on values, and ship
/// failures surface through the exchange build task, where the executors'
/// lowest-(node, partition)-wins rule keeps errors deterministic.
enum class TransportKind { kModeled, kSharedMemory, kSocket };

const char* TransportKindName(TransportKind kind);

/// Parses the SIMDB_TRANSPORT environment override ("modeled", "shm",
/// "socket"); returns `fallback` when unset or unrecognized. Lets CI flip
/// every engine in the process onto a backend without code changes.
TransportKind KindFromEnv(TransportKind fallback);

/// One exchange-transport backend. Instances are engine-owned and shared by
/// all of the engine's concurrent queries; Ship may be called from any pool
/// worker at any time.
class Transport {
 public:
  virtual ~Transport() = default;

  virtual TransportKind kind() const = 0;
  const char* name() const { return TransportKindName(kind()); }

  /// True when shipping does real timed work: the cost model then reports
  /// the measured transport seconds (already inside the exchange build
  /// times) instead of charging the modeled network formula on top.
  virtual bool measures_wall_clock() const = 0;

  /// Whether a built destination should cross this transport at all.
  /// `remote_bytes` is the destination's accounted cross-node traffic.
  virtual bool ShouldShip(size_t dest_rows, uint64_t remote_bytes) const = 0;

  /// Round-trips `*rows` through the backend (serialize -> transfer ->
  /// deserialize), replacing them with the copy that crossed. `dst_node`
  /// selects the destination worker (socket backend). `*seconds` receives
  /// the wall-clock spent shipping. Thread-safe.
  virtual Status Ship(int dst_node, hyracks::Rows* rows, double* seconds) = 0;

  /// Blocks until every in-flight transfer has settled and remote workers
  /// are provably idle (socket: a control-channel ping per live worker).
  /// Called by the serving layer after a cancellation or deadline so a dead
  /// query leaves no bytes in flight. A positive `timeout_seconds` bounds
  /// the wait — under sustained shipping by unrelated concurrent queries an
  /// unbounded drain could starve the caller — and a timeout returns
  /// kDeadlineExceeded without disturbing transport state (it is safe to
  /// keep shipping and to drain again). Non-positive waits indefinitely.
  /// [[nodiscard]] beyond Status's own: a dropped drain status hides dead
  /// socket workers and stuck frames behind an apparent clean shutdown.
  [[nodiscard]] virtual Status Drain(double timeout_seconds) = 0;
  [[nodiscard]] Status Drain() { return Drain(/*timeout_seconds=*/0.0); }

  /// True when this backend executes fragment closures inside remote worker
  /// processes (socket backend with fragment dispatch enabled; see
  /// SIMDB_SOCKET_FRAGMENTS in docs/DISTRIBUTED.md). The executors consult
  /// this before attempting a remote build; the default backends compute
  /// every destination locally.
  virtual bool remote_execution() const { return false; }

  /// Sends one encoded kFragment request payload to `dst_node`'s worker and
  /// blocks for its reply. On success `*reply_payload` receives the
  /// checksum-validated kFragmentResult payload and `*seconds` the full
  /// round-trip wall clock (serialize + transfer + remote compute +
  /// transfer). A kFragmentError reply decodes back into exactly the Status
  /// the worker produced. Thread-safe; one fragment in flight per worker.
  virtual Status ExecuteFragment(int dst_node,
                                 const std::string& request_payload,
                                 std::string* reply_payload, double* seconds);

  /// Broadcasts kCancelFragment for `query_id` to every worker so fragments
  /// of a cancelled query are refused before execution. A positive
  /// `timeout_seconds` bounds the whole broadcast (one shared deadline across
  /// workers, like Drain); a timeout returns kDeadlineExceeded without
  /// disturbing transport state. No-op (OK) on backends without remote
  /// execution.
  [[nodiscard]] virtual Status CancelFragments(uint64_t query_id,
                                               double timeout_seconds);

  /// Pids of the live worker processes (socket backend; empty elsewhere).
  /// Exposed for the worker-death injection tests.
  virtual std::vector<int> worker_pids();
};

/// Outcome of interpreting one fragment request inside a worker: `payload`
/// is a kFragmentResult payload when `ok`, an encoded fragment-error payload
/// (adm::EncodeFragmentError) otherwise. The interpreter never throws or
/// exits; every failure becomes an encoded Status the parent can decode.
struct FragmentReply {
  bool ok = false;
  std::string payload;
};

/// Worker-side fragment interpreter. The transport library sits below the
/// operator library and cannot depend on it, so the execution layer
/// (hyracks/fragment.cc) installs its interpreter here during static
/// initialization — before main(), and therefore before any worker fork —
/// and the forked workers inherit the installed pointer.
using FragmentInterpreter = FragmentReply (*)(std::string_view request_payload);

void InstallFragmentInterpreter(FragmentInterpreter fn);
FragmentInterpreter InstalledFragmentInterpreter();

/// Builds a backend for a cluster of `num_nodes` nodes and pre-registers
/// every transport.* metric (see docs/TRANSPORT.md) so registry snapshots
/// always carry the full catalogue.
std::unique_ptr<Transport> MakeTransport(TransportKind kind, int num_nodes);

/// Serializes `rows` into one versioned/checksummed adm wire frame
/// ([u32 row count][per row: u32 column count, each value via
/// adm::Value::Serialize]) appended to `*out`. Records
/// transport.serialize_nanos and transport.bytes_sent.
void EncodeRowsFrame(const hyracks::Rows& rows, std::string* out);

/// Inverse of EncodeRowsFrame: validates the frame header and checksum,
/// then decodes the rows. Records transport.deserialize_nanos and
/// transport.bytes_received.
Result<hyracks::Rows> DecodeRowsFrame(std::string_view frame);

}  // namespace simdb::transport

#endif  // SIMDB_TRANSPORT_TRANSPORT_H_
