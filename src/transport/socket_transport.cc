// Socket backend: one forked worker process per cluster node, connected by a
// SOCK_STREAM socketpair. A ship sends the destination's rows as
//
//   [u8 message type][adm wire frame: magic, version, length, CRC-32, payload]
//
// to the destination node's worker, which validates the checksum, decodes the
// rows, re-encodes them, and replies. The bytes genuinely leave and re-enter
// the process, so framing or serde bugs fail loudly here, and the measured
// round-trip wall clock is what the cost model reports instead of the modeled
// network charge.
//
// Determinism: workers are pure functions of their input message, ships are
// synchronous request-reply under a per-worker mutex, and a worker failure
// surfaces as the build task's error, where the executors' lowest-(node,
// partition)-wins rule already makes error selection deterministic.
#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

#include "adm/wire.h"
#include "common/stopwatch.h"
#include "common/thread_annotations.h"
#include "transport/internal.h"

namespace simdb::transport {
namespace internal {

namespace {

/// Message types on the worker channel. Every request gets exactly one reply.
enum MessageType : uint8_t {
  kData = 1,      // rows frame; worker replies kData with re-encoded rows
  kPing = 2,      // empty frame; worker replies kPong (Drain liveness probe)
  kShutdown = 3,  // empty frame; worker exits, no reply
  kPong = 4,      // reply to kPing
  kError = 5,     // reply carrying an error-message payload
};

Status IoError(const std::string& what) {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): strerror's static buffer is only
  // read here, immediately, on the error path; glibc's is thread-local.
  return Status::Internal("transport socket: " + what + ": " +
                          std::strerror(errno));
}

Status WriteFull(int fd, const char* data, size_t n) {
  while (n > 0) {
    // MSG_NOSIGNAL: a dead worker must surface as EPIPE, not kill the server.
    ssize_t w = ::send(fd, data, n, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return IoError("send failed");
    }
    data += w;
    n -= static_cast<size_t>(w);
  }
  return Status::OK();
}

Status ReadFull(int fd, char* data, size_t n) {
  while (n > 0) {
    ssize_t r = ::read(fd, data, n);
    if (r < 0) {
      if (errno == EINTR) continue;
      return IoError("read failed");
    }
    if (r == 0) return Status::Internal("transport socket: worker closed");
    data += r;
    n -= static_cast<size_t>(r);
  }
  return Status::OK();
}

/// Upper bound on a frame payload accepted off the wire. A corrupted or
/// desynchronized stream must produce a Corruption status, not a multi-GiB
/// buffer resize (an uncatchable bad_alloc); real destination frames are
/// orders of magnitude below this.
constexpr uint32_t kMaxPayloadBytes = 1u << 30;  // 1 GiB

/// Reads one [type][frame] message. The frame is self-delimiting: its header
/// is fixed-size and carries the payload length. The magic, version, and
/// payload length are validated *before* the buffer is sized to the length
/// field, so garbage on the stream fails cleanly here (the CRC is checked
/// later by adm::ReadFrame when the payload is consumed).
Status ReadMessage(int fd, uint8_t* type, std::string* frame) {
  char t;
  SIMDB_RETURN_IF_ERROR(ReadFull(fd, &t, 1));
  *type = static_cast<uint8_t>(t);
  frame->resize(adm::kWireHeaderBytes);
  SIMDB_RETURN_IF_ERROR(ReadFull(fd, frame->data(), adm::kWireHeaderBytes));
  uint32_t magic;
  std::memcpy(&magic, frame->data(), 4);
  if (magic != adm::kWireMagic) {
    return Status::Corruption("transport socket: bad frame magic on stream");
  }
  uint8_t version = static_cast<uint8_t>((*frame)[4]);
  if (version != adm::kWireVersion) {
    return Status::Corruption("transport socket: unknown frame version " +
                              std::to_string(static_cast<int>(version)));
  }
  uint32_t payload_len;
  std::memcpy(&payload_len, frame->data() + 5, 4);  // after magic(4)+version(1)
  if (payload_len > kMaxPayloadBytes) {
    return Status::Corruption("transport socket: frame payload length " +
                              std::to_string(payload_len) +
                              " exceeds the wire maximum");
  }
  frame->resize(adm::kWireHeaderBytes + payload_len);
  return ReadFull(fd, frame->data() + adm::kWireHeaderBytes, payload_len);
}

Status WriteMessage(int fd, uint8_t type, const std::string& frame) {
  char t = static_cast<char>(type);
  SIMDB_RETURN_IF_ERROR(WriteFull(fd, &t, 1));
  return WriteFull(fd, frame.data(), frame.size());
}

/// The worker loop run in the forked child. Decode-then-re-encode (rather
/// than echoing bytes back) is deliberate: the reply the server decodes is a
/// worker-produced frame, so the rows cross the serde boundary twice per
/// ship, like a real sender->receiver hop.
[[noreturn]] void ServeWorker(int fd) {
  std::string empty_frame;
  adm::WriteFrame("", &empty_frame);
  for (;;) {
    uint8_t type = 0;
    std::string frame;
    if (!ReadMessage(fd, &type, &frame).ok()) _exit(0);
    switch (type) {
      case kPing:
        if (!WriteMessage(fd, kPong, empty_frame).ok()) _exit(0);
        break;
      case kShutdown:
        _exit(0);
      case kData: {
        Result<hyracks::Rows> rows = DecodeRowsFrame(frame);
        std::string reply;
        uint8_t reply_type;
        if (rows.ok()) {
          reply_type = kData;
          EncodeRowsFrame(rows.value(), &reply);
        } else {
          reply_type = kError;
          adm::WriteFrame(rows.status().message(), &reply);
        }
        if (!WriteMessage(fd, reply_type, reply).ok()) _exit(0);
        break;
      }
      default:
        _exit(0);  // protocol violation; the server will see a closed socket
    }
  }
}

/// Blocks until `fd` is readable or `deadline` passes.
Status WaitReadable(int fd, std::chrono::steady_clock::time_point deadline) {
  for (;;) {
    auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now());
    if (remaining.count() <= 0) {
      return Status::DeadlineExceeded(
          "transport socket: drain timed out waiting for a ping reply");
    }
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = POLLIN;
    pfd.revents = 0;
    int r = ::poll(&pfd, 1, static_cast<int>(remaining.count()));
    if (r < 0) {
      if (errno == EINTR) continue;
      return IoError("poll failed");
    }
    if (r == 0) {
      return Status::DeadlineExceeded(
          "transport socket: drain timed out waiting for a ping reply");
    }
    return Status::OK();
  }
}

class SocketTransport final : public Transport {
 public:
  explicit SocketTransport(int num_nodes)
      : workers_(static_cast<size_t>(num_nodes > 0 ? num_nodes : 1)) {
    // All workers are forked eagerly, here, while the engine is still being
    // constructed and effectively single-threaded. Forking lazily from a
    // pool worker of a busy multithreaded engine is hazardous: the child
    // inherits a snapshot of every lock (malloc arena, metrics registry,
    // histogram mutexes), and its first frame decode takes several of them —
    // if any other thread held one at the fork instant, the child deadlocks
    // and the parent's next read on that socket blocks forever.
    GetMetrics();  // materialize metric handles pre-fork, outside the child
    std::vector<int> parent_fds;
    parent_fds.reserve(workers_.size());
    for (Worker& w : workers_) {
      int sv[2];
      if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
        init_status_ = IoError("socketpair failed");
        return;
      }
      pid_t pid = ::fork();
      if (pid < 0) {
        ::close(sv[0]);
        ::close(sv[1]);
        init_status_ = IoError("fork failed");
        return;
      }
      if (pid == 0) {
        // Drop the inherited parent ends of earlier workers' channels so
        // each channel really closes when the parent closes its end.
        for (int fd : parent_fds) ::close(fd);
        ::close(sv[0]);
        ServeWorker(sv[1]);  // never returns
      }
      ::close(sv[1]);
      {
        // Construction is single-threaded; the lock only keeps the
        // annotated fd/pid guard discipline uniform.
        MutexLock lock(w.mu);
        w.fd = sv[0];
        w.pid = pid;
      }
      parent_fds.push_back(sv[0]);
      GetMetrics().workers_spawned->Increment();
    }
  }

  ~SocketTransport() override {
    for (Worker& w : workers_) {
      MutexLock lock(w.mu);
      if (w.pid < 0) continue;
      std::string empty_frame;
      adm::WriteFrame("", &empty_frame);
      // Best-effort: the worker may already be gone; waitpid below is the
      // authoritative cleanup either way.
      (void)WriteMessage(w.fd, kShutdown, empty_frame);
      ::close(w.fd);
      int status = 0;
      while (::waitpid(w.pid, &status, 0) < 0 && errno == EINTR) {
      }
    }
  }

  TransportKind kind() const override { return TransportKind::kSocket; }
  bool measures_wall_clock() const override { return true; }

  bool ShouldShip(size_t dest_rows, uint64_t remote_bytes) const override {
    // Only cross-node destinations pay for a process hop; purely local
    // traffic (remote_bytes == 0 under the deterministic exchange
    // accounting) stays in place, like a real cluster's same-node exchange.
    return dest_rows > 0 && remote_bytes > 0;
  }

  Status Ship(int dst_node, hyracks::Rows* rows, double* seconds) override {
    SIMDB_RETURN_IF_ERROR(init_status_);
    if (dst_node < 0 || static_cast<size_t>(dst_node) >= workers_.size()) {
      // Shipping to a clamped/default worker instead would mask topology
      // and routing bugs while reporting success; fail loudly.
      GetMetrics().ship_errors->Increment();
      return Status::Internal("transport socket: ship to out-of-range node " +
                              std::to_string(dst_node) + " (cluster has " +
                              std::to_string(workers_.size()) + " nodes)");
    }
    Stopwatch sw;
    std::string frame;
    EncodeRowsFrame(*rows, &frame);
    Worker& w = workers_[static_cast<size_t>(dst_node)];
    uint8_t reply_type = 0;
    std::string reply;
    {
      // One request-reply in flight per worker; ships to distinct nodes
      // proceed in parallel.
      MutexLock lock(w.mu);
      Stopwatch rtt;
      Status s = WriteMessage(w.fd, kData, frame);
      if (s.ok()) s = ReadMessage(w.fd, &reply_type, &reply);
      if (!s.ok()) {
        GetMetrics().ship_errors->Increment();
        return s;
      }
      GetMetrics().rtt_micros->Observe(
          static_cast<uint64_t>(rtt.ElapsedSeconds() * 1e6));
    }
    if (reply_type == kError) {
      GetMetrics().ship_errors->Increment();
      ByteReader r(reply);
      Result<std::string_view> msg = adm::ReadFrame(&r);
      return Status::Corruption(
          "transport worker for node " + std::to_string(dst_node) + ": " +
          (msg.ok() ? std::string(msg.value()) : "unreadable error reply"));
    }
    if (reply_type != kData) {
      GetMetrics().ship_errors->Increment();
      return Status::Internal("transport socket: unexpected reply type " +
                              std::to_string(static_cast<int>(reply_type)));
    }
    Result<hyracks::Rows> back = DecodeRowsFrame(reply);
    if (!back.ok()) {
      GetMetrics().ship_errors->Increment();
      return back.status();
    }
    *rows = std::move(back).value();
    if (seconds != nullptr) *seconds = sw.ElapsedSeconds();
    return Status::OK();
  }

  Status Drain(double timeout_seconds) override {
    SIMDB_RETURN_IF_ERROR(init_status_);
    bool bounded = timeout_seconds > 0;
    auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(bounded ? timeout_seconds : 0));
    for (size_t i = 0; i < workers_.size(); ++i) {
      Worker& w = workers_[i];
      if (bounded) {
        // A worker busy with another query's ship holds its mutex for that
        // ship's round trip; a bounded drain must not be starved behind a
        // sustained stream of them. Deadline-bounded TryLock polling
        // rather than timed_mutex::try_lock_until: the drain is cold, and
        // TSan has no interceptor for pthread_mutex_clocklock, so the timed
        // lock would raise false "unlock of unlocked mutex" reports in the
        // sanitizer CI job.
        while (!w.mu.TryLock()) {
          if (std::chrono::steady_clock::now() >= deadline) {
            return Status::DeadlineExceeded(
                "transport socket: drain timed out behind node " +
                std::to_string(i) + "'s in-flight ship");
          }
          std::this_thread::sleep_for(std::chrono::microseconds(500));
        }
      } else {
        w.mu.Lock();
      }
      Status pinged = PingWorkerLocked(w, i, bounded, deadline);
      w.mu.Unlock();
      SIMDB_RETURN_IF_ERROR(pinged);
    }
    GetMetrics().drains->Increment();
    return Status::OK();
  }

 private:
  struct Worker {
    /// One request-reply in flight per worker channel. Rank kTransport; the
    /// drain loop holds at most one worker mutex at a time (released before
    /// the next node's is taken), so same-rank nesting never occurs.
    Mutex mu{lockrank::Rank::kTransport, "SocketTransport::Worker::mu"};
    int fd SIMDB_GUARDED_BY(mu) = -1;
    pid_t pid SIMDB_GUARDED_BY(mu) = -1;
  };

  /// One ping round trip on an already-locked worker channel; split out so
  /// Drain's early error returns cannot skip the explicit Unlock.
  Status PingWorkerLocked(Worker& w, size_t node, bool bounded,
                          std::chrono::steady_clock::time_point deadline)
      SIMDB_REQUIRES(w.mu) {
    std::string empty_frame;
    adm::WriteFrame("", &empty_frame);
    SIMDB_RETURN_IF_ERROR(WriteMessage(w.fd, kPing, empty_frame));
    if (bounded) SIMDB_RETURN_IF_ERROR(WaitReadable(w.fd, deadline));
    uint8_t type = 0;
    std::string frame;
    SIMDB_RETURN_IF_ERROR(ReadMessage(w.fd, &type, &frame));
    if (type != kPong) {
      return Status::Internal("transport socket: node " +
                              std::to_string(node) +
                              " answered ping with type " +
                              std::to_string(static_cast<int>(type)));
    }
    return Status::OK();
  }

  std::vector<Worker> workers_;
  Status init_status_;  // first socketpair/fork failure, if any
};

}  // namespace

std::unique_ptr<Transport> MakeSocketTransport(int num_nodes) {
  return std::make_unique<SocketTransport>(num_nodes);
}

}  // namespace internal
}  // namespace simdb::transport
