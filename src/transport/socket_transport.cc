// Socket backend: one forked worker process per cluster node, connected by a
// SOCK_STREAM socketpair. A ship sends the destination's rows as
//
//   [u8 message type][adm wire frame: magic, version, length, CRC-32, payload]
//
// to the destination node's worker, which validates the checksum, decodes the
// rows, re-encodes them, and replies. The bytes genuinely leave and re-enter
// the process, so framing or serde bugs fail loudly here, and the measured
// round-trip wall clock is what the cost model reports instead of the modeled
// network charge.
//
// Determinism: workers are pure functions of their input message, ships are
// synchronous request-reply under a per-worker mutex, and a worker failure
// surfaces as the build task's error, where the executors' lowest-(node,
// partition)-wins rule already makes error selection deterministic.
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <mutex>
#include <vector>

#include "adm/wire.h"
#include "common/stopwatch.h"
#include "transport/internal.h"

namespace simdb::transport {
namespace internal {

namespace {

/// Message types on the worker channel. Every request gets exactly one reply.
enum MessageType : uint8_t {
  kData = 1,      // rows frame; worker replies kData with re-encoded rows
  kPing = 2,      // empty frame; worker replies kPong (Drain liveness probe)
  kShutdown = 3,  // empty frame; worker exits, no reply
  kPong = 4,      // reply to kPing
  kError = 5,     // reply carrying an error-message payload
};

Status IoError(const std::string& what) {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): strerror's static buffer is only
  // read here, immediately, on the error path; glibc's is thread-local.
  return Status::Internal("transport socket: " + what + ": " +
                          std::strerror(errno));
}

Status WriteFull(int fd, const char* data, size_t n) {
  while (n > 0) {
    // MSG_NOSIGNAL: a dead worker must surface as EPIPE, not kill the server.
    ssize_t w = ::send(fd, data, n, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return IoError("send failed");
    }
    data += w;
    n -= static_cast<size_t>(w);
  }
  return Status::OK();
}

Status ReadFull(int fd, char* data, size_t n) {
  while (n > 0) {
    ssize_t r = ::read(fd, data, n);
    if (r < 0) {
      if (errno == EINTR) continue;
      return IoError("read failed");
    }
    if (r == 0) return Status::Internal("transport socket: worker closed");
    data += r;
    n -= static_cast<size_t>(r);
  }
  return Status::OK();
}

/// Reads one [type][frame] message. The frame is self-delimiting: its header
/// is fixed-size and carries the payload length.
Status ReadMessage(int fd, uint8_t* type, std::string* frame) {
  char t;
  SIMDB_RETURN_IF_ERROR(ReadFull(fd, &t, 1));
  *type = static_cast<uint8_t>(t);
  frame->resize(adm::kWireHeaderBytes);
  SIMDB_RETURN_IF_ERROR(ReadFull(fd, frame->data(), adm::kWireHeaderBytes));
  uint32_t payload_len;
  std::memcpy(&payload_len, frame->data() + 5, 4);  // after magic(4)+version(1)
  frame->resize(adm::kWireHeaderBytes + payload_len);
  return ReadFull(fd, frame->data() + adm::kWireHeaderBytes, payload_len);
}

Status WriteMessage(int fd, uint8_t type, const std::string& frame) {
  char t = static_cast<char>(type);
  SIMDB_RETURN_IF_ERROR(WriteFull(fd, &t, 1));
  return WriteFull(fd, frame.data(), frame.size());
}

/// The worker loop run in the forked child. Decode-then-re-encode (rather
/// than echoing bytes back) is deliberate: the reply the server decodes is a
/// worker-produced frame, so the rows cross the serde boundary twice per
/// ship, like a real sender->receiver hop.
[[noreturn]] void ServeWorker(int fd) {
  std::string empty_frame;
  adm::WriteFrame("", &empty_frame);
  for (;;) {
    uint8_t type = 0;
    std::string frame;
    if (!ReadMessage(fd, &type, &frame).ok()) _exit(0);
    switch (type) {
      case kPing:
        if (!WriteMessage(fd, kPong, empty_frame).ok()) _exit(0);
        break;
      case kShutdown:
        _exit(0);
      case kData: {
        Result<hyracks::Rows> rows = DecodeRowsFrame(frame);
        std::string reply;
        uint8_t reply_type;
        if (rows.ok()) {
          reply_type = kData;
          EncodeRowsFrame(rows.value(), &reply);
        } else {
          reply_type = kError;
          adm::WriteFrame(rows.status().message(), &reply);
        }
        if (!WriteMessage(fd, reply_type, reply).ok()) _exit(0);
        break;
      }
      default:
        _exit(0);  // protocol violation; the server will see a closed socket
    }
  }
}

class SocketTransport final : public Transport {
 public:
  explicit SocketTransport(int num_nodes)
      : workers_(static_cast<size_t>(num_nodes > 0 ? num_nodes : 1)) {}

  ~SocketTransport() override {
    for (Worker& w : workers_) {
      if (w.pid < 0) continue;
      std::string empty_frame;
      adm::WriteFrame("", &empty_frame);
      (void)WriteMessage(w.fd, kShutdown, empty_frame);  // best-effort
      ::close(w.fd);
      int status = 0;
      while (::waitpid(w.pid, &status, 0) < 0 && errno == EINTR) {
      }
    }
  }

  TransportKind kind() const override { return TransportKind::kSocket; }
  bool measures_wall_clock() const override { return true; }

  bool ShouldShip(size_t dest_rows, uint64_t remote_bytes) const override {
    // Only cross-node destinations pay for a process hop; purely local
    // traffic (remote_bytes == 0 under the deterministic exchange
    // accounting) stays in place, like a real cluster's same-node exchange.
    return dest_rows > 0 && remote_bytes > 0;
  }

  Status Ship(int dst_node, hyracks::Rows* rows, double* seconds) override {
    Stopwatch sw;
    std::string frame;
    EncodeRowsFrame(*rows, &frame);
    size_t idx = static_cast<size_t>(dst_node) < workers_.size()
                     ? static_cast<size_t>(dst_node)
                     : 0;
    Worker& w = workers_[idx];
    uint8_t reply_type = 0;
    std::string reply;
    {
      // One request-reply in flight per worker; ships to distinct nodes
      // proceed in parallel.
      std::lock_guard<std::mutex> lock(w.mu);
      SIMDB_RETURN_IF_ERROR(EnsureSpawnedLocked(&w));
      Stopwatch rtt;
      Status s = WriteMessage(w.fd, kData, frame);
      if (s.ok()) s = ReadMessage(w.fd, &reply_type, &reply);
      if (!s.ok()) {
        GetMetrics().ship_errors->Increment();
        return s;
      }
      GetMetrics().rtt_micros->Observe(
          static_cast<uint64_t>(rtt.ElapsedSeconds() * 1e6));
    }
    if (reply_type == kError) {
      GetMetrics().ship_errors->Increment();
      ByteReader r(reply);
      Result<std::string_view> msg = adm::ReadFrame(&r);
      return Status::Corruption(
          "transport worker for node " + std::to_string(dst_node) + ": " +
          (msg.ok() ? std::string(msg.value()) : "unreadable error reply"));
    }
    if (reply_type != kData) {
      GetMetrics().ship_errors->Increment();
      return Status::Internal("transport socket: unexpected reply type " +
                              std::to_string(static_cast<int>(reply_type)));
    }
    Result<hyracks::Rows> back = DecodeRowsFrame(reply);
    if (!back.ok()) {
      GetMetrics().ship_errors->Increment();
      return back.status();
    }
    *rows = std::move(back).value();
    if (seconds != nullptr) *seconds = sw.ElapsedSeconds();
    return Status::OK();
  }

  Status Drain() override {
    std::string empty_frame;
    adm::WriteFrame("", &empty_frame);
    for (size_t i = 0; i < workers_.size(); ++i) {
      Worker& w = workers_[i];
      std::lock_guard<std::mutex> lock(w.mu);
      if (w.pid < 0) continue;  // never spawned: trivially idle
      SIMDB_RETURN_IF_ERROR(WriteMessage(w.fd, kPing, empty_frame));
      uint8_t type = 0;
      std::string frame;
      SIMDB_RETURN_IF_ERROR(ReadMessage(w.fd, &type, &frame));
      if (type != kPong) {
        return Status::Internal("transport socket: node " + std::to_string(i) +
                                " answered ping with type " +
                                std::to_string(static_cast<int>(type)));
      }
    }
    GetMetrics().drains->Increment();
    return Status::OK();
  }

 private:
  struct Worker {
    std::mutex mu;
    int fd = -1;
    pid_t pid = -1;
  };

  /// Forks the node's worker on first ship to it. Caller holds w->mu.
  Status EnsureSpawnedLocked(Worker* w) {
    if (w->pid >= 0) return Status::OK();
    int sv[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
      return IoError("socketpair failed");
    }
    pid_t pid = ::fork();
    if (pid < 0) {
      ::close(sv[0]);
      ::close(sv[1]);
      return IoError("fork failed");
    }
    if (pid == 0) {
      ::close(sv[0]);
      ServeWorker(sv[1]);  // never returns
    }
    ::close(sv[1]);
    w->fd = sv[0];
    w->pid = pid;
    GetMetrics().workers_spawned->Increment();
    return Status::OK();
  }

  std::vector<Worker> workers_;
};

}  // namespace

std::unique_ptr<Transport> MakeSocketTransport(int num_nodes) {
  return std::make_unique<SocketTransport>(num_nodes);
}

}  // namespace internal
}  // namespace simdb::transport
