// Socket backend: one forked worker process per cluster node, connected by a
// SOCK_STREAM socketpair. Every message is
//
//   [u8 message type][adm wire frame: magic, version, length, CRC-32, payload]
//
// (full reference: docs/DISTRIBUTED.md). Two execution modes share the
// channel:
//
//   echo (kData)          the destination's rows are shipped to the owning
//                         node's worker, which validates the checksum,
//                         decodes, re-encodes, and replies — the PR 8
//                         serialization loopback.
//   fragments (kFragment) the destination is *computed* in the worker: the
//                         parent ships the operator closure plus the input
//                         slice, the worker runs the installed fragment
//                         interpreter (hyracks/fragment.cc) and replies
//                         kFragmentResult with the built rows and its own
//                         accounting, or kFragmentError with an encoded
//                         Status. Enabled by default; SIMDB_SOCKET_FRAGMENTS=0
//                         falls back to echo mode.
//
// The bytes genuinely leave and re-enter the process, so framing or serde
// bugs fail loudly here, and the measured round-trip wall clock is what the
// cost model reports instead of the modeled network charge.
//
// Determinism: workers are pure functions of their input message, requests
// are synchronous request-reply under a per-worker mutex, and a worker
// failure surfaces as the build task's error, where the executors'
// lowest-(node, partition)-wins rule already makes error selection
// deterministic. A vanished worker (EOF/EPIPE/ECONNRESET) is always
// kUnavailable, so worker-death failures are programmatically recognizable.
#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

#include "adm/wire.h"
#include "common/stopwatch.h"
#include "common/thread_annotations.h"
#include "transport/internal.h"

namespace simdb::transport {
namespace internal {

namespace {

/// Message-type byte for the [u8 type][frame] channel protocol. The values
/// live in adm::WireMessage so the wire-frame fuzzer and docs share them;
/// this helper keeps switch labels and comparisons readable.
constexpr uint8_t AsByte(adm::WireMessage m) { return static_cast<uint8_t>(m); }

constexpr uint8_t kData = AsByte(adm::WireMessage::kData);
constexpr uint8_t kPing = AsByte(adm::WireMessage::kPing);
constexpr uint8_t kShutdown = AsByte(adm::WireMessage::kShutdown);
constexpr uint8_t kPong = AsByte(adm::WireMessage::kPong);
constexpr uint8_t kError = AsByte(adm::WireMessage::kError);
constexpr uint8_t kFragment = AsByte(adm::WireMessage::kFragment);
constexpr uint8_t kFragmentResult = AsByte(adm::WireMessage::kFragmentResult);
constexpr uint8_t kFragmentError = AsByte(adm::WireMessage::kFragmentError);
constexpr uint8_t kCancelFragment = AsByte(adm::WireMessage::kCancelFragment);

Status IoError(const std::string& what) {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): strerror's static buffer is only
  // read here, immediately, on the error path; glibc's is thread-local.
  return Status::Internal("transport socket: " + what + ": " +
                          std::strerror(errno));
}

/// A vanished peer process. Always kUnavailable — the worker-death tests and
/// the serving layer distinguish "worker gone" from local IO trouble by code.
Status WorkerGone(const std::string& what) {
  return Status::Unavailable("transport socket: worker gone: " + what);
}

Status WriteFull(int fd, const char* data, size_t n) {
  while (n > 0) {
    // MSG_NOSIGNAL: a dead worker must surface as EPIPE, not kill the server.
    ssize_t w = ::send(fd, data, n, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      if (errno == EPIPE || errno == ECONNRESET) {
        return WorkerGone("send hit a closed channel");
      }
      return IoError("send failed");
    }
    data += w;
    n -= static_cast<size_t>(w);
  }
  return Status::OK();
}

Status ReadFull(int fd, char* data, size_t n) {
  while (n > 0) {
    ssize_t r = ::read(fd, data, n);
    if (r < 0) {
      if (errno == EINTR) continue;
      if (errno == ECONNRESET) return WorkerGone("read hit a reset channel");
      return IoError("read failed");
    }
    if (r == 0) return WorkerGone("worker closed the channel");
    data += r;
    n -= static_cast<size_t>(r);
  }
  return Status::OK();
}

/// Upper bound on a frame payload accepted off the wire. A corrupted or
/// desynchronized stream must produce a Corruption status, not a multi-GiB
/// buffer resize (an uncatchable bad_alloc); real destination frames are
/// orders of magnitude below this.
constexpr uint32_t kMaxPayloadBytes = 1u << 30;  // 1 GiB

/// Reads one [type][frame] message. The frame is self-delimiting: its header
/// is fixed-size and carries the payload length. The magic, version, and
/// payload length are validated *before* the buffer is sized to the length
/// field, so garbage on the stream fails cleanly here (the CRC is checked
/// later by adm::ReadFrame when the payload is consumed).
Status ReadMessage(int fd, uint8_t* type, std::string* frame) {
  char t;
  SIMDB_RETURN_IF_ERROR(ReadFull(fd, &t, 1));
  *type = static_cast<uint8_t>(t);
  frame->resize(adm::kWireHeaderBytes);
  SIMDB_RETURN_IF_ERROR(ReadFull(fd, frame->data(), adm::kWireHeaderBytes));
  uint32_t magic;
  std::memcpy(&magic, frame->data(), 4);
  if (magic != adm::kWireMagic) {
    return Status::Corruption("transport socket: bad frame magic on stream");
  }
  uint8_t version = static_cast<uint8_t>((*frame)[4]);
  if (version != adm::kWireVersion) {
    return Status::Corruption("transport socket: unknown frame version " +
                              std::to_string(static_cast<int>(version)));
  }
  uint32_t payload_len;
  std::memcpy(&payload_len, frame->data() + 5, 4);  // after magic(4)+version(1)
  if (payload_len > kMaxPayloadBytes) {
    return Status::Corruption("transport socket: frame payload length " +
                              std::to_string(payload_len) +
                              " exceeds the wire maximum");
  }
  frame->resize(adm::kWireHeaderBytes + payload_len);
  return ReadFull(fd, frame->data() + adm::kWireHeaderBytes, payload_len);
}

Status WriteMessage(int fd, uint8_t type, const std::string& frame) {
  char t = static_cast<char>(type);
  SIMDB_RETURN_IF_ERROR(WriteFull(fd, &t, 1));
  return WriteFull(fd, frame.data(), frame.size());
}

/// Recently cancelled query ids remembered by a worker. Sixteen entries is
/// generous — the serving layer cancels queries one at a time and a stale
/// entry only matters while that query still has fragments in flight.
struct CancelLedger {
  std::array<uint64_t, 16> ids{};
  size_t next = 0;

  void Record(uint64_t query_id) {
    ids[next] = query_id;
    next = (next + 1) % ids.size();
  }
  bool Contains(uint64_t query_id) const {
    // Query id 0 means "unattributed" (a query outside the serving layer);
    // those are never cancelled remotely.
    if (query_id == 0) return false;
    for (uint64_t id : ids) {
      if (id == query_id) return true;
    }
    return false;
  }
};

/// Interprets one kFragment request payload inside the worker: checks the
/// cancel ledger against the leading query id, then hands the payload to the
/// installed interpreter. Always produces a reply (result or encoded error).
void HandleFragment(const CancelLedger& ledger, std::string_view payload,
                    uint8_t* reply_type, std::string* reply) {
  FragmentReply out;
  ByteReader peek(payload);
  Result<uint64_t> query_id = peek.GetU64();
  if (!query_id.ok()) {
    adm::EncodeFragmentError(query_id.status(), &out.payload);
  } else if (ledger.Contains(*query_id)) {
    adm::EncodeFragmentError(
        Status::Cancelled("fragment refused: query " +
                          std::to_string(*query_id) + " was cancelled"),
        &out.payload);
  } else if (InstalledFragmentInterpreter() == nullptr) {
    adm::EncodeFragmentError(
        Status::Unsupported("worker has no fragment interpreter installed"),
        &out.payload);
  } else {
    out = InstalledFragmentInterpreter()(payload);
  }
  *reply_type = out.ok ? kFragmentResult : kFragmentError;
  reply->clear();
  adm::WriteFrame(out.payload, reply);
}

/// The worker loop run in the forked child. For kData, decode-then-re-encode
/// (rather than echoing bytes back) is deliberate: the reply the server
/// decodes is a worker-produced frame, so the rows cross the serde boundary
/// twice per ship, like a real sender->receiver hop. For kFragment the worker
/// *computes* the destination via the installed interpreter — the parent
/// never materializes it.
[[noreturn]] void ServeWorker(int fd) {
  std::string empty_frame;
  adm::WriteFrame("", &empty_frame);
  CancelLedger cancelled;
  for (;;) {
    uint8_t type = 0;
    std::string frame;
    if (!ReadMessage(fd, &type, &frame).ok()) _exit(0);
    switch (type) {
      case kPing:
        if (!WriteMessage(fd, kPong, empty_frame).ok()) _exit(0);
        break;
      case kShutdown:
        _exit(0);
      case kData: {
        Result<hyracks::Rows> rows = DecodeRowsFrame(frame);
        std::string reply;
        uint8_t reply_type;
        if (rows.ok()) {
          reply_type = kData;
          EncodeRowsFrame(rows.value(), &reply);
        } else {
          reply_type = kError;
          adm::WriteFrame(rows.status().message(), &reply);
        }
        if (!WriteMessage(fd, reply_type, reply).ok()) _exit(0);
        break;
      }
      case kFragment: {
        ByteReader outer(frame);
        Result<std::string_view> payload = adm::ReadFrame(&outer);
        uint8_t reply_type = kFragmentError;
        std::string reply;
        if (!payload.ok()) {
          std::string err;
          adm::EncodeFragmentError(payload.status(), &err);
          adm::WriteFrame(err, &reply);
        } else {
          HandleFragment(cancelled, *payload, &reply_type, &reply);
        }
        if (!WriteMessage(fd, reply_type, reply).ok()) _exit(0);
        break;
      }
      case kCancelFragment: {
        ByteReader outer(frame);
        Result<std::string_view> payload = adm::ReadFrame(&outer);
        if (payload.ok()) {
          ByteReader r(*payload);
          Result<uint64_t> query_id = r.GetU64();
          if (query_id.ok()) cancelled.Record(*query_id);
        }
        // Acknowledge even a malformed cancel: the parent's bounded wait
        // must not hang on a request that was merely unparseable.
        if (!WriteMessage(fd, kPong, empty_frame).ok()) _exit(0);
        break;
      }
      default:
        _exit(0);  // protocol violation; the server will see a closed socket
    }
  }
}

/// Blocks until `fd` is readable or `deadline` passes.
Status WaitReadable(int fd, std::chrono::steady_clock::time_point deadline) {
  for (;;) {
    auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now());
    if (remaining.count() <= 0) {
      return Status::DeadlineExceeded(
          "transport socket: drain timed out waiting for a ping reply");
    }
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = POLLIN;
    pfd.revents = 0;
    int r = ::poll(&pfd, 1, static_cast<int>(remaining.count()));
    if (r < 0) {
      if (errno == EINTR) continue;
      return IoError("poll failed");
    }
    if (r == 0) {
      return Status::DeadlineExceeded(
          "transport socket: drain timed out waiting for a ping reply");
    }
    return Status::OK();
  }
}

class SocketTransport final : public Transport {
 public:
  explicit SocketTransport(int num_nodes)
      : workers_(static_cast<size_t>(num_nodes > 0 ? num_nodes : 1)),
        fragments_enabled_(SocketFragmentsFromEnv()) {
    // All workers are forked eagerly, here, while the engine is still being
    // constructed and effectively single-threaded. Forking lazily from a
    // pool worker of a busy multithreaded engine is hazardous: the child
    // inherits a snapshot of every lock (malloc arena, metrics registry,
    // histogram mutexes), and its first frame decode takes several of them —
    // if any other thread held one at the fork instant, the child deadlocks
    // and the parent's next read on that socket blocks forever.
    GetMetrics();  // materialize metric handles pre-fork, outside the child
    GetFragmentMetrics();  // ditto for the transport.fragment.* catalogue
    std::vector<int> parent_fds;
    parent_fds.reserve(workers_.size());
    for (Worker& w : workers_) {
      int sv[2];
      if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
        init_status_ = IoError("socketpair failed");
        return;
      }
      pid_t pid = ::fork();
      if (pid < 0) {
        ::close(sv[0]);
        ::close(sv[1]);
        init_status_ = IoError("fork failed");
        return;
      }
      if (pid == 0) {
        // Drop the inherited parent ends of earlier workers' channels so
        // each channel really closes when the parent closes its end.
        for (int fd : parent_fds) ::close(fd);
        ::close(sv[0]);
        ServeWorker(sv[1]);  // never returns
      }
      ::close(sv[1]);
      {
        // Construction is single-threaded; the lock only keeps the
        // annotated fd/pid guard discipline uniform.
        MutexLock lock(w.mu);
        w.fd = sv[0];
        w.pid = pid;
      }
      parent_fds.push_back(sv[0]);
      GetMetrics().workers_spawned->Increment();
    }
  }

  ~SocketTransport() override {
    for (Worker& w : workers_) {
      MutexLock lock(w.mu);
      if (w.pid < 0) continue;
      std::string empty_frame;
      adm::WriteFrame("", &empty_frame);
      // Best-effort: the worker may already be gone; waitpid below is the
      // authoritative cleanup either way.
      (void)WriteMessage(w.fd, kShutdown, empty_frame);
      ::close(w.fd);
      int status = 0;
      while (::waitpid(w.pid, &status, 0) < 0 && errno == EINTR) {
      }
    }
  }

  TransportKind kind() const override { return TransportKind::kSocket; }
  bool measures_wall_clock() const override { return true; }

  bool ShouldShip(size_t dest_rows, uint64_t remote_bytes) const override {
    // Only cross-node destinations pay for a process hop; purely local
    // traffic (remote_bytes == 0 under the deterministic exchange
    // accounting) stays in place, like a real cluster's same-node exchange.
    return dest_rows > 0 && remote_bytes > 0;
  }

  Status Ship(int dst_node, hyracks::Rows* rows, double* seconds) override {
    SIMDB_RETURN_IF_ERROR(init_status_);
    if (dst_node < 0 || static_cast<size_t>(dst_node) >= workers_.size()) {
      // Shipping to a clamped/default worker instead would mask topology
      // and routing bugs while reporting success; fail loudly.
      GetMetrics().ship_errors->Increment();
      return Status::Internal("transport socket: ship to out-of-range node " +
                              std::to_string(dst_node) + " (cluster has " +
                              std::to_string(workers_.size()) + " nodes)");
    }
    Stopwatch sw;
    std::string frame;
    EncodeRowsFrame(*rows, &frame);
    Worker& w = workers_[static_cast<size_t>(dst_node)];
    uint8_t reply_type = 0;
    std::string reply;
    {
      // One request-reply in flight per worker; ships to distinct nodes
      // proceed in parallel.
      MutexLock lock(w.mu);
      Stopwatch rtt;
      Status s = ConsumePendingPongsLocked(w);
      if (s.ok()) s = WriteMessage(w.fd, kData, frame);
      if (s.ok()) s = ReadMessage(w.fd, &reply_type, &reply);
      if (!s.ok()) {
        GetMetrics().ship_errors->Increment();
        return s;
      }
      GetMetrics().rtt_micros->Observe(
          static_cast<uint64_t>(rtt.ElapsedSeconds() * 1e6));
    }
    if (reply_type == kError) {
      GetMetrics().ship_errors->Increment();
      ByteReader r(reply);
      Result<std::string_view> msg = adm::ReadFrame(&r);
      return Status::Corruption(
          "transport worker for node " + std::to_string(dst_node) + ": " +
          (msg.ok() ? std::string(msg.value()) : "unreadable error reply"));
    }
    if (reply_type != kData) {
      GetMetrics().ship_errors->Increment();
      return Status::Internal("transport socket: unexpected reply type " +
                              std::to_string(static_cast<int>(reply_type)));
    }
    Result<hyracks::Rows> back = DecodeRowsFrame(reply);
    if (!back.ok()) {
      GetMetrics().ship_errors->Increment();
      return back.status();
    }
    *rows = std::move(back).value();
    if (seconds != nullptr) *seconds = sw.ElapsedSeconds();
    return Status::OK();
  }

  Status Drain(double timeout_seconds) override {
    SIMDB_RETURN_IF_ERROR(init_status_);
    bool bounded = timeout_seconds > 0;
    auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(bounded ? timeout_seconds : 0));
    for (size_t i = 0; i < workers_.size(); ++i) {
      Worker& w = workers_[i];
      if (bounded) {
        // A worker busy with another query's ship holds its mutex for that
        // ship's round trip; a bounded drain must not be starved behind a
        // sustained stream of them. Deadline-bounded TryLock polling
        // rather than timed_mutex::try_lock_until: the drain is cold, and
        // TSan has no interceptor for pthread_mutex_clocklock, so the timed
        // lock would raise false "unlock of unlocked mutex" reports in the
        // sanitizer CI job.
        while (!w.mu.TryLock()) {
          if (std::chrono::steady_clock::now() >= deadline) {
            return Status::DeadlineExceeded(
                "transport socket: drain timed out behind node " +
                std::to_string(i) + "'s in-flight ship");
          }
          std::this_thread::sleep_for(std::chrono::microseconds(500));
        }
      } else {
        w.mu.Lock();
      }
      Status pinged = PingWorkerLocked(w, i, bounded, deadline);
      w.mu.Unlock();
      SIMDB_RETURN_IF_ERROR(pinged);
    }
    GetMetrics().drains->Increment();
    return Status::OK();
  }

  bool remote_execution() const override {
    return fragments_enabled_ && init_status_.ok();
  }

  Status ExecuteFragment(int dst_node, const std::string& request_payload,
                         std::string* reply_payload,
                         double* seconds) override {
    SIMDB_RETURN_IF_ERROR(init_status_);
    FragmentMetrics& fm = GetFragmentMetrics();
    if (!fragments_enabled_) {
      return Status::Unsupported(
          "transport socket: fragment dispatch disabled "
          "(SIMDB_SOCKET_FRAGMENTS=0)");
    }
    if (dst_node < 0 || static_cast<size_t>(dst_node) >= workers_.size()) {
      fm.errors->Increment();
      return Status::Internal(
          "transport socket: fragment for out-of-range node " +
          std::to_string(dst_node) + " (cluster has " +
          std::to_string(workers_.size()) + " nodes)");
    }
    Stopwatch sw;
    std::string frame;
    adm::WriteFrame(request_payload, &frame);
    fm.dispatched->Increment();
    fm.request_bytes->Add(frame.size());
    Worker& w = workers_[static_cast<size_t>(dst_node)];
    uint8_t reply_type = 0;
    std::string reply;
    {
      // Same discipline as Ship: one request-reply in flight per worker.
      MutexLock lock(w.mu);
      Status s = ConsumePendingPongsLocked(w);
      if (s.ok()) s = WriteMessage(w.fd, kFragment, frame);
      if (s.ok()) s = ReadMessage(w.fd, &reply_type, &reply);
      if (!s.ok()) {
        fm.errors->Increment();
        return s;
      }
    }
    fm.reply_bytes->Add(reply.size());
    ByteReader outer(reply);
    Result<std::string_view> payload = adm::ReadFrame(&outer);
    if (!payload.ok()) {
      fm.errors->Increment();
      return payload.status();
    }
    if (reply_type == kFragmentError) {
      fm.errors->Increment();
      // The carried Status is the worker's verdict, reproduced exactly —
      // error identity across backends depends on this.
      return adm::DecodeFragmentError(*payload);
    }
    if (reply_type != kFragmentResult) {
      fm.errors->Increment();
      return Status::Internal(
          "transport socket: unexpected fragment reply type " +
          std::to_string(static_cast<int>(reply_type)));
    }
    reply_payload->assign(payload->data(), payload->size());
    if (seconds != nullptr) *seconds = sw.ElapsedSeconds();
    return Status::OK();
  }

  Status CancelFragments(uint64_t query_id, double timeout_seconds) override {
    SIMDB_RETURN_IF_ERROR(init_status_);
    if (!fragments_enabled_) return Status::OK();
    bool bounded = timeout_seconds > 0;
    // One deadline shared by every worker (the Drain rule): N slow workers
    // must not consume N times the caller's budget.
    auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(bounded ? timeout_seconds : 0));
    std::string payload;
    ByteWriter bw(&payload);
    bw.PutU64(query_id);
    std::string frame;
    adm::WriteFrame(payload, &frame);
    for (size_t i = 0; i < workers_.size(); ++i) {
      Worker& w = workers_[i];
      if (bounded) {
        while (!w.mu.TryLock()) {
          if (std::chrono::steady_clock::now() >= deadline) {
            return Status::DeadlineExceeded(
                "transport socket: fragment cancel timed out behind node " +
                std::to_string(i) + "'s in-flight request");
          }
          std::this_thread::sleep_for(std::chrono::microseconds(500));
        }
      } else {
        w.mu.Lock();
      }
      Status sent = CancelWorkerLocked(w, i, frame, bounded, deadline);
      w.mu.Unlock();
      SIMDB_RETURN_IF_ERROR(sent);
    }
    return Status::OK();
  }

  std::vector<int> worker_pids() override {
    std::vector<int> pids;
    for (Worker& w : workers_) {
      MutexLock lock(w.mu);
      if (w.pid > 0) pids.push_back(static_cast<int>(w.pid));
    }
    return pids;
  }

 private:
  struct Worker {
    /// One request-reply in flight per worker channel. Rank kTransport; the
    /// drain loop holds at most one worker mutex at a time (released before
    /// the next node's is taken), so same-rank nesting never occurs.
    Mutex mu{lockrank::Rank::kTransport, "SocketTransport::Worker::mu"};
    int fd SIMDB_GUARDED_BY(mu) = -1;
    pid_t pid SIMDB_GUARDED_BY(mu) = -1;
    /// Replies written by the worker whose bounded wait timed out before
    /// they arrived (ping or cancel ack). They are still on the stream; the
    /// next request on this channel must consume them first or it would read
    /// a stale kPong as its own reply and desynchronize the protocol.
    int pending_pongs SIMDB_GUARDED_BY(mu) = 0;
  };

  /// Drains stale acknowledgements left by timed-out bounded waits (see
  /// Worker::pending_pongs) so the channel is request-reply aligned again.
  Status ConsumePendingPongsLocked(Worker& w) SIMDB_REQUIRES(w.mu) {
    while (w.pending_pongs > 0) {
      uint8_t type = 0;
      std::string frame;
      SIMDB_RETURN_IF_ERROR(ReadMessage(w.fd, &type, &frame));
      if (type != kPong) {
        return Status::Internal(
            "transport socket: expected a stale pong, got type " +
            std::to_string(static_cast<int>(type)));
      }
      --w.pending_pongs;
    }
    return Status::OK();
  }

  /// One ping round trip on an already-locked worker channel; split out so
  /// Drain's early error returns cannot skip the explicit Unlock.
  Status PingWorkerLocked(Worker& w, size_t node, bool bounded,
                          std::chrono::steady_clock::time_point deadline)
      SIMDB_REQUIRES(w.mu) {
    SIMDB_RETURN_IF_ERROR(ConsumePendingPongsLocked(w));
    std::string empty_frame;
    adm::WriteFrame("", &empty_frame);
    SIMDB_RETURN_IF_ERROR(WriteMessage(w.fd, kPing, empty_frame));
    if (bounded) {
      Status readable = WaitReadable(w.fd, deadline);
      if (!readable.ok()) {
        // The ping is written; its pong will arrive eventually and must not
        // be mistaken for the next request's reply.
        if (readable.code() == StatusCode::kDeadlineExceeded) {
          ++w.pending_pongs;
        }
        return readable;
      }
    }
    uint8_t type = 0;
    std::string frame;
    SIMDB_RETURN_IF_ERROR(ReadMessage(w.fd, &type, &frame));
    if (type != kPong) {
      return Status::Internal("transport socket: node " +
                              std::to_string(node) +
                              " answered ping with type " +
                              std::to_string(static_cast<int>(type)));
    }
    return Status::OK();
  }

  /// One cancel round trip on an already-locked worker channel. The ack wait
  /// is bounded by the caller's shared deadline; a timeout leaves the ack on
  /// the stream as a pending pong (same rule as a timed-out drain ping).
  Status CancelWorkerLocked(Worker& w, size_t node, const std::string& frame,
                            bool bounded,
                            std::chrono::steady_clock::time_point deadline)
      SIMDB_REQUIRES(w.mu) {
    SIMDB_RETURN_IF_ERROR(ConsumePendingPongsLocked(w));
    SIMDB_RETURN_IF_ERROR(WriteMessage(w.fd, kCancelFragment, frame));
    GetFragmentMetrics().cancels_sent->Increment();
    if (bounded) {
      Status readable = WaitReadable(w.fd, deadline);
      if (!readable.ok()) {
        if (readable.code() == StatusCode::kDeadlineExceeded) {
          ++w.pending_pongs;
          return Status::DeadlineExceeded(
              "transport socket: fragment cancel ack from node " +
              std::to_string(node) + " timed out");
        }
        return readable;
      }
    }
    uint8_t type = 0;
    std::string reply;
    SIMDB_RETURN_IF_ERROR(ReadMessage(w.fd, &type, &reply));
    if (type != kPong) {
      return Status::Internal("transport socket: node " +
                              std::to_string(node) +
                              " acknowledged cancel with type " +
                              std::to_string(static_cast<int>(type)));
    }
    return Status::OK();
  }

  std::vector<Worker> workers_;
  Status init_status_;  // first socketpair/fork failure, if any
  const bool fragments_enabled_;
};

}  // namespace

std::unique_ptr<Transport> MakeSocketTransport(int num_nodes) {
  return std::make_unique<SocketTransport>(num_nodes);
}

}  // namespace internal
}  // namespace simdb::transport
