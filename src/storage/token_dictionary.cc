#include "storage/token_dictionary.h"

#include <algorithm>

namespace simdb::storage {

uint32_t TokenDictionary::GetOrAssign(const std::string& token) {
  auto [it, inserted] =
      ids_.emplace(token, static_cast<uint32_t>(tokens_.size()));
  if (inserted) tokens_.push_back(token);
  return it->second;
}

void TokenDictionary::BuildFrequencyOrdered(
    std::vector<std::pair<std::string, uint64_t>> counts) {
  std::sort(counts.begin(), counts.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second < b.second;
              return a.first < b.first;
            });
  Clear();
  ids_.reserve(counts.size());
  tokens_.reserve(counts.size());
  for (auto& [token, count] : counts) {
    (void)count;
    ids_.emplace(token, static_cast<uint32_t>(tokens_.size()));
    tokens_.push_back(std::move(token));
  }
}

void TokenDictionary::Clear() {
  ids_.clear();
  tokens_.clear();
}

}  // namespace simdb::storage
