#ifndef SIMDB_STORAGE_INVERTED_INDEX_H_
#define SIMDB_STORAGE_INVERTED_INDEX_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/thread_annotations.h"
#include "similarity/simd_kernels.h"
#include "storage/lsm_index.h"
#include "storage/token_dictionary.h"

namespace simdb::storage {

/// Algorithm used to solve the T-occurrence problem over posting lists.
enum class TOccurrenceAlgorithm {
  kScanCount,  // gather postings, sort, count runs (robust default)
  kHeapMerge,  // k-way merge of sorted lists counting equal runs
};

/// Counters describing one inverted-index search (reported by Table 6 and
/// the kernel ablation benches).
struct InvertedSearchStats {
  uint64_t lists_probed = 0;
  uint64_t postings_read = 0;
  uint64_t candidates = 0;
  /// Distinct keys whose occurrence count fell below the T threshold — the
  /// candidates the T-occurrence filter pruned.
  uint64_t keys_pruned = 0;
  /// Posting-list cache behaviour: hits served from decoded lists, misses
  /// decoded from the LSM. Probes for tokens unknown to the dictionary touch
  /// neither (they are proven empty without storage access).
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  /// Bytes memcpy'd out of decoded posting lists while answering the search.
  /// The batch path counts occurrences directly over the cached dense-slot
  /// arrays and keeps this at zero; only the legacy gather path (batch
  /// execution off, or slot registry unavailable) copies postings.
  uint64_t bytes_copied = 0;
};

/// One decoded posting list: the sorted pks plus, aligned 1:1, the dense
/// per-index candidate slot of each pk (see the slot registry below). The
/// slots array is empty only if a pk was missing from the registry, in
/// which case searches fall back to the gather path.
struct DecodedPostingList {
  std::vector<int64_t> pks;
  std::vector<uint32_t> slots;
  bool has_slots() const { return slots.size() == pks.size(); }
};

/// A secondary inverted index on one field, stored as an LSM index with
/// composite keys [token, pk]. Serves both the "keyword" and "n-gram" index
/// types of the paper; the difference is only in how keys are tokenized
/// (see index_tokens.h).
///
/// Tokens are dictionary-encoded to dense uint32 ids (ascending global-
/// frequency order after Open/BulkLoad, see TokenDictionary). The read path
/// decodes each posting list from the LSM once into a flat sorted
/// std::vector<int64_t> and keeps it in a bounded per-partition cache that
/// is invalidated by Insert/Remove/BulkLoad.
class InvertedIndex {
 public:
  static Result<std::unique_ptr<InvertedIndex>> Open(std::string dir,
                                                     LsmOptions options = {});

  /// Adds one posting per token. Tokens must already be occurrence-deduped
  /// (DedupOccurrences) so multiset semantics are preserved.
  Status Insert(const std::vector<std::string>& tokens, int64_t pk);
  Status Remove(const std::vector<std::string>& tokens, int64_t pk);

  /// Sorted bulk load of (token, pk) pairs; input need not be sorted. The
  /// token dictionary is rebuilt in global-frequency order afterwards.
  Status BulkLoad(std::vector<std::pair<std::string, int64_t>> postings);

  /// Returns the sorted pks on the posting list of `token`.
  Result<std::vector<int64_t>> PostingList(const std::string& token) const;

  /// Shared decoded posting list for `token` (empty list when the token is
  /// unknown): pks plus aligned dense slots. Served from the cache when
  /// `use_cache` is set; the returned list stays valid even if the cache is
  /// invalidated afterwards. Callers read spans over the cached arrays —
  /// there is no per-hit copy.
  Result<std::shared_ptr<const DecodedPostingList>> FetchDecoded(
      const std::string& token, bool use_cache = true,
      InvertedSearchStats* stats = nullptr) const;

  /// Back-compat view of FetchDecoded: the pks of the decoded list, aliased
  /// into the same shared allocation (still no copy).
  Result<std::shared_ptr<const std::vector<int64_t>>> FetchPostings(
      const std::string& token, bool use_cache = true,
      InvertedSearchStats* stats = nullptr) const;

  /// Solves the T-occurrence problem: returns the sorted pks that appear on
  /// at least `t` of the query tokens' posting lists. `t` must be >= 1 (the
  /// caller is responsible for corner-case detection when t <= 0). Query
  /// tokens must be occurrence-deduped (duplicates are ignored here).
  ///
  /// With a non-null `scratch` (the batch execution path), ScanCount counts
  /// occurrences in dense counter arrays indexed by candidate slot directly
  /// over the cached posting arrays — no gather copy, no per-posting hash —
  /// and reuses the scratch across probes. A null scratch keeps the legacy
  /// gather+sort path (its copies are reported via stats->bytes_copied).
  Result<std::vector<int64_t>> SearchTOccurrence(
      const std::vector<std::string>& query_tokens, int t,
      TOccurrenceAlgorithm algorithm = TOccurrenceAlgorithm::kScanCount,
      InvertedSearchStats* stats = nullptr, bool use_cache = true,
      simd::TOccurrenceScratch* scratch = nullptr) const;

  /// Token -> dense id mapping covering every token this index has stored
  /// (a superset after removes; rebuilt frequency-ordered by Open/BulkLoad).
  const TokenDictionary& dictionary() const { return dict_; }

  /// Test hooks for the posting-list cache. Lowering the budget evicts
  /// already-cached lists down to the new bound.
  void set_cache_budget_postings(size_t budget);
  size_t cached_postings() const;
  size_t cached_lists() const;

  /// Number of candidate slots in the pk registry (the counter-array size
  /// the batch T-occurrence path needs).
  size_t slot_count() const { return slot_pk_.size(); }

  Status Flush() { return lsm_->Flush(); }
  uint64_t DiskSizeBytes() const { return lsm_->DiskSizeBytes(); }
  LsmIndex* lsm() { return lsm_.get(); }

 private:
  explicit InvertedIndex(std::unique_ptr<LsmIndex> lsm)
      : lsm_(std::move(lsm)) {}

  /// Rebuilds the dictionary (frequency-ordered) from a full LSM scan.
  Status RebuildDictionary();

  /// Decodes the posting list of the dictionary token `id` from the LSM,
  /// resolving each pk to its dense slot.
  Result<DecodedPostingList> DecodePostings(uint32_t id) const;

  /// Registers `pk` in the slot registry (idempotent).
  void RegisterPk(int64_t pk);

  void InvalidateCache();

  /// FIFO-evicts cached lists until the budget holds.
  void EvictOverBudgetLocked() const SIMDB_REQUIRES(cache_mu_);

  std::unique_ptr<LsmIndex> lsm_;
  TokenDictionary dict_;

  /// Dense pk -> slot registry for the counter-array T-occurrence path:
  /// every pk this index has stored gets a small dense id (a "slot"), so a
  /// probe can count occurrences in a flat uint16 array instead of hashing
  /// 64-bit pks. Rebuilt by Open/BulkLoad, extended by Insert; mutations
  /// happen under the same exclusive-DDL regime as the token dictionary.
  std::unordered_map<int64_t, uint32_t> pk_slot_;
  std::vector<int64_t> slot_pk_;

  /// Decoded-posting-list cache, keyed by token id and bounded by the total
  /// number of cached postings (FIFO eviction). Guarded by a mutex so the
  /// per-partition executor tasks can share an index instance safely.
  mutable Mutex cache_mu_{lockrank::Rank::kPostingCache,
                          "InvertedIndex::cache_mu_"};
  mutable std::unordered_map<uint32_t, std::shared_ptr<const DecodedPostingList>>
      cache_ SIMDB_GUARDED_BY(cache_mu_);
  mutable std::deque<uint32_t> cache_order_ SIMDB_GUARDED_BY(cache_mu_);
  mutable size_t cache_postings_ SIMDB_GUARDED_BY(cache_mu_) = 0;
  size_t cache_budget_postings_ SIMDB_GUARDED_BY(cache_mu_) =
      1u << 22;  // ~32 MB of int64 postings
};

}  // namespace simdb::storage

#endif  // SIMDB_STORAGE_INVERTED_INDEX_H_
