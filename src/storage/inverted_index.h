#ifndef SIMDB_STORAGE_INVERTED_INDEX_H_
#define SIMDB_STORAGE_INVERTED_INDEX_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/lsm_index.h"

namespace simdb::storage {

/// Algorithm used to solve the T-occurrence problem over posting lists.
enum class TOccurrenceAlgorithm {
  kScanCount,  // hash-count every posting (robust default)
  kHeapMerge,  // k-way merge of sorted lists counting equal runs
};

/// Counters describing one inverted-index search (reported by Table 6 and
/// the kernel ablation benches).
struct InvertedSearchStats {
  uint64_t lists_probed = 0;
  uint64_t postings_read = 0;
  uint64_t candidates = 0;
};

/// A secondary inverted index on one field, stored as an LSM index with
/// composite keys [token, pk]. Serves both the "keyword" and "n-gram" index
/// types of the paper; the difference is only in how keys are tokenized
/// (see index_tokens.h).
class InvertedIndex {
 public:
  static Result<std::unique_ptr<InvertedIndex>> Open(std::string dir,
                                                     LsmOptions options = {});

  /// Adds one posting per token. Tokens must already be occurrence-deduped
  /// (DedupOccurrences) so multiset semantics are preserved.
  Status Insert(const std::vector<std::string>& tokens, int64_t pk);
  Status Remove(const std::vector<std::string>& tokens, int64_t pk);

  /// Sorted bulk load of (token, pk) pairs; input need not be sorted.
  Status BulkLoad(std::vector<std::pair<std::string, int64_t>> postings);

  /// Returns the sorted pks on the posting list of `token`.
  Result<std::vector<int64_t>> PostingList(const std::string& token) const;

  /// Solves the T-occurrence problem: returns the sorted pks that appear on
  /// at least `t` of the query tokens' posting lists. `t` must be >= 1 (the
  /// caller is responsible for corner-case detection when t <= 0). Query
  /// tokens must be occurrence-deduped (duplicates are ignored here).
  Result<std::vector<int64_t>> SearchTOccurrence(
      const std::vector<std::string>& query_tokens, int t,
      TOccurrenceAlgorithm algorithm = TOccurrenceAlgorithm::kScanCount,
      InvertedSearchStats* stats = nullptr) const;

  Status Flush() { return lsm_->Flush(); }
  uint64_t DiskSizeBytes() const { return lsm_->DiskSizeBytes(); }
  LsmIndex* lsm() { return lsm_.get(); }

 private:
  explicit InvertedIndex(std::unique_ptr<LsmIndex> lsm)
      : lsm_(std::move(lsm)) {}

  std::unique_ptr<LsmIndex> lsm_;
};

}  // namespace simdb::storage

#endif  // SIMDB_STORAGE_INVERTED_INDEX_H_
