#ifndef SIMDB_STORAGE_INDEX_TOKENS_H_
#define SIMDB_STORAGE_INDEX_TOKENS_H_

#include <string>
#include <vector>

#include "adm/value.h"
#include "common/result.h"
#include "similarity/index_compat.h"

namespace simdb::storage {

/// How one secondary index is configured. `gram_len` applies to n-gram
/// indexes only (paper DDL: `create index nix on X(f) type ngram(2)`).
struct IndexSpec {
  std::string name;
  std::string field;
  similarity::IndexKind kind = similarity::IndexKind::kKeyword;
  int gram_len = 2;
  bool pre_post_pad = false;
};

/// Extracts the secondary keys an inverted index stores for one field value,
/// occurrence-deduped so multiset semantics survive set processing:
///  - keyword index on a string: lowercase word tokens;
///  - keyword index on a list: its (string) elements;
///  - n-gram index on a string: its n-grams.
/// MISSING/NULL values yield no tokens (the record is simply not indexed).
Result<std::vector<std::string>> ExtractIndexTokens(
    const IndexSpec& spec, const adm::Value& field_value);

}  // namespace simdb::storage

#endif  // SIMDB_STORAGE_INDEX_TOKENS_H_
