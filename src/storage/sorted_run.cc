#include "storage/sorted_run.h"

#include <algorithm>
#include <cstring>
#include <filesystem>

#include "common/bytes.h"
#include "common/logging.h"

namespace simdb::storage {

namespace {

constexpr uint32_t kRunMagic = 0x53524e31;  // "SRN1"
constexpr size_t kFooterSize = 8 + 8 + 4 + 4;  // index_off, count, interval, magic

void PutU32Stream(std::ofstream& out, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out.write(buf, 4);
}

void PutU64Stream(std::ofstream& out, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out.write(buf, 8);
}

}  // namespace

SortedRunWriter::SortedRunWriter(std::string path, int sparse_interval)
    : path_(std::move(path)),
      tmp_path_(path_ + ".tmp"),
      out_(tmp_path_, std::ios::binary | std::ios::trunc),
      sparse_interval_(sparse_interval > 0 ? sparse_interval : 64) {
  open_failed_ = !out_.is_open();
}

Status SortedRunWriter::Add(EntryKind kind, const CompositeKey& key,
                            std::string_view value) {
  if (open_failed_) return Status::IOError("cannot open " + tmp_path_);
  if (last_key_ && CompareKeys(*last_key_, key) >= 0) {
    return Status::Internal("run entries out of order: " + KeyToString(key));
  }
  last_key_ = key;
  std::string encoded_key = EncodeKey(key);
  if (entry_count_ % static_cast<uint64_t>(sparse_interval_) == 0) {
    sparse_index_.emplace_back(encoded_key, offset_);
  }
  // Entry: [u8 kind][u32 klen][k][u32 vlen][v]
  std::string entry;
  ByteWriter w(&entry);
  w.PutU8(static_cast<uint8_t>(kind));
  w.PutString(encoded_key);
  w.PutString(kind == EntryKind::kPut ? value : std::string_view());
  out_.write(entry.data(), static_cast<std::streamsize>(entry.size()));
  if (!out_) return Status::IOError("write failed on " + tmp_path_);
  offset_ += entry.size();
  ++entry_count_;
  return Status::OK();
}

Status SortedRunWriter::Finish() {
  if (open_failed_) return Status::IOError("cannot open " + tmp_path_);
  uint64_t index_offset = offset_;
  PutU32Stream(out_, static_cast<uint32_t>(sparse_index_.size()));
  for (const auto& [key, off] : sparse_index_) {
    PutU32Stream(out_, static_cast<uint32_t>(key.size()));
    out_.write(key.data(), static_cast<std::streamsize>(key.size()));
    PutU64Stream(out_, off);
  }
  PutU64Stream(out_, index_offset);
  PutU64Stream(out_, entry_count_);
  PutU32Stream(out_, static_cast<uint32_t>(sparse_interval_));
  PutU32Stream(out_, kRunMagic);
  out_.flush();
  if (!out_) return Status::IOError("flush failed on " + tmp_path_);
  out_.close();
  std::error_code ec;
  std::filesystem::rename(tmp_path_, path_, ec);
  if (ec) return Status::IOError("rename " + tmp_path_ + ": " + ec.message());
  return Status::OK();
}

Result<std::unique_ptr<SortedRunReader>> SortedRunReader::Open(
    std::string path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open run " + path);
  in.seekg(0, std::ios::end);
  uint64_t size = static_cast<uint64_t>(in.tellg());
  if (size < kFooterSize) return Status::Corruption("run too small: " + path);

  char footer[kFooterSize];
  in.seekg(static_cast<std::streamoff>(size - kFooterSize));
  in.read(footer, kFooterSize);
  if (!in) return Status::IOError("footer read failed: " + path);
  uint64_t index_offset, entry_count;
  uint32_t interval, magic;
  std::memcpy(&index_offset, footer, 8);
  std::memcpy(&entry_count, footer + 8, 8);
  std::memcpy(&interval, footer + 16, 4);
  std::memcpy(&magic, footer + 20, 4);
  if (magic != kRunMagic) return Status::Corruption("bad run magic: " + path);
  if (index_offset > size - kFooterSize) {
    return Status::Corruption("bad index offset: " + path);
  }

  // Load and decode the sparse index block.
  uint64_t index_len = size - kFooterSize - index_offset;
  std::string index_block(index_len, '\0');
  in.seekg(static_cast<std::streamoff>(index_offset));
  in.read(index_block.data(), static_cast<std::streamsize>(index_len));
  if (!in) return Status::IOError("index read failed: " + path);

  auto reader = std::unique_ptr<SortedRunReader>(new SortedRunReader());
  reader->path_ = std::move(path);
  reader->entry_count_ = entry_count;
  reader->data_end_ = index_offset;
  reader->file_size_ = size;
  reader->sparse_interval_ = static_cast<int>(interval);

  ByteReader br(index_block);
  SIMDB_ASSIGN_OR_RETURN(uint32_t n, br.GetU32());
  reader->sparse_.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    SIMDB_ASSIGN_OR_RETURN(std::string_view kbytes, br.GetString());
    SIMDB_ASSIGN_OR_RETURN(uint64_t off, br.GetU64());
    SIMDB_ASSIGN_OR_RETURN(CompositeKey key, DecodeKey(kbytes));
    reader->sparse_.push_back(
        {std::move(key), off, static_cast<uint64_t>(i) * interval});
  }
  return reader;
}

SortedRunReader::Iterator::Iterator(const SortedRunReader* run,
                                    uint64_t offset, uint64_t index)
    : run_(run), in_(run->path_, std::ios::binary), next_index_(index) {
  in_.seekg(static_cast<std::streamoff>(offset));
}

Status SortedRunReader::Iterator::ReadEntry() {
  if (next_index_ >= run_->entry_count_) {
    valid_ = false;
    return Status::OK();
  }
  if (!in_) return Status::IOError("iterator stream bad: " + run_->path_);
  char kind_byte;
  in_.read(&kind_byte, 1);
  uint32_t klen;
  char lenbuf[4];
  in_.read(lenbuf, 4);
  std::memcpy(&klen, lenbuf, 4);
  std::string kbytes(klen, '\0');
  in_.read(kbytes.data(), klen);
  uint32_t vlen;
  in_.read(lenbuf, 4);
  std::memcpy(&vlen, lenbuf, 4);
  value_.resize(vlen);
  if (vlen > 0) in_.read(value_.data(), vlen);
  if (!in_) return Status::Corruption("truncated entry in " + run_->path_);
  SIMDB_ASSIGN_OR_RETURN(key_, DecodeKey(kbytes));
  kind_ = static_cast<EntryKind>(kind_byte);
  ++next_index_;
  valid_ = true;
  return Status::OK();
}

Status SortedRunReader::Iterator::Next() { return ReadEntry(); }

Result<std::unique_ptr<SortedRunReader::Iterator>> SortedRunReader::NewIterator(
    const CompositeKey* lower_bound) const {
  uint64_t offset = 0, index = 0;
  if (lower_bound != nullptr && !sparse_.empty()) {
    // Last sparse entry with key <= lower_bound.
    auto it = std::upper_bound(
        sparse_.begin(), sparse_.end(), *lower_bound,
        [](const CompositeKey& k, const SparseEntry& e) {
          return CompareKeys(k, e.key) < 0;
        });
    if (it != sparse_.begin()) {
      --it;
      offset = it->offset;
      index = it->index;
    }
  }
  auto iter = std::unique_ptr<Iterator>(new Iterator(this, offset, index));
  SIMDB_RETURN_IF_ERROR(iter->ReadEntry());
  // Advance to the first key >= lower_bound.
  if (lower_bound != nullptr) {
    while (iter->Valid() && CompareKeys(iter->key(), *lower_bound) < 0) {
      SIMDB_RETURN_IF_ERROR(iter->Next());
    }
  }
  return iter;
}

Result<std::optional<std::pair<EntryKind, std::string>>> SortedRunReader::Get(
    const CompositeKey& key) const {
  SIMDB_ASSIGN_OR_RETURN(std::unique_ptr<Iterator> it, NewIterator(&key));
  if (it->Valid() && CompareKeys(it->key(), key) == 0) {
    return std::make_optional(std::make_pair(it->kind(), it->value()));
  }
  return std::optional<std::pair<EntryKind, std::string>>();
}

}  // namespace simdb::storage
