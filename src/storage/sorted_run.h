#ifndef SIMDB_STORAGE_SORTED_RUN_H_
#define SIMDB_STORAGE_SORTED_RUN_H_

#include <cstdint>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/key.h"

namespace simdb::storage {

/// Whether a run entry is a live value or a tombstone (LSM delete marker).
enum class EntryKind : uint8_t { kPut = 0, kTombstone = 1 };

/// Streams a sorted sequence of entries into an immutable on-disk run:
///   [entry]* [sparse index block] [footer]
/// A sparse index entry (first key of every `sparse_interval`-th entry plus
/// its file offset) is kept so point lookups read at most one small span.
/// Keys must be added in strictly increasing order.
class SortedRunWriter {
 public:
  SortedRunWriter(std::string path, int sparse_interval = 64);

  Status Add(EntryKind kind, const CompositeKey& key, std::string_view value);

  /// Writes the index block and footer, then atomically renames into place.
  Status Finish();

  uint64_t entry_count() const { return entry_count_; }

 private:
  std::string path_;
  std::string tmp_path_;
  std::ofstream out_;
  bool open_failed_ = false;
  int sparse_interval_;
  uint64_t entry_count_ = 0;
  uint64_t offset_ = 0;
  std::optional<CompositeKey> last_key_;
  std::vector<std::pair<std::string, uint64_t>> sparse_index_;  // encoded key, offset
};

/// Read-only view of a run file. The reader caches the sparse index; each
/// iterator opens its own stream so concurrent scans are independent.
class SortedRunReader {
 public:
  static Result<std::unique_ptr<SortedRunReader>> Open(std::string path);

  uint64_t entry_count() const { return entry_count_; }
  const std::string& path() const { return path_; }
  uint64_t file_size() const { return file_size_; }

  /// Forward iterator over entries, starting at the first key >= lower_bound
  /// (or the run start when lower_bound is null).
  class Iterator {
   public:
    bool Valid() const { return valid_; }
    const CompositeKey& key() const { return key_; }
    EntryKind kind() const { return kind_; }
    const std::string& value() const { return value_; }
    Status Next();

   private:
    friend class SortedRunReader;
    Iterator(const SortedRunReader* run, uint64_t offset, uint64_t index);

    Status ReadEntry();

    const SortedRunReader* run_;
    std::ifstream in_;
    uint64_t next_index_;  // index of the entry ReadEntry will produce
    bool valid_ = false;
    CompositeKey key_;
    EntryKind kind_ = EntryKind::kPut;
    std::string value_;
  };

  Result<std::unique_ptr<Iterator>> NewIterator(
      const CompositeKey* lower_bound) const;

  /// Point lookup; returns nullopt when the key is absent. A tombstone is
  /// reported as a present entry of kind kTombstone.
  Result<std::optional<std::pair<EntryKind, std::string>>> Get(
      const CompositeKey& key) const;

 private:
  SortedRunReader() = default;

  std::string path_;
  uint64_t entry_count_ = 0;
  uint64_t data_end_ = 0;  // offset where entries stop (index block start)
  uint64_t file_size_ = 0;
  int sparse_interval_ = 64;
  // Decoded sparse index: (key, file offset, entry index).
  struct SparseEntry {
    CompositeKey key;
    uint64_t offset;
    uint64_t index;
  };
  std::vector<SparseEntry> sparse_;
};

}  // namespace simdb::storage

#endif  // SIMDB_STORAGE_SORTED_RUN_H_
