#ifndef SIMDB_STORAGE_LSM_INDEX_H_
#define SIMDB_STORAGE_LSM_INDEX_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/key.h"
#include "storage/sorted_run.h"

namespace simdb::storage {

/// How disk components are merged when they accumulate.
enum class MergePolicy {
  /// Merge every run into one once there are more than max_runs (the
  /// simplest correct policy; write-amplification heavy).
  kFullMerge,
  /// Merge groups of >= tier_min_runs size-similar runs (each within
  /// size_ratio of the group's smallest), like size-tiered compaction;
  /// tombstones are only dropped when a merge covers every run.
  kSizeTiered,
};

/// Tuning knobs for one LSM index instance (scaled-down analogues of the
/// paper's Table 2 parameters).
struct LsmOptions {
  /// In-memory component budget; a flush is triggered when exceeded.
  size_t memtable_budget_bytes = 8 * 1024 * 1024;
  /// Trigger compaction when the disk-run count exceeds this.
  int max_runs = 6;
  /// Sparse-index granularity inside each run.
  int sparse_interval = 64;
  MergePolicy merge_policy = MergePolicy::kFullMerge;
  double size_ratio = 3.0;  // kSizeTiered: max size spread within a tier
  int tier_min_runs = 3;    // kSizeTiered: runs needed to trigger a merge
};

/// A log-structured merge index: an in-memory component (std::map) plus a
/// stack of immutable sorted runs, newest first. This is the storage
/// primitive behind the primary index, secondary B+-trees, and the inverted
/// indexes (AsterixDB stores all of these as LSM structures).
class LsmIndex {
 public:
  /// Opens (creating if needed) an index rooted at `dir`; existing runs are
  /// reloaded so data persists across instances.
  static Result<std::unique_ptr<LsmIndex>> Open(std::string dir,
                                                LsmOptions options = {});

  Status Put(const CompositeKey& key, std::string value);
  Status Delete(const CompositeKey& key);

  /// Point lookup across memtable + runs (newest wins; tombstones hide
  /// older entries).
  Result<std::optional<std::string>> Get(const CompositeKey& key) const;

  /// Merged forward iterator over live entries with key >= lower_bound (all
  /// entries when null) and key < upper_bound (unbounded when null).
  /// Tombstoned keys are skipped.
  class Iterator {
   public:
    virtual ~Iterator() = default;
    virtual bool Valid() const = 0;
    virtual const CompositeKey& key() const = 0;
    virtual const std::string& value() const = 0;
    virtual Status Next() = 0;
  };

  Result<std::unique_ptr<Iterator>> NewIterator(
      const CompositeKey* lower_bound = nullptr,
      const CompositeKey* upper_bound = nullptr) const;

  /// Forces the in-memory component to disk (no-op when empty).
  Status Flush();

  /// Merges all disk runs into one, dropping tombstones.
  Status Compact();

  /// Applies the configured merge policy once (called after every flush;
  /// exposed for tests).
  Status MaybeMerge();

  /// Sorted bulk load: writes one run directly, bypassing the memtable.
  /// Entries must be sorted by key and unique.
  Status BulkLoadSorted(
      const std::vector<std::pair<CompositeKey, std::string>>& entries);

  uint64_t DiskSizeBytes() const;
  size_t MemtableBytes() const { return mem_bytes_; }
  size_t num_runs() const { return runs_.size(); }
  const std::string& dir() const { return dir_; }

 private:
  explicit LsmIndex(std::string dir, LsmOptions options);

  Status MaybeFlush();
  /// Merges the runs at positions [first, last] (newest-first order) into
  /// one; tombstones are dropped only when the range covers the oldest run.
  Status CompactRange(size_t first, size_t last);
  std::string NextRunPath();

  std::string dir_;
  LsmOptions options_;
  uint64_t next_run_seq_ = 1;
  // nullopt value == tombstone.
  std::map<CompositeKey, std::optional<std::string>, KeyLess> memtable_;
  size_t mem_bytes_ = 0;
  // Newest first.
  std::vector<std::unique_ptr<SortedRunReader>> runs_;
};

}  // namespace simdb::storage

#endif  // SIMDB_STORAGE_LSM_INDEX_H_
