#include "storage/file_util.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <system_error>

#include "common/logging.h"

namespace simdb::storage {

namespace fs = std::filesystem;

Status EnsureDir(const std::string& dir) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) return Status::IOError("create_directories " + dir + ": " + ec.message());
  return Status::OK();
}

Status RemoveAll(const std::string& path) {
  std::error_code ec;
  fs::remove_all(path, ec);
  if (ec) return Status::IOError("remove_all " + path + ": " + ec.message());
  return Status::OK();
}

void RemoveAllBestEffort(const std::string& path) {
  Status status = RemoveAll(path);
  if (!status.ok()) {
    SIMDB_LOG(kWarn) << "best-effort cleanup failed: " << status.ToString();
  }
}

Status WriteFileAtomic(const std::string& path, const std::string& data) {
  std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Status::IOError("cannot open " + tmp);
    out.write(data.data(), static_cast<std::streamsize>(data.size()));
    if (!out) return Status::IOError("short write to " + tmp);
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) return Status::IOError("rename " + tmp + ": " + ec.message());
  return Status::OK();
}

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  if (in.bad()) return Status::IOError("read error on " + path);
  return data;
}

Result<uint64_t> FileSizeBytes(const std::string& path) {
  std::error_code ec;
  uint64_t size = fs::file_size(path, ec);
  if (ec) return Status::IOError("file_size " + path + ": " + ec.message());
  return size;
}

uint64_t DirSizeBytes(const std::string& dir) {
  std::error_code ec;
  if (!fs::exists(dir, ec)) return 0;
  uint64_t total = 0;
  for (auto it = fs::recursive_directory_iterator(dir, ec);
       !ec && it != fs::recursive_directory_iterator(); it.increment(ec)) {
    if (it->is_regular_file(ec)) {
      total += it->file_size(ec);
    }
  }
  return total;
}

Result<std::vector<std::string>> ListFiles(const std::string& dir) {
  std::vector<std::string> names;
  std::error_code ec;
  for (auto it = fs::directory_iterator(dir, ec);
       !ec && it != fs::directory_iterator(); it.increment(ec)) {
    if (it->is_regular_file(ec)) names.push_back(it->path().filename().string());
  }
  if (ec) return Status::IOError("list " + dir + ": " + ec.message());
  std::sort(names.begin(), names.end());
  return names;
}

bool PathExists(const std::string& path) {
  std::error_code ec;
  return fs::exists(path, ec);
}

}  // namespace simdb::storage
