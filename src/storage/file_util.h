#ifndef SIMDB_STORAGE_FILE_UTIL_H_
#define SIMDB_STORAGE_FILE_UTIL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace simdb::storage {

/// Creates `dir` (and parents) if missing.
Status EnsureDir(const std::string& dir);

/// Removes a file or directory tree; missing paths are not an error.
Status RemoveAll(const std::string& path);

/// RemoveAll for scratch/teardown paths where the caller cannot usefully
/// propagate a failure (test fixtures, example cleanup, post-run scratch
/// sweeps): a failure is logged at WARN instead of returned, so it stays
/// visible without turning teardown into the test's failure. Prefer
/// RemoveAll wherever the Status can actually be handled.
void RemoveAllBestEffort(const std::string& path);

/// Writes `data` to `path` atomically (write temp + rename).
Status WriteFileAtomic(const std::string& path, const std::string& data);

Result<std::string> ReadFile(const std::string& path);

Result<uint64_t> FileSizeBytes(const std::string& path);

/// Total size of all regular files under `dir` (0 when missing).
uint64_t DirSizeBytes(const std::string& dir);

/// Lexicographically sorted names of regular files directly under `dir`.
Result<std::vector<std::string>> ListFiles(const std::string& dir);

bool PathExists(const std::string& path);

}  // namespace simdb::storage

#endif  // SIMDB_STORAGE_FILE_UTIL_H_
