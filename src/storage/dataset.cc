#include "storage/dataset.h"

#include <algorithm>

#include "storage/file_util.h"

namespace simdb::storage {

using adm::Value;
using similarity::IndexKind;

Result<std::unique_ptr<Dataset>> Dataset::Create(std::string dir,
                                                 DatasetSpec spec,
                                                 LsmOptions options) {
  if (spec.num_partitions <= 0) {
    return Status::InvalidArgument("num_partitions must be positive");
  }
  SIMDB_RETURN_IF_ERROR(EnsureDir(dir));
  auto dataset =
      std::unique_ptr<Dataset>(new Dataset(dir, std::move(spec), options));
  for (int p = 0; p < dataset->spec_.num_partitions; ++p) {
    auto partition = std::make_unique<Partition>();
    SIMDB_ASSIGN_OR_RETURN(
        partition->primary,
        LsmIndex::Open(dir + "/p" + std::to_string(p) + "/primary", options));
    dataset->partitions_.push_back(std::move(partition));
  }
  return dataset;
}

int Dataset::PartitionOfPk(int64_t pk) const {
  uint64_t h = Value::Int64(pk).Hash();
  return static_cast<int>(h % static_cast<uint64_t>(spec_.num_partitions));
}

Result<int64_t> Dataset::Insert(Value record) {
  if (!record.is_object()) {
    return Status::TypeError("records must be objects");
  }
  const Value& pk_value = record.GetField(spec_.pk_field);
  int64_t pk;
  if (pk_value.is_missing()) {
    pk = next_auto_pk_++;
    Value::Object fields = record.AsObject();
    fields.emplace_back(spec_.pk_field, Value::Int64(pk));
    record = Value::MakeObject(std::move(fields));
  } else if (pk_value.is_int64()) {
    pk = pk_value.AsInt64();
    next_auto_pk_ = std::max(next_auto_pk_, pk + 1);
  } else {
    return Status::TypeError("primary key field '" + spec_.pk_field +
                             "' must be int64");
  }

  int p = PartitionOfPk(pk);
  std::string bytes;
  ByteWriter w(&bytes);
  record.Serialize(&w);
  SIMDB_RETURN_IF_ERROR(
      partitions_[p]->primary->Put({Value::Int64(pk)}, std::move(bytes)));
  SIMDB_RETURN_IF_ERROR(MaintainSecondaries(record, pk, p, /*insert=*/true));
  ++record_count_;
  return pk;
}

Status Dataset::Delete(int64_t pk) {
  int p = PartitionOfPk(pk);
  SIMDB_ASSIGN_OR_RETURN(auto existing, GetByPkInPartition(p, pk));
  if (!existing.has_value()) return Status::OK();
  SIMDB_RETURN_IF_ERROR(
      MaintainSecondaries(*existing, pk, p, /*insert=*/false));
  SIMDB_RETURN_IF_ERROR(partitions_[p]->primary->Delete({Value::Int64(pk)}));
  --record_count_;
  return Status::OK();
}

Status Dataset::MaintainSecondaries(const Value& record, int64_t pk,
                                    int partition, bool insert) {
  Partition& part = *partitions_[partition];
  for (const IndexSpec& spec : index_specs_) {
    const Value& field_value = record.GetField(spec.field);
    if (spec.kind == IndexKind::kBtree) {
      if (field_value.is_missing()) continue;
      CompositeKey key = {field_value, Value::Int64(pk)};
      LsmIndex* btree = part.btrees.at(spec.name).get();
      SIMDB_RETURN_IF_ERROR(insert ? btree->Put(key, "") : btree->Delete(key));
    } else {
      SIMDB_ASSIGN_OR_RETURN(std::vector<std::string> tokens,
                             ExtractIndexTokens(spec, field_value));
      InvertedIndex* inverted = part.inverted.at(spec.name).get();
      SIMDB_RETURN_IF_ERROR(insert ? inverted->Insert(tokens, pk)
                                   : inverted->Remove(tokens, pk));
    }
  }
  return Status::OK();
}

Result<std::optional<Value>> Dataset::GetByPk(int64_t pk) const {
  return GetByPkInPartition(PartitionOfPk(pk), pk);
}

Result<std::optional<Value>> Dataset::GetByPkInPartition(int partition,
                                                         int64_t pk) const {
  if (partition < 0 || partition >= spec_.num_partitions) {
    return Status::InvalidArgument("bad partition");
  }
  SIMDB_ASSIGN_OR_RETURN(
      auto bytes, partitions_[partition]->primary->Get({Value::Int64(pk)}));
  if (!bytes.has_value()) return std::optional<Value>();
  ByteReader r(*bytes);
  SIMDB_ASSIGN_OR_RETURN(Value record, Value::Deserialize(&r));
  return std::make_optional(std::move(record));
}

Result<std::vector<Value>> Dataset::ScanPartition(int partition) const {
  if (partition < 0 || partition >= spec_.num_partitions) {
    return Status::InvalidArgument("bad partition");
  }
  std::vector<Value> records;
  SIMDB_ASSIGN_OR_RETURN(auto it, partitions_[partition]->primary->NewIterator());
  while (it->Valid()) {
    ByteReader r(it->value());
    SIMDB_ASSIGN_OR_RETURN(Value record, Value::Deserialize(&r));
    records.push_back(std::move(record));
    SIMDB_RETURN_IF_ERROR(it->Next());
  }
  return records;
}

Status Dataset::CreateIndex(IndexSpec spec) {
  if (FindIndex(spec.name) != nullptr) {
    return Status::AlreadyExists("index " + spec.name);
  }
  // Open the per-partition structures.
  for (int p = 0; p < spec_.num_partitions; ++p) {
    std::string idx_dir =
        dir_ + "/p" + std::to_string(p) + "/idx_" + spec.name;
    if (spec.kind == IndexKind::kBtree) {
      SIMDB_ASSIGN_OR_RETURN(auto btree, LsmIndex::Open(idx_dir, options_));
      partitions_[p]->btrees[spec.name] = std::move(btree);
    } else {
      SIMDB_ASSIGN_OR_RETURN(auto inverted,
                             InvertedIndex::Open(idx_dir, options_));
      partitions_[p]->inverted[spec.name] = std::move(inverted);
    }
  }
  // Bulk build from existing data.
  for (int p = 0; p < spec_.num_partitions; ++p) {
    SIMDB_ASSIGN_OR_RETURN(std::vector<Value> records, ScanPartition(p));
    if (spec.kind == IndexKind::kBtree) {
      std::vector<std::pair<CompositeKey, std::string>> entries;
      for (const Value& rec : records) {
        const Value& field_value = rec.GetField(spec.field);
        if (field_value.is_missing()) continue;
        entries.push_back(
            {{field_value, rec.GetField(spec_.pk_field)}, std::string()});
      }
      std::sort(entries.begin(), entries.end(),
                [](const auto& a, const auto& b) {
                  return CompareKeys(a.first, b.first) < 0;
                });
      SIMDB_RETURN_IF_ERROR(
          partitions_[p]->btrees[spec.name]->BulkLoadSorted(entries));
    } else {
      std::vector<std::pair<std::string, int64_t>> postings;
      for (const Value& rec : records) {
        int64_t pk = rec.GetField(spec_.pk_field).AsInt64();
        SIMDB_ASSIGN_OR_RETURN(
            std::vector<std::string> tokens,
            ExtractIndexTokens(spec, rec.GetField(spec.field)));
        // Growth-preserving reserve: never shrink the doubling schedule.
        if (postings.size() + tokens.size() > postings.capacity()) {
          postings.reserve(std::max(postings.size() + tokens.size(),
                                    postings.capacity() * 2));
        }
        for (std::string& t : tokens) postings.emplace_back(std::move(t), pk);
      }
      SIMDB_RETURN_IF_ERROR(
          partitions_[p]->inverted[spec.name]->BulkLoad(std::move(postings)));
    }
  }
  index_specs_.push_back(std::move(spec));
  return Status::OK();
}

const IndexSpec* Dataset::FindIndex(const std::string& name) const {
  for (const IndexSpec& spec : index_specs_) {
    if (spec.name == name) return &spec;
  }
  return nullptr;
}

const IndexSpec* Dataset::FindIndexOnField(
    const std::string& field, std::optional<IndexKind> kind) const {
  for (const IndexSpec& spec : index_specs_) {
    if (spec.field == field && (!kind.has_value() || spec.kind == *kind)) {
      return &spec;
    }
  }
  return nullptr;
}

InvertedIndex* Dataset::inverted_index(int partition,
                                       const std::string& name) const {
  auto it = partitions_[partition]->inverted.find(name);
  return it == partitions_[partition]->inverted.end() ? nullptr
                                                      : it->second.get();
}

LsmIndex* Dataset::btree_index(int partition, const std::string& name) const {
  auto it = partitions_[partition]->btrees.find(name);
  return it == partitions_[partition]->btrees.end() ? nullptr
                                                    : it->second.get();
}

Result<std::vector<int64_t>> Dataset::BtreeSearch(
    int partition, const std::string& index_name, const Value& key) const {
  LsmIndex* btree = btree_index(partition, index_name);
  if (btree == nullptr) return Status::NotFound("btree index " + index_name);
  std::vector<int64_t> pks;
  CompositeKey lower = {key};
  SIMDB_ASSIGN_OR_RETURN(auto it, btree->NewIterator(&lower));
  while (it->Valid()) {
    const CompositeKey& k = it->key();
    if (k.size() != 2 || k[0] != key) break;
    pks.push_back(k[1].AsInt64());
    SIMDB_RETURN_IF_ERROR(it->Next());
  }
  return pks;
}

uint64_t Dataset::PrimaryDiskSize() const {
  uint64_t total = 0;
  for (const auto& p : partitions_) total += p->primary->DiskSizeBytes();
  return total;
}

uint64_t Dataset::IndexDiskSize(const std::string& name) const {
  uint64_t total = 0;
  for (const auto& p : partitions_) {
    auto inv = p->inverted.find(name);
    if (inv != p->inverted.end()) total += inv->second->DiskSizeBytes();
    auto bt = p->btrees.find(name);
    if (bt != p->btrees.end()) total += bt->second->DiskSizeBytes();
  }
  return total;
}

Status Dataset::FlushAll() {
  for (const auto& p : partitions_) {
    SIMDB_RETURN_IF_ERROR(p->primary->Flush());
    for (const auto& [name, inv] : p->inverted) {
      (void)name;
      SIMDB_RETURN_IF_ERROR(inv->Flush());
    }
    for (const auto& [name, bt] : p->btrees) {
      (void)name;
      SIMDB_RETURN_IF_ERROR(bt->Flush());
    }
  }
  return Status::OK();
}

}  // namespace simdb::storage
