#include "storage/key.h"

namespace simdb::storage {

int CompareKeys(const CompositeKey& a, const CompositeKey& b) {
  size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    int c = adm::Value::Compare(a[i], b[i]);
    if (c != 0) return c;
  }
  if (a.size() < b.size()) return -1;
  if (a.size() > b.size()) return 1;
  return 0;
}

std::string EncodeKey(const CompositeKey& key) {
  std::string out;
  ByteWriter w(&out);
  w.PutU32(static_cast<uint32_t>(key.size()));
  for (const adm::Value& v : key) v.Serialize(&w);
  return out;
}

Result<CompositeKey> DecodeKey(std::string_view data) {
  ByteReader r(data);
  SIMDB_ASSIGN_OR_RETURN(uint32_t n, r.GetU32());
  CompositeKey key;
  key.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    SIMDB_ASSIGN_OR_RETURN(adm::Value v, adm::Value::Deserialize(&r));
    key.push_back(std::move(v));
  }
  return key;
}

std::string KeyToString(const CompositeKey& key) {
  std::string out = "[";
  for (size_t i = 0; i < key.size(); ++i) {
    if (i > 0) out += ", ";
    out += key[i].ToJson();
  }
  out += "]";
  return out;
}

}  // namespace simdb::storage
