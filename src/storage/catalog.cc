#include "storage/catalog.h"

#include "storage/file_util.h"

namespace simdb::storage {

Result<Dataset*> Catalog::CreateDataset(DatasetSpec spec) {
  if (datasets_.count(spec.name) > 0) {
    return Status::AlreadyExists("dataset " + spec.name);
  }
  std::string name = spec.name;
  SIMDB_ASSIGN_OR_RETURN(
      auto dataset,
      Dataset::Create(root_dir_ + "/" + name, std::move(spec), options_));
  Dataset* ptr = dataset.get();
  datasets_[name] = std::move(dataset);
  return ptr;
}

Dataset* Catalog::Find(const std::string& name) const {
  auto it = datasets_.find(name);
  return it == datasets_.end() ? nullptr : it->second.get();
}

Status Catalog::DropDataset(const std::string& name) {
  auto it = datasets_.find(name);
  if (it == datasets_.end()) return Status::NotFound("dataset " + name);
  datasets_.erase(it);
  return RemoveAll(root_dir_ + "/" + name);
}

}  // namespace simdb::storage
