#include "storage/inverted_index.h"

#include <algorithm>
#include <queue>
#include <string_view>
#include <unordered_set>

namespace simdb::storage {

using adm::Value;

Result<std::unique_ptr<InvertedIndex>> InvertedIndex::Open(std::string dir,
                                                           LsmOptions options) {
  SIMDB_ASSIGN_OR_RETURN(auto lsm, LsmIndex::Open(std::move(dir), options));
  auto index = std::unique_ptr<InvertedIndex>(new InvertedIndex(std::move(lsm)));
  SIMDB_RETURN_IF_ERROR(index->RebuildDictionary());
  return index;
}

namespace {

CompositeKey PostingKey(const std::string& token, int64_t pk) {
  return {Value::String(token), Value::Int64(pk)};
}

/// Exclusive upper bound covering every [token, pk] posting: the smallest
/// composite key greater than all of them is the next possible string after
/// `token` ('\0' is the minimum character).
CompositeKey PostingUpperBound(const std::string& token) {
  return {Value::String(token + '\0')};
}

}  // namespace

Status InvertedIndex::RebuildDictionary() {
  std::vector<std::pair<std::string, uint64_t>> counts;
  pk_slot_.clear();
  slot_pk_.clear();
  SIMDB_ASSIGN_OR_RETURN(auto it, lsm_->NewIterator());
  while (it->Valid()) {
    const CompositeKey& key = it->key();
    if (key.size() == 2 && key[0].is_string()) {
      const std::string& token = key[0].AsString();
      if (counts.empty() || counts.back().first != token) {
        counts.emplace_back(token, 1);
      } else {
        ++counts.back().second;
      }
      // The same scan seeds the pk -> slot registry for batch counting.
      RegisterPk(key[1].AsInt64());
    }
    SIMDB_RETURN_IF_ERROR(it->Next());
  }
  dict_.BuildFrequencyOrdered(std::move(counts));
  return Status::OK();
}

void InvertedIndex::RegisterPk(int64_t pk) {
  auto [it, inserted] =
      pk_slot_.emplace(pk, static_cast<uint32_t>(slot_pk_.size()));
  (void)it;
  if (inserted) slot_pk_.push_back(pk);
}

void InvertedIndex::InvalidateCache() {
  MutexLock lock(cache_mu_);
  cache_.clear();
  cache_order_.clear();
  cache_postings_ = 0;
}

size_t InvertedIndex::cached_postings() const {
  MutexLock lock(cache_mu_);
  return cache_postings_;
}

size_t InvertedIndex::cached_lists() const {
  MutexLock lock(cache_mu_);
  return cache_.size();
}

Status InvertedIndex::Insert(const std::vector<std::string>& tokens,
                             int64_t pk) {
  for (const std::string& t : tokens) {
    dict_.GetOrAssign(t);
    SIMDB_RETURN_IF_ERROR(lsm_->Put(PostingKey(t, pk), ""));
  }
  if (!tokens.empty()) {
    RegisterPk(pk);  // Remove keeps the slot (a harmless superset)
    InvalidateCache();
  }
  return Status::OK();
}

Status InvertedIndex::Remove(const std::vector<std::string>& tokens,
                             int64_t pk) {
  // The dictionary keeps the removed tokens (a harmless superset); only the
  // decoded lists must go.
  for (const std::string& t : tokens) {
    SIMDB_RETURN_IF_ERROR(lsm_->Delete(PostingKey(t, pk)));
  }
  if (!tokens.empty()) InvalidateCache();
  return Status::OK();
}

Status InvertedIndex::BulkLoad(
    std::vector<std::pair<std::string, int64_t>> postings) {
  std::sort(postings.begin(), postings.end());
  postings.erase(std::unique(postings.begin(), postings.end()),
                 postings.end());
  std::vector<std::pair<CompositeKey, std::string>> entries;
  entries.reserve(postings.size());
  for (const auto& [token, pk] : postings) {
    entries.emplace_back(PostingKey(token, pk), "");
  }
  SIMDB_RETURN_IF_ERROR(lsm_->BulkLoadSorted(entries));
  InvalidateCache();
  // Re-establish frequency-ordered ids over the full index contents (the
  // load may have landed on top of existing runs).
  return RebuildDictionary();
}

Result<DecodedPostingList> InvertedIndex::DecodePostings(uint32_t id) const {
  const std::string& token = dict_.TokenOf(id);
  DecodedPostingList list;
  CompositeKey lower = {Value::String(token)};
  CompositeKey upper = PostingUpperBound(token);
  SIMDB_ASSIGN_OR_RETURN(auto it, lsm_->NewIterator(&lower, &upper));
  bool slots_ok = true;
  while (it->Valid()) {
    const CompositeKey& key = it->key();
    if (key.size() == 2) {
      const int64_t pk = key[1].AsInt64();
      list.pks.push_back(pk);
      if (slots_ok) {
        auto slot = pk_slot_.find(pk);
        if (slot == pk_slot_.end()) {
          // Unregistered pk (should not happen): disable the slot view so
          // searches fall back to the gather path instead of miscounting.
          slots_ok = false;
          list.slots.clear();
        } else {
          list.slots.push_back(slot->second);
        }
      }
    }
    SIMDB_RETURN_IF_ERROR(it->Next());
  }
  return list;
}

Result<std::shared_ptr<const DecodedPostingList>> InvertedIndex::FetchDecoded(
    const std::string& token, bool use_cache,
    InvertedSearchStats* stats) const {
  static const std::shared_ptr<const DecodedPostingList> kEmpty =
      std::make_shared<const DecodedPostingList>();
  std::optional<uint32_t> id = dict_.Lookup(token);
  // Unknown to the dictionary == never stored: no LSM probe needed.
  if (!id.has_value()) return kEmpty;
  if (use_cache) {
    MutexLock lock(cache_mu_);
    auto it = cache_.find(*id);
    if (it != cache_.end()) {
      if (stats != nullptr) ++stats->cache_hits;
      return it->second;
    }
  }
  if (stats != nullptr) ++stats->cache_misses;
  SIMDB_ASSIGN_OR_RETURN(DecodedPostingList decoded, DecodePostings(*id));
  auto list = std::make_shared<const DecodedPostingList>(std::move(decoded));
  if (use_cache) {
    MutexLock lock(cache_mu_);
    // Budget read under the lock: set_cache_budget_postings may race with
    // probes (the fuzz harness retunes between variants).
    if (list->pks.size() > cache_budget_postings_) return list;
    auto [it, inserted] = cache_.emplace(*id, list);
    (void)it;
    if (inserted) {
      cache_order_.push_back(*id);
      cache_postings_ += list->pks.size();
      EvictOverBudgetLocked();
    }
  }
  return list;
}

Result<std::shared_ptr<const std::vector<int64_t>>>
InvertedIndex::FetchPostings(const std::string& token, bool use_cache,
                             InvertedSearchStats* stats) const {
  SIMDB_ASSIGN_OR_RETURN(auto list, FetchDecoded(token, use_cache, stats));
  // Aliasing constructor: shares ownership of the decoded list, no copy.
  return std::shared_ptr<const std::vector<int64_t>>(list, &list->pks);
}

void InvertedIndex::EvictOverBudgetLocked() const {
  while (cache_postings_ > cache_budget_postings_ && !cache_order_.empty()) {
    uint32_t victim = cache_order_.front();
    cache_order_.pop_front();
    auto vit = cache_.find(victim);
    if (vit != cache_.end()) {
      cache_postings_ -= vit->second->pks.size();
      cache_.erase(vit);
    }
  }
}

void InvertedIndex::set_cache_budget_postings(size_t budget) {
  MutexLock lock(cache_mu_);
  cache_budget_postings_ = budget;
  EvictOverBudgetLocked();
}

Result<std::vector<int64_t>> InvertedIndex::PostingList(
    const std::string& token) const {
  SIMDB_ASSIGN_OR_RETURN(auto list, FetchPostings(token));
  return *list;
}

Result<std::vector<int64_t>> InvertedIndex::SearchTOccurrence(
    const std::vector<std::string>& query_tokens, int t,
    TOccurrenceAlgorithm algorithm, InvertedSearchStats* stats, bool use_cache,
    simd::TOccurrenceScratch* scratch) const {
  if (t < 1) {
    return Status::InvalidArgument(
        "SearchTOccurrence requires t >= 1 (corner case must be handled by "
        "the plan)");
  }
  // Ignore duplicate query tokens: occurrence-deduped inputs are unique by
  // construction, but user-supplied token lists may not be.
  std::vector<const std::string*> distinct;
  {
    std::unordered_set<std::string_view> seen;
    seen.reserve(query_tokens.size());
    distinct.reserve(query_tokens.size());
    for (const std::string& q : query_tokens) {
      if (seen.insert(q).second) distinct.push_back(&q);
    }
  }
  InvertedSearchStats local;
  std::vector<int64_t> result;

  // Fetch the decoded lists once (shared, usually from the cache).
  std::vector<std::shared_ptr<const DecodedPostingList>> lists;
  lists.reserve(distinct.size());
  size_t total_postings = 0;
  for (const std::string* q : distinct) {
    SIMDB_ASSIGN_OR_RETURN(auto list, FetchDecoded(*q, use_cache, &local));
    ++local.lists_probed;
    local.postings_read += list->pks.size();
    total_postings += list->pks.size();
    if (!list->pks.empty()) lists.push_back(std::move(list));
  }

  // The counter-array path needs the slot view on every list and list
  // counts that fit the uint16 counters.
  bool slots_usable = scratch != nullptr && lists.size() <= 65535;
  for (const auto& list : lists) {
    if (!list->has_slots()) {
      slots_usable = false;
      break;
    }
  }

  if (algorithm == TOccurrenceAlgorithm::kScanCount && slots_usable) {
    // Batch path: count occurrences in a dense counter array indexed by
    // candidate slot, reading the cached slot arrays in place (zero copy,
    // zero hashing). Reset cost is proportional to slots touched.
    scratch->EnsureSlots(slot_pk_.size());
    std::vector<const uint32_t*> slot_lists;
    std::vector<size_t> sizes;
    slot_lists.reserve(lists.size());
    sizes.reserve(lists.size());
    for (const auto& list : lists) {
      slot_lists.push_back(list->slots.data());
      sizes.push_back(list->slots.size());
    }
    std::vector<uint32_t> hit_slots;
    simd::TOccurrenceCount(slot_lists.data(), sizes.data(), slot_lists.size(),
                           t, *scratch, &hit_slots, &local.keys_pruned);
    result.reserve(hit_slots.size());
    for (uint32_t s : hit_slots) result.push_back(slot_pk_[s]);
    std::sort(result.begin(), result.end());
  } else if (algorithm == TOccurrenceAlgorithm::kScanCount) {
    // ScanCount over integer pks: gather every posting into one flat array,
    // sort, and count equal runs. Cache-friendly and allocation-light
    // compared to hashing each posting, but pays a copy of every posting
    // read (accounted in bytes_copied).
    std::vector<int64_t> gathered;
    gathered.reserve(total_postings);
    for (const auto& list : lists) {
      gathered.insert(gathered.end(), list->pks.begin(), list->pks.end());
      local.bytes_copied += list->pks.size() * sizeof(int64_t);
    }
    std::sort(gathered.begin(), gathered.end());
    size_t i = 0;
    while (i < gathered.size()) {
      size_t j = i + 1;
      while (j < gathered.size() && gathered[j] == gathered[i]) ++j;
      if (j - i >= static_cast<size_t>(t)) {
        result.push_back(gathered[i]);
      } else {
        ++local.keys_pruned;
      }
      i = j;
    }
  } else {
    // Heap merge over the sorted posting lists; a pk appearing in >= t lists
    // produces a run of >= t equal heads.
    using Head = std::pair<int64_t, size_t>;  // (pk, list id)
    std::priority_queue<Head, std::vector<Head>, std::greater<Head>> heap;
    std::vector<size_t> pos(lists.size(), 0);
    for (size_t i = 0; i < lists.size(); ++i) {
      heap.push({lists[i]->pks[0], i});
    }
    while (!heap.empty()) {
      int64_t pk = heap.top().first;
      int count = 0;
      while (!heap.empty() && heap.top().first == pk) {
        auto [_, li] = heap.top();
        heap.pop();
        ++count;
        if (++pos[li] < lists[li]->pks.size()) {
          heap.push({lists[li]->pks[pos[li]], li});
        }
      }
      if (count >= t) {
        result.push_back(pk);
      } else {
        ++local.keys_pruned;
      }
    }
  }

  local.candidates = result.size();
  if (stats != nullptr) {
    stats->lists_probed += local.lists_probed;
    stats->postings_read += local.postings_read;
    stats->candidates += local.candidates;
    stats->keys_pruned += local.keys_pruned;
    stats->cache_hits += local.cache_hits;
    stats->cache_misses += local.cache_misses;
    stats->bytes_copied += local.bytes_copied;
  }
  return result;
}

}  // namespace simdb::storage
