#include "storage/inverted_index.h"

#include <algorithm>
#include <queue>
#include <unordered_map>
#include <unordered_set>

namespace simdb::storage {

using adm::Value;

Result<std::unique_ptr<InvertedIndex>> InvertedIndex::Open(std::string dir,
                                                           LsmOptions options) {
  SIMDB_ASSIGN_OR_RETURN(auto lsm, LsmIndex::Open(std::move(dir), options));
  return std::unique_ptr<InvertedIndex>(new InvertedIndex(std::move(lsm)));
}

namespace {

CompositeKey PostingKey(const std::string& token, int64_t pk) {
  return {Value::String(token), Value::Int64(pk)};
}

}  // namespace

Status InvertedIndex::Insert(const std::vector<std::string>& tokens,
                             int64_t pk) {
  for (const std::string& t : tokens) {
    SIMDB_RETURN_IF_ERROR(lsm_->Put(PostingKey(t, pk), ""));
  }
  return Status::OK();
}

Status InvertedIndex::Remove(const std::vector<std::string>& tokens,
                             int64_t pk) {
  for (const std::string& t : tokens) {
    SIMDB_RETURN_IF_ERROR(lsm_->Delete(PostingKey(t, pk)));
  }
  return Status::OK();
}

Status InvertedIndex::BulkLoad(
    std::vector<std::pair<std::string, int64_t>> postings) {
  std::sort(postings.begin(), postings.end());
  postings.erase(std::unique(postings.begin(), postings.end()),
                 postings.end());
  std::vector<std::pair<CompositeKey, std::string>> entries;
  entries.reserve(postings.size());
  for (const auto& [token, pk] : postings) {
    entries.emplace_back(PostingKey(token, pk), "");
  }
  return lsm_->BulkLoadSorted(entries);
}

Result<std::vector<int64_t>> InvertedIndex::PostingList(
    const std::string& token) const {
  std::vector<int64_t> pks;
  CompositeKey lower = {Value::String(token)};
  SIMDB_ASSIGN_OR_RETURN(auto it, lsm_->NewIterator(&lower));
  while (it->Valid()) {
    const CompositeKey& key = it->key();
    if (key.size() != 2 || !key[0].is_string() || key[0].AsString() != token) {
      break;
    }
    pks.push_back(key[1].AsInt64());
    SIMDB_RETURN_IF_ERROR(it->Next());
  }
  return pks;
}

Result<std::vector<int64_t>> InvertedIndex::SearchTOccurrence(
    const std::vector<std::string>& query_tokens, int t,
    TOccurrenceAlgorithm algorithm, InvertedSearchStats* stats) const {
  if (t < 1) {
    return Status::InvalidArgument(
        "SearchTOccurrence requires t >= 1 (corner case must be handled by "
        "the plan)");
  }
  // Ignore duplicate query tokens: occurrence-deduped inputs are unique by
  // construction, but user-supplied token lists may not be.
  std::vector<std::string> distinct;
  {
    std::unordered_set<std::string> seen;
    distinct.reserve(query_tokens.size());
    for (const std::string& q : query_tokens) {
      if (seen.insert(q).second) distinct.push_back(q);
    }
  }
  InvertedSearchStats local;
  std::vector<int64_t> result;

  if (algorithm == TOccurrenceAlgorithm::kScanCount) {
    std::unordered_map<int64_t, int> counts;
    for (const std::string& q : distinct) {
      SIMDB_ASSIGN_OR_RETURN(std::vector<int64_t> list, PostingList(q));
      ++local.lists_probed;
      local.postings_read += list.size();
      for (int64_t pk : list) ++counts[pk];
    }
    for (const auto& [pk, count] : counts) {
      if (count >= t) result.push_back(pk);
    }
    std::sort(result.begin(), result.end());
  } else {
    // Heap merge over the sorted posting lists; a pk appearing in >= t lists
    // produces a run of >= t equal heads.
    std::vector<std::vector<int64_t>> lists;
    lists.reserve(distinct.size());
    for (const std::string& q : distinct) {
      SIMDB_ASSIGN_OR_RETURN(std::vector<int64_t> list, PostingList(q));
      ++local.lists_probed;
      local.postings_read += list.size();
      if (!list.empty()) lists.push_back(std::move(list));
    }
    using Head = std::pair<int64_t, size_t>;  // (pk, list id)
    std::priority_queue<Head, std::vector<Head>, std::greater<Head>> heap;
    std::vector<size_t> pos(lists.size(), 0);
    for (size_t i = 0; i < lists.size(); ++i) heap.push({lists[i][0], i});
    while (!heap.empty()) {
      int64_t pk = heap.top().first;
      int count = 0;
      while (!heap.empty() && heap.top().first == pk) {
        auto [_, li] = heap.top();
        heap.pop();
        ++count;
        if (++pos[li] < lists[li].size()) heap.push({lists[li][pos[li]], li});
      }
      if (count >= t) result.push_back(pk);
    }
  }

  local.candidates = result.size();
  if (stats != nullptr) {
    stats->lists_probed += local.lists_probed;
    stats->postings_read += local.postings_read;
    stats->candidates += local.candidates;
  }
  return result;
}

}  // namespace simdb::storage
