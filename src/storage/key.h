#ifndef SIMDB_STORAGE_KEY_H_
#define SIMDB_STORAGE_KEY_H_

#include <string>
#include <string_view>
#include <vector>

#include "adm/value.h"
#include "common/result.h"

namespace simdb::storage {

/// Index keys are small tuples of ADM values, e.g. [pk] for the primary
/// index, [token, pk] for inverted indexes, [field, pk] for secondary
/// B+-trees. Ordering is lexicographic over Value::Compare.
using CompositeKey = std::vector<adm::Value>;

int CompareKeys(const CompositeKey& a, const CompositeKey& b);

struct KeyLess {
  bool operator()(const CompositeKey& a, const CompositeKey& b) const {
    return CompareKeys(a, b) < 0;
  }
};

std::string EncodeKey(const CompositeKey& key);
Result<CompositeKey> DecodeKey(std::string_view data);

std::string KeyToString(const CompositeKey& key);

}  // namespace simdb::storage

#endif  // SIMDB_STORAGE_KEY_H_
