#include "storage/lsm_index.h"

#include <algorithm>
#include <cstdio>

#include "common/logging.h"
#include "storage/file_util.h"

namespace simdb::storage {

namespace {

/// One source feeding the merged view: either the memtable (age 0, newest) or
/// a disk run (age = 1 + run position, newest first).
struct MergeSource {
  virtual ~MergeSource() = default;
  virtual bool Valid() const = 0;
  virtual const CompositeKey& key() const = 0;
  virtual bool is_tombstone() const = 0;
  virtual const std::string& value() const = 0;
  virtual Status Next() = 0;
};

class MemtableSource : public MergeSource {
 public:
  using Map = std::map<CompositeKey, std::optional<std::string>, KeyLess>;

  MemtableSource(const Map& map, const CompositeKey* lower,
                 const CompositeKey* upper) {
    it_ = lower ? map.lower_bound(*lower) : map.begin();
    end_ = upper ? map.lower_bound(*upper) : map.end();
  }

  bool Valid() const override { return it_ != end_; }
  const CompositeKey& key() const override { return it_->first; }
  bool is_tombstone() const override { return !it_->second.has_value(); }
  const std::string& value() const override { return *it_->second; }
  Status Next() override {
    ++it_;
    return Status::OK();
  }

 private:
  Map::const_iterator it_, end_;
};

class RunSource : public MergeSource {
 public:
  explicit RunSource(std::unique_ptr<SortedRunReader::Iterator> it)
      : it_(std::move(it)) {}

  bool Valid() const override { return it_->Valid(); }
  const CompositeKey& key() const override { return it_->key(); }
  bool is_tombstone() const override {
    return it_->kind() == EntryKind::kTombstone;
  }
  const std::string& value() const override { return it_->value(); }
  Status Next() override { return it_->Next(); }

 private:
  std::unique_ptr<SortedRunReader::Iterator> it_;
};

/// K-way merge honoring LSM precedence: among equal keys the lowest age
/// (newest) wins and older duplicates are consumed silently.
class MergedIterator : public LsmIndex::Iterator {
 public:
  MergedIterator(std::vector<std::unique_ptr<MergeSource>> sources,
                 bool skip_tombstones, const CompositeKey* upper_bound = nullptr)
      : sources_(std::move(sources)),
        skip_tombstones_(skip_tombstones),
        upper_bound_(upper_bound ? std::optional<CompositeKey>(*upper_bound)
                                 : std::nullopt) {}

  Status Init() { return FindNext(); }

  bool Valid() const override { return valid_; }
  const CompositeKey& key() const override { return key_; }
  const std::string& value() const override { return value_; }
  bool is_tombstone() const { return tombstone_; }

  Status Next() override { return FindNext(); }

 private:
  Status FindNext() {
    for (;;) {
      // Pick the smallest key; ties resolved by source order (newest first).
      int best = -1;
      for (size_t i = 0; i < sources_.size(); ++i) {
        if (!sources_[i]->Valid()) continue;
        if (best < 0 ||
            CompareKeys(sources_[i]->key(), sources_[best]->key()) < 0) {
          best = static_cast<int>(i);
        }
      }
      if (best < 0) {
        valid_ = false;
        return Status::OK();
      }
      key_ = sources_[best]->key();
      if (upper_bound_.has_value() &&
          CompareKeys(key_, *upper_bound_) >= 0) {
        valid_ = false;
        return Status::OK();
      }
      tombstone_ = sources_[best]->is_tombstone();
      if (!tombstone_) value_ = sources_[best]->value();
      // Consume this key from every source that carries it.
      for (auto& src : sources_) {
        while (src->Valid() && CompareKeys(src->key(), key_) == 0) {
          SIMDB_RETURN_IF_ERROR(src->Next());
        }
      }
      if (tombstone_ && skip_tombstones_) continue;
      valid_ = true;
      return Status::OK();
    }
  }

  std::vector<std::unique_ptr<MergeSource>> sources_;
  bool skip_tombstones_;
  std::optional<CompositeKey> upper_bound_;
  bool valid_ = false;
  bool tombstone_ = false;
  CompositeKey key_;
  std::string value_;
};

}  // namespace

LsmIndex::LsmIndex(std::string dir, LsmOptions options)
    : dir_(std::move(dir)), options_(options) {}

Result<std::unique_ptr<LsmIndex>> LsmIndex::Open(std::string dir,
                                                 LsmOptions options) {
  SIMDB_RETURN_IF_ERROR(EnsureDir(dir));
  auto index = std::unique_ptr<LsmIndex>(new LsmIndex(dir, options));
  SIMDB_ASSIGN_OR_RETURN(std::vector<std::string> files, ListFiles(dir));
  // Run files are named run_<seq>.dat; newest (highest seq) first.
  std::vector<std::string> run_files;
  for (const std::string& f : files) {
    if (f.rfind("run_", 0) == 0 && f.size() > 8 &&
        f.substr(f.size() - 4) == ".dat") {
      run_files.push_back(f);
    }
  }
  std::sort(run_files.rbegin(), run_files.rend());
  for (const std::string& f : run_files) {
    SIMDB_ASSIGN_OR_RETURN(auto reader, SortedRunReader::Open(dir + "/" + f));
    index->runs_.push_back(std::move(reader));
    uint64_t seq = std::strtoull(f.substr(4, f.size() - 8).c_str(), nullptr, 10);
    index->next_run_seq_ = std::max(index->next_run_seq_, seq + 1);
  }
  return index;
}

std::string LsmIndex::NextRunPath() {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "run_%08llu.dat",
                static_cast<unsigned long long>(next_run_seq_++));
  return dir_ + "/" + buf;
}

Status LsmIndex::Put(const CompositeKey& key, std::string value) {
  size_t delta = EncodeKey(key).size() + value.size() + 64;
  auto [it, inserted] = memtable_.insert_or_assign(key, std::move(value));
  (void)it;
  (void)inserted;
  mem_bytes_ += delta;
  return MaybeFlush();
}

Status LsmIndex::Delete(const CompositeKey& key) {
  mem_bytes_ += EncodeKey(key).size() + 64;
  memtable_.insert_or_assign(key, std::nullopt);
  return MaybeFlush();
}

Status LsmIndex::MaybeFlush() {
  if (mem_bytes_ < options_.memtable_budget_bytes) return Status::OK();
  return Flush();
}

Result<std::optional<std::string>> LsmIndex::Get(
    const CompositeKey& key) const {
  auto it = memtable_.find(key);
  if (it != memtable_.end()) {
    if (!it->second.has_value()) return std::optional<std::string>();
    return std::make_optional(*it->second);
  }
  for (const auto& run : runs_) {
    SIMDB_ASSIGN_OR_RETURN(auto entry, run->Get(key));
    if (entry.has_value()) {
      if (entry->first == EntryKind::kTombstone) {
        return std::optional<std::string>();
      }
      return std::make_optional(std::move(entry->second));
    }
  }
  return std::optional<std::string>();
}

Result<std::unique_ptr<LsmIndex::Iterator>> LsmIndex::NewIterator(
    const CompositeKey* lower_bound, const CompositeKey* upper_bound) const {
  std::vector<std::unique_ptr<MergeSource>> sources;
  sources.push_back(
      std::make_unique<MemtableSource>(memtable_, lower_bound, upper_bound));
  for (const auto& run : runs_) {
    SIMDB_ASSIGN_OR_RETURN(auto it, run->NewIterator(lower_bound));
    sources.push_back(std::make_unique<RunSource>(std::move(it)));
  }
  auto merged = std::make_unique<MergedIterator>(
      std::move(sources), /*skip_tombstones=*/true, upper_bound);
  SIMDB_RETURN_IF_ERROR(merged->Init());
  return std::unique_ptr<Iterator>(std::move(merged));
}

Status LsmIndex::Flush() {
  if (memtable_.empty()) return Status::OK();
  std::string path = NextRunPath();
  SortedRunWriter writer(path, options_.sparse_interval);
  for (const auto& [key, value] : memtable_) {
    SIMDB_RETURN_IF_ERROR(
        writer.Add(value.has_value() ? EntryKind::kPut : EntryKind::kTombstone,
                   key, value.has_value() ? *value : std::string()));
  }
  SIMDB_RETURN_IF_ERROR(writer.Finish());
  SIMDB_ASSIGN_OR_RETURN(auto reader, SortedRunReader::Open(path));
  runs_.insert(runs_.begin(), std::move(reader));
  memtable_.clear();
  mem_bytes_ = 0;
  return MaybeMerge();
}

Status LsmIndex::MaybeMerge() {
  if (static_cast<int>(runs_.size()) <= options_.max_runs) return Status::OK();
  if (options_.merge_policy == MergePolicy::kFullMerge) return Compact();
  // Size-tiered: find the newest contiguous group of >= tier_min_runs runs
  // whose sizes are within size_ratio of the group's smallest member.
  for (size_t first = 0; first + 1 < runs_.size(); ++first) {
    uint64_t smallest = runs_[first]->file_size();
    size_t last = first;
    for (size_t i = first; i < runs_.size(); ++i) {
      uint64_t size = runs_[i]->file_size();
      uint64_t lo = std::min(smallest, size);
      uint64_t hi = std::max(smallest, size);
      if (lo == 0 ||
          static_cast<double>(hi) / static_cast<double>(lo) >
              options_.size_ratio) {
        break;
      }
      smallest = lo;
      last = i;
    }
    if (static_cast<int>(last - first + 1) >= options_.tier_min_runs) {
      return CompactRange(first, last);
    }
  }
  // No tier qualifies but we are over budget: merge the newest pair so the
  // run count stays bounded.
  return CompactRange(0, 1);
}

Status LsmIndex::Compact() {
  if (runs_.size() <= 1) return Status::OK();
  return CompactRange(0, runs_.size() - 1);
}

Status LsmIndex::CompactRange(size_t first, size_t last) {
  if (first >= last || last >= runs_.size()) return Status::OK();
  // Tombstones may only be dropped when the merge covers the oldest run;
  // otherwise they must keep shadowing entries in older components.
  bool covers_oldest = last == runs_.size() - 1;
  std::vector<std::unique_ptr<MergeSource>> sources;
  for (size_t i = first; i <= last; ++i) {
    SIMDB_ASSIGN_OR_RETURN(auto it, runs_[i]->NewIterator(nullptr));
    sources.push_back(std::make_unique<RunSource>(std::move(it)));
  }
  MergedIterator merged(std::move(sources),
                        /*skip_tombstones=*/covers_oldest);
  SIMDB_RETURN_IF_ERROR(merged.Init());

  std::string path = NextRunPath();
  SortedRunWriter writer(path, options_.sparse_interval);
  while (merged.Valid()) {
    SIMDB_RETURN_IF_ERROR(writer.Add(
        merged.is_tombstone() ? EntryKind::kTombstone : EntryKind::kPut,
        merged.key(), merged.is_tombstone() ? "" : merged.value()));
    SIMDB_RETURN_IF_ERROR(merged.Next());
  }
  SIMDB_RETURN_IF_ERROR(writer.Finish());

  std::vector<std::string> old_paths;
  for (size_t i = first; i <= last; ++i) old_paths.push_back(runs_[i]->path());
  SIMDB_ASSIGN_OR_RETURN(auto reader, SortedRunReader::Open(path));
  runs_.erase(runs_.begin() + static_cast<std::ptrdiff_t>(first),
              runs_.begin() + static_cast<std::ptrdiff_t>(last) + 1);
  runs_.insert(runs_.begin() + static_cast<std::ptrdiff_t>(first),
               std::move(reader));
  for (const std::string& p : old_paths) {
    SIMDB_RETURN_IF_ERROR(RemoveAll(p));
  }
  return Status::OK();
}

Status LsmIndex::BulkLoadSorted(
    const std::vector<std::pair<CompositeKey, std::string>>& entries) {
  if (entries.empty()) return Status::OK();
  std::string path = NextRunPath();
  SortedRunWriter writer(path, options_.sparse_interval);
  for (const auto& [key, value] : entries) {
    SIMDB_RETURN_IF_ERROR(writer.Add(EntryKind::kPut, key, value));
  }
  SIMDB_RETURN_IF_ERROR(writer.Finish());
  SIMDB_ASSIGN_OR_RETURN(auto reader, SortedRunReader::Open(path));
  runs_.insert(runs_.begin(), std::move(reader));
  return Status::OK();
}

uint64_t LsmIndex::DiskSizeBytes() const {
  uint64_t total = 0;
  for (const auto& run : runs_) total += run->file_size();
  return total;
}

}  // namespace simdb::storage
