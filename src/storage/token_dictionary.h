#ifndef SIMDB_STORAGE_TOKEN_DICTIONARY_H_
#define SIMDB_STORAGE_TOKEN_DICTIONARY_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace simdb::storage {

/// Maps index tokens to dense `uint32_t` ids. Ids are assigned in ascending
/// global-frequency order (ties broken by token text) whenever the dictionary
/// is rebuilt from a full token census — exactly the global token order the
/// paper's three-stage join computes in stage 1, so a token list sorted by id
/// has the prefix-filter prefix as its leading elements. Tokens added
/// incrementally (index maintenance inserts) are appended with the next free
/// id; frequency order is only re-established by the next rebuild.
class TokenDictionary {
 public:
  /// Id of `token`, or nullopt when the token has never been seen. A miss
  /// proves the token is absent from the indexed data, so probes for unknown
  /// tokens can skip storage entirely.
  std::optional<uint32_t> Lookup(const std::string& token) const {
    auto it = ids_.find(token);
    if (it == ids_.end()) return std::nullopt;
    return it->second;
  }

  /// Id of `token`, assigning the next free id on first sight.
  uint32_t GetOrAssign(const std::string& token);

  const std::string& TokenOf(uint32_t id) const { return tokens_[id]; }
  size_t size() const { return tokens_.size(); }
  bool empty() const { return tokens_.empty(); }

  /// Replaces the mapping: ids 0..n-1 are assigned in ascending
  /// (frequency, token) order over `counts` (one entry per distinct token).
  void BuildFrequencyOrdered(
      std::vector<std::pair<std::string, uint64_t>> counts);

  void Clear();

 private:
  std::unordered_map<std::string, uint32_t> ids_;
  std::vector<std::string> tokens_;  // id -> token
};

}  // namespace simdb::storage

#endif  // SIMDB_STORAGE_TOKEN_DICTIONARY_H_
