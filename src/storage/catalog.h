#ifndef SIMDB_STORAGE_CATALOG_H_
#define SIMDB_STORAGE_CATALOG_H_

#include <map>
#include <memory>
#include <string>

#include "common/result.h"
#include "storage/dataset.h"

namespace simdb::storage {

/// Names the datasets of one engine instance (a "dataverse"). Owns the
/// Dataset objects and their on-disk directories under `root_dir`.
class Catalog {
 public:
  explicit Catalog(std::string root_dir, LsmOptions options = {})
      : root_dir_(std::move(root_dir)), options_(options) {}

  Result<Dataset*> CreateDataset(DatasetSpec spec);

  /// nullptr when absent.
  Dataset* Find(const std::string& name) const;

  Status DropDataset(const std::string& name);

  const std::string& root_dir() const { return root_dir_; }
  const LsmOptions& options() const { return options_; }

 private:
  std::string root_dir_;
  LsmOptions options_;
  std::map<std::string, std::unique_ptr<Dataset>> datasets_;
};

}  // namespace simdb::storage

#endif  // SIMDB_STORAGE_CATALOG_H_
