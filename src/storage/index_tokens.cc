#include "storage/index_tokens.h"

#include "similarity/similarity_function.h"
#include "similarity/tokenizer.h"

namespace simdb::storage {

using adm::Value;
using similarity::IndexKind;

Result<std::vector<std::string>> ExtractIndexTokens(const IndexSpec& spec,
                                                    const Value& field_value) {
  if (field_value.is_missing() || field_value.is_null()) {
    return std::vector<std::string>();
  }
  switch (spec.kind) {
    case IndexKind::kKeyword: {
      std::vector<std::string> tokens;
      if (field_value.is_string()) {
        tokens = similarity::WordTokens(field_value.AsString());
      } else if (field_value.is_list()) {
        SIMDB_ASSIGN_OR_RETURN(tokens,
                               similarity::ValueToTokens(field_value));
      } else {
        return Status::TypeError(
            "keyword index requires a string or list field, got " +
            std::string(adm::ValueTypeToString(field_value.type())));
      }
      return similarity::DedupOccurrences(tokens);
    }
    case IndexKind::kNGram: {
      if (!field_value.is_string()) {
        return Status::TypeError(
            "ngram index requires a string field, got " +
            std::string(adm::ValueTypeToString(field_value.type())));
      }
      std::vector<std::string> grams = similarity::GramTokens(
          field_value.AsString(), spec.gram_len, spec.pre_post_pad);
      return similarity::DedupOccurrences(grams);
    }
    case IndexKind::kBtree:
      return Status::InvalidArgument("btree index has no token extraction");
  }
  return Status::Internal("unreachable index kind");
}

}  // namespace simdb::storage
