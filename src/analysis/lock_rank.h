#ifndef SIMDB_ANALYSIS_LOCK_RANK_H_
#define SIMDB_ANALYSIS_LOCK_RANK_H_

#include <cstdint>
#include <string>
#include <vector>

// Runtime lock-rank deadlock detector (see docs/ANALYSIS.md, "Concurrency
// analysis"). Every simdb::Mutex / simdb::SharedMutex carries a static rank
// from the registry below; a thread may only acquire a mutex whose rank is
// STRICTLY GREATER than every rank it already holds (outermost locks have
// the lowest ranks). Any two threads that respect the ordering cannot form a
// cyclic wait, so a rank violation is a deadlock caught before it happens —
// on the first inverted acquisition, not on the unlucky interleaving.
//
// The checks run when SIMDB_LOCK_RANK_CHECKS is 1 (debug and sanitizer
// builds, see thread_annotations.h); Release builds compile the per-acquire
// hooks out entirely (no call, no branch — verified by a symbol check in
// CI's release job). This header itself stays dependency-free so the
// common-layer Mutex wrapper can call into it without a cycle.

namespace simdb::lockrank {

/// The project lock-rank registry, ordered outermost (acquired first,
/// lowest value) to innermost (leaf, highest value). Gaps leave room for new
/// locks without renumbering. The nesting pairs that pin each ordering are
/// documented in docs/ANALYSIS.md; the invariant enforced at runtime is
/// "acquire strictly ascending".
enum class Rank : int {
  /// core::QueryProcessor::state_mu_ — held (shared) for a query's whole
  /// execution, so every other engine lock nests inside it.
  kEngineState = 100,
  /// serving::QueryEngine::mu_ — admission queue; metrics are bumped while
  /// it is held.
  kServingEngine = 200,
  /// serving::QueryTicket::mu_ — per-ticket lifecycle state.
  kServingTicket = 300,
  /// hyracks scheduler run state — pool Submit happens under it.
  kScheduler = 400,
  /// ThreadPool::mu_ — task queue; acquired from LaunchLocked under the
  /// scheduler mutex.
  kThreadPool = 500,
  /// ThreadPool::RunAll per-batch completion state.
  kPoolBatch = 550,
  /// storage::InvertedIndex::cache_mu_ — decoded-posting cache; LSM decode
  /// and logging may happen under it.
  kPostingCache = 600,
  /// transport backends: shm frame-slot pool, per-socket-worker channel
  /// mutexes. Metric handles may be materialized while one is held.
  kTransport = 700,
  /// obs::TraceCollector::mu_ — ring registration/drain.
  kTrace = 800,
  /// obs::MetricsRegistry::mu_ — name lookup; leaf of the engine paths.
  kMetrics = 900,
  /// Log-line serialization — callable from under any engine lock.
  kLogging = 1000,
  /// Test-only mutexes that sit below everything.
  kLeaf = 10000,
};

/// One entry of a thread's held-lock stack.
struct HeldLock {
  int rank = 0;
  const char* name = "";
  const void* mutex = nullptr;
};

/// A detected rank inversion. `message` renders both sides of the cycle:
/// the acquiring thread's full held stack plus the recorded stack under
/// which each conflicting mutex was last acquired (the opposing edge).
struct Violation {
  std::string message;
};

/// Handler invoked on every violation. The default logs the report to
/// stderr and aborts (a rank inversion is a latent deadlock; tests must
/// fail loudly). Returns the previous handler so tests can capture reports
/// and restore the default.
using Handler = void (*)(const Violation&);
Handler SetHandlerForTest(Handler handler);

/// Total violations reported by this process (monotonic, all threads).
uint64_t violation_count();

/// Hooks called by simdb::Mutex when SIMDB_LOCK_RANK_CHECKS is 1. OnAcquire
/// checks `rank` against the calling thread's held stack BEFORE blocking on
/// the lock (the whole point is to report the inversion instead of
/// deadlocking) and pushes it; OnRelease pops it. Recursive acquisition of
/// the same mutex is reported as a violation too (rank equal to itself).
void OnAcquire(int rank, const char* name, const void* mutex);
void OnRelease(const void* mutex);

/// The calling thread's current held stack, outermost first (test hook).
std::vector<HeldLock> CurrentThreadHeld();

}  // namespace simdb::lockrank

#endif  // SIMDB_ANALYSIS_LOCK_RANK_H_
