#ifndef SIMDB_ANALYSIS_RULE_CONTRACT_H_
#define SIMDB_ANALYSIS_RULE_CONTRACT_H_

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "algebricks/rules.h"
#include "common/result.h"
#include "storage/catalog.h"

namespace simdb::analysis {

/// PlanCheckHook that enforces each rewrite rule's declared `RuleContract`
/// after every application and runs the full `PlanVerifier` on the rewritten
/// plan. Install into `OptContext::check_hook` (done by the engine when
/// `EngineOptions::verify_plans` is set).
///
/// On a violation the returned PlanError names the offending rule, states the
/// broken contract clause, includes the seed plan (the plan before the rule
/// fired), and a minimized line diff between the before and after plans.
class RuleContractChecker : public algebricks::PlanCheckHook {
 public:
  explicit RuleContractChecker(const storage::Catalog* catalog)
      : catalog_(catalog) {}

  void BeforeApply(const algebricks::RewriteRule& rule,
                   const algebricks::LOpPtr& op,
                   const algebricks::LOpPtr& root) override;
  Status AfterApply(const algebricks::RewriteRule& rule,
                    const algebricks::LOpPtr& op,
                    const algebricks::LOpPtr& root, bool fired) override;
  Status AfterGlobalRewrite(const std::string& name,
                            const algebricks::LOpPtr& root) override;

 private:
  Status Violation(const std::string& rule, const std::string& clause,
                   const algebricks::LOpPtr& root) const;
  /// Re-renders the plan and the shared-node snapshot if the plan changed
  /// since the last call (a rule fired or a different root was passed).
  /// Non-firing attempts reuse the cache, which keeps the per-attempt cost
  /// proportional to the matched subtree, not the whole plan.
  void RefreshPlanSnapshot(const algebricks::LOpPtr& root);
  /// Bitmask of the operator kinds present in the subtree under `op`,
  /// memoized per plan generation (the memo is dropped whenever a rule
  /// fires).
  uint32_t KindMask(const algebricks::LOp* op);

  const storage::Catalog* catalog_;

  // Whole-plan snapshot, valid until a rule fires (see RefreshPlanSnapshot).
  // The root is held as an owning pointer so a later plan can never alias
  // the snapshot's address after the original root is freed.
  bool snapshot_valid_ = false;
  algebricks::LOpPtr snapshot_root_;
  /// Rendering of every shared (multi-parent) node of the whole plan, to
  /// detect in-place mutation of a reused subplan. The keys are owning
  /// pointers so a rewrite that unlinks a shared subtree cannot leave the
  /// snapshot dangling.
  std::map<algebricks::LOpPtr, std::string> shared_before_;
  std::string root_before_;
  /// Per-edge memos, valid for the current plan generation only: the plan is
  /// immutable between fires, so revisits of the same edge (other rules,
  /// later passes) reuse them instead of re-walking the subtree.
  std::unordered_map<const algebricks::LOp*,
                     std::optional<std::set<std::string>>>
      out_vars_memo_;
  std::unordered_map<const algebricks::LOp*, uint32_t> kind_mask_memo_;

  // Per-attempt snapshot taken by BeforeApply, consumed by AfterApply.
  bool armed_ = false;
  const algebricks::LOp* op_before_ = nullptr;
  algebricks::LOpKind kind_before_{};
  std::vector<const algebricks::LOp*> input_ptrs_before_;
  const std::optional<std::set<std::string>>* out_vars_before_ = nullptr;
  uint32_t kinds_before_mask_ = 0;
};

/// Minimized line diff between two plan renderings: strips the common prefix
/// and suffix lines and shows the differing middle as `- old` / `+ new`.
std::string MinimizedPlanDiff(const std::string& before,
                              const std::string& after);

}  // namespace simdb::analysis

#endif  // SIMDB_ANALYSIS_RULE_CONTRACT_H_
