// simdb_planlint: standalone linter for logical plans and generated jobs.
//
//   simdb_planlint <plan.json>            lint a serialized logical plan
//   simdb_planlint --job <plan.json>      also lower to a hyracks job and
//                                         run the task-graph verifier
//   simdb_planlint --aql <program.aql>    compile an AQL program with plan
//                                         verification enabled (DDL is
//                                         executed; the last query is
//                                         compiled and verified)
//
// Options: --nodes N, --parts P (cluster topology for --job; default 1x2),
// --dump (print the plan back as JSON after linting), --data-dir DIR
// (scratch directory for --aql; default /tmp/simdb_planlint).
// `-` reads the plan from stdin. Exit status: 0 clean, 1 violations found,
// 2 usage/IO errors.

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "algebricks/jobgen.h"
#include "analysis/dag_verifier.h"
#include "analysis/plan_serde.h"
#include "analysis/plan_verifier.h"
#include "core/query_processor.h"

namespace {

int Usage() {
  std::cerr << "usage: simdb_planlint [--job] [--nodes N] [--parts P] "
               "[--dump] <plan.json|->\n"
               "       simdb_planlint --aql <program.aql> [--data-dir DIR]\n";
  return 2;
}

bool ReadInput(const std::string& path, std::string* out) {
  if (path == "-") {
    std::ostringstream buf;
    buf << std::cin.rdbuf();
    *out = buf.str();
    return true;
  }
  std::ifstream in(path);
  if (!in) {
    std::cerr << "simdb_planlint: cannot read " << path << "\n";
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

int LintAql(const std::string& path, const std::string& data_dir) {
  std::string program;
  if (!ReadInput(path, &program)) return 2;
  simdb::core::EngineOptions options;
  options.data_dir = data_dir;
  options.verify_plans = true;
  simdb::core::QueryProcessor engine(std::move(options));
  simdb::Result<std::string> plan = engine.Explain(program);
  if (!plan.ok()) {
    std::cerr << plan.status().ToString() << "\n";
    return 1;
  }
  std::cout << plan.value();
  std::cout << "plan verified: ok\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool lower_job = false;
  bool dump = false;
  std::string aql_path;
  std::string data_dir = "/tmp/simdb_planlint";
  int nodes = 1;
  int parts = 2;
  std::string plan_path;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--job") {
      lower_job = true;
    } else if (arg == "--dump") {
      dump = true;
    } else if (arg == "--aql") {
      const char* v = next();
      if (v == nullptr) return Usage();
      aql_path = v;
    } else if (arg == "--data-dir") {
      const char* v = next();
      if (v == nullptr) return Usage();
      data_dir = v;
    } else if (arg == "--nodes") {
      const char* v = next();
      if (v == nullptr) return Usage();
      nodes = std::atoi(v);
    } else if (arg == "--parts") {
      const char* v = next();
      if (v == nullptr) return Usage();
      parts = std::atoi(v);
    } else if (!arg.empty() && arg[0] == '-' && arg != "-") {
      return Usage();
    } else if (plan_path.empty()) {
      plan_path = arg;
    } else {
      return Usage();
    }
  }

  if (!aql_path.empty()) return LintAql(aql_path, data_dir);
  if (plan_path.empty() || nodes < 1 || parts < 1) return Usage();

  std::string text;
  if (!ReadInput(plan_path, &text)) return 2;

  simdb::Result<simdb::algebricks::LOpPtr> plan =
      simdb::analysis::PlanFromJson(text);
  if (!plan.ok()) {
    std::cerr << plan.status().ToString() << "\n";
    return 1;
  }

  simdb::Status verified = simdb::analysis::PlanVerifier::Verify(plan.value());
  if (!verified.ok()) {
    std::cerr << verified.ToString() << "\n";
    return 1;
  }

  if (lower_job) {
    simdb::hyracks::Job job;
    simdb::algebricks::JobGenerator jobgen;
    simdb::Status lowered = jobgen.Generate(plan.value(), &job);
    if (!lowered.ok()) {
      std::cerr << lowered.ToString() << "\n";
      return 1;
    }
    simdb::hyracks::ClusterTopology topology{nodes, parts};
    simdb::Status dag = simdb::analysis::DagVerifier::Verify(job, topology);
    if (!dag.ok()) {
      std::cerr << dag.ToString() << "\n";
      return 1;
    }
  }

  if (dump) std::cout << simdb::analysis::PlanToJson(plan.value()) << "\n";
  std::cout << "plan verified: ok\n";
  return 0;
}
