#ifndef SIMDB_ANALYSIS_PLAN_VERIFIER_H_
#define SIMDB_ANALYSIS_PLAN_VERIFIER_H_

#include "algebricks/lop.h"
#include "common/result.h"
#include "storage/catalog.h"

namespace simdb::analysis {

/// Static checker for logical plans. Verifies, for the whole DAG:
///
///   structure    - per-kind input arity, required fields present, no
///                  null inputs/expressions, no cycles;
///   variables    - every variable an expression uses is produced by exactly
///                  one upstream binding (no dangling uses, no duplicate
///                  bindings, disjoint join branches, union branches cover
///                  the union schema);
///   expressions  - well-formed shape per node kind and, for calls, a known
///                  runtime function with matching arity;
///   guards       - rewrite-rule preconditions that must hold in *every*
///                  plan, e.g. an inverted-index jaccard search requires a
///                  strictly positive threshold (the delta<=0 guard);
///   properties   - logical partitioning/ordering properties: RANK needs a
///                  gathered (globally ordered) input, PRIMARY-LOOKUP needs
///                  a pk that is partition-aligned with its dataset (it only
///                  probes the local partition);
///   catalog      - when a catalog is supplied, referenced datasets and
///                  indexes exist.
///
/// Returns OK or the first violation as a deterministic PlanError. The walk
/// is DAG-aware: shared subplans are verified once.
class PlanVerifier {
 public:
  static Status Verify(const algebricks::LOpPtr& root,
                       const storage::Catalog* catalog = nullptr);
};

}  // namespace simdb::analysis

#endif  // SIMDB_ANALYSIS_PLAN_VERIFIER_H_
