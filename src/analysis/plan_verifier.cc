#include "analysis/plan_verifier.h"

#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "hyracks/functions.h"
#include "storage/dataset.h"

namespace simdb::analysis {

namespace {

using algebricks::LAgg;
using algebricks::LExpr;
using algebricks::LExprPtr;
using algebricks::LOp;
using algebricks::LOpKind;
using algebricks::LOpKindToString;
using algebricks::LOpPtr;
using algebricks::LSortKey;

std::string Kind(const LOp& op) { return std::string(LOpKindToString(op.kind)); }

Status Violation(const LOp& op, const std::string& message) {
  return Status::PlanError("plan verifier: " + Kind(op) + ": " + message);
}

/// Expected input count per kind; -1 means "exactly 2" is checked elsewhere.
int ExpectedInputs(LOpKind kind) {
  switch (kind) {
    case LOpKind::kDataScan:
    case LOpKind::kConstantTuple:
      return 0;
    case LOpKind::kJoin:
    case LOpKind::kUnionAll:
      return 2;
    default:
      return 1;
  }
}

/// Per-node facts computed bottom-up and memoized across shared subplans.
struct NodeInfo {
  /// Variables visible in the node's output, in schema order.
  std::vector<std::string> vars;
  /// True when all rows sit in one coordinator partition in a defined order
  /// (CONSTANT-TUPLE, ORDER-BY, RANK, and anything that preserves them).
  bool gathered = false;
  /// Variables whose value is partition-aligned with a dataset: a row in
  /// partition p carries a pk (or record) of dataset partition p. Keyed by
  /// variable, value = dataset name.
  std::map<std::string, std::string> aligned;
};

class Checker {
 public:
  explicit Checker(const storage::Catalog* catalog) : catalog_(catalog) {}

  Result<NodeInfo> Visit(const LOpPtr& op) {
    if (op == nullptr) return Status::PlanError("plan verifier: null operator");
    auto it = memo_.find(op.get());
    if (it != memo_.end()) return it->second;
    if (!on_stack_.insert(op.get()).second) {
      return Status::PlanError("plan verifier: cycle in logical plan at " +
                               Kind(*op));
    }
    Result<NodeInfo> info = Check(*op);
    on_stack_.erase(op.get());
    if (info.ok()) memo_.emplace(op.get(), *info);
    return info;
  }

 private:
  /// Every variable `expr` references must be bound in `bound`.
  Status CheckExprVars(const LOp& op, const LExprPtr& expr,
                       const std::set<std::string>& bound,
                       const char* what) {
    std::set<std::string> used;
    expr->CollectVars(&used);
    for (const std::string& v : used) {
      if (bound.count(v) == 0) {
        return Violation(op, std::string(what) + " uses unbound variable $" +
                                 v + " in " + expr->ToString());
      }
    }
    return Status::OK();
  }

  /// Structural expression check: null children, empty names, and for calls
  /// a known runtime function with matching arity. `count` is aliased to
  /// `len` by the job generator and `~=` desugars to sim-eq before job
  /// generation, so both names are accepted in intermediate plans.
  Status CheckExprShape(const LOp& op, const LExprPtr& expr) {
    if (expr == nullptr) return Violation(op, "null expression");
    switch (expr->kind) {
      case LExpr::Kind::kVar:
        if (expr->name.empty()) return Violation(op, "variable without name");
        break;
      case LExpr::Kind::kLiteral:
        break;
      case LExpr::Kind::kField:
        if (expr->children.size() != 1) {
          return Violation(op, "field access ." + expr->name + " needs " +
                                   "exactly one base expression");
        }
        break;
      case LExpr::Kind::kCall: {
        if (expr->name.empty()) return Violation(op, "call without name");
        if (expr->name != "sim-eq" && expr->name != "count") {
          const hyracks::FunctionDef* def =
              hyracks::FunctionRegistry::Global().Find(expr->name);
          if (def == nullptr) {
            return Violation(op, "call to unknown function " + expr->name);
          }
          int n = static_cast<int>(expr->children.size());
          if (n < def->min_args || n > def->max_args) {
            return Violation(op, "call " + expr->name + " with " +
                                     std::to_string(n) + " arguments");
          }
        }
        break;
      }
      case LExpr::Kind::kRecord:
        if (expr->field_names.size() != expr->children.size()) {
          return Violation(op, "record constructor with " +
                                   std::to_string(expr->field_names.size()) +
                                   " names for " +
                                   std::to_string(expr->children.size()) +
                                   " values");
        }
        break;
      case LExpr::Kind::kList:
        break;
    }
    for (const LExprPtr& c : expr->children) {
      SIMDB_RETURN_IF_ERROR(CheckExprShape(op, c));
    }
    return Status::OK();
  }

  Status CheckExpr(const LOp& op, const LExprPtr& expr,
                   const std::set<std::string>& bound, const char* what) {
    SIMDB_RETURN_IF_ERROR(CheckExprShape(op, expr));
    return CheckExprVars(op, expr, bound, what);
  }

  /// Adds a fresh binding, rejecting collisions with already-visible vars.
  Status Bind(const LOp& op, std::vector<std::string>& vars,
              std::set<std::string>& bound, const std::string& name) {
    if (name.empty()) return Violation(op, "empty variable name");
    if (!bound.insert(name).second) {
      return Violation(op, "duplicate variable binding $" + name);
    }
    vars.push_back(name);
    return Status::OK();
  }

  Status CheckDataset(const LOp& op, const std::string& dataset,
                      const std::string& index) {
    if (catalog_ == nullptr) return Status::OK();
    storage::Dataset* ds = catalog_->Find(dataset);
    if (ds == nullptr) {
      return Violation(op, "unknown dataset " + dataset);
    }
    if (!index.empty() && ds->FindIndex(index) == nullptr) {
      return Violation(op, "unknown index " + dataset + "." + index);
    }
    return Status::OK();
  }

  Result<NodeInfo> Check(const LOp& op) {
    int expected = ExpectedInputs(op.kind);
    if (static_cast<int>(op.inputs.size()) != expected) {
      return Violation(op, "expects " + std::to_string(expected) +
                               " inputs, has " +
                               std::to_string(op.inputs.size()));
    }
    std::vector<NodeInfo> in;
    in.reserve(op.inputs.size());
    for (const LOpPtr& input : op.inputs) {
      SIMDB_ASSIGN_OR_RETURN(NodeInfo info, Visit(input));
      in.push_back(std::move(info));
    }

    NodeInfo out;
    switch (op.kind) {
      case LOpKind::kDataScan: {
        if (op.dataset.empty()) return Violation(op, "empty dataset name");
        if (op.out_var.empty()) return Violation(op, "empty record variable");
        SIMDB_RETURN_IF_ERROR(CheckDataset(op, op.dataset, ""));
        out.vars = {op.out_var};
        out.aligned[op.out_var] = op.dataset;
        return out;
      }
      case LOpKind::kConstantTuple: {
        out.gathered = true;
        return out;
      }
      case LOpKind::kSelect: {
        std::set<std::string> bound(in[0].vars.begin(), in[0].vars.end());
        SIMDB_RETURN_IF_ERROR(CheckExpr(op, op.expr, bound, "condition"));
        out = in[0];
        return out;
      }
      case LOpKind::kAssign: {
        out = in[0];
        std::set<std::string> bound(out.vars.begin(), out.vars.end());
        if (op.assigns.empty()) return Violation(op, "no assignments");
        for (const auto& [name, e] : op.assigns) {
          // Later assigns of the same node may use earlier ones (the job
          // generator compiles them sequentially).
          SIMDB_RETURN_IF_ERROR(CheckExpr(op, e, bound, "assignment"));
          SIMDB_RETURN_IF_ERROR(Bind(op, out.vars, bound, name));
        }
        return out;
      }
      case LOpKind::kJoin: {
        std::set<std::string> bound;
        out.vars = in[0].vars;
        for (const std::string& v : in[0].vars) bound.insert(v);
        for (const std::string& v : in[1].vars) {
          if (bound.count(v) > 0) {
            return Violation(
                op, "variable $" + v + " is bound by both join branches");
          }
          bound.insert(v);
          out.vars.push_back(v);
        }
        SIMDB_RETURN_IF_ERROR(CheckExpr(op, op.expr, bound, "condition"));
        // An exchange may move rows of either side; alignment and gathering
        // are not preserved.
        return out;
      }
      case LOpKind::kGroupBy: {
        std::set<std::string> in_bound(in[0].vars.begin(), in[0].vars.end());
        std::set<std::string> bound;
        if (op.group_keys.empty() && op.group_aggs.empty()) {
          return Violation(op, "no keys and no aggregates");
        }
        for (const auto& [name, e] : op.group_keys) {
          SIMDB_RETURN_IF_ERROR(CheckExpr(op, e, in_bound, "group key"));
          SIMDB_RETURN_IF_ERROR(Bind(op, out.vars, bound, name));
        }
        for (const LAgg& agg : op.group_aggs) {
          if (agg.kind != LAgg::Kind::kCount) {
            if (agg.input == nullptr) {
              return Violation(op, "aggregate $" + agg.out_var +
                                       " without input expression");
            }
            SIMDB_RETURN_IF_ERROR(
                CheckExpr(op, agg.input, in_bound, "aggregate"));
          }
          SIMDB_RETURN_IF_ERROR(Bind(op, out.vars, bound, agg.out_var));
        }
        return out;
      }
      case LOpKind::kOrderBy:
      case LOpKind::kLocalSort: {
        std::set<std::string> bound(in[0].vars.begin(), in[0].vars.end());
        if (op.sort_keys.empty()) return Violation(op, "no sort keys");
        for (const LSortKey& k : op.sort_keys) {
          SIMDB_RETURN_IF_ERROR(CheckExpr(op, k.expr, bound, "sort key"));
        }
        out = in[0];
        if (op.kind == LOpKind::kOrderBy) {
          out.gathered = true;     // merge-gathers into the coordinator
          out.aligned.clear();     // ... which moves rows across partitions
        }
        return out;
      }
      case LOpKind::kUnnest: {
        out = in[0];
        std::set<std::string> bound(out.vars.begin(), out.vars.end());
        SIMDB_RETURN_IF_ERROR(CheckExpr(op, op.expr, bound, "list"));
        SIMDB_RETURN_IF_ERROR(Bind(op, out.vars, bound, op.out_var));
        if (!op.pos_var.empty()) {
          SIMDB_RETURN_IF_ERROR(Bind(op, out.vars, bound, op.pos_var));
        }
        return out;
      }
      case LOpKind::kProject: {
        std::set<std::string> bound(in[0].vars.begin(), in[0].vars.end());
        std::set<std::string> kept;
        for (const std::string& v : op.project_vars) {
          if (bound.count(v) == 0) {
            return Violation(op, "projects unbound variable $" + v);
          }
          if (!kept.insert(v).second) {
            return Violation(op, "duplicate variable binding $" + v);
          }
        }
        out.vars = op.project_vars;
        out.gathered = in[0].gathered;
        for (const auto& [v, ds] : in[0].aligned) {
          if (kept.count(v) > 0) out.aligned[v] = ds;
        }
        return out;
      }
      case LOpKind::kLimit: {
        if (op.limit < 0) {
          return Violation(op,
                           "negative limit " + std::to_string(op.limit));
        }
        out = in[0];
        return out;
      }
      case LOpKind::kUnionAll: {
        if (op.project_vars.empty()) {
          return Violation(op, "empty union schema");
        }
        for (size_t side = 0; side < in.size(); ++side) {
          std::set<std::string> have(in[side].vars.begin(),
                                     in[side].vars.end());
          for (const std::string& v : op.project_vars) {
            if (have.count(v) == 0) {
              return Violation(op, "branch " + std::to_string(side) +
                                       " does not produce union variable $" +
                                       v);
            }
          }
        }
        out.vars = op.project_vars;
        return out;
      }
      case LOpKind::kRank: {
        if (op.pos_var.empty()) return Violation(op, "empty rank variable");
        if (!in[0].gathered) {
          return Violation(op,
                           "requires a gathered (globally ordered) input; "
                           "got " +
                               Kind(*op.inputs[0]));
        }
        out = in[0];
        std::set<std::string> bound(out.vars.begin(), out.vars.end());
        SIMDB_RETURN_IF_ERROR(Bind(op, out.vars, bound, op.pos_var));
        return out;
      }
      case LOpKind::kIndexSearch:
      case LOpKind::kBtreeSearch: {
        if (op.dataset.empty()) return Violation(op, "empty dataset name");
        if (op.index_name.empty()) return Violation(op, "empty index name");
        if (op.pk_var.empty()) return Violation(op, "empty pk variable");
        SIMDB_RETURN_IF_ERROR(CheckDataset(op, op.dataset, op.index_name));
        std::set<std::string> bound(in[0].vars.begin(), in[0].vars.end());
        SIMDB_RETURN_IF_ERROR(CheckExpr(op, op.expr, bound, "search key"));
        if (op.kind == LOpKind::kIndexSearch) {
          using Fn = hyracks::SimSearchSpec::Fn;
          // The rewrite rules guard these: a jaccard T-occurrence search
          // with delta <= 0 would need T = 0 (match everything), which the
          // index cannot answer; a negative edit-distance bound is vacuous.
          if (op.sim_spec.fn == Fn::kJaccard && op.sim_spec.threshold <= 0) {
            return Violation(op, "jaccard search with threshold " +
                                     std::to_string(op.sim_spec.threshold) +
                                     " <= 0 (delta guard)");
          }
          if (op.sim_spec.fn == Fn::kEditDistance &&
              op.sim_spec.threshold < 0) {
            return Violation(op, "edit-distance search with negative bound");
          }
        }
        out.vars = in[0].vars;
        std::set<std::string> b2(out.vars.begin(), out.vars.end());
        SIMDB_RETURN_IF_ERROR(Bind(op, out.vars, b2, op.pk_var));
        // The emitted pk comes from the *local* partition's index: it is
        // aligned with the dataset. Input variables were broadcast to get
        // here, so their alignment (if any) is gone.
        out.aligned[op.pk_var] = op.dataset;
        return out;
      }
      case LOpKind::kPrimaryLookup: {
        if (op.dataset.empty()) return Violation(op, "empty dataset name");
        if (op.pk_var.empty()) return Violation(op, "empty pk variable");
        SIMDB_RETURN_IF_ERROR(CheckDataset(op, op.dataset, ""));
        std::set<std::string> bound(in[0].vars.begin(), in[0].vars.end());
        if (bound.count(op.pk_var) == 0) {
          return Violation(op, "pk variable $" + op.pk_var + " is not bound");
        }
        // The lookup probes only the local partition of the primary index:
        // rows whose pk lives elsewhere would be silently dropped. The pk
        // must be partition-aligned with the dataset (produced by an index
        // search on it and not moved by an exchange since).
        auto it = in[0].aligned.find(op.pk_var);
        if (it == in[0].aligned.end() || it->second != op.dataset) {
          return Violation(op, "pk $" + op.pk_var +
                                   " is not partition-aligned with dataset " +
                                   op.dataset);
        }
        out = in[0];
        std::set<std::string> b2(out.vars.begin(), out.vars.end());
        SIMDB_RETURN_IF_ERROR(Bind(op, out.vars, b2, op.out_var));
        out.aligned[op.out_var] = op.dataset;
        return out;
      }
    }
    return Status::Internal("plan verifier: unreachable LOp kind");
  }

  const storage::Catalog* catalog_;
  std::unordered_map<const LOp*, NodeInfo> memo_;
  std::unordered_set<const LOp*> on_stack_;
};

}  // namespace

Status PlanVerifier::Verify(const algebricks::LOpPtr& root,
                            const storage::Catalog* catalog) {
  if (root == nullptr) return Status::PlanError("plan verifier: null plan");
  Checker checker(catalog);
  return checker.Visit(root).status();
}

}  // namespace simdb::analysis
