#include "analysis/lock_rank.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <sstream>
#include <unordered_map>

namespace simdb::lockrank {
namespace {

// Per-thread held-lock stack. A plain vector: the hot path is push/pop at
// the back plus a linear scan over a handful of entries (engine threads
// hold at most ~4 locks at once).
thread_local std::vector<HeldLock> t_held;

// Per-mutex record of the held stack under which it was last acquired.
// This is the "other side" of a reported cycle: when thread A holding
// rank-high tries to acquire rank-low, the record for the rank-high mutex
// shows what some thread held on the path that established the opposite
// edge. Guarded by a raw std::mutex — this file is the detector itself, so
// it cannot use the ranked wrapper (allowlisted in simdb_lint).
struct AcquireRecord {
  const char* name = "";
  std::vector<HeldLock> held_at_acquire;
};
std::mutex g_records_mu;  // simdb-lint: raw-mutex-ok (detector internals)
std::unordered_map<const void*, AcquireRecord>& Records() {
  static auto* records = new std::unordered_map<const void*, AcquireRecord>();
  return *records;
}

std::atomic<uint64_t> g_violations{0};

void AppendStack(std::ostringstream& out, const std::vector<HeldLock>& held) {
  if (held.empty()) {
    out << "    (no locks held)\n";
    return;
  }
  for (const HeldLock& h : held) {
    out << "    rank " << h.rank << "  " << h.name << "  (" << h.mutex
        << ")\n";
  }
}

void DefaultHandler(const Violation& v) {
  std::fprintf(stderr, "%s", v.message.c_str());
  std::fflush(stderr);
  std::abort();
}

std::atomic<Handler> g_handler{&DefaultHandler};

void Report(int rank, const char* name, const void* mutex,
            const HeldLock& conflict) {
  g_violations.fetch_add(1, std::memory_order_relaxed);
  std::ostringstream out;
  out << "[lock-rank] rank inversion: acquiring rank " << rank << "  " << name
      << "  (" << mutex << ")\n"
      << "  while holding rank " << conflict.rank << "  " << conflict.name
      << "  (" << conflict.mutex << ")\n"
      << "  this thread's held stack (outermost first):\n";
  AppendStack(out, t_held);
  {
    std::lock_guard<std::mutex> lock(g_records_mu);
    auto it = Records().find(conflict.mutex);
    if (it != Records().end()) {
      out << "  " << it->second.name
          << " was last acquired while holding (the opposing cycle edge):\n";
      AppendStack(out, it->second.held_at_acquire);
    }
  }
  out << "  fix: acquire in ascending rank order (see src/analysis/"
         "lock_rank.h and docs/ANALYSIS.md)\n";
  Violation v{out.str()};
  g_handler.load(std::memory_order_acquire)(v);
}

}  // namespace

Handler SetHandlerForTest(Handler handler) {
  return g_handler.exchange(handler ? handler : &DefaultHandler,
                            std::memory_order_acq_rel);
}

uint64_t violation_count() {
  return g_violations.load(std::memory_order_relaxed);
}

void OnAcquire(int rank, const char* name, const void* mutex) {
  // Check before blocking: the report must fire instead of the deadlock.
  for (const HeldLock& h : t_held) {
    if (h.rank >= rank || h.mutex == mutex) {
      Report(rank, name, mutex, h);
      break;  // report once per acquire, against the outermost conflict
    }
  }
  {
    std::lock_guard<std::mutex> lock(g_records_mu);
    AcquireRecord& rec = Records()[mutex];
    rec.name = name;
    rec.held_at_acquire = t_held;
  }
  t_held.push_back(HeldLock{rank, name, mutex});
}

void OnRelease(const void* mutex) {
  // Locks are usually released LIFO, but scoped locks can unlock early or
  // out of order — scan from the back.
  for (auto it = t_held.rbegin(); it != t_held.rend(); ++it) {
    if (it->mutex == mutex) {
      t_held.erase(std::next(it).base());
      return;
    }
  }
}

std::vector<HeldLock> CurrentThreadHeld() { return t_held; }

}  // namespace simdb::lockrank
