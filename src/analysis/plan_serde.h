#ifndef SIMDB_ANALYSIS_PLAN_SERDE_H_
#define SIMDB_ANALYSIS_PLAN_SERDE_H_

#include <string>

#include "algebricks/lop.h"
#include "common/result.h"

namespace simdb::analysis {

/// JSON serialization of logical plans, used by the `simdb_planlint` CLI to
/// lint externally supplied plans and by tests to express invalid plans that
/// the in-process constructors refuse to build.
///
/// Format (version 1):
///
///   {"version": 1, "root": <id>,
///    "nodes": [{"id": 0, "kind": "DATA-SCAN", "inputs": [], ...}, ...]}
///
/// Node `kind` strings match `LOpKindToString`. `inputs` entries reference
/// node ids; sharing the same id from two parents reproduces a shared
/// subplan. An input id that is not defined by an earlier node is a parse
/// error — which is also how a cyclic plan manifests, since a cycle cannot
/// be ordered.
///
/// Expressions: {"kind": "var"|"lit"|"field"|"call"|"record"|"list", ...}
/// with "name" (var/field/call), "value" (lit, any ADM value), "base"
/// (field), "args"/"items"/"values" children, "names" (record), and
/// optional "bcast": true (call).
std::string PlanToJson(const algebricks::LOpPtr& root);

Result<algebricks::LOpPtr> PlanFromJson(const std::string& text);

}  // namespace simdb::analysis

#endif  // SIMDB_ANALYSIS_PLAN_SERDE_H_
