#ifndef SIMDB_ANALYSIS_DAG_VERIFIER_H_
#define SIMDB_ANALYSIS_DAG_VERIFIER_H_

#include <vector>

#include "common/result.h"
#include "hyracks/exec.h"

namespace simdb::analysis {

/// Static checker for generated hyracks jobs. Verifies:
///
///   shape       - non-empty, inputs reference earlier nodes only
///                 (acyclicity), every non-root node has a consumer,
///                 exchanges have exactly one input, partition operators
///                 satisfy their declared arity;
///   schemas     - every node's declared schema width is consistent with its
///                 operator and its inputs' widths (project columns, join
///                 key columns, exchange keys, lookup pk columns in range),
///                 and every compiled expression references only columns
///                 that exist in the operator's input;
///   properties  - partitioning-property inference: hash joins need
///                 co-hashed keys or a broadcast side, hash groups need
///                 keys-hashed input, index searches need a broadcast input,
///                 primary lookups need a partition-aligned pk column,
///                 rank-assign needs a gathered input, no exchange or union
///                 consumes a broadcast input (rows would be duplicated),
///                 and per-partition sort order is preserved into merge
///                 gathers;
///   steals      - the scheduler's tuple-steal plan is legal (a stolen
///                 input has exactly one consumer edge).
///
/// Returns OK or the first violation as a deterministic PlanError.
class DagVerifier {
 public:
  static Status Verify(const hyracks::Job& job,
                       const hyracks::ClusterTopology& topology);

  /// Edge-shape subset of Verify, callable without constructing a Job
  /// (Job::Add aborts on bad edges): inputs of node i must be in [0, i).
  static Status VerifyEdges(int num_nodes,
                            const std::vector<std::vector<int>>& inputs);

  /// Steal legality for a proposed steal plan: steals[i] requires node i to
  /// be an exchange whose single input has exactly one consumer edge.
  static Status VerifySteals(const hyracks::Job& job,
                             const std::vector<bool>& steals);
};

}  // namespace simdb::analysis

#endif  // SIMDB_ANALYSIS_DAG_VERIFIER_H_
