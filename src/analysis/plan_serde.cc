#include "analysis/plan_serde.h"

#include <map>
#include <unordered_map>
#include <vector>

#include "adm/value.h"

namespace simdb::analysis {

namespace {

using adm::Value;
using algebricks::LAgg;
using algebricks::LExpr;
using algebricks::LExprPtr;
using algebricks::LOp;
using algebricks::LOpKind;
using algebricks::LOpKindToString;
using algebricks::LOpPtr;
using algebricks::LSortKey;
using hyracks::SimSearchSpec;

// ---- serialization ----

Value ExprToValue(const LExprPtr& e);

Value ExprListToValue(const std::vector<LExprPtr>& exprs) {
  Value::Array items;
  for (const LExprPtr& e : exprs) items.push_back(ExprToValue(e));
  return Value::MakeArray(std::move(items));
}

Value ExprToValue(const LExprPtr& e) {
  Value::Object fields;
  switch (e->kind) {
    case LExpr::Kind::kVar:
      fields.emplace_back("kind", Value::String("var"));
      fields.emplace_back("name", Value::String(e->name));
      break;
    case LExpr::Kind::kLiteral:
      fields.emplace_back("kind", Value::String("lit"));
      fields.emplace_back("value", e->literal);
      break;
    case LExpr::Kind::kField:
      fields.emplace_back("kind", Value::String("field"));
      fields.emplace_back("name", Value::String(e->name));
      fields.emplace_back("base", ExprToValue(e->children[0]));
      break;
    case LExpr::Kind::kCall:
      fields.emplace_back("kind", Value::String("call"));
      fields.emplace_back("name", Value::String(e->name));
      fields.emplace_back("args", ExprListToValue(e->children));
      if (e->bcast_hint) fields.emplace_back("bcast", Value::Boolean(true));
      break;
    case LExpr::Kind::kRecord: {
      fields.emplace_back("kind", Value::String("record"));
      Value::Array names;
      for (const std::string& n : e->field_names) {
        names.push_back(Value::String(n));
      }
      fields.emplace_back("names", Value::MakeArray(std::move(names)));
      fields.emplace_back("values", ExprListToValue(e->children));
      break;
    }
    case LExpr::Kind::kList:
      fields.emplace_back("kind", Value::String("list"));
      fields.emplace_back("items", ExprListToValue(e->children));
      break;
  }
  return Value::MakeObject(std::move(fields));
}

std::string_view AggKindToString(LAgg::Kind k) {
  switch (k) {
    case LAgg::Kind::kListify: return "listify";
    case LAgg::Kind::kCount: return "count";
    case LAgg::Kind::kSum: return "sum";
    case LAgg::Kind::kMin: return "min";
    case LAgg::Kind::kMax: return "max";
    case LAgg::Kind::kFirst: return "first";
  }
  return "listify";
}

std::string_view SimFnToString(SimSearchSpec::Fn fn) {
  switch (fn) {
    case SimSearchSpec::Fn::kJaccard: return "jaccard";
    case SimSearchSpec::Fn::kEditDistance: return "edit-distance";
    case SimSearchSpec::Fn::kContains: return "contains";
  }
  return "jaccard";
}

Value NodeToValue(const LOp& op, int id, const std::vector<int>& inputs) {
  Value::Object f;
  f.emplace_back("id", Value::Int64(id));
  f.emplace_back("kind", Value::String(std::string(LOpKindToString(op.kind))));
  Value::Array ins;
  for (int in : inputs) ins.push_back(Value::Int64(in));
  f.emplace_back("inputs", Value::MakeArray(std::move(ins)));

  if (!op.dataset.empty()) f.emplace_back("dataset", Value::String(op.dataset));
  if (!op.out_var.empty()) f.emplace_back("out_var", Value::String(op.out_var));
  if (!op.pos_var.empty()) f.emplace_back("pos_var", Value::String(op.pos_var));
  if (op.expr != nullptr) f.emplace_back("expr", ExprToValue(op.expr));

  if (!op.assigns.empty()) {
    Value::Array assigns;
    for (const auto& [var, e] : op.assigns) {
      Value::Object a;
      a.emplace_back("var", Value::String(var));
      a.emplace_back("expr", ExprToValue(e));
      assigns.push_back(Value::MakeObject(std::move(a)));
    }
    f.emplace_back("assigns", Value::MakeArray(std::move(assigns)));
  }
  if (!op.group_keys.empty()) {
    Value::Array keys;
    for (const auto& [var, e] : op.group_keys) {
      Value::Object k;
      k.emplace_back("var", Value::String(var));
      k.emplace_back("expr", ExprToValue(e));
      keys.push_back(Value::MakeObject(std::move(k)));
    }
    f.emplace_back("group_keys", Value::MakeArray(std::move(keys)));
  }
  if (!op.group_aggs.empty()) {
    Value::Array aggs;
    for (const LAgg& agg : op.group_aggs) {
      Value::Object a;
      a.emplace_back("agg", Value::String(std::string(AggKindToString(agg.kind))));
      if (agg.input != nullptr) a.emplace_back("input", ExprToValue(agg.input));
      a.emplace_back("out_var", Value::String(agg.out_var));
      aggs.push_back(Value::MakeObject(std::move(a)));
    }
    f.emplace_back("group_aggs", Value::MakeArray(std::move(aggs)));
  }
  if (!op.sort_keys.empty()) {
    Value::Array keys;
    for (const LSortKey& k : op.sort_keys) {
      Value::Object s;
      s.emplace_back("expr", ExprToValue(k.expr));
      s.emplace_back("ascending", Value::Boolean(k.ascending));
      keys.push_back(Value::MakeObject(std::move(s)));
    }
    f.emplace_back("sort_keys", Value::MakeArray(std::move(keys)));
  }
  if (!op.project_vars.empty()) {
    Value::Array vars;
    for (const std::string& v : op.project_vars) {
      vars.push_back(Value::String(v));
    }
    f.emplace_back("project_vars", Value::MakeArray(std::move(vars)));
  }
  if (op.limit != 0) f.emplace_back("limit", Value::Int64(op.limit));
  if (op.join_strategy != algebricks::JoinStrategy::kAuto) {
    f.emplace_back(
        "join_strategy",
        Value::String(op.join_strategy ==
                              algebricks::JoinStrategy::kBroadcastHash
                          ? "broadcast-hash"
                          : "broadcast-nl"));
  }
  if (!op.index_name.empty()) {
    f.emplace_back("index_name", Value::String(op.index_name));
    Value::Object spec;
    spec.emplace_back("fn",
                      Value::String(std::string(SimFnToString(op.sim_spec.fn))));
    spec.emplace_back("threshold", Value::Double(op.sim_spec.threshold));
    f.emplace_back("sim_spec", Value::MakeObject(std::move(spec)));
  }
  if (!op.pk_var.empty()) f.emplace_back("pk_var", Value::String(op.pk_var));
  return Value::MakeObject(std::move(f));
}

void NumberNodes(const LOpPtr& op, std::unordered_map<const LOp*, int>* ids,
                 std::vector<const LOp*>* order) {
  if (op == nullptr || ids->count(op.get()) > 0) return;
  for (const LOpPtr& in : op->inputs) NumberNodes(in, ids, order);
  // Post-order: inputs get smaller ids than consumers.
  ids->emplace(op.get(), static_cast<int>(order->size()));
  order->push_back(op.get());
}

// ---- parsing ----

Status ParseError(const std::string& msg) {
  return Status::PlanError("plan serde: " + msg);
}

Result<const Value*> RequireField(const Value& obj, const std::string& name) {
  if (!obj.is_object()) return ParseError("expected an object");
  const Value& v = obj.GetField(name);
  if (v.is_missing()) return ParseError("missing field '" + name + "'");
  return &v;
}

Result<std::string> RequireString(const Value& obj, const std::string& name) {
  SIMDB_ASSIGN_OR_RETURN(const Value* v, RequireField(obj, name));
  if (!v->is_string()) return ParseError("field '" + name + "' must be a string");
  return v->AsString();
}

std::string OptionalString(const Value& obj, const std::string& name) {
  const Value& v = obj.GetField(name);
  return v.is_string() ? v.AsString() : "";
}

Result<LExprPtr> ValueToExpr(const Value& v);

Result<std::vector<LExprPtr>> ValueToExprList(const Value& v,
                                              const std::string& what) {
  if (!v.is_array()) return ParseError("'" + what + "' must be an array");
  std::vector<LExprPtr> out;
  for (const Value& item : v.AsList()) {
    SIMDB_ASSIGN_OR_RETURN(LExprPtr e, ValueToExpr(item));
    out.push_back(std::move(e));
  }
  return out;
}

Result<LExprPtr> ValueToExpr(const Value& v) {
  SIMDB_ASSIGN_OR_RETURN(std::string kind, RequireString(v, "kind"));
  if (kind == "var") {
    SIMDB_ASSIGN_OR_RETURN(std::string name, RequireString(v, "name"));
    return LExpr::Var(std::move(name));
  }
  if (kind == "lit") {
    SIMDB_ASSIGN_OR_RETURN(const Value* lit, RequireField(v, "value"));
    return LExpr::Lit(*lit);
  }
  if (kind == "field") {
    SIMDB_ASSIGN_OR_RETURN(std::string name, RequireString(v, "name"));
    SIMDB_ASSIGN_OR_RETURN(const Value* base, RequireField(v, "base"));
    SIMDB_ASSIGN_OR_RETURN(LExprPtr base_expr, ValueToExpr(*base));
    return LExpr::Field(std::move(base_expr), std::move(name));
  }
  if (kind == "call") {
    SIMDB_ASSIGN_OR_RETURN(std::string name, RequireString(v, "name"));
    SIMDB_ASSIGN_OR_RETURN(const Value* args, RequireField(v, "args"));
    SIMDB_ASSIGN_OR_RETURN(std::vector<LExprPtr> arg_exprs,
                           ValueToExprList(*args, "args"));
    LExprPtr call = LExpr::CallF(std::move(name), std::move(arg_exprs));
    const Value& bcast = v.GetField("bcast");
    if (bcast.is_boolean() && bcast.AsBoolean()) {
      auto hinted = std::make_shared<LExpr>(*call);
      hinted->bcast_hint = true;
      return LExprPtr(hinted);
    }
    return call;
  }
  if (kind == "record") {
    SIMDB_ASSIGN_OR_RETURN(const Value* names, RequireField(v, "names"));
    if (!names->is_array()) return ParseError("'names' must be an array");
    std::vector<std::string> name_list;
    for (const Value& n : names->AsList()) {
      if (!n.is_string()) return ParseError("record names must be strings");
      name_list.push_back(n.AsString());
    }
    SIMDB_ASSIGN_OR_RETURN(const Value* values, RequireField(v, "values"));
    SIMDB_ASSIGN_OR_RETURN(std::vector<LExprPtr> value_exprs,
                           ValueToExprList(*values, "values"));
    if (name_list.size() != value_exprs.size()) {
      return ParseError("record has " + std::to_string(name_list.size()) +
                        " names but " + std::to_string(value_exprs.size()) +
                        " values");
    }
    return LExpr::Record(std::move(name_list), std::move(value_exprs));
  }
  if (kind == "list") {
    SIMDB_ASSIGN_OR_RETURN(const Value* items, RequireField(v, "items"));
    SIMDB_ASSIGN_OR_RETURN(std::vector<LExprPtr> item_exprs,
                           ValueToExprList(*items, "items"));
    return LExpr::List(std::move(item_exprs));
  }
  return ParseError("unknown expression kind '" + kind + "'");
}

Result<LOpKind> ParseKind(const std::string& s) {
  for (int k = 0; k <= static_cast<int>(LOpKind::kLocalSort); ++k) {
    LOpKind kind = static_cast<LOpKind>(k);
    if (s == LOpKindToString(kind)) return kind;
  }
  return ParseError("unknown operator kind '" + s + "'");
}

Result<LAgg::Kind> ParseAggKind(const std::string& s) {
  if (s == "listify") return LAgg::Kind::kListify;
  if (s == "count") return LAgg::Kind::kCount;
  if (s == "sum") return LAgg::Kind::kSum;
  if (s == "min") return LAgg::Kind::kMin;
  if (s == "max") return LAgg::Kind::kMax;
  if (s == "first") return LAgg::Kind::kFirst;
  return ParseError("unknown aggregate kind '" + s + "'");
}

Result<SimSearchSpec::Fn> ParseSimFn(const std::string& s) {
  if (s == "jaccard") return SimSearchSpec::Fn::kJaccard;
  if (s == "edit-distance") return SimSearchSpec::Fn::kEditDistance;
  if (s == "contains") return SimSearchSpec::Fn::kContains;
  return ParseError("unknown similarity function '" + s + "'");
}

Result<LOpPtr> ValueToNode(const Value& v,
                           const std::map<int64_t, LOpPtr>& by_id) {
  auto op = std::make_shared<LOp>();
  SIMDB_ASSIGN_OR_RETURN(std::string kind_str, RequireString(v, "kind"));
  SIMDB_ASSIGN_OR_RETURN(op->kind, ParseKind(kind_str));

  SIMDB_ASSIGN_OR_RETURN(const Value* inputs, RequireField(v, "inputs"));
  if (!inputs->is_array()) return ParseError("'inputs' must be an array");
  for (const Value& in : inputs->AsList()) {
    if (!in.is_int64()) return ParseError("input ids must be integers");
    auto it = by_id.find(in.AsInt64());
    if (it == by_id.end()) {
      // Also how a cycle manifests: a cyclic plan cannot order every input
      // before its consumer.
      return ParseError("node input " + std::to_string(in.AsInt64()) +
                        " is not defined by an earlier node "
                        "(undefined id, forward edge, or cycle)");
    }
    op->inputs.push_back(it->second);
  }

  op->dataset = OptionalString(v, "dataset");
  op->out_var = OptionalString(v, "out_var");
  op->pos_var = OptionalString(v, "pos_var");
  op->pk_var = OptionalString(v, "pk_var");
  op->index_name = OptionalString(v, "index_name");

  const Value& expr = v.GetField("expr");
  if (!expr.is_missing()) {
    SIMDB_ASSIGN_OR_RETURN(op->expr, ValueToExpr(expr));
  }

  const Value& assigns = v.GetField("assigns");
  if (assigns.is_array()) {
    for (const Value& a : assigns.AsList()) {
      SIMDB_ASSIGN_OR_RETURN(std::string var, RequireString(a, "var"));
      SIMDB_ASSIGN_OR_RETURN(const Value* e, RequireField(a, "expr"));
      SIMDB_ASSIGN_OR_RETURN(LExprPtr expr_ptr, ValueToExpr(*e));
      op->assigns.emplace_back(std::move(var), std::move(expr_ptr));
    }
  }
  const Value& group_keys = v.GetField("group_keys");
  if (group_keys.is_array()) {
    for (const Value& k : group_keys.AsList()) {
      SIMDB_ASSIGN_OR_RETURN(std::string var, RequireString(k, "var"));
      SIMDB_ASSIGN_OR_RETURN(const Value* e, RequireField(k, "expr"));
      SIMDB_ASSIGN_OR_RETURN(LExprPtr expr_ptr, ValueToExpr(*e));
      op->group_keys.emplace_back(std::move(var), std::move(expr_ptr));
    }
  }
  const Value& group_aggs = v.GetField("group_aggs");
  if (group_aggs.is_array()) {
    for (const Value& a : group_aggs.AsList()) {
      LAgg agg;
      SIMDB_ASSIGN_OR_RETURN(std::string agg_kind, RequireString(a, "agg"));
      SIMDB_ASSIGN_OR_RETURN(agg.kind, ParseAggKind(agg_kind));
      SIMDB_ASSIGN_OR_RETURN(agg.out_var, RequireString(a, "out_var"));
      const Value& input = a.GetField("input");
      if (!input.is_missing()) {
        SIMDB_ASSIGN_OR_RETURN(agg.input, ValueToExpr(input));
      }
      op->group_aggs.push_back(std::move(agg));
    }
  }
  const Value& sort_keys = v.GetField("sort_keys");
  if (sort_keys.is_array()) {
    for (const Value& k : sort_keys.AsList()) {
      LSortKey key;
      SIMDB_ASSIGN_OR_RETURN(const Value* e, RequireField(k, "expr"));
      SIMDB_ASSIGN_OR_RETURN(key.expr, ValueToExpr(*e));
      const Value& asc = k.GetField("ascending");
      key.ascending = !asc.is_boolean() || asc.AsBoolean();
      op->sort_keys.push_back(std::move(key));
    }
  }
  const Value& project_vars = v.GetField("project_vars");
  if (project_vars.is_array()) {
    for (const Value& pv : project_vars.AsList()) {
      if (!pv.is_string()) return ParseError("project_vars must be strings");
      op->project_vars.push_back(pv.AsString());
    }
  }
  const Value& limit = v.GetField("limit");
  if (limit.is_int64()) op->limit = limit.AsInt64();
  const Value& strategy = v.GetField("join_strategy");
  if (strategy.is_string()) {
    if (strategy.AsString() == "broadcast-hash") {
      op->join_strategy = algebricks::JoinStrategy::kBroadcastHash;
    } else if (strategy.AsString() == "broadcast-nl") {
      op->join_strategy = algebricks::JoinStrategy::kBroadcastNl;
    } else if (strategy.AsString() != "auto") {
      return ParseError("unknown join strategy '" + strategy.AsString() + "'");
    }
  }
  const Value& spec = v.GetField("sim_spec");
  if (spec.is_object()) {
    SIMDB_ASSIGN_OR_RETURN(std::string fn, RequireString(spec, "fn"));
    SIMDB_ASSIGN_OR_RETURN(op->sim_spec.fn, ParseSimFn(fn));
    const Value& threshold = spec.GetField("threshold");
    if (threshold.is_numeric()) op->sim_spec.threshold = threshold.AsNumber();
  }
  return LOpPtr(op);
}

}  // namespace

std::string PlanToJson(const LOpPtr& root) {
  std::unordered_map<const LOp*, int> ids;
  std::vector<const LOp*> order;
  NumberNodes(root, &ids, &order);

  Value::Array nodes;
  for (const LOp* op : order) {
    std::vector<int> inputs;
    for (const LOpPtr& in : op->inputs) inputs.push_back(ids.at(in.get()));
    nodes.push_back(NodeToValue(*op, ids.at(op), inputs));
  }
  Value::Object doc;
  doc.emplace_back("version", Value::Int64(1));
  doc.emplace_back("root", Value::Int64(root == nullptr ? -1
                                                        : ids.at(root.get())));
  doc.emplace_back("nodes", Value::MakeArray(std::move(nodes)));
  return Value::MakeObject(std::move(doc)).ToJson();
}

Result<LOpPtr> PlanFromJson(const std::string& text) {
  SIMDB_ASSIGN_OR_RETURN(Value doc, Value::FromJson(text));
  if (!doc.is_object()) return ParseError("top level must be an object");
  const Value& version = doc.GetField("version");
  if (!version.is_int64() || version.AsInt64() != 1) {
    return ParseError("unsupported or missing version (expected 1)");
  }
  SIMDB_ASSIGN_OR_RETURN(const Value* nodes, RequireField(doc, "nodes"));
  if (!nodes->is_array()) return ParseError("'nodes' must be an array");

  std::map<int64_t, LOpPtr> by_id;
  for (const Value& nv : nodes->AsList()) {
    SIMDB_ASSIGN_OR_RETURN(const Value* id, RequireField(nv, "id"));
    if (!id->is_int64()) return ParseError("node ids must be integers");
    if (by_id.count(id->AsInt64()) > 0) {
      return ParseError("duplicate node id " + std::to_string(id->AsInt64()));
    }
    SIMDB_ASSIGN_OR_RETURN(LOpPtr op, ValueToNode(nv, by_id));
    by_id.emplace(id->AsInt64(), std::move(op));
  }

  SIMDB_ASSIGN_OR_RETURN(const Value* root_id, RequireField(doc, "root"));
  if (!root_id->is_int64()) return ParseError("'root' must be an integer");
  auto it = by_id.find(root_id->AsInt64());
  if (it == by_id.end()) {
    return ParseError("root id " + std::to_string(root_id->AsInt64()) +
                      " is not a defined node");
  }
  return it->second;
}

}  // namespace simdb::analysis
