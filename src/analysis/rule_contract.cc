#include "analysis/rule_contract.h"

#include <algorithm>
#include <sstream>

#include "analysis/plan_verifier.h"

namespace simdb::analysis {

namespace {

using algebricks::LOp;
using algebricks::LOpKind;
using algebricks::LOpKindToString;
using algebricks::LOpPtr;

uint32_t KindBit(LOpKind kind) { return 1u << static_cast<unsigned>(kind); }

/// First node under `op` whose kind bit is outside `allowed`, if any.
const LOp* FindDisallowedKind(const LOp* op, uint32_t allowed,
                              std::set<const LOp*>* seen) {
  if (op == nullptr || !seen->insert(op).second) return nullptr;
  if ((KindBit(op->kind) & ~allowed) != 0) return op;
  for (const LOpPtr& in : op->inputs) {
    const LOp* hit = FindDisallowedKind(in.get(), allowed, seen);
    if (hit != nullptr) return hit;
  }
  return nullptr;
}

std::vector<std::string> SplitLines(const std::string& s) {
  std::vector<std::string> lines;
  std::string cur;
  for (char c : s) {
    if (c == '\n') {
      lines.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) lines.push_back(cur);
  return lines;
}

}  // namespace

std::string MinimizedPlanDiff(const std::string& before,
                              const std::string& after) {
  std::vector<std::string> a = SplitLines(before);
  std::vector<std::string> b = SplitLines(after);
  size_t prefix = 0;
  while (prefix < a.size() && prefix < b.size() && a[prefix] == b[prefix]) {
    ++prefix;
  }
  size_t suffix = 0;
  while (suffix < a.size() - prefix && suffix < b.size() - prefix &&
         a[a.size() - 1 - suffix] == b[b.size() - 1 - suffix]) {
    ++suffix;
  }
  std::ostringstream out;
  for (size_t i = prefix; i < a.size() - suffix; ++i) {
    out << "- " << a[i] << "\n";
  }
  for (size_t i = prefix; i < b.size() - suffix; ++i) {
    out << "+ " << b[i] << "\n";
  }
  std::string diff = out.str();
  if (diff.empty()) diff = "(plans render identically)\n";
  return diff;
}

void RuleContractChecker::RefreshPlanSnapshot(const LOpPtr& root) {
  if (snapshot_valid_ && snapshot_root_ == root) return;

  shared_before_.clear();
  std::set<const LOp*> shared = [&] {
    auto s = algebricks::CollectSharedNodes(root);
    return std::set<const LOp*>(s.begin(), s.end());
  }();
  // Walk again to recover owning pointers for the shared nodes, so the
  // snapshot survives a rewrite that unlinks them.
  std::set<const LOp*> seen;
  std::vector<LOpPtr> stack{root};
  while (!stack.empty()) {
    LOpPtr node = stack.back();
    stack.pop_back();
    if (node == nullptr || !seen.insert(node.get()).second) continue;
    if (shared.count(node.get()) > 0) {
      shared_before_.emplace(node, node->ToString(0));
    }
    for (const LOpPtr& in : node->inputs) stack.push_back(in);
  }

  root_before_ = root->ToString(0);
  out_vars_memo_.clear();
  kind_mask_memo_.clear();
  snapshot_root_ = root;
  snapshot_valid_ = true;
}

uint32_t RuleContractChecker::KindMask(const LOp* op) {
  auto it = kind_mask_memo_.find(op);
  if (it != kind_mask_memo_.end()) return it->second;
  // Insert before recursing so a (malformed) cyclic plan terminates.
  kind_mask_memo_.emplace(op, 0);
  uint32_t mask = KindBit(op->kind);
  for (const LOpPtr& in : op->inputs) {
    if (in != nullptr) mask |= KindMask(in.get());
  }
  kind_mask_memo_[op] = mask;
  return mask;
}

void RuleContractChecker::BeforeApply(const algebricks::RewriteRule& rule,
                                      const LOpPtr& op, const LOpPtr& root) {
  (void)rule;
  armed_ = true;
  op_before_ = op.get();
  kind_before_ = op->kind;
  input_ptrs_before_.clear();
  for (const LOpPtr& in : op->inputs) input_ptrs_before_.push_back(in.get());

  // Refresh first: it clears the per-generation memos when the plan changed.
  RefreshPlanSnapshot(root);

  auto memo = out_vars_memo_.find(op.get());
  if (memo == out_vars_memo_.end()) {
    std::optional<std::set<std::string>> vars;
    Result<std::vector<std::string>> computed = op->OutputVars();
    if (computed.ok()) {
      vars.emplace(computed.value().begin(), computed.value().end());
    }
    memo = out_vars_memo_.emplace(op.get(), std::move(vars)).first;
  }
  out_vars_before_ = &memo->second;

  kinds_before_mask_ = KindMask(op.get());
}

Status RuleContractChecker::Violation(const std::string& rule,
                                      const std::string& clause,
                                      const LOpPtr& root) const {
  const std::string after_plan = root->ToString(0);
  return Status::PlanError(
      "rule contract: rule '" + rule + "' " + clause + "\nseed plan:\n" +
      root_before_ + "minimized diff:\n" +
      MinimizedPlanDiff(root_before_, after_plan));
}

Status RuleContractChecker::AfterApply(const algebricks::RewriteRule& rule,
                                       const LOpPtr& op, const LOpPtr& root,
                                       bool fired) {
  if (!armed_) {
    return Status::Internal("rule contract: AfterApply without BeforeApply");
  }
  armed_ = false;
  if (!fired) return Status::OK();
  // The plan changed: whatever happens below, the cached whole-plan
  // snapshot no longer describes it.
  snapshot_valid_ = false;

  const algebricks::RuleContract contract = rule.contract();

  if (contract.needs_catalog && catalog_ == nullptr) {
    return Violation(rule.name(), "fired without a catalog", root);
  }

  if (contract.expression_only) {
    bool same_node = op.get() == op_before_ && op->kind == kind_before_ &&
                     op->inputs.size() == input_ptrs_before_.size();
    if (same_node) {
      for (size_t i = 0; i < op->inputs.size(); ++i) {
        same_node = same_node && op->inputs[i].get() == input_ptrs_before_[i];
      }
    }
    if (!same_node) {
      return Violation(rule.name(),
                       "declares expression_only but changed the matched "
                       "node's identity, kind, or input wiring",
                       root);
    }
  }

  if (contract.preserves_output_vars && out_vars_before_ != nullptr &&
      out_vars_before_->has_value()) {
    Result<std::vector<std::string>> vars = op->OutputVars();
    if (vars.ok()) {
      std::set<std::string> now(vars.value().begin(), vars.value().end());
      for (const std::string& v : out_vars_before_->value()) {
        if (now.count(v) == 0) {
          return Violation(rule.name(),
                           "dropped output variable $" + v +
                               " from the rewritten edge",
                           root);
        }
      }
    }
  }

  {
    // Any node of a kind already present in the matched subtree is allowed,
    // so the pointer-level "is this node new" question reduces to a kind-set
    // containment check.
    uint32_t allowed = kinds_before_mask_;
    for (LOpKind k : contract.may_introduce) allowed |= KindBit(k);
    std::set<const LOp*> seen;
    const LOp* offender = FindDisallowedKind(op.get(), allowed, &seen);
    if (offender != nullptr) {
      return Violation(rule.name(),
                       "introduced operator kind " +
                           std::string(LOpKindToString(offender->kind)) +
                           " outside its declared may_introduce set",
                       root);
    }
  }

  if (!contract.shared_mutation_safe) {
    for (const auto& [node, rendering] : shared_before_) {
      if (node->ToString(0) != rendering) {
        return Violation(rule.name(),
                         "mutated a shared (multi-parent) subplan without "
                         "declaring shared_mutation_safe",
                         root);
      }
    }
  }

  Status verified = PlanVerifier::Verify(root, catalog_);
  if (!verified.ok()) {
    return Violation(rule.name(),
                     "produced an invalid plan: " + verified.message(), root);
  }
  return Status::OK();
}

Status RuleContractChecker::AfterGlobalRewrite(const std::string& name,
                                               const LOpPtr& root) {
  Status verified = PlanVerifier::Verify(root, catalog_);
  if (!verified.ok()) {
    return Status::PlanError("rule contract: global rewrite '" + name +
                             "' produced an invalid plan: " +
                             verified.message() + "\nplan:\n" +
                             root->ToString(0));
  }
  return Status::OK();
}

}  // namespace simdb::analysis
