#include "analysis/dag_verifier.h"

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "hyracks/expr.h"
#include "hyracks/ops_basic.h"
#include "hyracks/ops_exchange.h"
#include "hyracks/ops_group.h"
#include "hyracks/ops_index.h"
#include "hyracks/ops_join.h"
#include "hyracks/ops_scan.h"
#include "hyracks/scheduler.h"

namespace simdb::analysis {

namespace {

using hyracks::AssignOp;
using hyracks::BroadcastExchangeOp;
using hyracks::BtreeSearchOp;
using hyracks::CallExpr;
using hyracks::ColumnExpr;
using hyracks::ConstantSourceOp;
using hyracks::DataScanOp;
using hyracks::ExchangeOperator;
using hyracks::Expr;
using hyracks::ExprPtr;
using hyracks::FieldAccessExpr;
using hyracks::GatherOp;
using hyracks::HashExchangeOp;
using hyracks::HashGroupOp;
using hyracks::HashJoinOp;
using hyracks::InvertedIndexSearchOp;
using hyracks::Job;
using hyracks::LimitOp;
using hyracks::ListConstructorExpr;
using hyracks::MergeGatherOp;
using hyracks::NestedLoopJoinOp;
using hyracks::PartitionOperator;
using hyracks::PrimaryLookupOp;
using hyracks::ProjectOp;
using hyracks::RankAssignOp;
using hyracks::RecordConstructorExpr;
using hyracks::SelectOp;
using hyracks::SortKey;
using hyracks::SortOp;
using hyracks::UnionAllOp;
using hyracks::UnnestOp;

Status Violation(int node, const std::string& op_name,
                 const std::string& message) {
  return Status::PlanError("dag verifier: node " + std::to_string(node) +
                           " (" + op_name + "): " + message);
}

/// Largest column index referenced by a compiled expression, -1 when none.
int MaxColumn(const Expr* e) {
  if (e == nullptr) return -1;
  if (const auto* col = dynamic_cast<const ColumnExpr*>(e)) {
    return col->index();
  }
  int max_col = -1;
  if (const auto* field = dynamic_cast<const FieldAccessExpr*>(e)) {
    max_col = MaxColumn(field->base().get());
  } else if (const auto* call = dynamic_cast<const CallExpr*>(e)) {
    for (const ExprPtr& a : call->args()) {
      max_col = std::max(max_col, MaxColumn(a.get()));
    }
  } else if (const auto* rec = dynamic_cast<const RecordConstructorExpr*>(e)) {
    for (const ExprPtr& a : rec->exprs()) {
      max_col = std::max(max_col, MaxColumn(a.get()));
    }
  } else if (const auto* list = dynamic_cast<const ListConstructorExpr*>(e)) {
    for (const ExprPtr& a : list->exprs()) {
      max_col = std::max(max_col, MaxColumn(a.get()));
    }
  }
  return max_col;
}

Status CheckExprColumns(int node, const std::string& name, const Expr* e,
                        int input_width, const char* what) {
  int max_col = MaxColumn(e);
  if (max_col >= input_width) {
    return Violation(node, name,
                     std::string(what) + " references column " +
                         std::to_string(max_col) + " of a " +
                         std::to_string(input_width) + "-column input");
  }
  return Status::OK();
}

/// How one node's output is distributed across cluster partitions, plus the
/// per-partition sort order when known. Inferred bottom-up.
struct Prop {
  enum class Kind {
    kArbitrary,    // partitioned, no usable guarantee
    kHashed,       // partition = hash of `cols` values
    kBroadcast,    // every partition holds every row
    kCoordinator,  // all rows in partition 0
  };
  Kind kind = Kind::kArbitrary;
  std::vector<int> cols;  // kHashed: hash columns, in hash order

  /// Columns known to hold pks (or records) partition-aligned with a
  /// dataset: a row in partition p carries a key of dataset partition p.
  /// (column -> dataset name)
  std::map<int, std::string> aligned;

  /// Per-partition sort order, empty when unknown.
  std::vector<SortKey> sorted;
};

bool SameKeys(const std::vector<SortKey>& prefix,
              const std::vector<SortKey>& of) {
  if (prefix.size() > of.size()) return false;
  for (size_t i = 0; i < prefix.size(); ++i) {
    if (prefix[i].column != of[i].column ||
        prefix[i].ascending != of[i].ascending) {
      return false;
    }
  }
  return true;
}

class JobChecker {
 public:
  JobChecker(const Job& job, const hyracks::ClusterTopology& topology)
      : job_(job), parts_(topology.total_partitions()) {}

  Status Check() {
    const auto& nodes = job_.nodes();
    if (nodes.empty()) return Status::PlanError("dag verifier: empty job");

    std::vector<std::vector<int>> edges;
    edges.reserve(nodes.size());
    for (const Job::Node& jn : nodes) edges.push_back(jn.inputs);
    SIMDB_RETURN_IF_ERROR(
        DagVerifier::VerifyEdges(static_cast<int>(nodes.size()), edges));

    std::vector<int> consumers(nodes.size(), 0);
    for (const Job::Node& jn : nodes) {
      for (int in : jn.inputs) ++consumers[static_cast<size_t>(in)];
    }
    for (size_t i = 0; i + 1 < nodes.size(); ++i) {
      if (consumers[i] == 0) {
        return Violation(static_cast<int>(i), nodes[i].op->name(),
                         "output is never consumed");
      }
    }

    props_.resize(nodes.size());
    for (size_t i = 0; i < nodes.size(); ++i) {
      SIMDB_RETURN_IF_ERROR(CheckNode(static_cast<int>(i)));
    }

    if (parts_ > 1 && props_.back().kind == Prop::Kind::kBroadcast) {
      return Violation(static_cast<int>(nodes.size()) - 1,
                       nodes.back().op->name(),
                       "job root is broadcast: results would be duplicated");
    }

    return DagVerifier::VerifySteals(job_,
                                     hyracks::Scheduler::PlannedSteals(job_));
  }

 private:
  int Width(int id) const {
    return static_cast<int>(job_.schema(id).size());
  }

  Status WidthIs(int node, const std::string& name, int declared,
                 int expected) {
    if (declared != expected) {
      return Violation(node, name,
                       "declared schema has " + std::to_string(declared) +
                           " columns, operator produces " +
                           std::to_string(expected));
    }
    return Status::OK();
  }

  /// An exchange, union, or gather consuming a broadcast input would emit
  /// every row once per source partition.
  Status NotBroadcast(int node, const std::string& name, int input) {
    if (parts_ > 1 && props_[static_cast<size_t>(input)].kind ==
                          Prop::Kind::kBroadcast) {
      return Violation(node, name,
                       "consumes the broadcast output of node " +
                           std::to_string(input) +
                           ": rows would be duplicated");
    }
    return Status::OK();
  }

  Status CheckNode(int i) {
    const Job::Node& jn = job_.nodes()[static_cast<size_t>(i)];
    const hyracks::Operator* op = jn.op.get();
    const std::string name = op->name();
    const int width = Width(i);
    Prop& out = props_[static_cast<size_t>(i)];

    if (const auto* pop = dynamic_cast<const PartitionOperator*>(op)) {
      Status arity = pop->ValidateInputArity(jn.inputs.size());
      if (!arity.ok()) return Violation(i, name, arity.message());
    }
    if (dynamic_cast<const ExchangeOperator*>(op) != nullptr &&
        jn.inputs.size() != 1) {
      return Violation(i, name, "exchange expects exactly one input, has " +
                                    std::to_string(jn.inputs.size()));
    }

    auto in_width = [&](size_t k) { return Width(jn.inputs[k]); };
    auto in_prop = [&](size_t k) -> const Prop& {
      return props_[static_cast<size_t>(jn.inputs[k])];
    };

    if (const auto* scan = dynamic_cast<const DataScanOp*>(op)) {
      (void)scan;
      SIMDB_RETURN_IF_ERROR(WidthIs(i, name, width, 1));
      return Status::OK();  // dataset-partitioned records; no pk column
    }
    if (dynamic_cast<const ConstantSourceOp*>(op) != nullptr) {
      out.kind = Prop::Kind::kCoordinator;
      return Status::OK();
    }
    if (const auto* select = dynamic_cast<const SelectOp*>(op)) {
      SIMDB_RETURN_IF_ERROR(WidthIs(i, name, width, in_width(0)));
      SIMDB_RETURN_IF_ERROR(CheckExprColumns(
          i, name, select->predicate().get(), in_width(0), "predicate"));
      out = in_prop(0);
      return Status::OK();
    }
    if (const auto* assign = dynamic_cast<const AssignOp*>(op)) {
      SIMDB_RETURN_IF_ERROR(WidthIs(
          i, name, width,
          in_width(0) + static_cast<int>(assign->exprs().size())));
      for (const ExprPtr& e : assign->exprs()) {
        SIMDB_RETURN_IF_ERROR(
            CheckExprColumns(i, name, e.get(), in_width(0), "expression"));
      }
      out = in_prop(0);
      return Status::OK();
    }
    if (const auto* project = dynamic_cast<const ProjectOp*>(op)) {
      SIMDB_RETURN_IF_ERROR(WidthIs(
          i, name, width, static_cast<int>(project->columns().size())));
      for (int c : project->columns()) {
        if (c < 0 || c >= in_width(0)) {
          return Violation(i, name,
                           "projects column " + std::to_string(c) + " of a " +
                               std::to_string(in_width(0)) +
                               "-column input");
        }
      }
      const Prop& in = in_prop(0);
      out.kind = in.kind;
      // Remap surviving columns; a dropped hash column demotes the property
      // (the guarantee still holds physically but is no longer expressible).
      std::map<int, int> remap;
      for (size_t k = 0; k < project->columns().size(); ++k) {
        remap.emplace(project->columns()[k], static_cast<int>(k));
      }
      if (in.kind == Prop::Kind::kHashed) {
        for (int c : in.cols) {
          auto it = remap.find(c);
          if (it == remap.end()) {
            out.kind = Prop::Kind::kArbitrary;
            out.cols.clear();
            break;
          }
          out.cols.push_back(it->second);
        }
      }
      for (const auto& [c, ds] : in.aligned) {
        auto it = remap.find(c);
        if (it != remap.end()) out.aligned[it->second] = ds;
      }
      for (const SortKey& k : in.sorted) {
        auto it = remap.find(k.column);
        if (it == remap.end()) break;  // order known only up to a lost column
        out.sorted.push_back({it->second, k.ascending});
      }
      return Status::OK();
    }
    if (const auto* sort = dynamic_cast<const SortOp*>(op)) {
      SIMDB_RETURN_IF_ERROR(WidthIs(i, name, width, in_width(0)));
      for (const SortKey& k : sort->keys()) {
        if (k.column < 0 || k.column >= in_width(0)) {
          return Violation(i, name,
                           "sorts on column " + std::to_string(k.column) +
                               " of a " + std::to_string(in_width(0)) +
                               "-column input");
        }
      }
      out = in_prop(0);
      out.sorted = sort->keys();
      return Status::OK();
    }
    if (const auto* unnest = dynamic_cast<const UnnestOp*>(op)) {
      SIMDB_RETURN_IF_ERROR(WidthIs(
          i, name, width, in_width(0) + (unnest->with_position() ? 2 : 1)));
      SIMDB_RETURN_IF_ERROR(CheckExprColumns(
          i, name, unnest->list_expr().get(), in_width(0), "list"));
      out = in_prop(0);
      return Status::OK();
    }
    if (dynamic_cast<const UnionAllOp*>(op) != nullptr) {
      bool all_coordinator = true;
      for (size_t k = 0; k < jn.inputs.size(); ++k) {
        SIMDB_RETURN_IF_ERROR(NotBroadcast(i, name, jn.inputs[k]));
        if (in_width(k) != width) {
          return Violation(i, name,
                           "input " + std::to_string(k) + " has " +
                               std::to_string(in_width(k)) +
                               " columns, union schema has " +
                               std::to_string(width));
        }
        all_coordinator =
            all_coordinator && in_prop(k).kind == Prop::Kind::kCoordinator;
      }
      if (all_coordinator) out.kind = Prop::Kind::kCoordinator;
      // Aligned columns survive when every branch agrees.
      out.aligned = in_prop(0).aligned;
      for (size_t k = 1; k < jn.inputs.size() && !out.aligned.empty(); ++k) {
        std::map<int, std::string> kept;
        for (const auto& [c, ds] : out.aligned) {
          auto it = in_prop(k).aligned.find(c);
          if (it != in_prop(k).aligned.end() && it->second == ds) {
            kept.emplace(c, ds);
          }
        }
        out.aligned = std::move(kept);
      }
      return Status::OK();
    }
    if (dynamic_cast<const RankAssignOp*>(op) != nullptr) {
      SIMDB_RETURN_IF_ERROR(WidthIs(i, name, width, in_width(0) + 1));
      if (parts_ > 1 && in_prop(0).kind != Prop::Kind::kCoordinator) {
        return Violation(i, name,
                         "requires a gathered input (all rows in the "
                         "coordinator partition)");
      }
      out = in_prop(0);
      out.kind = Prop::Kind::kCoordinator;
      return Status::OK();
    }
    if (dynamic_cast<const LimitOp*>(op) != nullptr) {
      SIMDB_RETURN_IF_ERROR(WidthIs(i, name, width, in_width(0)));
      out = in_prop(0);
      if (out.kind == Prop::Kind::kBroadcast) out.kind = Prop::Kind::kArbitrary;
      return Status::OK();
    }
    if (const auto* join = dynamic_cast<const HashJoinOp*>(op)) {
      int lw = in_width(0), rw = in_width(1);
      SIMDB_RETURN_IF_ERROR(WidthIs(i, name, width, lw + rw));
      for (int c : join->left_keys()) {
        if (c < 0 || c >= lw) {
          return Violation(i, name, "left key column " + std::to_string(c) +
                                        " out of range");
        }
      }
      for (int c : join->right_keys()) {
        if (c < 0 || c >= rw) {
          return Violation(i, name, "right key column " + std::to_string(c) +
                                        " out of range");
        }
      }
      SIMDB_RETURN_IF_ERROR(CheckExprColumns(
          i, name, join->residual().get(), lw + rw, "residual"));
      return CheckJoinPlacement(i, name, jn, join->left_keys(),
                                join->right_keys());
    }
    if (const auto* nl = dynamic_cast<const NestedLoopJoinOp*>(op)) {
      int lw = in_width(0), rw = in_width(1);
      SIMDB_RETURN_IF_ERROR(WidthIs(i, name, width, lw + rw));
      SIMDB_RETURN_IF_ERROR(CheckExprColumns(
          i, name, nl->predicate().get(), lw + rw, "predicate"));
      return CheckJoinPlacement(i, name, jn, {}, {});
    }
    if (const auto* group = dynamic_cast<const HashGroupOp*>(op)) {
      SIMDB_RETURN_IF_ERROR(WidthIs(
          i, name, width,
          static_cast<int>(group->key_exprs().size() + group->aggs().size())));
      std::vector<int> key_cols;
      bool plain_columns = true;
      for (const ExprPtr& k : group->key_exprs()) {
        SIMDB_RETURN_IF_ERROR(
            CheckExprColumns(i, name, k.get(), in_width(0), "group key"));
        if (const auto* col = dynamic_cast<const ColumnExpr*>(k.get())) {
          key_cols.push_back(col->index());
        } else {
          plain_columns = false;
        }
      }
      for (const auto& agg : group->aggs()) {
        SIMDB_RETURN_IF_ERROR(
            CheckExprColumns(i, name, agg.input.get(), in_width(0),
                             "aggregate input"));
      }
      const Prop& in = in_prop(0);
      if (parts_ > 1 && in.kind != Prop::Kind::kCoordinator) {
        // Equal keys must meet in one partition; a broadcast input would
        // additionally aggregate every row once per partition.
        if (in.kind != Prop::Kind::kHashed || !plain_columns ||
            in.cols != key_cols) {
          return Violation(i, name,
                           "input is not hash-partitioned on the grouping "
                           "keys");
        }
      }
      if (in.kind == Prop::Kind::kCoordinator) {
        out.kind = Prop::Kind::kCoordinator;
      } else if (plain_columns) {
        // Output columns are keys first: the hash placement is expressible
        // over the new positions.
        out.kind = Prop::Kind::kHashed;
        for (size_t k = 0; k < key_cols.size(); ++k) {
          out.cols.push_back(static_cast<int>(k));
        }
      }
      return Status::OK();
    }
    if (const auto* search = dynamic_cast<const InvertedIndexSearchOp*>(op)) {
      SIMDB_RETURN_IF_ERROR(WidthIs(i, name, width, in_width(0) + 1));
      SIMDB_RETURN_IF_ERROR(CheckExprColumns(
          i, name, search->key_expr().get(), in_width(0), "search key"));
      if (parts_ > 1 && in_prop(0).kind != Prop::Kind::kBroadcast) {
        return Violation(i, name,
                         "probes only the local index partition: the input "
                         "must be broadcast");
      }
      out.aligned[width - 1] = search->dataset();
      return Status::OK();
    }
    if (const auto* search = dynamic_cast<const BtreeSearchOp*>(op)) {
      SIMDB_RETURN_IF_ERROR(WidthIs(i, name, width, in_width(0) + 1));
      SIMDB_RETURN_IF_ERROR(CheckExprColumns(
          i, name, search->key_expr().get(), in_width(0), "search key"));
      if (parts_ > 1 && in_prop(0).kind != Prop::Kind::kBroadcast) {
        return Violation(i, name,
                         "probes only the local index partition: the input "
                         "must be broadcast");
      }
      out.aligned[width - 1] = search->dataset();
      return Status::OK();
    }
    if (const auto* lookup = dynamic_cast<const PrimaryLookupOp*>(op)) {
      SIMDB_RETURN_IF_ERROR(WidthIs(i, name, width, in_width(0) + 1));
      if (lookup->pk_column() < 0 || lookup->pk_column() >= in_width(0)) {
        return Violation(i, name,
                         "pk column " + std::to_string(lookup->pk_column()) +
                             " out of range");
      }
      const Prop& in = in_prop(0);
      if (parts_ > 1) {
        auto it = in.aligned.find(lookup->pk_column());
        if (it == in.aligned.end() || it->second != lookup->dataset()) {
          return Violation(i, name,
                           "pk column " +
                               std::to_string(lookup->pk_column()) +
                               " is not partition-aligned with dataset " +
                               lookup->dataset() +
                               ": local lookups would drop rows");
        }
      }
      out = in;
      out.aligned[width - 1] = lookup->dataset();
      return Status::OK();
    }
    if (const auto* hash = dynamic_cast<const HashExchangeOp*>(op)) {
      SIMDB_RETURN_IF_ERROR(WidthIs(i, name, width, in_width(0)));
      SIMDB_RETURN_IF_ERROR(NotBroadcast(i, name, jn.inputs[0]));
      for (int c : hash->key_columns()) {
        if (c < 0 || c >= in_width(0)) {
          return Violation(i, name, "hash key column " + std::to_string(c) +
                                        " out of range");
        }
      }
      out.kind = Prop::Kind::kHashed;
      out.cols = hash->key_columns();
      return Status::OK();
    }
    if (dynamic_cast<const BroadcastExchangeOp*>(op) != nullptr) {
      SIMDB_RETURN_IF_ERROR(WidthIs(i, name, width, in_width(0)));
      SIMDB_RETURN_IF_ERROR(NotBroadcast(i, name, jn.inputs[0]));
      out.kind = Prop::Kind::kBroadcast;
      return Status::OK();
    }
    if (const auto* merge = dynamic_cast<const MergeGatherOp*>(op)) {
      SIMDB_RETURN_IF_ERROR(WidthIs(i, name, width, in_width(0)));
      SIMDB_RETURN_IF_ERROR(NotBroadcast(i, name, jn.inputs[0]));
      for (const SortKey& k : merge->keys()) {
        if (k.column < 0 || k.column >= in_width(0)) {
          return Violation(i, name,
                           "merges on column " + std::to_string(k.column) +
                               " out of range");
        }
      }
      if (!SameKeys(merge->keys(), in_prop(0).sorted)) {
        return Violation(i, name,
                         "input partitions are not sorted on the merge keys");
      }
      out.kind = Prop::Kind::kCoordinator;
      out.sorted = merge->keys();
      return Status::OK();
    }
    if (dynamic_cast<const GatherOp*>(op) != nullptr) {
      SIMDB_RETURN_IF_ERROR(WidthIs(i, name, width, in_width(0)));
      SIMDB_RETURN_IF_ERROR(NotBroadcast(i, name, jn.inputs[0]));
      out.kind = Prop::Kind::kCoordinator;
      return Status::OK();
    }
    // Operator type unknown to the verifier (tests, external subclasses):
    // no schema or placement claims to check.
    return Status::OK();
  }

  /// Placement legality shared by hash and nested-loop joins: one side
  /// broadcast (full pairing without duplication), both sides co-hashed on
  /// the join keys (hash join only), both gathered, or a single partition.
  Status CheckJoinPlacement(int i, const std::string& name,
                            const Job::Node& jn,
                            const std::vector<int>& left_keys,
                            const std::vector<int>& right_keys) {
    const Prop& left = props_[static_cast<size_t>(jn.inputs[0])];
    const Prop& right = props_[static_cast<size_t>(jn.inputs[1])];
    Prop& out = props_[static_cast<size_t>(i)];
    int lw = Width(jn.inputs[0]);

    bool left_b = left.kind == Prop::Kind::kBroadcast;
    bool right_b = right.kind == Prop::Kind::kBroadcast;
    if (parts_ > 1) {
      if (left_b && right_b) {
        return Violation(i, name,
                         "both inputs are broadcast: every partition would "
                         "emit every pair");
      }
      bool cohashed = !left_keys.empty() &&
                      left.kind == Prop::Kind::kHashed &&
                      right.kind == Prop::Kind::kHashed &&
                      left.cols == left_keys && right.cols == right_keys;
      bool gathered = left.kind == Prop::Kind::kCoordinator &&
                      right.kind == Prop::Kind::kCoordinator;
      if (!left_b && !right_b && !cohashed && !gathered) {
        return Violation(i, name,
                         "inputs are neither co-partitioned on the join keys "
                         "nor broadcast: matches would be missed");
      }
    }

    if (right_b) {
      // Left rows stay in place: left placement facts survive.
      out.kind = left.kind;
      out.cols = left.cols;
      out.aligned = left.aligned;
    } else if (left_b) {
      out.kind = right.kind;
      out.cols.clear();
      for (int c : right.cols) out.cols.push_back(lw + c);
      for (const auto& [c, ds] : right.aligned) out.aligned[lw + c] = ds;
    } else if (left.kind == Prop::Kind::kCoordinator &&
               right.kind == Prop::Kind::kCoordinator) {
      out.kind = Prop::Kind::kCoordinator;
    } else if (left.kind == Prop::Kind::kHashed && !left_keys.empty()) {
      out.kind = Prop::Kind::kHashed;
      out.cols = left.cols;
    }
    return Status::OK();
  }

  const Job& job_;
  int parts_;
  std::vector<Prop> props_;
};

}  // namespace

Status DagVerifier::Verify(const hyracks::Job& job,
                           const hyracks::ClusterTopology& topology) {
  return JobChecker(job, topology).Check();
}

Status DagVerifier::VerifyEdges(int num_nodes,
                                const std::vector<std::vector<int>>& inputs) {
  if (static_cast<int>(inputs.size()) != num_nodes) {
    return Status::PlanError("dag verifier: " + std::to_string(inputs.size()) +
                             " edge lists for " + std::to_string(num_nodes) +
                             " nodes");
  }
  for (int i = 0; i < num_nodes; ++i) {
    for (int in : inputs[static_cast<size_t>(i)]) {
      if (in < 0 || in >= num_nodes) {
        return Status::PlanError("dag verifier: node " + std::to_string(i) +
                                 ": input " + std::to_string(in) +
                                 " does not exist");
      }
      if (in >= i) {
        return Status::PlanError(
            "dag verifier: node " + std::to_string(i) + ": input " +
            std::to_string(in) +
            " is not an earlier node (cycle or forward edge)");
      }
    }
  }
  return Status::OK();
}

Status DagVerifier::VerifySteals(const hyracks::Job& job,
                                 const std::vector<bool>& steals) {
  const auto& nodes = job.nodes();
  if (steals.size() != nodes.size()) {
    return Status::PlanError("dag verifier: steal plan covers " +
                             std::to_string(steals.size()) + " of " +
                             std::to_string(nodes.size()) + " nodes");
  }
  std::vector<int> consumers(nodes.size(), 0);
  for (const Job::Node& jn : nodes) {
    for (int in : jn.inputs) ++consumers[static_cast<size_t>(in)];
  }
  for (size_t i = 0; i < nodes.size(); ++i) {
    if (!steals[i]) continue;
    const Job::Node& jn = nodes[i];
    const std::string name = jn.op->name();
    if (dynamic_cast<const hyracks::ExchangeOperator*>(jn.op.get()) ==
        nullptr) {
      return Violation(static_cast<int>(i), name,
                       "steals tuples but is not an exchange");
    }
    if (jn.inputs.size() != 1) {
      return Violation(static_cast<int>(i), name,
                       "steals tuples without a single input");
    }
    int in = jn.inputs[0];
    if (consumers[static_cast<size_t>(in)] != 1) {
      return Violation(
          static_cast<int>(i), name,
          "steals the output of node " + std::to_string(in) + " which has " +
              std::to_string(consumers[static_cast<size_t>(in)]) +
              " consumers");
    }
  }
  return Status::OK();
}

}  // namespace simdb::analysis
