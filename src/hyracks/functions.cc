#include "hyracks/functions.h"

#include <algorithm>
#include <cmath>

#include "similarity/edit_distance.h"
#include "similarity/jaccard.h"
#include "similarity/similarity_function.h"
#include "similarity/tokenizer.h"

namespace simdb::hyracks {

using adm::Value;

namespace {

using Args = std::vector<Value>;

Status ExpectNumeric(const Value& v, const char* fn) {
  if (!v.is_numeric()) {
    return Status::TypeError(std::string(fn) + " expects numeric arguments");
  }
  return Status::OK();
}

Result<Value> EvalCompare(const Args& args, int want_lo, int want_hi) {
  // MISSING/NULL propagate as per three-valued semantics simplified to
  // "comparison with missing/null is false".
  if (args[0].is_missing() || args[0].is_null() || args[1].is_missing() ||
      args[1].is_null()) {
    return Value::Boolean(false);
  }
  int c = Value::Compare(args[0], args[1]);
  return Value::Boolean(c >= want_lo && c <= want_hi);
}

Value TokensToValue(std::vector<std::string> tokens) {
  Value::Array items;
  items.reserve(tokens.size());
  for (std::string& t : tokens) items.push_back(Value::String(std::move(t)));
  return Value::MakeArray(std::move(items));
}

Result<Value> EvalArith(const Args& args, char op) {
  SIMDB_RETURN_IF_ERROR(ExpectNumeric(args[0], "arithmetic"));
  SIMDB_RETURN_IF_ERROR(ExpectNumeric(args[1], "arithmetic"));
  if (args[0].is_int64() && args[1].is_int64() && op != '/') {
    int64_t a = args[0].AsInt64(), b = args[1].AsInt64();
    switch (op) {
      case '+':
        return Value::Int64(a + b);
      case '-':
        return Value::Int64(a - b);
      case '*':
        return Value::Int64(a * b);
    }
  }
  double a = args[0].AsNumber(), b = args[1].AsNumber();
  switch (op) {
    case '+':
      return Value::Double(a + b);
    case '-':
      return Value::Double(a - b);
    case '*':
      return Value::Double(a * b);
    case '/':
      if (b == 0) return Status::InvalidArgument("division by zero");
      return Value::Double(a / b);
  }
  return Status::Internal("bad arithmetic op");
}

}  // namespace

FunctionRegistry& FunctionRegistry::Global() {
  static FunctionRegistry* registry = new FunctionRegistry;
  return *registry;
}

void FunctionRegistry::Register(FunctionDef def) {
  functions_[def.name] = std::move(def);
}

const FunctionDef* FunctionRegistry::Find(std::string_view name) const {
  auto it = functions_.find(name);
  return it == functions_.end() ? nullptr : &it->second;
}

std::vector<std::string> FunctionRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(functions_.size());
  for (const auto& [name, def] : functions_) names.push_back(name);
  return names;
}

FunctionRegistry::FunctionRegistry() {
  auto add = [this](std::string name, int min_args, int max_args,
                    std::function<Result<Value>(const Args&)> fn) {
    Register({std::move(name), min_args, max_args, std::move(fn)});
  };

  // --- logical ---
  add("and", 2, FunctionDef::kVarArgs, [](const Args& args) -> Result<Value> {
    for (const Value& v : args) {
      if (!v.is_boolean()) return Status::TypeError("and expects booleans");
      if (!v.AsBoolean()) return Value::Boolean(false);
    }
    return Value::Boolean(true);
  });
  add("or", 2, FunctionDef::kVarArgs, [](const Args& args) -> Result<Value> {
    for (const Value& v : args) {
      if (!v.is_boolean()) return Status::TypeError("or expects booleans");
      if (v.AsBoolean()) return Value::Boolean(true);
    }
    return Value::Boolean(false);
  });
  add("not", 1, 1, [](const Args& args) -> Result<Value> {
    if (!args[0].is_boolean()) return Status::TypeError("not expects boolean");
    return Value::Boolean(!args[0].AsBoolean());
  });

  // --- comparisons ---
  add("eq", 2, 2, [](const Args& a) { return EvalCompare(a, 0, 0); });
  add("neq", 2, 2, [](const Args& a) -> Result<Value> {
    if (a[0].is_missing() || a[0].is_null() || a[1].is_missing() ||
        a[1].is_null()) {
      return Value::Boolean(false);
    }
    return Value::Boolean(Value::Compare(a[0], a[1]) != 0);
  });
  add("lt", 2, 2, [](const Args& a) { return EvalCompare(a, -1, -1); });
  add("le", 2, 2, [](const Args& a) { return EvalCompare(a, -1, 0); });
  add("gt", 2, 2, [](const Args& a) { return EvalCompare(a, 1, 1); });
  add("ge", 2, 2, [](const Args& a) { return EvalCompare(a, 0, 1); });

  // --- arithmetic ---
  add("add", 2, 2, [](const Args& a) { return EvalArith(a, '+'); });
  add("sub", 2, 2, [](const Args& a) { return EvalArith(a, '-'); });
  add("mul", 2, 2, [](const Args& a) { return EvalArith(a, '*'); });
  add("div", 2, 2, [](const Args& a) { return EvalArith(a, '/'); });

  // --- misc ---
  add("is-missing", 1, 1, [](const Args& a) -> Result<Value> {
    return Value::Boolean(a[0].is_missing());
  });
  add("if-then-else", 3, 3, [](const Args& a) -> Result<Value> {
    if (!a[0].is_boolean()) {
      return Status::TypeError("if-then-else expects boolean condition");
    }
    return a[0].AsBoolean() ? a[1] : a[2];
  });
  add("len", 1, 1, [](const Args& a) -> Result<Value> {
    if (a[0].is_string()) {
      return Value::Int64(static_cast<int64_t>(a[0].AsString().size()));
    }
    if (a[0].is_list()) {
      return Value::Int64(static_cast<int64_t>(a[0].AsList().size()));
    }
    return Status::TypeError("len expects a string or list");
  });
  add("get-field", 2, 2, [](const Args& a) -> Result<Value> {
    if (!a[1].is_string()) return Status::TypeError("get-field name");
    return a[0].GetField(a[1].AsString());
  });

  // --- tokenizers ---
  add("word-tokens", 1, 1, [](const Args& a) -> Result<Value> {
    if (a[0].is_missing() || a[0].is_null()) {
      return Value::MakeArray({});
    }
    if (!a[0].is_string()) return Status::TypeError("word-tokens expects string");
    return TokensToValue(similarity::WordTokens(a[0].AsString()));
  });
  add("gram-tokens", 2, 3, [](const Args& a) -> Result<Value> {
    if (a[0].is_missing() || a[0].is_null()) {
      return Value::MakeArray({});
    }
    if (!a[0].is_string() || !a[1].is_int64()) {
      return Status::TypeError("gram-tokens expects (string, int)");
    }
    bool pad = a.size() > 2 && a[2].is_boolean() && a[2].AsBoolean();
    return TokensToValue(similarity::GramTokens(
        a[0].AsString(), static_cast<int>(a[1].AsInt64()), pad));
  });
  add("sort-list", 1, 1, [](const Args& a) -> Result<Value> {
    if (!a[0].is_list()) return Status::TypeError("sort-list expects a list");
    Value::Array items = a[0].AsList();
    std::sort(items.begin(), items.end(),
              [](const Value& x, const Value& y) {
                return Value::Compare(x, y) < 0;
              });
    return Value::MakeArray(std::move(items));
  });
  add("edit-distance-t-occurrence", 3, 3, [](const Args& a) -> Result<Value> {
    if (!a[0].is_string() || !a[1].is_int64() || !a[2].is_numeric()) {
      return Status::TypeError(
          "edit-distance-t-occurrence expects (string, int, int)");
    }
    return Value::Int64(similarity::EditDistanceTOccurrence(
        static_cast<int>(a[0].AsString().size()),
        static_cast<int>(a[1].AsInt64()),
        static_cast<int>(a[2].AsNumber())));
  });
  add("dedup-occurrences", 1, 1, [](const Args& a) -> Result<Value> {
    SIMDB_ASSIGN_OR_RETURN(std::vector<std::string> tokens,
                           similarity::ValueToTokens(a[0]));
    return TokensToValue(similarity::DedupOccurrences(tokens));
  });

  // --- similarity measures ---
  add("edit-distance", 2, 2, [](const Args& a) -> Result<Value> {
    const similarity::SimilarityFunction* fn =
        similarity::SimilarityFunctionRegistry::Global().Find("edit-distance");
    return fn->eval(a[0], a[1]);
  });
  add("edit-distance-check", 3, 3, [](const Args& a) -> Result<Value> {
    if (!a[2].is_numeric()) return Status::TypeError("threshold must be numeric");
    const similarity::SimilarityFunction* fn =
        similarity::SimilarityFunctionRegistry::Global().Find("edit-distance");
    SIMDB_ASSIGN_OR_RETURN(bool ok, fn->check(a[0], a[1], a[2].AsNumber()));
    return Value::Boolean(ok);
  });
  add("similarity-jaccard", 2, 2, [](const Args& a) -> Result<Value> {
    const similarity::SimilarityFunction* fn =
        similarity::SimilarityFunctionRegistry::Global().Find(
            "similarity-jaccard");
    return fn->eval(a[0], a[1]);
  });
  add("similarity-jaccard-check", 3, 3, [](const Args& a) -> Result<Value> {
    if (!a[2].is_numeric()) return Status::TypeError("threshold must be numeric");
    const similarity::SimilarityFunction* fn =
        similarity::SimilarityFunctionRegistry::Global().Find(
            "similarity-jaccard");
    SIMDB_ASSIGN_OR_RETURN(bool ok, fn->check(a[0], a[1], a[2].AsNumber()));
    return Value::Boolean(ok);
  });
  add("similarity-dice", 2, 2, [](const Args& a) -> Result<Value> {
    const similarity::SimilarityFunction* fn =
        similarity::SimilarityFunctionRegistry::Global().Find(
            "similarity-dice");
    return fn->eval(a[0], a[1]);
  });
  add("similarity-cosine", 2, 2, [](const Args& a) -> Result<Value> {
    const similarity::SimilarityFunction* fn =
        similarity::SimilarityFunctionRegistry::Global().Find(
            "similarity-cosine");
    return fn->eval(a[0], a[1]);
  });
  add("contains", 2, 2, [](const Args& a) -> Result<Value> {
    if (!a[0].is_string() || !a[1].is_string()) {
      return Status::TypeError("contains expects strings");
    }
    return Value::Boolean(a[0].AsString().find(a[1].AsString()) !=
                          std::string::npos);
  });

  // --- prefix filtering helpers (paper Section 4.2.2) ---
  add("prefix-len-jaccard", 2, 2, [](const Args& a) -> Result<Value> {
    if (!a[0].is_int64() || !a[1].is_numeric()) {
      return Status::TypeError("prefix-len-jaccard expects (int, double)");
    }
    return Value::Int64(similarity::PrefixLenJaccard(
        static_cast<int>(a[0].AsInt64()), a[1].AsNumber()));
  });
  add("subset-collection", 3, 3, [](const Args& a) -> Result<Value> {
    if (!a[0].is_list() || !a[1].is_int64() || !a[2].is_int64()) {
      return Status::TypeError("subset-collection expects (list, int, int)");
    }
    const Value::Array& items = a[0].AsList();
    int64_t start = a[1].AsInt64();
    int64_t len = a[2].AsInt64();
    if (start < 0) start = 0;
    if (len < 0) len = 0;
    Value::Array out;
    for (int64_t i = start;
         i < start + len && i < static_cast<int64_t>(items.size()); ++i) {
      out.push_back(items[static_cast<size_t>(i)]);
    }
    return Value::MakeArray(std::move(out));
  });
}

}  // namespace simdb::hyracks
