#include "hyracks/scheduler.h"

#include <deque>
#include <utility>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "common/thread_annotations.h"
#include "hyracks/ops_exchange.h"
#include "observability/trace.h"
#include "transport/transport.h"

namespace simdb::hyracks {

namespace {

enum class TaskKind { kLocal, kRoute, kBuild, kBarrier };

struct Task {
  TaskKind kind;
  int node = -1;
  /// Partition (kLocal) or destination partition (kBuild); -1 otherwise.
  int p = -1;
  /// Unfinished dependency count; duplicate edges are counted on both sides.
  int pending = 0;
  bool dep_failed = false;
  std::vector<int> dependents;
};

/// Per-node execution state shared by the node's tasks.
struct NodeRun {
  /// No tasks were created: the node failed validation or consumes a dead
  /// node's output.
  bool dead = false;
  bool is_exchange = false;
  /// Exchange builds may move tuples out of the input (sole consumer edge).
  bool steal = false;

  // Failure bookkeeping. Within a node the lowest partition wins;
  // partition -1 is a node-level failure (validation, routing) and beats all.
  bool failed = false;
  bool unwrapped = false;  // reported without the "node N (NAME): " prefix
  int fail_partition = 0;
  Status fail_status = Status::OK();

  // Stats, assembled deterministically regardless of task interleaving.
  bool any_ran = false;
  OpStats stats;
  std::vector<OpStats> dest_stats;     // exchange: per-destination traffic
  std::vector<double> build_seconds;   // exchange: per-destination build time
  double route_seconds = 0.0;
  ExchangeOperator::Routing routing;
};

class SchedulerRun {
 public:
  SchedulerRun(const Job& job, ExecContext& ctx)
      : job_(job), ctx_(ctx), parts_(ctx.topology.total_partitions()) {}

  Result<PartitionedRows> Go() {
    if (job_.nodes().empty()) return Status::PlanError("empty job");
    Stopwatch sw;
    BuildGraph();
    RunTasks();
    return Finalize(sw.ElapsedSeconds());
  }

  /// Bytes a task's output will occupy while held by the scheduler; only
  /// computed when a budget is attached (the unbudgeted path never walks
  /// tuples).
  static int64_t RowsApproxBytes(const Rows& rows) {
    int64_t bytes = 0;
    for (const Tuple& t : rows) bytes += static_cast<int64_t>(TupleBytes(t));
    return bytes;
  }

 private:
  int AddTask(TaskKind kind, int node, int p) {
    int id = static_cast<int>(tasks_.size());
    Task t;
    t.kind = kind;
    t.node = node;
    t.p = p;
    tasks_.push_back(std::move(t));
    return id;
  }

  void AddDep(int producer, int consumer) {
    tasks_[static_cast<size_t>(producer)].dependents.push_back(consumer);
    ++tasks_[static_cast<size_t>(consumer)].pending;
  }

  void BuildGraph() {
    const auto& jnodes = job_.nodes();
    int n = static_cast<int>(jnodes.size());
    nodes_.resize(static_cast<size_t>(n));
    outputs_.assign(static_cast<size_t>(n),
                    PartitionedRows(static_cast<size_t>(parts_)));
    refcount_.assign(static_cast<size_t>(n),
                     std::vector<int>(static_cast<size_t>(parts_), 0));
    producer_.assign(static_cast<size_t>(n),
                     std::vector<int>(static_cast<size_t>(parts_), -1));
    if (ctx_.budget != nullptr) {
      charged_.assign(static_cast<size_t>(n),
                      std::vector<int64_t>(static_cast<size_t>(parts_), 0));
    }

    // Tuples may be moved out of an exchange's input only when the exchange
    // is the input's sole consumer.
    std::vector<bool> planned_steals = Scheduler::PlannedSteals(job_);
    std::vector<int> stages = ComputeStages(job_);

    for (int i = 0; i < n; ++i) {
      const Job::Node& jn = jnodes[static_cast<size_t>(i)];
      NodeRun& nr = nodes_[static_cast<size_t>(i)];
      Operator* op = jn.op.get();
      auto* exchange = dynamic_cast<ExchangeOperator*>(op);
      nr.is_exchange = exchange != nullptr;
      nr.stats.name = op->name();
      nr.stats.node_id = i;
      nr.stats.input_ops = jn.inputs;
      nr.stats.barrier = !op->partition_local();
      nr.stats.stage = stages[static_cast<size_t>(i)];
      nr.stats.partition_rows.assign(static_cast<size_t>(parts_), 0);

      bool input_dead = false;
      for (int in : jn.inputs) {
        input_dead |= nodes_[static_cast<size_t>(in)].dead;
      }
      if (input_dead) {
        nr.dead = true;
        continue;
      }

      if (op->partition_local()) {
        auto* pop = static_cast<PartitionOperator*>(op);
        Status v = pop->ValidateInputArity(jn.inputs.size());
        if (v.ok()) v = pop->Prepare(ctx_);
        if (!v.ok()) {
          // Recorded (not returned): an earlier node's runtime failure must
          // still win, and upstream nodes always have smaller ids.
          MutexLock lock(mu_);
          RecordFailure(i, -1, v, /*unwrapped=*/false);
          nr.dead = true;
          continue;
        }
        nr.stats.partition_seconds.assign(static_cast<size_t>(parts_), 0.0);
        for (int p = 0; p < parts_; ++p) {
          int tid = AddTask(TaskKind::kLocal, i, p);
          producer_[static_cast<size_t>(i)][static_cast<size_t>(p)] = tid;
          for (int in : jn.inputs) {
            AddDep(producer_[static_cast<size_t>(in)][static_cast<size_t>(p)],
                   tid);
            ++refcount_[static_cast<size_t>(in)][static_cast<size_t>(p)];
          }
        }
      } else if (exchange != nullptr) {
        if (jn.inputs.size() != 1) {
          MutexLock lock(mu_);
          RecordFailure(
              i, -1,
              Status::Internal(op->name() + " expects exactly one input"),
              /*unwrapped=*/false);
          nr.dead = true;
          continue;
        }
        int in = jn.inputs[0];
        nr.steal = planned_steals[static_cast<size_t>(i)];
        nr.dest_stats.resize(static_cast<size_t>(parts_));
        nr.build_seconds.assign(static_cast<size_t>(parts_), 0.0);
        nr.stats.partition_seconds.assign(static_cast<size_t>(parts_), 0.0);
        int route = AddTask(TaskKind::kRoute, i, -1);
        for (int p = 0; p < parts_; ++p) {
          AddDep(producer_[static_cast<size_t>(in)][static_cast<size_t>(p)],
                 route);
        }
        for (int d = 0; d < parts_; ++d) {
          int tid = AddTask(TaskKind::kBuild, i, d);
          producer_[static_cast<size_t>(i)][static_cast<size_t>(d)] = tid;
          AddDep(route, tid);
          // Every build reads the whole input and releases it once.
          for (int p = 0; p < parts_; ++p) {
            ++refcount_[static_cast<size_t>(in)][static_cast<size_t>(p)];
          }
        }
      } else {
        int tid = AddTask(TaskKind::kBarrier, i, -1);
        for (int p = 0; p < parts_; ++p) {
          producer_[static_cast<size_t>(i)][static_cast<size_t>(p)] = tid;
        }
        for (int in : jn.inputs) {
          for (int p = 0; p < parts_; ++p) {
            AddDep(producer_[static_cast<size_t>(in)][static_cast<size_t>(p)],
                   tid);
            ++refcount_[static_cast<size_t>(in)][static_cast<size_t>(p)];
          }
        }
      }
    }

    // The root's output must survive every release.
    for (int p = 0; p < parts_; ++p) {
      ++refcount_[static_cast<size_t>(job_.root())][static_cast<size_t>(p)];
    }
  }

  void RunTasks() SIMDB_EXCLUDES(mu_) {
    if (tasks_.empty()) return;
    {
      MutexLock lock(mu_);
      // Pool workers must not block waiting for other workers; a nested run
      // (and the no-pool case) executes inline in topological order instead.
      use_pool_ = ctx_.pool != nullptr && !ThreadPool::OnWorkerThread();
      remaining_ = static_cast<int>(tasks_.size());
      for (int tid = 0; tid < static_cast<int>(tasks_.size()); ++tid) {
        if (tasks_[static_cast<size_t>(tid)].pending == 0) LaunchLocked(tid);
      }
      if (use_pool_) {
        while (remaining_ != 0) done_cv_.Wait(lock);
        return;
      }
    }
    for (;;) {
      int tid;
      {
        MutexLock lock(mu_);
        if (inline_queue_.empty()) break;
        tid = inline_queue_.front();
        inline_queue_.pop_front();
      }
      ExecTask(tid);
    }
    MutexLock lock(mu_);
    SIMDB_CHECK(remaining_ == 0) << "scheduler finished with pending tasks";
  }

  /// Submitting to the pool acquires ThreadPool::mu_ while the scheduler
  /// mutex is held — the nesting that pins kScheduler < kThreadPool in the
  /// rank registry.
  void LaunchLocked(int tid) SIMDB_REQUIRES(mu_) {
    if (use_pool_) {
      ctx_.pool->Submit([this, tid] { ExecTask(tid); });
    } else {
      inline_queue_.push_back(tid);
    }
  }

  /// Records a failure for `node`; the lowest partition wins, node-level
  /// failures (partition -1) beat all partitions. Requires mu_ even from
  /// BuildGraph's single-threaded phase: uniform locking keeps the
  /// thread-safety analysis exact and the uncontended acquire is cheap.
  void RecordFailure(int node, int partition, Status s, bool unwrapped)
      SIMDB_REQUIRES(mu_) {
    NodeRun& nr = nodes_[static_cast<size_t>(node)];
    if (nr.failed && nr.fail_partition <= partition) return;
    nr.failed = true;
    nr.fail_partition = partition;
    nr.fail_status = std::move(s);
    nr.unwrapped = unwrapped;
  }

  /// Cooperative serving checks at task start: cancellation/deadline, then
  /// the task quota. A tripped check records an unwrapped failure (the
  /// client sees the plain "query cancelled" / quota status, not a node
  /// prefix) and skips the task — the graph still drains, downstream tasks
  /// are skipped transitively, and partial outputs are released on the way.
  bool AdmitTaskOrSkip(int tid, Task& t) {
    Status s = Status::OK();
    if (ctx_.cancel != nullptr) s = ctx_.cancel->Check();
    if (s.ok() && ctx_.budget != nullptr) s = ctx_.budget->ChargeTask();
    if (s.ok()) return true;
    MutexLock lock(mu_);
    ++tasks_skipped_;
    RecordFailure(t.node, t.p, std::move(s), /*unwrapped=*/true);
    CompleteLocked(tid, /*bad=*/true);
    return false;
  }

  /// Charges `bytes` for (node, p) against the budget. On refusal records a
  /// ResourceExhausted failure for the task and completes it as bad (the
  /// output is dropped, not stored).
  bool ChargeOutputLocked(int tid, int node, int p, int64_t bytes)
      SIMDB_REQUIRES(mu_) {
    if (ctx_.budget == nullptr) return true;
    Status s = ctx_.budget->ChargeMemory(bytes);
    if (s.ok()) {
      charged_[static_cast<size_t>(node)][static_cast<size_t>(p)] = bytes;
      return true;
    }
    RecordFailure(node, p, std::move(s), /*unwrapped=*/true);
    CompleteLocked(tid, /*bad=*/true);
    return false;
  }

  /// Runs one task, records its outcome, and wakes dependents. Called from
  /// pool workers (or inline); everything after the operator call happens
  /// under the scheduler mutex, which also publishes outputs to dependents.
  void ExecTask(int tid) {
    Task& t = tasks_[static_cast<size_t>(tid)];
    const Job::Node& jn = job_.nodes()[static_cast<size_t>(t.node)];
    NodeRun& nr = nodes_[static_cast<size_t>(t.node)];
    if (!AdmitTaskOrSkip(tid, t)) return;
    switch (t.kind) {
      case TaskKind::kLocal: {
        auto* op = static_cast<PartitionOperator*>(jn.op.get());
        std::vector<const Rows*> slice;
        slice.reserve(jn.inputs.size());
        uint64_t rows_in = 0;
        for (int in : jn.inputs) {
          const Rows& part =
              outputs_[static_cast<size_t>(in)][static_cast<size_t>(t.p)];
          rows_in += part.size();
          slice.push_back(&part);
        }
        // Profiling runs the task against a private context copy whose
        // counter sink belongs to this task alone; the sink is merged under
        // the scheduler mutex (per-name sums, order-independent).
        const bool profiling = ctx_.trace != nullptr;
        OpCounterSink sink;
        ExecContext task_ctx = ctx_;
        if (profiling) task_ctx.counters = &sink;
        int64_t start = profiling ? ctx_.trace->NowMicros() : 0;
        Stopwatch sw;
        Result<Rows> r = op->ExecutePartition(task_ctx, t.p, slice);
        double secs = sw.ElapsedSeconds();
        if (profiling && r.ok()) {
          obs::TraceEvent ev;
          ev.category = "task";
          ev.name = nr.stats.name;
          ev.start_us = start;
          ev.dur_us = ctx_.trace->NowMicros() - start;
          ev.pid = ctx_.topology.NodeOfPartition(t.p);
          ev.tid = t.p % ctx_.topology.partitions_per_node;
          ev.args = {{"node", t.node},
                     {"partition", t.p},
                     {"stage", nr.stats.stage},
                     {"rows", static_cast<int64_t>(r.value().size())}};
          ctx_.trace->Record(std::move(ev));
        }
        int64_t out_bytes =
            (ctx_.budget != nullptr && r.ok()) ? RowsApproxBytes(r.value()) : 0;
        MutexLock lock(mu_);
        ++tasks_executed_;
        nr.any_ran = true;
        nr.stats.partition_seconds[static_cast<size_t>(t.p)] = secs;
        nr.stats.rows_in += rows_in;
        if (profiling) MergeCounterSink(nr.stats, sink);
        if (r.ok()) {
          nr.stats.rows_out += r.value().size();
          nr.stats.partition_rows[static_cast<size_t>(t.p)] = r.value().size();
          if (!ChargeOutputLocked(tid, t.node, t.p, out_bytes)) return;
          outputs_[static_cast<size_t>(t.node)][static_cast<size_t>(t.p)] =
              std::move(r).value();
          CompleteLocked(tid, /*bad=*/false);
        } else {
          RecordFailure(t.node, t.p, WrapPartitionError(t.p, r.status()),
                        /*unwrapped=*/false);
          CompleteLocked(tid, /*bad=*/true);
        }
        return;
      }
      case TaskKind::kRoute: {
        auto* op = static_cast<ExchangeOperator*>(jn.op.get());
        const PartitionedRows& in = outputs_[static_cast<size_t>(jn.inputs[0])];
        uint64_t rows_in = RowsCount(in);
        const bool profiling = ctx_.trace != nullptr;
        int64_t start = profiling ? ctx_.trace->NowMicros() : 0;
        Stopwatch sw;
        Result<ExchangeOperator::Routing> r = op->Route(ctx_, in);
        double secs = sw.ElapsedSeconds();
        if (profiling && r.ok()) {
          obs::TraceEvent ev;
          ev.category = "exchange";
          ev.name = nr.stats.name + ":route";
          ev.start_us = start;
          ev.dur_us = ctx_.trace->NowMicros() - start;
          ev.args = {{"node", t.node}, {"stage", nr.stats.stage}};
          ctx_.trace->Record(std::move(ev));
        }
        MutexLock lock(mu_);
        ++tasks_executed_;
        nr.any_ran = true;
        nr.route_seconds = secs;
        nr.stats.rows_in = rows_in;
        if (r.ok()) {
          nr.routing = std::move(r).value();
          CompleteLocked(tid, /*bad=*/false);
        } else {
          RecordFailure(t.node, -1, r.status(), /*unwrapped=*/false);
          CompleteLocked(tid, /*bad=*/true);
        }
        return;
      }
      case TaskKind::kBuild: {
        auto* op = static_cast<ExchangeOperator*>(jn.op.get());
        const PartitionedRows& in = outputs_[static_cast<size_t>(jn.inputs[0])];
        PartitionedRows* steal =
            nr.steal ? &outputs_[static_cast<size_t>(jn.inputs[0])] : nullptr;
        OpStats dstats;
        // Remote-task lease: opened when a remote-eligible build starts,
        // closed when its outcome is recorded below. Finalize asserts every
        // lease closed — a fragment cannot be lost between dispatch and
        // completion (contract: DESIGN.md, "Remote-task leases").
        const bool leased = ctx_.transport != nullptr &&
                            ctx_.transport->remote_execution();
        if (leased) {
          MutexLock lock(mu_);
          ++leases_open_;
        }
        const bool profiling = ctx_.trace != nullptr;
        // Same private-sink pattern as kLocal: remote fragment dispatch
        // emits exec.remote.* op counters through the context.
        OpCounterSink sink;
        ExecContext task_ctx = ctx_;
        if (profiling) task_ctx.counters = &sink;
        int64_t start = profiling ? ctx_.trace->NowMicros() : 0;
        Stopwatch sw;
        Result<Rows> r = BuildAndShipDestination(task_ctx, *op, t.p, in,
                                                 nr.routing, steal, &dstats);
        double secs = sw.ElapsedSeconds();
        // The completion callback runs before this task's CompleteLocked:
        // once that runs, the run may finish and tear down, so no member may
        // be touched afterwards. The callback itself stays outside mu_.
        if (leased && ctx_.on_lease_complete != nullptr &&
            *ctx_.on_lease_complete) {
          RemoteTaskLease lease;
          lease.op_node = t.node;
          lease.dst_partition = t.p;
          lease.cluster_node = ctx_.topology.NodeOfPartition(t.p);
          lease.remote = dstats.remote_builds > 0;
          lease.ok = r.ok();
          lease.remote_compute_seconds = dstats.remote_compute_seconds;
          (*ctx_.on_lease_complete)(lease);
        }
        if (profiling && r.ok()) {
          obs::TraceEvent ev;
          ev.category = "exchange";
          ev.name = nr.stats.name + ":build";
          ev.start_us = start;
          ev.dur_us = ctx_.trace->NowMicros() - start;
          ev.pid = ctx_.topology.NodeOfPartition(t.p);
          ev.tid = t.p % ctx_.topology.partitions_per_node;
          ev.args = {{"node", t.node},
                     {"partition", t.p},
                     {"stage", nr.stats.stage},
                     {"rows", static_cast<int64_t>(r.value().size())}};
          ctx_.trace->Record(std::move(ev));
        }
        int64_t out_bytes =
            (ctx_.budget != nullptr && r.ok()) ? RowsApproxBytes(r.value()) : 0;
        MutexLock lock(mu_);
        ++tasks_executed_;
        if (leased) --leases_open_;
        nr.any_ran = true;
        nr.build_seconds[static_cast<size_t>(t.p)] = secs;
        if (profiling) MergeCounterSink(nr.stats, sink);
        if (r.ok()) {
          nr.dest_stats[static_cast<size_t>(t.p)] = std::move(dstats);
          nr.stats.rows_out += r.value().size();
          nr.stats.partition_rows[static_cast<size_t>(t.p)] = r.value().size();
          if (!ChargeOutputLocked(tid, t.node, t.p, out_bytes)) return;
          outputs_[static_cast<size_t>(t.node)][static_cast<size_t>(t.p)] =
              std::move(r).value();
          CompleteLocked(tid, /*bad=*/false);
        } else {
          RecordFailure(t.node, t.p, WrapPartitionError(t.p, r.status()),
                        /*unwrapped=*/false);
          CompleteLocked(tid, /*bad=*/true);
        }
        return;
      }
      case TaskKind::kBarrier: {
        std::vector<const PartitionedRows*> ins;
        ins.reserve(jn.inputs.size());
        uint64_t rows_in = 0;
        for (int in : jn.inputs) {
          const PartitionedRows& pr = outputs_[static_cast<size_t>(in)];
          rows_in += RowsCount(pr);
          ins.push_back(&pr);
        }
        // The barrier owns all of its node's stats slots; no other task of
        // this node exists, so writing them pre-lock is safe.
        nr.stats.rows_in = rows_in;
        const bool profiling = ctx_.trace != nullptr;
        int64_t start = profiling ? ctx_.trace->NowMicros() : 0;
        Result<PartitionedRows> r = jn.op->Execute(ctx_, ins, &nr.stats);
        if (profiling && r.ok()) {
          obs::TraceEvent ev;
          ev.category = "task";
          ev.name = nr.stats.name;
          ev.start_us = start;
          ev.dur_us = ctx_.trace->NowMicros() - start;
          ev.args = {{"node", t.node}, {"stage", nr.stats.stage}};
          ctx_.trace->Record(std::move(ev));
        }
        MutexLock lock(mu_);
        ++tasks_executed_;
        nr.any_ran = true;
        if (!r.ok()) {
          RecordFailure(t.node, -1, r.status(), /*unwrapped=*/false);
          CompleteLocked(tid, /*bad=*/true);
          return;
        }
        PartitionedRows out = std::move(r).value();
        if (static_cast<int>(out.size()) != parts_) {
          // Stage-sequential reports this check without the node prefix.
          RecordFailure(t.node, -1,
                        Status::Internal("operator " + jn.op->name() +
                                         " produced wrong partition count"),
                        /*unwrapped=*/true);
          CompleteLocked(tid, /*bad=*/true);
          return;
        }
        nr.stats.rows_out = RowsCount(out);
        for (int p = 0; p < parts_; ++p) {
          nr.stats.partition_rows[static_cast<size_t>(p)] =
              out[static_cast<size_t>(p)].size();
        }
        if (ctx_.budget != nullptr) {
          for (int p = 0; p < parts_; ++p) {
            if (!ChargeOutputLocked(
                    tid, t.node, p,
                    RowsApproxBytes(out[static_cast<size_t>(p)]))) {
              return;  // partial charges are released via DecRef / Finalize
            }
          }
        }
        outputs_[static_cast<size_t>(t.node)] = std::move(out);
        CompleteLocked(tid, /*bad=*/false);
        return;
      }
    }
  }

  static Status WrapPartitionError(int p, const Status& s) {
    return Status(s.code(),
                  "partition " + std::to_string(p) + ": " + s.message());
  }

  /// Marks `tid` finished (`bad` = failed or skipped), releases its input
  /// claims, and cascades: dependents whose last dependency this was are
  /// launched, or — when any dependency was bad — skipped transitively.
  void CompleteLocked(int tid, bool bad) SIMDB_REQUIRES(mu_) {
    std::deque<std::pair<int, bool>> events;
    events.emplace_back(tid, bad);
    while (!events.empty()) {
      auto [id, was_bad] = events.front();
      events.pop_front();
      ReleaseInputsLocked(id);
      for (int d : tasks_[static_cast<size_t>(id)].dependents) {
        Task& dep = tasks_[static_cast<size_t>(d)];
        dep.dep_failed |= was_bad;
        if (--dep.pending == 0) {
          if (dep.dep_failed) {
            ++tasks_skipped_;
            events.emplace_back(d, true);  // skipped, never executed
          } else {
            LaunchLocked(d);
          }
        }
      }
      --remaining_;
    }
    if (remaining_ == 0) done_cv_.NotifyAll();
  }

  /// Releases the (input, partition) claims this task holds; a partition is
  /// freed when its last consumer finishes. Skipped tasks release too, so
  /// live branches still reclaim memory next to a failed branch.
  void ReleaseInputsLocked(int tid) SIMDB_REQUIRES(mu_) {
    const Task& t = tasks_[static_cast<size_t>(tid)];
    const auto& inputs = job_.nodes()[static_cast<size_t>(t.node)].inputs;
    switch (t.kind) {
      case TaskKind::kLocal:
        for (int in : inputs) DecRefLocked(in, t.p);
        break;
      case TaskKind::kRoute:
        break;  // builds hold the input alive; routing claims nothing
      case TaskKind::kBuild:
        for (int p = 0; p < parts_; ++p) DecRefLocked(inputs[0], p);
        break;
      case TaskKind::kBarrier:
        for (int in : inputs) {
          for (int p = 0; p < parts_; ++p) DecRefLocked(in, p);
        }
        break;
    }
  }

  void DecRefLocked(int node, int p) SIMDB_REQUIRES(mu_) {
    int& rc = refcount_[static_cast<size_t>(node)][static_cast<size_t>(p)];
    if (--rc == 0) {
      outputs_[static_cast<size_t>(node)][static_cast<size_t>(p)] = Rows();
      if (ctx_.budget != nullptr) {
        int64_t& c = charged_[static_cast<size_t>(node)][static_cast<size_t>(p)];
        if (c != 0) {
          ctx_.budget->ReleaseMemory(c);
          c = 0;
        }
      }
    }
  }

  Result<PartitionedRows> Finalize(double wall_seconds) {
    int n = static_cast<int>(job_.nodes().size());
    {
      // Every remote-task lease must have closed: the graph has drained, so
      // an open lease would mean a build dispatched a fragment and never
      // recorded an outcome for it.
      MutexLock lock(mu_);
      SIMDB_CHECK(leases_open_ == 0)
          << "scheduler finalized with " << leases_open_
          << " open remote-task leases";
    }
    // Return every outstanding memory charge (the root's output, anything a
    // failed/cancelled run left behind): after this the query holds zero
    // budget bytes whether it succeeded, failed, or was cancelled.
    if (ctx_.budget != nullptr) {
      for (auto& per_node : charged_) {
        for (int64_t& c : per_node) {
          if (c != 0) {
            ctx_.budget->ReleaseMemory(c);
            c = 0;
          }
        }
      }
    }
    if (ctx_.stats != nullptr) {
      ctx_.stats->tasks_total += tasks_.size();
      ctx_.stats->tasks_executed += tasks_executed_;
      ctx_.stats->tasks_skipped += tasks_skipped_;
    }
    if (ctx_.stats != nullptr) {
      for (int i = 0; i < n; ++i) {
        NodeRun& nr = nodes_[static_cast<size_t>(i)];
        if (!nr.any_ran) continue;
        if (nr.is_exchange) {
          // Merge per-destination traffic in destination order; spread the
          // one-shot routing cost evenly (each source routes its own rows).
          // Implicit-routing exchanges (broadcast, gather, merge-gather)
          // computed no per-row destinations: charging their Route() time to
          // destinations that did no work would misattribute it — e.g. a
          // merge-gather whose entire merge belongs to the stealing
          // destination-0 worker, not to the idle victims.
          double spread = nr.routing.destinations.empty()
                              ? 0.0
                              : nr.route_seconds / parts_;
          for (int d = 0; d < parts_; ++d) {
            const OpStats& ds = nr.dest_stats[static_cast<size_t>(d)];
            nr.stats.local_bytes += ds.local_bytes;
            nr.stats.remote_bytes += ds.remote_bytes;
            nr.stats.remote_transfers += ds.remote_transfers;
            nr.stats.transport_seconds += ds.transport_seconds;
            nr.stats.remote_compute_seconds += ds.remote_compute_seconds;
            nr.stats.remote_builds += ds.remote_builds;
            nr.stats.partition_seconds[static_cast<size_t>(d)] =
                nr.build_seconds[static_cast<size_t>(d)] + spread;
          }
          ctx_.stats->tasks_remote += nr.stats.remote_builds;
        }
        ctx_.stats->ops.push_back(std::move(nr.stats));
      }
      ctx_.stats->has_task_dag = true;
      if (ctx_.transport != nullptr && ctx_.transport->measures_wall_clock()) {
        ctx_.stats->network_measured = true;
      }
      ctx_.stats->wall_seconds += wall_seconds;
    }
    for (int i = 0; i < n; ++i) {
      const NodeRun& nr = nodes_[static_cast<size_t>(i)];
      if (!nr.failed) continue;
      if (nr.unwrapped) return nr.fail_status;
      return WrapNodeError(i, job_.nodes()[static_cast<size_t>(i)].op->name(),
                           nr.fail_status);
    }
    return std::move(outputs_[static_cast<size_t>(job_.root())]);
  }

  const Job& job_;
  ExecContext& ctx_;
  int parts_;

  std::vector<Task> tasks_;
  std::vector<NodeRun> nodes_;
  std::vector<PartitionedRows> outputs_;
  std::vector<std::vector<int>> refcount_;  // [node][partition]
  std::vector<std::vector<int>> producer_;  // task producing (node, partition)
  /// [node][partition] bytes charged to the budget for a stored output;
  /// sized only when ctx_.budget != nullptr.
  std::vector<std::vector<int64_t>> charged_;
  uint64_t tasks_executed_ = 0;
  uint64_t tasks_skipped_ = 0;
  /// Remote-task leases currently open: kBuild tasks under a
  /// remote-executing transport that have started but not yet recorded an
  /// outcome. Must be zero by Finalize.
  int leases_open_ SIMDB_GUARDED_BY(mu_) = 0;

  /// Publishes task outcomes to dependents and serializes all shared run
  /// state below. outputs_/nodes_/refcount_/charged_ are published through
  /// this mutex too, but pre-barrier reads of a dependency's output happen
  /// after its CompleteLocked and are not annotated (the DAG ordering, not
  /// the lock scope, is the invariant there).
  Mutex mu_{lockrank::Rank::kScheduler, "SchedulerRun::mu_"};
  /// Single waiter (the Go() caller) with one predicate; NotifyAll keeps it
  /// future-proof against a second waiter.
  CondVar done_cv_;
  int remaining_ SIMDB_GUARDED_BY(mu_) = 0;
  bool use_pool_ SIMDB_GUARDED_BY(mu_) = false;
  std::deque<int> inline_queue_ SIMDB_GUARDED_BY(mu_);
};

}  // namespace

Result<PartitionedRows> Scheduler::Run(const Job& job, ExecContext& ctx) {
  return SchedulerRun(job, ctx).Go();
}

std::vector<bool> Scheduler::PlannedSteals(const Job& job) {
  const auto& jnodes = job.nodes();
  size_t n = jnodes.size();
  std::vector<int> consumer_edges(n, 0);
  for (const auto& jn : jnodes) {
    for (int in : jn.inputs) ++consumer_edges[static_cast<size_t>(in)];
  }
  std::vector<bool> steals(n, false);
  for (size_t i = 0; i < n; ++i) {
    const Job::Node& jn = jnodes[i];
    if (dynamic_cast<const ExchangeOperator*>(jn.op.get()) == nullptr) continue;
    if (jn.inputs.size() != 1) continue;
    steals[i] = consumer_edges[static_cast<size_t>(jn.inputs[0])] == 1;
  }
  return steals;
}

}  // namespace simdb::hyracks
