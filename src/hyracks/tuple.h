#ifndef SIMDB_HYRACKS_TUPLE_H_
#define SIMDB_HYRACKS_TUPLE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "adm/value.h"
#include "common/result.h"

namespace simdb::hyracks {

/// One row flowing between operators: a flat vector of ADM values addressed
/// by position. Column names live in the RowSchema attached to the producing
/// operator, not in the tuple.
using Tuple = std::vector<adm::Value>;

/// All rows of one partition.
using Rows = std::vector<Tuple>;

/// Operator input/output: one Rows per partition. Every operator in a job
/// produces the same number of partitions (the cluster's total partition
/// count).
using PartitionedRows = std::vector<Rows>;

/// Ordered column names describing the tuples of one operator's output.
class RowSchema {
 public:
  RowSchema() = default;
  explicit RowSchema(std::vector<std::string> columns)
      : columns_(std::move(columns)) {}

  size_t size() const { return columns_.size(); }
  const std::string& column(size_t i) const { return columns_[i]; }
  const std::vector<std::string>& columns() const { return columns_; }

  /// Position of `name`, or -1 when absent.
  int IndexOf(std::string_view name) const;
  bool Contains(std::string_view name) const { return IndexOf(name) >= 0; }
  Result<int> Require(std::string_view name) const;

  /// Appends a column, returning its index.
  int Add(std::string name) {
    columns_.push_back(std::move(name));
    return static_cast<int>(columns_.size()) - 1;
  }

  static RowSchema Concat(const RowSchema& a, const RowSchema& b);

  std::string ToString() const;

 private:
  std::vector<std::string> columns_;
};

/// Approximate wire size of a tuple, used by exchange operators to account
/// network traffic for the cluster cost model.
uint64_t TupleBytes(const Tuple& tuple);

uint64_t RowsCount(const PartitionedRows& rows);

}  // namespace simdb::hyracks

#endif  // SIMDB_HYRACKS_TUPLE_H_
