#ifndef SIMDB_HYRACKS_OPS_INDEX_H_
#define SIMDB_HYRACKS_OPS_INDEX_H_

#include <string>
#include <vector>

#include "hyracks/exec.h"
#include "hyracks/expr.h"
#include "storage/catalog.h"

namespace simdb::hyracks {

/// Similarity predicate driving an inverted-index search.
struct SimSearchSpec {
  enum class Fn { kJaccard, kEditDistance, kContains };
  Fn fn = Fn::kJaccard;
  /// Jaccard threshold delta, edit-distance bound k, unused for contains.
  double threshold = 0.5;
};

/// Secondary-to-primary index search: for each input row (already broadcast
/// to every partition), evaluates `key_expr`, tokenizes it per the index
/// spec, computes the T-occurrence bound for the predicate, and probes the
/// local inverted index. Emits input columns + candidate pk. Rows whose T
/// bound is non-positive (edit-distance corner case) produce nothing here —
/// the corner-case path of the plan (paper Figure 14) covers them.
/// Partition-local: probing is thread-safe (the decoded posting-list cache
/// is mutex-guarded), so partitions may run concurrently with other ops.
class InvertedIndexSearchOp : public PartitionOperator {
 public:
  InvertedIndexSearchOp(std::string dataset, std::string index,
                        ExprPtr key_expr, SimSearchSpec spec)
      : dataset_(std::move(dataset)),
        index_(std::move(index)),
        key_expr_(std::move(key_expr)),
        spec_(spec) {}
  std::string name() const override {
    return "INVERTED-SEARCH(" + dataset_ + "." + index_ + ")";
  }
  Status Prepare(ExecContext& ctx) override;
  Result<Rows> ExecutePartition(ExecContext& ctx, int p,
                                const std::vector<const Rows*>& inputs)
      override;
  const std::string& dataset() const { return dataset_; }
  const ExprPtr& key_expr() const { return key_expr_; }
  const SimSearchSpec& spec() const { return spec_; }

 private:
  std::string dataset_;
  std::string index_;
  ExprPtr key_expr_;
  SimSearchSpec spec_;
  storage::Dataset* ds_ = nullptr;                 // resolved by Prepare
  const storage::IndexSpec* index_spec_ = nullptr;  // resolved by Prepare
};

/// Exact-match search on a secondary B+-tree: emits input columns + pk for
/// every local record whose indexed field equals the key expression.
class BtreeSearchOp : public PartitionOperator {
 public:
  BtreeSearchOp(std::string dataset, std::string index, ExprPtr key_expr)
      : dataset_(std::move(dataset)),
        index_(std::move(index)),
        key_expr_(std::move(key_expr)) {}
  std::string name() const override {
    return "BTREE-SEARCH(" + dataset_ + "." + index_ + ")";
  }
  Status Prepare(ExecContext& ctx) override;
  Result<Rows> ExecutePartition(ExecContext& ctx, int p,
                                const std::vector<const Rows*>& inputs)
      override;
  const std::string& dataset() const { return dataset_; }
  const ExprPtr& key_expr() const { return key_expr_; }

 private:
  std::string dataset_;
  std::string index_;
  ExprPtr key_expr_;
  storage::Dataset* ds_ = nullptr;  // resolved by Prepare
};

}  // namespace simdb::hyracks

#endif  // SIMDB_HYRACKS_OPS_INDEX_H_
