#include "hyracks/ops_group.h"

#include <unordered_map>

#include "storage/key.h"

namespace simdb::hyracks {

using adm::Value;

namespace {

struct GroupState {
  Tuple keys;
  std::vector<Value> accumulators;  // one per agg
  std::vector<int64_t> counts;      // row counts per agg (for kCount)
  std::vector<Value::Array> lists;  // for kListify
  bool initialized = false;
};

}  // namespace

Result<Rows> HashGroupOp::ExecutePartition(
    ExecContext&, int, const std::vector<const Rows*>& inputs) {
  // Group states keyed by the encoded key tuple; output in first-seen order
  // so results are deterministic under any executor.
  std::unordered_map<std::string, GroupState> groups;
  std::vector<std::string> order;
  for (const Tuple& row : *inputs[0]) {
    Tuple keys;
    keys.reserve(key_exprs_.size());
    for (const ExprPtr& ke : key_exprs_) {
      SIMDB_ASSIGN_OR_RETURN(Value k, ke->Eval(row));
      keys.push_back(std::move(k));
    }
    std::string encoded = storage::EncodeKey(keys);
    auto [it, inserted] = groups.try_emplace(encoded);
    GroupState& g = it->second;
    if (inserted) {
      order.push_back(encoded);
      g.keys = std::move(keys);
      g.accumulators.resize(aggs_.size());
      g.counts.assign(aggs_.size(), 0);
      g.lists.resize(aggs_.size());
      g.initialized = true;
    }
    for (size_t a = 0; a < aggs_.size(); ++a) {
      const AggSpec& spec = aggs_[a];
      if (spec.kind == AggSpec::Kind::kCount) {
        ++g.counts[a];
        continue;
      }
      SIMDB_ASSIGN_OR_RETURN(Value v, spec.input->Eval(row));
      switch (spec.kind) {
        case AggSpec::Kind::kSum: {
          if (!v.is_numeric()) {
            return Status::TypeError("sum over non-numeric value");
          }
          if (g.counts[a] == 0) {
            g.accumulators[a] = v;
          } else if (g.accumulators[a].is_int64() && v.is_int64()) {
            g.accumulators[a] =
                Value::Int64(g.accumulators[a].AsInt64() + v.AsInt64());
          } else {
            g.accumulators[a] =
                Value::Double(g.accumulators[a].AsNumber() + v.AsNumber());
          }
          ++g.counts[a];
          break;
        }
        case AggSpec::Kind::kMin:
          if (g.counts[a] == 0 || Value::Compare(v, g.accumulators[a]) < 0) {
            g.accumulators[a] = v;
          }
          ++g.counts[a];
          break;
        case AggSpec::Kind::kMax:
          if (g.counts[a] == 0 || Value::Compare(v, g.accumulators[a]) > 0) {
            g.accumulators[a] = v;
          }
          ++g.counts[a];
          break;
        case AggSpec::Kind::kFirst:
          if (g.counts[a] == 0) g.accumulators[a] = v;
          ++g.counts[a];
          break;
        case AggSpec::Kind::kListify:
          g.lists[a].push_back(std::move(v));
          ++g.counts[a];
          break;
        case AggSpec::Kind::kCount:
          break;  // handled above
      }
    }
  }
  Rows rows;
  rows.reserve(groups.size());
  for (const std::string& encoded : order) {
    GroupState& g = groups[encoded];
    Tuple row = std::move(g.keys);
    for (size_t a = 0; a < aggs_.size(); ++a) {
      switch (aggs_[a].kind) {
        case AggSpec::Kind::kCount:
          row.push_back(Value::Int64(g.counts[a]));
          break;
        case AggSpec::Kind::kListify:
          row.push_back(Value::MakeArray(std::move(g.lists[a])));
          break;
        default:
          row.push_back(g.counts[a] == 0 ? Value::Null()
                                         : std::move(g.accumulators[a]));
      }
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace simdb::hyracks
