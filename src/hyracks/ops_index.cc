#include "hyracks/ops_index.h"

#include <algorithm>
#include <unordered_map>

#include "hyracks/batch.h"
#include "similarity/edit_distance.h"
#include "similarity/jaccard.h"
#include "similarity/simd_kernels.h"
#include "similarity/tokenizer.h"
#include "storage/index_tokens.h"

namespace simdb::hyracks {

using adm::Value;

namespace {

/// Reserve that never shrinks the doubling schedule (safe inside per-row
/// loops where an exact reserve would reallocate quadratically).
void ReserveAdditional(Rows& rows, size_t additional) {
  if (rows.size() + additional > rows.capacity()) {
    rows.reserve(std::max(rows.size() + additional, rows.capacity() * 2));
  }
}

}  // namespace

Status InvertedIndexSearchOp::Prepare(ExecContext& ctx) {
  if (ctx.catalog == nullptr) return Status::Internal("no catalog");
  ds_ = ctx.catalog->Find(dataset_);
  if (ds_ == nullptr) return Status::NotFound("dataset " + dataset_);
  index_spec_ = ds_->FindIndex(index_);
  if (index_spec_ == nullptr) {
    return Status::NotFound("index " + index_ + " on " + dataset_);
  }
  return Status::OK();
}

Result<Rows> InvertedIndexSearchOp::ExecutePartition(
    ExecContext& ctx, int p, const std::vector<const Rows*>& inputs) {
  storage::InvertedIndex* index = ds_->inverted_index(p, index_);
  if (index == nullptr) {
    return Status::Internal("missing inverted index partition");
  }
  const bool profiling = ctx.counters != nullptr;
  storage::InvertedSearchStats search_stats;
  uint64_t memo_hits = 0;
  uint64_t corner_rows = 0;
  // Batch path: ScanCount counts occurrences in this dense per-slot scratch
  // directly over the cached posting arrays (no gather copy, no per-posting
  // hash); the scratch is reused across every probe of the partition.
  simd::TOccurrenceScratch scratch;
  const bool batch =
      ctx.batch_execution &&
      ctx.t_occurrence_algorithm == storage::TOccurrenceAlgorithm::kScanCount;
  BatchStats bs;
  Rows rows;
  // Duplicate search keys are common (e.g. popular outer values after
  // a broadcast); memoize per-key candidate lists for this partition.
  std::unordered_map<std::string, std::vector<int64_t>> memo;
  for (const Tuple& row : *inputs[0]) {
    SIMDB_ASSIGN_OR_RETURN(Value key, key_expr_->Eval(row));
    if (key.is_missing() || key.is_null()) continue;
    std::string memo_key = key.ToJson();
    auto cached = memo.find(memo_key);
    if (cached != memo.end()) {
      ++memo_hits;
      ReserveAdditional(rows, cached->second.size());
      for (int64_t pk : cached->second) {
        Tuple extended = row;
        extended.reserve(row.size() + 1);
        extended.push_back(Value::Int64(pk));
        rows.push_back(std::move(extended));
      }
      continue;
    }
    SIMDB_ASSIGN_OR_RETURN(std::vector<std::string> tokens,
                           storage::ExtractIndexTokens(*index_spec_, key));
    int t = 0;
    switch (spec_.fn) {
      case SimSearchSpec::Fn::kJaccard:
        t = similarity::JaccardTOccurrence(static_cast<int>(tokens.size()),
                                           spec_.threshold);
        break;
      case SimSearchSpec::Fn::kEditDistance: {
        if (!key.is_string()) {
          return Status::TypeError(
              "edit-distance index search requires a string key");
        }
        t = similarity::EditDistanceTOccurrence(
            static_cast<int>(key.AsString().size()), index_spec_->gram_len,
            static_cast<int>(spec_.threshold));
        break;
      }
      case SimSearchSpec::Fn::kContains: {
        // Every gram of the pattern must occur.
        t = static_cast<int>(tokens.size());
        break;
      }
    }
    // Corner case (T <= 0): this operator cannot prune; the plan's
    // corner-case branch (scan + verify) is responsible for the row.
    if (t <= 0 || tokens.empty()) {
      ++corner_rows;
      memo.emplace(std::move(memo_key), std::vector<int64_t>());
      continue;
    }
    SIMDB_ASSIGN_OR_RETURN(
        std::vector<int64_t> pks,
        index->SearchTOccurrence(tokens, t, ctx.t_occurrence_algorithm,
                                 profiling ? &search_stats : nullptr,
                                 ctx.posting_cache_enabled,
                                 batch ? &scratch : nullptr));
    if (batch) {
      ++bs.rows;
    } else {
      ++bs.fallback_rows;
    }
    ReserveAdditional(rows, pks.size());
    for (int64_t pk : pks) {
      Tuple extended = row;
      extended.reserve(row.size() + 1);
      extended.push_back(Value::Int64(pk));
      rows.push_back(std::move(extended));
    }
    memo.emplace(std::move(memo_key), std::move(pks));
  }
  if (profiling) {
    // The full set is emitted (zeros included) so the profile's counter
    // names are a deterministic function of the operators that ran — the CI
    // catalogue check relies on that.
    CountOp(ctx, "invsearch.lists_probed", search_stats.lists_probed);
    CountOp(ctx, "invsearch.postings_read", search_stats.postings_read);
    CountOp(ctx, "invsearch.candidates", search_stats.candidates);
    CountOp(ctx, "invsearch.keys_pruned", search_stats.keys_pruned);
    CountOp(ctx, "invsearch.cache_hits", search_stats.cache_hits);
    CountOp(ctx, "invsearch.cache_misses", search_stats.cache_misses);
    CountOp(ctx, "invsearch.memo_hits", memo_hits);
    CountOp(ctx, "invsearch.corner_rows", corner_rows);
    CountOp(ctx, "invindex.posting_cache.bytes_copied",
            search_stats.bytes_copied);
    // For this operator a "batch" is a scratch-reuse group of batch_size
    // probes; rows counts the probes answered on the counter-array path.
    const uint64_t cap = ctx.batch_size > 0
                             ? static_cast<uint64_t>(ctx.batch_size)
                             : 1;
    bs.batches = (bs.rows + cap - 1) / cap;
    bs.Emit(ctx);
  }
  return rows;
}

Status BtreeSearchOp::Prepare(ExecContext& ctx) {
  if (ctx.catalog == nullptr) return Status::Internal("no catalog");
  ds_ = ctx.catalog->Find(dataset_);
  if (ds_ == nullptr) return Status::NotFound("dataset " + dataset_);
  return Status::OK();
}

Result<Rows> BtreeSearchOp::ExecutePartition(
    ExecContext&, int p, const std::vector<const Rows*>& inputs) {
  Rows rows;
  for (const Tuple& row : *inputs[0]) {
    SIMDB_ASSIGN_OR_RETURN(Value key, key_expr_->Eval(row));
    if (key.is_missing() || key.is_null()) continue;
    SIMDB_ASSIGN_OR_RETURN(std::vector<int64_t> pks,
                           ds_->BtreeSearch(p, index_, key));
    for (int64_t pk : pks) {
      Tuple extended = row;
      extended.push_back(Value::Int64(pk));
      rows.push_back(std::move(extended));
    }
  }
  return rows;
}

}  // namespace simdb::hyracks
