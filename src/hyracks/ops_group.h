#ifndef SIMDB_HYRACKS_OPS_GROUP_H_
#define SIMDB_HYRACKS_OPS_GROUP_H_

#include <string>
#include <vector>

#include "hyracks/exec.h"
#include "hyracks/expr.h"

namespace simdb::hyracks {

/// One aggregate computed per group by HashGroupOp.
struct AggSpec {
  enum class Kind { kCount, kSum, kMin, kMax, kFirst, kListify };
  Kind kind = Kind::kCount;
  /// Input expression (ignored for kCount, which counts rows).
  ExprPtr input;
  std::string out_name;
};

/// Local (per-partition) hash aggregation. For a global group-by the plan
/// inserts a HashExchange on the grouping keys first, so equal keys meet in
/// one partition (the paper's `/*+ hash */` group hint maps here; sort-based
/// grouping is not modeled).
class HashGroupOp : public PartitionOperator {
 public:
  HashGroupOp(std::vector<ExprPtr> key_exprs, std::vector<AggSpec> aggs)
      : key_exprs_(std::move(key_exprs)), aggs_(std::move(aggs)) {}
  std::string name() const override { return "HASH-GROUP"; }
  Result<Rows> ExecutePartition(ExecContext& ctx, int p,
                                const std::vector<const Rows*>& inputs)
      override;
  const std::vector<ExprPtr>& key_exprs() const { return key_exprs_; }
  const std::vector<AggSpec>& aggs() const { return aggs_; }

 private:
  std::vector<ExprPtr> key_exprs_;
  std::vector<AggSpec> aggs_;
};

}  // namespace simdb::hyracks

#endif  // SIMDB_HYRACKS_OPS_GROUP_H_
