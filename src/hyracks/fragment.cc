#include "hyracks/fragment.h"

#include <unistd.h>

#include <utility>
#include <vector>

#include "adm/value.h"
#include "common/stopwatch.h"
#include "hyracks/ops_basic.h"
#include "transport/internal.h"

namespace simdb::hyracks::fragment {

namespace {

/// Row-group serde: the same [u32 nrows][per row: u32 ncols, values] layout
/// as the transport's rows frame, but raw (no frame wrapper, no metrics) —
/// the enclosing kFragment frame's CRC covers the whole request payload.
void EncodeRowsRaw(const Rows& rows, ByteWriter* w) {
  w->PutU32(static_cast<uint32_t>(rows.size()));
  for (const Tuple& row : rows) {
    w->PutU32(static_cast<uint32_t>(row.size()));
    for (const adm::Value& v : row) v.Serialize(w);
  }
}

Result<Rows> DecodeRowsRaw(ByteReader* r) {
  SIMDB_ASSIGN_OR_RETURN(uint32_t nrows, r->GetU32());
  Rows rows;
  // Sized by actual decode progress, not the count field: a lying count
  // fails on truncation before any large allocation.
  for (uint32_t i = 0; i < nrows; ++i) {
    SIMDB_ASSIGN_OR_RETURN(uint32_t ncols, r->GetU32());
    Tuple row;
    for (uint32_t c = 0; c < ncols; ++c) {
      SIMDB_ASSIGN_OR_RETURN(adm::Value v, adm::Value::Deserialize(r));
      row.push_back(std::move(v));
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

/// Whether the destination's build reads any input at all. Mirrors each
/// BuildDestination's trivial-empty cases so the caller can skip the round
/// trip when the remote build could only produce empty rows and zero
/// accounting.
size_t SliceRowCount(const adm::FragmentClosure& closure, int dst,
                     const PartitionedRows& in,
                     const ExchangeOperator::Routing& routing) {
  size_t total = 0;
  switch (closure.op) {
    case adm::FragmentOp::kHash:
      for (size_t src = 0; src < in.size(); ++src) {
        if (src >= routing.destinations.size()) return 0;
        for (int d : routing.destinations[src]) total += (d == dst);
      }
      return total;
    case adm::FragmentOp::kBroadcast:
      for (const Rows& rows : in) total += rows.size();
      return total;
    case adm::FragmentOp::kGather:
    case adm::FragmentOp::kMergeGather:
      if (dst != 0) return 0;
      for (const Rows& rows : in) total += rows.size();
      return total;
  }
  return 0;
}

/// Reconstructs the exchange operator named by a closure. The worker runs
/// the same BuildDestination code the parent would — that is what makes
/// remote and local builds bit-identical.
Result<std::unique_ptr<ExchangeOperator>> OperatorFromClosure(
    const adm::FragmentClosure& closure) {
  switch (closure.op) {
    case adm::FragmentOp::kHash:
      return std::unique_ptr<ExchangeOperator>(
          std::make_unique<HashExchangeOp>(closure.columns));
    case adm::FragmentOp::kBroadcast:
      return std::unique_ptr<ExchangeOperator>(
          std::make_unique<BroadcastExchangeOp>());
    case adm::FragmentOp::kGather:
      return std::unique_ptr<ExchangeOperator>(std::make_unique<GatherOp>());
    case adm::FragmentOp::kMergeGather: {
      std::vector<SortKey> keys;
      keys.reserve(closure.columns.size());
      for (size_t i = 0; i < closure.columns.size(); ++i) {
        SortKey k;
        k.column = closure.columns[i];
        k.ascending =
            closure.ascending.empty() || closure.ascending[i] != 0;
        keys.push_back(k);
      }
      return std::unique_ptr<ExchangeOperator>(
          std::make_unique<MergeGatherOp>(std::move(keys)));
    }
  }
  return Status::Corruption("fragment closure names an unknown operator");
}

transport::FragmentReply ErrorReply(const Status& status) {
  transport::FragmentReply reply;
  reply.ok = false;
  adm::EncodeFragmentError(status, &reply.payload);
  return reply;
}

Result<transport::FragmentReply> InterpretFragmentOrError(
    std::string_view request_payload) {
  ByteReader r(request_payload);
  SIMDB_ASSIGN_OR_RETURN(adm::FragmentHeader header,
                         adm::DecodeFragmentHeader(&r));
  SIMDB_ASSIGN_OR_RETURN(adm::FragmentClosure closure,
                         adm::DecodeFragmentClosure(&r));
  PartitionedRows in(header.num_groups);
  for (uint32_t g = 0; g < header.num_groups; ++g) {
    SIMDB_ASSIGN_OR_RETURN(in[g], DecodeRowsRaw(&r));
  }
  if (r.remaining() != 0) {
    return Status::Corruption("fragment request has " +
                              std::to_string(r.remaining()) +
                              " trailing payload bytes");
  }

  // Synthetic routing: for hash, every shipped row was already routed to
  // this destination by the parent's Route pass; the implicit-routing ops
  // ship with an empty table, exactly like a local build.
  ExchangeOperator::Routing routing;
  if (closure.op == adm::FragmentOp::kHash) {
    routing.destinations.resize(in.size());
    for (size_t src = 0; src < in.size(); ++src) {
      routing.destinations[src].assign(
          in[src].size(), static_cast<int>(header.dst_partition));
    }
  }

  SIMDB_ASSIGN_OR_RETURN(std::unique_ptr<ExchangeOperator> op,
                         OperatorFromClosure(closure));

  // A minimal worker-side context: BuildDestination only consults the
  // topology (for same-node vs cross-node accounting). No pool, transport,
  // trace, or budget exists in the worker; the parent owns all of those.
  ExecContext ctx;
  ctx.topology.num_nodes = static_cast<int>(header.num_nodes);
  ctx.topology.partitions_per_node =
      static_cast<int>(header.partitions_per_node);

  OpStats build_stats;
  Stopwatch sw;
  SIMDB_ASSIGN_OR_RETURN(
      Rows rows,
      op->BuildDestination(ctx, static_cast<int>(header.dst_partition), in,
                           routing, /*steal=*/nullptr, &build_stats));
  double compute_seconds = sw.ElapsedSeconds();

  adm::FragmentResultHeader result;
  result.query_id = header.query_id;
  result.worker_pid = static_cast<int64_t>(::getpid());
  result.local_bytes = build_stats.local_bytes;
  result.remote_bytes = build_stats.remote_bytes;
  result.remote_transfers = build_stats.remote_transfers;
  result.compute_seconds = compute_seconds;

  transport::FragmentReply reply;
  reply.ok = true;
  ByteWriter w(&reply.payload);
  adm::EncodeFragmentResultHeader(result, &w);
  EncodeRowsRaw(rows, &w);
  return reply;
}

/// Installs the interpreter during static initialization: single-threaded,
/// pre-main, and therefore before any socket worker is forked — the children
/// inherit the installed pointer. This translation unit is always linked
/// because ops_exchange.cc calls TryBuildRemote.
[[maybe_unused]] const bool kInterpreterInstalled = [] {
  transport::InstallFragmentInterpreter(&InterpretFragment);
  return true;
}();

}  // namespace

bool ClosureFor(const ExchangeOperator& op, adm::FragmentClosure* closure) {
  if (const auto* hash = dynamic_cast<const HashExchangeOp*>(&op)) {
    closure->op = adm::FragmentOp::kHash;
    closure->columns = hash->key_columns();
    closure->ascending.clear();
    return true;
  }
  if (dynamic_cast<const BroadcastExchangeOp*>(&op) != nullptr) {
    closure->op = adm::FragmentOp::kBroadcast;
    closure->columns.clear();
    closure->ascending.clear();
    return true;
  }
  if (const auto* merge = dynamic_cast<const MergeGatherOp*>(&op)) {
    closure->op = adm::FragmentOp::kMergeGather;
    closure->columns.clear();
    closure->ascending.clear();
    for (const SortKey& k : merge->keys()) {
      closure->columns.push_back(k.column);
      closure->ascending.push_back(k.ascending ? 1 : 0);
    }
    return true;
  }
  if (dynamic_cast<const GatherOp*>(&op) != nullptr) {
    closure->op = adm::FragmentOp::kGather;
    closure->columns.clear();
    closure->ascending.clear();
    return true;
  }
  return false;
}

void EncodeFragmentRequest(const ClusterTopology& topology, uint64_t query_id,
                           const adm::FragmentClosure& closure, int dst,
                           const PartitionedRows& in,
                           const ExchangeOperator::Routing& routing,
                           std::string* payload, size_t* slice_rows) {
  *slice_rows = SliceRowCount(closure, dst, in, routing);
  adm::FragmentHeader header;
  header.query_id = query_id;
  header.dst_partition = static_cast<uint32_t>(dst);
  header.num_nodes = static_cast<uint32_t>(topology.num_nodes);
  header.partitions_per_node =
      static_cast<uint32_t>(topology.partitions_per_node);
  header.num_groups = static_cast<uint32_t>(in.size());
  ByteWriter w(payload);
  adm::EncodeFragmentHeader(header, &w);
  adm::EncodeFragmentClosure(closure, &w);
  const bool hash = closure.op == adm::FragmentOp::kHash;
  for (size_t src = 0; src < in.size(); ++src) {
    if (hash) {
      // Ship only this destination's slice, preserving source structure and
      // (src, i) order so the worker's build emits the parent's exact order.
      Rows slice;
      const std::vector<int>& dsts = routing.destinations[src];
      for (size_t i = 0; i < dsts.size(); ++i) {
        if (dsts[i] == dst) slice.push_back(in[src][i]);
      }
      EncodeRowsRaw(slice, &w);
    } else if (*slice_rows == 0) {
      EncodeRowsRaw(Rows(), &w);
    } else {
      EncodeRowsRaw(in[src], &w);
    }
  }
}

Result<RemoteBuildResult> DecodeFragmentResult(std::string_view payload) {
  ByteReader r(payload);
  RemoteBuildResult result;
  SIMDB_ASSIGN_OR_RETURN(result.header,
                         adm::DecodeFragmentResultHeader(&r));
  SIMDB_ASSIGN_OR_RETURN(result.rows, DecodeRowsRaw(&r));
  if (r.remaining() != 0) {
    return Status::Corruption("fragment result has " +
                              std::to_string(r.remaining()) +
                              " trailing payload bytes");
  }
  return result;
}

transport::FragmentReply InterpretFragment(std::string_view request_payload) {
  Result<transport::FragmentReply> reply =
      InterpretFragmentOrError(request_payload);
  if (!reply.ok()) return ErrorReply(reply.status());
  return std::move(reply).value();
}

Status TryBuildRemote(ExecContext& ctx, ExchangeOperator& op, int dst,
                      const PartitionedRows& in,
                      const ExchangeOperator::Routing& routing, OpStats* stats,
                      Rows* out, bool* handled) {
  *handled = false;
  transport::Transport* t = ctx.transport;
  if (t == nullptr || !t->remote_execution()) return Status::OK();
  adm::FragmentClosure closure;
  if (!ClosureFor(op, &closure)) {
    // An exchange kind without a wire closure: build locally. Counted so an
    // operator silently exempting itself from remote execution is visible.
    transport::internal::GetFragmentMetrics().fallbacks->Increment();
    return Status::OK();
  }
  std::string request;
  size_t slice_rows = 0;
  EncodeFragmentRequest(ctx.topology, ctx.query_id, closure, dst, in, routing,
                        &request, &slice_rows);
  if (slice_rows == 0) return Status::OK();  // trivially empty; build locally

  std::string reply;
  double seconds = 0;
  Status dispatched = t->ExecuteFragment(ctx.topology.NodeOfPartition(dst),
                                         request, &reply, &seconds);
  if (dispatched.code() == StatusCode::kCancelled) {
    // The worker refused a cancelled query's fragment. Fall back to the
    // local build: the executors' own cancellation polling decides the
    // query's fate, so answers and errors stay identical across backends.
    return Status::OK();
  }
  SIMDB_RETURN_IF_ERROR(dispatched);
  SIMDB_ASSIGN_OR_RETURN(RemoteBuildResult result,
                         DecodeFragmentResult(reply));
  if (result.header.query_id != ctx.query_id) {
    return Status::Internal(
        "fragment result for query " +
        std::to_string(result.header.query_id) + " on a channel expecting " +
        std::to_string(ctx.query_id));
  }
  if (stats != nullptr) {
    stats->local_bytes += result.header.local_bytes;
    stats->remote_bytes += result.header.remote_bytes;
    stats->remote_transfers += result.header.remote_transfers;
    stats->remote_compute_seconds += result.header.compute_seconds;
    ++stats->remote_builds;
    double wire = seconds - result.header.compute_seconds;
    stats->transport_seconds += wire > 0 ? wire : 0;
  }
  transport::internal::GetFragmentMetrics().remote_compute_micros->Observe(
      static_cast<uint64_t>(result.header.compute_seconds * 1e6));
  CountOp(ctx, "exec.remote.fragments", 1);
  CountOp(ctx, "exec.remote.rows", result.rows.size());
  CountOp(ctx, "exec.remote.bytes", request.size() + reply.size());
  CountOp(ctx, "exec.remote.compute_nanos",
          static_cast<uint64_t>(result.header.compute_seconds * 1e9));
  *out = std::move(result.rows);
  *handled = true;
  return Status::OK();
}

}  // namespace simdb::hyracks::fragment
