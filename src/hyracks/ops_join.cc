#include "hyracks/ops_join.h"

#include <unordered_map>

#include "storage/key.h"

namespace simdb::hyracks {

using adm::Value;

Result<Rows> HashJoinOp::ExecutePartition(
    ExecContext& ctx, int, const std::vector<const Rows*>& inputs) {
  const Rows& left = *inputs[0];
  const Rows& right = *inputs[1];
  uint64_t probe_matches = 0;
  uint64_t residual_dropped = 0;
  // Build on the right side.
  std::unordered_map<std::string, std::vector<const Tuple*>> table;
  for (const Tuple& row : right) {
    Tuple keys;
    keys.reserve(right_keys_.size());
    bool missing = false;
    for (int c : right_keys_) {
      const Value& v = row[static_cast<size_t>(c)];
      if (v.is_missing() || v.is_null()) {
        missing = true;
        break;
      }
      keys.push_back(v);
    }
    if (missing) continue;
    table[storage::EncodeKey(keys)].push_back(&row);
  }
  // Probe with the left side.
  Rows rows;
  for (const Tuple& lrow : left) {
    Tuple keys;
    keys.reserve(left_keys_.size());
    bool missing = false;
    for (int c : left_keys_) {
      const Value& v = lrow[static_cast<size_t>(c)];
      if (v.is_missing() || v.is_null()) {
        missing = true;
        break;
      }
      keys.push_back(v);
    }
    if (missing) continue;
    auto it = table.find(storage::EncodeKey(keys));
    if (it == table.end()) continue;
    for (const Tuple* rrow : it->second) {
      ++probe_matches;
      Tuple combined = lrow;
      combined.insert(combined.end(), rrow->begin(), rrow->end());
      if (residual_ != nullptr) {
        SIMDB_ASSIGN_OR_RETURN(Value keep, residual_->Eval(combined));
        if (!keep.is_boolean() || !keep.AsBoolean()) {
          ++residual_dropped;
          continue;
        }
      }
      rows.push_back(std::move(combined));
    }
  }
  if (ctx.counters != nullptr) {
    CountOp(ctx, "join.build_rows", right.size());
    CountOp(ctx, "join.probe_rows", left.size());
    CountOp(ctx, "join.matches", probe_matches);
    CountOp(ctx, "join.residual_dropped", residual_dropped);
  }
  return rows;
}

Result<Rows> NestedLoopJoinOp::ExecutePartition(
    ExecContext& ctx, int, const std::vector<const Rows*>& inputs) {
  const Rows& left = *inputs[0];
  const Rows& right = *inputs[1];
  const size_t left_width = left.empty() ? 0 : left[0].size();
  uint64_t matches = 0;
  BatchStats bs;
  Rows rows;

  // The batch path needs arg_a to read only left columns and arg_b only
  // right columns (checked against this partition's actual left width), so
  // each side can be tokenized once instead of once per pair.
  const bool use_batch =
      ctx.batch_execution && batch_.has_value() && sides_pure_ &&
      !left.empty() && !right.empty() &&
      a_max_ < static_cast<int>(left_width) &&
      b_min_ >= static_cast<int>(left_width) &&
      b_max_ < static_cast<int>(left_width + right[0].size());
  if (!use_batch) {
    for (const Tuple& lrow : left) {
      for (const Tuple& rrow : right) {
        Tuple combined = lrow;
        combined.insert(combined.end(), rrow.begin(), rrow.end());
        SIMDB_ASSIGN_OR_RETURN(Value keep, predicate_->Eval(combined));
        if (keep.is_boolean() && keep.AsBoolean()) {
          ++matches;
          rows.push_back(std::move(combined));
        }
      }
    }
    bs.fallback_rows = left.size() * right.size();
    if (ctx.counters != nullptr) {
      CountOp(ctx, "nljoin.pairs", left.size() * right.size());
      CountOp(ctx, "nljoin.matches", matches);
    }
    bs.Emit(ctx);
    return rows;
  }

  const SimBatchCall& call = *batch_;
  const bool jaccard = call.kind == SimBatchCall::Kind::kJaccardCheck;
  TokenIdEncoder encoder;

  // Evaluate arg_a for the first left row before precomputing the right
  // side: the tuple path touches arg_a(l0) first, then arg_b(r0..rn), then
  // arg_a(l1)... — evaluating in that order keeps the first error (if any)
  // identical to the tuple path's.
  SIMDB_ASSIGN_OR_RETURN(Value va0, call.arg_a->Eval(left[0]));

  // Precompute arg_b per right row over a left-width padded tuple (arg_b
  // reads no left column, so the padding values are never touched). The CSR
  // keeps one entry per right row — empty for unencodable rows, which are
  // tracked separately in right_ok since an empty list is a valid encoding.
  std::vector<char> right_ok(right.size(), 0);
  std::vector<uint32_t> r_ids;
  std::vector<char> r_chars;
  std::vector<size_t> r_offsets{0};
  std::vector<uint32_t> enc;
  {
    Tuple padded(left_width);
    for (const Tuple& rrow : right) {
      padded.resize(left_width);
      padded.insert(padded.end(), rrow.begin(), rrow.end());
      SIMDB_ASSIGN_OR_RETURN(Value vb, call.arg_b->Eval(padded));
      if (jaccard) {
        if (encoder.EncodeValue(vb, &enc)) {
          right_ok[r_offsets.size() - 1] = 1;
          r_ids.insert(r_ids.end(), enc.begin(), enc.end());
        }
        r_offsets.push_back(r_ids.size());
      } else {
        if (vb.is_string()) {
          right_ok[r_offsets.size() - 1] = 1;
          const std::string& s = vb.AsString();
          r_chars.insert(r_chars.end(), s.begin(), s.end());
        }
        r_offsets.push_back(r_chars.size());
      }
    }
  }

  std::vector<uint32_t> probe;
  std::vector<double> jacc_out;
  std::vector<int> ed_out;
  for (size_t l = 0; l < left.size(); ++l) {
    Value va;
    if (l == 0) {
      va = std::move(va0);
    } else {
      SIMDB_ASSIGN_OR_RETURN(va, call.arg_a->Eval(left[l]));
    }
    bool left_ok;
    if (jaccard) {
      left_ok = encoder.EncodeValue(va, &probe);
      if (left_ok) {
        ++bs.batches;
        jacc_out.resize(right.size());
        simd::JaccardCheckBatch(probe.data(), probe.size(), r_ids.data(),
                                r_offsets.data(), right.size(),
                                call.threshold, jacc_out.data(),
                                /*assume_unique=*/true);
      }
    } else {
      left_ok = va.is_string();
      if (left_ok) {
        ++bs.batches;
        ed_out.resize(right.size());
        simd::EditDistancePattern pattern(va.AsString());
        pattern.CheckBatch(r_chars.data(), r_offsets.data(), right.size(),
                           static_cast<int>(call.threshold), ed_out.data());
      }
    }
    for (size_t j = 0; j < right.size(); ++j) {
      if (left_ok && right_ok[j] != 0) {
        ++bs.rows;
        const bool keep = jaccard ? jacc_out[j] >= 0 : ed_out[j] >= 0;
        if (keep) {
          ++matches;
          Tuple combined = left[l];
          combined.insert(combined.end(), right[j].begin(), right[j].end());
          rows.push_back(std::move(combined));
        }
      } else {
        ++bs.fallback_rows;
        Tuple combined = left[l];
        combined.insert(combined.end(), right[j].begin(), right[j].end());
        SIMDB_ASSIGN_OR_RETURN(Value keep, predicate_->Eval(combined));
        if (keep.is_boolean() && keep.AsBoolean()) {
          ++matches;
          rows.push_back(std::move(combined));
        }
      }
    }
  }
  if (ctx.counters != nullptr) {
    CountOp(ctx, "nljoin.pairs", left.size() * right.size());
    CountOp(ctx, "nljoin.matches", matches);
  }
  bs.Emit(ctx);
  return rows;
}

}  // namespace simdb::hyracks
