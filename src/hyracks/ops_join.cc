#include "hyracks/ops_join.h"

#include <unordered_map>

#include "storage/key.h"

namespace simdb::hyracks {

using adm::Value;

Result<PartitionedRows> HashJoinOp::Execute(
    ExecContext& ctx, const std::vector<const PartitionedRows*>& inputs,
    OpStats* stats) {
  if (inputs.size() != 2) return Status::Internal("HASH-JOIN needs 2 inputs");
  const PartitionedRows& left = *inputs[0];
  const PartitionedRows& right = *inputs[1];
  if (left.size() != right.size()) {
    return Status::Internal("HASH-JOIN partition mismatch");
  }
  PartitionedRows out(left.size());
  SIMDB_RETURN_IF_ERROR(RunPerPartition(
      ctx, static_cast<int>(left.size()), stats, [&](int p) -> Status {
        // Build on the right side.
        std::unordered_map<std::string, std::vector<const Tuple*>> table;
        for (const Tuple& row : right[static_cast<size_t>(p)]) {
          Tuple keys;
          keys.reserve(right_keys_.size());
          bool missing = false;
          for (int c : right_keys_) {
            const Value& v = row[static_cast<size_t>(c)];
            if (v.is_missing() || v.is_null()) {
              missing = true;
              break;
            }
            keys.push_back(v);
          }
          if (missing) continue;
          table[storage::EncodeKey(keys)].push_back(&row);
        }
        // Probe with the left side.
        Rows& rows = out[static_cast<size_t>(p)];
        for (const Tuple& lrow : left[static_cast<size_t>(p)]) {
          Tuple keys;
          keys.reserve(left_keys_.size());
          bool missing = false;
          for (int c : left_keys_) {
            const Value& v = lrow[static_cast<size_t>(c)];
            if (v.is_missing() || v.is_null()) {
              missing = true;
              break;
            }
            keys.push_back(v);
          }
          if (missing) continue;
          auto it = table.find(storage::EncodeKey(keys));
          if (it == table.end()) continue;
          for (const Tuple* rrow : it->second) {
            Tuple combined = lrow;
            combined.insert(combined.end(), rrow->begin(), rrow->end());
            if (residual_ != nullptr) {
              SIMDB_ASSIGN_OR_RETURN(Value keep, residual_->Eval(combined));
              if (!keep.is_boolean() || !keep.AsBoolean()) continue;
            }
            rows.push_back(std::move(combined));
          }
        }
        return Status::OK();
      }));
  return out;
}

Result<PartitionedRows> NestedLoopJoinOp::Execute(
    ExecContext& ctx, const std::vector<const PartitionedRows*>& inputs,
    OpStats* stats) {
  if (inputs.size() != 2) return Status::Internal("NL-JOIN needs 2 inputs");
  const PartitionedRows& left = *inputs[0];
  const PartitionedRows& right = *inputs[1];
  if (left.size() != right.size()) {
    return Status::Internal("NL-JOIN partition mismatch");
  }
  PartitionedRows out(left.size());
  SIMDB_RETURN_IF_ERROR(RunPerPartition(
      ctx, static_cast<int>(left.size()), stats, [&](int p) -> Status {
        Rows& rows = out[static_cast<size_t>(p)];
        for (const Tuple& lrow : left[static_cast<size_t>(p)]) {
          for (const Tuple& rrow : right[static_cast<size_t>(p)]) {
            Tuple combined = lrow;
            combined.insert(combined.end(), rrow.begin(), rrow.end());
            SIMDB_ASSIGN_OR_RETURN(Value keep, predicate_->Eval(combined));
            if (keep.is_boolean() && keep.AsBoolean()) {
              rows.push_back(std::move(combined));
            }
          }
        }
        return Status::OK();
      }));
  return out;
}

}  // namespace simdb::hyracks
