#include "hyracks/ops_join.h"

#include <unordered_map>

#include "storage/key.h"

namespace simdb::hyracks {

using adm::Value;

Result<Rows> HashJoinOp::ExecutePartition(
    ExecContext& ctx, int, const std::vector<const Rows*>& inputs) {
  const Rows& left = *inputs[0];
  const Rows& right = *inputs[1];
  uint64_t probe_matches = 0;
  uint64_t residual_dropped = 0;
  // Build on the right side.
  std::unordered_map<std::string, std::vector<const Tuple*>> table;
  for (const Tuple& row : right) {
    Tuple keys;
    keys.reserve(right_keys_.size());
    bool missing = false;
    for (int c : right_keys_) {
      const Value& v = row[static_cast<size_t>(c)];
      if (v.is_missing() || v.is_null()) {
        missing = true;
        break;
      }
      keys.push_back(v);
    }
    if (missing) continue;
    table[storage::EncodeKey(keys)].push_back(&row);
  }
  // Probe with the left side.
  Rows rows;
  for (const Tuple& lrow : left) {
    Tuple keys;
    keys.reserve(left_keys_.size());
    bool missing = false;
    for (int c : left_keys_) {
      const Value& v = lrow[static_cast<size_t>(c)];
      if (v.is_missing() || v.is_null()) {
        missing = true;
        break;
      }
      keys.push_back(v);
    }
    if (missing) continue;
    auto it = table.find(storage::EncodeKey(keys));
    if (it == table.end()) continue;
    for (const Tuple* rrow : it->second) {
      ++probe_matches;
      Tuple combined = lrow;
      combined.insert(combined.end(), rrow->begin(), rrow->end());
      if (residual_ != nullptr) {
        SIMDB_ASSIGN_OR_RETURN(Value keep, residual_->Eval(combined));
        if (!keep.is_boolean() || !keep.AsBoolean()) {
          ++residual_dropped;
          continue;
        }
      }
      rows.push_back(std::move(combined));
    }
  }
  if (ctx.counters != nullptr) {
    CountOp(ctx, "join.build_rows", right.size());
    CountOp(ctx, "join.probe_rows", left.size());
    CountOp(ctx, "join.matches", probe_matches);
    CountOp(ctx, "join.residual_dropped", residual_dropped);
  }
  return rows;
}

Result<Rows> NestedLoopJoinOp::ExecutePartition(
    ExecContext& ctx, int, const std::vector<const Rows*>& inputs) {
  const Rows& left = *inputs[0];
  const Rows& right = *inputs[1];
  uint64_t matches = 0;
  Rows rows;
  for (const Tuple& lrow : left) {
    for (const Tuple& rrow : right) {
      Tuple combined = lrow;
      combined.insert(combined.end(), rrow.begin(), rrow.end());
      SIMDB_ASSIGN_OR_RETURN(Value keep, predicate_->Eval(combined));
      if (keep.is_boolean() && keep.AsBoolean()) {
        ++matches;
        rows.push_back(std::move(combined));
      }
    }
  }
  if (ctx.counters != nullptr) {
    CountOp(ctx, "nljoin.pairs", left.size() * right.size());
    CountOp(ctx, "nljoin.matches", matches);
  }
  return rows;
}

}  // namespace simdb::hyracks
