#include "hyracks/ops_join.h"

#include <unordered_map>

#include "storage/key.h"

namespace simdb::hyracks {

using adm::Value;

Result<Rows> HashJoinOp::ExecutePartition(
    ExecContext&, int, const std::vector<const Rows*>& inputs) {
  const Rows& left = *inputs[0];
  const Rows& right = *inputs[1];
  // Build on the right side.
  std::unordered_map<std::string, std::vector<const Tuple*>> table;
  for (const Tuple& row : right) {
    Tuple keys;
    keys.reserve(right_keys_.size());
    bool missing = false;
    for (int c : right_keys_) {
      const Value& v = row[static_cast<size_t>(c)];
      if (v.is_missing() || v.is_null()) {
        missing = true;
        break;
      }
      keys.push_back(v);
    }
    if (missing) continue;
    table[storage::EncodeKey(keys)].push_back(&row);
  }
  // Probe with the left side.
  Rows rows;
  for (const Tuple& lrow : left) {
    Tuple keys;
    keys.reserve(left_keys_.size());
    bool missing = false;
    for (int c : left_keys_) {
      const Value& v = lrow[static_cast<size_t>(c)];
      if (v.is_missing() || v.is_null()) {
        missing = true;
        break;
      }
      keys.push_back(v);
    }
    if (missing) continue;
    auto it = table.find(storage::EncodeKey(keys));
    if (it == table.end()) continue;
    for (const Tuple* rrow : it->second) {
      Tuple combined = lrow;
      combined.insert(combined.end(), rrow->begin(), rrow->end());
      if (residual_ != nullptr) {
        SIMDB_ASSIGN_OR_RETURN(Value keep, residual_->Eval(combined));
        if (!keep.is_boolean() || !keep.AsBoolean()) continue;
      }
      rows.push_back(std::move(combined));
    }
  }
  return rows;
}

Result<Rows> NestedLoopJoinOp::ExecutePartition(
    ExecContext&, int, const std::vector<const Rows*>& inputs) {
  const Rows& left = *inputs[0];
  const Rows& right = *inputs[1];
  Rows rows;
  for (const Tuple& lrow : left) {
    for (const Tuple& rrow : right) {
      Tuple combined = lrow;
      combined.insert(combined.end(), rrow.begin(), rrow.end());
      SIMDB_ASSIGN_OR_RETURN(Value keep, predicate_->Eval(combined));
      if (keep.is_boolean() && keep.AsBoolean()) {
        rows.push_back(std::move(combined));
      }
    }
  }
  return rows;
}

}  // namespace simdb::hyracks
